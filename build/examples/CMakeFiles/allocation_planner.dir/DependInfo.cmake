
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/allocation_planner.cpp" "examples/CMakeFiles/allocation_planner.dir/allocation_planner.cpp.o" "gcc" "examples/CMakeFiles/allocation_planner.dir/allocation_planner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/insight_core.dir/DependInfo.cmake"
  "/root/repo/build/src/batch/CMakeFiles/insight_batch.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/insight_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/insight_model.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/insight_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/dsps/CMakeFiles/insight_dsps.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/insight_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/insight_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/cep/CMakeFiles/insight_cep.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/insight_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/insight_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
