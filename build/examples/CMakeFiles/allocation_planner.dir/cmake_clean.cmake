file(REMOVE_RECURSE
  "CMakeFiles/allocation_planner.dir/allocation_planner.cpp.o"
  "CMakeFiles/allocation_planner.dir/allocation_planner.cpp.o.d"
  "allocation_planner"
  "allocation_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocation_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
