# Empty compiler generated dependencies file for allocation_planner.
# This may be replaced when dependencies are built.
