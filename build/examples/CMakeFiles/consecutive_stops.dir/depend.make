# Empty dependencies file for consecutive_stops.
# This may be replaced when dependencies are built.
