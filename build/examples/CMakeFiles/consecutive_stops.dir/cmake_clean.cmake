file(REMOVE_RECURSE
  "CMakeFiles/consecutive_stops.dir/consecutive_stops.cpp.o"
  "CMakeFiles/consecutive_stops.dir/consecutive_stops.cpp.o.d"
  "consecutive_stops"
  "consecutive_stops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consecutive_stops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
