# Empty compiler generated dependencies file for xml_topology.
# This may be replaced when dependencies are built.
