file(REMOVE_RECURSE
  "CMakeFiles/xml_topology.dir/xml_topology.cpp.o"
  "CMakeFiles/xml_topology.dir/xml_topology.cpp.o.d"
  "xml_topology"
  "xml_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
