# Empty dependencies file for dynamic_thresholds.
# This may be replaced when dependencies are built.
