file(REMOVE_RECURSE
  "CMakeFiles/dynamic_thresholds.dir/dynamic_thresholds.cpp.o"
  "CMakeFiles/dynamic_thresholds.dir/dynamic_thresholds.cpp.o.d"
  "dynamic_thresholds"
  "dynamic_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
