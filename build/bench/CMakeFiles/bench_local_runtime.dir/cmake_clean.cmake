file(REMOVE_RECURSE
  "CMakeFiles/bench_local_runtime.dir/bench_local_runtime.cc.o"
  "CMakeFiles/bench_local_runtime.dir/bench_local_runtime.cc.o.d"
  "bench_local_runtime"
  "bench_local_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_local_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
