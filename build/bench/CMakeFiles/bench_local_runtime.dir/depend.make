# Empty dependencies file for bench_local_runtime.
# This may be replaced when dependencies are built.
