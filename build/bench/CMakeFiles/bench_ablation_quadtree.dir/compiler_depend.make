# Empty compiler generated dependencies file for bench_ablation_quadtree.
# This may be replaced when dependencies are built.
