file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_quadtree.dir/bench_ablation_quadtree.cc.o"
  "CMakeFiles/bench_ablation_quadtree.dir/bench_ablation_quadtree.cc.o.d"
  "bench_ablation_quadtree"
  "bench_ablation_quadtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_quadtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
