file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_regression.dir/bench_fig09_regression.cc.o"
  "CMakeFiles/bench_fig09_regression.dir/bench_fig09_regression.cc.o.d"
  "bench_fig09_regression"
  "bench_fig09_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
