# Empty dependencies file for bench_fig10_retrieval.
# This may be replaced when dependencies are built.
