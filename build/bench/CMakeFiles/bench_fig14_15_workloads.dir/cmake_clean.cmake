file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_15_workloads.dir/bench_fig14_15_workloads.cc.o"
  "CMakeFiles/bench_fig14_15_workloads.dir/bench_fig14_15_workloads.cc.o.d"
  "bench_fig14_15_workloads"
  "bench_fig14_15_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_15_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
