# Empty dependencies file for bench_fig14_15_workloads.
# This may be replaced when dependencies are built.
