# Empty compiler generated dependencies file for bench_cep_engine.
# This may be replaced when dependencies are built.
