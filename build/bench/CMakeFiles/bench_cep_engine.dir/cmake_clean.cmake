file(REMOVE_RECURSE
  "CMakeFiles/bench_cep_engine.dir/bench_cep_engine.cc.o"
  "CMakeFiles/bench_cep_engine.dir/bench_cep_engine.cc.o.d"
  "bench_cep_engine"
  "bench_cep_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cep_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
