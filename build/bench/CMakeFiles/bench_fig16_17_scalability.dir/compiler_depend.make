# Empty compiler generated dependencies file for bench_fig16_17_scalability.
# This may be replaced when dependencies are built.
