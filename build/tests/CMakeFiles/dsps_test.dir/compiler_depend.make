# Empty compiler generated dependencies file for dsps_test.
# This may be replaced when dependencies are built.
