# Empty dependencies file for cep_statement_test.
# This may be replaced when dependencies are built.
