file(REMOVE_RECURSE
  "CMakeFiles/cep_statement_test.dir/cep_statement_test.cc.o"
  "CMakeFiles/cep_statement_test.dir/cep_statement_test.cc.o.d"
  "cep_statement_test"
  "cep_statement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cep_statement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
