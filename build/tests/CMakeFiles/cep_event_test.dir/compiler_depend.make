# Empty compiler generated dependencies file for cep_event_test.
# This may be replaced when dependencies are built.
