file(REMOVE_RECURSE
  "CMakeFiles/cep_event_test.dir/cep_event_test.cc.o"
  "CMakeFiles/cep_event_test.dir/cep_event_test.cc.o.d"
  "cep_event_test"
  "cep_event_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cep_event_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
