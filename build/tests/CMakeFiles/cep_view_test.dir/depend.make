# Empty dependencies file for cep_view_test.
# This may be replaced when dependencies are built.
