file(REMOVE_RECURSE
  "CMakeFiles/cep_view_test.dir/cep_view_test.cc.o"
  "CMakeFiles/cep_view_test.dir/cep_view_test.cc.o.d"
  "cep_view_test"
  "cep_view_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cep_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
