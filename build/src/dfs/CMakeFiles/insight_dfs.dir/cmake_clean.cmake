file(REMOVE_RECURSE
  "CMakeFiles/insight_dfs.dir/mini_dfs.cc.o"
  "CMakeFiles/insight_dfs.dir/mini_dfs.cc.o.d"
  "libinsight_dfs.a"
  "libinsight_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insight_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
