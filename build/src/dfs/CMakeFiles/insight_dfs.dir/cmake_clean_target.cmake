file(REMOVE_RECURSE
  "libinsight_dfs.a"
)
