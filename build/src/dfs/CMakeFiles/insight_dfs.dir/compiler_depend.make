# Empty compiler generated dependencies file for insight_dfs.
# This may be replaced when dependencies are built.
