# Empty compiler generated dependencies file for insight_sim.
# This may be replaced when dependencies are built.
