file(REMOVE_RECURSE
  "libinsight_sim.a"
)
