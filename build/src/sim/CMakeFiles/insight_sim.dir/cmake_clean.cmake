file(REMOVE_RECURSE
  "CMakeFiles/insight_sim.dir/cluster_sim.cc.o"
  "CMakeFiles/insight_sim.dir/cluster_sim.cc.o.d"
  "libinsight_sim.a"
  "libinsight_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insight_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
