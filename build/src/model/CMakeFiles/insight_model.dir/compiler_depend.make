# Empty compiler generated dependencies file for insight_model.
# This may be replaced when dependencies are built.
