file(REMOVE_RECURSE
  "CMakeFiles/insight_model.dir/latency_model.cc.o"
  "CMakeFiles/insight_model.dir/latency_model.cc.o.d"
  "CMakeFiles/insight_model.dir/regression.cc.o"
  "CMakeFiles/insight_model.dir/regression.cc.o.d"
  "libinsight_model.a"
  "libinsight_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insight_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
