file(REMOVE_RECURSE
  "libinsight_model.a"
)
