
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/bus_stops.cc" "src/geo/CMakeFiles/insight_geo.dir/bus_stops.cc.o" "gcc" "src/geo/CMakeFiles/insight_geo.dir/bus_stops.cc.o.d"
  "/root/repo/src/geo/denclue.cc" "src/geo/CMakeFiles/insight_geo.dir/denclue.cc.o" "gcc" "src/geo/CMakeFiles/insight_geo.dir/denclue.cc.o.d"
  "/root/repo/src/geo/latlon.cc" "src/geo/CMakeFiles/insight_geo.dir/latlon.cc.o" "gcc" "src/geo/CMakeFiles/insight_geo.dir/latlon.cc.o.d"
  "/root/repo/src/geo/quadtree.cc" "src/geo/CMakeFiles/insight_geo.dir/quadtree.cc.o" "gcc" "src/geo/CMakeFiles/insight_geo.dir/quadtree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/insight_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
