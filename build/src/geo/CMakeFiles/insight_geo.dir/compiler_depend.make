# Empty compiler generated dependencies file for insight_geo.
# This may be replaced when dependencies are built.
