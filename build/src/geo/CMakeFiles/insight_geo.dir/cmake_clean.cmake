file(REMOVE_RECURSE
  "CMakeFiles/insight_geo.dir/bus_stops.cc.o"
  "CMakeFiles/insight_geo.dir/bus_stops.cc.o.d"
  "CMakeFiles/insight_geo.dir/denclue.cc.o"
  "CMakeFiles/insight_geo.dir/denclue.cc.o.d"
  "CMakeFiles/insight_geo.dir/latlon.cc.o"
  "CMakeFiles/insight_geo.dir/latlon.cc.o.d"
  "CMakeFiles/insight_geo.dir/quadtree.cc.o"
  "CMakeFiles/insight_geo.dir/quadtree.cc.o.d"
  "libinsight_geo.a"
  "libinsight_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insight_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
