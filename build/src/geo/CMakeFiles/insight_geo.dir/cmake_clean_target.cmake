file(REMOVE_RECURSE
  "libinsight_geo.a"
)
