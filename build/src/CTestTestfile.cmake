# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("geo")
subdirs("cep")
subdirs("storage")
subdirs("dfs")
subdirs("batch")
subdirs("model")
subdirs("dsps")
subdirs("sim")
subdirs("traffic")
subdirs("core")
