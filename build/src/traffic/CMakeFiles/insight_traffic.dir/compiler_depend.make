# Empty compiler generated dependencies file for insight_traffic.
# This may be replaced when dependencies are built.
