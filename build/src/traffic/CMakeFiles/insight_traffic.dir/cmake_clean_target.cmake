file(REMOVE_RECURSE
  "libinsight_traffic.a"
)
