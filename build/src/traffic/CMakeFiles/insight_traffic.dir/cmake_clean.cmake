file(REMOVE_RECURSE
  "CMakeFiles/insight_traffic.dir/bolts.cc.o"
  "CMakeFiles/insight_traffic.dir/bolts.cc.o.d"
  "CMakeFiles/insight_traffic.dir/generator.cc.o"
  "CMakeFiles/insight_traffic.dir/generator.cc.o.d"
  "CMakeFiles/insight_traffic.dir/trace.cc.o"
  "CMakeFiles/insight_traffic.dir/trace.cc.o.d"
  "libinsight_traffic.a"
  "libinsight_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insight_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
