file(REMOVE_RECURSE
  "CMakeFiles/insight_storage.dir/table_store.cc.o"
  "CMakeFiles/insight_storage.dir/table_store.cc.o.d"
  "libinsight_storage.a"
  "libinsight_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insight_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
