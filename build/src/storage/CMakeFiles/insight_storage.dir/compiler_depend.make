# Empty compiler generated dependencies file for insight_storage.
# This may be replaced when dependencies are built.
