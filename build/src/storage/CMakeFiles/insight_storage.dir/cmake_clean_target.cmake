file(REMOVE_RECURSE
  "libinsight_storage.a"
)
