file(REMOVE_RECURSE
  "CMakeFiles/insight_common.dir/clock.cc.o"
  "CMakeFiles/insight_common.dir/clock.cc.o.d"
  "CMakeFiles/insight_common.dir/csv.cc.o"
  "CMakeFiles/insight_common.dir/csv.cc.o.d"
  "CMakeFiles/insight_common.dir/logging.cc.o"
  "CMakeFiles/insight_common.dir/logging.cc.o.d"
  "CMakeFiles/insight_common.dir/status.cc.o"
  "CMakeFiles/insight_common.dir/status.cc.o.d"
  "CMakeFiles/insight_common.dir/strings.cc.o"
  "CMakeFiles/insight_common.dir/strings.cc.o.d"
  "CMakeFiles/insight_common.dir/thread_pool.cc.o"
  "CMakeFiles/insight_common.dir/thread_pool.cc.o.d"
  "CMakeFiles/insight_common.dir/xml.cc.o"
  "CMakeFiles/insight_common.dir/xml.cc.o.d"
  "libinsight_common.a"
  "libinsight_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insight_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
