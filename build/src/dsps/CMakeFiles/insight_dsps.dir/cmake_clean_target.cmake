file(REMOVE_RECURSE
  "libinsight_dsps.a"
)
