
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsps/local_runtime.cc" "src/dsps/CMakeFiles/insight_dsps.dir/local_runtime.cc.o" "gcc" "src/dsps/CMakeFiles/insight_dsps.dir/local_runtime.cc.o.d"
  "/root/repo/src/dsps/metrics.cc" "src/dsps/CMakeFiles/insight_dsps.dir/metrics.cc.o" "gcc" "src/dsps/CMakeFiles/insight_dsps.dir/metrics.cc.o.d"
  "/root/repo/src/dsps/topology.cc" "src/dsps/CMakeFiles/insight_dsps.dir/topology.cc.o" "gcc" "src/dsps/CMakeFiles/insight_dsps.dir/topology.cc.o.d"
  "/root/repo/src/dsps/xml_topology.cc" "src/dsps/CMakeFiles/insight_dsps.dir/xml_topology.cc.o" "gcc" "src/dsps/CMakeFiles/insight_dsps.dir/xml_topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/insight_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cep/CMakeFiles/insight_cep.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
