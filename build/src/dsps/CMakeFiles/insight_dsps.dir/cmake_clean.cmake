file(REMOVE_RECURSE
  "CMakeFiles/insight_dsps.dir/local_runtime.cc.o"
  "CMakeFiles/insight_dsps.dir/local_runtime.cc.o.d"
  "CMakeFiles/insight_dsps.dir/metrics.cc.o"
  "CMakeFiles/insight_dsps.dir/metrics.cc.o.d"
  "CMakeFiles/insight_dsps.dir/topology.cc.o"
  "CMakeFiles/insight_dsps.dir/topology.cc.o.d"
  "CMakeFiles/insight_dsps.dir/xml_topology.cc.o"
  "CMakeFiles/insight_dsps.dir/xml_topology.cc.o.d"
  "libinsight_dsps.a"
  "libinsight_dsps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insight_dsps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
