# Empty dependencies file for insight_dsps.
# This may be replaced when dependencies are built.
