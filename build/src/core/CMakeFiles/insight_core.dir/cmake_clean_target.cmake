file(REMOVE_RECURSE
  "libinsight_core.a"
)
