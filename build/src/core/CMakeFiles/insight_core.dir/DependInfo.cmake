
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocation.cc" "src/core/CMakeFiles/insight_core.dir/allocation.cc.o" "gcc" "src/core/CMakeFiles/insight_core.dir/allocation.cc.o.d"
  "/root/repo/src/core/dynamic.cc" "src/core/CMakeFiles/insight_core.dir/dynamic.cc.o" "gcc" "src/core/CMakeFiles/insight_core.dir/dynamic.cc.o.d"
  "/root/repo/src/core/partitioning.cc" "src/core/CMakeFiles/insight_core.dir/partitioning.cc.o" "gcc" "src/core/CMakeFiles/insight_core.dir/partitioning.cc.o.d"
  "/root/repo/src/core/retrieval.cc" "src/core/CMakeFiles/insight_core.dir/retrieval.cc.o" "gcc" "src/core/CMakeFiles/insight_core.dir/retrieval.cc.o.d"
  "/root/repo/src/core/rule_template.cc" "src/core/CMakeFiles/insight_core.dir/rule_template.cc.o" "gcc" "src/core/CMakeFiles/insight_core.dir/rule_template.cc.o.d"
  "/root/repo/src/core/sequence.cc" "src/core/CMakeFiles/insight_core.dir/sequence.cc.o" "gcc" "src/core/CMakeFiles/insight_core.dir/sequence.cc.o.d"
  "/root/repo/src/core/system.cc" "src/core/CMakeFiles/insight_core.dir/system.cc.o" "gcc" "src/core/CMakeFiles/insight_core.dir/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/insight_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cep/CMakeFiles/insight_cep.dir/DependInfo.cmake"
  "/root/repo/build/src/dsps/CMakeFiles/insight_dsps.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/insight_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/insight_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/insight_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/batch/CMakeFiles/insight_batch.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/insight_model.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/insight_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/insight_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
