file(REMOVE_RECURSE
  "CMakeFiles/insight_core.dir/allocation.cc.o"
  "CMakeFiles/insight_core.dir/allocation.cc.o.d"
  "CMakeFiles/insight_core.dir/dynamic.cc.o"
  "CMakeFiles/insight_core.dir/dynamic.cc.o.d"
  "CMakeFiles/insight_core.dir/partitioning.cc.o"
  "CMakeFiles/insight_core.dir/partitioning.cc.o.d"
  "CMakeFiles/insight_core.dir/retrieval.cc.o"
  "CMakeFiles/insight_core.dir/retrieval.cc.o.d"
  "CMakeFiles/insight_core.dir/rule_template.cc.o"
  "CMakeFiles/insight_core.dir/rule_template.cc.o.d"
  "CMakeFiles/insight_core.dir/sequence.cc.o"
  "CMakeFiles/insight_core.dir/sequence.cc.o.d"
  "CMakeFiles/insight_core.dir/system.cc.o"
  "CMakeFiles/insight_core.dir/system.cc.o.d"
  "libinsight_core.a"
  "libinsight_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insight_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
