# Empty compiler generated dependencies file for insight_core.
# This may be replaced when dependencies are built.
