file(REMOVE_RECURSE
  "CMakeFiles/insight_batch.dir/mapreduce.cc.o"
  "CMakeFiles/insight_batch.dir/mapreduce.cc.o.d"
  "CMakeFiles/insight_batch.dir/statistics_job.cc.o"
  "CMakeFiles/insight_batch.dir/statistics_job.cc.o.d"
  "libinsight_batch.a"
  "libinsight_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insight_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
