# Empty dependencies file for insight_batch.
# This may be replaced when dependencies are built.
