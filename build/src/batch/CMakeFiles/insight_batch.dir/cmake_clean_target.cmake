file(REMOVE_RECURSE
  "libinsight_batch.a"
)
