file(REMOVE_RECURSE
  "CMakeFiles/insight_cep.dir/engine.cc.o"
  "CMakeFiles/insight_cep.dir/engine.cc.o.d"
  "CMakeFiles/insight_cep.dir/epl_parser.cc.o"
  "CMakeFiles/insight_cep.dir/epl_parser.cc.o.d"
  "CMakeFiles/insight_cep.dir/event.cc.o"
  "CMakeFiles/insight_cep.dir/event.cc.o.d"
  "CMakeFiles/insight_cep.dir/expr.cc.o"
  "CMakeFiles/insight_cep.dir/expr.cc.o.d"
  "CMakeFiles/insight_cep.dir/statement.cc.o"
  "CMakeFiles/insight_cep.dir/statement.cc.o.d"
  "CMakeFiles/insight_cep.dir/view.cc.o"
  "CMakeFiles/insight_cep.dir/view.cc.o.d"
  "libinsight_cep.a"
  "libinsight_cep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insight_cep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
