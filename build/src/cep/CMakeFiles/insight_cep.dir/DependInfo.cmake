
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cep/engine.cc" "src/cep/CMakeFiles/insight_cep.dir/engine.cc.o" "gcc" "src/cep/CMakeFiles/insight_cep.dir/engine.cc.o.d"
  "/root/repo/src/cep/epl_parser.cc" "src/cep/CMakeFiles/insight_cep.dir/epl_parser.cc.o" "gcc" "src/cep/CMakeFiles/insight_cep.dir/epl_parser.cc.o.d"
  "/root/repo/src/cep/event.cc" "src/cep/CMakeFiles/insight_cep.dir/event.cc.o" "gcc" "src/cep/CMakeFiles/insight_cep.dir/event.cc.o.d"
  "/root/repo/src/cep/expr.cc" "src/cep/CMakeFiles/insight_cep.dir/expr.cc.o" "gcc" "src/cep/CMakeFiles/insight_cep.dir/expr.cc.o.d"
  "/root/repo/src/cep/statement.cc" "src/cep/CMakeFiles/insight_cep.dir/statement.cc.o" "gcc" "src/cep/CMakeFiles/insight_cep.dir/statement.cc.o.d"
  "/root/repo/src/cep/view.cc" "src/cep/CMakeFiles/insight_cep.dir/view.cc.o" "gcc" "src/cep/CMakeFiles/insight_cep.dir/view.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/insight_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
