file(REMOVE_RECURSE
  "libinsight_cep.a"
)
