# Empty dependencies file for insight_cep.
# This may be replaced when dependencies are built.
