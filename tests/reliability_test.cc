#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "dsps/local_runtime.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "dsps/topology.h"
#include "reliability/acker.h"
#include "reliability/fault_injector.h"
#include "reliability/replay.h"

namespace insight {
namespace reliability {
namespace {

using dsps::Bolt;
using dsps::Collector;
using dsps::Fields;
using dsps::LocalRuntime;
using dsps::Spout;
using dsps::TaskContext;
using dsps::TopologyBuilder;
using dsps::Tuple;
using dsps::Value;

// ---------------------------------------------------------------------------
// Acker unit tests
// ---------------------------------------------------------------------------

TEST(AckerTest, TreeCompletesWhenAllEdgesAcked) {
  Acker acker;
  TreeInfo info;
  info.root_key = 42;
  info.message_id = 7;
  info.created_micros = 100;
  const uint64_t guard = 0x1111;
  acker.Register(info, guard);
  EXPECT_EQ(acker.pending(), 1u);

  // Two root edges emitted, then the guard released.
  const uint64_t e1 = 0xaaaa, e2 = 0xbbbb;
  EXPECT_FALSE(acker.Xor(42, e1 ^ e2 ^ guard).has_value());
  // Consumer 1 finishes, emitting a child edge e3.
  const uint64_t e3 = 0xcccc;
  EXPECT_FALSE(acker.Xor(42, e1 ^ e3).has_value());
  // Consumer 2 finishes (leaf).
  EXPECT_FALSE(acker.Xor(42, e2).has_value());
  // The child leaf finishes: tree complete.
  auto done = acker.Xor(42, e3);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->message_id, 7u);
  EXPECT_EQ(acker.pending(), 0u);
}

TEST(AckerTest, GuardPreventsPrematureCompletion) {
  Acker acker;
  TreeInfo info;
  info.root_key = 1;
  acker.Register(info, /*guard_edge=*/0x5555);
  const uint64_t e1 = 0x9999;
  // The only root edge is emitted and fully acked before registration
  // finishes — without the guard this transient would complete the tree.
  EXPECT_FALSE(acker.Xor(1, e1).has_value());
  EXPECT_FALSE(acker.Xor(1, e1).has_value());
  EXPECT_EQ(acker.pending(), 1u);
  // Releasing the guard with no outstanding edges completes it.
  EXPECT_TRUE(acker.Xor(1, 0x5555).has_value());
}

TEST(AckerTest, LateAcksForExpiredTreesAreIgnored) {
  Acker acker;
  TreeInfo info;
  info.root_key = 9;
  info.created_micros = 50;
  acker.Register(info, 0x1234);
  auto expired = acker.ExpireOlderThan(60);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].root_key, 9u);
  EXPECT_EQ(acker.pending(), 0u);
  // A straggler ack of the expired tree must not resurrect or complete it.
  EXPECT_FALSE(acker.Xor(9, 0x1234).has_value());
}

TEST(AckerTest, ExpiryOnlyTakesOldTrees) {
  Acker acker;
  TreeInfo young, old;
  young.root_key = 1;
  young.created_micros = 100;
  old.root_key = 2;
  old.created_micros = 10;
  acker.Register(young, 0xa);
  acker.Register(old, 0xb);
  auto expired = acker.ExpireOlderThan(50);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].root_key, 2u);
  EXPECT_EQ(acker.pending(), 1u);
}

// ---------------------------------------------------------------------------
// ReplayBuffer unit tests
// ---------------------------------------------------------------------------

TEST(ReplayBufferTest, SchedulesBackedOffRetriesThenGivesUp) {
  ReplayPolicy policy;
  policy.max_replays = 2;
  policy.backoff_base_micros = 100;
  policy.backoff_factor = 2.0;
  ReplayBuffer buffer(policy);
  buffer.Store(1, 0, 0, {Value(int64_t{5})});

  // First failure: retry due at t+100.
  ASSERT_TRUE(buffer.Fail(1, 0, 0, /*now=*/1000));
  EXPECT_TRUE(buffer.TakeDue(0, 0, 1099).empty());
  auto due = buffer.TakeDue(0, 0, 1100);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].attempt, 1);
  EXPECT_EQ(due[0].values[0].AsInt(), 5);

  // Second failure: backoff doubles (due at t+200).
  ASSERT_TRUE(buffer.Fail(1, 0, 0, 2000));
  EXPECT_TRUE(buffer.TakeDue(0, 0, 2199).empty());
  ASSERT_EQ(buffer.TakeDue(0, 0, 2200).size(), 1u);

  // Third failure: budget exhausted.
  EXPECT_FALSE(buffer.Fail(1, 0, 0, 3000));
  EXPECT_EQ(buffer.stored(), 0u);
}

TEST(ReplayBufferTest, AckDropsPayloadAndScheduledRetry) {
  ReplayBuffer buffer(ReplayPolicy{});
  buffer.Store(1, 0, 0, {Value(int64_t{1})});
  ASSERT_TRUE(buffer.Fail(1, 0, 0, 0));
  EXPECT_EQ(buffer.scheduled_retries(), 1u);
  EXPECT_TRUE(buffer.Ack(1, 0, 0));
  EXPECT_EQ(buffer.scheduled_retries(), 0u);
  EXPECT_EQ(buffer.stored(), 0u);
  EXPECT_FALSE(buffer.Ack(1, 0, 0));
  EXPECT_FALSE(buffer.Fail(1, 0, 0, 0));
}

TEST(ReplayBufferTest, TakeDueFiltersBySpoutTask) {
  ReplayBuffer buffer(ReplayPolicy{.max_replays = 3,
                                   .backoff_base_micros = 0,
                                   .backoff_factor = 1.0});
  buffer.Store(1, 0, 0, {Value(int64_t{1})});
  buffer.Store(2, 0, 1, {Value(int64_t{2})});
  ASSERT_TRUE(buffer.Fail(1, /*spout_component=*/0, /*spout_task=*/0, 0));
  ASSERT_TRUE(buffer.Fail(2, /*spout_component=*/0, /*spout_task=*/1, 0));
  auto due0 = buffer.TakeDue(0, 0, 10);
  ASSERT_EQ(due0.size(), 1u);
  EXPECT_EQ(due0[0].message_id, 1u);
  auto due1 = buffer.TakeDue(0, 1, 10);
  ASSERT_EQ(due1.size(), 1u);
  EXPECT_EQ(due1[0].message_id, 2u);
}

TEST(ReplayBufferTest, ScopesPayloadsBySpoutTask) {
  // Two spouts reusing one message-id space must not clobber each other's
  // payloads: regression for a cross-spout collision where the second
  // Store replaced the first payload and an Ack for either spout erased
  // both, leaking the other spout's pending tree.
  ReplayBuffer buffer(ReplayPolicy{.max_replays = 3,
                                   .backoff_base_micros = 0,
                                   .backoff_factor = 1.0});
  buffer.Store(1, /*spout_component=*/0, /*spout_task=*/0,
               {Value(int64_t{10})});
  buffer.Store(1, /*spout_component=*/1, /*spout_task=*/0,
               {Value(int64_t{20})});
  EXPECT_EQ(buffer.stored(), 2u);

  // Acking one spout's message leaves the other's payload and retry alone.
  ASSERT_TRUE(buffer.Fail(1, 1, 0, 0));
  EXPECT_TRUE(buffer.Ack(1, 0, 0));
  EXPECT_EQ(buffer.stored(), 1u);
  EXPECT_EQ(buffer.scheduled_retries(), 1u);

  // The surviving retry replays the second spout's values, not the first's.
  auto due = buffer.TakeDue(1, 0, 10);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].values[0].AsInt(), 20);
  EXPECT_TRUE(buffer.Discard(1, 1, 0));
  EXPECT_EQ(buffer.stored(), 0u);
}

// ---------------------------------------------------------------------------
// FaultInjector unit tests
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, CrashFiresOnNthExecution) {
  FaultPlan plan;
  plan.crashes.push_back({.component = "bolt", .task = 1,
                          .after_executions = 3, .repeat = false});
  FaultInjector injector(plan);
  EXPECT_FALSE(injector.ShouldCrash("bolt", 1));
  EXPECT_FALSE(injector.ShouldCrash("bolt", 1));
  EXPECT_FALSE(injector.ShouldCrash("other", 1));  // different component
  EXPECT_FALSE(injector.ShouldCrash("bolt", 0));   // different task
  EXPECT_TRUE(injector.ShouldCrash("bolt", 1));
  EXPECT_FALSE(injector.ShouldCrash("bolt", 1));  // once only
  EXPECT_EQ(injector.crashes_injected(), 1u);
}

TEST(FaultInjectorTest, DropRateIsSeededAndApproximate) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.routes.push_back({.source = "a", .dest = "b",
                         .drop_probability = 0.1});
  FaultInjector one(plan);
  FaultInjector two(plan);
  int drops_one = 0, drops_two = 0;
  for (int i = 0; i < 10000; ++i) {
    if (one.OnRoute("a", "b").drop) ++drops_one;
    if (two.OnRoute("a", "b").drop) ++drops_two;
    EXPECT_FALSE(one.OnRoute("x", "y").drop);  // rule doesn't match
  }
  EXPECT_EQ(drops_one, drops_two);  // same seed, same decisions
  EXPECT_GT(drops_one, 800);
  EXPECT_LT(drops_one, 1200);
  EXPECT_EQ(one.tuples_dropped(), static_cast<uint64_t>(drops_one));
}

TEST(FaultInjectorTest, DuplicateAndDelayDecisions) {
  FaultPlan plan;
  plan.routes.push_back({.source = "",
                         .dest = "sink",
                         .drop_probability = 0.0,
                         .duplicate_probability = 1.0,
                         .delay_probability = 1.0,
                         .delay_micros = 7});
  FaultInjector injector(plan);
  auto decision = injector.OnRoute("anything", "sink");
  EXPECT_TRUE(decision.duplicate);
  EXPECT_EQ(decision.delay_micros, 7);
  EXPECT_EQ(injector.tuples_duplicated(), 1u);
  EXPECT_EQ(injector.delays_injected(), 1u);
}

// ---------------------------------------------------------------------------
// End-to-end: at-least-once under injected faults
// ---------------------------------------------------------------------------

/// Emits the integers [0, n) as rooted (tracked) tuples, message id = value.
class RootedSpout : public Spout {
 public:
  explicit RootedSpout(int n) : n_(n) {}
  void Open(const TaskContext& context) override {
    next_ = context.task_index;
    stride_ = context.num_tasks;
  }
  bool NextTuple(Collector* collector) override {
    if (next_ >= n_) return false;
    collector->EmitRooted(static_cast<uint64_t>(next_),
                          {Value(int64_t{next_})});
    next_ += stride_;
    return next_ < n_;
  }
  void Ack(uint64_t id) override { acked_ids.insert(id); }
  void Fail(uint64_t id) override { failed_ids.insert(id); }

  std::set<uint64_t> acked_ids;
  std::set<uint64_t> failed_ids;

 private:
  int n_;
  int next_ = 0;
  int stride_ = 1;
};

/// Forwards its input unchanged (gives the tuple tree a second level).
class RelayBolt : public Bolt {
 public:
  void Execute(const Tuple& input, Collector* collector) override {
    collector->Emit({input.Get(0)});
  }
};

/// Records every value it sees (multiset: duplicates visible).
class CountingSink : public Bolt {
 public:
  struct Sink {
    Mutex mutex;
    std::map<int64_t, int> counts;
  };
  explicit CountingSink(std::shared_ptr<Sink> sink) : sink_(std::move(sink)) {}
  void Execute(const Tuple& input, Collector*) override {
    MutexLock lock(sink_->mutex);
    sink_->counts[input.Get(0).AsInt()]++;
  }

 private:
  std::shared_ptr<Sink> sink_;
};

struct FaultyRunResult {
  std::shared_ptr<CountingSink::Sink> sink;
  dsps::MetricsRegistry::ComponentTotals spout_totals;
  uint64_t restarts = 0;
  size_t distinct() const {
    MutexLock lock(sink->mutex);
    return sink->counts.size();
  }
};

/// The ISSUE's acceptance topology: spout -> relay -> sink with a bolt
/// crash at a fixed execution count plus 1% tuple drop on relay->sink.
FaultyRunResult RunFaultyTopology(int n, bool acking,
                                  FaultInjector* injector) {
  auto sink = std::make_shared<CountingSink::Sink>();
  TopologyBuilder builder;
  builder.SetSpout("source", [n] { return std::make_unique<RootedSpout>(n); },
                   Fields({"v"}));
  builder.SetBolt("relay", [] { return std::make_unique<RelayBolt>(); },
                  Fields({"v"}))
      .ShuffleGrouping("source");
  builder.SetBolt("sink", [sink] { return std::make_unique<CountingSink>(sink); },
                  Fields({}))
      .ShuffleGrouping("relay");
  auto topology = builder.Build();
  EXPECT_TRUE(topology.ok());

  LocalRuntime::Options options;
  options.enable_acking = acking;
  options.ack_timeout_micros = 50'000;    // 50 ms: quick replay rounds
  options.max_replays = 10;
  options.replay_backoff_micros = 5'000;
  options.supervisor_interval_micros = 1'000;
  options.fault_injector = injector;
  LocalRuntime runtime(std::move(*topology), options);
  EXPECT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();

  FaultyRunResult result;
  result.sink = sink;
  result.spout_totals = runtime.metrics()->Totals("source");
  result.restarts = runtime.executor_restarts();
  return result;
}

FaultPlan AcceptanceFaultPlan() {
  FaultPlan plan;
  plan.seed = 20150324;  // fixed: deterministic drop pattern
  plan.crashes.push_back({.component = "relay", .task = 0,
                          .after_executions = 500, .repeat = false});
  plan.routes.push_back({.source = "relay", .dest = "sink",
                         .drop_probability = 0.01});
  return plan;
}

TEST(ReliabilityEndToEndTest, AckingDeliversEveryTupleDespiteFaults) {
  constexpr int kTuples = 2000;
  FaultInjector injector(AcceptanceFaultPlan());
  FaultyRunResult result =
      RunFaultyTopology(kTuples, /*acking=*/true, &injector);

  // The guarantee: every tuple id observed at least once.
  EXPECT_EQ(result.distinct(), static_cast<size_t>(kTuples));
  // Faults actually fired and were healed by replay + supervisor restart.
  EXPECT_GE(injector.crashes_injected(), 1u);
  EXPECT_GT(injector.tuples_dropped(), 0u);
  EXPECT_GE(result.restarts, 1u);
  EXPECT_GT(result.spout_totals.replayed, 0u);
  EXPECT_GT(result.spout_totals.failed, 0u);  // timeouts preceded replays
  EXPECT_EQ(result.spout_totals.acked, static_cast<uint64_t>(kTuples));
}

TEST(ReliabilityEndToEndTest, WithoutAckingSameFaultsLoseTuples) {
  constexpr int kTuples = 2000;
  FaultInjector injector(AcceptanceFaultPlan());
  FaultyRunResult result =
      RunFaultyTopology(kTuples, /*acking=*/false, &injector);

  // Same topology, same faults, no acker: the dropped/crashed tuples are
  // simply gone — demonstrating the guarantee above is real.
  EXPECT_LT(result.distinct(), static_cast<size_t>(kTuples));
  EXPECT_GT(injector.tuples_dropped(), 0u);
  EXPECT_EQ(result.spout_totals.replayed, 0u);
}

TEST(ReliabilityEndToEndTest, CleanRunAcksEveryMessageNoReplays) {
  static constexpr int kTuples = 1000;
  auto sink = std::make_shared<CountingSink::Sink>();
  auto spout = std::make_shared<std::atomic<RootedSpout*>>(nullptr);
  TopologyBuilder builder;
  builder.SetSpout("source",
                   [spout] {
                     auto s = std::make_unique<RootedSpout>(kTuples);
                     spout->store(s.get());
                     return s;
                   },
                   Fields({"v"}));
  builder.SetBolt("relay", [] { return std::make_unique<RelayBolt>(); },
                  Fields({"v"}), 2)
      .ShuffleGrouping("source");
  builder.SetBolt("sink", [sink] { return std::make_unique<CountingSink>(sink); },
                  Fields({}), 2)
      .ShuffleGrouping("relay");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());
  LocalRuntime::Options options;
  options.enable_acking = true;
  LocalRuntime runtime(std::move(*topology), options);
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();

  EXPECT_EQ(runtime.pending_trees(), 0u);
  auto totals = runtime.metrics()->Totals("source");
  EXPECT_EQ(totals.acked, static_cast<uint64_t>(kTuples));
  EXPECT_EQ(totals.failed, 0u);
  EXPECT_EQ(totals.replayed, 0u);
  // Ack callbacks reached the spout instance on its executor thread.
  RootedSpout* instance = spout->load();
  ASSERT_NE(instance, nullptr);
  EXPECT_EQ(instance->acked_ids.size(), static_cast<size_t>(kTuples));
  EXPECT_TRUE(instance->failed_ids.empty());
}

TEST(ReliabilityEndToEndTest, UnackedTopologySurvivesCrashViaSupervisor) {
  // No acking: the crashed tuple is lost but the supervisor restart keeps
  // the topology draining — without it, AwaitCompletion would hang.
  constexpr int kTuples = 1000;
  FaultPlan plan;
  plan.crashes.push_back({.component = "relay", .task = 0,
                          .after_executions = 100, .repeat = false});
  FaultInjector injector(plan);
  FaultyRunResult result =
      RunFaultyTopology(kTuples, /*acking=*/false, &injector);
  EXPECT_EQ(injector.crashes_injected(), 1u);
  EXPECT_GE(result.restarts, 1u);
  // Exactly the one mid-execute tuple is lost.
  EXPECT_EQ(result.distinct(), static_cast<size_t>(kTuples) - 1);
}

TEST(ReliabilityEndToEndTest, ExhaustedReplaysFailTheMessage) {
  // Drop everything on relay->sink: no tree can ever complete, so every
  // message burns its replay budget and Fail() fires.
  static constexpr int kTuples = 5;
  FaultPlan plan;
  plan.routes.push_back({.source = "relay", .dest = "sink",
                         .drop_probability = 1.0});
  FaultInjector injector(plan);

  auto sink = std::make_shared<CountingSink::Sink>();
  auto spout = std::make_shared<std::atomic<RootedSpout*>>(nullptr);
  TopologyBuilder builder;
  builder.SetSpout("source",
                   [spout] {
                     auto s = std::make_unique<RootedSpout>(kTuples);
                     spout->store(s.get());
                     return s;
                   },
                   Fields({"v"}));
  builder.SetBolt("relay", [] { return std::make_unique<RelayBolt>(); },
                  Fields({"v"}))
      .ShuffleGrouping("source");
  builder.SetBolt("sink", [sink] { return std::make_unique<CountingSink>(sink); },
                  Fields({}))
      .ShuffleGrouping("relay");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());
  LocalRuntime::Options options;
  options.enable_acking = true;
  options.ack_timeout_micros = 10'000;
  options.max_replays = 2;
  options.replay_backoff_micros = 1'000;
  options.supervisor_interval_micros = 1'000;
  options.fault_injector = &injector;
  LocalRuntime runtime(std::move(*topology), options);
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();

  auto totals = runtime.metrics()->Totals("source");
  EXPECT_EQ(totals.acked, 0u);
  // Each message: initial emission + 2 replays, all timing out.
  EXPECT_EQ(totals.replayed, static_cast<uint64_t>(kTuples) * 2);
  EXPECT_EQ(totals.failed, static_cast<uint64_t>(kTuples) * 3);
  RootedSpout* instance = spout->load();
  ASSERT_NE(instance, nullptr);
  EXPECT_EQ(instance->failed_ids.size(), static_cast<size_t>(kTuples));
  EXPECT_TRUE(instance->acked_ids.empty());
  EXPECT_EQ(runtime.pending_trees(), 0u);
}

TEST(ReliabilityEndToEndTest, DuplicatesDeliveredAtLeastOnceNotExactlyOnce) {
  // 100% duplication on source->relay: the sink sees >= 2N tuples while
  // every tree still completes (duplicates are tracked edges too).
  constexpr int kTuples = 200;
  FaultPlan plan;
  plan.routes.push_back({.source = "source", .dest = "relay",
                         .duplicate_probability = 1.0});
  FaultInjector injector(plan);
  FaultyRunResult result =
      RunFaultyTopology(kTuples, /*acking=*/true, &injector);
  EXPECT_EQ(result.distinct(), static_cast<size_t>(kTuples));
  size_t total = 0;
  {
    MutexLock lock(result.sink->mutex);
    for (const auto& [value, count] : result.sink->counts) {
      total += static_cast<size_t>(count);
    }
  }
  EXPECT_GE(total, static_cast<size_t>(2 * kTuples));
  EXPECT_EQ(result.spout_totals.acked, static_cast<uint64_t>(kTuples));
}

/// Emits `n` rooted tuples with message ids 1..n and counts its callbacks
/// through shared state (the factory owns the instance).
class CountedIdSpout : public Spout {
 public:
  struct Counts {
    std::atomic<int> acked{0};
    std::atomic<int> failed{0};
  };
  CountedIdSpout(int n, std::shared_ptr<Counts> counts)
      : n_(n), counts_(std::move(counts)) {}
  bool NextTuple(Collector* collector) override {
    if (next_ >= n_) return false;
    collector->EmitRooted(static_cast<uint64_t>(next_ + 1),
                          {Value(int64_t{next_})});
    ++next_;
    return next_ < n_;
  }
  void Ack(uint64_t) override { counts_->acked.fetch_add(1); }
  void Fail(uint64_t) override { counts_->failed.fetch_add(1); }

 private:
  int n_;
  int next_ = 0;
  std::shared_ptr<Counts> counts_;
};

TEST(ReliabilityEndToEndTest, OverlappingSpoutMessageIdsResolveIndependently) {
  // Two spouts numbering their streams 1..N concurrently: message ids are
  // only unique per spout task, so the acker and replay buffer must scope
  // their keys by the emitting task. Regression for a cross-spout id
  // collision that overwrote one tree's accumulator, leaked a pending
  // root, and hung AwaitCompletion forever.
  static constexpr int kPerSpout = 300;
  auto counts_a = std::make_shared<CountedIdSpout::Counts>();
  auto counts_b = std::make_shared<CountedIdSpout::Counts>();
  auto sink = std::make_shared<CountingSink::Sink>();
  TopologyBuilder builder;
  builder.SetSpout("a", [counts_a] {
    return std::make_unique<CountedIdSpout>(kPerSpout, counts_a);
  }, Fields({"v"}));
  builder.SetSpout("b", [counts_b] {
    return std::make_unique<CountedIdSpout>(kPerSpout, counts_b);
  }, Fields({"v"}));
  builder.SetBolt("sink", [sink] { return std::make_unique<CountingSink>(sink); },
                  Fields({}))
      .ShuffleGrouping("a")
      .ShuffleGrouping("b");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());

  LocalRuntime::Options options;
  options.enable_acking = true;
  LocalRuntime runtime(std::move(*topology), options);
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();

  EXPECT_EQ(counts_a->acked.load(), kPerSpout);
  EXPECT_EQ(counts_b->acked.load(), kPerSpout);
  EXPECT_EQ(counts_a->failed.load(), 0);
  EXPECT_EQ(counts_b->failed.load(), 0);
  size_t total = 0;
  {
    MutexLock lock(sink->mutex);
    for (const auto& [value, count] : sink->counts) {
      total += static_cast<size_t>(count);
    }
  }
  EXPECT_EQ(total, static_cast<size_t>(2 * kPerSpout));
  runtime.Stop();
}

// ---------------------------------------------------------------------------
// Replay backoff jitter
// ---------------------------------------------------------------------------

TEST(ReplayJitterTest, JitterSpreadsDelaysWithinBounds) {
  ReplayPolicy policy;
  policy.backoff_base_micros = 10'000;
  policy.backoff_factor = 2.0;
  policy.backoff_jitter = 0.5;
  policy.jitter_seed = 0x5eedULL;
  ReplayBuffer buffer(policy);

  // Trees expiring in the same sweep must not replay in lockstep: across
  // message ids the first-attempt delays spread within the jitter band.
  std::set<MicrosT> distinct;
  for (uint64_t id = 1; id <= 64; ++id) {
    MicrosT delay = buffer.BackoffFor(id, 1);
    EXPECT_GE(delay, static_cast<MicrosT>(10'000 * 0.5));
    EXPECT_LT(delay, static_cast<MicrosT>(10'000 * 1.5));
    distinct.insert(delay);
  }
  EXPECT_GT(distinct.size(), 32u);

  // The exponential shape survives under jitter: attempt 2's band is the
  // doubled base's band.
  for (uint64_t id = 1; id <= 16; ++id) {
    MicrosT delay = buffer.BackoffFor(id, 2);
    EXPECT_GE(delay, static_cast<MicrosT>(20'000 * 0.5));
    EXPECT_LT(delay, static_cast<MicrosT>(20'000 * 1.5));
  }
}

TEST(ReplayJitterTest, JitterIsDeterministicUnderFixedSeed) {
  ReplayPolicy policy;
  policy.backoff_base_micros = 10'000;
  policy.backoff_jitter = 0.5;
  policy.jitter_seed = 0x5eedULL;
  ReplayBuffer a(policy);
  ReplayBuffer b(policy);
  policy.jitter_seed = 0xfeedULL;
  ReplayBuffer c(policy);

  bool seed_differs = false;
  for (uint64_t id = 1; id <= 32; ++id) {
    for (int attempt = 1; attempt <= 3; ++attempt) {
      // Same seed: bitwise identical schedules (reproducible fault runs).
      EXPECT_EQ(a.BackoffFor(id, attempt), b.BackoffFor(id, attempt));
      if (a.BackoffFor(id, attempt) != c.BackoffFor(id, attempt)) {
        seed_differs = true;
      }
    }
  }
  EXPECT_TRUE(seed_differs);
}

TEST(ReplayJitterTest, ZeroJitterKeepsSeedBackoffExactly) {
  ReplayPolicy policy;
  policy.backoff_base_micros = 10'000;
  policy.backoff_factor = 2.0;
  ReplayBuffer buffer(policy);
  EXPECT_EQ(buffer.BackoffFor(1, 1), 10'000);
  EXPECT_EQ(buffer.BackoffFor(2, 1), 10'000);
  EXPECT_EQ(buffer.BackoffFor(1, 2), 20'000);
  EXPECT_EQ(buffer.BackoffFor(1, 3), 40'000);
}

TEST(ReplayJitterTest, FailSchedulesTheJitteredDelay) {
  ReplayPolicy policy;
  policy.max_replays = 3;
  policy.backoff_base_micros = 10'000;
  policy.backoff_jitter = 0.5;
  policy.jitter_seed = 0x5eedULL;
  ReplayBuffer buffer(policy);
  buffer.Store(7, 0, 0, {Value(int64_t{1})});

  const MicrosT expected = buffer.BackoffFor(7, 1);
  ASSERT_TRUE(buffer.Fail(7, 0, 0, /*now=*/1'000'000));
  // Not due one tick before the jittered deadline, due exactly at it.
  EXPECT_TRUE(buffer.TakeDue(0, 0, 1'000'000 + expected - 1).empty());
  std::vector<ReplayBuffer::Due> due =
      buffer.TakeDue(0, 0, 1'000'000 + expected);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].message_id, 7u);
  EXPECT_EQ(due[0].attempt, 1);
}

}  // namespace
}  // namespace reliability
}  // namespace insight
