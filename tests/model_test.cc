#include <gtest/gtest.h>

#include "common/rng.h"
#include "model/latency_model.h"
#include "model/regression.h"

namespace insight {
namespace model {
namespace {

// ---------------------------------------------------------------------------
// PolynomialRegression
// ---------------------------------------------------------------------------

TEST(RegressionTest, TermGeneration) {
  PolynomialRegression linear2(2, 1);
  // constant, x0, x1.
  EXPECT_EQ(linear2.num_terms(), 3u);
  PolynomialRegression quad2(2, 2);
  // constant, x0, x1, x0^2, x0*x1, x1^2.
  EXPECT_EQ(quad2.num_terms(), 6u);
  PolynomialRegression cubic1(1, 3);
  EXPECT_EQ(cubic1.num_terms(), 4u);
  // The constant term is always first.
  for (int e : quad2.terms()[0]) EXPECT_EQ(e, 0);
}

TEST(RegressionTest, RecoversExactLinearModel) {
  // y = 2.5 + 3x0 - 0.5x1.
  PolynomialRegression reg(2, 1);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    double a = rng.Uniform(0, 100), b = rng.Uniform(0, 100);
    x.push_back({a, b});
    y.push_back(2.5 + 3 * a - 0.5 * b);
  }
  ASSERT_TRUE(reg.Fit(x, y).ok());
  EXPECT_NEAR(reg.Predict({10, 20}), 2.5 + 30 - 10, 1e-6);
  EXPECT_NEAR(reg.MeanAbsoluteError(x, y), 0.0, 1e-6);
  EXPECT_NEAR(reg.coefficients()[0], 2.5, 1e-6);
}

TEST(RegressionTest, RecoversQuadraticWithCrossTerm) {
  // y = 1 + x0^2 + 2 x0 x1.
  PolynomialRegression reg(2, 2);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    double a = rng.Uniform(-5, 5), b = rng.Uniform(-5, 5);
    x.push_back({a, b});
    y.push_back(1 + a * a + 2 * a * b);
  }
  ASSERT_TRUE(reg.Fit(x, y).ok());
  EXPECT_NEAR(reg.Predict({2, 3}), 1 + 4 + 12, 1e-6);
}

TEST(RegressionTest, LowerOrderWinsOnLinearNoisyData) {
  // Section 5.1's finding: for near-linear latency data, the 1st-order model
  // generalizes better than the 2nd-order one. Reproduce with a train/test
  // split of a noisy linear function.
  Rng rng(3);
  std::vector<std::vector<double>> train_x, test_x;
  std::vector<double> train_y, test_y;
  auto f = [](double a, double b) { return 2.47 + 0.0078 * a + 0.9 * b; };
  for (int i = 0; i < 40; ++i) {
    double a = rng.Uniform(0, 30), b = rng.Uniform(0, 30);
    train_x.push_back({a, b});
    train_y.push_back(f(a, b) + rng.Gaussian(0, 2.0));
  }
  for (int i = 0; i < 200; ++i) {
    double a = rng.Uniform(0, 30), b = rng.Uniform(0, 30);
    test_x.push_back({a, b});
    test_y.push_back(f(a, b));
  }
  PolynomialRegression first(2, 1), second(2, 2);
  ASSERT_TRUE(first.Fit(train_x, train_y).ok());
  ASSERT_TRUE(second.Fit(train_x, train_y).ok());
  EXPECT_LE(first.MeanAbsoluteError(test_x, test_y),
            second.MeanAbsoluteError(test_x, test_y) * 1.2);
}

TEST(RegressionTest, FitValidation) {
  PolynomialRegression reg(2, 1);
  EXPECT_FALSE(reg.Fit({{1, 2}}, {1.0}).ok());            // too few samples
  EXPECT_FALSE(reg.Fit({{1}, {2}, {3}}, {1, 2, 3}).ok()); // wrong dimension
  EXPECT_FALSE(reg.Fit({{1, 1}, {1, 1}, {1, 1}}, {1, 1, 1}).ok());  // singular
}

TEST(RegressionTest, SetCoefficients) {
  PolynomialRegression reg(2, 1);
  ASSERT_TRUE(reg.SetCoefficients({2.4717, 0.0077598, 2.3016e-05}).ok());
  EXPECT_NEAR(reg.Predict({100, 1000}), 2.4717 + 0.77598 + 0.023016, 1e-9);
  EXPECT_FALSE(reg.SetCoefficients({1.0}).ok());
}

TEST(LinearSolverTest, SolvesAndDetectsSingular) {
  std::vector<double> x;
  ASSERT_TRUE(SolveLinearSystem({{2, 1}, {1, 3}}, {5, 10}, &x).ok());
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 3.0, 1e-9);
  EXPECT_FALSE(SolveLinearSystem({{1, 2}, {2, 4}}, {1, 2}, &x).ok());
}

// ---------------------------------------------------------------------------
// LatencyModel
// ---------------------------------------------------------------------------

TEST(LatencyModelTest, Function1MonotoneInWindowAndThresholds) {
  LatencyModel model = LatencyModel::Default();
  EXPECT_LT(model.SingleRuleLatency(1, 10), model.SingleRuleLatency(100, 10));
  EXPECT_LT(model.SingleRuleLatency(100, 10),
            model.SingleRuleLatency(100, 10000));
  EXPECT_GE(model.SingleRuleLatency(0, 0), 0.0);
}

TEST(LatencyModelTest, MeasuredLatencyOverridesFunction1) {
  LatencyModel model = LatencyModel::Default();
  RuleCharacteristics rule;
  rule.window_length = 100;
  rule.num_thresholds = 50;
  rule.measured_latency_micros = 123.0;
  EXPECT_DOUBLE_EQ(model.RuleLatency(rule), 123.0);
}

TEST(LatencyModelTest, Function2ChainsForManyRules) {
  LatencyModel model = LatencyModel::Default();
  RuleCharacteristics rule;
  rule.window_length = 10;
  rule.num_thresholds = 10;
  double one = model.EngineLatency({rule});
  double two = model.EngineLatency({rule, rule});
  double four = model.EngineLatency({rule, rule, rule, rule});
  EXPECT_LT(one, two);
  EXPECT_LT(two, four);
  EXPECT_DOUBLE_EQ(model.EngineLatency({}), 0.0);
}

TEST(LatencyModelTest, Function3InflatesUnderColocation) {
  LatencyModel model = LatencyModel::Default();
  double alone = model.ColocatedLatency(10.0, {});
  double crowded = model.ColocatedLatency(10.0, {10.0, 10.0});
  EXPECT_DOUBLE_EQ(alone, 10.0);
  EXPECT_GT(crowded, alone);
}

TEST(LatencyModelTest, EstimateAllRespectsNodePlacement) {
  LatencyModel model = LatencyModel::Default();
  RuleCharacteristics rule;
  rule.window_length = 100;
  rule.num_thresholds = 100;
  // Engines 0 and 1 share node 0; engine 2 is alone on node 1.
  auto latencies =
      model.EstimateAll({{rule}, {rule}, {rule}}, {0, 0, 1});
  ASSERT_EQ(latencies.size(), 3u);
  EXPECT_GT(latencies[0], latencies[2]);
  EXPECT_NEAR(latencies[0], latencies[1], 1e-9);
}

}  // namespace
}  // namespace model
}  // namespace insight
