#include "core/sequence.h"

#include <gtest/gtest.h>

namespace insight {
namespace core {
namespace {

constexpr MicrosT kMinute = 60'000'000;

class SequenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ConsecutiveStopsDetector::Options options;
    options.k = 3;
    options.window_micros = 10 * kMinute;
    detector_ = std::make_unique<ConsecutiveStopsDetector>(options);
    ASSERT_TRUE(
        detector_->RegisterLine(41, false, {100, 101, 102, 103, 104}).ok());
  }

  std::unique_ptr<ConsecutiveStopsDetector> detector_;
};

TEST_F(SequenceTest, FiresOnThreeConsecutiveStops) {
  EXPECT_FALSE(detector_->Observe(41, false, 100, 0).has_value());
  EXPECT_FALSE(detector_->Observe(41, false, 101, kMinute).has_value());
  auto match = detector_->Observe(41, false, 102, 2 * kMinute);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->line_id, 41);
  EXPECT_EQ(match->stops, (std::vector<int64_t>{100, 101, 102}));
  EXPECT_EQ(match->first_timestamp, 0);
  EXPECT_EQ(match->last_timestamp, 2 * kMinute);
}

TEST_F(SequenceTest, GapBreaksTheRun) {
  detector_->Observe(41, false, 100, 0);
  // stop 101 never reports; 102 completes no run.
  EXPECT_FALSE(detector_->Observe(41, false, 102, kMinute).has_value());
  // And neither does 103 (needs 101..103 or 102..104 complete).
  EXPECT_FALSE(detector_->Observe(41, false, 103, 2 * kMinute).has_value());
}

TEST_F(SequenceTest, OutOfOrderArrivalStillCompletesRun) {
  detector_->Observe(41, false, 102, 0);
  detector_->Observe(41, false, 100, kMinute);
  // The middle stop arrives last but the run 100..102 is complete... it can
  // only fire when the *ending* stop is observed though — observe 102 again.
  detector_->Observe(41, false, 101, 2 * kMinute);
  auto match = detector_->Observe(41, false, 102, 3 * kMinute);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->stops, (std::vector<int64_t>{100, 101, 102}));
}

TEST_F(SequenceTest, WindowExpiryPreventsStaleRuns) {
  detector_->Observe(41, false, 100, 0);
  detector_->Observe(41, false, 101, kMinute);
  // 102 arrives 30 minutes later: the earlier anomalies are stale.
  EXPECT_FALSE(detector_->Observe(41, false, 102, 30 * kMinute).has_value());
  // Fresh anomalies at 100/101 re-arm the run.
  detector_->Observe(41, false, 100, 31 * kMinute);
  detector_->Observe(41, false, 101, 32 * kMinute);
  EXPECT_TRUE(detector_->Observe(41, false, 102, 33 * kMinute).has_value());
}

TEST_F(SequenceTest, DirectionsAreIndependent) {
  ASSERT_TRUE(
      detector_->RegisterLine(41, true, {104, 103, 102, 101, 100}).ok());
  detector_->Observe(41, false, 100, 0);
  detector_->Observe(41, false, 101, kMinute);
  // Anomaly on the reverse direction must not complete the forward run.
  EXPECT_FALSE(detector_->Observe(41, true, 102, 2 * kMinute).has_value());
  EXPECT_TRUE(detector_->Observe(41, false, 102, 2 * kMinute).has_value());
}

TEST_F(SequenceTest, UnknownLineOrStopIgnored) {
  EXPECT_FALSE(detector_->Observe(99, false, 100, 0).has_value());
  EXPECT_FALSE(detector_->Observe(41, false, 999, 0).has_value());
}

TEST_F(SequenceTest, MidRouteRunFires) {
  detector_->Observe(41, false, 102, 0);
  detector_->Observe(41, false, 103, kMinute);
  auto match = detector_->Observe(41, false, 104, 2 * kMinute);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->stops, (std::vector<int64_t>{102, 103, 104}));
}

TEST_F(SequenceTest, ExpireBeforeFreesState) {
  detector_->Observe(41, false, 100, 0);
  detector_->Observe(41, false, 101, kMinute);
  detector_->ExpireBefore(20 * kMinute);
  detector_->Observe(41, false, 101, 21 * kMinute);
  EXPECT_FALSE(detector_->Observe(41, false, 102, 22 * kMinute).has_value());
}

TEST_F(SequenceTest, RegistrationValidation) {
  EXPECT_FALSE(detector_->RegisterLine(7, false, {1, 2}).ok());     // < k stops
  EXPECT_FALSE(detector_->RegisterLine(7, false, {1, 2, 2}).ok());  // duplicate
  EXPECT_TRUE(detector_->RegisterLine(7, false, {1, 2, 3}).ok());
}

TEST_F(SequenceTest, KTwoFiresOnPairs) {
  ConsecutiveStopsDetector::Options options;
  options.k = 2;
  options.window_micros = 5 * kMinute;
  ConsecutiveStopsDetector detector(options);
  ASSERT_TRUE(detector.RegisterLine(1, false, {10, 11, 12}).ok());
  detector.Observe(1, false, 10, 0);
  EXPECT_TRUE(detector.Observe(1, false, 11, kMinute).has_value());
}

}  // namespace
}  // namespace core
}  // namespace insight
