// Deeper coverage of the statement executor: joins, ORDER BY, INSERT INTO,
// multi-statement engines, OR/NOT predicates, arithmetic projections and
// batch windows inside joins.

#include <gtest/gtest.h>

#include "cep/engine.h"

namespace insight {
namespace cep {
namespace {

class StatementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_
                    .RegisterEventType("reading", {{"sensor", ValueType::kInt},
                                                   {"zone", ValueType::kInt},
                                                   {"value", ValueType::kDouble},
                                                   {"ok", ValueType::kBool}})
                    .ok());
    ASSERT_TRUE(engine_
                    .RegisterEventType("alert", {{"zone", ValueType::kInt},
                                                 {"severity", ValueType::kDouble}})
                    .ok());
    ASSERT_TRUE(engine_
                    .RegisterEventType("config", {{"zone", ValueType::kInt},
                                                  {"limit", ValueType::kDouble}})
                    .ok());
  }

  void SendReading(int64_t sensor, int64_t zone, double value, bool ok = true) {
    engine_.SendEvent(engine_.NewEvent("reading")
                          .Set("sensor", sensor)
                          .Set("zone", zone)
                          .Set("value", value)
                          .Set("ok", ok)
                          .Build());
  }

  void SendConfig(int64_t zone, double limit) {
    engine_.SendEvent(engine_.NewEvent("config")
                          .Set("zone", zone)
                          .Set("limit", limit)
                          .Build());
  }

  Engine engine_;
};

TEST_F(StatementTest, OrderBySortsMatchesWithinEvaluation) {
  // Every arrival re-evaluates all zones (no WHERE anchoring to the new
  // event): matches must come out ordered by the aggregate, descending.
  auto stmt = engine_.AddStatement(
      "@Trigger(reading) SELECT r.zone AS zone, avg(r.value) AS mean "
      "FROM reading.std:groupwin(zone).win:length(4) as r "
      "GROUP BY r.zone ORDER BY avg(r.value) DESC",
      "ordered");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  std::vector<std::vector<int64_t>> evaluations;
  std::vector<int64_t> current;
  (*stmt)->AddListener([&](const MatchResult& m) {
    current.push_back(m.Get("zone")->AsInt());
  });
  SendReading(1, 1, 10.0);
  SendReading(2, 2, 30.0);
  current.clear();
  SendReading(3, 3, 20.0);  // zones now: 1->10, 2->30, 3->20
  ASSERT_EQ(current.size(), 3u);
  EXPECT_EQ(current, (std::vector<int64_t>{2, 3, 1}));
}

TEST_F(StatementTest, OrderByAscendingIsDefault) {
  auto stmt = engine_.AddStatement(
      "@Trigger(reading) SELECT r.zone AS zone FROM "
      "reading.std:groupwin(zone).win:length(1) as r GROUP BY r.zone "
      "ORDER BY r.zone",
      "asc");
  ASSERT_TRUE(stmt.ok());
  std::vector<int64_t> zones;
  (*stmt)->AddListener(
      [&](const MatchResult& m) { zones.push_back(m.Get("zone")->AsInt()); });
  SendReading(1, 5, 1.0);
  SendReading(2, 3, 1.0);
  zones.clear();
  SendReading(3, 9, 1.0);
  EXPECT_EQ(zones, (std::vector<int64_t>{3, 5, 9}));
}

TEST_F(StatementTest, OrderByWithLimitYieldsTopK) {
  // Top-2 zones by average value — the "most congested areas" query.
  auto stmt = engine_.AddStatement(
      "@Trigger(reading) SELECT r.zone AS zone, avg(r.value) AS mean "
      "FROM reading.std:groupwin(zone).win:length(4) as r "
      "GROUP BY r.zone ORDER BY avg(r.value) DESC LIMIT 2",
      "topk");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  std::vector<int64_t> current;
  (*stmt)->AddListener([&](const MatchResult& m) {
    current.push_back(m.Get("zone")->AsInt());
  });
  SendReading(1, 1, 10.0);
  SendReading(2, 2, 30.0);
  SendReading(3, 4, 5.0);
  current.clear();
  SendReading(4, 3, 20.0);  // zones: 1->10, 2->30, 3->20, 4->5
  EXPECT_EQ(current, (std::vector<int64_t>{2, 3}));  // top two only
}

TEST_F(StatementTest, LimitValidation) {
  EXPECT_FALSE(engine_
                   .AddStatement(
                       "SELECT r.zone AS z FROM reading.win:keepall() as r "
                       "LIMIT 0")
                   .ok());
  EXPECT_FALSE(engine_
                   .AddStatement(
                       "SELECT r.zone AS z FROM reading.win:keepall() as r "
                       "LIMIT x")
                   .ok());
}

TEST_F(StatementTest, InsertIntoFeedsDownstreamRule) {
  // Stage 1: per-zone average over limit -> alert events.
  auto stage1 = engine_.AddStatement(
      "@Trigger(reading) INSERT INTO alert "
      "SELECT r.zone AS zone, avg(r.value) AS severity "
      "FROM reading.std:lastevent() as r2, "
      "     reading.std:groupwin(zone).win:length(2) as r, "
      "     config.std:unique(zone) as c "
      "WHERE r2.zone = r.zone and r2.zone = c.zone "
      "GROUP BY r.zone HAVING avg(r.value) > avg(c.limit)",
      "stage1");
  ASSERT_TRUE(stage1.ok()) << stage1.status().ToString();
  // Stage 2: counts alerts per zone (a composite-over-composite rule).
  auto stage2 = engine_.AddStatement(
      "@Trigger(alert) SELECT a.zone AS zone, count(*) AS n "
      "FROM alert.std:groupwin(zone).win:keepall() as a GROUP BY a.zone",
      "stage2");
  ASSERT_TRUE(stage2.ok()) << stage2.status().ToString();
  std::vector<int64_t> alert_counts;
  (*stage2)->AddListener([&](const MatchResult& m) {
    alert_counts.push_back(m.Get("n")->AsInt());
  });

  SendConfig(7, 100.0);
  SendReading(1, 7, 150.0);
  SendReading(1, 7, 170.0);  // avg 160 > 100 -> alert -> stage2 fires
  SendReading(1, 7, 180.0);  // avg 175 > 100 -> second alert
  ASSERT_GE(alert_counts.size(), 2u);
  EXPECT_EQ(alert_counts.back(), static_cast<int64_t>(alert_counts.size()));
}

TEST_F(StatementTest, InsertIntoUnknownTypeRejected) {
  auto r = engine_.AddStatement(
      "INSERT INTO nosuch SELECT r.zone AS zone FROM reading.win:keepall() as r");
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(StatementTest, InsertIntoWithSelectStarRejected) {
  auto r = engine_.AddStatement(
      "INSERT INTO alert SELECT * FROM reading.win:keepall() as r");
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(StatementTest, InsertIntoSelfCycleIsCapped) {
  // alert -> alert would recurse forever; the engine caps the depth instead
  // of overflowing the stack.
  auto stmt = engine_.AddStatement(
      "INSERT INTO alert SELECT a.zone AS zone, a.severity + 1 AS severity "
      "FROM alert.std:lastevent() as a",
      "selfloop");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  engine_.SendEvent(engine_.NewEvent("alert")
                        .Set("zone", int64_t{1})
                        .Set("severity", 0.0)
                        .Build());
  // If we got here, the cap worked; the engine stayed consistent.
  EXPECT_GT(engine_.GetStats().events_processed, 1u);
}

TEST_F(StatementTest, OrAndNotPredicates) {
  auto stmt = engine_.AddStatement(
      "@Trigger(reading) SELECT r.sensor AS sensor FROM "
      "reading.std:lastevent() as r "
      "WHERE (r.value > 100 or r.zone = 9) and not r.ok",
      "ornot");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  std::vector<int64_t> fired;
  (*stmt)->AddListener(
      [&](const MatchResult& m) { fired.push_back(m.Get("sensor")->AsInt()); });
  SendReading(1, 1, 150.0, true);   // ok=true -> no
  SendReading(2, 1, 150.0, false);  // value>100 and !ok -> yes
  SendReading(3, 9, 10.0, false);   // zone=9 and !ok -> yes
  SendReading(4, 1, 10.0, false);   // neither -> no
  EXPECT_EQ(fired, (std::vector<int64_t>{2, 3}));
}

TEST_F(StatementTest, ArithmeticProjection) {
  auto stmt = engine_.AddStatement(
      "@Trigger(reading) SELECT r.value * 2 + 1 AS scaled, "
      "r.value / 4 AS quarter, r.zone % 3 AS mod "
      "FROM reading.std:lastevent() as r",
      "math");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  MatchResult last;
  (*stmt)->AddListener([&](const MatchResult& m) { last = m; });
  SendReading(1, 7, 10.0);
  EXPECT_DOUBLE_EQ(last.Get("scaled")->AsDouble(), 21.0);
  EXPECT_DOUBLE_EQ(last.Get("quarter")->AsDouble(), 2.5);
  EXPECT_EQ(last.Get("mod")->AsInt(), 1);
}

TEST_F(StatementTest, DivisionByZeroYieldsZeroNotCrash) {
  auto stmt = engine_.AddStatement(
      "@Trigger(reading) SELECT r.value / (r.zone - r.zone) AS d, "
      "r.zone % (r.zone - r.zone) AS m FROM reading.std:lastevent() as r",
      "divzero");
  ASSERT_TRUE(stmt.ok());
  MatchResult last;
  (*stmt)->AddListener([&](const MatchResult& m) { last = m; });
  SendReading(1, 4, 8.0);
  EXPECT_DOUBLE_EQ(last.Get("d")->AsDouble(), 0.0);
  EXPECT_EQ(last.Get("m")->AsInt(), 0);
}

TEST_F(StatementTest, MultipleStatementsShareStreams) {
  auto a = engine_.AddStatement(
      "@Trigger(reading) SELECT count(*) AS n FROM reading.win:keepall() as r",
      "a");
  auto b = engine_.AddStatement(
      "@Trigger(reading) SELECT max(r.value) AS m FROM reading.win:length(2) as r",
      "b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  int64_t count = 0;
  double max_value = 0;
  (*a)->AddListener([&](const MatchResult& m) { count = m.Get("n")->AsInt(); });
  (*b)->AddListener(
      [&](const MatchResult& m) { max_value = m.Get("m")->AsDouble(); });
  SendReading(1, 1, 5.0);
  SendReading(2, 1, 9.0);
  SendReading(3, 1, 2.0);
  EXPECT_EQ(count, 3);
  EXPECT_DOUBLE_EQ(max_value, 9.0);  // window {9, 2}
}

TEST_F(StatementTest, MinMaxSumStddevAggregates) {
  auto stmt = engine_.AddStatement(
      "@Trigger(reading) SELECT min(r.value) AS lo, max(r.value) AS hi, "
      "sum(r.value) AS total, stddev(r.value) AS sd "
      "FROM reading.win:keepall() as r",
      "aggs");
  ASSERT_TRUE(stmt.ok());
  MatchResult last;
  (*stmt)->AddListener([&](const MatchResult& m) { last = m; });
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) SendReading(1, 1, v);
  EXPECT_DOUBLE_EQ(last.Get("lo")->AsDouble(), 2.0);
  EXPECT_DOUBLE_EQ(last.Get("hi")->AsDouble(), 9.0);
  EXPECT_DOUBLE_EQ(last.Get("total")->AsDouble(), 40.0);
  EXPECT_NEAR(last.Get("sd")->AsDouble(), 2.0, 1e-9);  // classic example
}

TEST_F(StatementTest, LengthBatchEmitsOnlyOnFlushBoundary) {
  // A batch window inside a statement: the count reflects accumulation and
  // resets after the flush.
  auto stmt = engine_.AddStatement(
      "@Trigger(reading) SELECT count(*) AS n FROM "
      "reading.win:length_batch(3) as r",
      "batch");
  ASSERT_TRUE(stmt.ok());
  std::vector<int64_t> counts;
  (*stmt)->AddListener(
      [&](const MatchResult& m) { counts.push_back(m.Get("n")->AsInt()); });
  for (int i = 0; i < 7; ++i) SendReading(1, 1, i);
  // The 3rd and 6th arrivals flush the batch (window empties), and an empty
  // join produces no match, so the series is 1,2,1,2,1.
  EXPECT_EQ(counts, (std::vector<int64_t>{1, 2, 1, 2, 1}));
}

TEST_F(StatementTest, ThreeWayJoinWithoutIndexFallsBackToScan) {
  // No equi predicates at all: full cross product filtered by a range
  // predicate.
  auto stmt = engine_.AddStatement(
      "@Trigger(reading) SELECT r.sensor AS sensor, c.zone AS config_zone "
      "FROM reading.std:lastevent() as r, config.win:keepall() as c "
      "WHERE r.value > c.limit",
      "scan");
  ASSERT_TRUE(stmt.ok());
  size_t fired = 0;
  (*stmt)->AddListener([&](const MatchResult&) { ++fired; });
  SendConfig(1, 10.0);
  SendConfig(2, 20.0);
  SendConfig(3, 30.0);
  SendReading(1, 1, 25.0);  // beats limits 10 and 20 -> 2 matches
  EXPECT_EQ(fired, 2u);
}

TEST_F(StatementTest, JoinIndexStaysConsistentUnderWindowEviction) {
  // The hash index on an ungrouped length window must drop evicted events.
  auto stmt = engine_.AddStatement(
      "@Trigger(reading) SELECT c.limit AS limit FROM "
      "reading.std:lastevent() as r, config.win:length(2) as c "
      "WHERE c.zone = r.zone",
      "evict");
  ASSERT_TRUE(stmt.ok());
  std::vector<double> limits;
  (*stmt)->AddListener(
      [&](const MatchResult& m) { limits.push_back(m.Get("limit")->AsDouble()); });
  SendConfig(1, 10.0);
  SendConfig(2, 20.0);
  SendConfig(3, 30.0);  // zone-1 config evicted from the length-2 window
  SendReading(1, 1, 5.0);
  EXPECT_TRUE(limits.empty()) << "evicted config matched";
  SendReading(2, 3, 5.0);
  ASSERT_EQ(limits.size(), 1u);
  EXPECT_DOUBLE_EQ(limits[0], 30.0);
}

TEST_F(StatementTest, BareFieldResolvesWhenUnambiguous) {
  auto stmt = engine_.AddStatement(
      "@Trigger(reading) SELECT sensor AS s FROM reading.std:lastevent() as r "
      "WHERE ok = true",
      "bare");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto ambiguous = engine_.AddStatement(
      "SELECT zone AS z FROM reading.win:keepall() as r, "
      "config.win:keepall() as c");
  EXPECT_FALSE(ambiguous.ok());  // zone exists in both streams
}

TEST_F(StatementTest, TypeCheckerRejectsStringMisuse) {
  ASSERT_TRUE(engine_
                  .RegisterEventType("msg", {{"text", ValueType::kString},
                                             {"n", ValueType::kInt}})
                  .ok());
  // avg over a string field.
  auto r1 = engine_.AddStatement(
      "SELECT avg(m.text) AS a FROM msg.win:keepall() as m");
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);
  // Arithmetic on a string.
  auto r2 = engine_.AddStatement(
      "SELECT m.text + 1 AS a FROM msg.win:keepall() as m");
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);
  // Ordering comparison between string and number.
  auto r3 = engine_.AddStatement(
      "SELECT * FROM msg.win:keepall() as m WHERE m.text > 5");
  EXPECT_EQ(r3.status().code(), StatusCode::kInvalidArgument);
  // Equality against a string is fine; so is count() over strings.
  auto ok = engine_.AddStatement(
      "SELECT count(m.text) AS c FROM msg.win:keepall() as m "
      "WHERE m.text = 'hello'");
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST_F(StatementTest, StringComparisonInWhere) {
  ASSERT_TRUE(engine_
                  .RegisterEventType("tagged", {{"tag", ValueType::kString},
                                                {"v", ValueType::kInt}})
                  .ok());
  auto stmt = engine_.AddStatement(
      "@Trigger(tagged) SELECT t.v AS v FROM tagged.std:lastevent() as t "
      "WHERE t.tag = 'urgent'",
      "strcmp");
  ASSERT_TRUE(stmt.ok());
  size_t fired = 0;
  (*stmt)->AddListener([&](const MatchResult&) { ++fired; });
  engine_.SendEvent(
      engine_.NewEvent("tagged").Set("tag", "normal").Set("v", 1).Build());
  engine_.SendEvent(
      engine_.NewEvent("tagged").Set("tag", "urgent").Set("v", 2).Build());
  EXPECT_EQ(fired, 1u);
}

}  // namespace
}  // namespace cep
}  // namespace insight
