#include <gtest/gtest.h>

#include "sim/cluster_sim.h"

namespace insight {
namespace sim {
namespace {

ClusterSimulation::Config OneNode(int cores = 1) {
  ClusterSimulation::Config config;
  config.node_cores = {cores};
  config.network_latency_micros = 0.0;
  config.serialization_micros = 0.0;
  config.duration_micros = 1'000'000;  // 1 s
  return config;
}

ClusterSimulation::Router ToEngine(int engine) {
  return [engine](uint64_t, std::vector<int>* targets) {
    targets->push_back(engine);
  };
}

TEST(ClusterSimTest, UnderloadedLatencyEqualsServiceTime) {
  // 100 tuples/s at 10 us each: no queueing, sojourn == service time.
  ClusterSimulation sim(OneNode(), {{0, 10.0}});
  auto result = sim.Run(100.0, ToEngine(0));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->avg_latency_micros, 10.0, 0.5);
  EXPECT_NEAR(static_cast<double>(result->copies_processed), 100.0, 2.0);
}

TEST(ClusterSimTest, SaturatedEngineCapsThroughput) {
  // Service 1000 us/tuple => capacity 1000 tuples/s; offer 5000/s.
  ClusterSimulation sim(OneNode(), {{0, 1000.0}});
  auto result = sim.Run(5000.0, ToEngine(0));
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(static_cast<double>(result->copies_processed), 1000.0, 20.0);
  // Queueing dominates: average sojourn far above service time.
  EXPECT_GT(result->avg_latency_micros, 10'000.0);
}

TEST(ClusterSimTest, TwoEnginesOnOneCoreTimeshare) {
  // Two engines on one 1-core node, each fed half the stream: the node can
  // still only do 1000 services/s at 1000 us each.
  ClusterSimulation sim(OneNode(1), {{0, 1000.0}, {0, 1000.0}});
  auto result = sim.Run(4000.0, [](uint64_t i, std::vector<int>* t) {
    t->push_back(static_cast<int>(i % 2));
  });
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(static_cast<double>(result->copies_processed), 1000.0, 30.0);
}

TEST(ClusterSimTest, SecondNodeDoublesCapacity) {
  ClusterSimulation::Config config = OneNode(1);
  config.node_cores = {1, 1};
  ClusterSimulation sim(config, {{0, 1000.0}, {1, 1000.0}});
  auto result = sim.Run(4000.0, [](uint64_t i, std::vector<int>* t) {
    t->push_back(static_cast<int>(i % 2));
  });
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(static_cast<double>(result->copies_processed), 2000.0, 40.0);
}

TEST(ClusterSimTest, NetworkLatencyAddsToRemoteSojourn) {
  ClusterSimulation::Config config = OneNode(1);
  config.node_cores = {1, 1};
  config.network_latency_micros = 500.0;
  config.source_node = 0;
  // Engine on node 1 is remote; same service time as a local engine.
  ClusterSimulation local(config, {{0, 10.0}});
  ClusterSimulation remote(config, {{1, 10.0}});
  auto local_result = local.Run(100.0, ToEngine(0));
  auto remote_result = remote.Run(100.0, ToEngine(0));
  ASSERT_TRUE(local_result.ok());
  ASSERT_TRUE(remote_result.ok());
  // Sojourn measured from delivery, so the visible effect is fewer tuples
  // completed before the horizon plus the delivery offset; compare arrivals.
  EXPECT_EQ(local_result->copies_transmitted,
            remote_result->copies_transmitted);
  EXPECT_GE(local_result->copies_processed, remote_result->copies_processed);
}

TEST(ClusterSimTest, AllGroupingMultipliesLoad) {
  // Replicating to 4 engines on one core quadruples the work.
  ClusterSimulation::Config config = OneNode(1);
  std::vector<ClusterSimulation::EngineSpec> engines(4, {0, 500.0});
  ClusterSimulation sim(config, engines);
  auto replicated = sim.Run(1000.0, [](uint64_t, std::vector<int>* t) {
    for (int e = 0; e < 4; ++e) t->push_back(e);
  });
  auto partitioned = sim.Run(1000.0, [](uint64_t i, std::vector<int>* t) {
    t->push_back(static_cast<int>(i % 4));
  });
  ASSERT_TRUE(replicated.ok());
  ASSERT_TRUE(partitioned.ok());
  EXPECT_EQ(replicated->copies_transmitted, 4 * partitioned->copies_transmitted);
  EXPECT_GT(replicated->avg_latency_micros, partitioned->avg_latency_micros);
}

TEST(ClusterSimTest, OversubscriptionBlowsUpLatency) {
  // The Figure 16 effect: 6 engines on 3 single-core nodes vs 6 engines on
  // 7 nodes, same total offered load near capacity.
  std::vector<double> service{800.0};
  auto engines3 = SpreadEngines(6, 3, service);
  auto engines7 = SpreadEngines(6, 7, service);
  ClusterSimulation::Config config3 = OneNode(1);
  config3.node_cores = std::vector<int>(3, 1);
  ClusterSimulation::Config config7 = OneNode(1);
  config7.node_cores = std::vector<int>(7, 1);
  auto router = [](uint64_t i, std::vector<int>* t) {
    t->push_back(static_cast<int>(i % 6));
  };
  auto r3 = ClusterSimulation(config3, engines3).Run(4500.0, router);
  auto r7 = ClusterSimulation(config7, engines7).Run(4500.0, router);
  ASSERT_TRUE(r3.ok());
  ASSERT_TRUE(r7.ok());
  // 3 nodes x 1 core can do 3750 services/s; 6 nodes used of 7 can do 7500.
  EXPECT_GT(r3->avg_latency_micros, 5.0 * r7->avg_latency_micros);
  EXPECT_GT(r7->copies_processed, r3->copies_processed);
}

TEST(ClusterSimTest, ValidatesConfiguration) {
  EXPECT_FALSE(ClusterSimulation(OneNode(), {}).Validate().ok());
  EXPECT_FALSE(ClusterSimulation(OneNode(), {{5, 10.0}}).Validate().ok());
  EXPECT_FALSE(ClusterSimulation(OneNode(), {{0, -1.0}}).Validate().ok());
  ClusterSimulation::Config bad = OneNode();
  bad.node_cores = {0};
  EXPECT_FALSE(ClusterSimulation(bad, {{0, 10.0}}).Validate().ok());
  ClusterSimulation ok_sim(OneNode(), {{0, 10.0}});
  EXPECT_TRUE(ok_sim.Validate().ok());
  EXPECT_FALSE(ok_sim.Run(-5.0, ToEngine(0)).ok());
}

TEST(ClusterSimTest, DeterministicAcrossRuns) {
  ClusterSimulation sim(OneNode(2), {{0, 100.0}, {0, 150.0}});
  auto router = [](uint64_t i, std::vector<int>* t) {
    t->push_back(static_cast<int>(i % 2));
  };
  auto a = sim.Run(2000.0, router);
  auto b = sim.Run(2000.0, router);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->copies_processed, b->copies_processed);
  EXPECT_DOUBLE_EQ(a->avg_latency_micros, b->avg_latency_micros);
}

}  // namespace
}  // namespace sim
}  // namespace insight
