// Chaos acceptance run (ISSUE 6 satellite): a 3-worker distributed
// Listing-1 topology with one worker SIGKILLed mid-stream must produce the
// exact detection multiset of a fault-free single-process run — the
// effectively-once guarantee (checkpointed state + egress retransmit +
// dedup ledgers) has to survive the network hop and a process death.
//
// Like dist_test, this binary is its own cluster's worker binary: main()
// routes --insight-* invocations to the worker role before gtest runs.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cep/engine.h"
#include "common/bytes.h"
#include "common/thread.h"
#include "core/partitioning.h"
#include "dist/options.h"
#include "dist/runtime.h"
#include "dsps/local_runtime.h"
#include "dsps/topology.h"
#include "observability/export.h"
#include "reliability/state_store.h"
#include "traffic/bolts.h"

namespace insight {
namespace dist {
namespace {

using dsps::Bolt;
using dsps::Collector;
using dsps::Fields;
using dsps::Snapshottable;
using dsps::Spout;
using dsps::TaskContext;
using dsps::TopologyBuilder;
using dsps::Tuple;
using dsps::Value;

// The generic rule template of Listing 1 (see cep_engine_test.cc).
constexpr char kListing1[] = R"(
    @Trigger(bus)
    SELECT *
    FROM bus.std:lastevent() as bd,
         bus.std:groupwin(location).win:length(3) as bd2,
         thresholdLocation.win:keepall() as thresholds
    WHERE bd.hour = thresholds.hour and bd.day = thresholds.day and
          bd.location = thresholds.location and bd.location = bd2.location
    GROUP BY bd2.location
    HAVING avg(bd2.delay) > avg(thresholds.delay))";

/// Serial rooted spout: the next message goes out only after the previous
/// one resolved, giving the run a total order over root tuples (see
/// recovery_test.cc). Distributed, "resolved" means the injected egress
/// bolt's checkpoint made the message durable on the sending worker.
class SerialBusSpout : public Spout {
 public:
  explicit SerialBusSpout(int n) : n_(n) {}

  bool NextTuple(Collector* collector) override {
    if (waiting_) return true;
    if (next_ >= n_) return false;
    int i = next_;
    collector->EmitRooted(static_cast<uint64_t>(i + 1),
                          {Value(int64_t{i + 1}), Value(int64_t{i % 4 + 1}),
                           Value(40.0 + 3.0 * static_cast<double>(i))});
    ++next_;
    waiting_ = true;
    return true;
  }
  void Ack(uint64_t) override { waiting_ = false; }
  void Fail(uint64_t) override { waiting_ = false; }

 private:
  int n_;
  int next_ = 0;
  bool waiting_ = false;
};

/// One Listing-1 engine per task (the EsperBolt pattern), Snapshottable by
/// forwarding to the engine. Optionally drops a progress marker file after
/// its 5th execution so the chaos test can time its kill mid-stream.
class Listing1Bolt : public Bolt, public Snapshottable {
 public:
  explicit Listing1Bolt(std::string marker_path)
      : marker_path_(std::move(marker_path)) {}

  void Prepare(const TaskContext&) override {
    engine_ = std::make_unique<cep::Engine>();
    Status status =
        engine_->RegisterEventType("bus", {{"timestamp", cep::ValueType::kInt},
                                           {"location", cep::ValueType::kInt},
                                           {"hour", cep::ValueType::kInt},
                                           {"day", cep::ValueType::kString},
                                           {"delay", cep::ValueType::kDouble}});
    if (status.ok()) {
      status = engine_->RegisterEventType(
          "thresholdLocation", {{"location", cep::ValueType::kInt},
                                {"hour", cep::ValueType::kInt},
                                {"day", cep::ValueType::kString},
                                {"delay", cep::ValueType::kDouble}});
    }
    auto statement = engine_->AddStatement(kListing1, "generic");
    if (!status.ok() || !statement.ok()) {
      std::fprintf(stderr, "listing1 setup failed\n");
      std::abort();
    }
    (*statement)->AddListener([this](const cep::MatchResult& m) {
      pending_.push_back({*m.Get("bd.location"), *m.Get("bd.timestamp")});
    });
    // Preload the threshold stream before any restore (Section 4.3.1); a
    // restored snapshot re-creates these from its keepall window.
    for (int64_t location = 1; location <= 4; ++location) {
      engine_->SendEvent(engine_->NewEvent("thresholdLocation")
                             .Set("location", location)
                             .Set("hour", int64_t{8})
                             .Set("day", std::string("weekday"))
                             .Set("delay", 100.0)
                             .Build());
    }
  }

  void Execute(const Tuple& input, Collector* collector) override {
    int64_t ts = input.Get(0).AsInt();
    engine_->SendEvent(engine_->NewEvent("bus")
                           .Set("timestamp", ts)
                           .Set("location", input.Get(1).AsInt())
                           .Set("hour", int64_t{8})
                           .Set("day", std::string("weekday"))
                           .Set("delay", input.Get(2).AsDouble())
                           .SetTimestamp(ts)
                           .Build());
    for (auto& detection : pending_) collector->Emit(std::move(detection));
    pending_.clear();
    if (++executed_ == 5 && !marker_path_.empty()) {
      std::ofstream(marker_path_, std::ios::trunc) << "mid-stream\n";
    }
  }

  Status SnapshotState(std::string* out) const override {
    return engine_->Snapshot(out);
  }
  Status RestoreState(const std::string& bytes) override {
    return engine_->Restore(bytes);
  }

 private:
  std::string marker_path_;
  std::unique_ptr<cep::Engine> engine_;
  std::vector<std::vector<Value>> pending_;
  int executed_ = 0;
};

/// Terminal detection recorder: Snapshottable with real state (the counts
/// survive a restart of its worker) and dumps "location timestamp count"
/// lines at Cleanup so the supervising test can read them cross-process.
class DetectionFileSink : public Bolt, public Snapshottable {
 public:
  explicit DetectionFileSink(std::string path) : path_(std::move(path)) {}

  void Execute(const Tuple& input, Collector*) override {
    counts_[{input.Get(0).AsInt(), input.Get(1).AsInt()}]++;
  }
  void Cleanup() override {
    std::ofstream out(path_, std::ios::trunc);
    for (const auto& [key, count] : counts_) {
      out << key.first << " " << key.second << " " << count << "\n";
    }
  }

  Status SnapshotState(std::string* out) const override {
    ByteWriter writer(out);
    writer.PutU32(static_cast<uint32_t>(counts_.size()));
    for (const auto& [key, count] : counts_) {
      writer.PutU64(static_cast<uint64_t>(key.first));
      writer.PutU64(static_cast<uint64_t>(key.second));
      writer.PutU32(static_cast<uint32_t>(count));
    }
    return Status::OK();
  }
  Status RestoreState(const std::string& bytes) override {
    ByteReader reader(bytes);
    uint32_t n = 0;
    if (!reader.GetU32(&n)) return Status::ParseError("sink snapshot truncated");
    std::map<std::pair<int64_t, int64_t>, int> restored;
    for (uint32_t i = 0; i < n; ++i) {
      uint64_t location = 0;
      uint64_t timestamp = 0;
      uint32_t count = 0;
      if (!reader.GetU64(&location) || !reader.GetU64(&timestamp) ||
          !reader.GetU32(&count)) {
        return Status::ParseError("sink snapshot truncated");
      }
      restored[{static_cast<int64_t>(location),
                static_cast<int64_t>(timestamp)}] = static_cast<int>(count);
    }
    counts_ = std::move(restored);
    return Status::OK();
  }

 private:
  std::string path_;
  std::map<std::pair<int64_t, int64_t>, int> counts_;
};

constexpr int kBusMessages = 60;

/// Unrooted kLow firehose for the overload chaos run: saturates the queues
/// of the worker hosting the stateful tasks while it gets SIGKILLed.
class NoiseSpout : public Spout {
 public:
  explicit NoiseSpout(int n) : n_(n) {}
  bool NextTuple(Collector* collector) override {
    if (next_ >= n_) return false;
    for (int k = 0; k < 64 && next_ < n_; ++k, ++next_) {
      collector->Emit({Value(int64_t{next_})});
    }
    return next_ < n_;
  }

 private:
  int n_;
  int next_ = 0;
};

/// Slow terminal for the noise stream (placed with the detect tasks, so the
/// kill target's queues really are saturated when the SIGKILL lands).
class NoiseSink : public Bolt {
 public:
  void Execute(const Tuple&, Collector*) override {
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
};

struct Listing1App {
  dsps::Topology topology;
  DistOptions options;
};

dsps::Topology BuildListing1Topology(const std::string& out_dir) {
  std::string marker = out_dir + "/progress-marker";
  std::string detections = out_dir + "/detections.txt";
  TopologyBuilder builder;
  builder.SetSpout("source",
                   [] { return std::make_unique<SerialBusSpout>(kBusMessages); },
                   Fields({"timestamp", "location", "delay"}));
  builder
      .SetBolt("detect",
               [marker] { return std::make_unique<Listing1Bolt>(marker); },
               Fields({"location", "timestamp"}), 2)
      .FieldsGrouping("source", {"location"});
  builder
      .SetBolt("sink",
               [detections] {
                 return std::make_unique<DetectionFileSink>(detections);
               },
               Fields({}))
      .GlobalGrouping("detect");
  auto topology = builder.Build();
  if (!topology.ok()) {
    std::fprintf(stderr, "topology build failed: %s\n",
                 topology.status().ToString().c_str());
    std::abort();
  }
  return std::move(*topology);
}

Listing1App BuildListing1App(const std::string& out_dir,
                             const std::string& ckpt_dir) {
  DistOptions options;
  options.num_workers = 3;
  options.placement.worker_of = {{"source", 0}, {"detect", 1}, {"sink", 2}};
  options.runtime.enable_acking = true;
  options.runtime.ack_timeout_micros = 500'000;
  options.runtime.max_replays = 20;
  options.runtime.replay_backoff_micros = 2'000;
  options.runtime.supervisor_interval_micros = 1'000;
  options.runtime.enable_checkpointing = true;
  options.runtime.checkpoint_interval_micros = 10'000;
  options.runtime.enable_replay_dedup = true;
  options.checkpoint_dir = ckpt_dir;
  options.metrics_interval_micros = 100'000;
  options.worker_args = {"--insight-app=listing1", "--insight-out=" + out_dir,
                         "--insight-ckpt=" + ckpt_dir};
  return {BuildListing1Topology(out_dir), std::move(options)};
}

/// Overload-chaos variant (ISSUE 9 satellite): the same Listing-1 pipeline
/// tagged kHigh, plus a kLow noise firehose terminating in a slow sink on
/// the detect worker, running under credit flow + priority shedding. The
/// noise keeps worker 1 saturated; the SIGKILL lands mid-saturation; the
/// high-priority detections must still match the fault-free run exactly.
dsps::Topology BuildOverloadTopology(const std::string& out_dir) {
  std::string marker = out_dir + "/progress-marker";
  std::string detections = out_dir + "/detections.txt";
  TopologyBuilder builder;
  builder.SetSpout("source",
                   [] { return std::make_unique<SerialBusSpout>(kBusMessages); },
                   Fields({"timestamp", "location", "delay"}));
  builder.SetSpout("noise", [] { return std::make_unique<NoiseSpout>(4000); },
                   Fields({"v"}));
  builder
      .SetBolt("detect",
               [marker] { return std::make_unique<Listing1Bolt>(marker); },
               Fields({"location", "timestamp"}), 2)
      .FieldsGrouping("source", {"location"});
  builder.SetBolt("noise_sink", [] { return std::make_unique<NoiseSink>(); },
                  Fields({}))
      .ShuffleGrouping("noise");
  builder
      .SetBolt("sink",
               [detections] {
                 return std::make_unique<DetectionFileSink>(detections);
               },
               Fields({}))
      .GlobalGrouping("detect");
  builder.SetPriority("source", dsps::TuplePriority::kHigh);
  builder.SetPriority("detect", dsps::TuplePriority::kHigh);
  builder.SetPriority("noise", dsps::TuplePriority::kLow);
  auto topology = builder.Build();
  if (!topology.ok()) {
    std::fprintf(stderr, "overload topology build failed: %s\n",
                 topology.status().ToString().c_str());
    std::abort();
  }
  return std::move(*topology);
}

Listing1App BuildOverloadApp(const std::string& out_dir,
                             const std::string& ckpt_dir) {
  Listing1App app = BuildListing1App(out_dir, ckpt_dir);
  app.topology = BuildOverloadTopology(out_dir);
  app.options.placement.worker_of = {{"source", 0},
                                     {"noise", 0},
                                     {"detect", 1},
                                     {"noise_sink", 1},
                                     {"sink", 2}};
  app.options.runtime.queue_capacity = 64;
  app.options.runtime.overload.enable_credit_flow = true;
  app.options.runtime.overload.max_deferred_tuples = 256;
  app.options.runtime.overload.enable_load_shedding = true;
  app.options.runtime.overload.shed_low_watermark = 0.5;
  app.options.runtime.overload.shed_high_watermark = 0.9;
  app.options.worker_args = {"--insight-app=listing1-overload",
                             "--insight-out=" + out_dir,
                             "--insight-ckpt=" + ckpt_dir};
  return app;
}

/// Elastic-chaos variant (ISSUE 10): the Listing-1 pipeline with the detect
/// component routed through a per-process core::LiveRouter (all locations to
/// task 0; task 1 is a standby) and an on_worker_start hook on the detect
/// worker that live-migrates task 0 -> 1 once the stream is provably
/// mid-flight. The flip deliberately dawdles so the chaos test can SIGKILL
/// the worker while the migration barrier is open; the restarted incarnation
/// retries and must still produce the fault-free detection multiset.

std::shared_ptr<core::LiveRouter> MakeDetectRouter() {
  core::SpatialRouter::GroupingRoute route;
  route.location_field = "location";
  for (int64_t location = 1; location <= 4; ++location) {
    route.region_to_engine[location] = 0;
  }
  route.fallback_engines = {0};
  return std::make_shared<core::LiveRouter>(core::SpatialRouter({route}));
}

bool FileExistsAt(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

dsps::Topology BuildElasticTopology(const std::string& out_dir,
                                    std::shared_ptr<core::LiveRouter> router) {
  std::string marker = out_dir + "/progress-marker";
  std::string detections = out_dir + "/detections.txt";
  TopologyBuilder builder;
  builder.SetSpout("source",
                   [] { return std::make_unique<SerialBusSpout>(kBusMessages); },
                   Fields({"timestamp", "location", "delay"}));
  builder
      .SetBolt("split",
               [router] {
                 return std::make_unique<traffic::SplitterBolt>(
                     [router](const Tuple& tuple, std::vector<int>* tasks) {
                       router->Route(tuple, tasks);
                     });
               },
               Fields({"timestamp", "location", "delay"}))
      .GlobalGrouping("source");
  builder
      .SetBolt("detect",
               [marker] { return std::make_unique<Listing1Bolt>(marker); },
               Fields({"location", "timestamp"}), 2)
      .DirectGrouping("split");
  builder
      .SetBolt("sink",
               [detections] {
                 return std::make_unique<DetectionFileSink>(detections);
               },
               Fields({}))
      .GlobalGrouping("detect");
  auto topology = builder.Build();
  if (!topology.ok()) {
    std::fprintf(stderr, "elastic topology build failed: %s\n",
                 topology.status().ToString().c_str());
    std::abort();
  }
  return std::move(*topology);
}

Listing1App BuildElasticApp(const std::string& out_dir,
                            const std::string& ckpt_dir) {
  auto router = MakeDetectRouter();
  Listing1App app = BuildListing1App(out_dir, ckpt_dir);
  app.topology = BuildElasticTopology(out_dir, router);
  app.options.placement.worker_of = {
      {"source", 0}, {"split", 1}, {"detect", 1}, {"sink", 2}};
  app.options.runtime.enable_migration = true;
  app.options.worker_args = {"--insight-app=listing1-elastic",
                             "--insight-out=" + out_dir,
                             "--insight-ckpt=" + ckpt_dir};
  app.options.on_worker_start =
      [router, out_dir](uint32_t worker_id, dsps::LocalRuntime* runtime)
      -> std::function<void()> {
    if (worker_id != 1) return {};
    auto stop = std::make_shared<std::atomic<bool>>(false);
    auto migrator = std::make_shared<Thread>([router, out_dir, runtime, stop] {
      // Wait until the detect task is provably mid-stream, then migrate it
      // onto the standby. Every incarnation of this worker retries, so the
      // run killed mid-barrier completes the move after its restart.
      while (!stop->load() && !FileExistsAt(out_dir + "/progress-marker")) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (stop->load()) return;
      std::ofstream(out_dir + "/migration-started", std::ios::app) << "go\n";
      dsps::LocalRuntime::MigrationRequest request;
      request.component = "detect";
      request.from_task = 0;
      request.to_task = 1;
      auto before = router->Snapshot();
      request.flip = [router] {
        router->MoveEngine(0, 1);
        // Test-only wide-open barrier window: the supervising test SIGKILLs
        // this worker while the migration is guaranteed in flight.
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
        return Status::OK();
      };
      request.unflip = [router, before] { router->Restore(before); };
      Status status = runtime->MigrateTask(request);
      std::ofstream(out_dir + "/migration-result", std::ios::app)
          << (status.ok() ? "OK" : status.ToString()) << "\n";
    });
    return [stop, migrator] {
      stop->store(true);
      migrator->join();
    };
  };
  return app;
}

std::string MakeTempDir() {
  char tmpl[] = "/tmp/insight-chaos-XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir != nullptr ? std::string(dir) : std::string("/tmp");
}

std::map<std::pair<int64_t, int64_t>, int> ReadDetections(
    const std::string& path) {
  std::map<std::pair<int64_t, int64_t>, int> detections;
  std::ifstream in(path);
  int64_t location;
  int64_t timestamp;
  int count;
  while (in >> location >> timestamp >> count) {
    detections[{location, timestamp}] = count;
  }
  return detections;
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

/// The reference: the identical topology through a single-process
/// LocalRuntime with the same reliability options, fault-free.
std::map<std::pair<int64_t, int64_t>, int> RunLocalReference(
    const std::string& out_dir) {
  dsps::Topology topology = BuildListing1Topology(out_dir);
  reliability::InMemoryStateStore store;
  Listing1App shape = BuildListing1App(out_dir, "");
  dsps::LocalRuntime::Options options = shape.options.runtime;
  options.enable_checkpointing = true;
  options.state_store = &store;
  dsps::LocalRuntime runtime(std::move(topology), options);
  EXPECT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();
  EXPECT_EQ(runtime.pending_trees(), 0u);
  EXPECT_FALSE(runtime.degraded());
  return ReadDetections(out_dir + "/detections.txt");
}

/// Fault-free reference for the elastic run: the identical router-split
/// topology through a single-process LocalRuntime, no migration.
std::map<std::pair<int64_t, int64_t>, int> RunLocalElasticReference(
    const std::string& out_dir) {
  auto router = MakeDetectRouter();
  dsps::Topology topology = BuildElasticTopology(out_dir, router);
  reliability::InMemoryStateStore store;
  Listing1App shape = BuildListing1App(out_dir, "");
  dsps::LocalRuntime::Options options = shape.options.runtime;
  options.enable_checkpointing = true;
  options.state_store = &store;
  dsps::LocalRuntime runtime(std::move(topology), options);
  EXPECT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();
  EXPECT_EQ(runtime.pending_trees(), 0u);
  return ReadDetections(out_dir + "/detections.txt");
}

TEST(DistributedChaosTest, KilledWorkerRunMatchesFaultFreeLocalRun) {
  std::string local_dir = MakeTempDir();
  std::map<std::pair<int64_t, int64_t>, int> reference =
      RunLocalReference(local_dir);
  ASSERT_FALSE(reference.empty());

  std::string out_dir = MakeTempDir();
  std::string ckpt_dir = MakeTempDir();
  Listing1App app = BuildListing1App(out_dir, ckpt_dir);
  DistributedRuntime runtime(std::move(app.topology), app.options);
  ASSERT_TRUE(runtime.Start().ok());

  // Kill the worker hosting the stateful detect tasks once it is provably
  // mid-stream (its 5th execution dropped the marker, with 55 messages
  // still behind it in the serial source).
  std::string marker = out_dir + "/progress-marker";
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (!FileExists(marker) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(FileExists(marker)) << "cluster made no progress";
  runtime.KillWorker(1);

  ASSERT_EQ(runtime.WaitForCompletion(300'000'000), 0);
  EXPECT_GE(runtime.worker_restarts(), 1u);

  // The acceptance bar (ISSUE 6): Listing-1 averages of the distributed,
  // worker-killed run must equal the fault-free single-process run, with
  // no detection counted twice.
  std::map<std::pair<int64_t, int64_t>, int> detections =
      ReadDetections(out_dir + "/detections.txt");
  EXPECT_EQ(detections, reference);
  for (const auto& [detection, count] : detections) {
    EXPECT_EQ(count, 1) << "duplicate detection for location "
                        << detection.first << " at t=" << detection.second;
  }
  for (const auto& [detection, count] : reference) {
    EXPECT_EQ(count, 1) << "reference double-counted location "
                        << detection.first << " at t=" << detection.second;
  }
}

// Kill-9-while-saturated (ISSUE 9 satellite): the detect worker also hosts
// the slow terminal of a kLow firehose, so its ingress queues are saturated
// and actively shedding when the SIGKILL lands. The restarted cluster must
// still deliver the exact high-priority detection multiset of a fault-free
// plain run — overload protection may drop noise, never critical results.
TEST(DistributedChaosTest, KilledWorkerUnderOverloadMatchesFaultFreeRun) {
  std::string local_dir = MakeTempDir();
  std::map<std::pair<int64_t, int64_t>, int> reference =
      RunLocalReference(local_dir);
  ASSERT_FALSE(reference.empty());

  std::string out_dir = MakeTempDir();
  std::string ckpt_dir = MakeTempDir();
  Listing1App app = BuildOverloadApp(out_dir, ckpt_dir);
  DistributedRuntime runtime(std::move(app.topology), app.options);
  ASSERT_TRUE(runtime.Start().ok());

  std::string marker = out_dir + "/progress-marker";
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (!FileExists(marker) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(FileExists(marker)) << "cluster made no progress";
  runtime.KillWorker(1);

  ASSERT_EQ(runtime.WaitForCompletion(300'000'000), 0);
  EXPECT_GE(runtime.worker_restarts(), 1u);

  std::map<std::pair<int64_t, int64_t>, int> detections =
      ReadDetections(out_dir + "/detections.txt");
  EXPECT_EQ(detections, reference);
  for (const auto& [detection, count] : detections) {
    EXPECT_EQ(count, 1) << "duplicate detection for location "
                        << detection.first << " at t=" << detection.second;
  }

  // The shed counters prove the run really was saturated: noise tuples were
  // dropped, critical tuples never were.
  observability::MetricsSnapshot cluster = runtime.ClusterMetrics();
  double shed_low = 0;
  double shed_high = 0;
  for (const auto& family : cluster.counters) {
    if (family.name != "insight_tuples_shed_total") continue;
    for (const auto& sample : family.samples) {
      if (sample.labels.find("priority=\"low\"") != std::string::npos) {
        shed_low += sample.value;
      } else if (sample.labels.find("priority=\"high\"") != std::string::npos) {
        shed_high += sample.value;
      }
    }
  }
  EXPECT_GT(shed_low, 0) << "noise never saturated the detect worker";
  EXPECT_EQ(shed_high, 0) << "a critical tuple was shed";
}

// Kill-9-mid-migration (ISSUE 10): the detect worker is SIGKILLed while a
// live task migration's barrier is provably open (the test flip dawdles
// 400ms between the routing flip and the quiesce). The restarted worker
// retries the migration and completes it; the final detection multiset must
// equal a fault-free non-elastic run of the same topology — effectively-once
// survives a process death in every phase of the barrier.
TEST(DistributedChaosTest, KilledWorkerMidMigrationMatchesFaultFreeRun) {
  std::string local_dir = MakeTempDir();
  std::map<std::pair<int64_t, int64_t>, int> reference =
      RunLocalElasticReference(local_dir);
  ASSERT_FALSE(reference.empty());

  std::string out_dir = MakeTempDir();
  std::string ckpt_dir = MakeTempDir();
  Listing1App app = BuildElasticApp(out_dir, ckpt_dir);
  DistributedRuntime runtime(std::move(app.topology), app.options);
  ASSERT_TRUE(runtime.Start().ok());

  // The worker announces the migration right before entering the barrier;
  // the SIGKILL lands inside the flip's 400ms window.
  std::string started = out_dir + "/migration-started";
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (!FileExists(started) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(FileExists(started)) << "migration never started";
  runtime.KillWorker(1);

  ASSERT_EQ(runtime.WaitForCompletion(300'000'000), 0);
  EXPECT_GE(runtime.worker_restarts(), 1u);

  std::map<std::pair<int64_t, int64_t>, int> detections =
      ReadDetections(out_dir + "/detections.txt");
  EXPECT_EQ(detections, reference);
  for (const auto& [detection, count] : detections) {
    EXPECT_EQ(count, 1) << "duplicate detection for location "
                        << detection.first << " at t=" << detection.second;
  }

  // The restarted incarnation retried the interrupted migration to a
  // definite outcome (completed, or aborted with the source authoritative —
  // either preserves the results; the file proves the retry ran).
  std::ifstream results(out_dir + "/migration-result");
  std::string line;
  std::string last;
  while (std::getline(results, line)) {
    if (!line.empty()) last = line;
  }
  EXPECT_FALSE(last.empty()) << "restarted worker never retried the migration";
  EXPECT_EQ(last, "OK");
}

}  // namespace

namespace testapp {

std::string FlagValue(int argc, char** argv, const std::string& prefix) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return "";
}

int WorkerMain(int argc, char** argv, const WorkerSpec& spec) {
  std::string app = FlagValue(argc, argv, "--insight-app=");
  std::string out_dir = FlagValue(argc, argv, "--insight-out=");
  std::string ckpt_dir = FlagValue(argc, argv, "--insight-ckpt=");
  if ((app != "listing1" && app != "listing1-overload" &&
       app != "listing1-elastic") ||
      out_dir.empty() || ckpt_dir.empty()) {
    std::fprintf(stderr, "unknown worker app '%s'\n", app.c_str());
    return 2;
  }
  Listing1App built = app == "listing1-overload"
                          ? BuildOverloadApp(out_dir, ckpt_dir)
                          : app == "listing1-elastic"
                                ? BuildElasticApp(out_dir, ckpt_dir)
                                : BuildListing1App(out_dir, ckpt_dir);
  return RunWorker(spec, std::move(built.topology), built.options);
}

}  // namespace testapp
}  // namespace dist
}  // namespace insight

int main(int argc, char** argv) {
  insight::dist::WorkerSpec spec;
  if (insight::dist::ParseWorkerSpec(argc, argv, &spec)) {
    return insight::dist::testapp::WorkerMain(argc, argv, spec);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
