#include "cep/batch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "cep/engine.h"
#include "common/bytes.h"

namespace insight {
namespace cep {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Serializes a match so two delivery logs compare bit-identically: value
/// equality goes through EncodeValue, so int64 5 vs double 5.0 (or two NaN
/// payloads of different type) can never alias.
std::string EncodeMatch(const MatchResult& m) {
  std::string out;
  ByteWriter writer(&out);
  writer.PutString(m.statement_name);
  writer.PutU32(static_cast<uint32_t>(m.columns.size()));
  for (const auto& [name, value] : m.columns) {
    writer.PutString(name);
    EncodeValue(value, &writer);
  }
  return out;
}

/// The statements under test: both compiled fast paths (single-source
/// filters; shape-A incremental aggregation), plus shapes that must fall
/// back per lane (string predicates, time windows, ungrouped aggregates)
/// and still agree with the row path.
std::vector<std::string> TestRules(std::mt19937* rng) {
  std::uniform_real_distribution<double> thr(1.0, 20.0);
  auto c = [&](double lo, double hi) {
    return std::to_string(std::uniform_real_distribution<double>(lo, hi)(*rng));
  };
  std::vector<std::string> rules;
  // kFilter fast path: plain conjunctive comparisons.
  rules.push_back("@Trigger(bus) SELECT bd.speed AS s, bd.delay AS d "
                  "FROM bus.std:lastevent() as bd "
                  "WHERE bd.speed < " + c(2.0, 15.0) +
                  " and bd.delay > " + c(0.0, 8.0));
  // kFilter with arithmetic, bool coercion, OR.
  rules.push_back("@Trigger(bus) SELECT bd.line AS l "
                  "FROM bus.std:lastevent() as bd "
                  "WHERE (bd.speed + bd.delay) * 0.5 > " + c(5.0, 12.0) +
                  " or bd.congested");
  // kFilter with division (den == 0 -> 0.0), negation, NOT.
  rules.push_back("@Trigger(bus) SELECT bd.speed AS s "
                  "FROM bus.std:lastevent() as bd "
                  "WHERE bd.speed / bd.delay > " + c(0.5, 3.0) +
                  " and not bd.congested");
  // String predicate: ColumnProgram refuses strings, so this proves the
  // per-lane fallback inside a filter-shaped statement.
  rules.push_back("@Trigger(bus) SELECT bd.day AS day, bd.speed AS s "
                  "FROM bus.std:lastevent() as bd "
                  "WHERE bd.day = 'weekday' and bd.speed < " + c(3.0, 10.0));
  // kIncAgg fast path: the canonical traffic rule shape.
  rules.push_back("@Trigger(bus) SELECT bd.area AS location, "
                  "avg(bd2.speed) AS value "
                  "FROM bus.std:lastevent() as bd, "
                  "bus.std:groupwin(area).win:length(8) as bd2 "
                  "WHERE bd.area = bd2.area GROUP BY bd2.area "
                  "HAVING avg(bd2.speed) < " + c(5.0, 15.0));
  // kIncAgg with min/max (lazy rescan on evicted extrema), count, sum.
  rules.push_back("@Trigger(bus) SELECT bd.area AS a, min(bd2.delay) AS lo, "
                  "max(bd2.delay) AS hi, count(*) AS n, sum(bd2.speed) AS s "
                  "FROM bus.std:lastevent() as bd, "
                  "bus.std:groupwin(area).win:length(5) as bd2 "
                  "WHERE bd.area = bd2.area GROUP BY bd2.area "
                  "HAVING count(*) > 2");
  // kIncAgg with a compiled gate conjunct on the lane event.
  rules.push_back("@Trigger(bus) SELECT bd.area AS a, avg(bd2.delay) AS d "
                  "FROM bus.std:lastevent() as bd, "
                  "bus.std:groupwin(area).win:length(6) as bd2 "
                  "WHERE bd.area = bd2.area and bd.speed > " + c(2.0, 10.0) +
                  " GROUP BY bd2.area");
  // Ungrouped length-window aggregate: per-lane fallback.
  rules.push_back("@Trigger(bus) SELECT avg(b.delay) AS a, stddev(b.speed) AS sd "
                  "FROM bus.win:length(7) as b");
  // Time window: per-lane fallback with timestamp-driven expiry.
  rules.push_back("@Trigger(bus) SELECT count(*) AS n "
                  "FROM bus.win:time(10 sec) as b");
  return rules;
}

class BatchEquivalenceTest : public ::testing::Test {
 protected:
  static void RegisterTypes(Engine* engine) {
    ASSERT_TRUE(engine
                    ->RegisterEventType("bus",
                                        {{"timestamp", ValueType::kInt},
                                         {"line", ValueType::kInt},
                                         {"area", ValueType::kInt},
                                         {"speed", ValueType::kDouble},
                                         {"delay", ValueType::kDouble},
                                         {"congested", ValueType::kBool},
                                         {"day", ValueType::kString}})
                    .ok());
  }

  static void Install(Engine* engine, const std::vector<std::string>& rules,
                      std::vector<std::string>* log) {
    for (size_t i = 0; i < rules.size(); ++i) {
      auto stmt = engine->AddStatement(rules[i], "r" + std::to_string(i));
      ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
      (*stmt)->AddListener(
          [log](const MatchResult& m) { log->push_back(EncodeMatch(m)); });
    }
  }

  /// One random bus event. Values deliberately include NaN, +/-inf, -0.0,
  /// negative delays, and int64 extremes, since those are where batch and
  /// row semantics could plausibly split.
  EventPtr RandomEvent(Engine* engine, std::mt19937* rng, int64_t ts) {
    std::uniform_int_distribution<int> pick(0, 15);
    auto rough_double = [&]() -> double {
      switch (pick(*rng)) {
        case 0:
          return kNaN;
        case 1:
          return kInf;
        case 2:
          return -kInf;
        case 3:
          return -0.0;
        case 4:
          return -std::uniform_real_distribution<double>(0.0, 50.0)(*rng);
        case 5:
          return 1e308;  // overflows to inf under arithmetic
        default:
          return std::uniform_real_distribution<double>(0.0, 25.0)(*rng);
      }
    };
    std::uniform_int_distribution<int64_t> lines(-3, 100);
    const int64_t line =
        pick(*rng) == 0 ? std::numeric_limits<int64_t>::max() : lines(*rng);
    static const char* kDays[] = {"weekday", "weekend",
                                  "a-holiday-name-long-enough-to-heap-allocate"};
    return engine->NewEvent("bus")
        .Set("timestamp", ts)
        .Set("line", line)
        .Set("area", std::uniform_int_distribution<int64_t>(0, 4)(*rng))
        .Set("speed", rough_double())
        .Set("delay", rough_double())
        .Set("congested", pick(*rng) < 4)
        .Set("day", std::string(kDays[pick(*rng) % 3]))
        .SetTimestamp(ts)
        .Build();
  }
};

TEST_F(BatchEquivalenceTest, RandomStreamsMatchRowPathBitForBit) {
  for (uint32_t seed = 1; seed <= 5; ++seed) {
    std::mt19937 rule_rng(seed);
    const std::vector<std::string> rules = TestRules(&rule_rng);

    Engine row_engine, batch_engine;
    RegisterTypes(&row_engine);
    RegisterTypes(&batch_engine);
    std::vector<std::string> row_log, batch_log;
    Install(&row_engine, rules, &row_log);
    Install(&batch_engine, rules, &batch_log);

    std::mt19937 rng(seed * 977u);
    auto batch_type = batch_engine.GetEventType("bus");
    ASSERT_TRUE(batch_type.ok());
    EventBatch batch(*batch_type);

    std::uniform_int_distribution<size_t> batch_size(1, 17);
    int64_t ts = 0;
    for (int round = 0; round < 40; ++round) {
      const size_t n = batch_size(rng);
      batch.Clear();
      for (size_t k = 0; k < n; ++k) {
        ts += 500'000;  // 0.5 s steps so win:time(10 sec) keeps churning
        // Build both events from one value vector so the streams are
        // identical down to the bit.
        EventPtr e = RandomEvent(&row_engine, &rng, ts);
        row_engine.SendEvent(e);
        ASSERT_TRUE(batch.AppendRow(e->values(), e->timestamp()));
      }
      batch_engine.SendBatch(batch);
      ASSERT_EQ(row_log.size(), batch_log.size())
          << "seed " << seed << " round " << round;
    }

    EXPECT_EQ(row_log, batch_log) << "seed " << seed;

    // Counters and retained window state must agree too: snapshots are a
    // byte-exact digest of both.
    std::string row_snap, batch_snap;
    ASSERT_TRUE(row_engine.Snapshot(&row_snap).ok());
    ASSERT_TRUE(batch_engine.Snapshot(&batch_snap).ok());
    EXPECT_EQ(row_snap, batch_snap) << "seed " << seed;
  }
}

TEST_F(BatchEquivalenceTest, SnapshotRestoreRoundTripMidStream) {
  std::mt19937 rule_rng(11);
  const std::vector<std::string> rules = TestRules(&rule_rng);

  Engine row_engine, batch_engine;
  RegisterTypes(&row_engine);
  RegisterTypes(&batch_engine);
  std::vector<std::string> row_log, batch_log;
  Install(&row_engine, rules, &row_log);
  Install(&batch_engine, rules, &batch_log);

  std::mt19937 rng(4242);
  auto batch_type = batch_engine.GetEventType("bus");
  ASSERT_TRUE(batch_type.ok());
  EventBatch batch(*batch_type);

  auto run_rounds = [&](Engine* re, Engine* be, int rounds, int64_t* ts) {
    std::uniform_int_distribution<size_t> batch_size(1, 13);
    for (int round = 0; round < rounds; ++round) {
      const size_t n = batch_size(rng);
      batch.Clear();
      for (size_t k = 0; k < n; ++k) {
        *ts += 500'000;
        EventPtr e = RandomEvent(&row_engine, &rng, *ts);
        re->SendEvent(e);
        ASSERT_TRUE(batch.AppendRow(e->values(), e->timestamp()));
      }
      be->SendBatch(batch);
    }
  };

  int64_t ts = 0;
  run_rounds(&row_engine, &batch_engine, 15, &ts);
  ASSERT_EQ(row_log, batch_log);

  // Checkpoint the batch engine mid-stream and resume in two fresh engines,
  // one driven row-wise and one batch-wise. (Comparing a restored engine
  // against the *unrestored* original would be too strong a claim for either
  // path: restore rebuilds accumulators from retained events only, so an
  // inf/NaN-poisoned running sum legitimately comes back clean.) What must
  // hold bit-for-bit is row/batch identity from the restored state — the
  // group-slot caches and compiled batch plans are derived state and have to
  // rebuild transparently.
  std::string snap;
  ASSERT_TRUE(batch_engine.Snapshot(&snap).ok());
  Engine restored_row, restored_batch;
  RegisterTypes(&restored_row);
  RegisterTypes(&restored_batch);
  std::vector<std::string> restored_row_log, restored_batch_log;
  Install(&restored_row, rules, &restored_row_log);
  Install(&restored_batch, rules, &restored_batch_log);
  ASSERT_TRUE(restored_row.Restore(snap).ok());
  ASSERT_TRUE(restored_batch.Restore(snap).ok());

  run_rounds(&restored_row, &restored_batch, 15, &ts);
  EXPECT_EQ(restored_row_log, restored_batch_log);

  std::string row_snap, batch_snap;
  ASSERT_TRUE(restored_row.Snapshot(&row_snap).ok());
  ASSERT_TRUE(restored_batch.Snapshot(&batch_snap).ok());
  EXPECT_EQ(row_snap, batch_snap);
}

TEST(EventBatchTest, TypedAppendersMatchAppendRow) {
  Engine engine;
  ASSERT_TRUE(engine
                  .RegisterEventType("bus", {{"a", ValueType::kInt},
                                             {"b", ValueType::kDouble},
                                             {"c", ValueType::kBool},
                                             {"d", ValueType::kString}})
                  .ok());
  auto type = engine.GetEventType("bus");
  ASSERT_TRUE(type.ok());

  EventBatch from_rows(*type), from_cols(*type);
  for (int i = 0; i < 5; ++i) {
    EventPtr e = engine.NewEvent("bus")
                     .Set("a", static_cast<int64_t>(i * 7 - 3))
                     .Set("b", i == 2 ? kNaN : i * 1.5)
                     .Set("c", i % 2 == 0)
                     .Set("d", std::string(i % 2 == 0 ? "x" : "yy"))
                     .SetTimestamp(i * 100)
                     .Build();
    ASSERT_TRUE(from_rows.AppendRow(e->values(), e->timestamp()));
    from_cols.BeginRow(i * 100);
    from_cols.SetInt(0, i * 7 - 3);
    from_cols.SetDouble(1, i == 2 ? kNaN : i * 1.5);
    from_cols.SetBool(2, i % 2 == 0);
    from_cols.SetString(3, i % 2 == 0 ? "x" : "yy");
    from_cols.EndRow();
  }
  ASSERT_EQ(from_rows.size(), from_cols.size());
  EventPool pool;
  for (size_t lane = 0; lane < from_rows.size(); ++lane) {
    const EventPtr& x = from_rows.LaneEvent(lane, &pool);
    const EventPtr& y = from_cols.LaneEvent(lane, &pool);
    EXPECT_EQ(x->timestamp(), y->timestamp());
    ASSERT_EQ(x->values().size(), y->values().size());
    for (size_t f = 0; f < x->values().size(); ++f) {
      std::string bx, by;
      ByteWriter wx(&bx), wy(&by);
      EncodeValue(x->values()[f], &wx);
      EncodeValue(y->values()[f], &wy);
      EXPECT_EQ(bx, by) << "lane " << lane << " field " << f;
    }
  }
}

TEST(EventBatchTest, AppendRowRejectsSchemaMismatches) {
  Engine engine;
  ASSERT_TRUE(engine
                  .RegisterEventType("t", {{"a", ValueType::kInt},
                                           {"b", ValueType::kDouble}})
                  .ok());
  auto type = engine.GetEventType("t");
  ASSERT_TRUE(type.ok());
  EventBatch batch(*type);
  EXPECT_FALSE(batch.AppendRow({Value(int64_t{1})}, 0));  // arity
  EXPECT_FALSE(batch.AppendRow({Value(1.0), Value(2.0)}, 0));  // field 0 type
  EXPECT_TRUE(batch.AppendRow({Value(int64_t{1}), Value(2.0)}, 0));
  EXPECT_EQ(batch.size(), 1u);
}

}  // namespace
}  // namespace cep
}  // namespace insight
