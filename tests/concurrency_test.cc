// Concurrency regressions for the shutdown path and the checked invariants.
//
// The deadlock test recreates the worst shutdown interleaving we know of:
// every queue at capacity (producers parked in the backpressure wait),
// executors being crash-restarted by the supervisor, and Stop() racing all
// of it. Stop() must wake the parked producers and return; before the
// CondVar migration this was easy to regress because the backpressure wait
// and the stop flag lived on different synchronization paths. CI runs this
// file under TSan so a lost-wakeup or lock-order mistake fails loudly.
//
// The death test asserts that a corrupted acker tree (two registrations
// under one root key) trips TMS_DCHECK in debug builds instead of silently
// mixing accumulators.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>

#include "common/check.h"
#include "common/mutex.h"
#include "dsps/local_runtime.h"
#include "dsps/topology.h"
#include "reliability/acker.h"
#include "reliability/fault_injector.h"
#include "reliability/state_store.h"

namespace insight {
namespace dsps {
namespace {

using reliability::FaultInjector;
using reliability::FaultPlan;

/// Emits forever; only Stop() ends the run.
class InfiniteSpout : public Spout {
 public:
  bool NextTuple(Collector* collector) override {
    collector->Emit({Value(int64_t{next_++})});
    return true;
  }

 private:
  int64_t next_ = 0;
};

/// Consumes slowly so every upstream queue saturates.
class SlowSink : public Bolt {
 public:
  explicit SlowSink(std::shared_ptr<std::atomic<int64_t>> consumed)
      : consumed_(std::move(consumed)) {}
  void Execute(const Tuple&, Collector*) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    consumed_->fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<int64_t>> consumed_;
};

TEST(ConcurrencyTest, StopUnderFullBackpressureAndCrashesDoesNotDeadlock) {
  auto consumed = std::make_shared<std::atomic<int64_t>>(0);
  TopologyBuilder builder;
  builder.SetSpout("source", [] { return std::make_unique<InfiniteSpout>(); },
                   Fields({"v"}), /*parallelism=*/2);
  builder.SetBolt("sink",
                  [consumed] { return std::make_unique<SlowSink>(consumed); },
                  Fields({}), /*parallelism=*/2)
      .ShuffleGrouping("source");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());

  // Crash each sink task every 25 executions: the supervisor restarts it
  // while its input queue is full and producers are parked.
  FaultPlan plan;
  plan.crashes.push_back({"sink", /*task=*/-1, /*after_executions=*/25,
                          /*repeat=*/true});
  FaultInjector injector(plan);

  LocalRuntime::Options options;
  options.queue_capacity = 4;  // saturates almost immediately
  options.enable_acking = true;
  options.supervisor_interval_micros = 1'000;
  options.fault_injector = &injector;
  LocalRuntime runtime(std::move(*topology), options);
  ASSERT_TRUE(runtime.Start().ok());

  // Let the topology reach steady-state backpressure with some progress
  // (proves producers are genuinely parked, not spinning on empty queues).
  while (consumed->load(std::memory_order_relaxed) < 50) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  auto stopped = std::async(std::launch::async, [&] { runtime.Stop(); });
  // Generous bound: TSan slows this run ~10x. A deadlocked Stop() fails
  // here with a message instead of tripping the ctest timeout.
  ASSERT_EQ(stopped.wait_for(std::chrono::seconds(60)),
            std::future_status::ready)
      << "Stop() deadlocked under full backpressure";
  runtime.AwaitCompletion();
  EXPECT_GE(runtime.executor_restarts(), 1u);
}

TEST(ConcurrencyTest, StopRacingSupervisorRelaunchLeaksNothing) {
  // Stop() arriving while crashed executors are mid-relaunch used to leave a
  // window where a freshly relaunched executor (or the tuples it abandoned)
  // escaped the join/drain pass. Stop() now drains every input queue after
  // joining and checks the in-flight count hits zero (TMS_DCHECK in Stop, so
  // a leak aborts debug/TSan builds). Vary the stop delay to sweep the race
  // window across crash, join, and relaunch.
  for (int delay_ms : {1, 3, 6, 10}) {
    auto consumed = std::make_shared<std::atomic<int64_t>>(0);
    TopologyBuilder builder;
    builder.SetSpout("source",
                     [] { return std::make_unique<InfiniteSpout>(); },
                     Fields({"v"}), /*parallelism=*/2);
    builder.SetBolt(
               "sink",
               [consumed] { return std::make_unique<SlowSink>(consumed); },
               Fields({}), /*parallelism=*/2)
        .ShuffleGrouping("source");
    auto topology = builder.Build();
    ASSERT_TRUE(topology.ok());

    // Crash constantly so a relaunch is nearly always in progress when
    // Stop() lands; checkpointing exercises the coordinator stop path too.
    FaultPlan plan;
    plan.crashes.push_back({"sink", /*task=*/-1, /*after_executions=*/2,
                            /*repeat=*/true});
    FaultInjector injector(plan);
    reliability::InMemoryStateStore store;

    LocalRuntime::Options options;
    options.queue_capacity = 8;
    options.enable_acking = true;
    options.supervisor_interval_micros = 500;
    options.fault_injector = &injector;
    options.enable_checkpointing = true;
    options.checkpoint_interval_micros = 1'000;
    options.state_store = &store;
    LocalRuntime runtime(std::move(*topology), options);
    ASSERT_TRUE(runtime.Start().ok());

    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    auto stopped = std::async(std::launch::async, [&] { runtime.Stop(); });
    ASSERT_EQ(stopped.wait_for(std::chrono::seconds(60)),
              std::future_status::ready)
        << "Stop() deadlocked racing the supervisor relaunch (delay "
        << delay_ms << "ms)";
    // Stop()'s internal TMS_DCHECK_EQ(in_flight_, 0) already aborted if a
    // tuple leaked; finished() confirms the clean join.
    EXPECT_TRUE(runtime.finished());
  }
}

using AckerDeathTest = ::testing::Test;

TEST(AckerDeathTest, DuplicateRegisterTripsDCheckInDebugBuilds) {
#if TMS_DCHECK_ENABLED
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  reliability::TreeInfo info;
  info.root_key = 42;
  info.message_id = 7;
  EXPECT_DEATH(
      {
        reliability::Acker acker(4);
        acker.Register(info, /*guard_edge=*/0x1);
        acker.Register(info, /*guard_edge=*/0x2);  // same root key, live tree
      },
      "registered twice");
#else
  GTEST_SKIP() << "TMS_DCHECK compiled out (NDEBUG build); the asan-ubsan "
                  "CI job builds Debug and runs this for real";
#endif
}

// The Debug-build lock-rank validator (common/mutex.h) is the dynamic
// backstop of tools/analyze.py's static ordering check: the analyzer
// proves what it can resolve at analysis time, the validator catches the
// acquisition orders that only materialize at run time.

using LockRankDeathTest = ::testing::Test;

TEST(LockRankDeathTest, InvertedAcquisitionOrderAbortsInDebugBuilds) {
#if TMS_LOCK_RANK_CHECKS_ENABLED
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex low{TMS_LOCK_RANK(10)};
        Mutex high{TMS_LOCK_RANK(20)};
        MutexLock outer(high);
        MutexLock inner(low);  // rank 10 under rank 20: inverted
      },
      "lock-rank order violation");
#else
  GTEST_SKIP() << "lock-rank checks compiled out (NDEBUG build); the "
                  "asan-ubsan CI job builds Debug and runs this for real";
#endif
}

TEST(LockRankDeathTest, SameRankNestingAbortsInDebugBuilds) {
#if TMS_LOCK_RANK_CHECKS_ENABLED
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex a{TMS_LOCK_RANK(30)};
        Mutex b{TMS_LOCK_RANK(30)};
        MutexLock outer(a);
        MutexLock inner(b);  // equal ranks must never nest
      },
      "lock-rank order violation");
#else
  GTEST_SKIP() << "lock-rank checks compiled out (NDEBUG build)";
#endif
}

TEST(LockRankTest, IncreasingOrderAndReleaseAreAllowed) {
  Mutex low{TMS_LOCK_RANK(10)};
  Mutex high{TMS_LOCK_RANK(20)};
  {
    MutexLock outer(low);
    MutexLock inner(high);  // strictly increasing: fine
  }
  {
    // Release resets the held stack: re-acquiring low afterwards is legal.
    MutexLock again(low);
  }
}

TEST(LockRankTest, UnrankedMutexesDoNotParticipate) {
  Mutex ranked{TMS_LOCK_RANK(40)};
  Mutex unranked;
  MutexLock outer(ranked);
  MutexLock inner(unranked);  // no rank, no ordering constraint
  EXPECT_EQ(unranked.rank(), Mutex::kNoRank);
  EXPECT_EQ(ranked.rank(), 40);
}

TEST(LockRankTest, ManualLockUnlockMayReleaseOutOfOrder) {
  // Manual pairs (TaskQueue-style code) may unlock in any order; the
  // validator drops the innermost occurrence of the released rank.
  Mutex a{TMS_LOCK_RANK(50)};
  Mutex b{TMS_LOCK_RANK(60)};
  a.Lock();
  b.Lock();
  a.Unlock();  // out of LIFO order
  b.Unlock();
  // The held stack is empty again: a fresh low-rank acquisition is legal.
  MutexLock lock(a);
}

}  // namespace
}  // namespace dsps
}  // namespace insight
