#include <gtest/gtest.h>

#include "common/thread.h"
#include "storage/table_store.h"

namespace insight {
namespace storage {
namespace {

class TableStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_.CreateTable("statistics_delay", StatisticsColumns()).ok());
  }

  void InsertStat(int64_t area, int64_t hour, const std::string& day,
                  double mean, double stdv, int64_t count = 10) {
    ASSERT_TRUE(store_
                    .Insert("statistics_delay",
                            {Value(area), Value(hour), Value(day), Value(mean),
                             Value(stdv), Value(count)})
                    .ok());
  }

  TableStore store_;
};

TEST_F(TableStoreTest, CreateInsertSelect) {
  InsertStat(1, 8, "weekday", 100.0, 20.0);
  InsertStat(2, 8, "weekday", 50.0, 5.0);
  auto all = store_.SelectAll("statistics_delay");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->rows.size(), 2u);
  EXPECT_EQ(all->ColumnIndex("attr_mean"), 3);
}

TEST_F(TableStoreTest, DuplicateCreateFails) {
  EXPECT_EQ(store_.CreateTable("statistics_delay", StatisticsColumns()).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(TableStoreTest, SchemaMismatchRejected) {
  EXPECT_EQ(store_.Insert("statistics_delay", {Value(1)}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store_.Insert("nosuch", {}).code(), StatusCode::kNotFound);
}

TEST_F(TableStoreTest, TruncateKeepsSchema) {
  InsertStat(1, 8, "weekday", 1, 1);
  ASSERT_TRUE(store_.Truncate("statistics_delay").ok());
  EXPECT_EQ(*store_.RowCount("statistics_delay"), 0u);
  InsertStat(1, 8, "weekday", 1, 1);  // still insertable
  EXPECT_EQ(*store_.RowCount("statistics_delay"), 1u);
}

TEST_F(TableStoreTest, Listing2ThresholdQuery) {
  InsertStat(7, 8, "weekday", 100.0, 20.0);
  InsertStat(7, 9, "weekday", 50.0, 10.0);
  InsertStat(9, 8, "weekend", 30.0, 5.0);
  auto thresholds = QueryThresholds(store_, "delay", 2.0);
  ASSERT_TRUE(thresholds.ok());
  ASSERT_EQ(thresholds->size(), 3u);
  // mean + 2*stdv.
  bool found = false;
  for (const ThresholdRow& row : *thresholds) {
    if (row.location == 7 && row.hour == 8) {
      EXPECT_DOUBLE_EQ(row.threshold, 140.0);
      EXPECT_EQ(row.date_type, "weekday");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(TableStoreTest, DistinctDropsDuplicateProjectedRows) {
  InsertStat(7, 8, "weekday", 100.0, 20.0);
  InsertStat(7, 8, "weekday", 100.0, 20.0);  // exact duplicate row
  auto thresholds = QueryThresholds(store_, "delay", 1.0);
  ASSERT_TRUE(thresholds.ok());
  EXPECT_EQ(thresholds->size(), 1u);
}

TEST_F(TableStoreTest, PointThresholdLookup) {
  InsertStat(7, 8, "weekday", 100.0, 20.0);
  auto t = QueryThresholdFor(store_, "delay", 1.0, 7, 8, "weekday");
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(*t, 120.0);
  EXPECT_EQ(QueryThresholdFor(store_, "delay", 1.0, 7, 9, "weekday")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(TableStoreTest, QueryCostAccounting) {
  TableStore::Options options;
  options.simulated_query_cost_micros = 1000;
  TableStore store(options);
  ASSERT_TRUE(store.CreateTable("statistics_delay", StatisticsColumns()).ok());
  EXPECT_EQ(store.query_count(), 0u);
  (void)QueryThresholds(store, "delay", 1.0);
  (void)QueryThresholds(store, "delay", 1.0);
  EXPECT_EQ(store.query_count(), 2u);
  EXPECT_EQ(store.charged_cost_micros(), 2000);
}

TEST_F(TableStoreTest, ConcurrentReadersAndWriters) {
  Thread writer([&] {
    for (int i = 0; i < 500; ++i) {
      InsertStat(i % 10, i % 24, "weekday", i, 1.0);
    }
  });
  Thread reader([&] {
    for (int i = 0; i < 200; ++i) {
      auto result = QueryThresholds(store_, "delay", 1.0);
      ASSERT_TRUE(result.ok());
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(*store_.RowCount("statistics_delay"), 500u);
}

TEST_F(TableStoreTest, DropTable) {
  EXPECT_TRUE(store_.DropTable("statistics_delay").ok());
  EXPECT_FALSE(store_.HasTable("statistics_delay"));
  EXPECT_EQ(store_.DropTable("statistics_delay").code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace storage
}  // namespace insight
