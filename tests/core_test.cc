#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/rng.h"
#include "core/allocation.h"
#include "core/partitioning.h"
#include "core/retrieval.h"
#include "core/rule_template.h"
#include "traffic/bolts.h"

namespace insight {
namespace core {
namespace {

// ---------------------------------------------------------------------------
// RuleTemplate
// ---------------------------------------------------------------------------

std::unique_ptr<cep::Engine> MakeEngineWithTypes() {
  auto engine = std::make_unique<cep::Engine>();
  EXPECT_TRUE(
      engine->RegisterEventType("bus", traffic::BusEventFields({})).ok());
  for (const char* attr : {"delay", "actual_delay", "speed", "congestion"}) {
    for (const char* suffix : {"", "_stop"}) {
      EXPECT_TRUE(engine
                      ->RegisterEventType(
                          traffic::ThresholdEventTypeName(
                              std::string(attr) + suffix),
                          traffic::ThresholdEventFields())
                      .ok());
    }
  }
  return engine;
}

TEST(RuleTemplateTest, EveryTable6RuleCompiles) {
  for (size_t window : {1u, 10u, 100u, 1000u}) {
    for (const RuleTemplate& rule : Table6Rules(window)) {
      auto epl = rule.ToEpl();
      ASSERT_TRUE(epl.ok()) << rule.name << ": " << epl.status().ToString();
      auto engine_ptr = MakeEngineWithTypes();
  cep::Engine& engine = *engine_ptr;
      auto stmt = engine.AddStatement(*epl, rule.name);
      ASSERT_TRUE(stmt.ok()) << rule.name << ": " << stmt.status().ToString()
                             << "\n"
                             << *epl;
    }
  }
}

TEST(RuleTemplateTest, StaticVariantCompilesWithoutThresholdStream) {
  RuleTemplate rule = MakeRule("r", "delay", "area_leaf", 10);
  auto epl = rule.ToEpl(/*static_threshold=*/50.0);
  ASSERT_TRUE(epl.ok());
  EXPECT_EQ(epl->find("threshold_"), std::string::npos);
  auto engine_ptr = MakeEngineWithTypes();
  cep::Engine& engine = *engine_ptr;
  EXPECT_TRUE(engine.AddStatement(*epl, "r").ok());
}

TEST(RuleTemplateTest, SpeedRuleUsesBelowComparison) {
  RuleTemplate rule = MakeRule("r", "speed", "area_leaf", 10);
  auto epl = rule.ToEpl();
  ASSERT_TRUE(epl.ok());
  EXPECT_NE(epl->find("avg(bd2.speed) < "), std::string::npos);
}

TEST(RuleTemplateTest, StopRulesUseStopNamespace) {
  RuleTemplate rule = MakeRule("r", "delay", "bus_stop", 10);
  auto epl = rule.ToEpl();
  ASSERT_TRUE(epl.ok());
  EXPECT_NE(epl->find("threshold_delay_stop"), std::string::npos);
  EXPECT_EQ(rule.AttributeKey("delay"), "delay_stop");
}

TEST(RuleTemplateTest, ValidatesParameters) {
  RuleTemplate rule;
  rule.name = "bad";
  EXPECT_FALSE(rule.ToEpl().ok());  // no attributes
  rule.attributes = {{"delay", false}};
  rule.window_length = 0;
  EXPECT_FALSE(rule.ToEpl().ok());
  rule.window_length = 10;
  rule.location_field = "";
  EXPECT_FALSE(rule.ToEpl().ok());
}

TEST(RuleTemplateTest, MultiAttributeRuleFiresOnlyWhenAllConditionsHold) {
  RuleTemplate rule;
  rule.name = "dc";
  rule.attributes = {{"delay", false}, {"congestion", false}};
  rule.location_field = "area_leaf";
  rule.window_length = 2;
  auto epl = rule.ToEpl();
  ASSERT_TRUE(epl.ok());

  auto engine_ptr = MakeEngineWithTypes();
  cep::Engine& engine = *engine_ptr;
  auto stmt = engine.AddStatement(*epl, "dc");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString() << "\n" << *epl;
  size_t fires = 0;
  (*stmt)->AddListener([&](const cep::MatchResult&) { ++fires; });

  auto threshold = [&](const std::string& attr, double value) {
    auto type = engine.GetEventType(traffic::ThresholdEventTypeName(attr));
    ASSERT_TRUE(type.ok());
    engine.SendEvent(cep::EventBuilder(*type)
                         .Set("location", int64_t{7})
                         .Set("hour", int64_t{8})
                         .Set("day", "weekday")
                         .Set("value", value)
                         .Build());
  };
  threshold("delay", 100.0);
  threshold("congestion", 0.5);

  auto bus = [&](double delay, bool congested) {
    auto type = engine.GetEventType("bus");
    ASSERT_TRUE(type.ok());
    cep::EventBuilder builder(*type);
    builder.Set("timestamp", int64_t{1})
        .Set("line", int64_t{1})
        .Set("direction", false)
        .Set("lon", -6.26)
        .Set("lat", 53.35)
        .Set("delay", delay)
        .Set("congestion", congested)
        .Set("reported_stop", int64_t{-1})
        .Set("vehicle", int64_t{1})
        .Set("speed", 20.0)
        .Set("actual_delay", 0.0)
        .Set("hour", int64_t{8})
        .Set("date_type", "weekday")
        .Set("area_leaf", int64_t{7})
        .Set("bus_stop", int64_t{-1});
    engine.SendEvent(builder.Build());
  };
  // High delay but no congestion: must not fire.
  bus(500.0, false);
  bus(500.0, false);
  EXPECT_EQ(fires, 0u);
  // High delay and congestion: fires.
  bus(500.0, true);
  bus(500.0, true);
  EXPECT_GT(fires, 0u);
}

// ---------------------------------------------------------------------------
// Algorithm 1 — rule partitioning
// ---------------------------------------------------------------------------

TEST(PartitioningTest, BalancesAggregatedRates) {
  std::vector<RegionRate> rates;
  Rng rng(4);
  double total = 0;
  for (int64_t region = 0; region < 200; ++region) {
    double rate = rng.Uniform(1.0, 100.0);
    rates.push_back({region, rate});
    total += rate;
  }
  for (int engines : {2, 4, 7}) {
    auto assignment = PartitionRegions(rates, engines);
    ASSERT_TRUE(assignment.ok());
    auto engine_rates = EngineRates(*assignment, rates);
    ASSERT_EQ(engine_rates.size(), static_cast<size_t>(engines));
    double expected = total / engines;
    for (double r : engine_rates) {
      EXPECT_NEAR(r, expected, expected * 0.15) << engines << " engines";
    }
  }
}

TEST(PartitioningTest, EveryRegionAssignedExactlyOnce) {
  std::vector<RegionRate> rates{{1, 5}, {2, 5}, {3, 5}, {4, 5}, {5, 5}};
  auto assignment = PartitionRegions(rates, 3);
  ASSERT_TRUE(assignment.ok());
  EXPECT_EQ(assignment->size(), 5u);
  for (const auto& [region, engine] : *assignment) {
    EXPECT_GE(engine, 0);
    EXPECT_LT(engine, 3);
  }
}

TEST(PartitioningTest, HeaviestRegionGoesFirst) {
  // One giant region and many small: giant gets its own engine.
  std::vector<RegionRate> rates{{99, 1000}};
  for (int64_t r = 0; r < 10; ++r) rates.push_back({r, 10});
  auto assignment = PartitionRegions(rates, 2);
  ASSERT_TRUE(assignment.ok());
  int giant_engine = assignment->at(99);
  for (int64_t r = 0; r < 10; ++r) {
    EXPECT_NE(assignment->at(r), giant_engine);
  }
}

TEST(PartitioningTest, SingleEngineTakesAll) {
  std::vector<RegionRate> rates{{1, 5}, {2, 50}};
  auto assignment = PartitionRegions(rates, 1);
  ASSERT_TRUE(assignment.ok());
  EXPECT_EQ(assignment->at(1), 0);
  EXPECT_EQ(assignment->at(2), 0);
}

TEST(PartitioningTest, Validation) {
  EXPECT_FALSE(PartitionRegions({{1, 5}}, 0).ok());
  EXPECT_FALSE(PartitionRegions({{1, -5}}, 2).ok());
}

TEST(RegionRateTrackerTest, ObservationsBlendWithSeed) {
  RegionRateTracker tracker;
  tracker.Seed({{1, 100.0}, {2, 100.0}});
  // Observe only region 1 heavily.
  for (int i = 0; i < 2000; ++i) tracker.Observe(1);
  auto estimates = tracker.Estimates();
  double r1 = 0, r2 = 0;
  for (const auto& e : estimates) {
    if (e.region == 1) r1 = e.rate;
    if (e.region == 2) r2 = e.rate;
  }
  EXPECT_GT(r1, r2);
}

// ---------------------------------------------------------------------------
// SpatialRouter
// ---------------------------------------------------------------------------

TEST(SpatialRouterTest, RoutesByFieldAndDeduplicates) {
  SpatialRouter::GroupingRoute areas;
  areas.location_field = "area_leaf";
  areas.region_to_engine = {{10, 0}, {11, 1}};
  SpatialRouter::GroupingRoute stops;
  stops.location_field = "bus_stop";
  stops.region_to_engine = {{5, 1}, {6, 2}};
  SpatialRouter router({areas, stops});

  auto fields = std::make_shared<dsps::Fields>(
      dsps::Fields({"area_leaf", "bus_stop"}));
  std::vector<int> tasks;
  // area 10 -> 0; stop 5 -> 1.
  router.Route(dsps::Tuple(fields, {cep::Value(int64_t{10}),
                                    cep::Value(int64_t{5})}),
               &tasks);
  EXPECT_EQ(tasks, (std::vector<int>{0, 1}));
  // area 11 -> 1; stop 5 -> 1 (deduplicated).
  router.Route(dsps::Tuple(fields, {cep::Value(int64_t{11}),
                                    cep::Value(int64_t{5})}),
               &tasks);
  EXPECT_EQ(tasks, (std::vector<int>{1}));
}

TEST(SpatialRouterTest, FallbackForUnknownRegion) {
  SpatialRouter::GroupingRoute areas;
  areas.location_field = "area_leaf";
  areas.region_to_engine = {{10, 0}};
  areas.fallback_engines = {0, 1};
  SpatialRouter router({areas});
  auto fields = std::make_shared<dsps::Fields>(dsps::Fields({"area_leaf"}));
  std::vector<int> tasks;
  router.Route(dsps::Tuple(fields, {cep::Value(int64_t{999})}), &tasks);
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_TRUE(tasks[0] == 0 || tasks[0] == 1);
}

// ---------------------------------------------------------------------------
// Algorithm 2 — rules allocation
// ---------------------------------------------------------------------------

RuleGrouping MakeGrouping(const std::string& name, size_t window, double rate,
                          size_t num_rules = 5) {
  RuleGrouping grouping;
  grouping.name = name;
  for (size_t i = 0; i < num_rules; ++i) {
    grouping.rules.push_back(MakeRule(name + std::to_string(i), "delay",
                                      "area_leaf", window));
  }
  grouping.input_rate = rate;
  grouping.thresholds_per_rule = 100;
  return grouping;
}

TEST(AllocationTest, EveryGroupingGetsAtLeastOneEngine) {
  model::LatencyModel model = model::LatencyModel::Default();
  RulesAllocator allocator(&model);
  std::vector<RuleGrouping> groupings{MakeGrouping("a", 100, 1000),
                                      MakeGrouping("b", 100, 1000)};
  auto result = allocator.Allocate(groupings, 6);
  ASSERT_TRUE(result.ok());
  int total = std::accumulate(result->engines_per_grouping.begin(),
                              result->engines_per_grouping.end(), 0);
  EXPECT_EQ(total, 6);
  for (int engines : result->engines_per_grouping) EXPECT_GE(engines, 1);
}

TEST(AllocationTest, HeavierGroupingGetsMoreEngines) {
  model::LatencyModel model = model::LatencyModel::Default();
  RulesAllocator allocator(&model);
  // Same rate but much larger windows (heavier rules) in grouping b.
  std::vector<RuleGrouping> groupings{MakeGrouping("light", 1, 1000),
                                      MakeGrouping("heavy", 1000, 1000)};
  auto result = allocator.Allocate(groupings, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->engines_per_grouping[1], result->engines_per_grouping[0]);
}

TEST(AllocationTest, HigherRateGetsMoreEngines) {
  model::LatencyModel model = model::LatencyModel::Default();
  RulesAllocator allocator(&model);
  std::vector<RuleGrouping> groupings{MakeGrouping("slow", 100, 100),
                                      MakeGrouping("fast", 100, 10000)};
  auto result = allocator.Allocate(groupings, 12);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->engines_per_grouping[1], result->engines_per_grouping[0]);
}

TEST(AllocationTest, ScoreIsResidualLoadAndShrinksWithEngines) {
  model::LatencyModel model = model::LatencyModel::Default();
  RulesAllocator allocator(&model);
  RuleGrouping grouping = MakeGrouping("g", 100, 5000);
  double s1 = allocator.GroupingScore(grouping, 1);
  double s2 = allocator.GroupingScore(grouping, 2);
  double s4 = allocator.GroupingScore(grouping, 4);
  EXPECT_GT(s1, s2);
  EXPECT_GT(s2, s4);
  EXPECT_NEAR(s2, s1 / 2.0, 1e-9);  // rate splits evenly across engines
  EXPECT_DOUBLE_EQ(allocator.GroupingScore(grouping, 0), 0.0);
}

TEST(AllocationTest, RequiresEnoughEngines) {
  model::LatencyModel model = model::LatencyModel::Default();
  RulesAllocator allocator(&model);
  std::vector<RuleGrouping> groupings{MakeGrouping("a", 100, 1000),
                                      MakeGrouping("b", 100, 1000)};
  EXPECT_FALSE(allocator.Allocate(groupings, 1).ok());
  EXPECT_FALSE(allocator.Allocate({}, 4).ok());
}

TEST(AllocationTest, RoundRobinSpreadsEvenly) {
  std::vector<RuleGrouping> groupings{MakeGrouping("a", 1, 1),
                                      MakeGrouping("b", 1, 1),
                                      MakeGrouping("c", 1, 1)};
  auto result = RoundRobinAllocate(groupings, 7);
  EXPECT_EQ(result.engines_per_grouping, (std::vector<int>{3, 2, 2}));
}

TEST(AllocationTest, RelievesTheCurrentBottleneck) {
  // Regression for the grant rule: each extra engine must go to the
  // grouping whose score at its CURRENT engine count is highest. The old
  // code ranked groupings by their post-grant estimate, which starves a
  // grouping whose score halves per grant: with per-engine scores 100/k
  // and 60/k and two extra engines, it granted both to the first grouping
  // (post-grant 50 then 33.3, both above the second's post-grant 30) and
  // left the second grouping the 60-score bottleneck. The fix splits the
  // grants 2/2 for a bottleneck of 50.
  model::LatencyModel model = model::LatencyModel::Default();
  RulesAllocator allocator(&model);
  RuleGrouping heavy = MakeGrouping("heavy", 100, 1000);
  RuleGrouping light = MakeGrouping("light", 100, 600);
  double ratio = allocator.GroupingScore(heavy, 1) /
                 allocator.GroupingScore(light, 1);
  ASSERT_NEAR(ratio, 1000.0 / 600.0, 1e-6);  // score scales with rate
  auto result = allocator.Allocate({heavy, light}, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->engines_per_grouping, (std::vector<int>{2, 2}));
}

TEST(AllocationTest, GreedyMatchesBruteForceBottleneck) {
  // The greedy exists to minimize the bottleneck (makespan) score. With
  // scores of the form c_i / k_i the greedy is exactly optimal, so its
  // bottleneck must equal the best over every exhaustive split.
  model::LatencyModel model = model::LatencyModel::Default();
  RulesAllocator allocator(&model);
  std::vector<RuleGrouping> groupings{MakeGrouping("a", 50, 3100, 3),
                                      MakeGrouping("b", 200, 900, 4),
                                      MakeGrouping("c", 500, 1700, 2)};
  constexpr int kEngines = 9;
  auto result = allocator.Allocate(groupings, kEngines);
  ASSERT_TRUE(result.ok());
  double greedy_bottleneck = 0.0;
  for (double s : result->scores) greedy_bottleneck = std::max(greedy_bottleneck, s);

  double best_bottleneck = std::numeric_limits<double>::infinity();
  for (int ka = 1; ka <= kEngines - 2; ++ka) {
    for (int kb = 1; kb <= kEngines - ka - 1; ++kb) {
      int kc = kEngines - ka - kb;
      double bottleneck =
          std::max({allocator.GroupingScore(groupings[0], ka),
                    allocator.GroupingScore(groupings[1], kb),
                    allocator.GroupingScore(groupings[2], kc)});
      best_bottleneck = std::min(best_bottleneck, bottleneck);
    }
  }
  EXPECT_NEAR(greedy_bottleneck, best_bottleneck, best_bottleneck * 1e-9);
}

// ---------------------------------------------------------------------------
// Incremental re-partitioning (PlanRebalance)
// ---------------------------------------------------------------------------

TEST(PlanRebalanceTest, BalancedAssignmentNeedsNoMoves) {
  std::map<int64_t, int> assignment{{1, 0}, {2, 1}};
  std::vector<RegionRate> rates{{1, 100}, {2, 100}};
  auto moves = PlanRebalance(&assignment, rates, 2, 1.25, 8);
  ASSERT_TRUE(moves.ok());
  EXPECT_TRUE(moves->empty());
  EXPECT_EQ(assignment.at(1), 0);
  EXPECT_EQ(assignment.at(2), 1);
}

TEST(PlanRebalanceTest, MovesRegionsOffTheHotEngine) {
  // Engine 0 carries everything; the plan must shift load to engine 1
  // until max/avg is within the target, updating the assignment in place.
  std::map<int64_t, int> assignment{{1, 0}, {2, 0}, {3, 0}, {4, 0}};
  std::vector<RegionRate> rates{{1, 100}, {2, 90}, {3, 80}, {4, 70}};
  auto moves = PlanRebalance(&assignment, rates, 2, 1.25, 8);
  ASSERT_TRUE(moves.ok());
  ASSERT_FALSE(moves->empty());
  auto engine_rates = EngineRates(assignment, rates);
  double total = 100 + 90 + 80 + 70;
  double avg = total / 2.0;
  EXPECT_LE(std::max(engine_rates[0], engine_rates[1]), 1.25 * avg);
  for (const RegionMove& move : *moves) {
    EXPECT_EQ(move.from_engine, 0);
    EXPECT_EQ(move.to_engine, 1);
    EXPECT_EQ(assignment.at(move.region), 1);
  }
}

TEST(PlanRebalanceTest, RespectsMaxMoves) {
  std::map<int64_t, int> assignment;
  std::vector<RegionRate> rates;
  for (int64_t region = 0; region < 20; ++region) {
    assignment[region] = 0;
    rates.push_back({region, 10.0});
  }
  auto moves = PlanRebalance(&assignment, rates, 4, 1.0, 3);
  ASSERT_TRUE(moves.ok());
  EXPECT_EQ(moves->size(), 3u);
}

TEST(PlanRebalanceTest, StopsWhenNoImprovingMoveExists) {
  // One giant region dominates: moving it to the only other engine would
  // just swap the hot role, so the planner must stop, not oscillate.
  std::map<int64_t, int> assignment{{1, 0}, {2, 1}};
  std::vector<RegionRate> rates{{1, 1000}, {2, 10}};
  auto moves = PlanRebalance(&assignment, rates, 2, 1.0, 8);
  ASSERT_TRUE(moves.ok());
  EXPECT_TRUE(moves->empty());
  EXPECT_EQ(assignment.at(1), 0);
}

TEST(PlanRebalanceTest, Validation) {
  std::map<int64_t, int> assignment{{1, 0}};
  std::vector<RegionRate> rates{{1, 10}};
  EXPECT_FALSE(PlanRebalance(nullptr, rates, 2, 1.25, 8).ok());
  EXPECT_FALSE(PlanRebalance(&assignment, rates, 0, 1.25, 8).ok());
  EXPECT_FALSE(PlanRebalance(&assignment, rates, 2, 0.5, 8).ok());
  EXPECT_FALSE(
      PlanRebalance(&assignment, {{1, -10.0}}, 2, 1.25, 8).ok());
  std::map<int64_t, int> out_of_range{{1, 5}};
  EXPECT_FALSE(PlanRebalance(&out_of_range, rates, 2, 1.25, 8).ok());
}

// ---------------------------------------------------------------------------
// LiveRouter
// ---------------------------------------------------------------------------

SpatialRouter MakeTwoEngineRouter() {
  SpatialRouter::GroupingRoute areas;
  areas.location_field = "area_leaf";
  areas.region_to_engine = {{10, 0}, {11, 0}, {12, 1}};
  areas.fallback_engines = {0, 1};
  return SpatialRouter({areas});
}

std::vector<int> RouteRegion(const LiveRouter& router, int64_t region) {
  auto fields = std::make_shared<dsps::Fields>(dsps::Fields({"area_leaf"}));
  std::vector<int> tasks;
  router.Route(dsps::Tuple(fields, {cep::Value(region)}), &tasks);
  return tasks;
}

TEST(LiveRouterTest, MoveEngineRewritesEveryEntryAndBumpsVersion) {
  LiveRouter router(MakeTwoEngineRouter());
  uint64_t before = router.version();
  // Regions 10 and 11 plus one fallback slot point at engine 0.
  EXPECT_EQ(router.MoveEngine(0, 1), 3u);
  EXPECT_GT(router.version(), before);
  EXPECT_EQ(RouteRegion(router, 10), (std::vector<int>{1}));
  EXPECT_EQ(RouteRegion(router, 11), (std::vector<int>{1}));
  EXPECT_EQ(RouteRegion(router, 12), (std::vector<int>{1}));
  EXPECT_EQ(RouteRegion(router, 999), (std::vector<int>{1}));  // fallback
  // Nothing maps to engine 7.
  EXPECT_EQ(router.MoveEngine(7, 0), 0u);
}

TEST(LiveRouterTest, RestoreRollsBackToSnapshot) {
  LiveRouter router(MakeTwoEngineRouter());
  auto snapshot = router.Snapshot();
  ASSERT_GT(router.MoveEngine(0, 1), 0u);
  EXPECT_EQ(RouteRegion(router, 10), (std::vector<int>{1}));
  uint64_t flipped = router.version();
  router.Restore(snapshot);
  EXPECT_GT(router.version(), flipped);  // rollback is itself a publish
  EXPECT_EQ(RouteRegion(router, 10), (std::vector<int>{0}));
  EXPECT_EQ(RouteRegion(router, 12), (std::vector<int>{1}));
}

TEST(LiveRouterTest, ApplyMovesFollowsARebalancePlan) {
  LiveRouter router(MakeTwoEngineRouter());
  std::map<int64_t, int> assignment{{10, 0}, {11, 0}, {12, 1}};
  std::vector<RegionRate> rates{{10, 100}, {11, 90}, {12, 10}};
  auto moves = PlanRebalance(&assignment, rates, 2, 1.1, 8);
  ASSERT_TRUE(moves.ok());
  ASSERT_FALSE(moves->empty());
  EXPECT_EQ(router.ApplyMoves(0, *moves), moves->size());
  for (const auto& [region, engine] : assignment) {
    EXPECT_EQ(RouteRegion(router, region), std::vector<int>{engine})
        << "region " << region;
  }
}

TEST(LiveRouterTest, AsFunctionTracksSwaps) {
  LiveRouter router(MakeTwoEngineRouter());
  auto route_fn = router.AsFunction();
  auto fields = std::make_shared<dsps::Fields>(dsps::Fields({"area_leaf"}));
  std::vector<int> tasks;
  route_fn(dsps::Tuple(fields, {cep::Value(int64_t{10})}), &tasks);
  EXPECT_EQ(tasks, (std::vector<int>{0}));
  router.MoveEngine(0, 1);
  route_fn(dsps::Tuple(fields, {cep::Value(int64_t{10})}), &tasks);
  EXPECT_EQ(tasks, (std::vector<int>{1}));
}

TEST(AllocationTest, GroupRulesByLocationSplitsStopsFromAreas) {
  auto rules = Table6Rules(100);
  auto groupings = GroupRulesByLocation(rules, 3000.0, 50);
  ASSERT_EQ(groupings.size(), 2u);
  EXPECT_EQ(groupings[0].name, "quadtree");
  EXPECT_EQ(groupings[1].name, "bus_stops");
  EXPECT_EQ(groupings[0].rules.size(), 5u);
  EXPECT_EQ(groupings[1].rules.size(), 5u);
}

// ---------------------------------------------------------------------------
// Retrieval strategies
// ---------------------------------------------------------------------------

class RetrievalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        store_.CreateTable("statistics_delay", storage::StatisticsColumns())
            .ok());
    // Thresholds for locations 1..3, hour 8, weekday.
    for (int64_t loc = 1; loc <= 3; ++loc) {
      ASSERT_TRUE(store_
                      .Insert("statistics_delay",
                              {storage::Value(loc), storage::Value(int64_t{8}),
                               storage::Value("weekday"),
                               storage::Value(100.0 * static_cast<double>(loc)),
                               storage::Value(10.0),
                               storage::Value(int64_t{5})})
                      .ok());
    }
    rules_ = {MakeRule("r", "delay", "area_leaf", 2)};
  }

  storage::TableStore store_;
  std::vector<RuleTemplate> rules_;
};

TEST_F(RetrievalTest, ThresholdStreamPreloadsAllThresholds) {
  auto setup = BuildRetrieval(ThresholdRetrieval::kThresholdStream, rules_,
                              &store_, {});
  ASSERT_TRUE(setup.ok());
  ASSERT_EQ(setup->rules.size(), 1u);
  ASSERT_TRUE(static_cast<bool>(setup->preload));
  auto engine_ptr = MakeEngineWithTypes();
  cep::Engine& engine = *engine_ptr;
  auto stmt = engine.AddStatement(setup->rules[0].second, "r");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  setup->preload(&engine, 0);
  EXPECT_EQ((*stmt)->RetainedEvents(), 3u);  // three thresholds preloaded
  EXPECT_GT(setup->preload_db_cost_micros, 0);
  EXPECT_EQ(setup->per_tuple_db_cost_micros, 0);
}

TEST_F(RetrievalTest, MultipleRulesExpandsPerThreshold) {
  auto setup = BuildRetrieval(ThresholdRetrieval::kMultipleRules, rules_,
                              &store_, {});
  ASSERT_TRUE(setup.ok());
  EXPECT_EQ(setup->rules.size(), 3u);  // one per threshold row
  auto engine_ptr = MakeEngineWithTypes();
  cep::Engine& engine = *engine_ptr;
  for (const auto& [name, epl] : setup->rules) {
    ASSERT_TRUE(engine.AddStatement(epl, name).ok()) << epl;
  }
  EXPECT_EQ(engine.num_statements(), 3u);
}

TEST_F(RetrievalTest, StaticUsesLiteral) {
  RetrievalOptions options;
  options.static_threshold = 42.0;
  auto setup =
      BuildRetrieval(ThresholdRetrieval::kStatic, rules_, &store_, options);
  ASSERT_TRUE(setup.ok());
  EXPECT_FALSE(static_cast<bool>(setup->preload));
  EXPECT_FALSE(static_cast<bool>(setup->before_send));
  EXPECT_NE(setup->rules[0].second.find("42"), std::string::npos);
}

TEST_F(RetrievalTest, BelowRulesSubtractDeviation) {
  // Speed anomalies are *low* averages, so the preloaded threshold must be
  // mean - s*stdev, not mean + s*stdev.
  ASSERT_TRUE(
      store_.CreateTable("statistics_speed", storage::StatisticsColumns()).ok());
  ASSERT_TRUE(store_
                  .Insert("statistics_speed",
                          {storage::Value(int64_t{1}), storage::Value(int64_t{8}),
                           storage::Value("weekday"), storage::Value(20.0),
                           storage::Value(4.0), storage::Value(int64_t{5})})
                  .ok());
  std::vector<RuleTemplate> rules = {MakeRule("r", "speed", "area_leaf", 2)};
  RetrievalOptions options;
  options.s = 2.0;
  auto setup = BuildRetrieval(ThresholdRetrieval::kThresholdStream, rules,
                              &store_, options);
  ASSERT_TRUE(setup.ok());
  auto engine_ptr = MakeEngineWithTypes();
  cep::Engine& engine = *engine_ptr;
  auto stmt = engine.AddStatement(setup->rules[0].second, "r");
  ASSERT_TRUE(stmt.ok());
  std::vector<double> fired_thresholds;
  (*stmt)->AddListener([&](const cep::MatchResult& m) {
    fired_thresholds.push_back(m.Get("threshold")->AsDouble());
  });
  setup->preload(&engine, 0);
  // Crawl at 5 km/h twice at location 1: avg 5 < 20 - 2*4 = 12 -> fires with
  // the *subtracted* threshold.
  auto bus_type = engine.GetEventType("bus");
  ASSERT_TRUE(bus_type.ok());
  for (int i = 0; i < 2; ++i) {
    cep::EventBuilder builder(*bus_type);
    builder.Set("timestamp", int64_t{i})
        .Set("line", int64_t{1})
        .Set("direction", false)
        .Set("lon", -6.26)
        .Set("lat", 53.35)
        .Set("delay", 0.0)
        .Set("congestion", false)
        .Set("reported_stop", int64_t{-1})
        .Set("vehicle", int64_t{1})
        .Set("speed", 5.0)
        .Set("actual_delay", 0.0)
        .Set("hour", int64_t{8})
        .Set("date_type", "weekday")
        .Set("area_leaf", int64_t{1})
        .Set("bus_stop", int64_t{-1});
    engine.SendEvent(builder.Build());
  }
  ASSERT_FALSE(fired_thresholds.empty());
  EXPECT_DOUBLE_EQ(fired_thresholds.back(), 12.0);
}

TEST_F(RetrievalTest, JoinWithDatabaseQueriesPerTuple) {
  auto setup = BuildRetrieval(ThresholdRetrieval::kJoinWithDatabase, rules_,
                              &store_, {});
  ASSERT_TRUE(setup.ok());
  ASSERT_TRUE(static_cast<bool>(setup->before_send));
  EXPECT_GT(setup->per_tuple_db_cost_micros, 0);

  auto engine_ptr = MakeEngineWithTypes();
  cep::Engine& engine = *engine_ptr;
  auto stmt = engine.AddStatement(setup->rules[0].second, "r");
  ASSERT_TRUE(stmt.ok());

  auto fields = std::make_shared<dsps::Fields>(
      dsps::Fields({"area_leaf", "hour", "date_type"}));
  dsps::Tuple tuple(fields, {cep::Value(int64_t{2}), cep::Value(int64_t{8}),
                             cep::Value("weekday")});
  size_t queries_before = store_.query_count();
  setup->before_send(&engine, 0, tuple);
  EXPECT_GT(store_.query_count(), queries_before);
  EXPECT_EQ((*stmt)->RetainedEvents(), 1u);  // the fetched threshold
  // Same key again: queried again (per-tuple join) but not re-sent.
  setup->before_send(&engine, 0, tuple);
  EXPECT_EQ((*stmt)->RetainedEvents(), 1u);
}

}  // namespace
}  // namespace core
}  // namespace insight
