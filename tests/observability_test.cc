// Observability layer: histogram bucketing/merging/percentiles, tracer
// sampling and span lifecycle, the Prometheus text exporter (golden-file
// check), and the end-to-end tracing acceptance run — a Listing-1-shaped
// acked topology whose per-hop spans must sum (within tolerance) to the
// measured end-to-end root span.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "dsps/local_runtime.h"
#include "dsps/topology.h"
#include "observability/export.h"
#include "observability/histogram.h"
#include "observability/trace.h"

namespace insight {
namespace observability {
namespace {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketIndexMatchesBoundaries) {
  // Bounds are upper-inclusive: value v lands in the first bucket with
  // v <= bound; everything past the last bound lands in +Inf.
  EXPECT_EQ(LatencyHistogram::BucketIndex(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(2), 1u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(3), 2u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(5), 2u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(10'000'000), 21u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(10'000'001),
            HistogramSnapshot::kNumBuckets - 1);
}

TEST(HistogramTest, RecordAndSnapshotCounts) {
  LatencyHistogram histogram;
  histogram.Record(1);
  histogram.Record(1);
  histogram.Record(700);
  HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.total(), 3u);
  EXPECT_EQ(snapshot.counts[0], 2u);
  EXPECT_EQ(snapshot.counts[LatencyHistogram::BucketIndex(700)], 1u);
}

TEST(HistogramTest, MergeAddsElementwise) {
  LatencyHistogram a, b;
  a.Record(3);
  b.Record(3);
  b.Record(100);
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.total(), 3u);
  EXPECT_EQ(merged.counts[LatencyHistogram::BucketIndex(3)], 2u);
  EXPECT_EQ(merged.counts[LatencyHistogram::BucketIndex(100)], 1u);
}

TEST(HistogramTest, EmptyPercentileIsZeroNotNaN) {
  HistogramSnapshot empty;
  EXPECT_EQ(empty.Percentile(50), 0.0);
  EXPECT_EQ(empty.Percentile(99), 0.0);
}

TEST(HistogramTest, PercentileInterpolatesWithinBucket) {
  // 100 observations of 3 us land in the (2, 5] bucket; the median rank
  // sits halfway through it: 2 + 0.5 * (5 - 2) = 3.5.
  LatencyHistogram histogram;
  for (int i = 0; i < 100; ++i) histogram.Record(3);
  HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.Percentile(50), 3.5);
  // p100 reaches the bucket's upper bound.
  EXPECT_DOUBLE_EQ(snapshot.Percentile(100), 5.0);
}

TEST(HistogramTest, PercentilesAreMonotone) {
  LatencyHistogram histogram;
  for (int i = 0; i < 50; ++i) histogram.Record(8);
  for (int i = 0; i < 45; ++i) histogram.Record(300);
  for (int i = 0; i < 5; ++i) histogram.Record(20'000);
  HistogramSnapshot snapshot = histogram.Snapshot();
  double p50 = snapshot.Percentile(50);
  double p95 = snapshot.Percentile(95);
  double p99 = snapshot.Percentile(99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GT(p50, 5.0);
  EXPECT_LE(p50, 10.0);
  EXPECT_GT(p99, 10'000.0);
}

TEST(HistogramTest, OverflowBucketReportsItsLowerBound) {
  // Ranks landing in +Inf have no upper bound to interpolate toward; the
  // honest answer is the last finite boundary, never NaN or infinity.
  LatencyHistogram histogram;
  for (int i = 0; i < 10; ++i) histogram.Record(20'000'000);
  EXPECT_DOUBLE_EQ(histogram.Snapshot().Percentile(99),
                   kLatencyBucketBoundsMicros.back());
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(TracerTest, RateZeroSamplesNothing) {
  Tracer tracer({.sample_rate = 0.0});
  EXPECT_FALSE(tracer.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(tracer.MaybeStartTrace(i), 0u);
  }
  EXPECT_EQ(tracer.stats().started, 0u);
}

TEST(TracerTest, RateOneSamplesEveryEmissionWithFreshIds) {
  Tracer tracer({.sample_rate = 1.0});
  std::set<uint64_t> ids;
  for (int i = 0; i < 50; ++i) {
    uint64_t id = tracer.MaybeStartTrace(i);
    ASSERT_NE(id, 0u);
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), 50u);
  EXPECT_EQ(tracer.stats().started, 50u);
}

TEST(TracerTest, FractionalRateIsDeterministicOneInN) {
  Tracer tracer({.sample_rate = 0.5});
  int sampled = 0;
  for (int i = 0; i < 10; ++i) {
    if (tracer.MaybeStartTrace(i) != 0) ++sampled;
  }
  EXPECT_EQ(sampled, 5);  // 1-in-2 on a shared counter, not a coin flip
}

TEST(TracerTest, CompleteClosesRootOnceAndCountsDoubles) {
  Tracer tracer({.sample_rate = 1.0});
  uint64_t id = tracer.MaybeStartTrace(100);
  ASSERT_NE(id, 0u);
  EXPECT_TRUE(tracer.CompleteTrace(id, 350));
  // The root span materialized with the open/close timestamps.
  auto spans = tracer.SpansForTrace(id);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].kind, SpanKind::kRoot);
  EXPECT_EQ(spans[0].start_micros, 100);
  EXPECT_EQ(spans[0].end_micros, 350);
  // Completing again (a duplicate final ack) is counted, never doubled.
  EXPECT_FALSE(tracer.CompleteTrace(id, 400));
  Tracer::Stats stats = tracer.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.double_completions, 1u);
  EXPECT_EQ(tracer.SpansForTrace(id).size(), 1u);
}

TEST(TracerTest, AbandonDropsOpenTraceWithoutRootSpan) {
  Tracer tracer({.sample_rate = 1.0});
  uint64_t id = tracer.MaybeStartTrace(10);
  tracer.AbandonTrace(id);
  EXPECT_TRUE(tracer.SpansForTrace(id).empty());
  EXPECT_EQ(tracer.stats().abandoned, 1u);
  // The abandoned trace cannot be completed later (a straggler ack).
  EXPECT_FALSE(tracer.CompleteTrace(id, 99));
  EXPECT_EQ(tracer.stats().double_completions, 1u);
  // Abandoning twice (or an unknown id) counts nothing extra.
  tracer.AbandonTrace(id);
  EXPECT_EQ(tracer.stats().abandoned, 1u);
}

TEST(TracerTest, NonRootTraceOnlyGroupsHopSpans) {
  // open_root=false: no end-to-end ack exists (unacked topologies), so the
  // id only groups hop spans and CompleteTrace has nothing to close.
  Tracer tracer({.sample_rate = 1.0});
  uint64_t id = tracer.MaybeStartTrace(5, /*open_root=*/false);
  ASSERT_NE(id, 0u);
  tracer.RecordSpan(id, SpanKind::kExecute, 1, 0, 10, 20);
  EXPECT_EQ(tracer.SpansForTrace(id).size(), 1u);
  EXPECT_FALSE(tracer.CompleteTrace(id, 30));
}

TEST(TracerTest, SpanRingDropsOldestAtCapacity) {
  Tracer tracer({.sample_rate = 1.0, .max_spans = 4});
  uint64_t id = tracer.MaybeStartTrace(0, /*open_root=*/false);
  for (int i = 0; i < 6; ++i) {
    tracer.RecordSpan(id, SpanKind::kExecute, 0, 0, i, i + 1);
  }
  auto spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().start_micros, 2);  // 0 and 1 were evicted
  Tracer::Stats stats = tracer.stats();
  EXPECT_EQ(stats.spans_recorded, 6u);
  EXPECT_EQ(stats.spans_dropped, 2u);
}

TEST(TracerTest, OpenTableCapPausesSampling) {
  Tracer tracer({.sample_rate = 1.0, .max_open = 2});
  EXPECT_NE(tracer.MaybeStartTrace(0), 0u);
  EXPECT_NE(tracer.MaybeStartTrace(1), 0u);
  EXPECT_EQ(tracer.MaybeStartTrace(2), 0u);  // at cap: skipped, not queued
  EXPECT_EQ(tracer.stats().sample_skips_at_cap, 1u);
  EXPECT_EQ(tracer.stats().started, 2u);
}

TEST(TracerTest, ComponentNamesResolveWithFallback) {
  Tracer tracer({.sample_rate = 1.0});
  tracer.SetComponentNames({"source", "sink"});
  EXPECT_EQ(tracer.ComponentName(0), "source");
  EXPECT_EQ(tracer.ComponentName(1), "sink");
  EXPECT_EQ(tracer.ComponentName(-1), "?");
  EXPECT_EQ(tracer.ComponentName(7), "?");
}

// ---------------------------------------------------------------------------
// Prometheus text exporter
// ---------------------------------------------------------------------------

TEST(ExportTest, PrometheusTextMatchesGolden) {
  MetricsSnapshot snapshot;
  CounterFamily counter;
  counter.name = "insight_tuples_executed_total";
  counter.help = "Tuples executed";
  counter.samples.push_back({"component=\"sink\"", 42});
  counter.samples.push_back({"", 7});
  snapshot.counters.push_back(counter);

  HistogramFamily family;
  family.name = "insight_execute_latency_micros";
  family.help = "Execute latency";
  HistogramSample sample;
  sample.labels = "component=\"sink\"";
  sample.histogram.counts[0] = 2;  // two <= 1 us observations
  sample.histogram.counts[3] = 1;  // one in (5, 10] us
  sample.sum = 12.5;
  family.samples.push_back(sample);
  snapshot.histograms.push_back(family);

  const std::string expected =
      "# HELP insight_tuples_executed_total Tuples executed\n"
      "# TYPE insight_tuples_executed_total counter\n"
      "insight_tuples_executed_total{component=\"sink\"} 42\n"
      "insight_tuples_executed_total 7\n"
      "# HELP insight_execute_latency_micros Execute latency\n"
      "# TYPE insight_execute_latency_micros histogram\n"
      "insight_execute_latency_micros_bucket{component=\"sink\",le=\"1\"} 2\n"
      "insight_execute_latency_micros_bucket{component=\"sink\",le=\"2\"} 2\n"
      "insight_execute_latency_micros_bucket{component=\"sink\",le=\"5\"} 2\n"
      "insight_execute_latency_micros_bucket{component=\"sink\",le=\"10\"} 3\n"
      "insight_execute_latency_micros_bucket{component=\"sink\",le=\"25\"} 3\n"
      "insight_execute_latency_micros_bucket{component=\"sink\",le=\"50\"} 3\n"
      "insight_execute_latency_micros_bucket{component=\"sink\",le=\"100\"} 3\n"
      "insight_execute_latency_micros_bucket{component=\"sink\",le=\"250\"} 3\n"
      "insight_execute_latency_micros_bucket{component=\"sink\",le=\"500\"} 3\n"
      "insight_execute_latency_micros_bucket{component=\"sink\",le=\"1000\"} 3\n"
      "insight_execute_latency_micros_bucket{component=\"sink\",le=\"2500\"} 3\n"
      "insight_execute_latency_micros_bucket{component=\"sink\",le=\"5000\"} 3\n"
      "insight_execute_latency_micros_bucket{component=\"sink\",le=\"10000\"} "
      "3\n"
      "insight_execute_latency_micros_bucket{component=\"sink\",le=\"25000\"} "
      "3\n"
      "insight_execute_latency_micros_bucket{component=\"sink\",le=\"50000\"} "
      "3\n"
      "insight_execute_latency_micros_bucket{component=\"sink\",le=\"100000\"}"
      " 3\n"
      "insight_execute_latency_micros_bucket{component=\"sink\",le=\"250000\"}"
      " 3\n"
      "insight_execute_latency_micros_bucket{component=\"sink\",le=\"500000\"}"
      " 3\n"
      "insight_execute_latency_micros_bucket{component=\"sink\","
      "le=\"1000000\"} 3\n"
      "insight_execute_latency_micros_bucket{component=\"sink\","
      "le=\"2500000\"} 3\n"
      "insight_execute_latency_micros_bucket{component=\"sink\","
      "le=\"5000000\"} 3\n"
      "insight_execute_latency_micros_bucket{component=\"sink\","
      "le=\"10000000\"} 3\n"
      "insight_execute_latency_micros_bucket{component=\"sink\",le=\"+Inf\"} "
      "3\n"
      "insight_execute_latency_micros_sum{component=\"sink\"} 12.5\n"
      "insight_execute_latency_micros_count{component=\"sink\"} 3\n";
  EXPECT_EQ(ExportPrometheusText(snapshot), expected);
}

TEST(ExportTest, TracerSnapshotCarriesAllLifecycleCounters) {
  Tracer tracer({.sample_rate = 1.0});
  uint64_t completed_id = tracer.MaybeStartTrace(0);
  tracer.RecordSpan(completed_id, SpanKind::kExecute, 0, 0, 1, 2);
  tracer.CompleteTrace(completed_id, 10);
  uint64_t abandoned_id = tracer.MaybeStartTrace(20);
  tracer.AbandonTrace(abandoned_id);
  tracer.CompleteTrace(abandoned_id, 30);  // double completion

  std::string text = ExportPrometheusText(TracerSnapshot(tracer));
  EXPECT_NE(text.find("insight_traces_started_total 2\n"), std::string::npos);
  EXPECT_NE(text.find("insight_traces_completed_total 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("insight_traces_abandoned_total 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("insight_trace_double_completions_total 1\n"),
            std::string::npos);
  // The root span of the completed trace counts alongside the execute span.
  EXPECT_NE(text.find("insight_trace_spans_recorded_total 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("insight_trace_spans_dropped_total 0\n"),
            std::string::npos);
}

TEST(ExportTest, WriteTextFileRoundTripsAndReportsIoErrors) {
  std::string path = ::testing::TempDir() + "/metrics.prom";
  ASSERT_TRUE(WriteTextFile(path, "a b 1\n").ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buffer[32] = {};
  size_t n = std::fread(buffer, 1, sizeof(buffer), f);
  std::fclose(f);
  EXPECT_EQ(std::string(buffer, n), "a b 1\n");

  Status bad = WriteTextFile("/nonexistent-dir-xyz/metrics.prom", "x");
  EXPECT_FALSE(bad.ok());
}

// ---------------------------------------------------------------------------
// End-to-end: spans vs measured latency on a Listing-1-shaped topology
// ---------------------------------------------------------------------------

using dsps::Bolt;
using dsps::Collector;
using dsps::Fields;
using dsps::LocalRuntime;
using dsps::Spout;
using dsps::TaskContext;
using dsps::TopologyBuilder;
using dsps::Tuple;
using dsps::Value;

/// Emits [0, n) as rooted (tracked) tuples.
class RootedSpout : public Spout {
 public:
  explicit RootedSpout(int n) : n_(n) {}
  bool NextTuple(Collector* collector) override {
    if (next_ >= n_) return false;
    collector->EmitRooted(static_cast<uint64_t>(next_),
                          {Value(int64_t{next_})});
    ++next_;
    return next_ < n_;
  }

 private:
  int n_;
  int next_ = 0;
};

/// Burns a known amount of wall time, then forwards. The sleep sits BEFORE
/// the emit so downstream queue-wait spans never overlap this bolt's
/// execute span (emitting first would let the child's queue wait cover this
/// bolt's remaining execution).
class SleepRelayBolt : public Bolt {
 public:
  explicit SleepRelayBolt(int sleep_micros, bool forward)
      : sleep_micros_(sleep_micros), forward_(forward) {}
  void Execute(const Tuple& input, Collector* collector) override {
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_micros_));
    if (forward_) collector->Emit({input.Get(0)});
  }

 private:
  int sleep_micros_;
  bool forward_;
};

TEST(TracingEndToEndTest, SpansSumToMeasuredEndToEndLatency) {
  static constexpr int kTuples = 10;
  static constexpr int kSleepMicros = 1000;
  TopologyBuilder builder;
  builder.SetSpout("source",
                   [] { return std::make_unique<RootedSpout>(kTuples); },
                   Fields({"v"}));
  builder
      .SetBolt("enrich",
               [] {
                 return std::make_unique<SleepRelayBolt>(kSleepMicros,
                                                         /*forward=*/true);
               },
               Fields({"v"}))
      .ShuffleGrouping("source");
  builder
      .SetBolt("detect",
               [] {
                 return std::make_unique<SleepRelayBolt>(kSleepMicros,
                                                         /*forward=*/false);
               },
               Fields({}))
      .ShuffleGrouping("enrich");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());

  LocalRuntime::Options options;
  options.enable_acking = true;
  options.enable_tracing = true;
  options.trace_sample_rate = 1.0;
  LocalRuntime runtime(std::move(*topology), options);
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();

  Tracer* tracer = runtime.tracer();
  ASSERT_NE(tracer, nullptr);
  Tracer::Stats stats = tracer->stats();
  EXPECT_EQ(stats.started, static_cast<uint64_t>(kTuples));
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kTuples));
  EXPECT_EQ(stats.abandoned, 0u);
  EXPECT_EQ(stats.double_completions, 0u);

  std::map<uint64_t, std::vector<TraceSpan>> by_trace;
  for (const TraceSpan& span : tracer->Spans()) {
    by_trace[span.trace_id].push_back(span);
  }
  ASSERT_EQ(by_trace.size(), static_cast<size_t>(kTuples));

  double total_root = 0, total_hops = 0;
  for (const auto& [id, spans] : by_trace) {
    MicrosT root = 0, exec_sum = 0, queue_sum = 0;
    int roots = 0, execs = 0;
    for (const TraceSpan& span : spans) {
      switch (span.kind) {
        case SpanKind::kRoot:
          ++roots;
          root = span.duration_micros();
          break;
        case SpanKind::kExecute:
          ++execs;
          exec_sum += span.duration_micros();
          EXPECT_TRUE(tracer->ComponentName(span.component) == "enrich" ||
                      tracer->ComponentName(span.component) == "detect");
          break;
        case SpanKind::kQueueWait:
          queue_sum += span.duration_micros();
          break;
      }
    }
    ASSERT_EQ(roots, 1) << "trace " << id;
    ASSERT_EQ(execs, 2) << "trace " << id;  // one hop per bolt
    // Both sleeps are inside the execute spans, which sit inside the root.
    EXPECT_GE(exec_sum, 2 * kSleepMicros);
    EXPECT_GE(root, exec_sum);
    total_root += static_cast<double>(root);
    total_hops += static_cast<double>(exec_sum + queue_sum);
  }
  // Acceptance: per-hop spans account for the measured end-to-end latency.
  // Uncovered gaps (emit -> stage, final ack processing) and the one
  // overlap (a bolt's post-emit tail vs its child's queue wait) are small
  // against two 1 ms sleeps; aggregate over all traces for noise immunity.
  EXPECT_GE(total_hops, 0.5 * total_root);
  EXPECT_LE(total_hops, 1.25 * total_root);
}

TEST(TracingEndToEndTest, UnackedTopologyTracesHopsWithoutRoots) {
  // Without acking no final ack exists: traces group hop spans only, and
  // nothing leaks in the open-trace table (completed == abandoned == 0).
  static constexpr int kTuples = 50;
  struct PlainSpout : public Spout {
    int next = 0;
    bool NextTuple(Collector* collector) override {
      if (next >= kTuples) return false;
      collector->Emit({Value(int64_t{next})});
      ++next;
      return next < kTuples;
    }
  };
  TopologyBuilder builder;
  builder.SetSpout("source", [] { return std::make_unique<PlainSpout>(); },
                   Fields({"v"}));
  builder
      .SetBolt("sink",
               [] {
                 return std::make_unique<SleepRelayBolt>(0, /*forward=*/false);
               },
               Fields({}))
      .ShuffleGrouping("source");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());

  LocalRuntime::Options options;
  options.enable_tracing = true;
  options.trace_sample_rate = 1.0;
  LocalRuntime runtime(std::move(*topology), options);
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();

  Tracer::Stats stats = runtime.tracer()->stats();
  EXPECT_EQ(stats.started, static_cast<uint64_t>(kTuples));
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.abandoned, 0u);
  int roots = 0, execs = 0, queues = 0;
  for (const TraceSpan& span : runtime.tracer()->Spans()) {
    if (span.kind == SpanKind::kRoot) ++roots;
    if (span.kind == SpanKind::kExecute) ++execs;
    if (span.kind == SpanKind::kQueueWait) ++queues;
  }
  EXPECT_EQ(roots, 0);
  EXPECT_EQ(execs, kTuples);
  EXPECT_EQ(queues, kTuples);
}

TEST(TracingEndToEndTest, TracingDisabledLeavesNoTracer) {
  TopologyBuilder builder;
  builder.SetSpout("source",
                   [] { return std::make_unique<RootedSpout>(1); },
                   Fields({"v"}));
  builder
      .SetBolt("sink",
               [] {
                 return std::make_unique<SleepRelayBolt>(0, /*forward=*/false);
               },
               Fields({}))
      .ShuffleGrouping("source");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());
  LocalRuntime runtime(std::move(*topology), {});
  EXPECT_EQ(runtime.tracer(), nullptr);
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();
}

}  // namespace
}  // namespace observability
}  // namespace insight
