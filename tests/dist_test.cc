// Distributed runtime tests: placement planning, control/data-plane proto
// round-trips, egress retransmit buffer and ingress duplicate suppression,
// and a 2-worker end-to-end run on loopback.
//
// This binary is the symmetric binary of its own clusters: the supervisor
// branch (the gtest process) re-execs it with --insight-* flags, and main()
// routes those invocations to the worker role before gtest ever runs.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dist/channel.h"
#include "dist/options.h"
#include "dist/placement.h"
#include "dist/proto.h"
#include "dist/runtime.h"
#include "dsps/local_runtime.h"
#include "dsps/topology.h"
#include "net/wire.h"

namespace insight {
namespace dist {
namespace {

using dsps::Bolt;
using dsps::Collector;
using dsps::Fields;
using dsps::Spout;
using dsps::TopologyBuilder;
using dsps::Tuple;
using dsps::Value;

dsps::Topology ThreeStageTopology() {
  TopologyBuilder builder;
  builder.SetSpout("source", [] { return nullptr; }, Fields({"v"}));
  builder.SetBolt("detect", [] { return nullptr; }, Fields({"w"}), 2)
      .FieldsGrouping("source", {"v"});
  builder.SetBolt("sink", [] { return nullptr; }, Fields({}))
      .GlobalGrouping("detect");
  auto topology = builder.Build();
  EXPECT_TRUE(topology.ok()) << topology.status().ToString();
  return std::move(*topology);
}

// ---------------------------------------------------------------------------
// Placement

TEST(PlacementTest, RoundRobinFollowsDeclarationOrder) {
  dsps::Topology topology = ThreeStageTopology();
  Placement placement = RoundRobinPlacement(topology, 2);
  EXPECT_EQ(placement.worker_of.at("source"), 0u);
  EXPECT_EQ(placement.worker_of.at("detect"), 1u);
  EXPECT_EQ(placement.worker_of.at("sink"), 0u);
  ASSERT_TRUE(ValidatePlacement(topology, placement, 2).ok());
}

TEST(PlacementTest, ResolveKeepsExplicitEntries) {
  dsps::Topology topology = ThreeStageTopology();
  Placement partial;
  partial.worker_of["detect"] = 2;
  Placement resolved = ResolvePlacement(topology, partial, 3);
  EXPECT_EQ(resolved.worker_of.at("detect"), 2u);
  EXPECT_EQ(resolved.worker_of.size(), 3u);
  ASSERT_TRUE(ValidatePlacement(topology, resolved, 3).ok());
}

TEST(PlacementTest, ValidateRejectsBadPlacements) {
  dsps::Topology topology = ThreeStageTopology();
  Placement good = RoundRobinPlacement(topology, 2);

  Placement unknown = good;
  unknown.worker_of["no-such-component"] = 0;
  EXPECT_FALSE(ValidatePlacement(topology, unknown, 2).ok());

  Placement out_of_range = good;
  out_of_range.worker_of["sink"] = 7;
  EXPECT_FALSE(ValidatePlacement(topology, out_of_range, 2).ok());

  Placement incomplete = good;
  incomplete.worker_of.erase("sink");
  EXPECT_FALSE(ValidatePlacement(topology, incomplete, 2).ok());

  EXPECT_FALSE(ValidatePlacement(topology, good, 0).ok());
}

TEST(PlacementTest, ValidateRejectsCrossWorkerDirectGrouping) {
  TopologyBuilder builder;
  builder.SetSpout("source", [] { return nullptr; }, Fields({"v"}));
  builder.SetBolt("direct", [] { return nullptr; }, Fields({}), 2)
      .DirectGrouping("source");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());

  Placement split;
  split.worker_of["source"] = 0;
  split.worker_of["direct"] = 1;
  EXPECT_FALSE(ValidatePlacement(*topology, split, 2).ok());
  // Same worker is fine: EmitDirect stays process-local.
  split.worker_of["direct"] = 0;
  EXPECT_TRUE(ValidatePlacement(*topology, split, 2).ok());
}

TEST(PlacementTest, ReservedNames) {
  EXPECT_EQ(IngressName("detect"), "__in_detect");
  EXPECT_EQ(EgressName("source"), "__out_source");
  EXPECT_TRUE(IsReservedComponentName("__in_x"));
  EXPECT_TRUE(IsReservedComponentName("__out_x"));
  EXPECT_FALSE(IsReservedComponentName("detect"));
}

TEST(PlacementTest, PlanForWorkerComputesEdges) {
  dsps::Topology topology = ThreeStageTopology();
  Placement placement = RoundRobinPlacement(topology, 2);  // src+sink@0, detect@1

  WorkerPlan plan0 = PlanForWorker(topology, placement, 0);
  EXPECT_EQ(plan0.owned, (std::vector<std::string>{"source", "sink"}));
  ASSERT_EQ(plan0.remote_dests.count("source"), 1u);
  EXPECT_EQ(plan0.remote_dests.at("source"), (std::vector<uint32_t>{1}));
  ASSERT_EQ(plan0.ingress_sources.count("detect"), 1u);
  EXPECT_EQ(plan0.ingress_sources.at("detect"), 1u);

  WorkerPlan plan1 = PlanForWorker(topology, placement, 1);
  EXPECT_EQ(plan1.owned, (std::vector<std::string>{"detect"}));
  EXPECT_EQ(plan1.remote_dests.at("detect"), (std::vector<uint32_t>{0}));
  EXPECT_EQ(plan1.ingress_sources.at("source"), 0u);
}

// ---------------------------------------------------------------------------
// Wire-id chaining

TEST(WireIdTest, ChainedIdsAreStableAndDistinct) {
  uint64_t a1 = ChainWireId(42, 1);
  uint64_t a2 = ChainWireId(42, 2);
  uint64_t b1 = ChainWireId(43, 1);
  // Replay-stability: the same (input, ordinal) always maps to the same id.
  EXPECT_EQ(a1, ChainWireId(42, 1));
  EXPECT_NE(a1, a2);
  EXPECT_NE(a1, b1);
  EXPECT_NE(a1, 0u);
}

// ---------------------------------------------------------------------------
// Control/data-plane proto

TEST(ProtoTest, WorkerHelloRoundTrip) {
  WorkerHello msg{3, 7, 45123};
  std::string bytes;
  EncodeWorkerHello(msg, &bytes);
  WorkerHello out;
  ASSERT_TRUE(DecodeWorkerHello(bytes, &out).ok());
  EXPECT_EQ(out.worker_id, 3u);
  EXPECT_EQ(out.incarnation, 7u);
  EXPECT_EQ(out.data_port, 45123);
  EXPECT_FALSE(DecodeWorkerHello(bytes.substr(0, 3), &out).ok());
}

TEST(ProtoTest, PeerTableRoundTrip) {
  PeerTable msg;
  msg.peers.push_back({0, 1, 1000});
  msg.peers.push_back({1, 4, 2000});
  std::string bytes;
  EncodePeerTable(msg, &bytes);
  PeerTable out;
  ASSERT_TRUE(DecodePeerTable(bytes, &out).ok());
  ASSERT_EQ(out.peers.size(), 2u);
  EXPECT_EQ(out.peers[1].worker_id, 1u);
  EXPECT_EQ(out.peers[1].incarnation, 4u);
  EXPECT_EQ(out.peers[1].data_port, 2000);
  EXPECT_FALSE(DecodePeerTable(bytes.substr(0, bytes.size() - 1), &out).ok());
}

TEST(ProtoTest, WorkerStatusRoundTrip) {
  WorkerStatus msg{2, 5, true, 11, -3, 4, 9, 6};
  std::string bytes;
  EncodeWorkerStatus(msg, &bytes);
  WorkerStatus out;
  ASSERT_TRUE(DecodeWorkerStatus(bytes, &out).ok());
  EXPECT_EQ(out.worker_id, 2u);
  EXPECT_TRUE(out.user_spouts_done);
  EXPECT_EQ(out.pending_trees, 11u);
  EXPECT_EQ(out.in_flight, -3);
  EXPECT_EQ(out.egress_unacked_frames, 4u);
  EXPECT_EQ(out.ingress_queued, 9u);
  EXPECT_EQ(out.ingress_inflight, 6u);
}

TEST(ProtoTest, SmallMessagesRoundTrip) {
  std::string bytes;
  EncodeShutdownRequest({true}, &bytes);
  ShutdownRequest shutdown;
  ASSERT_TRUE(DecodeShutdownRequest(bytes, &shutdown).ok());
  EXPECT_TRUE(shutdown.abort);

  bytes.clear();
  EncodeFinishedNote({5, 9}, &bytes);
  FinishedNote finished;
  ASSERT_TRUE(DecodeFinishedNote(bytes, &finished).ok());
  EXPECT_EQ(finished.worker_id, 5u);
  EXPECT_EQ(finished.incarnation, 9u);

  bytes.clear();
  EncodeChannelHello({8, 2}, &bytes);
  ChannelHello hello;
  ASSERT_TRUE(DecodeChannelHello(bytes, &hello).ok());
  EXPECT_EQ(hello.worker_id, 8u);
  EXPECT_EQ(hello.incarnation, 2u);
  EXPECT_FALSE(DecodeChannelHello("x", &hello).ok());
}

TEST(ProtoTest, HopAckRoundTrip) {
  HopAck msg;
  msg.stream = "detect";
  msg.sender_task = 3;
  msg.seqs = {1, 5, 1'000'000'000'000ull};
  msg.credits = 2048;
  std::string bytes;
  EncodeHopAck(msg, &bytes);
  HopAck out;
  ASSERT_TRUE(DecodeHopAck(bytes, &out).ok());
  EXPECT_EQ(out.stream, "detect");
  EXPECT_EQ(out.sender_task, 3u);
  EXPECT_EQ(out.seqs, msg.seqs);
  EXPECT_EQ(out.credits, 2048u);
}

TEST(ProtoTest, MetricsReportRoundTrip) {
  MetricsReport msg;
  msg.worker_id = 1;
  msg.incarnation = 2;
  observability::CounterFamily family;
  family.name = "insight_tuples_executed_total";
  family.help = "tuples executed";
  family.samples.push_back({"component=\"detect\"", 42.0});
  msg.snapshot.counters.push_back(family);
  dsps::MetricsRegistry::WindowReport window;
  window.window_start = 123;
  window.window_length_micros = 1'000'000;
  window.component = "detect";
  window.executed = 10;
  window.avg_latency_micros = 2.5;
  window.p95_micros = 4.0;
  msg.windows.push_back(window);

  std::string bytes;
  EncodeMetricsReport(msg, &bytes);
  MetricsReport out;
  ASSERT_TRUE(DecodeMetricsReport(bytes, &out).ok());
  ASSERT_EQ(out.snapshot.counters.size(), 1u);
  EXPECT_EQ(out.snapshot.counters[0].name, "insight_tuples_executed_total");
  ASSERT_EQ(out.snapshot.counters[0].samples.size(), 1u);
  EXPECT_EQ(out.snapshot.counters[0].samples[0].labels,
            "component=\"detect\"");
  EXPECT_EQ(out.snapshot.counters[0].samples[0].value, 42.0);
  ASSERT_EQ(out.windows.size(), 1u);
  EXPECT_EQ(out.windows[0].component, "detect");
  EXPECT_EQ(out.windows[0].executed, 10u);
  EXPECT_EQ(out.windows[0].avg_latency_micros, 2.5);
  EXPECT_FALSE(DecodeMetricsReport(bytes.substr(0, bytes.size() / 2), &out).ok());
}

// ---------------------------------------------------------------------------
// EgressBuffer

net::ValuePayload Payload(int64_t v) {
  return std::make_shared<const std::vector<Value>>(
      std::vector<Value>{Value(v)});
}

TEST(EgressBufferTest, BatchesAcksRequeuesAndSnapshots) {
  EgressOptions options;
  options.batch_tuples = 2;
  options.flush_interval_micros = 0;  // ticks flush any aged staging
  EgressBuffer buffer("detect", 0, {1}, options);

  buffer.Add(Payload(1), 101, 0);
  buffer.Add(Payload(2), 102, 0);  // cuts frame seq=1
  buffer.Add(Payload(3), 103, 0);  // staged

  // Staging ages against the monotonic clock; a "now" past it flushes.
  MicrosT later = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count() +
                  1'000'000;
  std::vector<std::string> sendable = buffer.TakeSendable(1, later);
  ASSERT_EQ(sendable.size(), 2u);  // full batch + tick-flushed remainder
  net::TupleBatch first;
  ASSERT_TRUE(net::DecodeTupleBatch(sendable[0], &first).ok());
  EXPECT_EQ(first.seq, 1u);
  EXPECT_EQ(first.stream, "detect");
  ASSERT_EQ(first.tuples.size(), 2u);
  EXPECT_EQ(first.tuples[0].wire_id, 101u);
  net::TupleBatch second;
  ASSERT_TRUE(net::DecodeTupleBatch(sendable[1], &second).ok());
  EXPECT_EQ(second.seq, 2u);
  ASSERT_EQ(second.tuples.size(), 1u);

  // Already marked sent: nothing further to send, both still unacked.
  EXPECT_TRUE(buffer.TakeSendable(1, later).empty());
  EXPECT_EQ(buffer.UnackedFrames(), 2u);

  buffer.HandleAck(1, {1});
  EXPECT_EQ(buffer.UnackedFrames(), 1u);

  // Disconnect requeues the in-flight frame (1 tuple) for resend.
  EXPECT_EQ(buffer.MarkDisconnected(1), 1u);
  std::vector<std::string> resent = buffer.TakeSendable(1, later);
  ASSERT_EQ(resent.size(), 1u);
  EXPECT_EQ(resent[0], sendable[1]);  // byte-identical retransmit

  // Snapshot -> restore into a fresh buffer: the unacked frame survives and
  // is marked unsent, so the next tick retransmits it.
  std::string snapshot;
  ASSERT_TRUE(buffer.Snapshot(&snapshot).ok());
  EgressBuffer restored("detect", 0, {1}, options);
  ASSERT_TRUE(restored.Restore(snapshot).ok());
  EXPECT_EQ(restored.UnackedFrames(), 1u);
  std::vector<std::string> after = restored.TakeSendable(1, later);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0], sendable[1]);

  // Corrupt snapshots are rejected cleanly.
  EgressBuffer victim("detect", 0, {1}, options);
  EXPECT_FALSE(victim.Restore("garbage").ok());
  EXPECT_FALSE(victim.Restore(snapshot.substr(0, snapshot.size() / 2)).ok());
}

// ---------------------------------------------------------------------------
// IngressQueue

net::TupleBatch MakeBatch(uint64_t seq, std::vector<uint64_t> wire_ids) {
  net::TupleBatchBuilder builder("source", 0);
  for (uint64_t id : wire_ids) {
    builder.Add(Payload(static_cast<int64_t>(id)), id, 0);
  }
  return builder.Take(seq);
}

struct AckLog {
  std::vector<std::pair<uint32_t, std::vector<uint64_t>>> acks;
  uint32_t last_credits = 0;
  void Attach(IngressQueue* queue) {
    queue->SetAckSink([this](uint32_t task, std::vector<uint64_t> seqs,
                             uint32_t credits) {
      acks.push_back({task, std::move(seqs)});
      last_credits = credits;
    });
  }
  size_t TotalSeqs() const {
    size_t n = 0;
    for (const auto& [task, seqs] : acks) n += seqs.size();
    return n;
  }
};

TEST(IngressQueueTest, AcceptsResolvesAndSuppressesDuplicates) {
  IngressQueue queue("source", IngressOptions{});
  AckLog log;
  log.Attach(&queue);

  ASSERT_EQ(queue.OfferFrame(1, MakeBatch(1, {11, 12})),
            IngressQueue::Disposition::kAccepted);
  EXPECT_EQ(queue.QueuedTuples(), 2u);

  // Re-offering the same frame while in progress: dropped, no premature ack.
  ASSERT_EQ(queue.OfferFrame(1, MakeBatch(1, {11, 12})),
            IngressQueue::Disposition::kDuplicate);
  EXPECT_EQ(queue.QueuedTuples(), 2u);
  EXPECT_TRUE(log.acks.empty());

  std::vector<IngressQueue::PendingTuple> drained;
  ASSERT_EQ(queue.Drain(10, &drained), 2u);
  queue.ResolveNow(drained[0]);
  EXPECT_TRUE(log.acks.empty());  // frame not yet fully resolved
  queue.ResolveNow(drained[1]);
  ASSERT_EQ(log.acks.size(), 1u);
  EXPECT_EQ(log.acks[0].second, (std::vector<uint64_t>{1}));

  // A retransmit of the completed frame re-acks without re-queuing.
  ASSERT_EQ(queue.OfferFrame(1, MakeBatch(1, {11, 12})),
            IngressQueue::Disposition::kDuplicate);
  EXPECT_EQ(queue.QueuedTuples(), 0u);
  EXPECT_EQ(log.acks.size(), 2u);

  // Frames from an older incarnation are stale and never acked.
  EXPECT_EQ(queue.OfferFrame(0, MakeBatch(2, {13})),
            IngressQueue::Disposition::kStale);
  EXPECT_EQ(log.acks.size(), 2u);

  // A new incarnation resets the per-sender channels: seq 1 is fresh again.
  ASSERT_EQ(queue.OfferFrame(2, MakeBatch(1, {11, 12})),
            IngressQueue::Disposition::kAccepted);
  EXPECT_EQ(queue.QueuedTuples(), 2u);
}

TEST(IngressQueueTest, InflightDuplicateAttachesInsteadOfReemitting) {
  IngressQueue queue("source", IngressOptions{});
  AckLog log;
  log.Attach(&queue);

  ASSERT_EQ(queue.OfferFrame(1, MakeBatch(1, {77})),
            IngressQueue::Disposition::kAccepted);
  std::vector<IngressQueue::PendingTuple> drained;
  ASSERT_EQ(queue.Drain(10, &drained), 1u);
  EXPECT_TRUE(queue.TrackInflight(drained[0]));
  EXPECT_EQ(queue.InflightTuples(), 1u);

  // The sender restarts (incarnation 2) and retransmits the same wire id
  // under a fresh sequence. The tuple must not be emitted a second time:
  // its frame ref attaches to the in-flight entry.
  ASSERT_EQ(queue.OfferFrame(2, MakeBatch(1, {77})),
            IngressQueue::Disposition::kAccepted);
  std::vector<IngressQueue::PendingTuple> again;
  ASSERT_EQ(queue.Drain(10, &again), 1u);
  EXPECT_FALSE(queue.TrackInflight(again[0]));
  EXPECT_TRUE(log.acks.empty());

  // One local resolution resolves both carrying frames; only the live
  // incarnation's frame is acked (the dead sender's connection is gone, and
  // its restart resent the tuple under the new sequence anyway).
  queue.ResolveInflight(77);
  EXPECT_EQ(log.TotalSeqs(), 1u);
  EXPECT_EQ(queue.InflightTuples(), 0u);

  queue.MarkDone();
  EXPECT_TRUE(queue.Exhausted());
}

// ---------------------------------------------------------------------------
// End-to-end: 2 workers on loopback
// ---------------------------------------------------------------------------

/// Emits 0..n-1 as rooted tuples.
class NumbersSpout : public Spout {
 public:
  explicit NumbersSpout(int n) : n_(n) {}
  bool NextTuple(Collector* collector) override {
    if (next_ >= n_) return false;
    collector->EmitRooted(static_cast<uint64_t>(next_ + 1),
                          {Value(int64_t{next_})});
    ++next_;
    return next_ < n_;
  }

 private:
  int n_;
  int next_ = 0;
};

class TripleBolt : public Bolt {
 public:
  void Execute(const Tuple& input, Collector* collector) override {
    collector->Emit({Value(input.Get(0).AsInt() * 3 + 1)});
  }
};

/// Counts every value it sees; dumps "value count" lines at Cleanup (the
/// only way results escape a worker process).
class FileCountSink : public Bolt {
 public:
  explicit FileCountSink(std::string path) : path_(std::move(path)) {}
  void Execute(const Tuple& input, Collector*) override {
    counts_[input.Get(0).AsInt()]++;
  }
  void Cleanup() override {
    std::ofstream out(path_, std::ios::trunc);
    for (const auto& [value, count] : counts_) {
      out << value << " " << count << "\n";
    }
  }

 private:
  std::string path_;
  std::map<int64_t, int> counts_;
};

constexpr int kPipelineMessages = 200;

struct PipelineApp {
  dsps::Topology topology;
  DistOptions options;
};

PipelineApp BuildPipelineApp(const std::string& out_dir) {
  std::string result_path = out_dir + "/pipeline-result.txt";
  TopologyBuilder builder;
  builder.SetSpout("numbers",
                   [] { return std::make_unique<NumbersSpout>(kPipelineMessages); },
                   Fields({"v"}));
  builder.SetBolt("triple", [] { return std::make_unique<TripleBolt>(); },
                  Fields({"w"}), 2)
      .ShuffleGrouping("numbers");
  builder
      .SetBolt("sink",
               [result_path] {
                 return std::make_unique<FileCountSink>(result_path);
               },
               Fields({}))
      .GlobalGrouping("triple");
  auto topology = builder.Build();
  if (!topology.ok()) {  // shared by the worker role, where gtest is not up
    std::fprintf(stderr, "topology build failed: %s\n",
                 topology.status().ToString().c_str());
    std::abort();
  }

  DistOptions options;
  options.num_workers = 2;
  options.placement.worker_of = {{"numbers", 0}, {"triple", 1}, {"sink", 0}};
  options.runtime.enable_acking = true;
  options.runtime.ack_timeout_micros = 2'000'000;
  options.metrics_interval_micros = 100'000;
  options.worker_args = {"--insight-app=pipeline", "--insight-out=" + out_dir};
  return {std::move(*topology), std::move(options)};
}

std::string MakeTempDir() {
  char tmpl[] = "/tmp/insight-dist-XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir != nullptr ? std::string(dir) : std::string("/tmp");
}

std::map<int64_t, int> ReadCounts(const std::string& path) {
  std::map<int64_t, int> counts;
  std::ifstream in(path);
  int64_t value;
  int count;
  while (in >> value >> count) counts[value] = count;
  return counts;
}

TEST(DistributedEndToEndTest, TwoWorkerPipelineMatchesLocalResults) {
  std::string out_dir = MakeTempDir();
  PipelineApp app = BuildPipelineApp(out_dir);
  DistributedRuntime runtime(std::move(app.topology), app.options);
  ASSERT_TRUE(runtime.Start().ok());
  // Both cross-worker edges (numbers->triple, triple->sink) ride the wire.
  EXPECT_EQ(runtime.placement().worker_of.at("triple"), 1u);
  ASSERT_EQ(runtime.WaitForCompletion(120'000'000), 0);
  EXPECT_EQ(runtime.worker_restarts(), 0u);

  // The distributed run must produce exactly the LocalRuntime result: every
  // value 3i+1 for i in [0, n), each exactly once.
  std::map<int64_t, int> counts = ReadCounts(out_dir + "/pipeline-result.txt");
  ASSERT_EQ(counts.size(), static_cast<size_t>(kPipelineMessages));
  for (int i = 0; i < kPipelineMessages; ++i) {
    ASSERT_EQ(counts.count(int64_t{i} * 3 + 1), 1u) << "missing value for " << i;
    EXPECT_EQ(counts.at(int64_t{i} * 3 + 1), 1) << "duplicate for " << i;
  }

  // The supervisor aggregated worker metrics under worker="N" labels.
  observability::MetricsSnapshot cluster = runtime.ClusterMetrics();
  ASSERT_FALSE(cluster.counters.empty());
  bool saw_worker_label = false;
  for (const auto& family : cluster.counters) {
    for (const auto& sample : family.samples) {
      if (sample.labels.find("worker=\"") != std::string::npos) {
        saw_worker_label = true;
      }
    }
  }
  EXPECT_TRUE(saw_worker_label);
}

TEST(DistributedRuntimeTest, StartRejectsCheckpointingWithoutDirectory) {
  PipelineApp app = BuildPipelineApp("/tmp");
  app.options.runtime.enable_checkpointing = true;
  app.options.checkpoint_dir.clear();
  DistributedRuntime runtime(std::move(app.topology), app.options);
  EXPECT_FALSE(runtime.Start().ok());
}

}  // namespace

// Worker-role entry: invoked (pre-gtest) when this binary is re-exec'd by a
// supervisor. Must build the identical app the test's supervisor built.
namespace testapp {

std::string FlagValue(int argc, char** argv, const std::string& prefix) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return "";
}

int WorkerMain(int argc, char** argv, const WorkerSpec& spec) {
  std::string app = FlagValue(argc, argv, "--insight-app=");
  std::string out_dir = FlagValue(argc, argv, "--insight-out=");
  if (app != "pipeline" || out_dir.empty()) {
    std::fprintf(stderr, "unknown worker app '%s'\n", app.c_str());
    return 2;
  }
  PipelineApp built = BuildPipelineApp(out_dir);
  return RunWorker(spec, std::move(built.topology), built.options);
}

}  // namespace testapp
}  // namespace dist
}  // namespace insight

int main(int argc, char** argv) {
  insight::dist::WorkerSpec spec;
  if (insight::dist::ParseWorkerSpec(argc, argv, &spec)) {
    return insight::dist::testapp::WorkerMain(argc, argv, spec);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
