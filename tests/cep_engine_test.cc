#include "cep/engine.h"

#include <gtest/gtest.h>

#include "cep/epl_parser.h"

namespace insight {
namespace cep {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_.RegisterEventType("bus",
                                          {{"timestamp", ValueType::kInt},
                                           {"line", ValueType::kInt},
                                           {"location", ValueType::kInt},
                                           {"hour", ValueType::kInt},
                                           {"day", ValueType::kString},
                                           {"delay", ValueType::kDouble},
                                           {"speed", ValueType::kDouble}})
                    .ok());
    ASSERT_TRUE(engine_
                    .RegisterEventType("thresholdLocation",
                                       {{"location", ValueType::kInt},
                                        {"hour", ValueType::kInt},
                                        {"day", ValueType::kString},
                                        {"delay", ValueType::kDouble}})
                    .ok());
  }

  EventPtr Bus(int64_t ts, int64_t line, int64_t location, int64_t hour,
               const std::string& day, double delay, double speed = 10.0) {
    return engine_.NewEvent("bus")
        .Set("timestamp", ts)
        .Set("line", line)
        .Set("location", location)
        .Set("hour", hour)
        .Set("day", day)
        .Set("delay", delay)
        .Set("speed", speed)
        .SetTimestamp(ts)
        .Build();
  }

  EventPtr Threshold(int64_t location, int64_t hour, const std::string& day,
                     double delay) {
    return engine_.NewEvent("thresholdLocation")
        .Set("location", location)
        .Set("hour", hour)
        .Set("day", day)
        .Set("delay", delay)
        .Build();
  }

  Engine engine_;
};

// The generic rule template of Listing 1: fire when the windowed average
// delay in a location exceeds the location/hour/day threshold.
constexpr char kListing1[] = R"(
    @Trigger(bus)
    SELECT *
    FROM bus.std:lastevent() as bd,
         bus.std:groupwin(location).win:length(3) as bd2,
         thresholdLocation.win:keepall() as thresholds
    WHERE bd.hour = thresholds.hour and bd.day = thresholds.day and
          bd.location = thresholds.location and bd.location = bd2.location
    GROUP BY bd2.location
    HAVING avg(bd2.delay) > avg(thresholds.delay))";

TEST_F(EngineTest, Listing1RuleFiresWhenWindowAverageExceedsThreshold) {
  auto stmt = engine_.AddStatement(kListing1, "generic");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();

  std::vector<MatchResult> matches;
  (*stmt)->AddListener([&](const MatchResult& m) { matches.push_back(m); });

  // Threshold for location 7, hour 8, weekday: 100 seconds.
  engine_.SendEvent(Threshold(7, 8, "weekday", 100.0));

  // Window of 3: averages 50, 75, 100 -> no fire (not strictly greater).
  engine_.SendEvent(Bus(1, 1, 7, 8, "weekday", 50.0));
  engine_.SendEvent(Bus(2, 1, 7, 8, "weekday", 100.0));
  engine_.SendEvent(Bus(3, 2, 7, 8, "weekday", 150.0));
  EXPECT_EQ(matches.size(), 0u);

  // Next event pushes window to {100, 150, 200}: avg 150 > 100 -> fire.
  engine_.SendEvent(Bus(4, 2, 7, 8, "weekday", 200.0));
  ASSERT_EQ(matches.size(), 1u);
  auto loc = matches[0].Get("bd.location");
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc->AsInt(), 7);
}

TEST_F(EngineTest, Listing1DifferentLocationDoesNotFire) {
  auto stmt = engine_.AddStatement(kListing1, "generic");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  size_t fires = 0;
  (*stmt)->AddListener([&](const MatchResult&) { ++fires; });

  engine_.SendEvent(Threshold(7, 8, "weekday", 100.0));
  // High delays but in location 9 which has no threshold -> join empty.
  for (int i = 0; i < 10; ++i) {
    engine_.SendEvent(Bus(i, 1, 9, 8, "weekday", 500.0));
  }
  EXPECT_EQ(fires, 0u);
}

TEST_F(EngineTest, Listing1ThresholdArrivalDoesNotTrigger) {
  auto stmt = engine_.AddStatement(kListing1, "generic");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  size_t fires = 0;
  (*stmt)->AddListener([&](const MatchResult&) { ++fires; });

  engine_.SendEvent(Bus(1, 1, 7, 8, "weekday", 500.0));
  engine_.SendEvent(Bus(2, 1, 7, 8, "weekday", 500.0));
  // Threshold arrives after the delays; @Trigger(bus) suppresses firing on
  // the threshold stream itself.
  engine_.SendEvent(Threshold(7, 8, "weekday", 100.0));
  EXPECT_EQ(fires, 0u);
  // But the next bus event sees the threshold and fires.
  engine_.SendEvent(Bus(3, 1, 7, 8, "weekday", 500.0));
  EXPECT_EQ(fires, 1u);
}

TEST_F(EngineTest, GroupWindowIsolatesLocations) {
  auto stmt = engine_.AddStatement(kListing1, "generic");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  std::vector<int64_t> fired_locations;
  (*stmt)->AddListener([&](const MatchResult& m) {
    fired_locations.push_back(m.Get("bd.location")->AsInt());
  });

  engine_.SendEvent(Threshold(1, 8, "weekday", 100.0));
  engine_.SendEvent(Threshold(2, 8, "weekday", 100.0));
  // Location 1 gets low delays; location 2 high delays interleaved.
  for (int i = 0; i < 6; ++i) {
    engine_.SendEvent(Bus(i * 2, 1, 1, 8, "weekday", 10.0));
    engine_.SendEvent(Bus(i * 2 + 1, 2, 2, 8, "weekday", 400.0));
  }
  ASSERT_FALSE(fired_locations.empty());
  for (int64_t loc : fired_locations) EXPECT_EQ(loc, 2);
}

TEST_F(EngineTest, SelectProjectionAndAggregates) {
  auto stmt = engine_.AddStatement(
      "@Trigger(bus) SELECT bd.location AS loc, avg(bd2.speed) AS mean_speed, "
      "count(*) AS n "
      "FROM bus.std:lastevent() as bd, "
      "     bus.std:groupwin(location).win:length(4) as bd2 "
      "WHERE bd.location = bd2.location GROUP BY bd2.location",
      "speed");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  std::vector<MatchResult> matches;
  (*stmt)->AddListener([&](const MatchResult& m) { matches.push_back(m); });

  engine_.SendEvent(Bus(1, 1, 5, 8, "weekday", 0.0, 10.0));
  engine_.SendEvent(Bus(2, 1, 5, 8, "weekday", 0.0, 20.0));
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[1].Get("loc")->AsInt(), 5);
  EXPECT_DOUBLE_EQ(matches[1].Get("mean_speed")->AsDouble(), 15.0);
  EXPECT_EQ(matches[1].Get("n")->AsInt(), 2);
}

TEST_F(EngineTest, LengthWindowEvictsOldest) {
  auto stmt = engine_.AddStatement(
      "@Trigger(bus) SELECT avg(b.delay) AS a FROM bus.win:length(2) as b",
      "w");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  std::vector<double> avgs;
  (*stmt)->AddListener(
      [&](const MatchResult& m) { avgs.push_back(m.Get("a")->AsDouble()); });
  engine_.SendEvent(Bus(1, 1, 1, 8, "weekday", 10.0));
  engine_.SendEvent(Bus(2, 1, 1, 8, "weekday", 20.0));
  engine_.SendEvent(Bus(3, 1, 1, 8, "weekday", 60.0));
  ASSERT_EQ(avgs.size(), 3u);
  EXPECT_DOUBLE_EQ(avgs[0], 10.0);
  EXPECT_DOUBLE_EQ(avgs[1], 15.0);
  EXPECT_DOUBLE_EQ(avgs[2], 40.0);  // {20, 60}
}

TEST_F(EngineTest, TimeWindowExpiresByEventTime) {
  auto stmt = engine_.AddStatement(
      "@Trigger(bus) SELECT count(*) AS n FROM bus.win:time(10 sec) as b", "t");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  std::vector<int64_t> counts;
  (*stmt)->AddListener(
      [&](const MatchResult& m) { counts.push_back(m.Get("n")->AsInt()); });
  engine_.SendEvent(Bus(0, 1, 1, 8, "weekday", 1.0));
  engine_.SendEvent(Bus(5'000'000, 1, 1, 8, "weekday", 1.0));
  engine_.SendEvent(Bus(11'000'000, 1, 1, 8, "weekday", 1.0));  // first expired
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 2);
}

TEST_F(EngineTest, RemoveStatementStopsDelivery) {
  auto stmt = engine_.AddStatement(
      "@Trigger(bus) SELECT count(*) AS n FROM bus.win:keepall() as b", "k");
  ASSERT_TRUE(stmt.ok());
  size_t fires = 0;
  (*stmt)->AddListener([&](const MatchResult&) { ++fires; });
  engine_.SendEvent(Bus(1, 1, 1, 8, "weekday", 0.0));
  EXPECT_EQ(fires, 1u);
  ASSERT_TRUE(engine_.RemoveStatement("k").ok());
  engine_.SendEvent(Bus(2, 1, 1, 8, "weekday", 0.0));
  EXPECT_EQ(fires, 1u);
  EXPECT_FALSE(engine_.RemoveStatement("k").ok());
}

TEST_F(EngineTest, StatsTrackEventsAndMatches) {
  auto stmt = engine_.AddStatement(
      "@Trigger(bus) SELECT count(*) AS n FROM bus.win:keepall() as b", "k");
  ASSERT_TRUE(stmt.ok());
  for (int i = 0; i < 5; ++i) engine_.SendEvent(Bus(i, 1, 1, 8, "weekday", 0.0));
  auto stats = engine_.GetStats();
  EXPECT_EQ(stats.events_processed, 5u);
  EXPECT_EQ(stats.matches_fired, 5u);
  EXPECT_EQ(stats.retained_events, 5u);
  engine_.ResetStats();
  EXPECT_EQ(engine_.GetStats().events_processed, 0u);
}

TEST_F(EngineTest, DuplicateTypeRegistrationFails) {
  EXPECT_FALSE(engine_.RegisterEventType("bus", {}).ok());
}

TEST_F(EngineTest, UnknownTypeInStatementFails) {
  auto r = engine_.AddStatement("SELECT * FROM nosuch.win:keepall() as x");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(EngineTest, UnknownFieldFails) {
  auto r = engine_.AddStatement(
      "SELECT * FROM bus.win:keepall() as b WHERE b.nosuch = 1");
  EXPECT_FALSE(r.ok());
}

TEST_F(EngineTest, AggregateInWhereRejected) {
  auto r = engine_.AddStatement(
      "SELECT * FROM bus.win:keepall() as b WHERE avg(b.delay) > 1");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cep
}  // namespace insight
