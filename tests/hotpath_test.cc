// Hot-path regression tests: shared tuple payloads across fan-out, batched
// queue hand-off (backpressure, Stop() mid-batch, FIFO), acking through the
// batch flush, Fields/EventType hash-index lookups, and the incremental
// aggregation plan for the canonical detection rule.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "cep/engine.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "dsps/local_runtime.h"
#include "dsps/topology.h"

namespace insight {
namespace dsps {
namespace {

/// Emits the integers [0, n) one per NextTuple, in order.
class CounterSpout : public Spout {
 public:
  explicit CounterSpout(int n) : n_(n) {}
  bool NextTuple(Collector* collector) override {
    if (next_ >= n_) return false;
    collector->Emit({Value(int64_t{next_})});
    ++next_;
    return next_ < n_;
  }

 private:
  int n_;
  int next_ = 0;
};

/// Emits [0, n) as rooted (tracked) tuples and records Ack/Fail callbacks.
class RootedSpout : public Spout {
 public:
  struct Capture {
    Mutex mutex;
    std::vector<uint64_t> acked;
    std::vector<uint64_t> failed;
  };
  RootedSpout(int n, std::shared_ptr<Capture> capture)
      : n_(n), capture_(std::move(capture)) {}
  bool NextTuple(Collector* collector) override {
    if (next_ >= n_) return false;
    collector->EmitRooted(static_cast<uint64_t>(next_) + 1,
                          {Value(int64_t{next_})});
    ++next_;
    return next_ < n_;
  }
  void Ack(uint64_t message_id) override {
    MutexLock lock(capture_->mutex);
    capture_->acked.push_back(message_id);
  }
  void Fail(uint64_t message_id) override {
    MutexLock lock(capture_->mutex);
    capture_->failed.push_back(message_id);
  }

 private:
  int n_;
  int next_ = 0;
  std::shared_ptr<Capture> capture_;
};

/// Emits forever (Stop() is the only way out).
class InfiniteSpout : public Spout {
 public:
  bool NextTuple(Collector* collector) override {
    collector->Emit({Value(int64_t{next_++})});
    return true;
  }

 private:
  int64_t next_ = 0;
};

/// Records every value, the observed payload buffer address, and this
/// delivery's edge id.
class CaptureBolt : public Bolt {
 public:
  struct Capture {
    Mutex mutex;
    std::vector<int64_t> values;                          // in arrival order
    std::map<int64_t, std::vector<const void*>> buffers;  // value -> payloads
    std::vector<uint64_t> edge_ids;
  };
  explicit CaptureBolt(std::shared_ptr<Capture> capture)
      : capture_(std::move(capture)) {}
  void Execute(const Tuple& input, Collector*) override {
    MutexLock lock(capture_->mutex);
    int64_t v = input.Get(0).AsInt();
    capture_->values.push_back(v);
    capture_->buffers[v].push_back(
        static_cast<const void*>(input.payload().get()));
    capture_->edge_ids.push_back(input.edge_id());
  }

 private:
  std::shared_ptr<Capture> capture_;
};

/// Forwards its input via EmitMove (single-consumer emission path).
class MoveRelayBolt : public Bolt {
 public:
  void Execute(const Tuple& input, Collector* collector) override {
    collector->EmitMove({Value(input.Get(0).AsInt() + 1000)});
  }
};

// ---------------------------------------------------------------------------
// Shared payload identity
// ---------------------------------------------------------------------------

TEST(HotpathTransportTest, FanOutSharesOneValueBuffer) {
  // One Emit fans out to 3 tasks of one bolt (all-grouping) plus 2 tasks of
  // a second bolt: five deliveries, one value buffer.
  auto capture = std::make_shared<CaptureBolt::Capture>();
  static constexpr int kTuples = 200;
  TopologyBuilder builder;
  builder.SetSpout("s", [] { return std::make_unique<CounterSpout>(kTuples); },
                   Fields({"v"}));
  builder.SetBolt("wide",
                  [capture] { return std::make_unique<CaptureBolt>(capture); },
                  Fields({}), 3)
      .AllGrouping("s");
  builder.SetBolt("other",
                  [capture] { return std::make_unique<CaptureBolt>(capture); },
                  Fields({}), 2)
      .AllGrouping("s");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());
  LocalRuntime runtime(std::move(*topology), {});
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();

  ASSERT_EQ(capture->buffers.size(), static_cast<size_t>(kTuples));
  for (const auto& [value, pointers] : capture->buffers) {
    ASSERT_EQ(pointers.size(), 5u) << "value " << value;
    for (const void* p : pointers) {
      EXPECT_EQ(p, pointers.front())
          << "value " << value << " was deep-copied on fan-out";
    }
  }
}

// ---------------------------------------------------------------------------
// Batched hand-off
// ---------------------------------------------------------------------------

TEST(HotpathTransportTest, BackpressureWithTinyQueueDeliversEverything) {
  // queue_capacity far below emit_batch: every flush blocks on the full
  // queue and overshoots capacity by at most one block.
  auto capture = std::make_shared<CaptureBolt::Capture>();
  static constexpr int kTuples = 2000;
  TopologyBuilder builder;
  builder.SetSpout("s", [] { return std::make_unique<CounterSpout>(kTuples); },
                   Fields({"v"}));
  builder.SetBolt("sink",
                  [capture] { return std::make_unique<CaptureBolt>(capture); },
                  Fields({}))
      .ShuffleGrouping("s");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());
  LocalRuntime::Options options;
  options.queue_capacity = 2;
  LocalRuntime runtime(std::move(*topology), options);
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();

  EXPECT_EQ(capture->values.size(), static_cast<size_t>(kTuples));
  std::set<int64_t> distinct(capture->values.begin(), capture->values.end());
  EXPECT_EQ(distinct.size(), static_cast<size_t>(kTuples));
}

TEST(HotpathTransportTest, SingleConsumerPreservesFifoOrder) {
  auto capture = std::make_shared<CaptureBolt::Capture>();
  static constexpr int kTuples = 1000;
  TopologyBuilder builder;
  builder.SetSpout("s", [] { return std::make_unique<CounterSpout>(kTuples); },
                   Fields({"v"}));
  builder.SetBolt("sink",
                  [capture] { return std::make_unique<CaptureBolt>(capture); },
                  Fields({}))
      .ShuffleGrouping("s");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());
  LocalRuntime runtime(std::move(*topology), {});
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();

  ASSERT_EQ(capture->values.size(), static_cast<size_t>(kTuples));
  for (int i = 0; i < kTuples; ++i) {
    ASSERT_EQ(capture->values[static_cast<size_t>(i)], int64_t{i})
        << "batched hand-off reordered tuples";
  }
}

TEST(HotpathTransportTest, StopDuringPartiallyFlushedBatch) {
  // An infinite spout with a large emit_batch keeps tuples staged in its
  // outbox while the tiny queue is saturated; Stop() must wake the blocked
  // flush, drop staged tuples, and join without deadlock.
  auto capture = std::make_shared<CaptureBolt::Capture>();
  TopologyBuilder builder;
  builder.SetSpout("s", [] { return std::make_unique<InfiniteSpout>(); },
                   Fields({"v"}));
  builder.SetBolt("sink",
                  [capture] { return std::make_unique<CaptureBolt>(capture); },
                  Fields({}))
      .ShuffleGrouping("s");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());
  LocalRuntime::Options options;
  options.queue_capacity = 4;
  options.emit_batch = 256;
  LocalRuntime runtime(std::move(*topology), options);
  ASSERT_TRUE(runtime.Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  runtime.Stop();
  EXPECT_TRUE(runtime.finished());
}

TEST(HotpathTransportTest, EmitMoveDeliversThroughDefaultPath) {
  auto capture = std::make_shared<CaptureBolt::Capture>();
  static constexpr int kTuples = 100;
  TopologyBuilder builder;
  builder.SetSpout("s", [] { return std::make_unique<CounterSpout>(kTuples); },
                   Fields({"v"}));
  builder.SetBolt("relay", [] { return std::make_unique<MoveRelayBolt>(); },
                  Fields({"v"}))
      .ShuffleGrouping("s");
  builder.SetBolt("sink",
                  [capture] { return std::make_unique<CaptureBolt>(capture); },
                  Fields({}))
      .ShuffleGrouping("relay");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());
  LocalRuntime runtime(std::move(*topology), {});
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();

  ASSERT_EQ(capture->values.size(), static_cast<size_t>(kTuples));
  std::set<int64_t> distinct(capture->values.begin(), capture->values.end());
  EXPECT_EQ(*distinct.begin(), 1000);
  EXPECT_EQ(*distinct.rbegin(), 1000 + kTuples - 1);
}

// ---------------------------------------------------------------------------
// Acking through the batch flush
// ---------------------------------------------------------------------------

TEST(HotpathTransportTest, AckingTracksPerTupleEdgeIdsAcrossBatches) {
  // Small emit/drain batches force many partial flushes; every delivered
  // copy must still carry its own nonzero edge id and every tree must ack.
  auto spout_capture = std::make_shared<RootedSpout::Capture>();
  auto sink_capture = std::make_shared<CaptureBolt::Capture>();
  static constexpr int kTuples = 300;
  TopologyBuilder builder;
  builder.SetSpout("s",
                   [spout_capture] {
                     return std::make_unique<RootedSpout>(kTuples,
                                                          spout_capture);
                   },
                   Fields({"v"}));
  builder.SetBolt("relay", [] { return std::make_unique<MoveRelayBolt>(); },
                  Fields({"v"}), 2)
      .ShuffleGrouping("s");
  builder.SetBolt("sink",
                  [sink_capture] {
                    return std::make_unique<CaptureBolt>(sink_capture);
                  },
                  Fields({}), 2)
      .ShuffleGrouping("relay");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());
  LocalRuntime::Options options;
  options.enable_acking = true;
  options.emit_batch = 8;
  options.max_batch = 4;
  LocalRuntime runtime(std::move(*topology), options);
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();

  EXPECT_EQ(runtime.pending_trees(), 0u);
  auto totals = runtime.metrics()->Totals("s");
  EXPECT_EQ(totals.acked, static_cast<uint64_t>(kTuples));
  EXPECT_EQ(totals.failed, 0u);
  EXPECT_EQ(totals.replayed, 0u);
  EXPECT_EQ(spout_capture->acked.size(), static_cast<size_t>(kTuples));
  EXPECT_TRUE(spout_capture->failed.empty());
  // Per-tuple edge semantics survive the block flush: one fresh id per
  // delivered copy, never zero, never reused.
  ASSERT_EQ(sink_capture->edge_ids.size(), static_cast<size_t>(kTuples));
  std::set<uint64_t> distinct_edges(sink_capture->edge_ids.begin(),
                                    sink_capture->edge_ids.end());
  EXPECT_EQ(distinct_edges.size(), static_cast<size_t>(kTuples));
  EXPECT_EQ(distinct_edges.count(0), 0u);
}

// ---------------------------------------------------------------------------
// Name lookups
// ---------------------------------------------------------------------------

TEST(HotpathLookupTest, FieldsHashIndexMatchesLinearScan) {
  Fields fields({"a", "b", "c", "a"});
  EXPECT_EQ(fields.IndexOf("a"), 0);  // first declaration wins
  EXPECT_EQ(fields.IndexOf("b"), 1);
  EXPECT_EQ(fields.IndexOf("c"), 2);
  EXPECT_EQ(fields.IndexOf("missing"), -1);
  Fields empty;
  EXPECT_EQ(empty.IndexOf("anything"), -1);
}

TEST(HotpathLookupTest, EventTypeFieldIndexByName) {
  cep::EventType type("bus", {{"timestamp", cep::ValueType::kInt},
                              {"location", cep::ValueType::kInt},
                              {"speed", cep::ValueType::kDouble}});
  EXPECT_EQ(type.FieldIndex("timestamp"), 0);
  EXPECT_EQ(type.FieldIndex("location"), 1);
  EXPECT_EQ(type.FieldIndex("speed"), 2);
  EXPECT_EQ(type.FieldIndex("ghost"), -1);
}

// ---------------------------------------------------------------------------
// Incremental aggregation plan
// ---------------------------------------------------------------------------

TEST(HotpathCepTest, CanonicalDetectionRuleCompilesIncremental) {
  cep::Engine engine;
  ASSERT_TRUE(engine
                  .RegisterEventType("bus",
                                     {{"timestamp", cep::ValueType::kInt},
                                      {"location", cep::ValueType::kInt},
                                      {"speed", cep::ValueType::kDouble}})
                  .ok());
  auto stmt = engine.AddStatement(
      "@Trigger(bus)\n"
      "SELECT bd.location AS location, avg(bd2.speed) AS value,\n"
      "       10.0 AS threshold, bd.timestamp AS timestamp\n"
      "FROM bus.std:lastevent() as bd,\n"
      "     bus.std:groupwin(location).win:length(4) as bd2\n"
      "WHERE bd.location = bd2.location\n"
      "GROUP BY bd2.location\n"
      "HAVING avg(bd2.speed) < 10.0",
      "canonical");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_TRUE((*stmt)->incremental())
      << "the paper's detection-rule shape must take the incremental "
         "aggregation path";
}

}  // namespace
}  // namespace dsps
}  // namespace insight
