#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "traffic/bolts.h"
#include "traffic/generator.h"
#include "traffic/trace.h"

namespace insight {
namespace traffic {
namespace {

TraceGenerator::Options SmallOptions() {
  TraceGenerator::Options options;
  options.num_buses = 30;
  options.num_lines = 5;
  options.start_hour = 8;
  options.end_hour = 9;
  options.seed = 3;
  return options;
}

// ---------------------------------------------------------------------------
// BusTrace CSV round trip
// ---------------------------------------------------------------------------

TEST(BusTraceTest, CsvRoundTrip) {
  BusTrace t;
  t.timestamp = 123456789;
  t.line_id = 41;
  t.direction = true;
  t.position = {53.3498, -6.2603};
  t.delay_seconds = -42.5;
  t.congestion = true;
  t.reported_stop_id = 41007;
  t.vehicle_id = 33123;
  t.speed_kmh = 23.75;
  t.actual_delay = 3.25;
  t.hour = 9;
  t.date_type = "weekend";
  t.area_leaf = 77;
  t.bus_stop = 12;
  auto row = t.ToCsvRow();
  ASSERT_EQ(row.size(), static_cast<size_t>(TraceCsv::kNumColumns));
  auto parsed = BusTrace::FromCsvRow(row);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->timestamp, t.timestamp);
  EXPECT_EQ(parsed->line_id, t.line_id);
  EXPECT_EQ(parsed->direction, t.direction);
  EXPECT_NEAR(parsed->position.lat, t.position.lat, 1e-5);
  EXPECT_DOUBLE_EQ(parsed->delay_seconds, -42.5);
  EXPECT_EQ(parsed->congestion, true);
  EXPECT_EQ(parsed->reported_stop_id, 41007);
  EXPECT_EQ(parsed->vehicle_id, 33123);
  EXPECT_EQ(parsed->hour, 9);
  EXPECT_EQ(parsed->date_type, "weekend");
  EXPECT_EQ(parsed->area_leaf, 77);
  EXPECT_EQ(parsed->bus_stop, 12);
}

TEST(BusTraceTest, RejectsShortRow) {
  EXPECT_FALSE(BusTrace::FromCsvRow({"1", "2"}).ok());
}

// ---------------------------------------------------------------------------
// TraceGenerator — Table 2 properties
// ---------------------------------------------------------------------------

TEST(TraceGeneratorTest, TimestampsAreMonotone) {
  TraceGenerator generator(SmallOptions());
  BusTrace trace;
  MicrosT last = -1;
  int count = 0;
  while (generator.Next(&trace) && count < 2000) {
    EXPECT_GE(trace.timestamp, last);
    last = trace.timestamp;
    ++count;
  }
  EXPECT_GT(count, 1000);
}

TEST(TraceGeneratorTest, ReportIntervalPerBusIs20Seconds) {
  TraceGenerator generator(SmallOptions());
  std::map<int, MicrosT> last_per_vehicle;
  BusTrace trace;
  int checked = 0;
  while (generator.Next(&trace) && checked < 1000) {
    auto it = last_per_vehicle.find(trace.vehicle_id);
    if (it != last_per_vehicle.end()) {
      EXPECT_EQ(trace.timestamp - it->second, 20'000'000);
      ++checked;
    }
    last_per_vehicle[trace.vehicle_id] = trace.timestamp;
  }
  EXPECT_GT(checked, 500);
}

TEST(TraceGeneratorTest, Table2ShapeHolds) {
  // Full-fleet options but a short service window.
  TraceGenerator::Options options;
  options.num_buses = 911;
  options.num_lines = 67;
  options.start_hour = 8;
  options.end_hour = 8;  // invalid; fix below
  options.end_hour = 9;
  TraceGenerator generator(options);
  std::set<int> vehicles, lines;
  BusTrace trace;
  size_t count = 0;
  while (generator.Next(&trace)) {
    vehicles.insert(trace.vehicle_id);
    lines.insert(trace.line_id);
    ++count;
  }
  EXPECT_EQ(vehicles.size(), 911u);
  EXPECT_EQ(lines.size(), 67u);
  // 911 buses x 180 reports/hour = ~164k.
  EXPECT_NEAR(static_cast<double>(count), 911.0 * 180.0, 911.0);
}

TEST(TraceGeneratorTest, PositionsStayInDublin) {
  TraceGenerator generator(SmallOptions());
  auto bounds = geo::DublinBounds();
  BusTrace trace;
  int count = 0;
  while (generator.Next(&trace) && count < 3000) {
    EXPECT_GE(trace.position.lat, bounds.min_lat - 0.01);
    EXPECT_LE(trace.position.lat, bounds.max_lat + 0.01);
    EXPECT_GE(trace.position.lon, bounds.min_lon - 0.02);
    EXPECT_LE(trace.position.lon, bounds.max_lon + 0.02);
    ++count;
  }
}

TEST(TraceGeneratorTest, DeterministicForSeed) {
  TraceGenerator a(SmallOptions()), b(SmallOptions());
  BusTrace ta, tb;
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(a.Next(&ta), b.Next(&tb));
    EXPECT_EQ(ta.timestamp, tb.timestamp);
    EXPECT_EQ(ta.vehicle_id, tb.vehicle_id);
    EXPECT_DOUBLE_EQ(ta.delay_seconds, tb.delay_seconds);
  }
}

TEST(TraceGeneratorTest, RushHourIsMoreCongested) {
  EXPECT_GT(TraceGenerator::HourCongestion(8, false),
            TraceGenerator::HourCongestion(3, false));
  EXPECT_GT(TraceGenerator::HourCongestion(17, false),
            TraceGenerator::HourCongestion(12, false));
  // Weekends have no morning rush.
  EXPECT_LT(TraceGenerator::HourCongestion(8, true),
            TraceGenerator::HourCongestion(8, false));
}

TEST(TraceGeneratorTest, IncidentsSlowNearbyBuses) {
  TraceGenerator::Options options = SmallOptions();
  options.incidents_per_hour = 30.0;  // force incidents
  options.end_hour = 10;
  TraceGenerator generator(options);
  auto traces = generator.GenerateAll();
  ASSERT_FALSE(generator.incidents().empty());
  // Buses inside an active incident radius must be slower on average.
  double in_sum = 0, out_sum = 0;
  size_t in_n = 0, out_n = 0;
  for (const BusTrace& t : traces) {
    bool inside = false;
    for (const Incident& incident : generator.incidents()) {
      if (t.timestamp >= incident.start && t.timestamp <= incident.end &&
          geo::HaversineMeters(t.position, incident.center) <=
              incident.radius_meters) {
        inside = true;
        break;
      }
    }
    if (inside) {
      in_sum += t.speed_kmh;
      ++in_n;
    } else {
      out_sum += t.speed_kmh;
      ++out_n;
    }
  }
  ASSERT_GT(in_n, 20u);
  ASSERT_GT(out_n, 20u);
  EXPECT_LT(in_sum / in_n, 0.7 * (out_sum / out_n));
}

TEST(TraceGeneratorTest, StopReportsIncludeNoiseButClusterAtStops) {
  TraceGenerator::Options options = SmallOptions();
  options.end_hour = 10;
  TraceGenerator generator(options);
  auto reports = generator.CollectStopReports(400);
  ASSERT_GE(reports.size(), 100u);
  for (const auto& report : reports) {
    EXPECT_GE(report.line_id, 0);
    EXPECT_LT(report.line_id, options.num_lines);
  }
}

TEST(TraceGeneratorTest, CsvWriterProducesParsableRows) {
  TraceGenerator generator(SmallOptions());
  std::ostringstream out;
  size_t written = generator.WriteCsv(&out, 100);
  EXPECT_EQ(written, 100u);
  std::istringstream in(out.str());
  auto traces = LoadTracesCsv(&in);
  ASSERT_TRUE(traces.ok()) << traces.status().ToString();
  EXPECT_EQ(traces->size(), 100u);
}

// ---------------------------------------------------------------------------
// Tuple schema helpers
// ---------------------------------------------------------------------------

TEST(TupleSchemaTest, EnrichedFieldsMatchBusEventFields) {
  for (const std::vector<int>& layers :
       {std::vector<int>{}, std::vector<int>{2, 3}}) {
    dsps::Fields fields = EnrichedFields(layers);
    auto event_fields = BusEventFields(layers);
    ASSERT_EQ(fields.size(), event_fields.size());
    for (size_t i = 0; i < event_fields.size(); ++i) {
      EXPECT_EQ(fields.names()[i], event_fields[i].name) << "index " << i;
    }
  }
}

TEST(TupleSchemaTest, RawValuesAlignWithRawFields) {
  BusTrace t;
  t.timestamp = 5;
  t.vehicle_id = 42;
  auto values = TraceToRawValues(t);
  dsps::Fields fields = RawTraceFields();
  ASSERT_EQ(values.size(), fields.size());
  EXPECT_EQ(values[static_cast<size_t>(fields.IndexOf("vehicle"))].AsInt(), 42);
  EXPECT_EQ(values[static_cast<size_t>(fields.IndexOf("timestamp"))].AsInt(), 5);
}

}  // namespace
}  // namespace traffic
}  // namespace insight
