#include <gtest/gtest.h>

#include "core/system.h"

namespace insight {
namespace core {
namespace {

traffic::TraceGenerator::Options SmallCity() {
  traffic::TraceGenerator::Options options;
  options.num_buses = 60;
  options.num_lines = 10;
  options.stops_per_line = 12;
  options.start_hour = 7;
  options.end_hour = 10;
  options.seed = 7;
  options.incidents_per_hour = 4.0;  // make sure anomalies exist
  return options;
}

TrafficManagementSystem::Config SmallConfig() {
  TrafficManagementSystem::Config config;
  config.generator = SmallCity();
  config.max_traces = 6000;
  config.bootstrap_traces = 8000;
  config.stop_report_samples = 800;
  config.rules = {
      MakeRule("delay_areas", "delay", "area_leaf", 10),
      MakeRule("speed_areas", "speed", "area_leaf", 10),
      MakeRule("delay_stops", "delay", "bus_stop", 10),
  };
  config.num_esper_engines = 4;
  config.retrieval = ThresholdRetrieval::kThresholdStream;
  config.retrieval_options.s = 1.5;
  return config;
}

TEST(IntegrationTest, FullPipelineDetectsEventsWithThresholdStream) {
  TrafficManagementSystem system(SmallConfig());
  ASSERT_TRUE(system.Initialize().ok());

  // The batch bootstrap must have produced statistics tables for both
  // location namespaces.
  EXPECT_TRUE(system.store()->HasTable("statistics_delay"));
  EXPECT_TRUE(system.store()->HasTable("statistics_delay_stop"));
  EXPECT_TRUE(system.store()->HasTable("statistics_speed"));
  auto rows = system.store()->RowCount("statistics_delay");
  ASSERT_TRUE(rows.ok());
  EXPECT_GT(*rows, 10u);

  auto report = system.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->traces_fed, 6000u);
  // Every trace flows through the splitter to at least one engine; the
  // esper bolt must have processed a comparable volume.
  EXPECT_GT(report->esper.executed, 4000u);
  // With injected incidents and s=1.5, some anomalies must fire.
  EXPECT_GT(report->detections, 0u);
  // Two groupings (areas + stops) split the four engines.
  ASSERT_EQ(report->engines_per_grouping.size(), 2u);
  EXPECT_EQ(report->engines_per_grouping[0] + report->engines_per_grouping[1],
            4);
  EXPECT_GE(report->engines_per_grouping[0], 1);
  EXPECT_GE(report->engines_per_grouping[1], 1);
}

TEST(IntegrationTest, SecondRunRepartitionsWithObservedRates) {
  TrafficManagementSystem system(SmallConfig());
  ASSERT_TRUE(system.Initialize().ok());
  EXPECT_EQ(system.area_rates().observed_total(), 0u);
  auto first = system.Run();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // The splitter fed the trackers during the run.
  EXPECT_GT(system.area_rates().observed_total(), 1000u);
  EXPECT_GT(system.stop_rates().observed_total(), 0u);
  // A new rule can be submitted and the system re-optimizes and runs again.
  ASSERT_TRUE(
      system.AddRules({MakeRule("speed_stops2", "speed", "bus_stop", 10)}).ok());
  auto second = system.Run();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_GT(second->esper.executed, 4000u);
  // Invalid rules are rejected up front.
  RuleTemplate bad;
  bad.name = "broken";
  EXPECT_FALSE(system.AddRules({bad}).ok());
}

TEST(IntegrationTest, StaticRetrievalRunsWithoutStatistics) {
  auto config = SmallConfig();
  config.retrieval = ThresholdRetrieval::kStatic;
  config.retrieval_options.static_threshold = 120.0;
  TrafficManagementSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  auto report = system.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->esper.executed, 4000u);
}

TEST(IntegrationTest, JoinWithDatabaseStrategyEndToEnd) {
  auto config = SmallConfig();
  config.retrieval = ThresholdRetrieval::kJoinWithDatabase;
  config.max_traces = 3000;
  TrafficManagementSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  size_t queries_before = system.store()->query_count();
  auto report = system.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->esper.executed, 2000u);
  // The strategy's signature: a storage query per tuple per lookup.
  EXPECT_GT(system.store()->query_count() - queries_before,
            report->esper.executed);
  EXPECT_GT(report->detections, 0u);
}

TEST(IntegrationTest, DynamicRefreshReplacesThresholds) {
  auto config = SmallConfig();
  TrafficManagementSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());

  // Re-run the batch cycle after appending more history: the row count can
  // grow (new locations) but the cycle must succeed and refresh must send
  // threshold events into a fresh engine.
  auto cycle = system.dynamic_manager()->RunBatchCycle();
  ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();
  EXPECT_GT(*cycle, 0u);
  EXPECT_EQ(system.dynamic_manager()->cycles_completed(), 2u);

  cep::Engine engine;
  ASSERT_TRUE(engine.RegisterEventType("bus", traffic::BusEventFields({})).ok());
  for (const char* attr : {"delay", "speed", "actual_delay", "congestion"}) {
    for (const char* suffix : {"", "_stop"}) {
      ASSERT_TRUE(engine
                      .RegisterEventType(
                          traffic::ThresholdEventTypeName(
                              std::string(attr) + suffix),
                          traffic::ThresholdEventFields())
                      .ok());
    }
  }
  auto sent = system.dynamic_manager()->RefreshEngine(
      &engine, SmallConfig().rules);
  ASSERT_TRUE(sent.ok()) << sent.status().ToString();
  EXPECT_GT(*sent, 0u);
  // Refresh again: std:unique means the engine retains the same number of
  // thresholds, not double.
  auto again = system.dynamic_manager()->RefreshEngine(&engine,
                                                       SmallConfig().rules);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*sent, *again);
}

}  // namespace
}  // namespace core
}  // namespace insight
