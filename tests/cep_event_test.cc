// Unit coverage of the CEP event model: Value coercions and comparisons,
// EventType schemas, Event field access and the EventBuilder.

#include <gtest/gtest.h>

#include "cep/event.h"

namespace insight {
namespace cep {
namespace {

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

TEST(ValueTest, TypesAndCoercions) {
  EXPECT_EQ(Value(int64_t{5}).type(), ValueType::kInt);
  EXPECT_EQ(Value(5.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value(true).type(), ValueType::kBool);
  EXPECT_EQ(Value("x").type(), ValueType::kString);

  EXPECT_DOUBLE_EQ(Value(int64_t{5}).AsDouble(), 5.0);
  EXPECT_EQ(Value(5.9).AsInt(), 5);
  EXPECT_DOUBLE_EQ(Value(true).AsDouble(), 1.0);
  EXPECT_EQ(Value(false).AsInt(), 0);
  EXPECT_TRUE(Value(int64_t{1}).AsBool());
  EXPECT_FALSE(Value(0.0).AsBool());
  EXPECT_TRUE(Value("nonempty").AsBool());
  EXPECT_FALSE(Value("").AsBool());
  EXPECT_EQ(Value("hi").AsString(), "hi");
  EXPECT_EQ(Value(int64_t{1}).AsString(), "");  // non-strings have no string
}

TEST(ValueTest, NumericEqualityCrossesIntDouble) {
  EXPECT_TRUE(Value(int64_t{5}).Equals(Value(5.0)));
  EXPECT_FALSE(Value(int64_t{5}).Equals(Value(5.5)));
  EXPECT_TRUE(Value("a").Equals(Value("a")));
  EXPECT_FALSE(Value("a").Equals(Value("b")));
  EXPECT_FALSE(Value("5").Equals(Value(int64_t{5})));  // no string coercion
  EXPECT_TRUE(Value(true).Equals(Value(true)));
}

TEST(ValueTest, Ordering) {
  EXPECT_TRUE(Value(int64_t{2}).LessThan(Value(3.5)));
  EXPECT_FALSE(Value(4.0).LessThan(Value(int64_t{4})));
  EXPECT_TRUE(Value("abc").LessThan(Value("abd")));
  EXPECT_TRUE(Value(false).LessThan(Value(true)));
  // Mixed string/number ordering is defined as false (and rejected by the
  // statement type checker before it can matter).
  EXPECT_FALSE(Value("5").LessThan(Value(int64_t{6})));
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(false).ToString(), "false");
  EXPECT_EQ(Value("s").ToString(), "s");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
}

// ---------------------------------------------------------------------------
// EventType / Event / EventBuilder
// ---------------------------------------------------------------------------

EventTypePtr MakeType() {
  return std::make_shared<EventType>(
      "bus", std::vector<EventType::Field>{{"line", ValueType::kInt},
                                           {"delay", ValueType::kDouble},
                                           {"day", ValueType::kString}});
}

TEST(EventTypeTest, FieldLookup) {
  auto type = MakeType();
  EXPECT_EQ(type->name(), "bus");
  EXPECT_EQ(type->num_fields(), 3u);
  EXPECT_EQ(type->FieldIndex("delay"), 1);
  EXPECT_EQ(type->FieldIndex("nope"), -1);
  EXPECT_TRUE(type->HasField("day"));
  EXPECT_FALSE(type->HasField("night"));
}

TEST(EventTest, FieldAccessByNameAndIndex) {
  auto type = MakeType();
  Event event(type, {Value(int64_t{41}), Value(120.5), Value("weekday")},
              999);
  EXPECT_EQ(event.timestamp(), 999);
  EXPECT_EQ(event.Get(0).AsInt(), 41);
  auto delay = event.Get("delay");
  ASSERT_TRUE(delay.ok());
  EXPECT_DOUBLE_EQ(delay->AsDouble(), 120.5);
  EXPECT_EQ(event.Get("nope").status().code(), StatusCode::kNotFound);
  EXPECT_NE(event.ToString().find("delay=120.5"), std::string::npos);
}

TEST(EventBuilderTest, BuildsWithDefaultsForUnsetFields) {
  auto type = MakeType();
  auto event = EventBuilder(type)
                   .Set("line", int64_t{7})
                   .SetTimestamp(5)
                   .Build();
  EXPECT_EQ(event->Get("line")->AsInt(), 7);
  // Unset fields default to the zero Value.
  EXPECT_DOUBLE_EQ(event->Get("delay")->AsDouble(), 0.0);
  EXPECT_EQ(event->timestamp(), 5);
}

TEST(EventBuilderTest, EventsShareTheTypeObject) {
  auto type = MakeType();
  auto a = EventBuilder(type).Build();
  auto b = EventBuilder(type).Build();
  EXPECT_EQ(&a->type(), &b->type());
}

}  // namespace
}  // namespace cep
}  // namespace insight
