// Overload-protection tests: QueueGate/SourceSquelch/AdaptiveBatch units,
// credit-flow liveness and exact occupancy, priority-aware shedding with
// full accounting (shed + delivered == emitted, shed trees fail fast),
// hot-key squelch demotion, the bounded-overshoot regression for blocking
// backpressure, and the disabled-equals-seed identity check.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "dsps/local_runtime.h"
#include "dsps/overload.h"
#include "dsps/topology.h"

namespace insight {
namespace dsps {
namespace {

// ---------------------------------------------------------------------------
// QueueGate

TEST(QueueGateTest, AdmitsWithinCapacityAndRollsBackOvershoot) {
  overload::QueueGate gate(8);
  EXPECT_TRUE(gate.TryAcquire(5));
  EXPECT_TRUE(gate.TryAcquire(3));
  EXPECT_EQ(gate.admitted(), 8);
  // Full: the failed acquire must roll its reservation back.
  EXPECT_FALSE(gate.TryAcquire(1));
  EXPECT_EQ(gate.admitted(), 8);
  gate.Release(4);
  EXPECT_TRUE(gate.TryAcquire(4));
  EXPECT_FALSE(gate.TryAcquire(1));
  EXPECT_DOUBLE_EQ(gate.Occupancy(), 1.0);
}

TEST(QueueGateTest, ForceAcquireCanOvershootForBlockingMode) {
  overload::QueueGate gate(4);
  gate.ForceAcquire(6);  // blocking producer appended a whole block
  EXPECT_EQ(gate.admitted(), 6);
  EXPECT_GT(gate.Occupancy(), 1.0);
  EXPECT_FALSE(gate.TryAcquire(1));
  gate.Release(6);
  EXPECT_DOUBLE_EQ(gate.Occupancy(), 0.0);
}

// ---------------------------------------------------------------------------
// SourceSquelch

overload::Options SquelchOptions() {
  overload::Options options;
  options.enable_squelch = true;
  options.squelch_history = 16;
  options.squelch_duplicate_rate = 0.5;
  options.squelch_min_samples = 8;
  options.squelch_duration_micros = 1'000;
  return options;
}

TEST(SourceSquelchTest, HotKeySquelchesAndExpires) {
  ManualClock clock;
  overload::SourceSquelch squelch(SquelchOptions(), &clock);
  // One hot key: after the first window the duplicate rate is ~100%.
  for (int i = 0; i < 8; ++i) squelch.Observe(42);
  EXPECT_TRUE(squelch.squelched());
  EXPECT_EQ(squelch.squelch_events(), 1u);

  // Still squelched inside the duration, whatever the keys look like now.
  clock.Advance(500);
  for (int i = 0; i < 8; ++i) squelch.Observe(1000 + i);
  EXPECT_TRUE(squelch.squelched());
  EXPECT_EQ(squelch.squelch_events(), 1u);  // no re-entry while active

  // Past the duration with a distinct-key window: released.
  clock.Advance(1'000);
  for (int i = 0; i < 8; ++i) squelch.Observe(2000 + i);
  EXPECT_FALSE(squelch.squelched());
}

TEST(SourceSquelchTest, DistinctKeysNeverSquelch) {
  ManualClock clock;
  overload::SourceSquelch squelch(SquelchOptions(), &clock);
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_FALSE(squelch.Observe(i * 0x9e3779b97f4a7c15ULL));
  }
  EXPECT_EQ(squelch.squelch_events(), 0u);
}

TEST(SourceSquelchTest, ZeroHashDoesNotAliasEmptySlots) {
  ManualClock clock;
  overload::SourceSquelch squelch(SquelchOptions(), &clock);
  // A stream of zero hashes is one hot key, not a stream of "empty" slots.
  for (int i = 0; i < 8; ++i) squelch.Observe(0);
  EXPECT_TRUE(squelch.squelched());
}

// ---------------------------------------------------------------------------
// AdaptiveBatch

TEST(AdaptiveBatchTest, GrowsUnderPressureShrinksWhenCalm) {
  overload::AdaptiveBatch batch(16, 64);
  EXPECT_EQ(batch.threshold(), 16u);
  batch.Update(0.8);
  EXPECT_EQ(batch.threshold(), 32u);
  batch.Update(0.8);
  EXPECT_EQ(batch.threshold(), 64u);
  batch.Update(0.8);
  EXPECT_EQ(batch.threshold(), 64u);  // capped
  batch.Update(0.4);
  EXPECT_EQ(batch.threshold(), 64u);  // hysteresis band: hold
  batch.Update(0.1);
  EXPECT_EQ(batch.threshold(), 32u);
  batch.Update(0.1);
  EXPECT_EQ(batch.threshold(), 16u);  // floored at base
}

// ---------------------------------------------------------------------------
// Runtime integration fixtures

/// Emits the integers [0, n).
class CounterSpout : public Spout {
 public:
  explicit CounterSpout(int n) : n_(n) {}
  void Open(const TaskContext& context) override {
    next_ = context.task_index;
    stride_ = context.num_tasks;
  }
  bool NextTuple(Collector* collector) override {
    if (next_ >= n_) return false;
    collector->Emit({Value(int64_t{next_})});
    next_ += stride_;
    return next_ < n_;
  }

 private:
  int n_;
  int next_ = 0;
  int stride_ = 1;
};

/// Acking spout: EmitRooted the integers [0, n), counting Ack/Fail.
class RootedSpout : public Spout {
 public:
  struct Counts {
    std::atomic<int> acked{0};
    std::atomic<int> failed{0};
  };
  RootedSpout(int n, std::shared_ptr<Counts> counts)
      : n_(n), counts_(std::move(counts)) {}
  bool NextTuple(Collector* collector) override {
    if (next_ >= n_) return false;
    collector->EmitRooted(static_cast<uint64_t>(next_ + 1),
                          {Value(int64_t{next_})});
    ++next_;
    return next_ < n_;
  }
  void Ack(uint64_t) override { counts_->acked.fetch_add(1); }
  void Fail(uint64_t) override { counts_->failed.fetch_add(1); }

 private:
  int n_;
  int next_ = 0;
  std::shared_ptr<Counts> counts_;
};

/// Records every value; optionally sleeps per tuple to create backpressure.
class SlowSink : public Bolt {
 public:
  struct Sink {
    Mutex mutex;
    std::vector<int64_t> values;
  };
  SlowSink(std::shared_ptr<Sink> sink, int delay_micros)
      : sink_(std::move(sink)), delay_micros_(delay_micros) {}
  void Execute(const Tuple& input, Collector*) override {
    if (delay_micros_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_micros_));
    }
    MutexLock lock(sink_->mutex);
    sink_->values.push_back(input.Get(0).AsInt());
  }

 private:
  std::shared_ptr<Sink> sink_;
  int delay_micros_;
};

// ---------------------------------------------------------------------------
// Credit-based flow control

TEST(OverloadRuntimeTest, CreditFlowDeliversEverythingWithExactOccupancy) {
  auto sink = std::make_shared<SlowSink::Sink>();
  TopologyBuilder builder;
  builder.SetSpout("s", [] { return std::make_unique<CounterSpout>(2000); },
                   Fields({"v"}));
  builder.SetBolt("sink",
                  [sink] { return std::make_unique<SlowSink>(sink, 20); },
                  Fields({}))
      .ShuffleGrouping("s");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());

  LocalRuntime::Options options;
  options.queue_capacity = 64;
  options.emit_batch = 16;
  options.overload.enable_credit_flow = true;
  options.overload.max_deferred_tuples = 64;
  LocalRuntime runtime(std::move(*topology), options);
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();

  std::set<int64_t> seen(sink->values.begin(), sink->values.end());
  EXPECT_EQ(sink->values.size(), 2000u);
  EXPECT_EQ(seen.size(), 2000u);
  // Credit admission is exact: occupancy never exceeds capacity.
  EXPECT_LE(runtime.max_queue_occupancy(), options.queue_capacity);
  // The slow consumer must have parked the producer at least once.
  EXPECT_GT(runtime.metrics()->credits_stalled_ns(), 0u);
  runtime.Stop();
}

TEST(OverloadRuntimeTest, CreditFlowWithAckingLosesNothing) {
  auto counts = std::make_shared<RootedSpout::Counts>();
  auto sink = std::make_shared<SlowSink::Sink>();
  TopologyBuilder builder;
  builder.SetSpout("s",
                   [counts] { return std::make_unique<RootedSpout>(500, counts); },
                   Fields({"v"}));
  builder.SetBolt("sink",
                  [sink] { return std::make_unique<SlowSink>(sink, 10); },
                  Fields({}))
      .ShuffleGrouping("s");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());

  LocalRuntime::Options options;
  options.enable_acking = true;
  options.queue_capacity = 32;
  options.emit_batch = 8;
  options.overload.enable_credit_flow = true;
  options.overload.max_deferred_tuples = 32;
  LocalRuntime runtime(std::move(*topology), options);
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();

  EXPECT_EQ(counts->acked.load(), 500);
  EXPECT_EQ(counts->failed.load(), 0);
  EXPECT_EQ(sink->values.size(), 500u);
  EXPECT_LE(runtime.max_queue_occupancy(), options.queue_capacity);
  runtime.Stop();
}

// ---------------------------------------------------------------------------
// Blocking-backpressure overshoot bound (regression)

TEST(OverloadRuntimeTest, BlockingOvershootBoundedByOneBlock) {
  // Seed behavior allowed a producer that saw space for one tuple to append
  // a whole flush block past capacity. The bound is now checked: occupancy
  // stays strictly below capacity + block, i.e. at most one block beyond.
  auto sink = std::make_shared<SlowSink::Sink>();
  TopologyBuilder builder;
  builder.SetSpout("s", [] { return std::make_unique<CounterSpout>(3000); },
                   Fields({"v"}));
  builder.SetBolt("sink",
                  [sink] { return std::make_unique<SlowSink>(sink, 15); },
                  Fields({}))
      .ShuffleGrouping("s");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());

  LocalRuntime::Options options;
  options.queue_capacity = 64;
  options.emit_batch = 16;
  LocalRuntime runtime(std::move(*topology), options);
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();

  EXPECT_EQ(sink->values.size(), 3000u);
  EXPECT_LT(runtime.max_queue_occupancy(),
            options.queue_capacity + options.emit_batch);
  runtime.Stop();
}

// ---------------------------------------------------------------------------
// Priority-aware load shedding

TEST(OverloadRuntimeTest, ShedsLowPriorityAndAccountsEveryTuple) {
  static constexpr int kLowCount = 400;
  static constexpr int kHighCount = 200;
  auto low_counts = std::make_shared<RootedSpout::Counts>();
  auto high_counts = std::make_shared<RootedSpout::Counts>();
  auto sink = std::make_shared<SlowSink::Sink>();
  TopologyBuilder builder;
  builder.SetSpout("low", [low_counts] {
    return std::make_unique<RootedSpout>(kLowCount, low_counts);
  }, Fields({"v"}));
  builder.SetSpout("high", [high_counts] {
    return std::make_unique<RootedSpout>(kHighCount, high_counts);
  }, Fields({"v"}));
  builder.SetBolt("sink",
                  [sink] { return std::make_unique<SlowSink>(sink, 0); },
                  Fields({}))
      .ShuffleGrouping("low")
      .ShuffleGrouping("high");
  builder.SetPriority("low", TuplePriority::kLow);
  builder.SetPriority("high", TuplePriority::kHigh);
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());

  LocalRuntime::Options options;
  options.enable_acking = true;
  options.overload.enable_load_shedding = true;
  // Watermark 0: every kLow delivery sheds, making the accounting exact and
  // deterministic; kHigh is never shed whatever the occupancy.
  options.overload.shed_low_watermark = 0.0;
  options.overload.shed_high_watermark = 2.0;  // never shed kNormal
  LocalRuntime runtime(std::move(*topology), options);
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();

  // Shed trees fail fast; high-priority trees all complete.
  EXPECT_EQ(low_counts->failed.load(), kLowCount);
  EXPECT_EQ(low_counts->acked.load(), 0);
  EXPECT_EQ(high_counts->acked.load(), kHighCount);
  EXPECT_EQ(high_counts->failed.load(), 0);
  EXPECT_EQ(sink->values.size(), static_cast<size_t>(kHighCount));

  // Metrics account for every shed tuple by priority.
  auto totals = runtime.metrics()->Totals("sink");
  EXPECT_EQ(totals.shed_low, static_cast<uint64_t>(kLowCount));
  EXPECT_EQ(totals.shed_normal, 0u);
  EXPECT_EQ(totals.shed_high, 0u);
  // Accounting identity: executed + shed == emitted toward the sink.
  auto low_totals = runtime.metrics()->Totals("low");
  auto high_totals = runtime.metrics()->Totals("high");
  EXPECT_EQ(totals.executed + totals.shed_low + totals.shed_normal,
            low_totals.emitted + high_totals.emitted);
  runtime.Stop();
}

TEST(OverloadRuntimeTest, SheddingIdleWhenBelowWatermarks) {
  // Shedding enabled but queues never fill: nothing may be dropped.
  auto sink = std::make_shared<SlowSink::Sink>();
  TopologyBuilder builder;
  builder.SetSpout("s", [] { return std::make_unique<CounterSpout>(500); },
                   Fields({"v"}));
  builder.SetBolt("sink",
                  [sink] { return std::make_unique<SlowSink>(sink, 0); },
                  Fields({}))
      .ShuffleGrouping("s");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());

  LocalRuntime::Options options;
  options.overload.enable_load_shedding = true;
  LocalRuntime runtime(std::move(*topology), options);
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();

  EXPECT_EQ(sink->values.size(), 500u);
  auto totals = runtime.metrics()->Totals("sink");
  EXPECT_EQ(totals.shed_low + totals.shed_normal + totals.shed_high, 0u);
  runtime.Stop();
}

// ---------------------------------------------------------------------------
// Hot-key squelch

TEST(OverloadRuntimeTest, HotKeySourceGetsSquelched) {
  // A single-key stream into a fields-grouped edge is 100% duplicates: the
  // emitting task must enter the squelched state at least once.
  auto sink = std::make_shared<SlowSink::Sink>();
  struct HotKeySpout : public Spout {
    int remaining;
    explicit HotKeySpout(int n) : remaining(n) {}
    bool NextTuple(Collector* collector) override {
      if (remaining <= 0) return false;
      --remaining;
      collector->Emit({Value(int64_t{7})});
      return remaining > 0;
    }
  };
  TopologyBuilder builder;
  builder.SetSpout("s", [] { return std::make_unique<HotKeySpout>(1000); },
                   Fields({"k"}));
  builder.SetBolt("sink",
                  [sink] { return std::make_unique<SlowSink>(sink, 0); },
                  Fields({}), 2)
      .FieldsGrouping("s", {"k"});
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());

  LocalRuntime::Options options;
  options.overload.enable_squelch = true;
  options.overload.squelch_history = 16;
  options.overload.squelch_min_samples = 16;
  options.overload.squelch_duplicate_rate = 0.5;
  LocalRuntime runtime(std::move(*topology), options);
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();

  // Squelch demotes but never drops on its own: everything arrives.
  EXPECT_EQ(sink->values.size(), 1000u);
  EXPECT_GE(runtime.metrics()->Totals("s").squelched, 1u);
  runtime.Stop();
}

// ---------------------------------------------------------------------------
// Adaptive batch

TEST(OverloadRuntimeTest, AdaptiveBatchStillDeliversEverything) {
  auto sink = std::make_shared<SlowSink::Sink>();
  TopologyBuilder builder;
  builder.SetSpout("s", [] { return std::make_unique<CounterSpout>(2000); },
                   Fields({"v"}));
  builder.SetBolt("sink",
                  [sink] { return std::make_unique<SlowSink>(sink, 10); },
                  Fields({}))
      .ShuffleGrouping("s");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());

  LocalRuntime::Options options;
  options.queue_capacity = 128;
  options.emit_batch = 8;
  options.overload.enable_adaptive_batch = true;
  options.overload.adaptive_batch_max = 64;
  LocalRuntime runtime(std::move(*topology), options);
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();

  std::set<int64_t> seen(sink->values.begin(), sink->values.end());
  EXPECT_EQ(seen.size(), 2000u);
  runtime.Stop();
}

// ---------------------------------------------------------------------------
// Disabled == seed

TEST(OverloadRuntimeTest, AllDisabledMatchesSeedBehavior) {
  // Default options leave every overload feature off: no gates are built,
  // no shed/squelch/stall counters may move, and delivery is exact.
  auto sink = std::make_shared<SlowSink::Sink>();
  TopologyBuilder builder;
  builder.SetSpout("s", [] { return std::make_unique<CounterSpout>(1000); },
                   Fields({"v"}));
  builder.SetBolt("sink",
                  [sink] { return std::make_unique<SlowSink>(sink, 0); },
                  Fields({}), 2)
      .ShuffleGrouping("s");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());

  LocalRuntime::Options options;
  ASSERT_FALSE(options.overload.any_enabled());
  LocalRuntime runtime(std::move(*topology), options);
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();

  std::set<int64_t> seen(sink->values.begin(), sink->values.end());
  EXPECT_EQ(sink->values.size(), 1000u);
  EXPECT_EQ(seen.size(), 1000u);
  auto totals = runtime.metrics()->Totals("sink");
  EXPECT_EQ(totals.shed_low + totals.shed_normal + totals.shed_high, 0u);
  EXPECT_EQ(totals.squelched, 0u);
  EXPECT_EQ(runtime.metrics()->credits_stalled_ns(), 0u);
  runtime.Stop();
}

}  // namespace
}  // namespace dsps
}  // namespace insight
