// Concurrency stress and failure-injection tests: heavy multithreaded load
// on the runtime, stores and filesystem; malformed input resilience; and a
// backpressure scenario (slow bolt behind a fast spout).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "batch/mapreduce.h"
#include "batch/statistics_job.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/thread.h"
#include "dfs/mini_dfs.h"
#include "dsps/local_runtime.h"
#include "storage/table_store.h"
#include "traffic/bolts.h"
#include "traffic/generator.h"

namespace insight {
namespace {

using dsps::Bolt;
using dsps::Collector;
using dsps::Fields;
using dsps::Spout;
using dsps::TaskContext;
using dsps::Tuple;
using dsps::Value;

class BurstSpout : public Spout {
 public:
  explicit BurstSpout(int total) : total_(total) {}
  void Open(const TaskContext& context) override {
    next_ = context.task_index;
    stride_ = context.num_tasks;
  }
  bool NextTuple(Collector* collector) override {
    // Bursts of up to 32 tuples per call.
    for (int b = 0; b < 32 && next_ < total_; ++b) {
      collector->Emit({Value(int64_t{next_})});
      next_ += stride_;
    }
    return next_ < total_;
  }

 private:
  int total_;
  int next_ = 0;
  int stride_ = 1;
};

/// A bolt that is deliberately slow: the queue in front of it must apply
/// backpressure instead of growing without bound.
class SlowBolt : public Bolt {
 public:
  explicit SlowBolt(std::shared_ptr<std::atomic<int64_t>> sum) : sum_(sum) {}
  void Execute(const Tuple& input, Collector*) override {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    sum_->fetch_add(input.Get(0).AsInt());
  }

 private:
  std::shared_ptr<std::atomic<int64_t>> sum_;
};

TEST(StressTest, BackpressureSlowBoltStillProcessesEverything) {
  static constexpr int kTuples = 4000;
  auto sum = std::make_shared<std::atomic<int64_t>>(0);
  dsps::TopologyBuilder builder;
  builder.SetSpout("burst", [] { return std::make_unique<BurstSpout>(kTuples); },
                   Fields({"v"}), 2, 2);
  builder.SetBolt("slow", [sum] { return std::make_unique<SlowBolt>(sum); },
                  Fields({}), 2)
      .ShuffleGrouping("burst");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());
  dsps::LocalRuntime::Options options;
  options.queue_capacity = 64;  // tiny queues force backpressure
  dsps::LocalRuntime runtime(std::move(*topology), options);
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();
  EXPECT_EQ(sum->load(), static_cast<int64_t>(kTuples) * (kTuples - 1) / 2);
}

TEST(StressTest, WideFanoutTopologyUnderLoad) {
  // 1 spout -> 3 parallel transform bolts -> 1 sink, 20k tuples.
  struct AddBolt : public Bolt {
    void Execute(const Tuple& input, Collector* collector) override {
      collector->Emit({Value(input.Get(0).AsInt() + 1)});
    }
  };
  auto count = std::make_shared<std::atomic<int64_t>>(0);
  struct CountBolt : public Bolt {
    std::shared_ptr<std::atomic<int64_t>> count;
    explicit CountBolt(std::shared_ptr<std::atomic<int64_t>> c) : count(c) {}
    void Execute(const Tuple&, Collector*) override { count->fetch_add(1); }
  };
  dsps::TopologyBuilder builder;
  builder.SetSpout("s", [] { return std::make_unique<BurstSpout>(20000); },
                   Fields({"v"}), 2, 2);
  for (const char* name : {"a", "b", "c"}) {
    builder.SetBolt(name, [] { return std::make_unique<AddBolt>(); },
                    Fields({"v"}), 2, 4)
        .ShuffleGrouping("s");
  }
  auto sink_declarer =
      builder.SetBolt("sink", [count] { return std::make_unique<CountBolt>(count); },
                      Fields({}), 2);
  sink_declarer.ShuffleGrouping("a").ShuffleGrouping("b").ShuffleGrouping("c");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());
  dsps::LocalRuntime runtime(std::move(*topology), {});
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();
  EXPECT_EQ(count->load(), 60000);  // 20k through each of the 3 bolts
}

TEST(StressTest, ConcurrentDfsAppendsToDistinctFiles) {
  dfs::MiniDfs::Options options;
  options.chunk_size = 128;
  dfs::MiniDfs fs(options);
  constexpr int kThreads = 8;
  constexpr int kAppends = 300;
  std::vector<Thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fs, t] {
      std::string path = "/stress/file" + std::to_string(t);
      for (int i = 0; i < kAppends; ++i) {
        ASSERT_TRUE(fs.AppendLine(path, "t" + std::to_string(t) + "i" +
                                            std::to_string(i))
                        .ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    auto content = fs.ReadAll("/stress/file" + std::to_string(t));
    ASSERT_TRUE(content.ok());
    EXPECT_EQ(static_cast<int>(Split(*content, '\n').size()) - 1, kAppends);
  }
}

TEST(StressTest, ConcurrentStoreInsertAndThresholdQueries) {
  storage::TableStore store;
  ASSERT_TRUE(
      store.CreateTable("statistics_delay", storage::StatisticsColumns()).ok());
  std::atomic<bool> stop{false};
  std::atomic<int> query_errors{0};
  Thread writer([&] {
    Rng rng(1);
    for (int i = 0; i < 3000; ++i) {
      (void)store.Insert("statistics_delay",
                         {storage::Value(static_cast<int64_t>(i % 50)),
                          storage::Value(static_cast<int64_t>(i % 24)),
                          storage::Value("weekday"),
                          storage::Value(rng.Uniform(0, 100)),
                          storage::Value(rng.Uniform(0, 10)),
                          storage::Value(int64_t{1})});
    }
    stop = true;
  });
  std::vector<Thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop) {
        auto result = storage::QueryThresholds(store, "delay", 1.0);
        if (!result.ok()) ++query_errors;
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(query_errors.load(), 0);
  EXPECT_EQ(*store.RowCount("statistics_delay"), 3000u);
}

TEST(StressTest, MapReduceSurvivesHostileRecords) {
  dfs::MiniDfs fs;
  // Records with embedded quotes, long lines, empty lines and binary-ish
  // bytes; the statistics map must skip what it cannot parse and keep going.
  std::string data;
  data += "1,8,weekday,10\n";
  data += "\n";
  data += std::string(5000, 'x') + "\n";
  data += "\"unterminated,8,weekday,10\n";
  data += "1,8,weekday,\x01\x02\n";
  data += "1,8,weekday,20\n";
  ASSERT_TRUE(fs.Append("/hostile", data).ok());
  batch::StatisticsJobConfig config;
  config.input_paths = {"/hostile"};
  config.output_dir = "/out";
  config.location_col = 0;
  config.hour_col = 1;
  config.date_type_col = 2;
  config.attribute_cols = {{"delay", 3}};
  auto counters = batch::RunStatisticsJob(&fs, config);
  ASSERT_TRUE(counters.ok()) << counters.status().ToString();
  storage::TableStore store;
  ASSERT_TRUE(batch::LoadStatisticsIntoStore(fs, "/out", &store).ok());
  auto all = store.SelectAll("statistics_delay");
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->rows.size(), 1u);
  EXPECT_EQ(all->rows[0][5].AsInt(), 2);           // two valid samples
  EXPECT_DOUBLE_EQ(all->rows[0][3].AsDouble(), 15.0);  // their mean
}

TEST(StressTest, EsperBoltSoakAcrossManyTasks) {
  // 6 concurrent engines fed 30k tuples through the real runtime; verifies
  // no lost tuples and consistent per-engine serial processing.
  auto config = std::make_shared<traffic::EsperBoltConfig>();
  config->rules_per_task.assign(
      6, {{"count_rule",
           "@Trigger(bus) SELECT count(*) AS n FROM bus.win:keepall() as b"}});
  traffic::TraceGenerator::Options gen_options;
  gen_options.num_buses = 50;
  gen_options.num_lines = 10;
  gen_options.start_hour = 8;
  gen_options.end_hour = 11;
  traffic::TraceGenerator generator(gen_options);
  // The service window bounds the dataset (50 buses x 3 h x 180/h ~= 27000).
  auto raw = generator.GenerateAll(30000);
  // Enrich minimally: the esper bolt needs the full 15-field schema.
  auto traces = std::make_shared<std::vector<traffic::BusTrace>>(std::move(raw));
  for (auto& t : *traces) {
    t.area_leaf = t.line_id;  // deterministic pseudo-region
    t.bus_stop = t.line_id;
  }

  struct EnricherPassthrough : public Bolt {
    void Execute(const Tuple& input, Collector* collector) override {
      std::vector<Value> out = input.values();
      out.push_back(20.0);                        // speed
      out.push_back(0.0);                         // actual_delay
      out.push_back(int64_t{8});                  // hour
      out.push_back(std::string("weekday"));      // date_type
      out.push_back(input.Get(1));                // area_leaf = line
      out.push_back(input.Get(1));                // bus_stop = line
      collector->Emit(std::move(out));
    }
  };

  dsps::TopologyBuilder builder;
  builder.SetSpout("reader",
                   [traces] {
                     return std::make_unique<traffic::BusReaderSpout>(traces);
                   },
                   traffic::RawTraceFields(), 2, 2);
  builder.SetBolt("enrich", [] { return std::make_unique<EnricherPassthrough>(); },
                  traffic::EnrichedFields({}), 2)
      .ShuffleGrouping("reader");
  builder.SetBolt("esper",
                  [config] { return std::make_unique<traffic::EsperBolt>(config); },
                  traffic::DetectionFields(), 6, 6)
      .FieldsGrouping("enrich", {"area_leaf"});
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok()) << topology.status().ToString();
  dsps::LocalRuntime runtime(std::move(*topology), {});
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();
  auto totals = runtime.metrics()->Totals("esper");
  EXPECT_EQ(totals.executed, traces->size());
  EXPECT_GT(totals.executed, 20000u);
}

}  // namespace
}  // namespace insight
