#include <gtest/gtest.h>

#include "cep/epl_parser.h"
#include "cep/view.h"

namespace insight {
namespace cep {
namespace {

class ViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    type_ = std::make_shared<EventType>(
        "e", std::vector<EventType::Field>{{"k", ValueType::kInt},
                                           {"v", ValueType::kDouble},
                                           {"h", ValueType::kInt}});
  }

  EventPtr Make(int64_t k, double v, MicrosT ts = 0, int64_t h = 0) {
    return std::make_shared<Event>(type_, std::vector<Value>{k, v, h}, ts);
  }

  std::unique_ptr<Window> MakeWindow(std::vector<ViewSpec> chain) {
    auto w = Window::Create(chain, type_);
    EXPECT_TRUE(w.ok()) << w.status().ToString();
    return std::move(w).value();
  }

  EventTypePtr type_;
};

TEST_F(ViewTest, LastEventKeepsOne) {
  auto w = MakeWindow({ViewSpec::LastEvent()});
  std::vector<EventPtr> expired;
  w->Insert(Make(1, 1.0), &expired);
  w->Insert(Make(2, 2.0), &expired);
  EXPECT_EQ(w->TotalSize(), 1u);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0]->Get(0).AsInt(), 1);
  EXPECT_EQ(w->Contents().back()->Get(0).AsInt(), 2);
}

TEST_F(ViewTest, LengthWindowEvicts) {
  auto w = MakeWindow({ViewSpec::Length(3)});
  for (int i = 0; i < 5; ++i) w->Insert(Make(i, i));
  EXPECT_EQ(w->TotalSize(), 3u);
  EXPECT_EQ(w->Contents().front()->Get(0).AsInt(), 2);
}

TEST_F(ViewTest, LengthBatchFlushesAtBoundary) {
  auto w = MakeWindow({ViewSpec::LengthBatch(3)});
  std::vector<EventPtr> expired;
  w->Insert(Make(0, 0), &expired);
  w->Insert(Make(1, 1), &expired);
  EXPECT_EQ(w->TotalSize(), 2u);
  EXPECT_TRUE(expired.empty());
  w->Insert(Make(2, 2), &expired);
  EXPECT_EQ(w->TotalSize(), 0u);  // batch released
  EXPECT_EQ(expired.size(), 3u);
}

TEST_F(ViewTest, TimeWindowExpiresByTimestamp) {
  auto w = MakeWindow({ViewSpec::Time(10'000'000)});  // 10 s
  w->Insert(Make(0, 0, 0));
  w->Insert(Make(1, 1, 5'000'000));
  w->Insert(Make(2, 2, 12'000'000));
  EXPECT_EQ(w->TotalSize(), 2u);  // the t=0 event expired
  std::vector<EventPtr> expired;
  w->AdvanceTime(30'000'000, &expired);
  EXPECT_EQ(w->TotalSize(), 0u);
  EXPECT_EQ(expired.size(), 2u);
}

TEST_F(ViewTest, TimeBatchFlushesOnIntervalBoundary) {
  auto w = MakeWindow({ViewSpec::TimeBatch(10'000'000)});
  std::vector<EventPtr> expired;
  w->Insert(Make(0, 0, 0), &expired);
  w->Insert(Make(1, 1, 4'000'000), &expired);
  EXPECT_TRUE(expired.empty());
  w->Insert(Make(2, 2, 11'000'000), &expired);  // next interval
  EXPECT_EQ(expired.size(), 2u);
  EXPECT_EQ(w->TotalSize(), 1u);
}

TEST_F(ViewTest, GroupWinIsolatesKeys) {
  auto w = MakeWindow({ViewSpec::GroupWin("k"), ViewSpec::Length(2)});
  w->Insert(Make(1, 10));
  w->Insert(Make(1, 11));
  w->Insert(Make(1, 12));
  w->Insert(Make(2, 20));
  EXPECT_EQ(w->TotalSize(), 3u);
  const auto* g1 = w->GroupContents(Value(int64_t{1}));
  ASSERT_NE(g1, nullptr);
  EXPECT_EQ(g1->size(), 2u);
  EXPECT_DOUBLE_EQ(g1->front()->Get(1).AsDouble(), 11.0);
  EXPECT_EQ(w->GroupContents(Value(int64_t{9})), nullptr);
}

TEST_F(ViewTest, UniqueReplacesPerKey) {
  auto w = MakeWindow({ViewSpec::Unique({"k", "h"})});
  std::vector<EventPtr> expired;
  w->Insert(Make(1, 10, 0, 8), &expired);
  w->Insert(Make(1, 20, 0, 9), &expired);  // different hour -> new key
  EXPECT_EQ(w->TotalSize(), 2u);
  EXPECT_TRUE(expired.empty());
  w->Insert(Make(1, 30, 0, 8), &expired);  // replaces (1, 8)
  EXPECT_EQ(w->TotalSize(), 2u);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_DOUBLE_EQ(expired[0]->Get(1).AsDouble(), 10.0);
  double sum = 0;
  w->ForEach([&](const EventPtr& e) { sum += e->Get(1).AsDouble(); });
  EXPECT_DOUBLE_EQ(sum, 50.0);  // 20 + 30
}

TEST_F(ViewTest, KeepAllRetainsEverything) {
  auto w = MakeWindow({ViewSpec::KeepAll()});
  for (int i = 0; i < 100; ++i) w->Insert(Make(i, i));
  EXPECT_EQ(w->TotalSize(), 100u);
  w->Clear();
  EXPECT_EQ(w->TotalSize(), 0u);
}

TEST_F(ViewTest, InvalidChains) {
  // Two data views.
  EXPECT_FALSE(Window::Create({ViewSpec::Length(2), ViewSpec::KeepAll()}, type_)
                   .ok());
  // Zero-length window.
  EXPECT_FALSE(Window::Create({ViewSpec::Length(0)}, type_).ok());
  // Unknown group field.
  EXPECT_FALSE(Window::Create({ViewSpec::GroupWin("zzz"), ViewSpec::Length(2)},
                              type_)
                   .ok());
  // unique + groupwin.
  EXPECT_FALSE(Window::Create(
                   {ViewSpec::GroupWin("k"), ViewSpec::Unique({"h"})}, type_)
                   .ok());
  // No data view.
  EXPECT_FALSE(Window::Create({ViewSpec::GroupWin("k")}, type_).ok());
  // Unknown unique field.
  EXPECT_FALSE(Window::Create({ViewSpec::Unique({"zzz"})}, type_).ok());
}

// ---------------------------------------------------------------------------
// EPL parser coverage for views and expressions
// ---------------------------------------------------------------------------

TEST(EplParserTest, ParsesFullStatement) {
  auto def = ParseEpl(
      "@Trigger(bus) SELECT bd.x AS a, avg(b2.y) AS m FROM "
      "bus.std:lastevent() as bd, bus.std:groupwin(loc).win:length(10) as b2, "
      "thr.std:unique(location, hour, day) as t "
      "WHERE bd.loc = b2.loc and bd.h >= 2 GROUP BY b2.loc "
      "HAVING avg(b2.y) > avg(t.value)");
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  EXPECT_EQ(def->from.size(), 3u);
  EXPECT_EQ(def->from[0].alias, "bd");
  EXPECT_EQ(def->from[1].views.size(), 2u);
  EXPECT_EQ(def->from[1].views[0].kind, ViewKind::kGroupWin);
  EXPECT_EQ(def->from[1].views[1].length, 10u);
  EXPECT_EQ(def->from[2].views[0].kind, ViewKind::kUnique);
  EXPECT_EQ(def->from[2].views[0].unique_fields.size(), 3u);
  EXPECT_EQ(def->select.size(), 2u);
  EXPECT_EQ(def->select[0].name, "a");
  EXPECT_EQ(def->group_by.size(), 1u);
  ASSERT_NE(def->having, nullptr);
  EXPECT_EQ(def->trigger_types.count("bus"), 1u);
}

TEST(EplParserTest, ParsesTimeUnits) {
  auto def = ParseEpl("SELECT * FROM e.win:time(30 sec) as a");
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(def->from[0].views[0].duration_micros, 30'000'000);
  def = ParseEpl("SELECT * FROM e.win:time(500 msec) as a");
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(def->from[0].views[0].duration_micros, 500'000);
  def = ParseEpl("SELECT * FROM e.win:time(2 min) as a");
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(def->from[0].views[0].duration_micros, 120'000'000);
}

TEST(EplParserTest, OperatorPrecedence) {
  auto def = ParseEpl("SELECT a + b * 2 AS x FROM e.win:keepall() as q");
  ASSERT_TRUE(def.ok());
  // (a + (b * 2))
  EXPECT_EQ(def->select[0].expr->ToString(), "(a + (b * 2))");
  def = ParseEpl(
      "SELECT * FROM e.win:keepall() as q WHERE a > 1 and b < 2 or c = 3");
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(def->where->ToString(), "(((a > 1) and (b < 2)) or (c = 3))");
}

TEST(EplParserTest, StringAndBoolLiterals) {
  auto def = ParseEpl(
      "SELECT * FROM e.win:keepall() as q WHERE day = 'weekend' and ok = true");
  ASSERT_TRUE(def.ok());
}

TEST(EplParserTest, CountStar) {
  auto def = ParseEpl("SELECT count(*) AS n FROM e.win:keepall() as q");
  ASSERT_TRUE(def.ok());
}

TEST(EplParserTest, InsertIntoClause) {
  auto def = ParseEpl(
      "INSERT INTO alert SELECT a.x AS x FROM e.win:keepall() as a");
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(def->insert_into, "alert");
  EXPECT_FALSE(ParseEpl("INSERT alert SELECT * FROM e as a").ok());
  EXPECT_FALSE(ParseEpl("INSERT INTO SELECT * FROM e as a").ok());
}

TEST(EplParserTest, OrderByClause) {
  auto def = ParseEpl(
      "SELECT a.x AS x FROM e.win:keepall() as a "
      "ORDER BY a.x DESC, a.y, avg(a.z) ASC");
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  ASSERT_EQ(def->order_by.size(), 3u);
  EXPECT_TRUE(def->order_by[0].descending);
  EXPECT_FALSE(def->order_by[1].descending);
  EXPECT_FALSE(def->order_by[2].descending);
  EXPECT_FALSE(ParseEpl("SELECT * FROM e as a ORDER a.x").ok());
}

TEST(EplParserTest, Errors) {
  EXPECT_FALSE(ParseEpl("FROM e").ok());
  EXPECT_FALSE(ParseEpl("SELECT *").ok());
  EXPECT_FALSE(ParseEpl("SELECT * FROM e.win:nosuch() as q").ok());
  EXPECT_FALSE(ParseEpl("SELECT * FROM e.win:length(0) as q").ok());
  EXPECT_FALSE(ParseEpl("SELECT * FROM e.win:keepall() as q WHERE 'open").ok());
  EXPECT_FALSE(ParseEpl("SELECT * FROM e.win:keepall() as q trailing").ok());
  EXPECT_FALSE(ParseEpl("SELECT avg(*) AS x FROM e.win:keepall() as q").ok());
  EXPECT_FALSE(ParseEpl("SELECT * FROM e.win:time(5 parsec) as q").ok());
}

}  // namespace
}  // namespace cep
}  // namespace insight
