#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "common/csv.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/xml.h"

namespace insight {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status status = Status::NotFound("missing thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.ToString(), "NotFound: missing thing");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
  EXPECT_TRUE(r.status().ok());  // status() of an OK result is OK
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  INSIGHT_ASSIGN_OR_RETURN(int h, Half(x));
  INSIGHT_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2=3 is odd
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, TrimAndLower) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(ToLower("SeLeCt"), "select");
}

TEST(StringsTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(*ParseDouble(" 3.5 "), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_FALSE(ParseDouble("3.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringsTest, ParseIntStrict) {
  EXPECT_EQ(*ParseInt("-42"), -42);
  EXPECT_FALSE(ParseInt("42.5").ok());
  EXPECT_FALSE(ParseInt("abc").ok());
}

TEST(StringsTest, ParseBoolVariants) {
  EXPECT_TRUE(*ParseBool("TRUE"));
  EXPECT_TRUE(*ParseBool("1"));
  EXPECT_FALSE(*ParseBool("no"));
  EXPECT_FALSE(ParseBool("maybe").ok());
}

TEST(StringsTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

TEST(CsvTest, RoundTripWithQuoting) {
  std::ostringstream out;
  CsvWriter writer(&out);
  writer.Write({"plain", "has,comma", "has\"quote", ""});
  std::istringstream in(out.str());
  CsvReader reader(&in);
  std::vector<std::string> fields;
  ASSERT_TRUE(reader.Next(&fields));
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "plain");
  EXPECT_EQ(fields[1], "has,comma");
  EXPECT_EQ(fields[2], "has\"quote");
  EXPECT_EQ(fields[3], "");
  EXPECT_FALSE(reader.Next(&fields));
  EXPECT_TRUE(reader.last_status().ok());
}

TEST(CsvTest, HandlesCrLf) {
  std::istringstream in("a,b\r\nc,d\r\n");
  CsvReader reader(&in);
  std::vector<std::string> fields;
  ASSERT_TRUE(reader.Next(&fields));
  EXPECT_EQ(fields[1], "b");
  ASSERT_TRUE(reader.Next(&fields));
  EXPECT_EQ(fields[0], "c");
}

TEST(CsvTest, RejectsBadQuoting) {
  std::istringstream in("a,\"unterminated\n");
  CsvReader reader(&in);
  std::vector<std::string> fields;
  EXPECT_FALSE(reader.Next(&fields));
  EXPECT_FALSE(reader.last_status().ok());
}

// ---------------------------------------------------------------------------
// XML
// ---------------------------------------------------------------------------

TEST(XmlTest, ParsesElementsAttributesText) {
  auto root = ParseXml(R"(<?xml version="1.0"?>
    <!-- a comment -->
    <topology name="t">
      <spout name="s" executors='2'><param key="k" value="v"/></spout>
      <rules><rule name="r"><![CDATA[SELECT * FROM x WHERE a < b]]></rule></rules>
    </topology>)");
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  EXPECT_EQ((*root)->name, "topology");
  EXPECT_EQ((*root)->Attr("name"), "t");
  const XmlNode* spout = (*root)->FirstChild("spout");
  ASSERT_NE(spout, nullptr);
  EXPECT_EQ(spout->Attr("executors"), "2");
  const XmlNode* rules = (*root)->FirstChild("rules");
  ASSERT_NE(rules, nullptr);
  ASSERT_EQ(rules->Children("rule").size(), 1u);
  EXPECT_EQ(rules->Children("rule")[0]->text, "SELECT * FROM x WHERE a < b");
}

TEST(XmlTest, DecodesEntities) {
  auto root = ParseXml("<a v=\"1 &lt; 2 &amp; 3\">x &gt; y</a>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ((*root)->Attr("v"), "1 < 2 & 3");
  EXPECT_EQ((*root)->text, "x > y");
}

TEST(XmlTest, RejectsMismatchedTags) {
  EXPECT_FALSE(ParseXml("<a><b></a></b>").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());  // two roots
}

// ---------------------------------------------------------------------------
// Rng / Stats
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(7);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.Gaussian(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stdev(), 2.0, 0.1);
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats stats;
  for (double v : {1.0, 2.0, 3.0, 4.0}) stats.Add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 1.25);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all, a, b;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    double v = rng.Gaussian(5, 3);
    all.Add(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(PercentileTest, InterpolatesSorted) {
  std::vector<double> v{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 2.5);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, WaitThenMoreWork) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace insight
