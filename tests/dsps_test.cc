#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <set>

#include "observability/export.h"

#include "dsps/local_runtime.h"
#include "dsps/topology.h"
#include "common/strings.h"
#include "common/thread.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "dsps/xml_topology.h"

namespace insight {
namespace dsps {
namespace {

/// Emits the integers [0, n).
class CounterSpout : public Spout {
 public:
  explicit CounterSpout(int n) : n_(n) {}
  void Open(const TaskContext& context) override {
    next_ = context.task_index;
    stride_ = context.num_tasks;
  }
  bool NextTuple(Collector* collector) override {
    if (next_ >= n_) return false;
    collector->Emit({Value(int64_t{next_})});
    next_ += stride_;
    return next_ < n_;
  }

 private:
  int n_;
  int next_ = 0;
  int stride_ = 1;
};

/// Collects every value it sees into a shared sink.
class SinkBolt : public Bolt {
 public:
  struct Sink {
    Mutex mutex;
    std::vector<int64_t> values;
    std::map<int, int> per_task_counts;
  };
  SinkBolt(std::shared_ptr<Sink> sink) : sink_(std::move(sink)) {}
  void Prepare(const TaskContext& context) override { task_ = context.task_index; }
  void Execute(const Tuple& input, Collector*) override {
    MutexLock lock(sink_->mutex);
    sink_->values.push_back(input.Get(0).AsInt());
    sink_->per_task_counts[task_]++;
  }

 private:
  std::shared_ptr<Sink> sink_;
  int task_ = 0;
};

/// Doubles its input value.
class DoubleBolt : public Bolt {
 public:
  void Execute(const Tuple& input, Collector* collector) override {
    collector->Emit({Value(input.Get(0).AsInt() * 2)});
  }
};

// ---------------------------------------------------------------------------
// Topology validation
// ---------------------------------------------------------------------------

TEST(TopologyBuilderTest, ValidTopology) {
  TopologyBuilder builder;
  builder.SetSpout("s", [] { return std::make_unique<CounterSpout>(1); },
                   Fields({"v"}), 2, 4);
  builder.SetBolt("b", [] { return std::make_unique<DoubleBolt>(); },
                  Fields({"v"}), 2)
      .ShuffleGrouping("s");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok()) << topology.status().ToString();
  EXPECT_EQ(topology->total_tasks(), 6);
  EXPECT_EQ(topology->total_executors(), 4);
  EXPECT_EQ(topology->Subscribers("s").size(), 1u);
}

TEST(TopologyBuilderTest, RejectsExecutorsExceedingTasks) {
  TopologyBuilder builder;
  builder.SetSpout("s", [] { return std::make_unique<CounterSpout>(1); },
                   Fields({"v"}), 4, 2);
  EXPECT_FALSE(builder.Build().ok());
}

TEST(TopologyBuilderTest, RejectsUnknownSource) {
  TopologyBuilder builder;
  builder.SetBolt("b", [] { return std::make_unique<DoubleBolt>(); },
                  Fields({"v"}))
      .ShuffleGrouping("ghost");
  EXPECT_EQ(builder.Build().status().code(), StatusCode::kNotFound);
}

TEST(TopologyBuilderTest, RejectsUnknownGroupingField) {
  TopologyBuilder builder;
  builder.SetSpout("s", [] { return std::make_unique<CounterSpout>(1); },
                   Fields({"v"}));
  builder.SetBolt("b", [] { return std::make_unique<DoubleBolt>(); },
                  Fields({"v"}))
      .FieldsGrouping("s", {"nope"});
  EXPECT_FALSE(builder.Build().ok());
}

TEST(TopologyBuilderTest, RejectsCycle) {
  TopologyBuilder builder;
  builder.SetSpout("s", [] { return std::make_unique<CounterSpout>(1); },
                   Fields({"v"}));
  builder.SetBolt("a", [] { return std::make_unique<DoubleBolt>(); },
                  Fields({"v"}))
      .ShuffleGrouping("s")
      .ShuffleGrouping("b");
  builder.SetBolt("b", [] { return std::make_unique<DoubleBolt>(); },
                  Fields({"v"}))
      .ShuffleGrouping("a");
  EXPECT_FALSE(builder.Build().ok());
}

TEST(TopologyBuilderTest, RejectsDuplicateNames) {
  TopologyBuilder builder;
  builder.SetSpout("x", [] { return std::make_unique<CounterSpout>(1); },
                   Fields({"v"}));
  builder.SetBolt("x", [] { return std::make_unique<DoubleBolt>(); },
                  Fields({"v"}))
      .ShuffleGrouping("x");
  EXPECT_EQ(builder.Build().status().code(), StatusCode::kAlreadyExists);
}

// ---------------------------------------------------------------------------
// LocalRuntime
// ---------------------------------------------------------------------------

TEST(LocalRuntimeTest, DeliversEveryTupleOnce) {
  auto sink = std::make_shared<SinkBolt::Sink>();
  TopologyBuilder builder;
  builder.SetSpout("s", [] { return std::make_unique<CounterSpout>(1000); },
                   Fields({"v"}), 2, 2);
  builder.SetBolt("sink", [sink] { return std::make_unique<SinkBolt>(sink); },
                  Fields({}), 3)
      .ShuffleGrouping("s");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());
  LocalRuntime runtime(std::move(*topology), {});
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();

  std::set<int64_t> seen(sink->values.begin(), sink->values.end());
  EXPECT_EQ(sink->values.size(), 1000u);
  EXPECT_EQ(seen.size(), 1000u);
  // Shuffle grouping spreads across the 3 tasks.
  EXPECT_EQ(sink->per_task_counts.size(), 3u);
  auto totals = runtime.metrics()->Totals("sink");
  EXPECT_EQ(totals.executed, 1000u);
}

TEST(LocalRuntimeTest, ChainOfBoltsTransforms) {
  auto sink = std::make_shared<SinkBolt::Sink>();
  TopologyBuilder builder;
  builder.SetSpout("s", [] { return std::make_unique<CounterSpout>(100); },
                   Fields({"v"}));
  builder.SetBolt("x2", [] { return std::make_unique<DoubleBolt>(); },
                  Fields({"v"}), 2)
      .ShuffleGrouping("s");
  builder.SetBolt("sink", [sink] { return std::make_unique<SinkBolt>(sink); },
                  Fields({}))
      .ShuffleGrouping("x2");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());
  LocalRuntime runtime(std::move(*topology), {});
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();
  int64_t sum = 0;
  for (int64_t v : sink->values) sum += v;
  EXPECT_EQ(sum, 2 * 100 * 99 / 2);
}

TEST(LocalRuntimeTest, FieldsGroupingRoutesConsistently) {
  // With fields grouping on the key, every tuple of the same key must land
  // on the same task.
  struct KeyState {
    Mutex mutex;
    std::map<int64_t, std::set<int>> tasks_per_key;
  };
  auto state = std::make_shared<KeyState>();
  struct KeyTracker : public Bolt {
    std::shared_ptr<KeyState> state;
    int task = 0;
    explicit KeyTracker(std::shared_ptr<KeyState> s) : state(std::move(s)) {}
    void Prepare(const TaskContext& context) override {
      task = context.task_index;
    }
    void Execute(const Tuple& input, Collector*) override {
      MutexLock lock(state->mutex);
      state->tasks_per_key[input.Get(0).AsInt()].insert(task);
    }
  };
  struct ModSpout : public Spout {
    int next = 0;
    bool NextTuple(Collector* collector) override {
      if (next >= 500) return false;
      collector->Emit({Value(int64_t{next % 10})});
      ++next;
      return next < 500;
    }
  };
  TopologyBuilder builder;
  builder.SetSpout("s", [] { return std::make_unique<ModSpout>(); },
                   Fields({"key"}));
  builder.SetBolt("t", [state] { return std::make_unique<KeyTracker>(state); },
                  Fields({}), 4)
      .FieldsGrouping("s", {"key"});
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());
  LocalRuntime runtime(std::move(*topology), {});
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();
  EXPECT_EQ(state->tasks_per_key.size(), 10u);
  for (const auto& [key, tasks] : state->tasks_per_key) {
    EXPECT_EQ(tasks.size(), 1u) << "key " << key << " visited multiple tasks";
  }
}

TEST(LocalRuntimeTest, AllGroupingReplicatesToEveryTask) {
  auto sink = std::make_shared<SinkBolt::Sink>();
  TopologyBuilder builder;
  builder.SetSpout("s", [] { return std::make_unique<CounterSpout>(50); },
                   Fields({"v"}));
  builder.SetBolt("sink", [sink] { return std::make_unique<SinkBolt>(sink); },
                  Fields({}), 4)
      .AllGrouping("s");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());
  LocalRuntime runtime(std::move(*topology), {});
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();
  EXPECT_EQ(sink->values.size(), 200u);  // 50 x 4 tasks
  for (const auto& [task, count] : sink->per_task_counts) {
    EXPECT_EQ(count, 50);
  }
}

TEST(LocalRuntimeTest, DirectGroupingHitsChosenTask) {
  // Router bolt sends even values to task 0, odd to task 1.
  struct RouterBolt : public Bolt {
    void Execute(const Tuple& input, Collector* collector) override {
      int64_t v = input.Get(0).AsInt();
      collector->EmitDirect(static_cast<int>(v % 2), {Value(v)});
    }
  };
  auto sink = std::make_shared<SinkBolt::Sink>();
  TopologyBuilder builder;
  builder.SetSpout("s", [] { return std::make_unique<CounterSpout>(100); },
                   Fields({"v"}));
  builder.SetBolt("r", [] { return std::make_unique<RouterBolt>(); },
                  Fields({"v"}))
      .ShuffleGrouping("s");
  builder.SetBolt("sink", [sink] { return std::make_unique<SinkBolt>(sink); },
                  Fields({}), 2)
      .DirectGrouping("r");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());
  LocalRuntime runtime(std::move(*topology), {});
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();
  ASSERT_EQ(sink->values.size(), 100u);
  EXPECT_EQ(sink->per_task_counts[0], 50);
  EXPECT_EQ(sink->per_task_counts[1], 50);
}

TEST(LocalRuntimeTest, PseudoParallelTasksShareExecutor) {
  // 4 tasks on 2 executors (Figure 1's SpeedCalculatorBolt situation).
  auto sink = std::make_shared<SinkBolt::Sink>();
  TopologyBuilder builder;
  builder.SetSpout("s", [] { return std::make_unique<CounterSpout>(400); },
                   Fields({"v"}));
  builder.SetBolt("sink", [sink] { return std::make_unique<SinkBolt>(sink); },
                  Fields({}), 2, 4)
      .ShuffleGrouping("s");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());
  LocalRuntime runtime(std::move(*topology), {});
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();
  EXPECT_EQ(sink->values.size(), 400u);
  EXPECT_EQ(sink->per_task_counts.size(), 4u);  // all 4 tasks ran
}

TEST(LocalRuntimeTest, StopWithoutCompletion) {
  // An endless spout: Stop() must terminate promptly.
  struct EndlessSpout : public Spout {
    bool NextTuple(Collector* collector) override {
      collector->Emit({Value(int64_t{1})});
      return true;
    }
  };
  auto sink = std::make_shared<SinkBolt::Sink>();
  TopologyBuilder builder;
  builder.SetSpout("s", [] { return std::make_unique<EndlessSpout>(); },
                   Fields({"v"}));
  builder.SetBolt("sink", [sink] { return std::make_unique<SinkBolt>(sink); },
                  Fields({}))
      .ShuffleGrouping("s");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());
  LocalRuntime runtime(std::move(*topology), {});
  ASSERT_TRUE(runtime.Start().ok());
  while (runtime.metrics()->Totals("sink").executed < 100) {
  }
  runtime.Stop();
  EXPECT_GE(sink->values.size(), 100u);
}

TEST(LocalRuntimeTest, MonitorThreadTakesWindowSnapshots) {
  // The paper's 40-second monitor windows, shrunk for the test: the monitor
  // thread must produce per-component window reports while the topology
  // runs.
  struct SlowishSpout : public Spout {
    int next = 0;
    bool NextTuple(Collector* collector) override {
      if (next >= 2000) return false;
      collector->Emit({Value(int64_t{next})});
      ++next;
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      return next < 2000;
    }
  };
  auto sink = std::make_shared<SinkBolt::Sink>();
  TopologyBuilder builder;
  builder.SetSpout("s", [] { return std::make_unique<SlowishSpout>(); },
                   Fields({"v"}));
  builder.SetBolt("sink", [sink] { return std::make_unique<SinkBolt>(sink); },
                  Fields({}))
      .ShuffleGrouping("s");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());
  LocalRuntime::Options options;
  options.monitor_interval_micros = 40'000;  // 40 ms windows
  LocalRuntime runtime(std::move(*topology), options);
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();
  auto reports = runtime.metrics()->window_reports();
  ASSERT_GE(reports.size(), 2u);
  uint64_t windowed_total = 0;
  for (const auto& report : reports) {
    if (report.component == "sink") windowed_total += report.executed;
  }
  EXPECT_LE(windowed_total, 2000u);
  EXPECT_GT(windowed_total, 0u);
}

TEST(LocalRuntimeTest, StopWakesEmittersBlockedOnBackpressure) {
  // Regression: with a full TaskQueue the emitter blocks in Push on
  // `not_full`. Stop() must wake that waiter (notify under the queue lock,
  // or the wakeup can be lost) so shutdown never deadlocks under
  // backpressure.
  struct FastSpout : public Spout {
    bool NextTuple(Collector* collector) override {
      collector->Emit({Value(int64_t{1})});
      return true;
    }
  };
  struct SlowBolt : public Bolt {
    void Execute(const Tuple&, Collector*) override {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  };
  TopologyBuilder builder;
  builder.SetSpout("s", [] { return std::make_unique<FastSpout>(); },
                   Fields({"v"}));
  builder.SetBolt("slow", [] { return std::make_unique<SlowBolt>(); },
                  Fields({}))
      .ShuffleGrouping("s");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());
  LocalRuntime::Options options;
  options.queue_capacity = 4;  // tiny: the spout is blocked almost instantly
  LocalRuntime runtime(std::move(*topology), options);
  ASSERT_TRUE(runtime.Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto stopped = std::async(std::launch::async, [&] { runtime.Stop(); });
  ASSERT_EQ(stopped.wait_for(std::chrono::seconds(20)),
            std::future_status::ready)
      << "Stop() deadlocked with an emitter blocked on a full queue";
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, ConcurrentRecordsConsistentAcrossWindows) {
  // TakeWindowSnapshot races with Record callers: window deltas must never
  // go negative (underflow would read as a huge uint64) and must never
  // double-count — the windows plus nothing else partition the totals.
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 50'000;
  constexpr MicrosT kLatency = 3;
  MetricsRegistry registry;
  registry.DeclareComponent("c", kThreads);
  std::atomic<bool> go{false};
  std::vector<Thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      while (!go.load()) {
      }
      for (uint64_t i = 0; i < kPerThread; ++i) {
        registry.Record("c", t, kLatency);
      }
    });
  }
  go.store(true);
  for (int i = 0; i < 50; ++i) {
    registry.TakeWindowSnapshot(static_cast<MicrosT>(i + 1) * 1000);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  for (auto& w : workers) w.join();
  registry.TakeWindowSnapshot(1'000'000);  // flush the tail

  constexpr uint64_t kTotal = kThreads * kPerThread;
  uint64_t windowed_executed = 0;
  double windowed_latency_sum = 0;
  for (const auto& report : registry.window_reports()) {
    EXPECT_LE(report.executed, kTotal) << "window delta under/overflowed";
    EXPECT_GE(report.avg_latency_micros, 0.0);
    windowed_executed += report.executed;
    windowed_latency_sum +=
        report.avg_latency_micros * static_cast<double>(report.executed);
  }
  EXPECT_EQ(windowed_executed, kTotal);
  EXPECT_DOUBLE_EQ(windowed_latency_sum,
                   static_cast<double>(kTotal * kLatency));
  EXPECT_EQ(registry.Totals("c").executed, kTotal);
}

TEST(MetricsRegistryTest, WindowCapacityIsBusyFraction) {
  // Storm's capacity: executed × avg latency / window length. 10 executions
  // of 1 ms inside a 20 ms window = 0.5 — half the window spent busy.
  MetricsRegistry registry;
  registry.DeclareComponent("b", 1);
  registry.MarkWindowStart(0);
  for (int i = 0; i < 10; ++i) registry.Record("b", 0, 1'000);
  auto window = registry.TakeWindowSnapshot(20'000);
  ASSERT_EQ(window.size(), 1u);
  EXPECT_EQ(window[0].executed, 10u);
  EXPECT_DOUBLE_EQ(window[0].avg_latency_micros, 1'000.0);
  EXPECT_DOUBLE_EQ(window[0].capacity, 0.5);

  // An idle window reports capacity 0.
  auto idle = registry.TakeWindowSnapshot(40'000);
  ASSERT_EQ(idle.size(), 1u);
  EXPECT_DOUBLE_EQ(idle[0].capacity, 0.0);
}

TEST(MetricsRegistryTest, EmptyWindowReportsZerosNotNaN) {
  // Regression: a window with executed == 0 used to divide by zero, leaking
  // NaN into avg latency and capacity (and from there into anything that
  // aggregates reports — NaN != NaN makes such bugs invisible to EXPECT_EQ,
  // so check with isnan explicitly).
  MetricsRegistry registry;
  registry.DeclareComponent("idle", 2);
  registry.MarkWindowStart(0);
  auto window = registry.TakeWindowSnapshot(40'000'000);
  ASSERT_EQ(window.size(), 1u);
  EXPECT_EQ(window[0].executed, 0u);
  EXPECT_FALSE(std::isnan(window[0].avg_latency_micros));
  EXPECT_FALSE(std::isnan(window[0].capacity));
  EXPECT_DOUBLE_EQ(window[0].avg_latency_micros, 0.0);
  EXPECT_DOUBLE_EQ(window[0].capacity, 0.0);
  EXPECT_DOUBLE_EQ(window[0].p50_micros, 0.0);
  EXPECT_DOUBLE_EQ(window[0].p95_micros, 0.0);
  EXPECT_DOUBLE_EQ(window[0].p99_micros, 0.0);
  EXPECT_EQ(window[0].window_start, 0);
  EXPECT_EQ(window[0].window_length_micros, 40'000'000);
}

TEST(MetricsRegistryTest, WindowAverageWeightsTasksByExecutions) {
  // Regression: the window average must weight each task by its executed
  // count. Task 0: 1000 × 10 us; task 1: 10 × 1000 us. Weighted mean is
  // (1000·10 + 10·1000) / 1010 ≈ 19.8 us; the buggy unweighted average of
  // per-task averages would report (10 + 1000) / 2 = 505 us — off by 25×.
  MetricsRegistry registry;
  registry.DeclareComponent("skewed", 2);
  registry.MarkWindowStart(0);
  for (int i = 0; i < 1000; ++i) registry.Record("skewed", 0, 10);
  for (int i = 0; i < 10; ++i) registry.Record("skewed", 1, 1'000);
  auto window = registry.TakeWindowSnapshot(1'000'000);
  ASSERT_EQ(window.size(), 1u);
  EXPECT_EQ(window[0].executed, 1010u);
  EXPECT_NEAR(window[0].avg_latency_micros, 20'000.0 / 1010.0, 1e-9);
  EXPECT_LT(window[0].avg_latency_micros, 30.0);
}

TEST(MetricsRegistryTest, WindowPercentilesComeFromWindowDeltas) {
  // Percentiles are computed from the histogram delta of the window, not
  // the lifetime histogram: a second window full of slow executions must
  // not be dragged down by the first window's fast ones.
  MetricsRegistry registry;
  registry.DeclareComponent("c", 1);
  registry.MarkWindowStart(0);
  for (int i = 0; i < 100; ++i) registry.Record("c", 0, 3);
  auto first = registry.TakeWindowSnapshot(1'000'000);
  ASSERT_EQ(first.size(), 1u);
  // 100 observations in the (2, 5] bucket: median interpolates to 3.5.
  EXPECT_DOUBLE_EQ(first[0].p50_micros, 3.5);

  for (int i = 0; i < 100; ++i) registry.Record("c", 0, 700);
  auto second = registry.TakeWindowSnapshot(2'000'000);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_GT(second[0].p50_micros, 500.0);  // (500, 1000] bucket only
  EXPECT_LE(second[0].p50_micros, 1000.0);
  EXPECT_LE(second[0].p50_micros, second[0].p95_micros);
  EXPECT_LE(second[0].p95_micros, second[0].p99_micros);
  EXPECT_EQ(second[0].window_start, 1'000'000);
  EXPECT_EQ(second[0].window_length_micros, 1'000'000);
  // Lifetime totals still see both windows merged.
  auto totals = registry.Totals("c");
  EXPECT_EQ(totals.latency_histogram.total(), 200u);
}

TEST(MetricsRegistryTest, WindowReportCarriesRecoveryCounters) {
  // Recovery activity (checkpoints, dedup suppressions, restores, breaker
  // trips) must surface in the same per-window reports as throughput, and
  // reset with each window like every other delta.
  MetricsRegistry registry;
  registry.DeclareComponent("stateful", 2);
  registry.MarkWindowStart(0);
  registry.RecordCheckpoint("stateful", 0);
  registry.RecordCheckpoint("stateful", 1);
  registry.RecordRestore("stateful", 0);
  registry.RecordRestoreFailure("stateful", 1);
  registry.RecordDedup("stateful", 0);
  registry.RecordDedup("stateful", 0);
  registry.RecordDedup("stateful", 1);
  registry.RecordBreakerTrip("stateful", 1);
  auto window = registry.TakeWindowSnapshot(1'000'000);
  ASSERT_EQ(window.size(), 1u);
  EXPECT_EQ(window[0].checkpoints, 2u);
  EXPECT_EQ(window[0].checkpoint_restores, 1u);
  EXPECT_EQ(window[0].checkpoint_restore_failures, 1u);
  EXPECT_EQ(window[0].deduped, 3u);
  EXPECT_EQ(window[0].breaker_trips, 1u);

  // Next window: all recovery deltas are back to zero.
  auto next = registry.TakeWindowSnapshot(2'000'000);
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].checkpoints, 0u);
  EXPECT_EQ(next[0].checkpoint_restores, 0u);
  EXPECT_EQ(next[0].checkpoint_restore_failures, 0u);
  EXPECT_EQ(next[0].deduped, 0u);
  EXPECT_EQ(next[0].breaker_trips, 0u);
  // Lifetime totals keep accumulating.
  auto totals = registry.Totals("stateful");
  EXPECT_EQ(totals.checkpoints, 2u);
  EXPECT_EQ(totals.deduped, 3u);
  EXPECT_EQ(totals.breaker_trips, 1u);
}

TEST(MetricsRegistryTest, PrometheusSnapshotExportsEveryFamily) {
  // The exporter must see every registered counter family plus the latency
  // histogram — a family silently missing from the export is precisely the
  // kind of regression a dashboard never notices.
  MetricsRegistry registry;
  registry.DeclareComponent("spout", 1);
  registry.DeclareComponent("bolt", 1);
  registry.Record("bolt", 0, 42);
  registry.RecordEmit("spout", 0, 2);
  registry.RecordAck("spout", 0);
  registry.RecordFail("spout", 0);
  registry.RecordReplay("spout", 0);
  registry.RecordCheckpoint("bolt", 0);
  registry.RecordRestore("bolt", 0);
  registry.RecordRestoreFailure("bolt", 0);
  registry.RecordDedup("bolt", 0);
  registry.RecordBreakerTrip("bolt", 0);
  registry.RecordFramesSent(3, 1200);
  registry.RecordFramesReceived(2, 800);
  registry.RecordReconnect();
  registry.RecordRequeuedTuples(7);
  registry.RecordShed("bolt", 0, TuplePriority::kLow);
  registry.RecordShed("bolt", 0, TuplePriority::kLow);
  registry.RecordShed("bolt", 0, TuplePriority::kNormal);
  registry.RecordSquelch("spout", 0);
  registry.RecordCreditStall(1500);

  std::string text =
      observability::ExportPrometheusText(registry.PrometheusSnapshot());
  for (const char* family : {
           "insight_tuples_executed_total",
           "insight_tuples_emitted_total",
           "insight_tuples_acked_total",
           "insight_tuples_failed_total",
           "insight_tuples_replayed_total",
           "insight_checkpoints_total",
           "insight_checkpoint_restores_total",
           "insight_checkpoint_restore_failures_total",
           "insight_tuples_deduped_total",
           "insight_breaker_trips_total",
           "insight_execute_latency_micros",
           "insight_net_frames_sent_total",
           "insight_net_bytes_sent_total",
           "insight_net_frames_received_total",
           "insight_net_bytes_received_total",
           "insight_net_reconnects_total",
           "insight_net_requeued_tuples_total",
           "insight_tuples_shed_total",
           "insight_squelched_sources_total",
           "insight_credits_stalled_ns_total",
       }) {
    EXPECT_NE(text.find(std::string("# TYPE ") + family), std::string::npos)
        << "family missing from export: " << family;
  }
  // Samples carry component labels and real values.
  EXPECT_NE(text.find("insight_tuples_executed_total{component=\"bolt\"} 1"),
            std::string::npos);
  EXPECT_NE(
      text.find("insight_execute_latency_micros_count{component=\"bolt\"} 1"),
      std::string::npos);
  EXPECT_NE(text.find("insight_execute_latency_micros_sum{component=\"bolt\"}"
                      " 42"),
            std::string::npos);
  // Transport counters are unlabelled process-wide totals.
  EXPECT_NE(text.find("insight_net_frames_sent_total 3"), std::string::npos);
  EXPECT_NE(text.find("insight_net_bytes_sent_total 1200"), std::string::npos);
  EXPECT_NE(text.find("insight_net_frames_received_total 2"),
            std::string::npos);
  EXPECT_NE(text.find("insight_net_bytes_received_total 800"),
            std::string::npos);
  EXPECT_NE(text.find("insight_net_reconnects_total 1"), std::string::npos);
  EXPECT_NE(text.find("insight_net_requeued_tuples_total 7"),
            std::string::npos);
  // Overload families: shed carries component + priority labels, squelch the
  // component, and the credit-stall counter is process-wide.
  EXPECT_NE(text.find("insight_tuples_shed_total{component=\"bolt\","
                      "priority=\"low\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("insight_tuples_shed_total{component=\"bolt\","
                      "priority=\"normal\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("insight_tuples_shed_total{component=\"bolt\","
                      "priority=\"high\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("insight_squelched_sources_total{component=\"spout\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("insight_credits_stalled_ns_total 1500"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// XML topology loading
// ---------------------------------------------------------------------------

TEST(XmlTopologyTest, LoadsComponentsAndRules) {
  ComponentRegistry registry;
  ASSERT_TRUE(registry
                  .RegisterSpout("CounterSpout",
                                 [](const XmlNode& node) -> Result<SpoutFactory> {
                                   INSIGHT_ASSIGN_OR_RETURN(
                                       std::string n, XmlParam(node, "count"));
                                   INSIGHT_ASSIGN_OR_RETURN(long long count,
                                                            insight::ParseInt(n));
                                   return SpoutFactory([count] {
                                     return std::make_unique<CounterSpout>(
                                         static_cast<int>(count));
                                   });
                                 })
                  .ok());
  ASSERT_TRUE(registry
                  .RegisterBolt("DoubleBolt",
                                [](const XmlNode&) -> Result<BoltFactory> {
                                  return BoltFactory([] {
                                    return std::make_unique<DoubleBolt>();
                                  });
                                })
                  .ok());

  auto loaded = LoadTopologyFromXml(R"(
    <topology name="test">
      <spout name="numbers" type="CounterSpout" executors="2" fields="v">
        <param key="count" value="10"/>
      </spout>
      <bolt name="doubler" type="DoubleBolt" executors="1" fields="v">
        <subscribe source="numbers" grouping="shuffle"/>
      </bolt>
      <rules>
        <rule name="r1"><![CDATA[SELECT * FROM bus WHERE delay > 100]]></rule>
        <rule name="r2">SELECT * FROM bus</rule>
      </rules>
    </topology>)",
                                    registry);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->topology.components().size(), 2u);
  EXPECT_EQ(loaded->topology.Find("numbers")->num_executors, 2);
  ASSERT_EQ(loaded->rules.size(), 2u);
  EXPECT_EQ(loaded->rules[0].first, "r1");
  EXPECT_NE(loaded->rules[0].second.find("delay > 100"), std::string::npos);
}

TEST(XmlTopologyTest, UnknownTypeFails) {
  ComponentRegistry registry;
  auto loaded = LoadTopologyFromXml(
      "<topology><spout name='s' type='Ghost' fields='v'/></topology>",
      registry);
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(XmlTopologyTest, BadGroupingFails) {
  ComponentRegistry registry;
  ASSERT_TRUE(registry
                  .RegisterSpout("S",
                                 [](const XmlNode&) -> Result<SpoutFactory> {
                                   return SpoutFactory([] {
                                     return std::make_unique<CounterSpout>(1);
                                   });
                                 })
                  .ok());
  ASSERT_TRUE(registry
                  .RegisterBolt("B",
                                [](const XmlNode&) -> Result<BoltFactory> {
                                  return BoltFactory([] {
                                    return std::make_unique<DoubleBolt>();
                                  });
                                })
                  .ok());
  auto loaded = LoadTopologyFromXml(R"(
    <topology>
      <spout name="s" type="S" fields="v"/>
      <bolt name="b" type="B" fields="v">
        <subscribe source="s" grouping="zigzag"/>
      </bolt>
    </topology>)",
                                    registry);
  EXPECT_FALSE(loaded.ok());
}

// ---------------------------------------------------------------------------
// Spout crash injection
// ---------------------------------------------------------------------------

TEST(LocalRuntimeTest, SpoutCrashMidStreamIsRestartedWithoutLoss) {
  // Kill the spout executor between two NextTuple calls (the spout fault
  // point flushes the outbox before dying, and the supervisor relaunches
  // the executor around the surviving spout instance), so the stream
  // resumes at the cursor: every value still arrives exactly once, without
  // acking.
  constexpr int kTuples = 500;
  reliability::FaultPlan plan;
  plan.crashes.push_back({.component = "s", .task = 0,
                          .after_executions = 50, .repeat = false});
  reliability::FaultInjector injector(plan);

  auto sink = std::make_shared<SinkBolt::Sink>();
  TopologyBuilder builder;
  builder.SetSpout("s", [=] { return std::make_unique<CounterSpout>(kTuples); },
                   Fields({"v"}));
  builder.SetBolt("b", [sink] { return std::make_unique<SinkBolt>(sink); },
                  Fields({}))
      .ShuffleGrouping("s");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());

  LocalRuntime::Options options;
  options.fault_injector = &injector;
  options.supervisor_interval_micros = 1'000;
  LocalRuntime runtime(std::move(*topology), options);
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();

  EXPECT_EQ(injector.crashes_injected(), 1u);
  EXPECT_GE(runtime.executor_restarts(), 1u);
  MutexLock lock(sink->mutex);
  EXPECT_EQ(sink->values.size(), static_cast<size_t>(kTuples));
  std::set<int64_t> distinct(sink->values.begin(), sink->values.end());
  EXPECT_EQ(distinct.size(), static_cast<size_t>(kTuples));
}

TEST(LocalRuntimeTest, RepeatedSpoutCrashesStillDrainTheStream) {
  // A spout that dies every 100 opportunities across a multi-task component:
  // each relaunch resumes all tasks of the executor.
  constexpr int kTuples = 600;
  reliability::FaultPlan plan;
  plan.crashes.push_back({.component = "s", .task = -1,
                          .after_executions = 100, .repeat = true});
  reliability::FaultInjector injector(plan);

  auto sink = std::make_shared<SinkBolt::Sink>();
  TopologyBuilder builder;
  builder.SetSpout("s", [=] { return std::make_unique<CounterSpout>(kTuples); },
                   Fields({"v"}), 2, 2);
  builder.SetBolt("b", [sink] { return std::make_unique<SinkBolt>(sink); },
                  Fields({}))
      .ShuffleGrouping("s");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());

  LocalRuntime::Options options;
  options.fault_injector = &injector;
  options.supervisor_interval_micros = 1'000;
  LocalRuntime runtime(std::move(*topology), options);
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();

  EXPECT_GE(injector.crashes_injected(), 2u);
  EXPECT_GE(runtime.executor_restarts(), 2u);
  MutexLock lock(sink->mutex);
  std::set<int64_t> distinct(sink->values.begin(), sink->values.end());
  EXPECT_EQ(distinct.size(), static_cast<size_t>(kTuples));
  EXPECT_EQ(sink->values.size(), static_cast<size_t>(kTuples));
}

}  // namespace
}  // namespace dsps
}  // namespace insight
