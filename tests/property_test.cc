// Parameterized property tests (TEST_P sweeps) over the library's
// invariants: quadtree tiling, partition balance, window-size bounds, DES
// work conservation, regression exactness and MapReduce determinism.

#include <gtest/gtest.h>

#include <deque>
#include <numeric>

#include "batch/mapreduce.h"
#include "cep/engine.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/partitioning.h"
#include "geo/quadtree.h"
#include "model/regression.h"
#include "sim/cluster_sim.h"

namespace insight {
namespace {

// ---------------------------------------------------------------------------
// Quadtree invariants over (seed, capacity)
// ---------------------------------------------------------------------------

class QuadtreeProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {};

TEST_P(QuadtreeProperty, EveryPointHasExactlyOneLeaf) {
  auto [seed, capacity] = GetParam();
  geo::RegionQuadtree::Options options;
  options.capacity = capacity;
  auto tree = geo::BuildDublinQuadtree(seed, 400, options);
  Rng rng(seed ^ 0xabc);
  auto bounds = geo::DublinBounds();
  auto leaves = tree.Leaves();
  for (int i = 0; i < 100; ++i) {
    geo::LatLon p{rng.Uniform(bounds.min_lat, bounds.max_lat),
                  rng.Uniform(bounds.min_lon, bounds.max_lon)};
    geo::RegionId leaf = tree.LocateLeaf(p);
    ASSERT_GE(leaf, 0);
    int containing = 0;
    for (const auto& region : leaves) {
      if (region.box.Contains(p)) {
        ++containing;
        EXPECT_EQ(region.id, leaf);
      }
    }
    EXPECT_EQ(containing, 1);
  }
}

TEST_P(QuadtreeProperty, LayerLookupIsPrefixOfLeafPath) {
  auto [seed, capacity] = GetParam();
  geo::RegionQuadtree::Options options;
  options.capacity = capacity;
  auto tree = geo::BuildDublinQuadtree(seed, 400, options);
  Rng rng(seed ^ 0x123);
  auto bounds = geo::DublinBounds();
  for (int i = 0; i < 50; ++i) {
    geo::LatLon p{rng.Uniform(bounds.min_lat, bounds.max_lat),
                  rng.Uniform(bounds.min_lon, bounds.max_lon)};
    // The region at layer k must contain the region at layer k+1.
    for (int layer = 0; layer < tree.max_layer(); ++layer) {
      auto coarse = tree.GetRegion(tree.Locate(p, layer));
      auto fine = tree.GetRegion(tree.Locate(p, layer + 1));
      ASSERT_TRUE(coarse.ok());
      ASSERT_TRUE(fine.ok());
      EXPECT_TRUE(coarse->box.Contains(fine->box.Center()));
      EXPECT_LE(coarse->layer, fine->layer);
    }
  }
}

TEST_P(QuadtreeProperty, LeafCapacityRespected) {
  auto [seed, capacity] = GetParam();
  geo::RegionQuadtree::Options options;
  options.capacity = capacity;
  options.max_depth = 12;
  auto tree = geo::BuildDublinQuadtree(seed, 400, options);
  for (const auto& leaf : tree.Leaves()) {
    if (leaf.layer < 12) {
      EXPECT_LE(leaf.seed_count, capacity)
          << "non-depth-limited leaf over capacity";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuadtreeProperty,
                         ::testing::Combine(::testing::Values(1u, 7u, 42u, 99u),
                                            ::testing::Values(4u, 8u, 16u)));

// ---------------------------------------------------------------------------
// Algorithm 1 balance over (seed, engines)
// ---------------------------------------------------------------------------

class PartitionProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(PartitionProperty, MaxEngineRateBoundedByLptGuarantee) {
  auto [seed, engines] = GetParam();
  Rng rng(seed);
  std::vector<core::RegionRate> rates;
  double total = 0, max_rate = 0;
  for (int64_t region = 0; region < 150; ++region) {
    double rate = rng.Uniform(0.5, 50.0);
    rates.push_back({region, rate});
    total += rate;
    max_rate = std::max(max_rate, rate);
  }
  auto assignment = core::PartitionRegions(rates, engines);
  ASSERT_TRUE(assignment.ok());
  auto engine_rates = core::EngineRates(*assignment, rates);
  double optimal_lb = std::max(total / engines, max_rate);
  for (double rate : engine_rates) {
    // Greedy LPT is within (4/3 - 1/3m) of optimal makespan; allow 4/3 plus
    // the single-region indivisibility slack.
    EXPECT_LE(rate, optimal_lb * 4.0 / 3.0 + max_rate);
  }
  // Conservation: nothing lost or duplicated.
  double assigned = std::accumulate(engine_rates.begin(), engine_rates.end(), 0.0);
  EXPECT_NEAR(assigned, total, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PartitionProperty,
                         ::testing::Combine(::testing::Values(3u, 17u, 88u),
                                            ::testing::Values(2, 5, 9, 16)));

// ---------------------------------------------------------------------------
// CEP window-size invariants over (window kind, size)
// ---------------------------------------------------------------------------

class WindowProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(WindowProperty, RetainedNeverExceedsDeclaredLength) {
  size_t window = GetParam();
  cep::Engine engine;
  ASSERT_TRUE(engine
                  .RegisterEventType("e", {{"k", cep::ValueType::kInt},
                                           {"v", cep::ValueType::kDouble}})
                  .ok());
  auto stmt = engine.AddStatement(
      "@Trigger(e) SELECT avg(x.v) AS m FROM e.std:groupwin(k).win:length(" +
          std::to_string(window) + ") as x GROUP BY x.k",
      "w");
  ASSERT_TRUE(stmt.ok());
  Rng rng(window);
  constexpr int kKeys = 5;
  for (int i = 0; i < 500; ++i) {
    engine.SendEvent(engine.NewEvent("e")
                         .Set("k", static_cast<int64_t>(rng.NextUint(kKeys)))
                         .Set("v", rng.NextDouble())
                         .Build());
    EXPECT_LE((*stmt)->RetainedEvents(), window * kKeys);
  }
}

TEST_P(WindowProperty, WindowAverageMatchesReference) {
  size_t window = GetParam();
  cep::Engine engine;
  ASSERT_TRUE(engine
                  .RegisterEventType("e", {{"k", cep::ValueType::kInt},
                                           {"v", cep::ValueType::kDouble}})
                  .ok());
  auto stmt = engine.AddStatement(
      "@Trigger(e) SELECT avg(x.v) AS m FROM e.win:length(" +
          std::to_string(window) + ") as x",
      "w");
  ASSERT_TRUE(stmt.ok());
  double last_avg = 0;
  (*stmt)->AddListener(
      [&](const cep::MatchResult& m) { last_avg = m.Get("m")->AsDouble(); });
  Rng rng(window * 3 + 1);
  std::deque<double> reference;
  for (int i = 0; i < 300; ++i) {
    double v = rng.Uniform(-10, 10);
    reference.push_back(v);
    if (reference.size() > window) reference.pop_front();
    engine.SendEvent(engine.NewEvent("e")
                         .Set("k", int64_t{0})
                         .Set("v", v)
                         .Build());
    double expected =
        std::accumulate(reference.begin(), reference.end(), 0.0) /
        static_cast<double>(reference.size());
    ASSERT_NEAR(last_avg, expected, 1e-9) << "at event " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, WindowProperty,
                         ::testing::Values(1u, 2u, 7u, 32u, 100u));

// ---------------------------------------------------------------------------
// DES work conservation over (nodes, engines)
// ---------------------------------------------------------------------------

class SimProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SimProperty, WorkConservedUnderSaturation) {
  auto [nodes, engines] = GetParam();
  sim::ClusterSimulation::Config config;
  config.node_cores = std::vector<int>(static_cast<size_t>(nodes), 1);
  config.network_latency_micros = 0;
  config.deserialization_micros = 0;
  config.duration_micros = 2'000'000;
  const double service = 500.0;
  std::vector<sim::ClusterSimulation::EngineSpec> specs;
  for (int e = 0; e < engines; ++e) specs.push_back({e % nodes, service});
  sim::ClusterSimulation simulation(config, specs);
  // Saturating load.
  auto result = simulation.Run(
      50000.0, [engines = engines](uint64_t i, std::vector<int>* t) {
        t->push_back(static_cast<int>(i % static_cast<uint64_t>(engines)));
      });
  ASSERT_TRUE(result.ok());
  // Usable core-time: an engine is a serial server, so a node can only be
  // as busy as min(cores, engines hosted there).
  std::vector<int> engines_on_node(static_cast<size_t>(nodes), 0);
  for (const auto& spec : specs) ++engines_on_node[static_cast<size_t>(spec.node)];
  double usable_core_seconds = 0.0;
  for (int hosted : engines_on_node) {
    usable_core_seconds += 2.0 * std::min(1, hosted);
  }
  double work_seconds =
      static_cast<double>(result->copies_processed) * service / 1e6;
  // Under saturation, work done is close to the usable core time (within
  // 15%: start-up and quantization effects), and never exceeds it.
  EXPECT_LE(work_seconds, usable_core_seconds * 1.05);
  EXPECT_GE(work_seconds, usable_core_seconds * 0.85);
}

TEST_P(SimProperty, ThroughputMonotoneInNodes) {
  auto [nodes, engines] = GetParam();
  if (nodes < 2) return;
  auto run = [&](int n) {
    sim::ClusterSimulation::Config config;
    config.node_cores = std::vector<int>(static_cast<size_t>(n), 1);
    config.duration_micros = 2'000'000;
    config.network_latency_micros = 0;
    config.deserialization_micros = 0;
    std::vector<sim::ClusterSimulation::EngineSpec> specs;
    for (int e = 0; e < engines; ++e) specs.push_back({e % n, 400.0});
    sim::ClusterSimulation simulation(config, specs);
    auto result = simulation.Run(
        20000.0, [engines = engines](uint64_t i, std::vector<int>* t) {
          t->push_back(static_cast<int>(i % static_cast<uint64_t>(engines)));
        });
    EXPECT_TRUE(result.ok());
    return result->copies_processed;
  };
  EXPECT_GE(run(nodes), run(nodes - 1));
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimProperty,
                         ::testing::Combine(::testing::Values(1, 3, 7),
                                            ::testing::Values(1, 4, 12)));

// ---------------------------------------------------------------------------
// Regression exactness over degrees
// ---------------------------------------------------------------------------

class RegressionProperty : public ::testing::TestWithParam<int> {};

TEST_P(RegressionProperty, RecoversRandomPolynomialExactly) {
  int degree = GetParam();
  Rng rng(static_cast<uint64_t>(degree) * 31 + 7);
  model::PolynomialRegression truth(2, degree);
  std::vector<double> coefficients(truth.num_terms());
  for (double& c : coefficients) c = rng.Uniform(-3, 3);
  ASSERT_TRUE(truth.SetCoefficients(coefficients).ok());

  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (size_t i = 0; i < truth.num_terms() * 6; ++i) {
    std::vector<double> sample{rng.Uniform(-2, 2), rng.Uniform(-2, 2)};
    y.push_back(truth.Predict(sample));
    x.push_back(std::move(sample));
  }
  model::PolynomialRegression fitted(2, degree);
  ASSERT_TRUE(fitted.Fit(x, y).ok());
  for (int i = 0; i < 20; ++i) {
    std::vector<double> probe{rng.Uniform(-2, 2), rng.Uniform(-2, 2)};
    EXPECT_NEAR(fitted.Predict(probe), truth.Predict(probe), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RegressionProperty, ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------------
// MapReduce determinism over reducer counts
// ---------------------------------------------------------------------------

class MapReduceProperty : public ::testing::TestWithParam<int> {};

TEST_P(MapReduceProperty, OutputIndependentOfReducerCount) {
  int reducers = GetParam();
  dfs::MiniDfs fs;
  Rng rng(11);
  std::string data;
  for (int i = 0; i < 300; ++i) {
    data += "key" + std::to_string(rng.NextUint(20)) + " " +
            std::to_string(rng.NextUint(100)) + "\n";
  }
  ASSERT_TRUE(fs.Append("/in", data).ok());

  auto run = [&](int r) {
    batch::MapReduceJob::Spec spec;
    spec.input_paths = {"/in"};
    spec.output_dir = "/out" + std::to_string(r);
    spec.num_reducers = r;
    spec.map = [](const std::string& record, batch::Emitter* e) {
      auto parts = SplitWhitespace(record);
      if (parts.size() == 2) e->Emit(parts[0], parts[1]);
    };
    spec.reduce = [](const std::string& key,
                     const std::vector<std::string>& values,
                     batch::Emitter* e) {
      long long total = 0;
      for (const auto& v : values) total += *ParseInt(v);
      e->Emit(key, std::to_string(total));
    };
    EXPECT_TRUE(batch::MapReduceJob::Run(&fs, spec).ok());
    auto output = batch::ReadJobOutput(fs, spec.output_dir);
    EXPECT_TRUE(output.ok());
    return std::map<std::string, std::string>(output->begin(), output->end());
  };
  auto baseline = run(1);
  EXPECT_EQ(run(reducers), baseline);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MapReduceProperty,
                         ::testing::Values(2, 3, 7, 16));

}  // namespace
}  // namespace insight
