// Transport-layer tests: frame codec hardening, wire tuple-batch
// round-trips (property/fuzz style, deterministic seeds), and event-loop
// frame exchange on loopback.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "cep/event.h"
#include "gtest/gtest.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/wire.h"

namespace insight {
namespace net {
namespace {

using cep::Value;
using cep::ValueType;

bool SameValue(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case ValueType::kInt:
      return a.AsInt() == b.AsInt();
    case ValueType::kDouble:
      return a.AsDouble() == b.AsDouble();
    case ValueType::kBool:
      return a.AsBool() == b.AsBool();
    case ValueType::kString:
      return a.AsString() == b.AsString();
  }
  return false;
}

// ---------------------------------------------------------------------------
// Frame codec

TEST(FrameTest, RoundTripAcrossChunkBoundaries) {
  std::vector<Frame> frames;
  frames.push_back({FrameType::kHello, "hello payload"});
  frames.push_back({FrameType::kTupleBatch, std::string(10'000, 'x')});
  frames.push_back({FrameType::kHopAck, ""});  // empty payload is legal
  frames.push_back({FrameType::kShutdown, std::string("\x00\xff\x01", 3)});

  std::string stream;
  for (const Frame& frame : frames) EncodeFrame(frame, &stream);

  // Feed the decoder in every chunk size from 1 byte to the whole stream.
  for (size_t chunk : {size_t{1}, size_t{3}, size_t{7}, stream.size()}) {
    FrameDecoder decoder;
    std::vector<Frame> decoded;
    for (size_t offset = 0; offset < stream.size(); offset += chunk) {
      size_t n = std::min(chunk, stream.size() - offset);
      decoder.Append(stream.data() + offset, n);
      Frame frame;
      for (;;) {
        Result<bool> more = decoder.Next(&frame);
        ASSERT_TRUE(more.ok());
        if (!more.value()) break;
        decoded.push_back(frame);
      }
    }
    ASSERT_EQ(decoded.size(), frames.size()) << "chunk=" << chunk;
    for (size_t i = 0; i < frames.size(); ++i) {
      EXPECT_EQ(static_cast<int>(decoded[i].type),
                static_cast<int>(frames[i].type));
      EXPECT_EQ(decoded[i].payload, frames[i].payload);
    }
  }
}

TEST(FrameTest, RejectsUnknownType) {
  std::string stream;
  EncodeFrame({FrameType::kHello, "ok"}, &stream);
  stream[4] = static_cast<char>(200);  // type byte out of range
  FrameDecoder decoder;
  decoder.Append(stream.data(), stream.size());
  Frame frame;
  EXPECT_FALSE(decoder.Next(&frame).ok());
}

TEST(FrameTest, RejectsOversizedLength) {
  std::string stream;
  EncodeFrame({FrameType::kHello, "ok"}, &stream);
  // Length prefix far beyond kMaxFramePayload.
  stream[0] = '\xff';
  stream[1] = '\xff';
  stream[2] = '\xff';
  stream[3] = '\xff';
  FrameDecoder decoder;
  decoder.Append(stream.data(), stream.size());
  Frame frame;
  EXPECT_FALSE(decoder.Next(&frame).ok());
}

TEST(FrameTest, PartialFrameIsNotAFrame) {
  std::string stream;
  EncodeFrame({FrameType::kStatus, "payload"}, &stream);
  FrameDecoder decoder;
  decoder.Append(stream.data(), stream.size() - 1);
  Frame frame;
  Result<bool> more = decoder.Next(&frame);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(more.value());
}

// ---------------------------------------------------------------------------
// Tuple-batch wire codec

ValuePayload MakePayload(std::vector<Value> values) {
  return std::make_shared<const std::vector<Value>>(std::move(values));
}

Value RandomValue(std::mt19937_64& rng) {
  switch (rng() % 6) {
    case 0:
      return Value(static_cast<int64_t>(rng()));
    case 1:
      // Finite doubles only: NaN would break exact comparison.
      return Value(static_cast<double>(static_cast<int64_t>(rng())) / 3.0);
    case 2:
      return Value(rng() % 2 == 0);
    case 3:
      return Value(std::string());  // empty string
    case 4: {
      std::string s(rng() % 64, '\0');
      for (char& c : s) c = static_cast<char>(rng() % 256);
      return Value(std::move(s));
    }
    default: {
      // Large string: forces multi-kilobyte payload encodings.
      std::string s(1024 + rng() % 8192, '\0');
      for (char& c : s) c = static_cast<char>(rng() % 256);
      return Value(std::move(s));
    }
  }
}

TEST(WireTest, FuzzRoundTripPreservesEverything) {
  std::mt19937_64 rng(0xdecaf001);
  for (int iteration = 0; iteration < 200; ++iteration) {
    TupleBatch batch;
    batch.stream = "component-" + std::to_string(rng() % 10);
    batch.sender_task = static_cast<uint32_t>(rng() % 8);
    batch.seq = rng();
    size_t payload_count = rng() % 6;
    for (size_t i = 0; i < payload_count; ++i) {
      std::vector<Value> values;
      size_t value_count = rng() % 5;  // includes empty value vectors
      for (size_t v = 0; v < value_count; ++v) {
        values.push_back(RandomValue(rng));
      }
      batch.payloads.push_back(MakePayload(std::move(values)));
    }
    if (!batch.payloads.empty()) {
      size_t tuple_count = rng() % 10;
      for (size_t i = 0; i < tuple_count; ++i) {
        WireTuple tuple;
        tuple.payload_index = static_cast<uint32_t>(rng() % batch.payloads.size());
        tuple.wire_id = rng();
        tuple.spout_time = static_cast<MicrosT>(rng() % (1LL << 40));
        tuple.priority = static_cast<uint8_t>(rng() % 3);
        batch.tuples.push_back(tuple);
      }
    }

    std::string encoded;
    EncodeTupleBatch(batch, &encoded);
    TupleBatch decoded;
    ASSERT_TRUE(DecodeTupleBatch(encoded, &decoded).ok())
        << "iteration " << iteration;

    EXPECT_EQ(decoded.stream, batch.stream);
    EXPECT_EQ(decoded.sender_task, batch.sender_task);
    EXPECT_EQ(decoded.seq, batch.seq);
    ASSERT_EQ(decoded.payloads.size(), batch.payloads.size());
    for (size_t i = 0; i < batch.payloads.size(); ++i) {
      ASSERT_EQ(decoded.payloads[i]->size(), batch.payloads[i]->size());
      for (size_t v = 0; v < batch.payloads[i]->size(); ++v) {
        EXPECT_TRUE(
            SameValue((*decoded.payloads[i])[v], (*batch.payloads[i])[v]))
            << "iteration " << iteration << " payload " << i << " value " << v;
      }
    }
    ASSERT_EQ(decoded.tuples.size(), batch.tuples.size());
    for (size_t i = 0; i < batch.tuples.size(); ++i) {
      EXPECT_EQ(decoded.tuples[i].payload_index, batch.tuples[i].payload_index);
      EXPECT_EQ(decoded.tuples[i].wire_id, batch.tuples[i].wire_id);
      EXPECT_EQ(decoded.tuples[i].spout_time, batch.tuples[i].spout_time);
      EXPECT_EQ(decoded.tuples[i].priority, batch.tuples[i].priority);
      // Payload sharing survives the wire: same index -> same buffer object.
      EXPECT_EQ(decoded.payloads[decoded.tuples[i].payload_index].get(),
                decoded.payloads[batch.tuples[i].payload_index].get());
    }
  }
}

TEST(WireTest, BuilderDeduplicatesSharedPayloads) {
  ValuePayload shared = MakePayload({Value(1), Value("x")});
  ValuePayload other = MakePayload({Value(2.5)});
  TupleBatchBuilder builder("s", 3);
  builder.Add(shared, 11, 100);
  builder.Add(shared, 12, 101);
  builder.Add(other, 13, 102);
  builder.Add(shared, 14, 103);
  TupleBatch batch = builder.Take(42);
  EXPECT_EQ(batch.seq, 42u);
  ASSERT_EQ(batch.payloads.size(), 2u);  // serialized once per buffer
  ASSERT_EQ(batch.tuples.size(), 4u);
  EXPECT_EQ(batch.tuples[0].payload_index, batch.tuples[1].payload_index);
  EXPECT_EQ(batch.tuples[0].payload_index, batch.tuples[3].payload_index);
  EXPECT_NE(batch.tuples[0].payload_index, batch.tuples[2].payload_index);
  // Take resets the builder.
  EXPECT_TRUE(builder.empty());
}

TEST(WireTest, EveryTruncationIsRejectedCleanly) {
  TupleBatch batch;
  batch.stream = "detect";
  batch.sender_task = 1;
  batch.seq = 7;
  batch.payloads.push_back(
      MakePayload({Value(123), Value("truncation-probe"), Value(false)}));
  batch.payloads.push_back(MakePayload({Value(2.25)}));
  for (uint32_t i = 0; i < 3; ++i) {
    batch.tuples.push_back(WireTuple{i % 2, 1000 + i, 5});
  }
  std::string encoded;
  EncodeTupleBatch(batch, &encoded);

  TupleBatch decoded;
  ASSERT_TRUE(DecodeTupleBatch(encoded, &decoded).ok());
  for (size_t len = 0; len < encoded.size(); ++len) {
    TupleBatch scratch;
    EXPECT_FALSE(DecodeTupleBatch(encoded.substr(0, len), &scratch).ok())
        << "prefix of length " << len << " decoded successfully";
  }
  // Trailing garbage is also rejected (exhaustion check).
  TupleBatch scratch;
  EXPECT_FALSE(DecodeTupleBatch(encoded + "junk", &scratch).ok());
}

TEST(WireTest, RejectsBadMagicAndBadPayloadIndex) {
  TupleBatch batch;
  batch.stream = "s";
  batch.payloads.push_back(MakePayload({Value(1)}));
  batch.tuples.push_back(WireTuple{0, 1, 0});
  std::string encoded;
  EncodeTupleBatch(batch, &encoded);

  std::string bad_magic = encoded;
  bad_magic[0] ^= 0x5a;
  TupleBatch scratch;
  EXPECT_FALSE(DecodeTupleBatch(bad_magic, &scratch).ok());

  // Out-of-range payload index: rebuild with a corrupted index.
  TupleBatch bad_index = batch;
  bad_index.tuples[0].payload_index = 9;
  std::string encoded_bad;
  EncodeTupleBatch(bad_index, &encoded_bad);
  EXPECT_FALSE(DecodeTupleBatch(encoded_bad, &scratch).ok());

  // Priority beyond the defined tiers (see dsps::TuplePriority) is rejected.
  TupleBatch bad_priority = batch;
  bad_priority.tuples[0].priority = 3;
  std::string encoded_bad_priority;
  EncodeTupleBatch(bad_priority, &encoded_bad_priority);
  EXPECT_FALSE(DecodeTupleBatch(encoded_bad_priority, &scratch).ok());
}

TEST(WireTest, RandomByteFlipsNeverCrashTheDecoder) {
  TupleBatch batch;
  batch.stream = "fuzz";
  batch.sender_task = 2;
  batch.seq = 99;
  for (int i = 0; i < 4; ++i) {
    batch.payloads.push_back(MakePayload(
        {Value(i), Value(std::string(100, static_cast<char>('a' + i)))}));
    batch.tuples.push_back(WireTuple{static_cast<uint32_t>(i), 50u + i, 1});
  }
  std::string encoded;
  EncodeTupleBatch(batch, &encoded);

  std::mt19937_64 rng(0xdecaf002);
  for (int iteration = 0; iteration < 500; ++iteration) {
    std::string corrupted = encoded;
    size_t flips = 1 + rng() % 4;
    for (size_t f = 0; f < flips; ++f) {
      corrupted[rng() % corrupted.size()] ^= static_cast<char>(1 + rng() % 255);
    }
    TupleBatch scratch;
    // Must never crash or trip the sanitizers; a clean error or a decode of
    // coincidentally-valid different data are both acceptable.
    (void)DecodeTupleBatch(corrupted, &scratch);
  }
}

// ---------------------------------------------------------------------------
// Event loop

struct LoopHarness {
  std::atomic<int> frames_seen{0};
  std::atomic<uint64_t> accepted_conn{0};
  std::atomic<uint64_t> closed{0};
  Mutex mutex;
  std::vector<Frame> received;

  EventLoop::Callbacks CallbacksFor() {
    EventLoop::Callbacks callbacks;
    callbacks.on_accept = [this](EventLoop::ConnId id, int) {
      accepted_conn.store(id);
    };
    callbacks.on_frame = [this](EventLoop::ConnId, Frame frame) {
      MutexLock lock(mutex);
      received.push_back(std::move(frame));
      frames_seen.fetch_add(1);
    };
    callbacks.on_close = [this](EventLoop::ConnId, const Status&) {
      closed.fetch_add(1);
    };
    return callbacks;
  }
};

bool WaitFor(const std::function<bool()>& predicate, int timeout_ms = 5000) {
  for (int waited = 0; waited < timeout_ms; ++waited) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return predicate();
}

TEST(EventLoopTest, FramesFlowBothWays) {
  LoopHarness server_side;
  LoopHarness client_side;
  EventLoop server(server_side.CallbacksFor(), 0);
  EventLoop client(client_side.CallbacksFor(), 0);

  Result<uint16_t> port = server.Listen(0, 1);
  ASSERT_TRUE(port.ok());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(client.Start().ok());

  Result<EventLoop::ConnId> conn = client.Connect(port.value());
  ASSERT_TRUE(conn.ok());

  // Client -> server: several frames including a large one.
  ASSERT_TRUE(client.Send(conn.value(), {FrameType::kHello, "greetings"}));
  ASSERT_TRUE(
      client.Send(conn.value(), {FrameType::kTupleBatch, std::string(256 * 1024, 'z')}));
  ASSERT_TRUE(WaitFor([&] { return server_side.frames_seen.load() == 2; }));
  {
    MutexLock lock(server_side.mutex);
    EXPECT_EQ(server_side.received[0].payload, "greetings");
    EXPECT_EQ(server_side.received[1].payload.size(), 256u * 1024);
  }

  // Server -> client on the accepted connection.
  uint64_t server_conn = server_side.accepted_conn.load();
  ASSERT_NE(server_conn, 0u);
  ASSERT_TRUE(server.Send(server_conn, {FrameType::kHopAck, "ack"}));
  ASSERT_TRUE(WaitFor([&] { return client_side.frames_seen.load() == 1; }));
  {
    MutexLock lock(client_side.mutex);
    EXPECT_EQ(client_side.received[0].payload, "ack");
  }

  // Closing the client side fires on_close on both loops.
  client.Close(conn.value());
  ASSERT_TRUE(WaitFor([&] {
    return client_side.closed.load() == 1 && server_side.closed.load() == 1;
  }));

  client.Stop();
  server.Stop();
}

TEST(EventLoopTest, CorruptStreamTearsDownConnection) {
  LoopHarness server_side;
  LoopHarness client_side;
  EventLoop server(server_side.CallbacksFor(), 0);
  EventLoop client(client_side.CallbacksFor(), 0);
  Result<uint16_t> port = server.Listen(0, 1);
  ASSERT_TRUE(port.ok());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(client.Start().ok());
  Result<EventLoop::ConnId> conn = client.Connect(port.value());
  ASSERT_TRUE(conn.ok());

  // A frame with an unknown type byte: the server must drop the connection.
  Frame bogus;
  bogus.type = static_cast<FrameType>(250);
  bogus.payload = "garbage";
  client.Send(conn.value(), bogus);
  ASSERT_TRUE(WaitFor([&] { return server_side.closed.load() == 1; }));
  EXPECT_EQ(server_side.frames_seen.load(), 0);

  client.Stop();
  server.Stop();
}

}  // namespace
}  // namespace net
}  // namespace insight
