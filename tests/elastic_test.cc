// Tests for the online elastic scheduler (ROADMAP item 2): the pure policy
// decision functions, the live model refit loop, and the LocalRuntime task
// migration barrier — state continuity, dedup-ledger travel (effectively-once
// across a migration that straddles replays), and the restore-failure
// rollback that keeps the source authoritative.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/partitioning.h"
#include "dsps/local_runtime.h"
#include "dsps/topology.h"
#include "elastic/controller.h"
#include "elastic/policy.h"
#include "model/latency_model.h"
#include "reliability/state_store.h"
#include "traffic/bolts.h"

namespace insight {
namespace {

using dsps::Bolt;
using dsps::Collector;
using dsps::Fields;
using dsps::LocalRuntime;
using dsps::Snapshottable;
using dsps::Spout;
using dsps::TaskContext;
using dsps::TopologyBuilder;
using dsps::Tuple;
using dsps::Value;
using elastic::Decision;
using elastic::EngineSample;
using elastic::Policy;

// ---------------------------------------------------------------------------
// Policy decision functions (pure unit surface).
// ---------------------------------------------------------------------------

Policy OccupancyOnlyPolicy(double watermark) {
  Policy policy;
  policy.p99_target_micros = 0;
  policy.capacity_high = 0;
  policy.occupancy_high = watermark;
  policy.shed_rate_threshold = 0;
  policy.min_hot_windows = 2;
  return policy;
}

EngineSample MakeSample(int task, bool routed, double occupancy,
                        int hot_windows) {
  EngineSample s;
  s.task = task;
  s.routed = routed;
  s.executed = routed ? 100 : 0;
  s.occupancy = occupancy;
  s.hot_windows = hot_windows;
  return s;
}

TEST(ElasticPolicyTest, IsHotHonoursEachEnabledTrigger) {
  Policy policy;
  policy.p99_target_micros = 1000;
  policy.capacity_high = 0.9;
  policy.occupancy_high = 0.75;
  policy.shed_rate_threshold = 0.01;

  EngineSample cool;
  cool.executed = 10;
  EXPECT_FALSE(elastic::IsHot(cool, policy));

  EngineSample p99 = cool;
  p99.p99_micros = 1500;
  EXPECT_TRUE(elastic::IsHot(p99, policy));

  EngineSample saturated = cool;
  saturated.capacity = 0.95;
  EXPECT_TRUE(elastic::IsHot(saturated, policy));

  EngineSample queued = cool;
  queued.occupancy = 0.8;
  EXPECT_TRUE(elastic::IsHot(queued, policy));

  EngineSample shedding = cool;
  shedding.shed_rate = 0.5;
  EXPECT_TRUE(elastic::IsHot(shedding, policy));

  // A disabled trigger (0) never fires: p99 alone with the target off.
  Policy off = policy;
  off.p99_target_micros = 0;
  EXPECT_FALSE(elastic::IsHot(p99, off));
}

TEST(ElasticPolicyTest, HotScoreIsWorstRatio) {
  Policy policy = OccupancyOnlyPolicy(0.5);
  EngineSample s = MakeSample(0, true, 1.0, 0);
  EXPECT_DOUBLE_EQ(elastic::HotScore(s, policy), 2.0);
  policy.occupancy_high = 0;  // nothing enabled
  EXPECT_DOUBLE_EQ(elastic::HotScore(s, policy), 0.0);
}

TEST(ElasticPolicyTest, DecideMigrationPicksHottestSourceAndIdleStandby) {
  Policy policy = OccupancyOnlyPolicy(0.5);
  std::vector<EngineSample> samples = {
      MakeSample(0, true, 0.8, 2),   // hot, streak long enough
      MakeSample(1, true, 0.9, 1),   // hotter but streak too short
      MakeSample(2, false, 0.6, 1),  // standby but currently hot itself
      MakeSample(3, false, 0.0, 0),  // the idle standby
  };
  Decision d = elastic::DecideMigration(samples, policy);
  EXPECT_TRUE(d.migrate);
  EXPECT_EQ(d.from_task, 0);
  EXPECT_EQ(d.to_task, 3);
  EXPECT_FALSE(d.reason.empty());
}

TEST(ElasticPolicyTest, DecideMigrationPrefersLowerPredictedLatencyTarget) {
  Policy policy = OccupancyOnlyPolicy(0.5);
  std::vector<EngineSample> samples = {
      MakeSample(0, true, 0.9, 3),
      MakeSample(1, false, 0.0, 0),
      MakeSample(2, false, 0.0, 0),
  };
  samples[1].predicted_latency_micros = 900;
  samples[2].predicted_latency_micros = 300;
  Decision d = elastic::DecideMigration(samples, policy);
  EXPECT_TRUE(d.migrate);
  EXPECT_EQ(d.to_task, 2);
}

TEST(ElasticPolicyTest, DecideMigrationDeclinesWithoutStreakOrStandby) {
  Policy policy = OccupancyOnlyPolicy(0.5);

  // Hot, but the streak has not held for min_hot_windows yet.
  std::vector<EngineSample> young = {MakeSample(0, true, 0.9, 1),
                                     MakeSample(1, false, 0.0, 0)};
  Decision d1 = elastic::DecideMigration(young, policy);
  EXPECT_FALSE(d1.migrate);

  // Streak fine, but every engine already takes traffic.
  std::vector<EngineSample> busy = {MakeSample(0, true, 0.9, 5),
                                    MakeSample(1, true, 0.1, 0)};
  Decision d2 = elastic::DecideMigration(busy, policy);
  EXPECT_FALSE(d2.migrate);
  EXPECT_FALSE(d2.reason.empty());

  // Nothing hot at all.
  std::vector<EngineSample> calm = {MakeSample(0, true, 0.1, 0),
                                    MakeSample(1, false, 0.0, 0)};
  EXPECT_FALSE(elastic::DecideMigration(calm, policy).migrate);
}

// ---------------------------------------------------------------------------
// RollingRefit: the live Function-1 recalibration loop.
// ---------------------------------------------------------------------------

TEST(RollingRefitTest, RecalibratesFunctionOneFromWindows) {
  model::RollingRefit::Options options;
  options.min_measurements = 8;
  model::RollingRefit refit{options};
  model::LatencyModel model = model::LatencyModel::Default();

  // Synthetic truth: latency = 7 + 2*l + 5*t, observed over distinct rule
  // configurations — enough independent points for the quadratic basis.
  for (int l = 1; l <= 4; ++l) {
    for (int t = 0; t <= 2; ++t) {
      model::WindowMeasurement m;
      m.window_length = l;
      m.num_thresholds = t;
      m.avg_latency_micros = 7.0 + 2.0 * l + 5.0 * t;
      m.executed = 100;
      refit.Observe(m);
    }
  }
  EXPECT_EQ(refit.size(), 12u);
  EXPECT_TRUE(refit.MaybeRefit(&model));
  EXPECT_EQ(refit.refits(), 1u);
  EXPECT_NEAR(model.SingleRuleLatency(3, 2), 7.0 + 6.0 + 10.0, 0.5);

  // No new executions arrived: the gate holds, no second solve.
  EXPECT_FALSE(refit.MaybeRefit(&model));
}

TEST(RollingRefitTest, IgnoresEmptyWindowsAndRespectsMinimum) {
  model::RollingRefit refit;
  model::LatencyModel model = model::LatencyModel::Default();
  model::WindowMeasurement idle;
  idle.executed = 0;
  refit.Observe(idle);
  EXPECT_EQ(refit.size(), 0u);

  model::WindowMeasurement one;
  one.executed = 5;
  one.avg_latency_micros = 10;
  refit.Observe(one);
  EXPECT_FALSE(refit.MaybeRefit(&model));  // below min_measurements
  EXPECT_EQ(refit.refits(), 0u);
}

// ---------------------------------------------------------------------------
// Migration test rig: source spout -> LiveRouter splitter -> counting engine
// (2 tasks on 2 executors; the router initially sends every region to task 0,
// task 1 is the standby) -> recording sink.
// ---------------------------------------------------------------------------

/// Emits (region, seq) tuples, seq 1..total, but never past the shared
/// `allowed` watermark — the test thread holds the stream at a barrier,
/// migrates, then releases the rest. Emission is pipelined (does not wait
/// for acks), so with acking enabled many trees are in flight at once.
class GatedSpout : public Spout {
 public:
  struct Control {
    std::atomic<size_t> allowed{0};
    size_t total = 0;
    /// Pacing: sleep this long before each emission (0 = free-run). A paced
    /// stream keeps arriving after a mid-stream migration, so the standby
    /// actually receives traffic.
    MicrosT interval_micros = 0;
  };
  explicit GatedSpout(std::shared_ptr<Control> control)
      : control_(std::move(control)) {}

  bool NextTuple(Collector* collector) override {
    if (next_ >= control_->total) return false;
    if (next_ >= control_->allowed.load(std::memory_order_acquire)) {
      return true;  // gated: idle, not exhausted
    }
    if (control_->interval_micros > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(control_->interval_micros));
    }
    uint64_t seq = next_ + 1;
    collector->EmitRooted(seq, {Value(int64_t{static_cast<int64_t>(next_) % 4 +
                                              1}),
                                Value(static_cast<int64_t>(seq))});
    ++next_;
    return true;
  }

 private:
  std::shared_ptr<Control> control_;
  size_t next_ = 0;
};

/// Counts every tuple it executes and emits (seq, running_count, task_index).
/// The count is the migrated state: after a task 0 -> task 1 migration the
/// sequence must continue unbroken at task 1. RestoreState can be poisoned
/// (shared counter) to exercise the rollback path.
class CountingEngineBolt : public Bolt, public Snapshottable {
 public:
  struct Control {
    std::atomic<int> fail_restores{0};  // > 0: next restores fail (and burn 1)
    std::atomic<int> restores{0};
  };
  explicit CountingEngineBolt(std::shared_ptr<Control> control)
      : control_(std::move(control)) {}

  void Prepare(const TaskContext& context) override {
    task_index_ = context.task_index;
    count_ = 0;
  }
  void Execute(const Tuple& input, Collector* collector) override {
    ++count_;
    collector->Emit({input.Get(1), Value(static_cast<int64_t>(count_)),
                     Value(static_cast<int64_t>(task_index_))});
  }
  Status SnapshotState(std::string* out) const override {
    out->assign(std::to_string(count_));
    return Status::OK();
  }
  Status RestoreState(const std::string& bytes) override {
    control_->restores.fetch_add(1);
    if (control_->fail_restores.load() > 0) {
      control_->fail_restores.fetch_sub(1);
      count_ = 0;  // contract: failed restore leaves a clean bolt
      return Status::Internal("injected restore failure");
    }
    count_ = static_cast<uint64_t>(std::stoull(bytes));
    return Status::OK();
  }

 private:
  std::shared_ptr<Control> control_;
  uint64_t count_ = 0;
  int task_index_ = 0;
};

/// Records (count, task) per seq. Snapshottable so acking runs checkpoint it
/// (deferred-ack discipline); optionally sleeps per tuple so trees outlive
/// the ack timeout and the runtime replays them.
class RecordingSink : public Bolt, public Snapshottable {
 public:
  struct Sink {
    Mutex mutex;
    std::map<int64_t, std::vector<std::pair<int64_t, int64_t>>> rows
        GUARDED_BY(mutex);

    size_t Size() {
      MutexLock lock(mutex);
      return rows.size();
    }
  };
  RecordingSink(std::shared_ptr<Sink> sink, MicrosT delay_micros)
      : sink_(std::move(sink)), delay_micros_(delay_micros) {}

  void Execute(const Tuple& input, Collector*) override {
    if (delay_micros_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_micros_));
    }
    MutexLock lock(sink_->mutex);
    sink_->rows[input.Get(0).AsInt()].push_back(
        {input.Get(1).AsInt(), input.Get(2).AsInt()});
  }
  Status SnapshotState(std::string* out) const override {
    out->assign(1, '\x01');
    return Status::OK();
  }
  Status RestoreState(const std::string&) override { return Status::OK(); }

 private:
  std::shared_ptr<Sink> sink_;
  MicrosT delay_micros_;
};

std::unique_ptr<core::LiveRouter> MakeAllToTaskZeroRouter() {
  core::SpatialRouter::GroupingRoute route;
  route.location_field = "region";
  for (int64_t region = 1; region <= 4; ++region) {
    route.region_to_engine[region] = 0;
  }
  route.fallback_engines = {0};
  return std::make_unique<core::LiveRouter>(core::SpatialRouter({route}));
}

struct MigrationRig {
  std::shared_ptr<GatedSpout::Control> source;
  std::shared_ptr<CountingEngineBolt::Control> engine;
  std::shared_ptr<RecordingSink::Sink> sink;

  dsps::Topology Build(MicrosT sink_delay_micros) {
    TopologyBuilder builder;
    auto source_control = source;
    builder.SetSpout("source",
                     [source_control] {
                       return std::make_unique<GatedSpout>(source_control);
                     },
                     Fields({"region", "seq"}));
    return BuildFrom(&builder, sink_delay_micros);
  }

  dsps::Topology BuildFrom(TopologyBuilder* builder, MicrosT sink_delay_micros,
                           core::LiveRouter* router = nullptr) {
    core::LiveRouter* r = router != nullptr ? router : router_.get();
    builder
        ->SetBolt("split",
                  [r] {
                    return std::make_unique<traffic::SplitterBolt>(
                        r->AsFunction());
                  },
                  Fields({"region", "seq"}))
        .GlobalGrouping("source");
    auto engine_control = engine;
    builder
        ->SetBolt("engine",
                  [engine_control] {
                    return std::make_unique<CountingEngineBolt>(engine_control);
                  },
                  Fields({"seq", "count", "task"}), 2)
        .DirectGrouping("split");
    auto sink_control = sink;
    builder
        ->SetBolt("sink",
                  [sink_control, sink_delay_micros] {
                    return std::make_unique<RecordingSink>(sink_control,
                                                           sink_delay_micros);
                  },
                  Fields({}))
        .GlobalGrouping("engine");
    auto topology = builder->Build();
    TMS_CHECK(topology.ok()) << topology.status().ToString();
    return std::move(*topology);
  }

  core::LiveRouter* router() { return router_.get(); }

  std::unique_ptr<core::LiveRouter> router_ = MakeAllToTaskZeroRouter();
};

MigrationRig MakeRig(size_t total_messages) {
  MigrationRig rig;
  rig.source = std::make_shared<GatedSpout::Control>();
  rig.source->total = total_messages;
  rig.engine = std::make_shared<CountingEngineBolt::Control>();
  rig.sink = std::make_shared<RecordingSink::Sink>();
  return rig;
}

LocalRuntime::MigrationRequest EngineMove(core::LiveRouter* router, int from,
                                          int to) {
  LocalRuntime::MigrationRequest request;
  request.component = "engine";
  request.from_task = from;
  request.to_task = to;
  auto before = router->Snapshot();
  request.flip = [router, from, to] {
    router->MoveEngine(from, to);
    return Status::OK();
  };
  request.unflip = [router, before] { router->Restore(before); };
  return request;
}

void WaitForSinkRows(RecordingSink::Sink* sink, size_t at_least) {
  for (int i = 0; i < 2000 && sink->Size() < at_least; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(sink->Size(), at_least);
}

/// Every seq 1..total recorded, each exactly once, with count == seq (state
/// continuity and effectively-once in one assertion). Returns the task that
/// executed each seq.
std::map<int64_t, int64_t> CheckExactlyOnceCounts(RecordingSink::Sink* sink,
                                                  size_t total) {
  std::map<int64_t, int64_t> task_of;
  MutexLock lock(sink->mutex);
  EXPECT_EQ(sink->rows.size(), total);
  for (auto& [seq, rows] : sink->rows) {
    EXPECT_EQ(rows.size(), 1u) << "seq " << seq << " recorded twice";
    if (rows.empty()) continue;
    EXPECT_EQ(rows[0].first, seq) << "count discontinuity at seq " << seq;
    task_of[seq] = rows[0].second;
  }
  return task_of;
}

TEST(TaskMigrationTest, MovesStateAndRoutingToStandby) {
  constexpr size_t kTotal = 40;
  constexpr size_t kWaveOne = 20;
  MigrationRig rig = MakeRig(kTotal);

  LocalRuntime::Options options;
  options.enable_migration = true;
  LocalRuntime runtime(rig.Build(/*sink_delay_micros=*/0), options);
  ASSERT_TRUE(runtime.Start().ok());

  rig.source->allowed.store(kWaveOne, std::memory_order_release);
  WaitForSinkRows(rig.sink.get(), kWaveOne);

  uint64_t version_before = rig.router()->version();
  Status migrated = runtime.MigrateTask(EngineMove(rig.router(), 0, 1));
  EXPECT_TRUE(migrated.ok()) << migrated.ToString();
  EXPECT_GT(rig.router()->version(), version_before);

  rig.source->allowed.store(kTotal, std::memory_order_release);
  runtime.AwaitCompletion();

  auto task_of = CheckExactlyOnceCounts(rig.sink.get(), kTotal);
  for (size_t seq = 1; seq <= kWaveOne; ++seq) {
    EXPECT_EQ(task_of[static_cast<int64_t>(seq)], 0);
  }
  for (size_t seq = kWaveOne + 1; seq <= kTotal; ++seq) {
    EXPECT_EQ(task_of[static_cast<int64_t>(seq)], 1);
  }

  auto totals = runtime.metrics()->Totals("engine");
  EXPECT_EQ(totals.task_migrations, 1u);
  EXPECT_EQ(totals.migration_failures, 0u);
  EXPECT_EQ(runtime.metrics()->TotalsForTask("engine", 0).executed, kWaveOne);
  EXPECT_EQ(runtime.metrics()->TotalsForTask("engine", 1).executed,
            kTotal - kWaveOne);
  EXPECT_EQ(rig.engine->restores.load(), 1);
}

TEST(TaskMigrationTest, MigrationDisabledIsRejected) {
  MigrationRig rig = MakeRig(4);
  rig.source->allowed.store(4);
  LocalRuntime runtime(rig.Build(0), LocalRuntime::Options{});
  ASSERT_TRUE(runtime.Start().ok());
  Status s = runtime.MigrateTask(EngineMove(rig.router(), 0, 1));
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  runtime.AwaitCompletion();
  // Seed behaviour: the stream completes untouched on task 0.
  auto task_of = CheckExactlyOnceCounts(rig.sink.get(), 4);
  for (auto& [seq, task] : task_of) EXPECT_EQ(task, 0);
  EXPECT_EQ(runtime.metrics()->Totals("engine").task_migrations, 0u);
}

TEST(TaskMigrationTest, InvalidRequestsAreRejected) {
  MigrationRig rig = MakeRig(2);
  rig.source->allowed.store(2);
  LocalRuntime::Options options;
  options.enable_migration = true;
  LocalRuntime runtime(rig.Build(0), options);
  ASSERT_TRUE(runtime.Start().ok());

  LocalRuntime::MigrationRequest request = EngineMove(rig.router(), 0, 0);
  EXPECT_EQ(runtime.MigrateTask(request).code(), StatusCode::kInvalidArgument);
  request = EngineMove(rig.router(), 0, 7);
  EXPECT_EQ(runtime.MigrateTask(request).code(), StatusCode::kInvalidArgument);
  request = EngineMove(rig.router(), 0, 1);
  request.component = "nope";
  EXPECT_EQ(runtime.MigrateTask(request).code(), StatusCode::kNotFound);
  request.component = "source";
  request.from_task = 0;
  request.to_task = 0;
  EXPECT_FALSE(runtime.MigrateTask(request).ok());

  runtime.AwaitCompletion();
}

// Satellite 2 regression: the dedup ledger must travel inside the migrated
// TCK1 container. The sink is slow and the ack timeout short, so wave-1
// trees replay; the stream is held while task 0 migrates to task 1, then the
// replays (and wave 2) land on the target. If the target restored state
// without the ledger, a replayed duplicate would re-execute there and the
// count sequence would fork.
TEST(TaskMigrationTest, DedupLedgerTravelsWithMigratedState) {
  constexpr size_t kTotal = 36;
  constexpr size_t kWaveOne = 18;
  MigrationRig rig = MakeRig(kTotal);

  reliability::InMemoryStateStore store;
  LocalRuntime::Options options;
  options.enable_migration = true;
  options.enable_acking = true;
  options.ack_timeout_micros = 30'000;
  options.max_replays = 100;
  options.supervisor_interval_micros = 1'000;
  options.enable_checkpointing = true;
  options.checkpoint_interval_micros = 3'000'000;  // only forced checkpoints
  options.state_store = &store;
  options.enable_replay_dedup = true;

  LocalRuntime runtime(rig.Build(/*sink_delay_micros=*/5'000), options);
  ASSERT_TRUE(runtime.Start().ok());

  rig.source->allowed.store(kWaveOne, std::memory_order_release);
  // Wait until the engine executed all of wave 1; the slow sink still holds
  // most trees open past the ack timeout, so replays are already flying.
  for (int i = 0; i < 2000; ++i) {
    if (runtime.metrics()->TotalsForTask("engine", 0).executed >= kWaveOne) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(runtime.metrics()->TotalsForTask("engine", 0).executed, kWaveOne);

  Status migrated = runtime.MigrateTask(EngineMove(rig.router(), 0, 1));
  EXPECT_TRUE(migrated.ok()) << migrated.ToString();

  rig.source->allowed.store(kTotal, std::memory_order_release);
  runtime.AwaitCompletion();

  auto task_of = CheckExactlyOnceCounts(rig.sink.get(), kTotal);
  EXPECT_EQ(task_of[1], 0);
  EXPECT_EQ(task_of[static_cast<int64_t>(kTotal)], 1);

  auto source_totals = runtime.metrics()->Totals("source");
  auto engine_totals = runtime.metrics()->Totals("engine");
  EXPECT_GE(source_totals.replayed, 1u) << "rig produced no replays";
  EXPECT_GE(engine_totals.deduped, 1u);
  EXPECT_EQ(engine_totals.task_migrations, 1u);
  // Exactly-once at the engine despite the replays: one execution per seq.
  EXPECT_EQ(engine_totals.executed, kTotal);
}

// Satellite 3 regression: a failed restore on the target rolls the routing
// flip back and the source keeps processing with its state untouched — the
// state line never degrades to clean.
TEST(TaskMigrationTest, RestoreFailureRollsBackToSource) {
  constexpr size_t kTotal = 30;
  constexpr size_t kWaveOne = 15;
  MigrationRig rig = MakeRig(kTotal);

  LocalRuntime::Options options;
  options.enable_migration = true;
  LocalRuntime runtime(rig.Build(0), options);
  ASSERT_TRUE(runtime.Start().ok());

  rig.source->allowed.store(kWaveOne, std::memory_order_release);
  WaitForSinkRows(rig.sink.get(), kWaveOne);

  auto before = rig.router()->Snapshot();
  rig.engine->fail_restores.store(1);
  Status migrated = runtime.MigrateTask(EngineMove(rig.router(), 0, 1));
  EXPECT_FALSE(migrated.ok());
  EXPECT_EQ(rig.engine->fail_restores.load(), 0);  // the poison was consumed

  // Routing rolled back: every region points at task 0 again.
  auto after = rig.router()->Snapshot();
  ASSERT_EQ(after->routes().size(), 1u);
  for (const auto& [region, engine] : after->routes()[0].region_to_engine) {
    EXPECT_EQ(engine, 0) << "region " << region << " left pointing away";
  }
  EXPECT_EQ(after->routes()[0].fallback_engines,
            before->routes()[0].fallback_engines);

  rig.source->allowed.store(kTotal, std::memory_order_release);
  runtime.AwaitCompletion();

  // The source stayed authoritative: counts continue at task 0, unbroken.
  auto task_of = CheckExactlyOnceCounts(rig.sink.get(), kTotal);
  for (auto& [seq, task] : task_of) EXPECT_EQ(task, 0);

  auto totals = runtime.metrics()->Totals("engine");
  EXPECT_EQ(totals.task_migrations, 0u);
  EXPECT_EQ(totals.migration_failures, 1u);
  EXPECT_EQ(runtime.metrics()->TotalsForTask("engine", 0).executed, kTotal);
}

// ---------------------------------------------------------------------------
// Controller end-to-end: a saturated engine task trips the policy after the
// configured streak and the controller migrates it onto the standby.
// ---------------------------------------------------------------------------

/// Counting engine that also burns wall-clock per tuple, so the execute-p99
/// trigger has something to see.
class SlowCountingBolt : public CountingEngineBolt {
 public:
  SlowCountingBolt(std::shared_ptr<Control> control, MicrosT delay_micros)
      : CountingEngineBolt(std::move(control)), delay_micros_(delay_micros) {}
  void Execute(const Tuple& input, Collector* collector) override {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_micros_));
    CountingEngineBolt::Execute(input, collector);
  }

 private:
  MicrosT delay_micros_;
};

TEST(ElasticControllerTest, DetectsHotEngineAndMigrates) {
  constexpr size_t kTotal = 300;
  MigrationRig rig = MakeRig(kTotal);
  rig.source->allowed.store(kTotal);   // whole stream released...
  rig.source->interval_micros = 1'000;  // ...but paced, so it outlives the
                                        // controller's reaction time

  TopologyBuilder builder;
  auto source_control = rig.source;
  builder.SetSpout("source",
                   [source_control] {
                     return std::make_unique<GatedSpout>(source_control);
                   },
                   Fields({"region", "seq"}));
  auto engine_control = rig.engine;
  // Override the rig's engine with the slow variant before wiring the rest.
  dsps::Topology topology = [&] {
    builder
        .SetBolt("split",
                 [&rig] {
                   return std::make_unique<traffic::SplitterBolt>(
                       rig.router()->AsFunction());
                 },
                 Fields({"region", "seq"}))
        .GlobalGrouping("source");
    builder
        .SetBolt("engine",
                 [engine_control] {
                   return std::make_unique<SlowCountingBolt>(engine_control,
                                                             2'000);
                 },
                 Fields({"seq", "count", "task"}), 2)
        .DirectGrouping("split");
    auto sink_control = rig.sink;
    builder
        .SetBolt("sink",
                 [sink_control] {
                   return std::make_unique<RecordingSink>(sink_control, 0);
                 },
                 Fields({}))
        .GlobalGrouping("engine");
    auto built = builder.Build();
    TMS_CHECK(built.ok()) << built.status().ToString();
    return std::move(*built);
  }();

  LocalRuntime::Options options;
  options.enable_migration = true;
  LocalRuntime runtime(std::move(topology), options);
  ASSERT_TRUE(runtime.Start().ok());

  elastic::ElasticController::Options controller_options;
  controller_options.component = "engine";
  controller_options.policy.p99_target_micros = 500;  // 2ms/tuple trips this
  controller_options.policy.capacity_high = 0;
  controller_options.policy.occupancy_high = 0;
  controller_options.policy.min_hot_windows = 2;
  // Long cooldown: exactly one migration even though the standby, once
  // loaded, will look hot itself.
  controller_options.policy.cooldown_micros = 60'000'000;
  controller_options.engine_rules = {{{/*window_length=*/3.0,
                                       /*num_thresholds=*/1.0}},
                                     {{3.0, 1.0}}};
  elastic::ElasticController controller(&runtime, rig.router(),
                                        controller_options);

  // Manual ticks (the deterministic unit surface): baseline window first,
  // then decision windows until the migration fires.
  ASSERT_TRUE(controller.Tick().ok());
  bool migrated = false;
  for (int i = 0; i < 100 && !migrated; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(controller.Tick().ok());
    migrated = controller.stats().migrations > 0;
  }
  EXPECT_TRUE(migrated) << "controller never migrated the hot engine";

  runtime.AwaitCompletion();

  auto stats = controller.stats();
  EXPECT_EQ(stats.migrations, 1u);
  EXPECT_EQ(stats.last_from_task, 0);
  EXPECT_EQ(stats.last_to_task, 1);
  EXPECT_GE(stats.ticks, 3u);

  auto task_of = CheckExactlyOnceCounts(rig.sink.get(), kTotal);
  EXPECT_EQ(runtime.metrics()->Totals("engine").task_migrations, 1u);
  EXPECT_GT(runtime.metrics()->TotalsForTask("engine", 1).executed, 0u);
  // The hot-engine signals the controller acted on are exposed for tests.
  ASSERT_EQ(controller.last_samples().size(), 2u);
}

TEST(ElasticControllerTest, StartStopBackgroundLoopIsIdempotent) {
  MigrationRig rig = MakeRig(8);
  rig.source->allowed.store(8);
  LocalRuntime::Options options;
  options.enable_migration = true;
  LocalRuntime runtime(rig.Build(0), options);
  ASSERT_TRUE(runtime.Start().ok());

  elastic::ElasticController::Options controller_options;
  controller_options.component = "engine";
  controller_options.tick_interval_micros = 5'000;
  elastic::ElasticController controller(&runtime, rig.router(),
                                        controller_options);
  ASSERT_TRUE(controller.Start().ok());
  EXPECT_EQ(controller.Start().code(), StatusCode::kFailedPrecondition);
  for (int i = 0; i < 200 && controller.stats().ticks < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(controller.stats().ticks, 2u);
  controller.Stop();
  controller.Stop();
  runtime.AwaitCompletion();
}

}  // namespace
}  // namespace insight
