// TMS_CHECK / TMS_DCHECK behavior: silent pass-through on success, abort
// with file:line, the failed expression, operand values, and any streamed
// context on failure.
//
// This TU forces DCHECKs on regardless of build type (TMS_FORCE_DCHECK is
// honored per translation unit), so the DCHECK death tests run in every CI
// configuration — including RelWithDebInfo, where NDEBUG would otherwise
// compile them out.

#define TMS_FORCE_DCHECK 1
#include "common/check.h"

#include <gtest/gtest.h>

static_assert(TMS_DCHECK_ENABLED == 1,
              "TMS_FORCE_DCHECK must enable DCHECKs in this TU");

namespace insight {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  TMS_CHECK(true) << "never formatted";
  TMS_CHECK_EQ(2 + 2, 4);
  TMS_CHECK_NE(1, 2);
  TMS_CHECK_LT(1, 2);
  TMS_CHECK_LE(2, 2);
  TMS_CHECK_GT(2, 1);
  TMS_CHECK_GE(2, 2);
  TMS_DCHECK(true) << "never formatted";
  TMS_DCHECK_EQ(0, 0);
}

TEST(CheckTest, ForcedDCheckEvaluatesItsCondition) {
  int evaluations = 0;
  TMS_DCHECK([&] {
    ++evaluations;
    return true;
  }());
  EXPECT_EQ(evaluations, 1);
}

TEST(CheckTest, ChecksComposeWithControlFlow) {
  // The macros must behave as a single statement: an un-braced if/else
  // around them must not capture the else or change scoping.
  bool reached_else = false;
  if (false)
    TMS_CHECK(true);
  else
    reached_else = true;
  EXPECT_TRUE(reached_else);

  bool reached_else_d = false;
  if (false)
    TMS_DCHECK(true);
  else
    reached_else_d = true;
  EXPECT_TRUE(reached_else_d);
}

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, CheckPrintsExpressionAndStreamedContext) {
  EXPECT_DEATH(TMS_CHECK(1 == 2) << "while testing " << 42,
               "check failed: 1 == 2.*while testing 42");
}

TEST(CheckDeathTest, CheckEqPrintsBothOperands) {
  int flushed = 3;
  int staged = 5;
  EXPECT_DEATH(TMS_CHECK_EQ(flushed, staged) << "outbox out of balance",
               "flushed == staged.*\\(3 vs 5\\).*outbox out of balance");
}

TEST(CheckDeathTest, DCheckFiresWhenForced) {
  EXPECT_DEATH(TMS_DCHECK(false) << "dchecked invariant broken",
               "dchecked invariant broken");
}

TEST(CheckDeathTest, DCheckGePrintsOperandsOnUnderflow) {
  size_t prev = 0;
  EXPECT_DEATH(TMS_DCHECK_GE(prev, size_t{1}) << "pending count underflow",
               "\\(0 vs 1\\).*pending count underflow");
}

}  // namespace
}  // namespace insight
