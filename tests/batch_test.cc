#include <gtest/gtest.h>

#include <set>

#include "batch/mapreduce.h"
#include "batch/statistics_job.h"
#include "common/strings.h"
#include "dfs/mini_dfs.h"

namespace insight {
namespace batch {
namespace {

// ---------------------------------------------------------------------------
// MiniDfs
// ---------------------------------------------------------------------------

TEST(MiniDfsTest, AppendReadRoundTrip) {
  dfs::MiniDfs fs;
  ASSERT_TRUE(fs.Append("/a/b.txt", "hello ").ok());
  ASSERT_TRUE(fs.Append("/a/b.txt", "world").ok());
  EXPECT_EQ(*fs.ReadAll("/a/b.txt"), "hello world");
  EXPECT_EQ(*fs.FileSize("/a/b.txt"), 11u);
  EXPECT_TRUE(fs.Exists("/a/b.txt"));
  EXPECT_FALSE(fs.Exists("/a/c.txt"));
}

TEST(MiniDfsTest, ChunksSplitAtBoundary) {
  dfs::MiniDfs::Options options;
  options.chunk_size = 10;
  options.replication = 2;
  options.num_datanodes = 3;
  dfs::MiniDfs fs(options);
  ASSERT_TRUE(fs.Append("/f", std::string(25, 'x')).ok());
  auto chunks = fs.GetChunks("/f");
  ASSERT_TRUE(chunks.ok());
  ASSERT_EQ(chunks->size(), 3u);
  EXPECT_EQ((*chunks)[0].size, 10u);
  EXPECT_EQ((*chunks)[2].size, 5u);
  for (const auto& chunk : *chunks) {
    EXPECT_EQ(chunk.replica_nodes.size(), 2u);
    for (int node : chunk.replica_nodes) {
      EXPECT_GE(node, 0);
      EXPECT_LT(node, 3);
    }
  }
  EXPECT_EQ(*fs.ReadChunk("/f", 2), std::string(5, 'x'));
  EXPECT_FALSE(fs.ReadChunk("/f", 3).ok());
}

TEST(MiniDfsTest, ReplicasSpreadAcrossDatanodes) {
  dfs::MiniDfs::Options options;
  options.chunk_size = 1;
  options.replication = 3;
  options.num_datanodes = 5;
  dfs::MiniDfs fs(options);
  ASSERT_TRUE(fs.Append("/f", "abcdefgh").ok());
  std::set<int> nodes_used;
  auto chunks = fs.GetChunks("/f");
  ASSERT_TRUE(chunks.ok());
  for (const auto& chunk : *chunks) {
    std::set<int> replica_set(chunk.replica_nodes.begin(),
                              chunk.replica_nodes.end());
    EXPECT_EQ(replica_set.size(), 3u) << "replicas must be distinct";
    nodes_used.insert(replica_set.begin(), replica_set.end());
  }
  EXPECT_EQ(nodes_used.size(), 5u) << "round-robin must use all datanodes";
}

TEST(MiniDfsTest, ListAndDeleteRecursive) {
  dfs::MiniDfs fs;
  ASSERT_TRUE(fs.Append("/jobs/out/part-r-00000", "a").ok());
  ASSERT_TRUE(fs.Append("/jobs/out/part-r-00001", "b").ok());
  ASSERT_TRUE(fs.Append("/other", "c").ok());
  EXPECT_EQ(fs.List("/jobs/out/").size(), 2u);
  EXPECT_EQ(fs.DeleteRecursive("/jobs/out/"), 2u);
  EXPECT_EQ(fs.List("/jobs/out/").size(), 0u);
  EXPECT_TRUE(fs.Exists("/other"));
}

TEST(MiniDfsTest, CreateSemantics) {
  dfs::MiniDfs fs;
  EXPECT_TRUE(fs.Create("/f").ok());
  EXPECT_EQ(fs.Create("/f").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(*fs.FileSize("/f"), 0u);
  EXPECT_FALSE(fs.ReadAll("/nope").ok());
  EXPECT_FALSE(fs.Delete("/nope").ok());
}

// ---------------------------------------------------------------------------
// MapReduce
// ---------------------------------------------------------------------------

TEST(MapReduceTest, WordCount) {
  dfs::MiniDfs fs;
  ASSERT_TRUE(fs.Append("/in", "a b a\nc a b\n").ok());
  MapReduceJob::Spec spec;
  spec.input_paths = {"/in"};
  spec.output_dir = "/out";
  spec.num_reducers = 3;
  spec.map = [](const std::string& record, Emitter* emitter) {
    for (const std::string& word : SplitWhitespace(record)) {
      emitter->Emit(word, "1");
    }
  };
  spec.reduce = [](const std::string& key,
                   const std::vector<std::string>& values, Emitter* emitter) {
    emitter->Emit(key, std::to_string(values.size()));
  };
  auto counters = MapReduceJob::Run(&fs, spec);
  ASSERT_TRUE(counters.ok()) << counters.status().ToString();
  EXPECT_EQ(counters->input_records, 2u);
  EXPECT_EQ(counters->map_output_records, 6u);
  EXPECT_EQ(counters->reduce_groups, 3u);

  auto output = ReadJobOutput(fs, "/out");
  ASSERT_TRUE(output.ok());
  std::map<std::string, std::string> result(output->begin(), output->end());
  EXPECT_EQ(result["a"], "3");
  EXPECT_EQ(result["b"], "2");
  EXPECT_EQ(result["c"], "1");
}

TEST(MapReduceTest, RecordSpanningChunkBoundaryIsHealed) {
  dfs::MiniDfs::Options options;
  options.chunk_size = 8;  // tiny chunks cut lines in half
  dfs::MiniDfs fs(options);
  ASSERT_TRUE(fs.Append("/in", "alpha beta\ngamma delta epsilon\nzeta\n").ok());
  ASSERT_GT(fs.GetChunks("/in")->size(), 2u);

  MapReduceJob::Spec spec;
  spec.input_paths = {"/in"};
  spec.output_dir = "/out";
  spec.num_reducers = 2;
  spec.map = [](const std::string& record, Emitter* emitter) {
    emitter->Emit(record, "1");  // key = whole record
  };
  spec.reduce = [](const std::string& key,
                   const std::vector<std::string>& values, Emitter* emitter) {
    emitter->Emit(key, std::to_string(values.size()));
  };
  auto counters = MapReduceJob::Run(&fs, spec);
  ASSERT_TRUE(counters.ok());
  // Every record must arrive exactly once and intact.
  auto output = ReadJobOutput(fs, "/out");
  ASSERT_TRUE(output.ok());
  std::map<std::string, std::string> result(output->begin(), output->end());
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result.at("alpha beta"), "1");
  EXPECT_EQ(result.at("gamma delta epsilon"), "1");
  EXPECT_EQ(result.at("zeta"), "1");
}

TEST(MapReduceTest, CombinerReducesShuffleVolume) {
  dfs::MiniDfs fs;
  std::string data;
  for (int i = 0; i < 100; ++i) data += "k v\n";
  ASSERT_TRUE(fs.Append("/in", data).ok());
  MapReduceJob::Spec spec;
  spec.input_paths = {"/in"};
  spec.output_dir = "/out";
  spec.map = [](const std::string&, Emitter* e) { e->Emit("k", "1"); };
  spec.combine = [](const std::string& key,
                    const std::vector<std::string>& values, Emitter* e) {
    long long total = 0;
    for (const auto& v : values) total += *ParseInt(v);
    e->Emit(key, std::to_string(total));
  };
  spec.reduce = spec.combine;
  auto counters = MapReduceJob::Run(&fs, spec);
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->map_output_records, 100u);
  EXPECT_LT(counters->combine_output_records, 100u);
  auto output = ReadJobOutput(fs, "/out");
  ASSERT_EQ(output->size(), 1u);
  EXPECT_EQ((*output)[0].second, "100");
}

TEST(MapReduceTest, ValidatesSpec) {
  dfs::MiniDfs fs;
  MapReduceJob::Spec spec;
  EXPECT_FALSE(MapReduceJob::Run(&fs, spec).ok());  // no map/reduce
  spec.map = [](const std::string&, Emitter*) {};
  spec.reduce = [](const std::string&, const std::vector<std::string>&,
                   Emitter*) {};
  EXPECT_FALSE(MapReduceJob::Run(&fs, spec).ok());  // no inputs
  spec.input_paths = {"/missing"};
  EXPECT_EQ(MapReduceJob::Run(&fs, spec).status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Statistics job
// ---------------------------------------------------------------------------

TEST(StatisticsJobTest, ComputesMeanAndStdevPerGroup) {
  dfs::MiniDfs fs;
  // CSV: location(0), hour(1), dateType(2), delay(3).
  std::string rows;
  // Location 5, hour 8: delays 10, 20, 30 -> mean 20, stdev ~8.165.
  rows += "5,8,weekday,10\n5,8,weekday,20\n5,8,weekday,30\n";
  // Location 6, hour 8: constant 7 -> stdev 0.
  rows += "6,8,weekday,7\n6,8,weekday,7\n";
  // Weekend variant of location 5.
  rows += "5,8,weekend,100\n";
  ASSERT_TRUE(fs.Append("/traces", rows).ok());

  StatisticsJobConfig config;
  config.input_paths = {"/traces"};
  config.output_dir = "/stats";
  config.location_col = 0;
  config.hour_col = 1;
  config.date_type_col = 2;
  config.attribute_cols = {{"delay", 3}};
  auto counters = RunStatisticsJob(&fs, config);
  ASSERT_TRUE(counters.ok()) << counters.status().ToString();
  EXPECT_EQ(counters->reduce_groups, 3u);

  storage::TableStore store;
  auto loaded = LoadStatisticsIntoStore(fs, "/stats", &store);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 3u);

  auto t = storage::QueryThresholdFor(store, "delay", 1.0, 5, 8, "weekday");
  ASSERT_TRUE(t.ok());
  EXPECT_NEAR(*t, 20.0 + 8.16496580927726, 1e-6);
  auto constant = storage::QueryThresholdFor(store, "delay", 3.0, 6, 8, "weekday");
  ASSERT_TRUE(constant.ok());
  EXPECT_DOUBLE_EQ(*constant, 7.0);
}

TEST(StatisticsJobTest, ReloadTruncatesOldRows) {
  dfs::MiniDfs fs;
  ASSERT_TRUE(fs.Append("/traces", "1,8,weekday,10\n").ok());
  StatisticsJobConfig config;
  config.input_paths = {"/traces"};
  config.output_dir = "/stats";
  config.location_col = 0;
  config.hour_col = 1;
  config.date_type_col = 2;
  config.attribute_cols = {{"delay", 3}};
  storage::TableStore store;
  ASSERT_TRUE(RunStatisticsJob(&fs, config).ok());
  ASSERT_TRUE(LoadStatisticsIntoStore(fs, "/stats", &store).ok());
  ASSERT_TRUE(RunStatisticsJob(&fs, config).ok());
  ASSERT_TRUE(LoadStatisticsIntoStore(fs, "/stats", &store).ok());
  EXPECT_EQ(*store.RowCount("statistics_delay"), 1u);  // truncated, not doubled
}

TEST(StatisticsJobTest, SkipsMalformedRecords) {
  dfs::MiniDfs fs;
  ASSERT_TRUE(
      fs.Append("/traces", "1,8,weekday,10\ngarbage\n1,8,weekday,notanum\n")
          .ok());
  StatisticsJobConfig config;
  config.input_paths = {"/traces"};
  config.output_dir = "/stats";
  config.location_col = 0;
  config.hour_col = 1;
  config.date_type_col = 2;
  config.attribute_cols = {{"delay", 3}};
  auto counters = RunStatisticsJob(&fs, config);
  ASSERT_TRUE(counters.ok());
  storage::TableStore store;
  ASSERT_TRUE(LoadStatisticsIntoStore(fs, "/stats", &store).ok());
  auto all = store.SelectAll("statistics_delay");
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->rows.size(), 1u);
  EXPECT_EQ(all->rows[0][5].AsInt(), 1);  // only one valid sample counted
}

}  // namespace
}  // namespace batch
}  // namespace insight
