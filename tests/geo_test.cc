#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/bus_stops.h"
#include "geo/denclue.h"
#include "geo/latlon.h"
#include "geo/quadtree.h"

namespace insight {
namespace geo {
namespace {

// ---------------------------------------------------------------------------
// LatLon math
// ---------------------------------------------------------------------------

TEST(LatLonTest, HaversineKnownDistance) {
  // O'Connell Bridge to Heuston Station is roughly 2.6 km.
  LatLon bridge{53.3472, -6.2592};
  LatLon heuston{53.3464, -6.2921};
  double d = HaversineMeters(bridge, heuston);
  EXPECT_GT(d, 2000.0);
  EXPECT_LT(d, 2500.0);
  EXPECT_DOUBLE_EQ(HaversineMeters(bridge, bridge), 0.0);
}

TEST(LatLonTest, BearingCardinalDirections) {
  LatLon origin{53.35, -6.26};
  EXPECT_NEAR(BearingDegrees(origin, {53.36, -6.26}), 0.0, 1.0);    // north
  EXPECT_NEAR(BearingDegrees(origin, {53.35, -6.20}), 90.0, 1.0);   // east
  EXPECT_NEAR(BearingDegrees(origin, {53.34, -6.26}), 180.0, 1.0);  // south
  EXPECT_NEAR(BearingDegrees(origin, {53.35, -6.32}), 270.0, 1.0);  // west
}

TEST(LatLonTest, AngleDifferenceWraps) {
  EXPECT_DOUBLE_EQ(AngleDifference(350.0, 10.0), 20.0);
  EXPECT_DOUBLE_EQ(AngleDifference(90.0, 270.0), 180.0);
  EXPECT_DOUBLE_EQ(AngleDifference(45.0, 45.0), 0.0);
}

TEST(LatLonTest, ProjectionRoundTrip) {
  LocalProjection proj({53.35, -6.26});
  LatLon p{53.36, -6.28};
  double x, y;
  proj.ToXY(p, &x, &y);
  LatLon back = proj.FromXY(x, y);
  EXPECT_NEAR(back.lat, p.lat, 1e-9);
  EXPECT_NEAR(back.lon, p.lon, 1e-9);
  // 0.01 deg latitude is ~1.11 km.
  EXPECT_NEAR(y, 1112.0, 15.0);
}

// ---------------------------------------------------------------------------
// RegionQuadtree
// ---------------------------------------------------------------------------

class QuadtreeTest : public ::testing::Test {
 protected:
  RegionQuadtree MakeTree(size_t capacity = 2, int max_depth = 8) {
    RegionQuadtree::Options options;
    options.capacity = capacity;
    options.max_depth = max_depth;
    return RegionQuadtree(DublinBounds(), options);
  }
};

TEST_F(QuadtreeTest, SplitsWhenCapacityExceeded) {
  auto tree = MakeTree(2);
  // Cluster points in one corner to force local splits.
  ASSERT_TRUE(tree.Insert({53.29, -6.44}).ok());
  ASSERT_TRUE(tree.Insert({53.291, -6.441}).ok());
  ASSERT_TRUE(tree.Insert({53.292, -6.442}).ok());
  tree.Build();
  EXPECT_GT(tree.max_layer(), 0);
  EXPECT_GT(tree.num_regions(), 1u);
}

TEST_F(QuadtreeTest, RejectsOutOfBounds) {
  auto tree = MakeTree();
  EXPECT_FALSE(tree.Insert({0.0, 0.0}).ok());
  EXPECT_TRUE(tree.Insert({53.35, -6.26}).ok());
}

TEST_F(QuadtreeTest, FrozenAfterBuild) {
  auto tree = MakeTree();
  ASSERT_TRUE(tree.Insert({53.35, -6.26}).ok());
  tree.Build();
  EXPECT_EQ(tree.Insert({53.36, -6.27}).code(), StatusCode::kFailedPrecondition);
}

TEST_F(QuadtreeTest, LocateFindsContainingRegion) {
  auto tree = BuildDublinQuadtree(11, 400);
  LatLon p{53.3501, -6.2605};  // near the centre, deeply split
  RegionId leaf = tree.LocateLeaf(p);
  ASSERT_GE(leaf, 0);
  auto info = tree.GetRegion(leaf);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->box.Contains(p));
  EXPECT_TRUE(info->is_leaf);
  // Layer-0 lookup is always the root.
  EXPECT_EQ(tree.Locate(p, 0), 0);
  // Out of bounds -> invalid.
  EXPECT_EQ(tree.LocateLeaf({10.0, 10.0}), kInvalidRegion);
}

TEST_F(QuadtreeTest, LayerLookupClampsToLeaf) {
  auto tree = BuildDublinQuadtree(11, 400);
  // A point in an empty corner sits in a shallow leaf; asking for a deep
  // layer must return that leaf, not fail.
  LatLon corner{53.415, -6.06};
  RegionId at_deep = tree.Locate(corner, 10);
  RegionId leaf = tree.LocateLeaf(corner);
  EXPECT_EQ(at_deep, leaf);
}

TEST_F(QuadtreeTest, CoveringLayerTilesTheCity) {
  auto tree = BuildDublinQuadtree(13, 500);
  for (int layer : {1, 2, 3}) {
    auto regions = tree.RegionsCoveringLayer(layer);
    ASSERT_FALSE(regions.empty());
    // Random points must fall in exactly one covering region.
    Rng rng(99);
    auto bounds = DublinBounds();
    for (int i = 0; i < 200; ++i) {
      LatLon p{rng.Uniform(bounds.min_lat, bounds.max_lat),
               rng.Uniform(bounds.min_lon, bounds.max_lon)};
      int hits = 0;
      for (const auto& region : regions) {
        if (region.box.Contains(p)) ++hits;
      }
      EXPECT_EQ(hits, 1) << "layer " << layer;
    }
  }
}

TEST_F(QuadtreeTest, DublinTreeIsUnbalanced) {
  // Seeds concentrate near the centre (Figure 6), so leaves near the centre
  // must be deeper than corner leaves.
  auto tree = BuildDublinQuadtree(17, 800);
  auto centre_info = tree.GetRegion(tree.LocateLeaf({53.3498, -6.2603}));
  auto corner_info = tree.GetRegion(tree.LocateLeaf({53.4150, -6.0600}));
  ASSERT_TRUE(centre_info.ok());
  ASSERT_TRUE(corner_info.ok());
  EXPECT_GT(centre_info->layer, corner_info->layer);
}

TEST_F(QuadtreeTest, QueryFindsIntersectingRegions) {
  auto tree = BuildDublinQuadtree(11, 400);
  BoundingBox query{53.34, -6.28, 53.36, -6.24};
  auto regions = tree.Query(query, 3);
  ASSERT_FALSE(regions.empty());
  for (const auto& region : regions) {
    EXPECT_TRUE(region.box.Intersects(query));
  }
}

// ---------------------------------------------------------------------------
// DENCLUE
// ---------------------------------------------------------------------------

TEST(DenclueTest, SeparatesTwoBlobs) {
  Rng rng(5);
  std::vector<Denclue::Point> points;
  for (int i = 0; i < 40; ++i) {
    points.push_back({rng.Gaussian(0.0, 8.0), rng.Gaussian(0.0, 8.0)});
    points.push_back({rng.Gaussian(300.0, 8.0), rng.Gaussian(0.0, 8.0)});
  }
  Denclue::Options options;
  options.sigma = 20.0;
  Denclue denclue(options);
  auto result = denclue.Cluster(points);
  EXPECT_EQ(result.num_clusters, 2u);
  // Points of each blob must share a label.
  for (size_t i = 2; i < points.size(); i += 2) {
    EXPECT_EQ(result.labels[i], result.labels[0]);
    EXPECT_EQ(result.labels[i + 1], result.labels[1]);
  }
}

TEST(DenclueTest, SingleBlobSingleCluster) {
  Rng rng(6);
  std::vector<Denclue::Point> points;
  for (int i = 0; i < 60; ++i) {
    points.push_back({rng.Gaussian(50.0, 10.0), rng.Gaussian(-20.0, 10.0)});
  }
  Denclue denclue(Denclue::Options{});
  auto result = denclue.Cluster(points);
  EXPECT_EQ(result.num_clusters, 1u);
}

TEST(DenclueTest, EmptyInput) {
  Denclue denclue(Denclue::Options{});
  auto result = denclue.Cluster({});
  EXPECT_EQ(result.num_clusters, 0u);
  EXPECT_TRUE(result.labels.empty());
}

TEST(DenclueTest, DensityPeaksAtBlobCentre) {
  Rng rng(8);
  std::vector<Denclue::Point> points;
  for (int i = 0; i < 50; ++i) {
    points.push_back({rng.Gaussian(0.0, 10.0), rng.Gaussian(0.0, 10.0)});
  }
  Denclue denclue(Denclue::Options{});
  EXPECT_GT(denclue.DensityAt(points, 0, 0), denclue.DensityAt(points, 200, 200));
}

// ---------------------------------------------------------------------------
// BusStopIndex
// ---------------------------------------------------------------------------

TEST(BusStopIndexTest, SplitsClusterByDirection) {
  // One physical stop area served in two directions: reports at the same
  // location with opposite entry angles must become two canonical stops.
  std::vector<StopReport> reports;
  LatLon stop{53.35, -6.26};
  Rng rng(9);
  LocalProjection proj(stop);
  for (int i = 0; i < 30; ++i) {
    StopReport r;
    r.position = proj.FromXY(rng.Gaussian(0, 8), rng.Gaussian(0, 8));
    r.line_id = 1;
    r.direction = i % 2 == 0;
    r.entry_angle_deg = r.direction ? 90.0 + rng.Gaussian(0, 8)
                                    : 270.0 + rng.Gaussian(0, 8);
    reports.push_back(r);
  }
  BusStopIndex index;
  size_t n = index.Build(reports);
  EXPECT_EQ(n, 2u);

  // Locate prefers the subcluster that has seen this (line, direction).
  int64_t eastbound = index.Locate(stop, 1, true);
  int64_t westbound = index.Locate(stop, 1, false);
  ASSERT_GE(eastbound, 0);
  ASSERT_GE(westbound, 0);
  EXPECT_NE(eastbound, westbound);
}

TEST(BusStopIndexTest, SeparateClustersForDistantStops) {
  std::vector<StopReport> reports;
  Rng rng(10);
  LatLon a{53.35, -6.26};
  LatLon b{53.36, -6.22};  // ~2.9 km away
  for (const LatLon& stop : {a, b}) {
    LocalProjection proj(stop);
    for (int i = 0; i < 20; ++i) {
      StopReport r;
      r.position = proj.FromXY(rng.Gaussian(0, 6), rng.Gaussian(0, 6));
      r.line_id = 7;
      r.direction = true;
      r.entry_angle_deg = 45.0;
      reports.push_back(r);
    }
  }
  BusStopIndex index;
  EXPECT_EQ(index.Build(reports), 2u);
  int64_t near_a = index.Locate(a, 7, true);
  int64_t near_b = index.Locate(b, 7, true);
  EXPECT_NE(near_a, near_b);
}

TEST(BusStopIndexTest, FarQueryReturnsNoStop) {
  std::vector<StopReport> reports;
  for (int i = 0; i < 10; ++i) {
    reports.push_back({{53.35, -6.26}, 1, true, 90.0});
  }
  BusStopIndex index;
  index.Build(reports);
  EXPECT_EQ(index.Locate({53.42, -6.05}, 1, true), -1);
}

TEST(BusStopIndexTest, EmptyIndex) {
  BusStopIndex index;
  EXPECT_EQ(index.Build({}), 0u);
  EXPECT_EQ(index.Locate({53.35, -6.26}, 1, true), -1);
  EXPECT_FALSE(index.GetStop(0).ok());
}

}  // namespace
}  // namespace geo
}  // namespace insight
