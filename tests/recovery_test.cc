// Stateful recovery: checkpoint/restore units (DedupLedger, StateStore,
// CheckpointCoordinator), cep::Engine snapshot round trips, and the
// end-to-end acceptance run — a topology crashed mid-window under the
// FaultInjector with checkpointing + dedup enabled must reproduce exactly
// the Listing-1 windowed-average detections of a fault-free run.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cep/engine.h"
#include "common/bytes.h"
#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "dfs/mini_dfs.h"
#include "dsps/local_runtime.h"
#include "dsps/topology.h"
#include "observability/trace.h"
#include "reliability/checkpoint.h"
#include "reliability/fault_injector.h"
#include "reliability/state_store.h"

namespace insight {
namespace reliability {
namespace {

using dsps::Bolt;
using dsps::Collector;
using dsps::Fields;
using dsps::LocalRuntime;
using dsps::Snapshottable;
using dsps::Spout;
using dsps::TaskContext;
using dsps::TopologyBuilder;
using dsps::Tuple;
using dsps::Value;

// ---------------------------------------------------------------------------
// DedupLedger
// ---------------------------------------------------------------------------

TEST(DedupLedgerTest, BoundedFifoEviction) {
  DedupLedger ledger(3);
  ledger.Insert(1);
  ledger.Insert(2);
  ledger.Insert(3);
  EXPECT_TRUE(ledger.Contains(1));
  ledger.Insert(4);  // evicts 1 (oldest)
  EXPECT_FALSE(ledger.Contains(1));
  EXPECT_TRUE(ledger.Contains(2));
  EXPECT_TRUE(ledger.Contains(4));
  EXPECT_EQ(ledger.size(), 3u);
}

TEST(DedupLedgerTest, ReinsertDoesNotGrow) {
  DedupLedger ledger(4);
  ledger.Insert(7);
  ledger.Insert(7);
  EXPECT_EQ(ledger.size(), 1u);
}

TEST(DedupLedgerTest, SerializeRoundTrip) {
  DedupLedger ledger(8);
  for (uint64_t id = 10; id < 15; ++id) ledger.Insert(id);
  std::string bytes;
  ByteWriter writer(&bytes);
  ledger.Serialize(&writer);

  DedupLedger restored(8);
  ByteReader reader(bytes);
  ASSERT_TRUE(restored.Deserialize(&reader));
  EXPECT_EQ(restored.size(), 5u);
  for (uint64_t id = 10; id < 15; ++id) EXPECT_TRUE(restored.Contains(id));
  // FIFO order survives: inserting 3 more evicts exactly 10, 11, 12.
  for (uint64_t id = 20; id < 23; ++id) restored.Insert(id);
  restored.Insert(30);
  EXPECT_FALSE(restored.Contains(10));
  EXPECT_TRUE(restored.Contains(11));
}

TEST(DedupLedgerTest, DeserializeRejectsOversizedAndTruncated) {
  DedupLedger big(100);
  for (uint64_t id = 0; id < 10; ++id) big.Insert(id + 1);
  std::string bytes;
  ByteWriter writer(&bytes);
  big.Serialize(&writer);

  DedupLedger small(5);  // stored count 10 exceeds capacity 5
  ByteReader reader(bytes);
  EXPECT_FALSE(small.Deserialize(&reader));
  EXPECT_EQ(small.size(), 0u);

  DedupLedger other(100);
  std::string truncated = bytes.substr(0, bytes.size() - 3);
  ByteReader cut(truncated);
  EXPECT_FALSE(other.Deserialize(&cut));
  EXPECT_EQ(other.size(), 0u);
}

// ---------------------------------------------------------------------------
// StateStore implementations
// ---------------------------------------------------------------------------

TEST(InMemoryStateStoreTest, PutGetLatestRemove) {
  InMemoryStateStore store;
  EXPECT_EQ(store.GetLatest("a").status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(store.Put("a", 1, "one").ok());
  ASSERT_TRUE(store.Put("a", 2, "two").ok());
  auto latest = store.GetLatest("a");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->epoch, 2u);
  EXPECT_EQ(latest->bytes, "two");
  // Epochs must advance.
  EXPECT_FALSE(store.Put("a", 2, "dup").ok());
  ASSERT_TRUE(store.Remove("a").ok());
  EXPECT_EQ(store.GetLatest("a").status().code(), StatusCode::kNotFound);
}

TEST(DfsStateStoreTest, PersistsThroughMiniDfsAndPrunes) {
  dfs::MiniDfs dfs;
  DfsStateStore store(&dfs, "/ckpt");
  ASSERT_TRUE(store.Put("detect/0", 1, "epoch-one").ok());
  ASSERT_TRUE(store.Put("detect/0", 5, "epoch-five").ok());
  auto latest = store.GetLatest("detect/0");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->epoch, 5u);
  EXPECT_EQ(latest->bytes, "epoch-five");
  // Older epochs are garbage-collected once the new one is durable.
  EXPECT_EQ(dfs.List("/ckpt/detect/0/").size(), 1u);
  // Epoch reuse is refused (strictly increasing per key).
  EXPECT_FALSE(store.Put("detect/0", 5, "again").ok());

  // A second store instance over the same DFS sees the durable snapshot —
  // the restart path.
  DfsStateStore reopened(&dfs, "/ckpt");
  auto after = reopened.GetLatest("detect/0");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->epoch, 5u);

  ASSERT_TRUE(store.Remove("detect/0").ok());
  EXPECT_EQ(store.GetLatest("detect/0").status().code(),
            StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// CheckpointCoordinator
// ---------------------------------------------------------------------------

void WaitForPersisted(const CheckpointCoordinator& coordinator,
                      uint64_t target) {
  while (coordinator.persisted() + coordinator.persist_failures() < target) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

TEST(CheckpointCoordinatorTest, IntervalGatesAndEpochsIncrease) {
  InMemoryStateStore store;
  ManualClock clock(1'000);
  CheckpointCoordinator::Options options;
  options.interval_micros = 100;
  options.store = &store;
  options.clock = &clock;
  CheckpointCoordinator coordinator(options);
  // RegisterTask seeds next_due one interval out.
  int slot = coordinator.RegisterTask("detect/0");
  coordinator.Start();

  EXPECT_FALSE(coordinator.Due(slot, clock.NowMicros()));
  clock.Advance(100);
  ASSERT_TRUE(coordinator.Due(slot, clock.NowMicros()));
  uint64_t epoch1 = coordinator.Submit(slot, "state-a", nullptr);
  WaitForPersisted(coordinator, 1);
  // Interval not yet elapsed: not due, but a forced submit is allowed.
  EXPECT_FALSE(coordinator.Due(slot, clock.NowMicros()));
  EXPECT_TRUE(coordinator.CanSubmit(slot));
  clock.Advance(200);
  ASSERT_TRUE(coordinator.Due(slot, clock.NowMicros()));
  uint64_t epoch2 = coordinator.Submit(slot, "state-b", nullptr);
  EXPECT_GT(epoch2, epoch1);
  WaitForPersisted(coordinator, 2);

  auto loaded = coordinator.BarrierAndLoad(slot);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->epoch, epoch2);
  EXPECT_EQ(loaded->bytes, "state-b");
  EXPECT_EQ(coordinator.persisted(), 2u);
  EXPECT_EQ(coordinator.persist_failures(), 0u);
  coordinator.Stop();
}

TEST(CheckpointCoordinatorTest, DoneCallbackSeesPersistOutcome) {
  InMemoryStateStore store;
  CheckpointCoordinator::Options options;
  options.store = &store;
  CheckpointCoordinator coordinator(options);
  int slot = coordinator.RegisterTask("t/0");
  coordinator.Start();

  struct Outcome {
    Mutex mutex;
    std::vector<bool> ok GUARDED_BY(mutex);
  };
  auto outcome = std::make_shared<Outcome>();
  coordinator.Submit(slot, "bytes", [outcome](uint64_t, const Status& s) {
    MutexLock lock(outcome->mutex);
    outcome->ok.push_back(s.ok());
  });
  WaitForPersisted(coordinator, 1);
  coordinator.Stop();
  MutexLock lock(outcome->mutex);
  ASSERT_EQ(outcome->ok.size(), 1u);
  EXPECT_TRUE(outcome->ok[0]);
}

/// Store whose writes always fail — persist failures must be surfaced to the
/// completion callback and counted, never crash.
class FailingStore : public StateStore {
 public:
  Status Put(const std::string&, uint64_t, const std::string&) override {
    return Status::Internal("disk on fire");
  }
  Result<Snapshot> GetLatest(const std::string&) const override {
    return Status::NotFound("nothing here");
  }
  Status Remove(const std::string&) override { return Status::OK(); }
};

TEST(CheckpointCoordinatorTest, PersistFailureCountedAndReported) {
  FailingStore store;
  CheckpointCoordinator::Options options;
  options.store = &store;
  CheckpointCoordinator coordinator(options);
  int slot = coordinator.RegisterTask("t/0");
  coordinator.Start();
  struct Outcome {
    Mutex mutex;
    std::vector<bool> ok GUARDED_BY(mutex);
  };
  auto outcome = std::make_shared<Outcome>();
  coordinator.Submit(slot, "bytes", [outcome](uint64_t, const Status& s) {
    MutexLock lock(outcome->mutex);
    outcome->ok.push_back(s.ok());
  });
  WaitForPersisted(coordinator, 1);
  EXPECT_EQ(coordinator.persist_failures(), 1u);
  EXPECT_EQ(coordinator.persisted(), 0u);
  // A failed persist releases the in-flight slot for the next attempt.
  EXPECT_TRUE(coordinator.CanSubmit(slot));
  coordinator.Stop();
  MutexLock lock(outcome->mutex);
  ASSERT_EQ(outcome->ok.size(), 1u);
  EXPECT_FALSE(outcome->ok[0]);
}

// ---------------------------------------------------------------------------
// cep::Engine snapshot round trip
// ---------------------------------------------------------------------------

// The generic rule template of Listing 1 (see cep_engine_test.cc).
constexpr char kListing1[] = R"(
    @Trigger(bus)
    SELECT *
    FROM bus.std:lastevent() as bd,
         bus.std:groupwin(location).win:length(3) as bd2,
         thresholdLocation.win:keepall() as thresholds
    WHERE bd.hour = thresholds.hour and bd.day = thresholds.day and
          bd.location = thresholds.location and bd.location = bd2.location
    GROUP BY bd2.location
    HAVING avg(bd2.delay) > avg(thresholds.delay))";

class SnapshotEngine {
 public:
  SnapshotEngine() {
    EXPECT_TRUE(engine.RegisterEventType("bus",
                                         {{"timestamp", cep::ValueType::kInt},
                                          {"location", cep::ValueType::kInt},
                                          {"hour", cep::ValueType::kInt},
                                          {"day", cep::ValueType::kString},
                                          {"delay", cep::ValueType::kDouble}})
                    .ok());
    EXPECT_TRUE(engine
                    .RegisterEventType("thresholdLocation",
                                       {{"location", cep::ValueType::kInt},
                                        {"hour", cep::ValueType::kInt},
                                        {"day", cep::ValueType::kString},
                                        {"delay", cep::ValueType::kDouble}})
                    .ok());
    auto stmt = engine.AddStatement(kListing1, "generic");
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    statement = *stmt;
    statement->AddListener([this](const cep::MatchResult&) { ++matches; });
  }

  void SendThreshold(int64_t location, double delay) {
    engine.SendEvent(engine.NewEvent("thresholdLocation")
                         .Set("location", location)
                         .Set("hour", int64_t{8})
                         .Set("day", std::string("weekday"))
                         .Set("delay", delay)
                         .Build());
  }

  void SendBus(int64_t ts, int64_t location, double delay) {
    engine.SendEvent(engine.NewEvent("bus")
                         .Set("timestamp", ts)
                         .Set("location", location)
                         .Set("hour", int64_t{8})
                         .Set("day", std::string("weekday"))
                         .Set("delay", delay)
                         .SetTimestamp(ts)
                         .Build());
  }

  cep::Engine engine;
  cep::Statement* statement = nullptr;
  size_t matches = 0;
};

TEST(EngineSnapshotTest, MidWindowSnapshotRestoresExactBehaviour) {
  SnapshotEngine original;
  original.SendThreshold(7, 100.0);
  original.SendBus(1, 7, 50.0);
  original.SendBus(2, 7, 100.0);  // window {50, 100}: mid-window state
  ASSERT_EQ(original.matches, 0u);

  std::string snapshot;
  ASSERT_TRUE(original.engine.Snapshot(&snapshot).ok());

  SnapshotEngine restored;
  ASSERT_TRUE(restored.engine.Restore(snapshot).ok());

  // Both engines now receive the same continuation; behaviour must match
  // event for event (avg {100,150,200} = 150 > 100 fires on both).
  original.SendBus(3, 7, 150.0);
  restored.SendBus(3, 7, 150.0);
  original.SendBus(4, 7, 200.0);
  restored.SendBus(4, 7, 200.0);
  EXPECT_EQ(original.matches, restored.matches);
  EXPECT_GT(restored.matches, 0u);
}

TEST(EngineSnapshotTest, CorruptSnapshotFailsCleanlyIntoFreshState) {
  SnapshotEngine original;
  original.SendThreshold(7, 100.0);
  for (int i = 0; i < 5; ++i) original.SendBus(i, 7, 200.0);
  std::string snapshot;
  ASSERT_TRUE(original.engine.Snapshot(&snapshot).ok());

  SnapshotEngine victim;
  std::string garbage = snapshot;
  for (size_t i = 8; i < garbage.size(); i += 2) garbage[i] ^= 0x5a;
  std::string truncated = snapshot.substr(0, snapshot.size() / 2);
  EXPECT_FALSE(victim.engine.Restore(garbage).ok());
  EXPECT_FALSE(victim.engine.Restore(truncated).ok());
  EXPECT_FALSE(victim.engine.Restore("not a snapshot").ok());

  // The failed restores left clean state: with no threshold in the keepall
  // window, nothing can fire.
  victim.SendBus(10, 7, 500.0);
  victim.SendBus(11, 7, 500.0);
  EXPECT_EQ(victim.matches, 0u);
}

// ---------------------------------------------------------------------------
// End-to-end fixtures
// ---------------------------------------------------------------------------

/// Emits its messages strictly serially: the next rooted tuple goes out only
/// after the previous one resolved. This gives the run a total order over
/// root tuples — a replayed message cannot overtake a newer one — so the
/// Listing-1 window contents (and hence the detections) of a crash-recovered
/// run are comparable event-for-event with a fault-free run.
class SerialSpout : public Spout {
 public:
  struct Log {
    Mutex mutex;
    std::set<uint64_t> acked GUARDED_BY(mutex);
    std::set<uint64_t> failed GUARDED_BY(mutex);
  };

  SerialSpout(std::shared_ptr<const std::vector<std::vector<Value>>> messages,
              std::shared_ptr<Log> log)
      : messages_(std::move(messages)), log_(std::move(log)) {}

  bool NextTuple(Collector* collector) override {
    if (waiting_) return true;  // previous message still in flight
    if (next_ >= messages_->size()) return false;
    collector->EmitRooted(next_ + 1, (*messages_)[next_]);  // nonzero ids
    ++next_;
    waiting_ = true;
    return true;
  }
  void Ack(uint64_t id) override {
    waiting_ = false;
    MutexLock lock(log_->mutex);
    log_->acked.insert(id);
  }
  void Fail(uint64_t id) override {
    waiting_ = false;
    MutexLock lock(log_->mutex);
    log_->failed.insert(id);
  }

 private:
  std::shared_ptr<const std::vector<std::vector<Value>>> messages_;
  std::shared_ptr<Log> log_;
  size_t next_ = 0;
  bool waiting_ = false;
};

/// One Listing-1 engine per task (the EsperBolt pattern): converts
/// (timestamp, location, delay) tuples to bus events and emits a
/// (location, timestamp) detection per match. Snapshottable by forwarding
/// to the engine, exactly like traffic::EsperBolt.
class Listing1Bolt : public Bolt, public Snapshottable {
 public:
  void Prepare(const TaskContext&) override {
    holder_ = std::make_unique<SnapshotEngine>();
    // Preload the threshold stream before any restore (Section 4.3.1); a
    // restored snapshot re-creates these from its keepall window.
    for (int64_t location = 1; location <= 4; ++location) {
      holder_->SendThreshold(location, 100.0);
    }
    holder_->statement->AddListener([this](const cep::MatchResult& m) {
      pending_.push_back({*m.Get("bd.location"), *m.Get("bd.timestamp")});
    });
  }

  void Execute(const Tuple& input, Collector* collector) override {
    holder_->SendBus(input.Get(0).AsInt(), input.Get(1).AsInt(),
                     input.Get(2).AsDouble());
    for (auto& detection : pending_) collector->Emit(std::move(detection));
    pending_.clear();
  }

  Status SnapshotState(std::string* out) const override {
    return holder_->engine.Snapshot(out);
  }
  Status RestoreState(const std::string& bytes) override {
    return holder_->engine.Restore(bytes);
  }

 private:
  std::unique_ptr<SnapshotEngine> holder_;
  std::vector<std::vector<Value>> pending_;
};

/// Terminal detection recorder. Snapshottable (trivially) so the runtime
/// checkpoints it and arms its dedup ledger — re-emitted detections from a
/// replayed upstream execution must be suppressed here, not double-counted.
class DetectionSink : public Bolt, public Snapshottable {
 public:
  struct Sink {
    Mutex mutex;
    std::map<std::pair<int64_t, int64_t>, int> counts GUARDED_BY(mutex);
  };
  explicit DetectionSink(std::shared_ptr<Sink> sink) : sink_(std::move(sink)) {}
  void Execute(const Tuple& input, Collector*) override {
    MutexLock lock(sink_->mutex);
    sink_->counts[{input.Get(0).AsInt(), input.Get(1).AsInt()}]++;
  }
  Status SnapshotState(std::string* out) const override {
    out->assign(1, '\x01');  // externally recorded; only the ledger matters
    return Status::OK();
  }
  Status RestoreState(const std::string&) override { return Status::OK(); }

 private:
  std::shared_ptr<Sink> sink_;
};

std::shared_ptr<const std::vector<std::vector<Value>>> BusMessages(int n) {
  // Locations cycle 1..4; delays ramp across the threshold (100) so every
  // location's length-3 window crosses it mid-stream — detections depend on
  // exact window contents, which is what recovery must preserve.
  auto messages = std::make_shared<std::vector<std::vector<Value>>>();
  for (int i = 0; i < n; ++i) {
    messages->push_back({Value(int64_t{i + 1}),
                         Value(int64_t{i % 4 + 1}),
                         Value(40.0 + 3.0 * static_cast<double>(i))});
  }
  return messages;
}

struct RecoveryRun {
  std::map<std::pair<int64_t, int64_t>, int> detections;
  std::shared_ptr<SerialSpout::Log> log;
  dsps::MetricsRegistry::ComponentTotals detect_totals;
  dsps::MetricsRegistry::ComponentTotals source_totals;
  uint64_t restarts = 0;
  bool degraded = false;
};

RecoveryRun RunListing1Topology(int n, FaultInjector* injector,
                                StateStore* store) {
  auto messages = BusMessages(n);
  auto log = std::make_shared<SerialSpout::Log>();
  auto sink = std::make_shared<DetectionSink::Sink>();
  TopologyBuilder builder;
  builder.SetSpout("source",
                   [messages, log] {
                     return std::make_unique<SerialSpout>(messages, log);
                   },
                   Fields({"timestamp", "location", "delay"}));
  builder
      .SetBolt("detect", [] { return std::make_unique<Listing1Bolt>(); },
               Fields({"location", "timestamp"}), 2)
      .FieldsGrouping("source", {"location"});
  builder
      .SetBolt("sink", [sink] { return std::make_unique<DetectionSink>(sink); },
               Fields({}))
      .GlobalGrouping("detect");
  auto topology = builder.Build();
  EXPECT_TRUE(topology.ok());

  LocalRuntime::Options options;
  options.enable_acking = true;
  options.ack_timeout_micros = 50'000;
  options.max_replays = 20;
  options.replay_backoff_micros = 2'000;
  options.supervisor_interval_micros = 1'000;
  options.fault_injector = injector;
  options.enable_checkpointing = true;
  options.checkpoint_interval_micros = 10'000;
  options.state_store = store;
  options.enable_replay_dedup = true;
  LocalRuntime runtime(std::move(*topology), options);
  EXPECT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();

  RecoveryRun run;
  {
    MutexLock lock(sink->mutex);
    run.detections = sink->counts;
  }
  run.log = log;
  run.detect_totals = runtime.metrics()->Totals("detect");
  run.source_totals = runtime.metrics()->Totals("source");
  run.restarts = runtime.executor_restarts();
  run.degraded = runtime.degraded();
  return run;
}

// ---------------------------------------------------------------------------
// The acceptance run: mid-window crashes, identical Listing-1 detections
// ---------------------------------------------------------------------------

TEST(RecoveryEndToEndTest, CrashedRunReproducesFaultFreeListing1Averages) {
  constexpr int kMessages = 48;

  InMemoryStateStore clean_store;
  RecoveryRun clean = RunListing1Topology(kMessages, nullptr, &clean_store);
  ASSERT_FALSE(clean.detections.empty());
  EXPECT_EQ(clean.restarts, 0u);
  {
    MutexLock lock(clean.log->mutex);
    ASSERT_EQ(clean.log->acked.size(), static_cast<size_t>(kMessages));
    EXPECT_TRUE(clean.log->failed.empty());
  }

  // Same topology, same messages, but the detect tasks are killed
  // mid-window (each task dies on its 5th and 13th execution) and the
  // checkpoints live in the MiniDfs. Recovery = restore-from-DFS + tree
  // replay + ledger dedup.
  FaultPlan plan;
  plan.crashes.push_back({.component = "detect", .task = -1,
                          .after_executions = 5, .repeat = false});
  plan.crashes.push_back({.component = "detect", .task = -1,
                          .after_executions = 13, .repeat = false});
  FaultInjector injector(plan);
  dfs::MiniDfs dfs;
  DfsStateStore dfs_store(&dfs, "/checkpoints");
  RecoveryRun faulty = RunListing1Topology(kMessages, &injector, &dfs_store);

  // Faults really fired and really healed.
  EXPECT_GE(injector.crashes_injected(), 2u);
  EXPECT_GE(faulty.restarts, 2u);
  EXPECT_GT(faulty.detect_totals.checkpoints, 0u);
  EXPECT_GE(faulty.detect_totals.checkpoint_restores, 2u);
  EXPECT_EQ(faulty.detect_totals.checkpoint_restore_failures, 0u);
  EXPECT_FALSE(faulty.degraded);
  {
    MutexLock lock(faulty.log->mutex);
    EXPECT_EQ(faulty.log->acked.size(), static_cast<size_t>(kMessages));
    EXPECT_TRUE(faulty.log->failed.empty());
  }

  // The acceptance bar: detection multiset identical to the fault-free run
  // — same windowed averages crossed the threshold at the same events, and
  // nothing was detected twice.
  EXPECT_EQ(faulty.detections, clean.detections);
  for (const auto& [detection, count] : faulty.detections) {
    EXPECT_EQ(count, 1) << "duplicate detection for location "
                        << detection.first << " at t=" << detection.second;
  }
}

// ---------------------------------------------------------------------------
// Replay dedup at a checkpointed task
// ---------------------------------------------------------------------------

/// Rooted spout + slow Snapshottable counter: with an ack timeout shorter
/// than the drain time, trees expire and replay while the counter has
/// already absorbed them. The ledger must suppress the re-executions.
class RootedBurstSpout : public Spout {
 public:
  explicit RootedBurstSpout(int n) : n_(n) {}
  bool NextTuple(Collector* collector) override {
    if (next_ >= n_) return false;
    collector->EmitRooted(static_cast<uint64_t>(next_ + 1),
                          {Value(int64_t{next_})});
    ++next_;
    return next_ < n_;
  }

 private:
  int n_;
  int next_ = 0;
};

class SlowCountingState : public Bolt, public Snapshottable {
 public:
  struct Sink {
    Mutex mutex;
    std::map<int64_t, int> counts GUARDED_BY(mutex);
  };
  explicit SlowCountingState(std::shared_ptr<Sink> sink)
      : sink_(std::move(sink)) {}
  void Execute(const Tuple& input, Collector*) override {
    std::this_thread::sleep_for(std::chrono::microseconds(500));
    MutexLock lock(sink_->mutex);
    sink_->counts[input.Get(0).AsInt()]++;
  }
  Status SnapshotState(std::string* out) const override {
    out->assign(1, '\x01');
    return Status::OK();
  }
  Status RestoreState(const std::string&) override { return Status::OK(); }

 private:
  std::shared_ptr<Sink> sink_;
};

TEST(RecoveryEndToEndTest, LedgerSuppressesReplayedDuplicates) {
  constexpr int kTuples = 40;
  auto sink = std::make_shared<SlowCountingState::Sink>();
  TopologyBuilder builder;
  builder.SetSpout("source",
                   [=] { return std::make_unique<RootedBurstSpout>(kTuples); },
                   Fields({"v"}));
  builder
      .SetBolt("count",
               [sink] { return std::make_unique<SlowCountingState>(sink); },
               Fields({}))
      .GlobalGrouping("source");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());

  InMemoryStateStore store;
  LocalRuntime::Options options;
  options.enable_acking = true;
  options.ack_timeout_micros = 5'000;  // shorter than the queue drain time
  options.max_replays = 50;
  options.replay_backoff_micros = 1'000;
  options.supervisor_interval_micros = 1'000;
  options.enable_checkpointing = true;
  // Interval far beyond the test: acks flush only via idle-forced
  // checkpoints, keeping many trees open long enough to expire.
  options.checkpoint_interval_micros = 10'000'000;
  options.state_store = &store;
  options.enable_replay_dedup = true;
  LocalRuntime runtime(std::move(*topology), options);
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();

  // Effectively-once: every value counted exactly once despite the replays.
  {
    MutexLock lock(sink->mutex);
    ASSERT_EQ(sink->counts.size(), static_cast<size_t>(kTuples));
    for (const auto& [value, count] : sink->counts) {
      EXPECT_EQ(count, 1) << "value " << value << " double-counted";
    }
  }
  auto totals = runtime.metrics()->Totals("count");
  EXPECT_GT(totals.deduped, 0u);  // replays actually reached the ledger
  auto source = runtime.metrics()->Totals("source");
  EXPECT_GT(source.replayed, 0u);
  EXPECT_EQ(runtime.pending_trees(), 0u);
}

TEST(RecoveryEndToEndTest, TraceLifecycleSurvivesReplayAndDedup) {
  // Trace spans under crash/replay: an expired attempt's trace is
  // abandoned, the replayed attempt opens a fresh one, and a deduped
  // re-execution never closes a root span twice — at quiescence every
  // sampled root is accounted for as exactly one completion or abandonment.
  constexpr int kTuples = 40;
  auto sink = std::make_shared<SlowCountingState::Sink>();
  TopologyBuilder builder;
  builder.SetSpout("source",
                   [=] { return std::make_unique<RootedBurstSpout>(kTuples); },
                   Fields({"v"}));
  builder
      .SetBolt("count",
               [sink] { return std::make_unique<SlowCountingState>(sink); },
               Fields({}))
      .GlobalGrouping("source");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());

  InMemoryStateStore store;
  LocalRuntime::Options options;
  options.enable_acking = true;
  options.ack_timeout_micros = 5'000;  // shorter than the queue drain time
  options.max_replays = 50;
  options.replay_backoff_micros = 1'000;
  options.supervisor_interval_micros = 1'000;
  options.enable_checkpointing = true;
  options.checkpoint_interval_micros = 10'000'000;
  options.state_store = &store;
  options.enable_replay_dedup = true;
  options.enable_tracing = true;
  options.trace_sample_rate = 1.0;
  LocalRuntime runtime(std::move(*topology), options);
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();

  // The run still behaves effectively-once with tracing on.
  {
    MutexLock lock(sink->mutex);
    ASSERT_EQ(sink->counts.size(), static_cast<size_t>(kTuples));
    for (const auto& [value, count] : sink->counts) {
      EXPECT_EQ(count, 1) << "value " << value << " double-counted";
    }
  }
  EXPECT_GT(runtime.metrics()->Totals("count").deduped, 0u);
  EXPECT_GT(runtime.metrics()->Totals("source").replayed, 0u);
  EXPECT_EQ(runtime.pending_trees(), 0u);

  ASSERT_NE(runtime.tracer(), nullptr);
  observability::Tracer::Stats stats = runtime.tracer()->stats();
  // Every root emission (first attempts + replays) was sampled at rate 1.0.
  EXPECT_GE(stats.started, static_cast<uint64_t>(kTuples));
  // Trees expired and replayed, so some attempts' traces were abandoned...
  EXPECT_GE(stats.abandoned, 1u);
  // ...and each tuple's surviving attempt completed exactly once: a deduped
  // duplicate execution must never close a root span a second time.
  EXPECT_EQ(stats.double_completions, 0u);
  // At quiescence nothing is left open: sampled roots partition exactly
  // into completions and abandonments.
  EXPECT_EQ(stats.started, stats.completed + stats.abandoned);
}

// ---------------------------------------------------------------------------
// Corrupt snapshots (satellite: never crash, clean-state restart + metric)
// ---------------------------------------------------------------------------

class CountingState : public Bolt, public Snapshottable {
 public:
  struct Sink {
    Mutex mutex;
    std::map<int64_t, int> counts GUARDED_BY(mutex);
  };
  explicit CountingState(std::shared_ptr<Sink> sink)
      : sink_(std::move(sink)) {}
  void Execute(const Tuple& input, Collector*) override {
    MutexLock lock(sink_->mutex);
    sink_->counts[input.Get(0).AsInt()]++;
  }
  Status SnapshotState(std::string* out) const override {
    out->assign(1, '\x01');
    return Status::OK();
  }
  Status RestoreState(const std::string&) override { return Status::OK(); }

 private:
  std::shared_ptr<Sink> sink_;
};

void RunWithPoisonedStore(const std::string& snapshot_bytes,
                          uint64_t expected_failures) {
  InMemoryStateStore store;
  // Poison the exact key the runtime derives for the task ("count/0").
  ASSERT_TRUE(store.Put("count/0", 1, snapshot_bytes).ok());

  constexpr int kTuples = 100;
  auto sink = std::make_shared<CountingState::Sink>();
  TopologyBuilder builder;
  builder.SetSpout("source",
                   [=] { return std::make_unique<RootedBurstSpout>(kTuples); },
                   Fields({"v"}));
  builder
      .SetBolt("count",
               [sink] { return std::make_unique<CountingState>(sink); },
               Fields({}))
      .GlobalGrouping("source");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());
  LocalRuntime::Options options;
  options.enable_acking = true;
  options.enable_checkpointing = true;
  options.state_store = &store;
  options.enable_replay_dedup = true;
  LocalRuntime runtime(std::move(*topology), options);
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();

  // The corrupt snapshot degraded to a clean-state start: the run completed
  // normally, the failure was counted, nothing was restored.
  auto totals = runtime.metrics()->Totals("count");
  EXPECT_EQ(totals.checkpoint_restore_failures, expected_failures);
  EXPECT_EQ(totals.checkpoint_restores, 0u);
  EXPECT_EQ(totals.executed, static_cast<uint64_t>(kTuples));
  MutexLock lock(sink->mutex);
  EXPECT_EQ(sink->counts.size(), static_cast<size_t>(kTuples));
}

TEST(RecoveryEndToEndTest, GarbageSnapshotFallsBackToCleanState) {
  RunWithPoisonedStore("complete garbage, not a snapshot at all", 1);
}

TEST(RecoveryEndToEndTest, TruncatedSnapshotFallsBackToCleanState) {
  // A container with a valid header but no body: decodes the magic and
  // version, then hits the truncation.
  std::string bytes;
  ByteWriter writer(&bytes);
  writer.PutU32(0x314b4354);  // "TCK1"
  writer.PutU32(1);
  writer.PutU8(0);
  RunWithPoisonedStore(bytes, 1);
}

// ---------------------------------------------------------------------------
// Crash-loop containment
// ---------------------------------------------------------------------------

class RootedLogSpout : public Spout {
 public:
  RootedLogSpout(int n, std::shared_ptr<SerialSpout::Log> log)
      : n_(n), log_(std::move(log)) {}
  bool NextTuple(Collector* collector) override {
    if (next_ >= n_) return false;
    collector->EmitRooted(static_cast<uint64_t>(next_ + 1),
                          {Value(int64_t{next_})});
    ++next_;
    return next_ < n_;
  }
  void Ack(uint64_t id) override {
    MutexLock lock(log_->mutex);
    log_->acked.insert(id);
  }
  void Fail(uint64_t id) override {
    MutexLock lock(log_->mutex);
    log_->failed.insert(id);
  }

 private:
  int n_;
  int next_ = 0;
  std::shared_ptr<SerialSpout::Log> log_;
};

class CrashySink : public Bolt {
 public:
  void Execute(const Tuple&, Collector*) override {}
};

/// Sink slow enough that tuples pile up behind it — keeps tuple trees
/// pending long enough for a breaker trip to find them unresolved.
class SlowAckSink : public Bolt {
 public:
  void Execute(const Tuple&, Collector*) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
};

TEST(RecoveryEndToEndTest, BreakerTripsOnCrashLoopAndFailsPendingTrees) {
  constexpr int kTuples = 50;
  auto log = std::make_shared<SerialSpout::Log>();
  // Crash on every single execution: without the breaker this restarts
  // forever; with it the executor is permanently failed after the budget.
  FaultPlan plan;
  plan.crashes.push_back({.component = "sink", .task = 0,
                          .after_executions = 1, .repeat = true});
  FaultInjector injector(plan);

  TopologyBuilder builder;
  builder.SetSpout("source",
                   [log, kTuples] {
                     return std::make_unique<RootedLogSpout>(kTuples, log);
                   },
                   Fields({"v"}));
  builder.SetBolt("sink", [] { return std::make_unique<CrashySink>(); },
                  Fields({}))
      .GlobalGrouping("source");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());

  LocalRuntime::Options options;
  options.enable_acking = true;
  options.ack_timeout_micros = 10'000;
  options.max_replays = 3;
  options.replay_backoff_micros = 1'000;
  options.supervisor_interval_micros = 1'000;
  options.fault_injector = &injector;
  options.enable_crash_loop_breaker = true;
  options.restart_backoff_base_micros = 200;
  options.restart_backoff_factor = 2.0;
  options.restart_backoff_max_micros = 2'000;
  options.breaker_max_restarts = 3;
  options.breaker_window_micros = 60'000'000;
  LocalRuntime runtime(std::move(*topology), options);
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();  // must terminate, not restart-loop forever

  EXPECT_TRUE(runtime.degraded());
  EXPECT_EQ(runtime.dead_executors(), 1);
  // The breaker bounds restarts: exactly the budget, then permanent failure.
  EXPECT_EQ(runtime.executor_restarts(),
            static_cast<uint64_t>(options.breaker_max_restarts));
  auto totals = runtime.metrics()->Totals("sink");
  EXPECT_EQ(totals.breaker_trips, 1u);
  EXPECT_EQ(totals.acked, 0u);
  // Every tree resolved as failed — none acked, none leaked.
  EXPECT_EQ(runtime.pending_trees(), 0u);
  MutexLock lock(log->mutex);
  EXPECT_TRUE(log->acked.empty());
  EXPECT_EQ(log->failed.size(), static_cast<size_t>(kTuples));
}

TEST(RecoveryEndToEndTest, SpoutBreakerTripFailsItsPendingTrees) {
  // The spout itself crash-loops: after the budget its pending trees are
  // failed directly (documented deviation: callbacks delivered on the
  // supervisor thread) and the run still terminates.
  auto log = std::make_shared<SerialSpout::Log>();
  FaultPlan plan;
  plan.crashes.push_back({.component = "source", .task = 0,
                          .after_executions = 5, .repeat = true});
  FaultInjector injector(plan);

  TopologyBuilder builder;
  builder.SetSpout("source",
                   [log] {
                     return std::make_unique<RootedLogSpout>(1'000'000, log);
                   },
                   Fields({"v"}));
  builder.SetBolt("sink", [] { return std::make_unique<SlowAckSink>(); },
                  Fields({}))
      .GlobalGrouping("source");
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());

  LocalRuntime::Options options;
  options.enable_acking = true;
  options.ack_timeout_micros = 1'000'000;  // trees outlive the crash loop
  options.supervisor_interval_micros = 1'000;
  options.fault_injector = &injector;
  options.enable_crash_loop_breaker = true;
  options.restart_backoff_base_micros = 200;
  options.restart_backoff_max_micros = 2'000;
  options.breaker_max_restarts = 2;
  options.breaker_window_micros = 60'000'000;
  LocalRuntime runtime(std::move(*topology), options);
  ASSERT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();

  EXPECT_TRUE(runtime.degraded());
  EXPECT_EQ(runtime.dead_executors(), 1);
  auto totals = runtime.metrics()->Totals("source");
  EXPECT_EQ(totals.breaker_trips, 1u);
  EXPECT_EQ(runtime.pending_trees(), 0u);
  // Some messages may have been acked before the trip; everything still
  // pending at the trip was failed, none leaked.
  MutexLock lock(log->mutex);
  EXPECT_GT(log->failed.size(), 0u);
}

// ---------------------------------------------------------------------------
// Chaos under overload (ISSUE 9 satellite): crashes while saturated
// ---------------------------------------------------------------------------

/// Unrooted kLow firehose: exists purely to saturate downstream queues so
/// the shed watermarks are genuinely engaged while the chaos plan fires.
class FirehoseSpout : public Spout {
 public:
  explicit FirehoseSpout(int n) : n_(n) {}
  bool NextTuple(Collector* collector) override {
    if (next_ >= n_) return false;
    for (int k = 0; k < 64 && next_ < n_; ++k, ++next_) {
      collector->Emit({Value(int64_t{-1})});
    }
    return next_ < n_;
  }

 private:
  int n_;
  int next_ = 0;
};

/// Slow checkpointed sink for the saturation chaos run. The counts live in
/// the snapshotted state (not an external map) so a crash rolls them back
/// atomically with the dedup ledger and the deferred acks — that atomicity
/// is what makes the critical stream effectively-once. The surviving
/// incarnation exports its counts at Cleanup.
class SaturatedSink : public Bolt, public Snapshottable {
 public:
  struct Sink {
    Mutex mutex;
    std::map<int64_t, int> counts GUARDED_BY(mutex);
  };
  explicit SaturatedSink(std::shared_ptr<Sink> sink) : sink_(std::move(sink)) {}

  void Execute(const Tuple& input, Collector*) override {
    std::this_thread::sleep_for(std::chrono::microseconds(500));
    counts_[input.Get(0).AsInt()]++;
  }
  void Cleanup() override {
    MutexLock lock(sink_->mutex);
    sink_->counts = counts_;
  }

  Status SnapshotState(std::string* out) const override {
    ByteWriter writer(out);
    writer.PutU32(static_cast<uint32_t>(counts_.size()));
    for (const auto& [value, count] : counts_) {
      writer.PutU64(static_cast<uint64_t>(value));
      writer.PutU32(static_cast<uint32_t>(count));
    }
    return Status::OK();
  }
  Status RestoreState(const std::string& bytes) override {
    ByteReader reader(bytes);
    uint32_t n = 0;
    if (!reader.GetU32(&n)) return Status::ParseError("sink snapshot short");
    std::map<int64_t, int> restored;
    for (uint32_t i = 0; i < n; ++i) {
      uint64_t value = 0;
      uint32_t count = 0;
      if (!reader.GetU64(&value) || !reader.GetU32(&count)) {
        return Status::ParseError("sink snapshot short");
      }
      restored[static_cast<int64_t>(value)] = static_cast<int>(count);
    }
    counts_ = std::move(restored);
    return Status::OK();
  }

 private:
  std::shared_ptr<Sink> sink_;
  std::map<int64_t, int> counts_;
};

struct SaturatedRun {
  std::map<int64_t, int> critical_counts;  // sink counts, firehose excluded
  std::shared_ptr<SerialSpout::Log> log;
  dsps::MetricsRegistry::ComponentTotals sink_totals;
  uint64_t restarts = 0;
  size_t max_queue_occupancy = 0;
  bool degraded = false;
};

/// Rooted kHigh traffic + kLow firehose into one slow checkpointed sink,
/// with credit flow and shedding on. The injector (may be null) crashes the
/// sink mid-saturation; recovery must keep the critical stream
/// effectively-once while the firehose is shed freely.
SaturatedRun RunSaturatedTopology(int critical, int firehose,
                                  FaultInjector* injector,
                                  StateStore* store) {
  auto log = std::make_shared<SerialSpout::Log>();
  auto sink = std::make_shared<SaturatedSink::Sink>();
  TopologyBuilder builder;
  builder.SetSpout("critical",
                   [critical, log] {
                     return std::make_unique<RootedLogSpout>(critical, log);
                   },
                   Fields({"v"}));
  builder.SetSpout("firehose",
                   [firehose] {
                     return std::make_unique<FirehoseSpout>(firehose);
                   },
                   Fields({"v"}));
  builder
      .SetBolt("sink",
               [sink] { return std::make_unique<SaturatedSink>(sink); },
               Fields({}))
      .GlobalGrouping("critical")
      .GlobalGrouping("firehose");
  builder.SetPriority("critical", dsps::TuplePriority::kHigh);
  builder.SetPriority("firehose", dsps::TuplePriority::kLow);
  auto topology = builder.Build();
  EXPECT_TRUE(topology.ok());

  LocalRuntime::Options options;
  options.queue_capacity = 64;
  options.emit_batch = 8;
  options.max_batch = 8;
  options.enable_acking = true;
  options.ack_timeout_micros = 100'000;
  options.max_replays = 50;
  options.replay_backoff_micros = 2'000;
  options.supervisor_interval_micros = 1'000;
  options.fault_injector = injector;
  options.enable_checkpointing = true;
  options.checkpoint_interval_micros = 10'000;
  options.state_store = store;
  options.enable_replay_dedup = true;
  options.overload.enable_credit_flow = true;
  options.overload.max_deferred_tuples = 256;
  options.overload.enable_load_shedding = true;
  options.overload.shed_low_watermark = 0.5;
  options.overload.shed_high_watermark = 0.9;
  LocalRuntime runtime(std::move(*topology), options);
  EXPECT_TRUE(runtime.Start().ok());
  runtime.AwaitCompletion();

  SaturatedRun run;
  run.log = log;
  run.sink_totals = runtime.metrics()->Totals("sink");
  run.restarts = runtime.executor_restarts();
  run.max_queue_occupancy = runtime.max_queue_occupancy();
  run.degraded = runtime.degraded();
  EXPECT_EQ(runtime.pending_trees(), 0u);
  runtime.Stop();  // joins executors: the sink's Cleanup export is done
  {
    MutexLock lock(sink->mutex);
    for (const auto& [value, count] : sink->counts) {
      if (value >= 0) run.critical_counts[value] = count;
    }
  }
  return run;
}

TEST(RecoveryEndToEndTest, CrashWhileSaturatedKeepsCriticalEffectivelyOnce) {
  constexpr int kCritical = 60;
  constexpr int kFirehose = 4000;

  InMemoryStateStore clean_store;
  SaturatedRun clean =
      RunSaturatedTopology(kCritical, kFirehose, nullptr, &clean_store);
  ASSERT_EQ(clean.critical_counts.size(), static_cast<size_t>(kCritical));
  EXPECT_EQ(clean.restarts, 0u);
  // The firehose really pushed the queue past the watermark.
  EXPECT_GT(clean.sink_totals.shed_low, 0u);
  EXPECT_EQ(clean.sink_totals.shed_high, 0u);

  // Same run, but the sink dies twice mid-saturation. Recovery (checkpoint
  // restore + tree replay + ledger dedup) happens while the firehose keeps
  // the queue saturated and the shed path keeps firing.
  FaultPlan plan;
  plan.crashes.push_back({.component = "sink", .task = 0,
                          .after_executions = 30, .repeat = false});
  plan.crashes.push_back({.component = "sink", .task = 0,
                          .after_executions = 45, .repeat = false});
  FaultInjector injector(plan);
  InMemoryStateStore store;
  SaturatedRun faulty =
      RunSaturatedTopology(kCritical, kFirehose, &injector, &store);

  // The faults really fired and really healed.
  EXPECT_GE(injector.crashes_injected(), 2u);
  EXPECT_GE(faulty.restarts, 2u);
  EXPECT_FALSE(faulty.degraded);
  // Saturation held across the crashes: kLow shed, kHigh never.
  EXPECT_GT(faulty.sink_totals.shed_low, 0u);
  EXPECT_EQ(faulty.sink_totals.shed_normal, 0u);
  EXPECT_EQ(faulty.sink_totals.shed_high, 0u);
  // Credit admission stayed exact through kill-and-relaunch.
  EXPECT_LE(faulty.max_queue_occupancy, 64u);

  // The acceptance bar: the high-priority stream matches the fault-free
  // run value for value — every critical tuple delivered exactly once,
  // none shed, none lost, none duplicated.
  EXPECT_EQ(faulty.critical_counts, clean.critical_counts);
  for (const auto& [value, count] : faulty.critical_counts) {
    EXPECT_EQ(count, 1) << "critical value " << value
                        << " not effectively-once under saturation";
  }
  {
    MutexLock lock(faulty.log->mutex);
    EXPECT_EQ(faulty.log->acked.size(), static_cast<size_t>(kCritical));
    EXPECT_TRUE(faulty.log->failed.empty());
  }
}

}  // namespace
}  // namespace reliability
}  // namespace insight
