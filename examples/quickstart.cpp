// Quickstart: the CEP engine in ~60 lines.
//
// Registers the bus event schema, installs the paper's generic rule template
// (Listing 1) via EPL, feeds threshold and bus events, and prints fired
// detections.
//
//   ./quickstart

#include <cstdio>

#include "cep/engine.h"

using insight::cep::Engine;
using insight::cep::EventBuilder;
using insight::cep::MatchResult;
using insight::cep::ValueType;

int main() {
  Engine engine;

  // Event schemas: the incoming bus reports and the threshold stream the
  // batch layer maintains.
  auto st = engine.RegisterEventType("bus", {{"location", ValueType::kInt},
                                             {"hour", ValueType::kInt},
                                             {"day", ValueType::kString},
                                             {"delay", ValueType::kDouble}});
  if (!st.ok()) return 1;
  st = engine.RegisterEventType("thresholdLocation",
                                {{"location", ValueType::kInt},
                                 {"hour", ValueType::kInt},
                                 {"day", ValueType::kString},
                                 {"value", ValueType::kDouble}});
  if (!st.ok()) return 1;

  // Listing 1: fire when the windowed average delay at a location exceeds
  // that location's (hour, day)-specific threshold.
  auto stmt = engine.AddStatement(R"(
      @Trigger(bus)
      SELECT bd.location AS location, avg(bd2.delay) AS value,
             avg(thr.value) AS threshold
      FROM bus.std:lastevent() as bd,
           bus.std:groupwin(location).win:length(3) as bd2,
           thresholdLocation.std:unique(location, hour, day) as thr
      WHERE bd.hour = thr.hour and bd.day = thr.day and
            bd.location = thr.location and bd.location = bd2.location
      GROUP BY bd2.location
      HAVING avg(bd2.delay) > avg(thr.value))",
                                  "delay-anomaly");
  if (!stmt.ok()) {
    std::fprintf(stderr, "rule failed: %s\n", stmt.status().ToString().c_str());
    return 1;
  }
  (*stmt)->AddListener([](const MatchResult& match) {
    std::printf("FIRED %s: location=%lld avg_delay=%.1f threshold=%.1f\n",
                match.statement_name.c_str(),
                static_cast<long long>(match.Get("location")->AsInt()),
                match.Get("value")->AsDouble(),
                match.Get("threshold")->AsDouble());
  });

  // The batch layer computed: normal delay at location 12 during the 8am
  // weekday peak is 90 s (mean + s*stdev).
  engine.SendEvent(engine.NewEvent("thresholdLocation")
                       .Set("location", 12)
                       .Set("hour", 8)
                       .Set("day", "weekday")
                       .Set("value", 90.0)
                       .Build());

  // Live bus reports: delays ramp up at location 12.
  const double delays[] = {40, 70, 95, 120, 150};
  for (double delay : delays) {
    std::printf("bus report: location=12 delay=%.0f\n", delay);
    engine.SendEvent(engine.NewEvent("bus")
                         .Set("location", 12)
                         .Set("hour", 8)
                         .Set("day", "weekday")
                         .Set("delay", delay)
                         .Build());
  }

  auto stats = engine.GetStats();
  std::printf("\nprocessed %zu events, %zu matches, avg %.1f us/event\n",
              stats.events_processed, stats.matches_fired,
              stats.latency_micros.mean());
  return 0;
}
