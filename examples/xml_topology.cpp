// XML topology submission: Section 3.2's user workflow. "Users in our
// framework complete an XML file that includes the description of the
// submitted topology along with the Esper rules they want to apply" —
// this example registers the component types, loads such a file, installs
// the embedded rules on the Esper bolts and runs the topology.
//
//   ./xml_topology

#include <cstdio>

#include <memory>

#include "common/strings.h"
#include "core/retrieval.h"
#include "core/system.h"
#include "dsps/local_runtime.h"
#include "dsps/xml_topology.h"
#include "traffic/bolts.h"
#include "traffic/generator.h"

using namespace insight;

namespace {

constexpr char kSubmission[] = R"(
<topology name="traffic-monitoring">
  <!-- Figure 8, trimmed: reader -> preprocess -> area tracker -> splitter
       -> esper -> storer is wired below; this file declares the components
       and the rules. -->
  <spout name="busReader" type="BusReaderSpout" executors="1"
         fields="timestamp,line,direction,lon,lat,delay,congestion,reported_stop,vehicle"/>
  <bolt name="preProcess" type="PreProcessBolt" executors="2"
        fields="timestamp,line,direction,lon,lat,delay,congestion,reported_stop,vehicle,speed,actual_delay,hour,date_type">
    <subscribe source="busReader" grouping="fields" fields="vehicle"/>
    <param key="weekend" value="false"/>
  </bolt>
  <bolt name="areaTracker" type="AreaTrackerBolt" executors="2"
        fields="timestamp,line,direction,lon,lat,delay,congestion,reported_stop,vehicle,speed,actual_delay,hour,date_type,area_leaf">
    <subscribe source="preProcess" grouping="shuffle"/>
  </bolt>
  <bolt name="busStops" type="BusStopsTrackerBolt" executors="1"
        fields="timestamp,line,direction,lon,lat,delay,congestion,reported_stop,vehicle,speed,actual_delay,hour,date_type,area_leaf,bus_stop">
    <subscribe source="areaTracker" grouping="shuffle"/>
  </bolt>
  <bolt name="esper" type="EsperBolt" executors="2" tasks="2"
        fields="rule,attribute,location,value,threshold,timestamp">
    <subscribe source="busStops" grouping="fields" fields="area_leaf"/>
  </bolt>
  <bolt name="eventsStorer" type="EventsStorerBolt" executors="1" fields="">
    <subscribe source="esper" grouping="global"/>
  </bolt>
  <rules>
    <rule name="high-delay"><![CDATA[
      @Trigger(bus)
      SELECT bd.area_leaf AS location, avg(bd2.delay) AS value,
             150.0 AS threshold, 'delay' AS attribute,
             bd.timestamp AS timestamp
      FROM bus.std:lastevent() as bd,
           bus.std:groupwin(area_leaf).win:length(5) as bd2
      WHERE bd.area_leaf = bd2.area_leaf
      GROUP BY bd2.area_leaf
      HAVING avg(bd2.delay) > 150.0
    ]]></rule>
  </rules>
</topology>)";

}  // namespace

int main() {
  // Substrate the component factories capture.
  traffic::TraceGenerator::Options options;
  options.num_buses = 80;
  options.num_lines = 10;
  options.start_hour = 8;
  options.end_hour = 10;
  options.incidents_per_hour = 4.0;
  auto quadtree = std::make_shared<geo::RegionQuadtree>(
      geo::BuildDublinQuadtree(options.seed, 500));
  auto stops = std::make_shared<geo::BusStopIndex>();
  {
    traffic::TraceGenerator sampler(options);
    stops->Build(sampler.CollectStopReports(800));
  }
  traffic::TraceGenerator generator(options);
  auto traces = std::make_shared<const std::vector<traffic::BusTrace>>(
      generator.GenerateAll(15000));

  // Rules parsed from the XML land here; each Esper task installs them.
  auto esper_config = std::make_shared<traffic::EsperBoltConfig>();
  auto store = std::make_shared<storage::TableStore>();

  dsps::ComponentRegistry registry;
  (void)registry.RegisterSpout(
      "BusReaderSpout",
      [traces](const XmlNode&) -> Result<dsps::SpoutFactory> {
        return dsps::SpoutFactory(
            [traces] { return std::make_unique<traffic::BusReaderSpout>(traces); });
      });
  (void)registry.RegisterBolt(
      "PreProcessBolt", [](const XmlNode& node) -> Result<dsps::BoltFactory> {
        INSIGHT_ASSIGN_OR_RETURN(bool weekend,
                                 ParseBool(dsps::XmlParamOr(node, "weekend",
                                                            "false")));
        return dsps::BoltFactory([weekend] {
          return std::make_unique<traffic::PreProcessBolt>(weekend);
        });
      });
  (void)registry.RegisterBolt(
      "AreaTrackerBolt",
      [quadtree](const XmlNode&) -> Result<dsps::BoltFactory> {
        return dsps::BoltFactory([quadtree] {
          return std::make_unique<traffic::AreaTrackerBolt>(quadtree,
                                                            std::vector<int>{});
        });
      });
  (void)registry.RegisterBolt(
      "BusStopsTrackerBolt",
      [stops](const XmlNode&) -> Result<dsps::BoltFactory> {
        return dsps::BoltFactory([stops] {
          return std::make_unique<traffic::BusStopsTrackerBolt>(stops);
        });
      });
  (void)registry.RegisterBolt(
      "EsperBolt",
      [esper_config](const XmlNode&) -> Result<dsps::BoltFactory> {
        return dsps::BoltFactory([esper_config] {
          return std::make_unique<traffic::EsperBolt>(esper_config);
        });
      });
  (void)registry.RegisterBolt(
      "EventsStorerBolt",
      [store](const XmlNode&) -> Result<dsps::BoltFactory> {
        return dsps::BoltFactory([store] {
          return std::make_unique<traffic::EventsStorerBolt>(store.get());
        });
      });

  auto loaded = dsps::LoadTopologyFromXml(kSubmission, registry);
  if (!loaded.ok()) {
    std::fprintf(stderr, "xml load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded topology with %zu components and %zu rules\n",
              loaded->topology.components().size(), loaded->rules.size());

  // Install the XML rules on every Esper task.
  const dsps::ComponentDef* esper = loaded->topology.Find("esper");
  esper_config->rules_per_task.assign(
      static_cast<size_t>(esper->num_tasks), loaded->rules);

  dsps::LocalRuntime runtime(std::move(loaded->topology), {});
  if (!runtime.Start().ok()) return 1;
  runtime.AwaitCompletion();

  auto esper_totals = runtime.metrics()->Totals("esper");
  auto detections = store->RowCount(traffic::EventsStorerBolt::kTableName);
  std::printf("esper bolt processed %llu tuples (avg %.1f us); %zu detections "
              "stored\n",
              static_cast<unsigned long long>(esper_totals.executed),
              esper_totals.avg_latency_micros,
              detections.ok() ? *detections : 0);
  return 0;
}
