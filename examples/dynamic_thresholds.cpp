// Dynamic thresholds: the lambda loop of Sections 4.1.3 / 4.3.1.
//
// Demonstrates why static rules are wrong for traffic data: "normal" delay
// during the rush hour differs from mid-morning, so a single threshold either
// floods the operator at 8 am or misses incidents at 11 am. The batch layer
// recomputes per-(location, hour) statistics and the engines' threshold
// streams are refreshed in place (std:unique replaces stale values).
//
//   ./dynamic_thresholds

#include <cstdio>

#include "core/dynamic.h"
#include "core/retrieval.h"
#include "core/system.h"
#include "traffic/generator.h"

using namespace insight;

namespace {

/// Streams enriched traces into one engine, returns fired count.
size_t Stream(cep::Engine* engine, const std::vector<traffic::BusTrace>& traces) {
  auto type = engine->GetEventType("bus");
  size_t before_total = engine->GetStats().matches_fired;
  for (const traffic::BusTrace& t : traces) {
    cep::EventBuilder builder(*type);
    builder.Set("timestamp", t.timestamp)
        .Set("line", t.line_id)
        .Set("direction", t.direction)
        .Set("lon", t.position.lon)
        .Set("lat", t.position.lat)
        .Set("delay", t.delay_seconds)
        .Set("congestion", t.congestion)
        .Set("reported_stop", t.reported_stop_id)
        .Set("vehicle", t.vehicle_id)
        .Set("speed", t.speed_kmh)
        .Set("actual_delay", t.actual_delay)
        .Set("hour", static_cast<int64_t>(t.hour))
        .Set("date_type", t.date_type)
        .Set("area_leaf", t.area_leaf)
        .Set("bus_stop", t.bus_stop)
        .SetTimestamp(t.timestamp);
    engine->SendEvent(builder.Build());
  }
  return engine->GetStats().matches_fired - before_total;
}

}  // namespace

int main() {
  // Build the substrate: quadtree + stops + a day of history.
  traffic::TraceGenerator::Options day;
  day.num_buses = 120;
  day.num_lines = 15;
  day.start_hour = 7;
  day.end_hour = 12;
  day.seed = 99;
  day.incidents_per_hour = 2.0;

  geo::RegionQuadtree quadtree = geo::BuildDublinQuadtree(day.seed, 500);
  geo::BusStopIndex stops;
  {
    traffic::TraceGenerator sampler(day);
    stops.Build(sampler.CollectStopReports(1500));
  }

  traffic::TraceGenerator history_gen(day);
  std::vector<traffic::BusTrace> history = history_gen.GenerateAll(40000);
  core::EnrichTraces(&history, quadtree, stops);

  dfs::MiniDfs fs;
  storage::TableStore store;
  core::DynamicRuleManager manager(&fs, &store, {});
  if (!manager.AppendHistory(history).ok()) return 1;
  auto rows = manager.RunBatchCycle();
  if (!rows.ok()) return 1;
  std::printf("batch cycle 1: %zu statistics rows\n", *rows);

  // Show how the learned thresholds vary over the day for one busy area.
  std::map<int64_t, int> area_counts;
  for (const auto& t : history) {
    if (t.area_leaf >= 0) ++area_counts[t.area_leaf];
  }
  int64_t busy_area = 0;
  int best = -1;
  for (const auto& [area, count] : area_counts) {
    if (count > best) {
      best = count;
      busy_area = area;
    }
  }
  std::printf("\nlearned delay thresholds (mean + 1.5*stdev) for area %lld:\n",
              static_cast<long long>(busy_area));
  for (int hour = 7; hour < 12; ++hour) {
    auto threshold =
        storage::QueryThresholdFor(store, "delay", 1.5, busy_area, hour,
                                   "weekday");
    if (threshold.ok()) {
      std::printf("  hour %02d:00  threshold %7.1f s\n", hour, *threshold);
    }
  }

  // One engine with delay rules over areas; threshold-stream retrieval.
  std::vector<core::RuleTemplate> rules = {
      core::MakeRule("delay_dynamic", "delay", "area_leaf", 10)};
  cep::Engine engine;
  (void)engine.RegisterEventType("bus", traffic::BusEventFields({}));
  for (const char* attr : {"delay", "actual_delay", "speed", "congestion"}) {
    for (const char* suffix : {"", "_stop"}) {
      (void)engine.RegisterEventType(
          traffic::ThresholdEventTypeName(std::string(attr) + suffix),
          traffic::ThresholdEventFields());
    }
  }
  core::RetrievalOptions options;
  options.s = 1.5;
  auto setup = core::BuildRetrieval(core::ThresholdRetrieval::kThresholdStream,
                                    rules, &store, options);
  if (!setup.ok()) return 1;
  for (const auto& [name, epl] : setup->rules) {
    auto stmt = engine.AddStatement(epl, name);
    if (!stmt.ok()) {
      std::fprintf(stderr, "%s\n", stmt.status().ToString().c_str());
      return 1;
    }
  }
  setup->preload(&engine, 0);

  // Live day with more incidents; stream it in two halves with a batch
  // refresh in between (the paper invokes the job periodically, e.g. hourly).
  traffic::TraceGenerator::Options live = day;
  live.seed = 123;
  live.incidents_per_hour = 5.0;
  traffic::TraceGenerator live_gen(live);
  std::vector<traffic::BusTrace> live_traces = live_gen.GenerateAll(40000);
  core::EnrichTraces(&live_traces, quadtree, stops);
  size_t half = live_traces.size() / 2;
  std::vector<traffic::BusTrace> first_half(live_traces.begin(),
                                            live_traces.begin() + half);
  std::vector<traffic::BusTrace> second_half(live_traces.begin() + half,
                                             live_traces.end());

  size_t fired1 = Stream(&engine, first_half);
  std::printf("\nfirst half of the day: %zu detections over %zu traces\n",
              fired1, first_half.size());

  // Periodic batch refresh: fold the observed first half into history, rerun
  // the statistics job, push the refreshed thresholds into the engine.
  if (!manager.AppendHistory(first_half).ok()) return 1;
  auto rows2 = manager.RunBatchCycle();
  if (!rows2.ok()) return 1;
  auto refreshed = manager.RefreshEngine(&engine, rules);
  if (!refreshed.ok()) return 1;
  std::printf("batch cycle 2: %zu rows; refreshed %zu thresholds in-place\n",
              *rows2, *refreshed);

  size_t fired2 = Stream(&engine, second_half);
  std::printf("second half of the day: %zu detections over %zu traces\n",
              fired2, second_half.size());
  std::printf("\nthresholds adapted without recompiling a single rule.\n");
  return 0;
}
