// Consecutive stops: the DCC motivating requirement of Section 3.1 — "a
// rule that checks if in three consecutive bus stops, buses traversing them,
// reported simultaneously delays greater than the expected".
//
// Per-stop delay anomalies come from the generic rule template running over
// the canonical bus stops; the ConsecutiveStopsDetector composes them along
// each line's route order and fires when three consecutive stops are
// anomalous within a 15-minute window. An injected incident supplies the
// ground truth.
//
//   ./consecutive_stops

#include <cstdio>

#include <map>

#include "core/dynamic.h"
#include "core/retrieval.h"
#include "core/sequence.h"
#include "core/system.h"
#include "traffic/generator.h"

using namespace insight;

int main() {
  traffic::TraceGenerator::Options options;
  options.num_buses = 120;
  options.num_lines = 12;
  options.stops_per_line = 16;
  options.start_hour = 8;
  options.end_hour = 11;
  options.seed = 31;
  options.incidents_per_hour = 3.0;

  // Substrate: quadtree, canonical stops, per-stop statistics.
  geo::RegionQuadtree quadtree = geo::BuildDublinQuadtree(options.seed, 500);
  geo::BusStopIndex stops;
  {
    traffic::TraceGenerator sampler(options);
    stops.Build(sampler.CollectStopReports(2500));
  }
  std::printf("canonical bus stops: %zu\n", stops.stops().size());

  traffic::TraceGenerator history_gen(options);
  auto history = history_gen.GenerateAll(50000);
  core::EnrichTraces(&history, quadtree, stops);
  dfs::MiniDfs fs;
  storage::TableStore store;
  core::DynamicRuleManager manager(&fs, &store, {});
  if (!manager.AppendHistory(history).ok() || !manager.RunBatchCycle().ok()) {
    return 1;
  }

  // Register each line's route as the ordered canonical stops its buses
  // visit (derived from the history: stop sequence by median visit order).
  core::ConsecutiveStopsDetector::Options seq_options;
  seq_options.k = 3;
  seq_options.window_micros = 15 * 60 * 1'000'000LL;
  core::ConsecutiveStopsDetector detector(seq_options);
  {
    // order stops per (line, direction) by average timestamp-progress.
    std::map<std::pair<int, bool>, std::map<int64_t, std::pair<double, int>>>
        orders;
    std::map<int, MicrosT> first_seen;
    for (const auto& t : history) {
      if (t.bus_stop < 0) continue;
      auto& entry = orders[{t.line_id, t.direction}][t.bus_stop];
      // proxy for route position: distance from the line's first stop seen
      // by this vehicle would be ideal; average report time per vehicle trip
      // is good enough for a demo, use position along route via stop center
      // ordering below instead.
      entry.first += static_cast<double>(t.timestamp);
      entry.second += 1;
    }
    for (auto& [key, stop_map] : orders) {
      std::vector<std::pair<double, int64_t>> ordered;
      for (auto& [stop, acc] : stop_map) {
        ordered.push_back({acc.first / acc.second, stop});
      }
      std::sort(ordered.begin(), ordered.end());
      std::vector<int64_t> route;
      for (auto& [avg_ts, stop] : ordered) route.push_back(stop);
      if (static_cast<int>(route.size()) >= seq_options.k) {
        (void)detector.RegisterLine(key.first, key.second, std::move(route));
      }
    }
  }

  // Live day with incidents; per-stop anomaly = delay above the learned
  // threshold for that stop and hour.
  traffic::TraceGenerator::Options live = options;
  live.seed = 77;
  live.incidents_per_hour = 6.0;
  traffic::TraceGenerator live_gen(live);
  auto traces = live_gen.GenerateAll(50000);
  core::EnrichTraces(&traces, quadtree, stops);

  size_t anomalies = 0, sequences = 0;
  for (const auto& t : traces) {
    if (t.bus_stop < 0) continue;
    auto threshold = storage::QueryThresholdFor(store, "delay_stop", 1.5,
                                                t.bus_stop, t.hour, t.date_type);
    if (!threshold.ok() || t.delay_seconds <= *threshold) continue;
    ++anomalies;
    auto match = detector.Observe(t.line_id, t.direction, t.bus_stop,
                                  t.timestamp);
    if (match.has_value()) {
      ++sequences;
      if (sequences <= 5) {
        std::printf(
            "SEQUENCE line %d dir %d: stops [%lld %lld %lld] anomalous within "
            "%.1f min\n",
            match->line_id, match->direction ? 1 : 0,
            static_cast<long long>(match->stops[0]),
            static_cast<long long>(match->stops[1]),
            static_cast<long long>(match->stops[2]),
            static_cast<double>(match->last_timestamp - match->first_timestamp) /
                60e6);
      }
    }
  }
  std::printf("\n%zu per-stop anomalies -> %zu consecutive-stop sequences\n",
              anomalies, sequences);
  std::printf("ground truth: %zu injected incidents\n",
              live_gen.incidents().size());
  return 0;
}
