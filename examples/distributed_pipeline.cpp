// Multi-process traffic monitoring on loopback: a supervisor and N worker
// processes run the Listing-1-shaped pipeline
//
//   source (bus delays) -> detect (windowed average vs threshold) -> sink
//
// with each stage on a different worker, so every edge crosses the wire.
// The demo runs the topology twice — once in-process through LocalRuntime,
// once distributed — and shows the detection sets are identical. Pass
// --kill to SIGKILL the worker hosting the stateful detect tasks
// mid-stream: supervision restarts it, checkpoints restore its windows, the
// egress buffers retransmit, and the dedup ledgers suppress duplicates, so
// the results STILL match the fault-free in-process run.
//
//   ./distributed_pipeline              # 3 workers, fault-free
//   ./distributed_pipeline --kill      # kill + restart worker 1 mid-stream
//   ./distributed_pipeline --workers=4
//
// One binary plays every role: the supervisor re-execs itself with
// --insight-* flags to spawn each worker (the symmetric-binary model).

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "dist/options.h"
#include "dist/runtime.h"
#include "dsps/local_runtime.h"
#include "dsps/topology.h"
#include "reliability/state_store.h"

using insight::ByteReader;
using insight::ByteWriter;
using insight::Status;
using insight::dsps::Bolt;
using insight::dsps::Collector;
using insight::dsps::Fields;
using insight::dsps::LocalRuntime;
using insight::dsps::Snapshottable;
using insight::dsps::Spout;
using insight::dsps::TopologyBuilder;
using insight::dsps::Tuple;
using insight::dsps::Value;

namespace {

constexpr int kMessages = 80;
constexpr double kThreshold = 100.0;

/// Serial rooted source: bus delay readings cycling over 4 locations with a
/// ramp that crosses the threshold mid-stream.
class BusSpout : public Spout {
 public:
  bool NextTuple(Collector* collector) override {
    if (waiting_) return true;
    if (next_ >= kMessages) return false;
    int i = next_;
    collector->EmitRooted(static_cast<uint64_t>(i + 1),
                          {Value(int64_t{i + 1}), Value(int64_t{i % 4 + 1}),
                           Value(40.0 + 2.5 * static_cast<double>(i))});
    ++next_;
    waiting_ = true;
    return true;
  }
  void Ack(uint64_t) override { waiting_ = false; }
  void Fail(uint64_t) override { waiting_ = false; }

 private:
  int next_ = 0;
  bool waiting_ = false;
};

/// Listing-1 in miniature: per-location length-3 window; a reading whose
/// window average exceeds the threshold emits a (location, timestamp)
/// detection. Snapshottable so a killed worker restores mid-window state.
class AvgDetectBolt : public Bolt, public Snapshottable {
 public:
  void Execute(const Tuple& input, Collector* collector) override {
    int64_t timestamp = input.Get(0).AsInt();
    int64_t location = input.Get(1).AsInt();
    std::deque<double>& window = windows_[location];
    window.push_back(input.Get(2).AsDouble());
    if (window.size() > 3) window.pop_front();
    double sum = 0;
    for (double delay : window) sum += delay;
    if (sum / static_cast<double>(window.size()) > kThreshold) {
      collector->Emit({Value(location), Value(timestamp)});
    }
  }

  Status SnapshotState(std::string* out) const override {
    ByteWriter writer(out);
    writer.PutU32(static_cast<uint32_t>(windows_.size()));
    for (const auto& [location, window] : windows_) {
      writer.PutU64(static_cast<uint64_t>(location));
      writer.PutU32(static_cast<uint32_t>(window.size()));
      for (double delay : window) writer.PutDouble(delay);
    }
    return Status::OK();
  }
  Status RestoreState(const std::string& bytes) override {
    ByteReader reader(bytes);
    uint32_t locations = 0;
    if (!reader.GetU32(&locations)) return Status::ParseError("truncated");
    std::map<int64_t, std::deque<double>> restored;
    for (uint32_t i = 0; i < locations; ++i) {
      uint64_t location = 0;
      uint32_t length = 0;
      if (!reader.GetU64(&location) || !reader.GetU32(&length) || length > 3) {
        return Status::ParseError("truncated");
      }
      std::deque<double>& window = restored[static_cast<int64_t>(location)];
      for (uint32_t j = 0; j < length; ++j) {
        double delay = 0;
        if (!reader.GetDouble(&delay)) return Status::ParseError("truncated");
        window.push_back(delay);
      }
    }
    windows_ = std::move(restored);
    return Status::OK();
  }

 private:
  std::map<int64_t, std::deque<double>> windows_;
};

/// Counts detections; dumps "location timestamp count" lines at Cleanup
/// (results must escape the worker process). Snapshottable so a restart of
/// its worker keeps the counts.
class DetectionSink : public Bolt, public Snapshottable {
 public:
  explicit DetectionSink(std::string path) : path_(std::move(path)) {}

  void Execute(const Tuple& input, Collector*) override {
    counts_[{input.Get(0).AsInt(), input.Get(1).AsInt()}]++;
  }
  void Cleanup() override {
    std::ofstream out(path_, std::ios::trunc);
    for (const auto& [key, count] : counts_) {
      out << key.first << " " << key.second << " " << count << "\n";
    }
  }

  Status SnapshotState(std::string* out) const override {
    ByteWriter writer(out);
    writer.PutU32(static_cast<uint32_t>(counts_.size()));
    for (const auto& [key, count] : counts_) {
      writer.PutU64(static_cast<uint64_t>(key.first));
      writer.PutU64(static_cast<uint64_t>(key.second));
      writer.PutU32(static_cast<uint32_t>(count));
    }
    return Status::OK();
  }
  Status RestoreState(const std::string& bytes) override {
    ByteReader reader(bytes);
    uint32_t n = 0;
    if (!reader.GetU32(&n)) return Status::ParseError("truncated");
    std::map<std::pair<int64_t, int64_t>, int> restored;
    for (uint32_t i = 0; i < n; ++i) {
      uint64_t location = 0;
      uint64_t timestamp = 0;
      uint32_t count = 0;
      if (!reader.GetU64(&location) || !reader.GetU64(&timestamp) ||
          !reader.GetU32(&count)) {
        return Status::ParseError("truncated");
      }
      restored[{static_cast<int64_t>(location),
                static_cast<int64_t>(timestamp)}] = static_cast<int>(count);
    }
    counts_ = std::move(restored);
    return Status::OK();
  }

 private:
  std::string path_;
  std::map<std::pair<int64_t, int64_t>, int> counts_;
};

insight::dsps::Topology BuildTopology(const std::string& out_dir) {
  std::string detections = out_dir + "/detections.txt";
  TopologyBuilder builder;
  builder.SetSpout("source", [] { return std::make_unique<BusSpout>(); },
                   Fields({"timestamp", "location", "delay"}));
  builder
      .SetBolt("detect", [] { return std::make_unique<AvgDetectBolt>(); },
               Fields({"location", "timestamp"}), 2)
      .FieldsGrouping("source", {"location"});
  builder
      .SetBolt("sink",
               [detections] {
                 return std::make_unique<DetectionSink>(detections);
               },
               Fields({}))
      .GlobalGrouping("detect");
  auto topology = builder.Build();
  if (!topology.ok()) {
    std::fprintf(stderr, "topology: %s\n",
                 topology.status().ToString().c_str());
    std::exit(2);
  }
  return std::move(*topology);
}

insight::dist::DistOptions BuildOptions(uint32_t workers,
                                        const std::string& out_dir,
                                        const std::string& ckpt_dir) {
  insight::dist::DistOptions options;
  options.num_workers = workers;
  // Pin the pipeline stages to distinct workers (extras stay idle); every
  // edge crosses a process boundary.
  options.placement.worker_of = {
      {"source", 0}, {"detect", 1 % workers}, {"sink", 2 % workers}};
  options.runtime.enable_acking = true;
  options.runtime.ack_timeout_micros = 500'000;
  options.runtime.supervisor_interval_micros = 1'000;
  options.runtime.enable_checkpointing = true;
  options.runtime.checkpoint_interval_micros = 10'000;
  options.runtime.enable_replay_dedup = true;
  options.checkpoint_dir = ckpt_dir;
  options.worker_args = {"--app-workers=" + std::to_string(workers),
                         "--app-out=" + out_dir, "--app-ckpt=" + ckpt_dir};
  return options;
}

std::map<std::pair<int64_t, int64_t>, int> ReadDetections(
    const std::string& path) {
  std::map<std::pair<int64_t, int64_t>, int> detections;
  std::ifstream in(path);
  int64_t location;
  int64_t timestamp;
  int count;
  while (in >> location >> timestamp >> count) {
    detections[{location, timestamp}] = count;
  }
  return detections;
}

std::string FlagValue(int argc, char** argv, const char* prefix) {
  size_t length = std::strlen(prefix);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, length) == 0) return argv[i] + length;
  }
  return "";
}

std::string MakeTempDir(const char* what) {
  std::string tmpl = std::string("/tmp/insight-demo-") + what + "-XXXXXX";
  std::vector<char> buffer(tmpl.begin(), tmpl.end());
  buffer.push_back('\0');
  if (::mkdtemp(buffer.data()) == nullptr) {
    std::perror("mkdtemp");
    std::exit(2);
  }
  return buffer.data();
}

}  // namespace

int main(int argc, char** argv) {
  // Worker role: spawned by the supervisor below with --insight-* flags.
  insight::dist::WorkerSpec spec;
  if (insight::dist::ParseWorkerSpec(argc, argv, &spec)) {
    uint32_t workers = static_cast<uint32_t>(
        std::strtoul(FlagValue(argc, argv, "--app-workers=").c_str(), nullptr, 10));
    std::string out_dir = FlagValue(argc, argv, "--app-out=");
    std::string ckpt_dir = FlagValue(argc, argv, "--app-ckpt=");
    return insight::dist::RunWorker(
        spec, BuildTopology(out_dir), BuildOptions(workers, out_dir, ckpt_dir));
  }

  uint32_t workers = 3;
  bool kill = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      workers = static_cast<uint32_t>(std::strtoul(argv[i] + 10, nullptr, 10));
    } else if (std::strcmp(argv[i], "--kill") == 0) {
      kill = true;
    }
  }
  if (workers < 1) workers = 1;

  // Reference: the identical topology, one process, no network.
  std::string local_dir = MakeTempDir("local");
  {
    LocalRuntime::Options options =
        BuildOptions(workers, local_dir, "").runtime;
    insight::reliability::InMemoryStateStore store;
    options.state_store = &store;
    LocalRuntime runtime(BuildTopology(local_dir), options);
    if (!runtime.Start().ok()) return 2;
    runtime.AwaitCompletion();
  }
  auto reference = ReadDetections(local_dir + "/detections.txt");
  std::printf("in-process LocalRuntime: %zu detections\n", reference.size());

  // The cluster: same topology across worker processes on loopback.
  std::string out_dir = MakeTempDir("dist");
  std::string ckpt_dir = MakeTempDir("ckpt");
  insight::dist::DistributedRuntime runtime(
      BuildTopology(out_dir), BuildOptions(workers, out_dir, ckpt_dir));
  Status status = runtime.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "start: %s\n", status.ToString().c_str());
    return 2;
  }
  std::printf("supervisor: %u workers spawned on loopback%s\n", workers,
              kill ? ", will kill worker 1 mid-stream" : "");
  if (kill) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    runtime.KillWorker(1 % workers);
  }
  int rc = runtime.WaitForCompletion(120'000'000);
  if (rc != 0) {
    std::fprintf(stderr, "distributed run failed (rc=%d)\n", rc);
    return rc;
  }

  auto distributed = ReadDetections(out_dir + "/detections.txt");
  std::printf("distributed run:         %zu detections, %llu worker restart(s)\n",
              distributed.size(),
              static_cast<unsigned long long>(runtime.worker_restarts()));
  bool identical = distributed == reference;
  std::printf("results identical to LocalRuntime: %s\n",
              identical ? "yes" : "NO");
  if (!identical) return 1;
  std::printf("\nfirst detections (location, timestamp):\n");
  int shown = 0;
  for (const auto& [key, count] : distributed) {
    std::printf("  location %lld at t=%lld (x%d)\n",
                static_cast<long long>(key.first),
                static_cast<long long>(key.second), count);
    if (++shown == 5) break;
  }
  return 0;
}
