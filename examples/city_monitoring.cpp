// City monitoring: the full Figure 3 / Figure 8 system end to end.
//
// Builds the Dublin quadtree, derives canonical bus stops with DENCLUE,
// bootstraps per-location statistics through the MapReduce batch layer,
// partitions and allocates the Table 6 rules onto multiple Esper engines
// (Algorithms 1 and 2), streams a synthetic morning of bus traffic through
// the Storm-like topology, and reports what was detected.
//
//   ./city_monitoring

#include <cstdio>

#include "common/logging.h"
#include "core/system.h"

using insight::core::MakeRule;
using insight::core::TrafficManagementSystem;

int main() {
  insight::SetLogLevel(insight::LogLevel::kInfo);

  TrafficManagementSystem::Config config;
  config.generator.num_buses = 150;
  config.generator.num_lines = 20;
  config.generator.start_hour = 7;
  config.generator.end_hour = 11;
  config.generator.incidents_per_hour = 3.0;
  config.generator.seed = 2026;
  config.max_traces = 30000;
  config.bootstrap_traces = 30000;
  config.rules = {
      MakeRule("delay_areas", "delay", "area_leaf", 10),
      MakeRule("speed_areas", "speed", "area_leaf", 10),
      MakeRule("actual_delay_areas", "actual_delay", "area_leaf", 10),
      MakeRule("delay_stops", "delay", "bus_stop", 10),
      MakeRule("speed_stops", "speed", "bus_stop", 10),
  };
  config.num_esper_engines = 6;
  config.retrieval_options.s = 2.0;  // alert at mean + 2 stdev

  TrafficManagementSystem system(config);
  std::printf("initializing: quadtree, bus stops, batch bootstrap...\n");
  auto st = system.Initialize();
  if (!st.ok()) {
    std::fprintf(stderr, "init failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("quadtree: %zu regions, max layer %d\n",
              system.quadtree().num_regions(), system.quadtree().max_layer());
  std::printf("canonical bus stops: %zu\n", system.bus_stops().stops().size());
  for (const std::string& table : system.store()->TableNames()) {
    auto rows = system.store()->RowCount(table);
    std::printf("  %-28s %6zu rows\n", table.c_str(), rows.ok() ? *rows : 0);
  }

  std::printf("\nstreaming %zu traces through the topology...\n",
              config.max_traces);
  auto report = system.Run();
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("done in %.2f s\n", report->wall_seconds);
  std::printf("engines per grouping:");
  for (int engines : report->engines_per_grouping) std::printf(" %d", engines);
  std::printf("\nesper bolt: %llu tuples, avg %.1f us/tuple, %.0f tuples/s\n",
              static_cast<unsigned long long>(report->esper.executed),
              report->esper.avg_latency_micros, report->esper_throughput);
  std::printf("detections stored: %zu\n", report->detections);

  // Show a few stored detections (the events an operator would see).
  auto events = system.store()->SelectAll("detected_events");
  if (events.ok()) {
    size_t show = std::min<size_t>(events->rows.size(), 8);
    std::printf("\nfirst %zu detections:\n", show);
    for (size_t i = 0; i < show; ++i) {
      const auto& row = events->rows[i];
      std::printf("  rule=%-24s attr=%-12s location=%-6lld value=%8.2f "
                  "threshold=%8.2f\n",
                  row[0].AsString().c_str(), row[1].AsString().c_str(),
                  static_cast<long long>(row[2].AsInt()), row[3].AsDouble(),
                  row[4].AsDouble());
    }
  }
  return 0;
}
