// Allocation planner: the Start-Up Optimization component (Section 4.2) as a
// standalone planning tool. Given rule groupings and an engine budget, it
// prints the latency model's estimates, Algorithm 2's engine allocation for
// growing budgets, and Algorithm 1's region partition balance.
//
//   ./allocation_planner

#include <cstdio>

#include "common/rng.h"
#include "core/allocation.h"
#include "core/partitioning.h"
#include "model/latency_model.h"

using namespace insight;

int main() {
  model::LatencyModel model = model::LatencyModel::Default();
  core::RulesAllocator allocator(&model);

  // Three groupings with different weights: a light last-event family, the
  // heavy 100-event windows, and the bus stops.
  std::vector<core::RuleGrouping> groupings(3);
  groupings[0].name = "areas/last-event";
  groupings[1].name = "areas/last-100";
  groupings[2].name = "bus-stops/last-10";
  const size_t windows[] = {1, 100, 10};
  const char* locations[] = {"area_leaf", "area_leaf", "bus_stop"};
  for (size_t g = 0; g < groupings.size(); ++g) {
    for (int r = 0; r < 5; ++r) {
      groupings[g].rules.push_back(core::MakeRule(
          groupings[g].name + "#" + std::to_string(r), "delay", locations[g],
          windows[g]));
    }
    groupings[g].input_rate = 3000.0;
    groupings[g].thresholds_per_rule = 400;
  }

  std::printf("estimated per-tuple engine latency (Functions 1+2):\n");
  for (const auto& grouping : groupings) {
    std::printf("  %-20s %8.1f us\n", grouping.name.c_str(),
                allocator.GroupingEngineLatency(grouping));
  }

  std::printf("\nAlgorithm 2 allocations as the engine budget grows:\n");
  std::printf("%10s  %-18s %-18s %-18s\n", "engines", groupings[0].name.c_str(),
              groupings[1].name.c_str(), groupings[2].name.c_str());
  for (int budget : {3, 5, 8, 12, 16, 24}) {
    auto allocation = allocator.Allocate(groupings, budget);
    if (!allocation.ok()) continue;
    std::printf("%10d  %-18d %-18d %-18d\n", budget,
                allocation->engines_per_grouping[0],
                allocation->engines_per_grouping[1],
                allocation->engines_per_grouping[2]);
  }

  // Algorithm 1: partition 120 regions with zipf-ish rates over 6 engines.
  std::printf("\nAlgorithm 1 partition balance (120 regions, 6 engines):\n");
  std::vector<core::RegionRate> rates;
  Rng rng(5);
  for (int64_t region = 0; region < 120; ++region) {
    rates.push_back({region, 1000.0 / static_cast<double>(region + 1) +
                                 rng.Uniform(0.0, 5.0)});
  }
  auto assignment = core::PartitionRegions(rates, 6);
  if (!assignment.ok()) return 1;
  auto engine_rates = core::EngineRates(*assignment, rates);
  double total = 0;
  for (double r : engine_rates) total += r;
  for (size_t e = 0; e < engine_rates.size(); ++e) {
    std::printf("  engine %zu: rate %8.1f (%5.1f%% of total)\n", e,
                engine_rates[e], 100.0 * engine_rates[e] / total);
  }

  // Co-location: what Function 3 predicts when engines share nodes.
  std::printf("\nFunction 3 co-location estimates (engine at 50 us/tuple):\n");
  for (int neighbours : {0, 1, 2, 4}) {
    std::vector<double> others(static_cast<size_t>(neighbours), 50.0);
    std::printf("  %d co-located engines -> %.1f us effective\n", neighbours,
                model.ColocatedLatency(50.0, others));
  }
  return 0;
}
