// At-least-once delivery under injected faults in ~100 lines.
//
// Builds a source -> relay -> sink pipeline, arms a deterministic fault plan
// (one executor crash plus a 2% tuple-drop rate on the relay->sink route),
// and runs it twice: fire-and-forget, then with Storm-style acking. The
// acked run replays every lost tree until the sink has seen all ids; the
// unacked run silently loses the dropped tuples.
//
//   ./reliable_pipeline

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <set>

#include "dsps/local_runtime.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "dsps/topology.h"
#include "reliability/fault_injector.h"

using insight::dsps::Bolt;
using insight::dsps::Collector;
using insight::dsps::Fields;
using insight::dsps::LocalRuntime;
using insight::dsps::Spout;
using insight::dsps::TaskContext;
using insight::dsps::TopologyBuilder;
using insight::dsps::Tuple;
using insight::dsps::Value;
using insight::reliability::FaultInjector;
using insight::reliability::FaultPlan;

namespace {

constexpr int kTuples = 5000;

// EmitRooted hands the runtime a message id it can replay on failure; with
// acking disabled it degrades to a plain Emit.
class NumberSpout : public Spout {
 public:
  explicit NumberSpout(int n) : n_(n) {}
  bool NextTuple(Collector* collector) override {
    if (next_ >= n_) return false;
    collector->EmitRooted(static_cast<uint64_t>(next_),
                          {Value(int64_t{next_})});
    return ++next_ < n_;
  }
  void Ack(uint64_t) override { ++acks_; }
  void Fail(uint64_t) override { ++fails_; }
  int acks_ = 0;
  int fails_ = 0;

 private:
  int n_;
  int next_ = 0;
};

class RelayBolt : public Bolt {
 public:
  void Execute(const Tuple& input, Collector* collector) override {
    collector->Emit({input.Get(0)});
  }
};

struct SeenIds {
  insight::Mutex mutex;
  std::set<int64_t> ids;
};

class RecordingSink : public Bolt {
 public:
  explicit RecordingSink(std::shared_ptr<SeenIds> seen)
      : seen_(std::move(seen)) {}
  void Execute(const Tuple& input, Collector*) override {
    insight::MutexLock lock(seen_->mutex);
    seen_->ids.insert(input.Get(0).AsInt());
  }

 private:
  std::shared_ptr<SeenIds> seen_;
};

void RunOnce(bool acking) {
  // Deterministic faults: relay task 0 dies on its 400th execution, and 2%
  // of relay->sink deliveries vanish (seeded, so both runs see the same
  // drop pattern).
  FaultPlan plan;
  plan.seed = 42;
  plan.crashes.push_back(
      {.component = "relay", .task = 0, .after_executions = 400,
       .repeat = false});
  plan.routes.push_back(
      {.source = "relay", .dest = "sink", .drop_probability = 0.02});
  FaultInjector injector(plan);

  auto seen = std::make_shared<SeenIds>();
  TopologyBuilder builder;
  builder.SetSpout("source",
                   [] { return std::make_unique<NumberSpout>(kTuples); },
                   Fields({"v"}));
  builder
      .SetBolt("relay", [] { return std::make_unique<RelayBolt>(); },
               Fields({"v"}), /*executors=*/2, /*tasks=*/2)
      .ShuffleGrouping("source");
  builder
      .SetBolt("sink", [seen] { return std::make_unique<RecordingSink>(seen); },
               Fields({}))
      .ShuffleGrouping("relay");
  auto topology = builder.Build();
  if (!topology.ok()) {
    std::fprintf(stderr, "topology: %s\n", topology.status().ToString().c_str());
    return;
  }

  LocalRuntime::Options options;
  options.enable_acking = acking;
  options.ack_timeout_micros = 100'000;  // 100 ms: fast replay rounds
  options.max_replays = 10;
  options.replay_backoff_micros = 10'000;
  options.supervisor_interval_micros = 2'000;
  options.fault_injector = &injector;

  LocalRuntime runtime(std::move(*topology), options);
  if (!runtime.Start().ok()) return;
  runtime.AwaitCompletion();

  auto totals = runtime.metrics()->Totals("source");
  std::printf("acking %-3s | sink saw %zu/%d ids | crashes=%llu drops=%llu "
              "restarts=%llu | acked=%llu replayed=%llu failed=%llu\n",
              acking ? "on" : "off", seen->ids.size(), kTuples,
              static_cast<unsigned long long>(injector.crashes_injected()),
              static_cast<unsigned long long>(injector.tuples_dropped()),
              static_cast<unsigned long long>(runtime.executor_restarts()),
              static_cast<unsigned long long>(totals.acked),
              static_cast<unsigned long long>(totals.replayed),
              static_cast<unsigned long long>(totals.failed));
}

}  // namespace

int main() {
  std::printf("Same faults, two delivery contracts (%d tuples):\n\n", kTuples);
  RunOnce(/*acking=*/false);
  RunOnce(/*acking=*/true);
  std::printf("\nWith acking every id reaches the sink at least once; the "
              "fire-and-forget run\nloses whatever the injector dropped.\n");
  return 0;
}
