// Reproduces Section 5.1 / Figure 9: fitting the latency estimation model.
//
// Function 1 (Table 3): rule latency from (window length, #thresholds),
// measured on the real cep::Engine over the Table 6 parameter grid.
// Function 2 (Table 4): engine latency when two rule sets share an engine,
// fit from (latency1, latency2) -> measured combined latency. The paper
// found the 1st-order polynomial has ~60% lower mean absolute error than the
// 2nd-order one on held-out data; this bench reports the same comparison.

#include <cstdio>

#include "bench_util.h"
#include "model/latency_model.h"
#include "model/regression.h"

namespace insight {
namespace bench {
namespace {

core::RuleTemplate Rule(const std::string& name, size_t window) {
  return core::MakeRule(name, "delay", "area_leaf", window);
}

void FitFunction1() {
  std::printf("=== Function 1: single-rule latency(window, thresholds) ===\n");
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  std::printf("%12s %12s %16s\n", "window", "thresholds", "measured_us");
  for (size_t window : {1u, 10u, 50u, 100u, 200u, 300u}) {
    for (size_t locations : {8u, 24u, 48u}) {
      double latency =
          MeasureEngineServiceMicros({Rule("r", window)}, locations, 3000);
      double thresholds = static_cast<double>(locations * 24 * 2);
      x.push_back({static_cast<double>(window), thresholds});
      y.push_back(latency);
      std::printf("%12zu %12.0f %16.3f\n", window, thresholds, latency);
    }
  }
  model::PolynomialRegression f1(2, 1);
  auto status = f1.Fit(x, y);
  std::printf("fit %s\n", status.ok() ? "ok" : status.ToString().c_str());
  std::printf("Function 1: latency_us = %s\n", f1.ToString().c_str());
  std::printf("train MAE: %.3f us\n\n", f1.MeanAbsoluteError(x, y));
}

void FitFunction2() {
  std::printf("=== Function 2: engine latency(latency1, latency2) ===\n");
  // Rule-set pairs: measure each alone, then combined in one engine.
  std::vector<size_t> windows = {1, 10, 50, 100, 200, 300};
  struct Sample {
    double lat1, lat2, combined;
  };
  std::vector<Sample> samples;
  std::vector<double> singles(windows.size());
  for (size_t i = 0; i < windows.size(); ++i) {
    singles[i] = MeasureEngineServiceMicros({Rule("a", windows[i])}, 32, 3000);
  }
  std::printf("%10s %10s %12s %12s %14s\n", "win1", "win2", "lat1_us",
              "lat2_us", "combined_us");
  for (size_t i = 0; i < windows.size(); ++i) {
    for (size_t j = i; j < windows.size(); ++j) {
      double combined = MeasureEngineServiceMicros(
          {Rule("a", windows[i]), Rule("b", windows[j])}, 32, 3000);
      samples.push_back({singles[i], singles[j], combined});
      std::printf("%10zu %10zu %12.3f %12.3f %14.3f\n", windows[i], windows[j],
                  singles[i], singles[j], combined);
    }
  }

  // Train/test split: even samples train, odd samples test (the paper splits
  // its experiment data the same way: "we splitted it in training and test
  // set").
  std::vector<std::vector<double>> train_x, test_x;
  std::vector<double> train_y, test_y;
  for (size_t k = 0; k < samples.size(); ++k) {
    if (k % 2 == 0) {
      train_x.push_back({samples[k].lat1, samples[k].lat2});
      train_y.push_back(samples[k].combined);
    } else {
      test_x.push_back({samples[k].lat1, samples[k].lat2});
      test_y.push_back(samples[k].combined);
    }
  }
  model::PolynomialRegression first(2, 1);
  model::PolynomialRegression second(2, 2);
  auto s1 = first.Fit(train_x, train_y);
  auto s2 = second.Fit(train_x, train_y);
  std::printf("\n1st-order fit %s: %s\n",
              s1.ok() ? "ok" : s1.ToString().c_str(), first.ToString().c_str());
  std::printf("2nd-order fit %s: %s\n",
              s2.ok() ? "ok" : s2.ToString().c_str(), second.ToString().c_str());
  double mae1 = first.MeanAbsoluteError(test_x, test_y);
  double mae2 = second.MeanAbsoluteError(test_x, test_y);
  std::printf("test MAE 1st order: %.3f us\n", mae1);
  std::printf("test MAE 2nd order: %.3f us\n", mae2);
  std::printf("paper: 1st order has lower avg abs error (around 60%%) -> %s\n\n",
              mae1 <= mae2 ? "REPRODUCED (1st <= 2nd)" : "NOT reproduced");
}

void FitFunction3() {
  std::printf("=== Function 3: co-location (modeled) ===\n");
  // Without real VMs, Function 3 is fit against the DES ground truth: an
  // engine co-located with others on a 1-core node sees its effective
  // per-tuple latency inflated by the co-located engines' work. The DES
  // (src/sim) models this exactly; the linear fit below is the paper's
  // regression form over that behaviour.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (double own : {5.0, 10.0, 20.0}) {
    for (double others : {0.0, 5.0, 10.0, 20.0, 40.0}) {
      // Timesharing a single core: effective service = own + others
      // (round-robin interleave at tuple granularity).
      x.push_back({own, others});
      y.push_back(own + others);
    }
  }
  model::PolynomialRegression f3(2, 1);
  auto status = f3.Fit(x, y);
  std::printf("fit %s\n", status.ok() ? "ok" : status.ToString().c_str());
  std::printf("Function 3: adjusted_us = %s\n\n", f3.ToString().c_str());
}

}  // namespace
}  // namespace bench
}  // namespace insight

int main() {
  std::printf("Figure 9 / Section 5.1 reproduction: regression model\n\n");
  insight::bench::FitFunction1();
  insight::bench::FitFunction2();
  insight::bench::FitFunction3();
  return 0;
}
