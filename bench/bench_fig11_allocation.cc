// Reproduces Figure 11 / Section 5.4: throughput of the proposed rules
// allocation algorithm vs the round-robin-per-layer baseline, for two
// workloads, as the number of Esper engines grows.
//
//   Workload 1: rules with window lengths {1, 10, 100}
//   Workload 2: rules with window lengths {100, 1000}
//
// Rules span three quadtree layers plus the bus stops (five attribute rules
// each). The proposed algorithm groups layers together (partitioning at the
// coarsest layer) so a tuple is transmitted once, and considers splitting
// the bus stops into their own engines when that lowers the bottleneck
// score; round-robin gives each layer its own engine set, so every tuple is
// re-transmitted to all four layers.
//
// The sweep runs twice: once with the default latency-model coefficients and
// once with Function 1 recalibrated from live monitor windows — probe
// topologies (SyntheticBusSpout -> one Esper task) run through the real
// runtime, their WindowReports feed LatencyModel::FitFromWindowReports, and
// the allocation is re-planned from measured latencies (the observability
// feedback loop of Section 4.1.4's "measure, then estimate" workflow).

#include <cstdio>
#include <memory>

#include "dsps/local_runtime.h"
#include "sim_bench_util.h"
#include "traffic/bolts.h"

namespace insight {
namespace bench {
namespace {

/// One location family of the workload.
struct LayerRules {
  std::string name;
  std::vector<core::RuleTemplate> rules;
};

std::vector<LayerRules> MakeWorkload(const std::vector<size_t>& windows) {
  // Each layer's rules use one of the workload's window lengths, so layer
  // loads are unequal — a round-robin allocator that ignores load starves
  // the heavy layers while over-provisioning the light ones.
  const char* attrs[] = {"delay", "actual_delay", "speed", "congestion",
                         "delay"};
  std::vector<LayerRules> layers;
  int family = 0;
  for (const char* layer_name : {"layer2", "layer3", "leaves", "stops"}) {
    LayerRules layer;
    layer.name = layer_name;
    bool stops = std::string(layer_name) == "stops";
    size_t window = windows[static_cast<size_t>(family) % windows.size()];
    for (int a = 0; a < 5; ++a) {
      layer.rules.push_back(core::MakeRule(
          std::string(layer_name) + "_" + attrs[a] + std::to_string(a),
          attrs[a], stops ? "bus_stop" : "area_leaf", window,
          stops ? -1 : family + 2));
    }
    layers.push_back(std::move(layer));
    ++family;
  }
  return layers;
}

core::RuleGrouping MakeGrouping(const std::string& name,
                                std::vector<core::RuleTemplate> rules,
                                double rate) {
  core::RuleGrouping grouping;
  grouping.name = name;
  grouping.rules = std::move(rules);
  grouping.input_rate = rate;
  grouping.thresholds_per_rule = 32 * 24 * 2;
  return grouping;
}

constexpr double kRate = 12000.0;  // offered tuples/second (full speed)
constexpr int kNodes = 7;

// ---------------------------------------------------------------------------
// Measured calibration: the observability feedback loop
// ---------------------------------------------------------------------------

/// One calibration probe: a single Esper task running one generic delay rule
/// at `window`, joined against a preloaded threshold stream covering
/// (`num_locations` x 24 hours x 2 day types) rows, fed synthetic enriched
/// tuples through the real runtime so the monitor windows measure the full
/// execute path the model is supposed to predict.
struct ProbePoint {
  size_t window = 1;
  size_t num_locations = 8;
};

std::vector<model::WindowMeasurement> RunProbe(const ProbePoint& point,
                                               uint64_t num_tuples) {
  core::RuleTemplate rule =
      core::MakeRule("probe_delay", "delay", "area_leaf", point.window);
  auto epl = rule.ToEpl();
  INSIGHT_CHECK(epl.ok()) << epl.status().ToString();

  auto config = std::make_shared<traffic::EsperBoltConfig>();
  config->rules_per_task = {{{rule.name, *epl}}};
  const size_t num_locations = point.num_locations;
  config->preload = [num_locations](cep::Engine* engine, int /*task*/) {
    auto type = engine->GetEventType(traffic::ThresholdEventTypeName("delay"));
    INSIGHT_CHECK(type.ok());
    for (size_t loc = 0; loc < num_locations; ++loc) {
      for (int64_t hour = 0; hour < 24; ++hour) {
        for (const char* day : {"weekday", "weekend"}) {
          cep::EventBuilder builder(*type);
          builder.Set("location", static_cast<int64_t>(loc))
              .Set("hour", hour)
              .Set("day", day)
              .Set("value", 1e9);  // unreachable: probe the no-match path
          engine->SendEvent(builder.Build());
        }
      }
    }
  };

  dsps::TopologyBuilder builder;
  builder.SetSpout(
      "probe_source",
      [num_tuples, num_locations] {
        return std::make_unique<traffic::SyntheticBusSpout>(num_tuples,
                                                            num_locations);
      },
      traffic::EnrichedFields({}));
  builder
      .SetBolt("esper",
               [config] { return std::make_unique<traffic::EsperBolt>(config); },
               traffic::DetectionFields(), 1)
      .ShuffleGrouping("probe_source");
  auto topology = builder.Build();
  INSIGHT_CHECK(topology.ok()) << topology.status().ToString();

  dsps::LocalRuntime::Options options;
  options.monitor_interval_micros = 50'000;  // several windows per probe
  dsps::LocalRuntime runtime(std::move(*topology), options);
  INSIGHT_CHECK(runtime.Start().ok());
  runtime.AwaitCompletion();
  SystemClock clock;
  runtime.metrics()->TakeWindowSnapshot(clock.NowMicros());  // tail window

  std::vector<model::WindowMeasurement> measurements;
  for (const auto& report : runtime.metrics()->window_reports()) {
    if (report.component != "esper" || report.executed == 0) continue;
    model::WindowMeasurement m;
    m.window_length = static_cast<double>(point.window);
    m.num_thresholds = static_cast<double>(num_locations * 24 * 2);
    m.avg_latency_micros = report.avg_latency_micros;
    m.executed = report.executed;
    measurements.push_back(m);
  }
  return measurements;
}

/// Recalibrates Function 1 from probe runs spanning the workloads' window
/// lengths (1000-event windows are left to the linear extrapolation, as the
/// paper's fit does for unprobed configurations). Falls back to the default
/// model if the fit fails (degenerate system).
model::LatencyModel CalibrateFromWindowReports() {
  const ProbePoint kProbes[] = {
      {1, 8}, {1, 32}, {10, 8}, {10, 32}, {100, 8}, {100, 32},
  };
  std::vector<model::WindowMeasurement> measurements;
  for (const ProbePoint& probe : kProbes) {
    auto probe_measurements = RunProbe(probe, /*num_tuples=*/4000);
    measurements.insert(measurements.end(), probe_measurements.begin(),
                        probe_measurements.end());
  }
  model::LatencyModel model = model::LatencyModel::Default();
  Status fit = model.FitFromWindowReports(measurements);
  std::printf("calibration: %zu window reports; %s\n", measurements.size(),
              fit.ok() ? "fit ok" : fit.ToString().c_str());
  std::printf("  f1 default:  %s\n",
              model::LatencyModel::Default().f1().ToString().c_str());
  std::printf("  f1 measured: %s\n", model.f1().ToString().c_str());
  return model;
}

/// Proposed: evaluate both grouping candidates (everything merged vs bus
/// stops split out), allocate with Algorithm 2, keep the plan whose
/// bottleneck (max grouping score) is smaller. `model` drives the allocator's
/// scores; pair it with a ServiceCache built on the same model.
SweepPoint RunProposed(const std::vector<LayerRules>& layers, int engines,
                       ServiceCache* cache, std::string* chosen,
                       model::LatencyModel model) {
  core::RulesAllocator allocator(&model);

  std::vector<core::RuleTemplate> all_rules, area_rules, stop_rules;
  for (const LayerRules& layer : layers) {
    for (const core::RuleTemplate& rule : layer.rules) {
      all_rules.push_back(rule);
      (rule.location_field == "bus_stop" ? stop_rules : area_rules)
          .push_back(rule);
    }
  }

  struct Plan {
    std::vector<core::RuleGrouping> groupings;
    core::AllocationResult allocation;
    std::vector<double> services;
    /// Estimated logical tuples/second the plan sustains: the bottleneck
    /// grouping's engines divided by its per-copy cost (rule evaluation +
    /// transport overhead). More groupings = more copies per tuple.
    double capacity = 0.0;
    bool feasible = false;
  };
  const double transport = ClusterOf(kNodes).deserialization_micros;
  auto evaluate = [&](std::vector<core::RuleGrouping> groupings) {
    Plan plan;
    plan.groupings = std::move(groupings);
    auto allocation = allocator.Allocate(plan.groupings, engines);
    if (!allocation.ok()) return plan;
    plan.allocation = *allocation;
    plan.capacity = -1.0;
    for (size_t g = 0; g < plan.groupings.size(); ++g) {
      plan.services.push_back(cache->Measure(plan.groupings[g].rules));
      double per_copy = plan.services.back() + transport;
      double grouping_capacity =
          static_cast<double>(plan.allocation.engines_per_grouping[g]) * 1e6 /
          per_copy;
      if (plan.capacity < 0 || grouping_capacity < plan.capacity) {
        plan.capacity = grouping_capacity;
      }
    }
    plan.feasible = true;
    return plan;
  };

  Plan merged = evaluate({MakeGrouping("all", all_rules, kRate)});
  Plan split = evaluate({MakeGrouping("areas", area_rules, kRate),
                         MakeGrouping("stops", stop_rules, kRate)});
  const Plan* best = nullptr;
  if (merged.feasible && split.feasible) {
    best = merged.capacity >= split.capacity ? &merged : &split;
  } else if (merged.feasible) {
    best = &merged;
  } else {
    best = &split;
  }
  *chosen = best == &merged ? "merged" : "split";

  EngineLayout layout = LayoutEngines(best->allocation.engines_per_grouping,
                                      best->services, kNodes);
  return RunPointBottleneck(ClusterOf(kNodes), layout, kRate,
                            PartitionedRouter(layout));
}

/// Round-robin: every layer is its own grouping; engines dealt in turn.
SweepPoint RunRoundRobin(const std::vector<LayerRules>& layers, int engines,
                         ServiceCache* cache) {
  std::vector<core::RuleGrouping> groupings;
  for (const LayerRules& layer : layers) {
    groupings.push_back(MakeGrouping(layer.name, layer.rules, kRate));
  }
  core::AllocationResult allocation = core::RoundRobinAllocate(groupings, engines);
  std::vector<double> services;
  for (const core::RuleGrouping& grouping : groupings) {
    services.push_back(cache->Measure(grouping.rules));
  }
  EngineLayout layout =
      LayoutEngines(allocation.engines_per_grouping, services, kNodes);
  return RunPointBottleneck(ClusterOf(kNodes), layout, kRate,
                            PartitionedRouter(layout));
}

}  // namespace
}  // namespace bench
}  // namespace insight

int main() {
  using namespace insight::bench;
  std::printf(
      "Figure 11 / Section 5.4 reproduction: rules allocation throughput\n"
      "(tuples fully processed per 40 s vs number of engines; rate %.0f/s, "
      "%d nodes)\n\n",
      kRate, kNodes);

  auto workload1 = MakeWorkload({1, 10, 100});
  auto workload2 = MakeWorkload({100, 1000});
  std::vector<int> engine_counts = {4, 6, 8, 10, 14, 18, 22, 26, 30};

  // Recalibrate Function 1 from live monitor windows before planning.
  insight::model::LatencyModel measured = CalibrateFromWindowReports();

  // Model-only services: both schemes' engines must be estimated the same
  // way (and from the same model) for each comparison to be fair — W2's
  // 1000-event windows would be model-estimated anyway.
  auto run_sweep = [&](const char* label,
                       const insight::model::LatencyModel& model) {
    ServiceCache cache(model);
    std::vector<double> p1, p2, r1, r2;
    std::vector<std::string> chosen1, chosen2;
    for (int engines : engine_counts) {
      std::string c1, c2;
      p1.push_back(
          RunProposed(workload1, engines, &cache, &c1, model).throughput);
      p2.push_back(
          RunProposed(workload2, engines, &cache, &c2, model).throughput);
      r1.push_back(RunRoundRobin(workload1, engines, &cache).throughput);
      r2.push_back(RunRoundRobin(workload2, engines, &cache).throughput);
      chosen1.push_back(c1);
      chosen2.push_back(c2);
    }
    std::printf("\n[%s coefficients]\n", label);
    PrintHeader("series \\ engines", engine_counts);
    PrintRow("proposed W1", p1, "%10.0f");
    PrintRow("proposed W2", p2, "%10.0f");
    PrintRow("round-robin W1", r1, "%10.0f");
    PrintRow("round-robin W2", r2, "%10.0f");
    std::printf("proposed grouping choice per engine count:\n  W1:");
    for (const auto& c : chosen1) std::printf(" %s", c.c_str());
    std::printf("\n  W2:");
    for (const auto& c : chosen2) std::printf(" %s", c.c_str());
    std::printf("\n");
  };
  run_sweep("default", insight::model::LatencyModel::Default());
  run_sweep("measured", measured);
  std::printf(
      "\npaper shape: proposed >= round-robin at every engine count (under\n"
      "either model); the gap comes from round-robin's per-layer\n"
      "re-transmissions. The measured sweep plans from monitor-window\n"
      "latencies instead of canned coefficients.\n");
  return 0;
}
