// Reproduces Figure 11 / Section 5.4: throughput of the proposed rules
// allocation algorithm vs the round-robin-per-layer baseline, for two
// workloads, as the number of Esper engines grows.
//
//   Workload 1: rules with window lengths {1, 10, 100}
//   Workload 2: rules with window lengths {100, 1000}
//
// Rules span three quadtree layers plus the bus stops (five attribute rules
// each). The proposed algorithm groups layers together (partitioning at the
// coarsest layer) so a tuple is transmitted once, and considers splitting
// the bus stops into their own engines when that lowers the bottleneck
// score; round-robin gives each layer its own engine set, so every tuple is
// re-transmitted to all four layers.

#include <cstdio>

#include "sim_bench_util.h"

namespace insight {
namespace bench {
namespace {

/// One location family of the workload.
struct LayerRules {
  std::string name;
  std::vector<core::RuleTemplate> rules;
};

std::vector<LayerRules> MakeWorkload(const std::vector<size_t>& windows) {
  // Each layer's rules use one of the workload's window lengths, so layer
  // loads are unequal — a round-robin allocator that ignores load starves
  // the heavy layers while over-provisioning the light ones.
  const char* attrs[] = {"delay", "actual_delay", "speed", "congestion",
                         "delay"};
  std::vector<LayerRules> layers;
  int family = 0;
  for (const char* layer_name : {"layer2", "layer3", "leaves", "stops"}) {
    LayerRules layer;
    layer.name = layer_name;
    bool stops = std::string(layer_name) == "stops";
    size_t window = windows[static_cast<size_t>(family) % windows.size()];
    for (int a = 0; a < 5; ++a) {
      layer.rules.push_back(core::MakeRule(
          std::string(layer_name) + "_" + attrs[a] + std::to_string(a),
          attrs[a], stops ? "bus_stop" : "area_leaf", window,
          stops ? -1 : family + 2));
    }
    layers.push_back(std::move(layer));
    ++family;
  }
  return layers;
}

core::RuleGrouping MakeGrouping(const std::string& name,
                                std::vector<core::RuleTemplate> rules,
                                double rate) {
  core::RuleGrouping grouping;
  grouping.name = name;
  grouping.rules = std::move(rules);
  grouping.input_rate = rate;
  grouping.thresholds_per_rule = 32 * 24 * 2;
  return grouping;
}

constexpr double kRate = 12000.0;  // offered tuples/second (full speed)
constexpr int kNodes = 7;

/// Proposed: evaluate both grouping candidates (everything merged vs bus
/// stops split out), allocate with Algorithm 2, keep the plan whose
/// bottleneck (max grouping score) is smaller.
SweepPoint RunProposed(const std::vector<LayerRules>& layers, int engines,
                       ServiceCache* cache, std::string* chosen) {
  model::LatencyModel model = model::LatencyModel::Default();
  core::RulesAllocator allocator(&model);

  std::vector<core::RuleTemplate> all_rules, area_rules, stop_rules;
  for (const LayerRules& layer : layers) {
    for (const core::RuleTemplate& rule : layer.rules) {
      all_rules.push_back(rule);
      (rule.location_field == "bus_stop" ? stop_rules : area_rules)
          .push_back(rule);
    }
  }

  struct Plan {
    std::vector<core::RuleGrouping> groupings;
    core::AllocationResult allocation;
    std::vector<double> services;
    /// Estimated logical tuples/second the plan sustains: the bottleneck
    /// grouping's engines divided by its per-copy cost (rule evaluation +
    /// transport overhead). More groupings = more copies per tuple.
    double capacity = 0.0;
    bool feasible = false;
  };
  const double transport = ClusterOf(kNodes).deserialization_micros;
  auto evaluate = [&](std::vector<core::RuleGrouping> groupings) {
    Plan plan;
    plan.groupings = std::move(groupings);
    auto allocation = allocator.Allocate(plan.groupings, engines);
    if (!allocation.ok()) return plan;
    plan.allocation = *allocation;
    plan.capacity = -1.0;
    for (size_t g = 0; g < plan.groupings.size(); ++g) {
      plan.services.push_back(cache->Measure(plan.groupings[g].rules));
      double per_copy = plan.services.back() + transport;
      double grouping_capacity =
          static_cast<double>(plan.allocation.engines_per_grouping[g]) * 1e6 /
          per_copy;
      if (plan.capacity < 0 || grouping_capacity < plan.capacity) {
        plan.capacity = grouping_capacity;
      }
    }
    plan.feasible = true;
    return plan;
  };

  Plan merged = evaluate({MakeGrouping("all", all_rules, kRate)});
  Plan split = evaluate({MakeGrouping("areas", area_rules, kRate),
                         MakeGrouping("stops", stop_rules, kRate)});
  const Plan* best = nullptr;
  if (merged.feasible && split.feasible) {
    best = merged.capacity >= split.capacity ? &merged : &split;
  } else if (merged.feasible) {
    best = &merged;
  } else {
    best = &split;
  }
  *chosen = best == &merged ? "merged" : "split";

  EngineLayout layout = LayoutEngines(best->allocation.engines_per_grouping,
                                      best->services, kNodes);
  return RunPointBottleneck(ClusterOf(kNodes), layout, kRate,
                            PartitionedRouter(layout));
}

/// Round-robin: every layer is its own grouping; engines dealt in turn.
SweepPoint RunRoundRobin(const std::vector<LayerRules>& layers, int engines,
                         ServiceCache* cache) {
  std::vector<core::RuleGrouping> groupings;
  for (const LayerRules& layer : layers) {
    groupings.push_back(MakeGrouping(layer.name, layer.rules, kRate));
  }
  core::AllocationResult allocation = core::RoundRobinAllocate(groupings, engines);
  std::vector<double> services;
  for (const core::RuleGrouping& grouping : groupings) {
    services.push_back(cache->Measure(grouping.rules));
  }
  EngineLayout layout =
      LayoutEngines(allocation.engines_per_grouping, services, kNodes);
  return RunPointBottleneck(ClusterOf(kNodes), layout, kRate,
                            PartitionedRouter(layout));
}

}  // namespace
}  // namespace bench
}  // namespace insight

int main() {
  using namespace insight::bench;
  std::printf(
      "Figure 11 / Section 5.4 reproduction: rules allocation throughput\n"
      "(tuples fully processed per 40 s vs number of engines; rate %.0f/s, "
      "%d nodes)\n\n",
      kRate, kNodes);

  auto workload1 = MakeWorkload({1, 10, 100});
  auto workload2 = MakeWorkload({100, 1000});
  std::vector<int> engine_counts = {4, 6, 8, 10, 14, 18, 22, 26, 30};

  // Model-only services: both schemes' engines must be estimated the same
  // way for the comparison to be fair (W2's 1000-event windows would be
  // model-estimated anyway).
  ServiceCache cache(/*model_only=*/true);
  std::vector<double> p1, p2, r1, r2;
  std::vector<std::string> chosen1, chosen2;
  for (int engines : engine_counts) {
    std::string c1, c2;
    p1.push_back(RunProposed(workload1, engines, &cache, &c1).throughput);
    p2.push_back(RunProposed(workload2, engines, &cache, &c2).throughput);
    r1.push_back(RunRoundRobin(workload1, engines, &cache).throughput);
    r2.push_back(RunRoundRobin(workload2, engines, &cache).throughput);
    chosen1.push_back(c1);
    chosen2.push_back(c2);
  }
  PrintHeader("series \\ engines", engine_counts);
  PrintRow("proposed W1", p1, "%10.0f");
  PrintRow("proposed W2", p2, "%10.0f");
  PrintRow("round-robin W1", r1, "%10.0f");
  PrintRow("round-robin W2", r2, "%10.0f");
  std::printf("\nproposed grouping choice per engine count:\n  W1:");
  for (const auto& c : chosen1) std::printf(" %s", c.c_str());
  std::printf("\n  W2:");
  for (const auto& c : chosen2) std::printf(" %s", c.c_str());
  std::printf(
      "\n\npaper shape: proposed >= round-robin at every engine count; the\n"
      "gap comes from round-robin's per-layer re-transmissions.\n");
  return 0;
}
