// Microbenchmarks of the CEP engine (google-benchmark). Not a paper figure;
// these calibrate and guard the per-tuple costs the DES-based figure benches
// consume: cost vs window length, threshold-stream size, and rule count.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace insight {
namespace bench {
namespace {

void BM_SendEventWindow(benchmark::State& state) {
  size_t window = static_cast<size_t>(state.range(0));
  LoadedEngine loaded = MakeLoadedEngine(
      {core::MakeRule("r", "delay", "area_leaf", window)}, 32);
  Rng rng(7);
  uint64_t i = 0;
  for (auto _ : state) {
    loaded.engine->SendEvent(
        SyntheticBusEvent(loaded.engine.get(), &rng, 32, i++));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SendEventWindow)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

void BM_SendEventThresholds(benchmark::State& state) {
  size_t locations = static_cast<size_t>(state.range(0));
  LoadedEngine loaded = MakeLoadedEngine(
      {core::MakeRule("r", "delay", "area_leaf", 100)}, locations);
  Rng rng(7);
  uint64_t i = 0;
  for (auto _ : state) {
    loaded.engine->SendEvent(
        SyntheticBusEvent(loaded.engine.get(), &rng, locations, i++));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["thresholds"] =
      static_cast<double>(loaded.thresholds_per_attribute);
}
BENCHMARK(BM_SendEventThresholds)->Arg(8)->Arg(64)->Arg(256);

void BM_SendEventRuleCount(benchmark::State& state) {
  int rules = static_cast<int>(state.range(0));
  std::vector<core::RuleTemplate> templates;
  for (int r = 0; r < rules; ++r) {
    templates.push_back(core::MakeRule("r" + std::to_string(r), "delay",
                                       "area_leaf", 100));
  }
  LoadedEngine loaded = MakeLoadedEngine(templates, 32);
  Rng rng(7);
  uint64_t i = 0;
  for (auto _ : state) {
    loaded.engine->SendEvent(
        SyntheticBusEvent(loaded.engine.get(), &rng, 32, i++));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SendEventRuleCount)->Arg(1)->Arg(2)->Arg(5)->Arg(10);

void BM_EplParse(benchmark::State& state) {
  auto epl = core::MakeRule("r", "delay", "area_leaf", 100).ToEpl();
  INSIGHT_CHECK(epl.ok());
  for (auto _ : state) {
    auto def = cep::ParseEpl(*epl);
    benchmark::DoNotOptimize(def);
  }
}
BENCHMARK(BM_EplParse);

}  // namespace
}  // namespace bench
}  // namespace insight

BENCHMARK_MAIN();
