// Microbenchmarks of the CEP engine. Two modes:
//
//  - Default: google-benchmark microbenchmarks (cost vs window length,
//    threshold-stream size, rule count). Not a paper figure; these calibrate
//    and guard the per-tuple costs the DES-based figure benches consume.
//
//  - `bench_cep_engine BENCH_cep.json`: row-vs-columnar comparison with an
//    instrumented allocator. Drives the same event stream through SendEvent
//    and SendBatch for the two hot shapes (compiled filter, shape-A
//    incremental aggregation) and emits BENCH_cep.json in the same schema as
//    BENCH_hotpath.json, plus speedup ratios. Exit code gates CI: the batch
//    path must be allocation-free and at least 3x the row path (the 5x
//    target is tracked in EXPERIMENTS.md; the CI gate leaves headroom for
//    loaded runners).

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "bench_util.h"
#include "cep/batch.h"

// ---------------------------------------------------------------------------
// Instrumented global allocator (counts every new/new[]; JSON mode only
// reads it, the google-benchmark mode just pays one relaxed increment).
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1) !=
      0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace insight {
namespace bench {
namespace {

void BM_SendEventWindow(benchmark::State& state) {
  size_t window = static_cast<size_t>(state.range(0));
  LoadedEngine loaded = MakeLoadedEngine(
      {core::MakeRule("r", "delay", "area_leaf", window)}, 32);
  Rng rng(7);
  uint64_t i = 0;
  for (auto _ : state) {
    loaded.engine->SendEvent(
        SyntheticBusEvent(loaded.engine.get(), &rng, 32, i++));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SendEventWindow)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

void BM_SendEventThresholds(benchmark::State& state) {
  size_t locations = static_cast<size_t>(state.range(0));
  LoadedEngine loaded = MakeLoadedEngine(
      {core::MakeRule("r", "delay", "area_leaf", 100)}, locations);
  Rng rng(7);
  uint64_t i = 0;
  for (auto _ : state) {
    loaded.engine->SendEvent(
        SyntheticBusEvent(loaded.engine.get(), &rng, locations, i++));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["thresholds"] =
      static_cast<double>(loaded.thresholds_per_attribute);
}
BENCHMARK(BM_SendEventThresholds)->Arg(8)->Arg(64)->Arg(256);

void BM_SendEventRuleCount(benchmark::State& state) {
  int rules = static_cast<int>(state.range(0));
  std::vector<core::RuleTemplate> templates;
  for (int r = 0; r < rules; ++r) {
    templates.push_back(core::MakeRule("r" + std::to_string(r), "delay",
                                       "area_leaf", 100));
  }
  LoadedEngine loaded = MakeLoadedEngine(templates, 32);
  Rng rng(7);
  uint64_t i = 0;
  for (auto _ : state) {
    loaded.engine->SendEvent(
        SyntheticBusEvent(loaded.engine.get(), &rng, 32, i++));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SendEventRuleCount)->Arg(1)->Arg(2)->Arg(5)->Arg(10);

void BM_EplParse(benchmark::State& state) {
  auto epl = core::MakeRule("r", "delay", "area_leaf", 100).ToEpl();
  INSIGHT_CHECK(epl.ok());
  for (auto _ : state) {
    auto def = cep::ParseEpl(*epl);
    benchmark::DoNotOptimize(def);
  }
}
BENCHMARK(BM_EplParse);

// ---------------------------------------------------------------------------
// SendBatch counterparts of the window benchmark, for interactive runs.
// ---------------------------------------------------------------------------

constexpr size_t kBatchLanes = 64;  // the runtime's default drained block

/// Pre-generated random fields: the Gaussian draws are the expensive part of
/// synthesizing an event, and they are identical work on both paths, so the
/// JSON comparison hoists them out of the timed loops (the ratio should
/// measure the engine, not the RNG).
struct RandomFields {
  std::vector<double> lon, lat, delay, speed, actual_delay;
  std::vector<uint8_t> congestion;
};

RandomFields MakeRandomFields(size_t n, uint64_t seed) {
  RandomFields f;
  f.lon.reserve(n);
  f.lat.reserve(n);
  f.delay.reserve(n);
  f.speed.reserve(n);
  f.actual_delay.reserve(n);
  f.congestion.reserve(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    f.lon.push_back(-6.26 + rng.Gaussian(0.0, 0.01));
    f.lat.push_back(53.35 + rng.Gaussian(0.0, 0.01));
    f.delay.push_back(rng.Gaussian(90.0, 40.0));
    f.congestion.push_back(rng.Bernoulli(0.2) ? 1 : 0);
    f.speed.push_back(rng.Gaussian(22.0, 6.0));
    f.actual_delay.push_back(rng.Gaussian(0.0, 5.0));
  }
  return f;
}

/// Appends one synthetic bus row through the typed appenders (the
/// zero-conversion path a batch-aware adapter uses). Value stream matches
/// FillBusRow below field for field.
void AppendBusLane(cep::EventBatch* batch, const RandomFields& f,
                   size_t num_locations, uint64_t index) {
  static const std::string kWeekday = "weekday";
  size_t r = static_cast<size_t>(index) % f.lon.size();
  int64_t location = static_cast<int64_t>(index % num_locations);
  batch->BeginRow(static_cast<MicrosT>(index));
  batch->SetInt(0, static_cast<int64_t>(index * 1000));        // timestamp
  batch->SetInt(1, static_cast<int64_t>(index % 67));          // line
  batch->SetBool(2, (index & 1) == 0);                         // direction
  batch->SetDouble(3, f.lon[r]);                               // lon
  batch->SetDouble(4, f.lat[r]);                               // lat
  batch->SetDouble(5, f.delay[r]);                             // delay
  batch->SetBool(6, f.congestion[r] != 0);                     // congestion
  batch->SetInt(7, int64_t{-1});                               // reported_stop
  batch->SetInt(8, static_cast<int64_t>(index % 911));         // vehicle
  batch->SetDouble(9, f.speed[r]);                             // speed
  batch->SetDouble(10, f.actual_delay[r]);                     // actual_delay
  batch->SetInt(11, static_cast<int64_t>((index / 500) % 24)); // hour
  batch->SetString(12, kWeekday);                              // date_type
  batch->SetInt(13, location);                                 // area_leaf
  batch->SetInt(14, location);                                 // bus_stop
  batch->EndRow();
}

/// Fills a recycled row buffer positionally in BusEventFields({}) order,
/// producing the same value stream as AppendBusLane.
void FillBusRow(std::vector<cep::Value>& out, const RandomFields& f,
                size_t num_locations, uint64_t index) {
  using cep::Value;
  size_t r = static_cast<size_t>(index) % f.lon.size();
  int64_t location = static_cast<int64_t>(index % num_locations);
  out.clear();
  out.emplace_back(static_cast<int64_t>(index * 1000));            // timestamp
  out.emplace_back(static_cast<int64_t>(index % 67));              // line
  out.emplace_back((index & 1) == 0);                              // direction
  out.emplace_back(f.lon[r]);                                      // lon
  out.emplace_back(f.lat[r]);                                      // lat
  out.emplace_back(f.delay[r]);                                    // delay
  out.emplace_back(f.congestion[r] != 0);                          // congestion
  out.emplace_back(int64_t{-1});                                   // reported_stop
  out.emplace_back(static_cast<int64_t>(index % 911));             // vehicle
  out.emplace_back(f.speed[r]);                                    // speed
  out.emplace_back(f.actual_delay[r]);                             // actual_delay
  out.emplace_back(static_cast<int64_t>((index / 500) % 24));      // hour
  out.emplace_back("weekday");                                     // date_type
  out.emplace_back(location);                                      // area_leaf
  out.emplace_back(location);                                      // bus_stop
}

/// A compiled-filter-eligible rule: single lastevent source, whole WHERE
/// lowers to column kernels, steady state never matches.
const char* kFilterRule =
    "@Trigger(bus)\n"
    "SELECT bd.area_leaf AS location, bd.speed AS value\n"
    "FROM bus.std:lastevent() as bd\n"
    "WHERE bd.speed < -1000.0 OR (bd.delay > 1e12 AND bd.congestion)";

/// The canonical detection-rule pair (Table 6 / Section 4.1 shape), both
/// shape-A incremental and batch-compilable to the group-table kernels.
const char* kAggRules[] = {
    "@Trigger(bus)\n"
    "SELECT bd.area_leaf AS location, avg(bd2.speed) AS value,\n"
    "       2.0 AS threshold, 'speed' AS attribute, bd.timestamp AS timestamp\n"
    "FROM bus.std:lastevent() as bd,\n"
    "     bus.std:groupwin(area_leaf).win:length(100) as bd2\n"
    "WHERE bd.area_leaf = bd2.area_leaf\n"
    "GROUP BY bd2.area_leaf\n"
    "HAVING avg(bd2.speed) < 2.0",
    "@Trigger(bus)\n"
    "SELECT bd.area_leaf AS location, avg(bd2.delay) AS value,\n"
    "       1e9 AS threshold, 'delay' AS attribute, bd.timestamp AS timestamp\n"
    "FROM bus.std:lastevent() as bd,\n"
    "     bus.std:groupwin(area_leaf).win:length(100) as bd2\n"
    "WHERE bd.area_leaf = bd2.area_leaf\n"
    "GROUP BY bd2.area_leaf\n"
    "HAVING avg(bd2.delay) > 1e9",
};

std::unique_ptr<cep::Engine> MakeJsonEngine(
    const std::vector<const char*>& rules) {
  auto engine = std::make_unique<cep::Engine>();
  INSIGHT_CHECK(
      engine->RegisterEventType("bus", traffic::BusEventFields({})).ok());
  int rule_id = 0;
  for (const char* epl : rules) {
    auto stmt = engine->AddStatement(epl, "rule-" + std::to_string(rule_id++));
    INSIGHT_CHECK(stmt.ok()) << stmt.status().ToString();
  }
  return engine;
}

void BM_SendBatchWindow(benchmark::State& state) {
  LoadedEngine loaded = MakeLoadedEngine(
      {core::MakeRule("r", "delay", "area_leaf",
                      static_cast<size_t>(state.range(0)))},
      32);
  auto bus_type = loaded.engine->GetEventType("bus");
  INSIGHT_CHECK(bus_type.ok());
  cep::EventBatch batch(*bus_type);
  RandomFields fields = MakeRandomFields(1 << 14, 7);
  uint64_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    batch.Clear();
    for (size_t lane = 0; lane < kBatchLanes; ++lane) {
      AppendBusLane(&batch, fields, 32, i++);
    }
    state.ResumeTiming();
    loaded.engine->SendBatch(batch);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatchLanes));
}
BENCHMARK(BM_SendBatchWindow)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace

// ---------------------------------------------------------------------------
// JSON mode: row vs columnar on the two compiled shapes.
// ---------------------------------------------------------------------------

namespace {

uint64_t TakeAllocs() {
  return g_allocs.exchange(0, std::memory_order_relaxed);
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ScenarioResult {
  uint64_t events = 0;
  double events_per_sec = 0.0;
  double ns_per_event = 0.0;
  double allocs_per_event = 0.0;
  uint64_t matches = 0;
};

constexpr size_t kJsonLocations = 32;
constexpr uint64_t kJsonEvents = 200000;
constexpr uint64_t kWarmupEvents = kJsonLocations * 102;

/// Row baseline: pooled events through SendEvent, one at a time.
ScenarioResult RunRow(const std::vector<const char*>& rules) {
  auto engine = MakeJsonEngine(rules);
  cep::EventPool& pool = engine->event_pool();
  auto bus_type = engine->GetEventType("bus");
  INSIGHT_CHECK(bus_type.ok());
  RandomFields fields = MakeRandomFields(1 << 16, 41);
  for (uint64_t i = 0; i < kWarmupEvents; ++i) {
    std::vector<cep::Value> buffer = pool.TakeBuffer();
    FillBusRow(buffer, fields, kJsonLocations, i);
    engine->SendEvent(
        pool.Create(*bus_type, std::move(buffer), static_cast<MicrosT>(i)));
  }

  TakeAllocs();
  double start = NowSeconds();
  uint64_t matches = 0;
  for (uint64_t i = 0; i < kJsonEvents; ++i) {
    std::vector<cep::Value> buffer = pool.TakeBuffer();
    FillBusRow(buffer, fields, kJsonLocations, i);
    matches += engine->SendEvent(
        pool.Create(*bus_type, std::move(buffer), static_cast<MicrosT>(i)));
  }
  double elapsed = NowSeconds() - start;
  uint64_t allocs = TakeAllocs();

  ScenarioResult result;
  result.events = kJsonEvents;
  result.events_per_sec = static_cast<double>(kJsonEvents) / elapsed;
  result.ns_per_event = elapsed * 1e9 / static_cast<double>(kJsonEvents);
  result.allocs_per_event =
      static_cast<double>(allocs) / static_cast<double>(kJsonEvents);
  result.matches = matches;
  return result;
}

/// Columnar path: the same value stream packed into 64-lane batches through
/// the typed appenders, crossing the engine boundary via SendBatch.
ScenarioResult RunBatch(const std::vector<const char*>& rules,
                        bool expect_fast_path) {
  auto engine = MakeJsonEngine(rules);
  auto bus_type = engine->GetEventType("bus");
  INSIGHT_CHECK(bus_type.ok());
  cep::EventBatch batch(*bus_type);
  RandomFields fields = MakeRandomFields(1 << 16, 41);
  uint64_t sent = 0;
  while (sent < kWarmupEvents) {
    batch.Clear();
    for (size_t lane = 0; lane < kBatchLanes; ++lane) {
      AppendBusLane(&batch, fields, kJsonLocations, sent++);
    }
    engine->SendBatch(batch);
  }
  if (expect_fast_path) {
    // Guard against silent fallback: a plan regression would quietly turn
    // this into a per-lane benchmark and the speedup gate would misfire.
    for (const std::string& name : engine->StatementNames()) {
      auto stmt = engine->GetStatement(name);
      INSIGHT_CHECK(stmt.ok());
      INSIGHT_CHECK((*stmt)->UsingBatchFastPath())
          << "statement '" << name << "' fell back to per-lane batch mode";
    }
  }

  TakeAllocs();
  double start = NowSeconds();
  uint64_t matches = 0;
  uint64_t i = 0;
  while (i < kJsonEvents) {
    batch.Clear();
    for (size_t lane = 0; lane < kBatchLanes; ++lane) {
      AppendBusLane(&batch, fields, kJsonLocations, i++);
    }
    matches += engine->SendBatch(batch);
  }
  double elapsed = NowSeconds() - start;
  uint64_t allocs = TakeAllocs();

  ScenarioResult result;
  result.events = i;
  result.events_per_sec = static_cast<double>(i) / elapsed;
  result.ns_per_event = elapsed * 1e9 / static_cast<double>(i);
  result.allocs_per_event = static_cast<double>(allocs) / static_cast<double>(i);
  result.matches = matches;
  return result;
}

void PrintScenario(std::FILE* f, const char* name, const ScenarioResult& r,
                   bool last) {
  std::fprintf(f,
               "  \"%s\": {\n"
               "    \"events\": %llu,\n"
               "    \"events_per_sec\": %.1f,\n"
               "    \"ns_per_event\": %.1f,\n"
               "    \"allocs_per_event\": %.4f\n"
               "  }%s\n",
               name, static_cast<unsigned long long>(r.events),
               r.events_per_sec, r.ns_per_event, r.allocs_per_event,
               last ? "" : ",");
}

int JsonMain(const char* out_path) {
  const std::vector<const char*> filter_rules = {kFilterRule};
  const std::vector<const char*> agg_rules = {kAggRules[0], kAggRules[1]};

  ScenarioResult filter_row = RunRow(filter_rules);
  ScenarioResult filter_batch = RunBatch(filter_rules, /*expect_fast_path=*/true);
  ScenarioResult agg_row = RunRow(agg_rules);
  ScenarioResult agg_batch = RunBatch(agg_rules, /*expect_fast_path=*/true);
  // Identical value streams must fire identical match counts; a mismatch
  // means a correctness bug, not a perf delta, so fail loudly.
  INSIGHT_CHECK(filter_row.matches == filter_batch.matches)
      << filter_row.matches << " row vs " << filter_batch.matches << " batch";
  INSIGHT_CHECK(agg_row.matches == agg_batch.matches)
      << agg_row.matches << " row vs " << agg_batch.matches << " batch";

  double filter_speedup = filter_row.ns_per_event / filter_batch.ns_per_event;
  double agg_speedup = agg_row.ns_per_event / agg_batch.ns_per_event;

  std::printf("filter_row:   %9.0f events/s  %7.1f ns/event  %.4f allocs/event\n",
              filter_row.events_per_sec, filter_row.ns_per_event,
              filter_row.allocs_per_event);
  std::printf("filter_batch: %9.0f events/s  %7.1f ns/event  %.4f allocs/event  (%.2fx)\n",
              filter_batch.events_per_sec, filter_batch.ns_per_event,
              filter_batch.allocs_per_event, filter_speedup);
  std::printf("agg_row:      %9.0f events/s  %7.1f ns/event  %.4f allocs/event\n",
              agg_row.events_per_sec, agg_row.ns_per_event,
              agg_row.allocs_per_event);
  std::printf("agg_batch:    %9.0f events/s  %7.1f ns/event  %.4f allocs/event  (%.2fx)\n",
              agg_batch.events_per_sec, agg_batch.ns_per_event,
              agg_batch.allocs_per_event, agg_speedup);

  std::FILE* f = std::fopen(out_path, "w");
  INSIGHT_CHECK(f != nullptr) << "cannot write " << out_path;
  std::fprintf(f, "{\n");
  PrintScenario(f, "filter_row", filter_row, /*last=*/false);
  PrintScenario(f, "filter_batch", filter_batch, /*last=*/false);
  PrintScenario(f, "agg_row", agg_row, /*last=*/false);
  PrintScenario(f, "agg_batch", agg_batch, /*last=*/false);
  std::fprintf(f,
               "  \"filter_speedup\": %.2f,\n"
               "  \"agg_speedup\": %.2f\n",
               filter_speedup, agg_speedup);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  int failures = 0;
  if (filter_batch.allocs_per_event >= 0.001 ||
      agg_batch.allocs_per_event >= 0.001) {
    std::printf("WARNING: batch path is not allocation-free\n");
    ++failures;
  }
  // CI gate at 3x (headroom for loaded shared runners); the 5x target is
  // recorded against a quiet machine in EXPERIMENTS.md.
  if (filter_speedup < 3.0) {
    std::printf("WARNING: filter batch speedup %.2fx below the 3x gate\n",
                filter_speedup);
    ++failures;
  }
  if (agg_speedup < 3.0) {
    std::printf("WARNING: aggregate batch speedup %.2fx below the 3x gate\n",
                agg_speedup);
    ++failures;
  }
  return failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace bench
}  // namespace insight

int main(int argc, char** argv) {
  // `bench_cep_engine <path>.json` runs the row-vs-columnar comparison and
  // writes the JSON report there; anything else is google-benchmark.
  if (argc > 1) {
    const char* arg = argv[1];
    size_t len = std::strlen(arg);
    if (len > 5 && std::strcmp(arg + len - 5, ".json") == 0) {
      return insight::bench::JsonMain(arg);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
