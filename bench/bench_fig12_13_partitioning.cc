// Reproduces Figures 12 and 13 / Section 5.3: latency and throughput of the
// rule partitioning approaches with 10 rules (five attribute rules over the
// bus stops, five over the quadtree leaves; window length 100):
//
//   * our approach — rule locations partitioned over the grouping's engines
//     (Algorithm 1); each tuple goes to the one engine owning its region.
//   * all grouping — same partitioning, but every tuple is emitted to every
//     engine; non-owner engines pay a cheap discard/filter cost.
//   * all rules    — every engine runs all 10 rules; tuples follow the
//     partition schema, but each engine is loaded with the full rule set.

#include <cstdio>

#include "sim_bench_util.h"

namespace insight {
namespace bench {
namespace {

constexpr double kRate = 8000.0;
constexpr int kNodes = 7;
/// Relative cost of filtering out a tuple whose region an engine does not
/// own (hash-group lookup misses immediately).
constexpr double kDiscardScale = 0.12;

struct Services {
  double stops_only;   // engine with the 5 bus-stop rules
  double areas_only;   // engine with the 5 quadtree rules
  double all_rules;    // engine with all 10 rules
};

Services MeasureServices(ServiceCache* cache) {
  auto rules = TenRuleWorkload(100);
  std::vector<core::RuleTemplate> stops, areas;
  for (const auto& rule : rules) {
    (rule.location_field == "bus_stop" ? stops : areas).push_back(rule);
  }
  Services services;
  services.stops_only = cache->Measure(stops);
  services.areas_only = cache->Measure(areas);
  services.all_rules = cache->Measure(rules);
  return services;
}

/// Engines split between the two groupings (half stops, half areas; at least
/// one each when engines >= 2).
std::vector<int> SplitEngines(int engines) {
  if (engines <= 1) return {engines, 0};
  return {engines - engines / 2, engines / 2};
}

SweepPoint RunOurs(int engines, const Services& services) {
  auto split = SplitEngines(engines);
  EngineLayout layout = LayoutEngines(
      split, {services.areas_only, services.stops_only}, kNodes);
  double fanout = split[1] > 0 ? 2.0 : 1.0;
  return RunPoint(ClusterOf(kNodes), layout, kRate, PartitionedRouter(layout),
                  fanout);
}

SweepPoint RunAllGrouping(int engines, const Services& services) {
  auto split = SplitEngines(engines);
  EngineLayout layout = LayoutEngines(
      split, {services.areas_only, services.stops_only}, kNodes);
  // Every tuple goes to every engine; only the region owner does full work.
  sim::ClusterSimulation::RouterEx router =
      [layout](uint64_t index, std::vector<sim::ClusterSimulation::Target>* t) {
        uint64_t h = index * 2654435761ULL;
        for (size_t g = 0; g < layout.base.size(); ++g) {
          if (layout.count[g] <= 0) continue;
          int owner = layout.base[g] +
                      static_cast<int>((h >> (8 * g)) %
                                       static_cast<uint64_t>(layout.count[g]));
          for (int e = layout.base[g]; e < layout.base[g] + layout.count[g];
               ++e) {
            t->push_back({e, e == owner ? 1.0 : kDiscardScale});
          }
        }
      };
  sim::ClusterSimulation simulation(ClusterOf(kNodes), layout.engines);
  auto result = simulation.Run(kRate, router);
  INSIGHT_CHECK(result.ok()) << result.status().ToString();
  SweepPoint point;
  point.latency_msec = result->avg_latency_micros / 1000.0;
  // Effective throughput: tuples fully processed by their owner engines.
  double owner_share = 0.0;
  double fanout = static_cast<double>(engines);
  (void)fanout;
  // Owner copies are 1 per grouping per tuple.
  double groupings = SplitEngines(engines)[1] > 0 ? 2.0 : 1.0;
  owner_share = groupings / static_cast<double>(engines);
  point.throughput = result->throughput_per_40s * owner_share / groupings;
  return point;
}

SweepPoint RunAllRules(int engines, const Services& services) {
  // Every engine runs all 10 rules; the routing still follows the partition
  // schema (one engine per location family per tuple), so every copy pays
  // the full 10-rule evaluation instead of its family's 5 rules.
  EngineLayout layout =
      LayoutEngines({engines}, {services.all_rules}, kNodes);
  sim::ClusterSimulation::Router router = [layout](uint64_t index,
                                                   std::vector<int>* targets) {
    uint64_t h1 = index * 2654435761ULL;
    uint64_t h2 = (index ^ 0x9e3779b97f4a7c15ULL) * 0xff51afd7ed558ccdULL;
    int n = layout.count[0];
    int a = layout.base[0] + static_cast<int>(h1 % static_cast<uint64_t>(n));
    int b = layout.base[0] + static_cast<int>(h2 % static_cast<uint64_t>(n));
    targets->push_back(a);
    if (b != a) targets->push_back(b);
  };
  return RunPoint(ClusterOf(kNodes), layout, kRate, router, 2.0);
}

}  // namespace
}  // namespace bench
}  // namespace insight

int main() {
  using namespace insight::bench;
  std::printf(
      "Figures 12-13 / Section 5.3 reproduction: rule partitioning\n"
      "(10 rules: 5 attributes x bus stops + 5 x quadtree leaves, window "
      "100; rate %.0f/s, %d nodes)\n\n",
      kRate, kNodes);

  ServiceCache cache;
  Services services = MeasureServices(&cache);
  std::printf("measured engine service times (us/tuple):\n");
  std::printf("  5 area rules : %.2f\n  5 stop rules : %.2f\n  all 10 rules "
              ": %.2f\n\n",
              services.areas_only, services.stops_only, services.all_rules);

  std::vector<int> engine_counts = {2, 4, 6, 8, 10, 12, 15};
  std::vector<double> lat_ours, lat_all_group, lat_all_rules;
  std::vector<double> thr_ours, thr_all_group, thr_all_rules;
  for (int engines : engine_counts) {
    SweepPoint ours = RunOurs(engines, services);
    SweepPoint all_grouping = RunAllGrouping(engines, services);
    SweepPoint all_rules = RunAllRules(engines, services);
    lat_ours.push_back(ours.latency_msec);
    lat_all_group.push_back(all_grouping.latency_msec);
    lat_all_rules.push_back(all_rules.latency_msec);
    thr_ours.push_back(ours.throughput);
    thr_all_group.push_back(all_grouping.throughput);
    thr_all_rules.push_back(all_rules.throughput);
  }

  std::printf("--- Figure 12: observed latency (msec) ---\n");
  PrintHeader("approach \\ engines", engine_counts);
  PrintRow("all grouping", lat_all_group, "%10.3f");
  PrintRow("all rules", lat_all_rules, "%10.3f");
  PrintRow("our approach", lat_ours, "%10.3f");

  std::printf("\n--- Figure 13: achieved throughput (tuples / 40 s) ---\n");
  PrintHeader("approach \\ engines", engine_counts);
  PrintRow("all grouping", thr_all_group, "%10.0f");
  PrintRow("all rules", thr_all_rules, "%10.0f");
  PrintRow("our approach", thr_ours, "%10.0f");

  std::printf(
      "\npaper shape: our approach achieves the largest throughput increase; "
      "all-grouping\noverloads the system with extra tuples, all-rules "
      "overloads the engines with rules.\n");
  return 0;
}
