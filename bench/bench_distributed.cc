// Distributed-runtime benchmark: the same source -> relay -> sink pipeline
// through the in-process LocalRuntime and through a 2-worker cluster on
// loopback (both remote edges ride the TCP transport), with acking on in
// both. Records throughput and end-to-end tuple latency (spout emission to
// sink execute, measured on CLOCK_MONOTONIC, which is machine-wide and so
// comparable across worker processes) into BENCH_distributed.json.
//
// Like every cluster binary it is its own worker: the supervisor branch
// re-execs this executable with --insight-* flags for each worker role.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "dist/options.h"
#include "dist/runtime.h"
#include "dsps/local_runtime.h"
#include "dsps/topology.h"

namespace insight {
namespace {

using dsps::Bolt;
using dsps::Collector;
using dsps::Fields;
using dsps::LocalRuntime;
using dsps::Spout;
using dsps::TopologyBuilder;
using dsps::Tuple;
using dsps::Value;

constexpr int kLocalTuples = 200'000;
constexpr int kDistTuples = 100'000;

class BurstSpout : public Spout {
 public:
  explicit BurstSpout(int n) : n_(n) {}
  bool NextTuple(Collector* collector) override {
    if (next_ >= n_) return false;
    collector->EmitRooted(static_cast<uint64_t>(next_ + 1),
                          {Value(int64_t{next_})});
    ++next_;
    return next_ < n_;
  }

 private:
  int n_;
  int next_ = 0;
};

class RelayBolt : public Bolt {
 public:
  void Execute(const Tuple& input, Collector* collector) override {
    collector->Emit({input.Get(0)});
  }
};

/// Records arrival times and spout->sink latencies; dumps a stats line at
/// Cleanup (results must escape a worker process). Latency percentiles come
/// from the full sample set, not a sketch.
class StatsSink : public Bolt {
 public:
  StatsSink(std::string path, int expected)
      : path_(std::move(path)) {
    latencies_.reserve(static_cast<size_t>(expected));
  }

  void Execute(const Tuple& input, Collector*) override {
    MicrosT now = SystemClock::Get()->NowMicros();
    if (first_micros_ == 0) first_micros_ = now;
    last_micros_ = now;
    latencies_.push_back(now - input.spout_time());
  }

  void Cleanup() override {
    std::sort(latencies_.begin(), latencies_.end());
    MicrosT mean = 0;
    for (MicrosT latency : latencies_) mean += latency;
    if (!latencies_.empty()) {
      mean /= static_cast<MicrosT>(latencies_.size());
    }
    auto percentile = [this](double q) -> MicrosT {
      if (latencies_.empty()) return 0;
      size_t index = static_cast<size_t>(
          q * static_cast<double>(latencies_.size() - 1));
      return latencies_[index];
    };
    std::ofstream out(path_, std::ios::trunc);
    out << latencies_.size() << " " << first_micros_ << " " << last_micros_
        << " " << mean << " " << percentile(0.50) << " " << percentile(0.95)
        << " " << percentile(0.99) << "\n";
  }

 private:
  std::string path_;
  std::vector<MicrosT> latencies_;
  MicrosT first_micros_ = 0;
  MicrosT last_micros_ = 0;
};

struct SinkStats {
  uint64_t count = 0;
  MicrosT first_micros = 0;
  MicrosT last_micros = 0;
  MicrosT mean_micros = 0;
  MicrosT p50_micros = 0;
  MicrosT p95_micros = 0;
  MicrosT p99_micros = 0;

  double TuplesPerSec() const {
    MicrosT span = last_micros - first_micros;
    if (span <= 0) return 0;
    return static_cast<double>(count) * 1e6 / static_cast<double>(span);
  }
};

bool ReadStats(const std::string& path, SinkStats* out) {
  std::ifstream in(path);
  return static_cast<bool>(in >> out->count >> out->first_micros >>
                           out->last_micros >> out->mean_micros >>
                           out->p50_micros >> out->p95_micros >>
                           out->p99_micros);
}

dsps::Topology BuildTopology(const std::string& stats_path, int tuples) {
  TopologyBuilder builder;
  builder.SetSpout("source",
                   [tuples] { return std::make_unique<BurstSpout>(tuples); },
                   Fields({"v"}));
  builder.SetBolt("relay", [] { return std::make_unique<RelayBolt>(); },
                  Fields({"v"}), 2)
      .ShuffleGrouping("source");
  builder
      .SetBolt("sink",
               [stats_path, tuples] {
                 return std::make_unique<StatsSink>(stats_path, tuples);
               },
               Fields({}))
      .GlobalGrouping("relay");
  auto topology = builder.Build();
  if (!topology.ok()) {
    std::fprintf(stderr, "topology: %s\n",
                 topology.status().ToString().c_str());
    std::exit(2);
  }
  return std::move(*topology);
}

dist::DistOptions BuildDistOptions(const std::string& out_dir) {
  dist::DistOptions options;
  options.num_workers = 2;
  // Round-robin: source+sink on worker 0, relay on worker 1 — both edges
  // cross the loopback transport.
  options.runtime.enable_acking = true;
  options.runtime.ack_timeout_micros = 10'000'000;
  options.worker_args = {"--bench-out=" + out_dir};
  return options;
}

std::string MakeTempDir() {
  char tmpl[] = "/tmp/insight-bench-XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  if (dir == nullptr) {
    std::perror("mkdtemp");
    std::exit(2);
  }
  return dir;
}

SinkStats RunLocal() {
  std::string dir = MakeTempDir();
  std::string stats_path = dir + "/stats.txt";
  LocalRuntime::Options options;
  options.enable_acking = true;
  options.ack_timeout_micros = 10'000'000;
  LocalRuntime runtime(BuildTopology(stats_path, kLocalTuples), options);
  if (!runtime.Start().ok()) std::exit(2);
  runtime.AwaitCompletion();
  SinkStats stats;
  if (!ReadStats(stats_path, &stats)) std::exit(2);
  return stats;
}

struct DistResult {
  SinkStats stats;
  double frames_sent = 0;
  double bytes_sent = 0;
};

DistResult RunDistributed() {
  std::string dir = MakeTempDir();
  dist::DistributedRuntime runtime(
      BuildTopology(dir + "/stats.txt", kDistTuples), BuildDistOptions(dir));
  Status status = runtime.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "start: %s\n", status.ToString().c_str());
    std::exit(2);
  }
  if (runtime.WaitForCompletion(300'000'000) != 0) {
    std::fprintf(stderr, "distributed run failed\n");
    std::exit(2);
  }
  DistResult result;
  if (!ReadStats(dir + "/stats.txt", &result.stats)) std::exit(2);
  observability::MetricsSnapshot cluster = runtime.ClusterMetrics();
  for (const auto& family : cluster.counters) {
    for (const auto& sample : family.samples) {
      if (family.name == "insight_net_frames_sent_total") {
        result.frames_sent += sample.value;
      } else if (family.name == "insight_net_bytes_sent_total") {
        result.bytes_sent += sample.value;
      }
    }
  }
  return result;
}

void PrintScenario(std::FILE* out, const char* name, const SinkStats& stats,
                   const char* trailer) {
  std::fprintf(out,
               "  \"%s\": {\n"
               "    \"tuples\": %llu,\n"
               "    \"tuples_per_sec\": %.1f,\n"
               "    \"mean_latency_micros\": %lld,\n"
               "    \"p50_latency_micros\": %lld,\n"
               "    \"p95_latency_micros\": %lld,\n"
               "    \"p99_latency_micros\": %lld%s\n",
               name, static_cast<unsigned long long>(stats.count),
               stats.TuplesPerSec(),
               static_cast<long long>(stats.mean_micros),
               static_cast<long long>(stats.p50_micros),
               static_cast<long long>(stats.p95_micros),
               static_cast<long long>(stats.p99_micros), trailer);
}

int BenchMain() {
  std::printf("local in-process pipeline (%d tuples)...\n", kLocalTuples);
  SinkStats local = RunLocal();
  std::printf("  %.0f tuples/s, mean %lld us, p99 %lld us\n",
              local.TuplesPerSec(), static_cast<long long>(local.mean_micros),
              static_cast<long long>(local.p99_micros));

  std::printf("distributed 2-worker pipeline on loopback (%d tuples)...\n",
              kDistTuples);
  DistResult dist = RunDistributed();
  std::printf("  %.0f tuples/s, mean %lld us, p99 %lld us, %.0f frames\n",
              dist.stats.TuplesPerSec(),
              static_cast<long long>(dist.stats.mean_micros),
              static_cast<long long>(dist.stats.p99_micros), dist.frames_sent);

  std::FILE* out = std::fopen("BENCH_distributed.json", "w");
  if (out == nullptr) {
    std::perror("BENCH_distributed.json");
    return 2;
  }
  std::fprintf(out, "{\n");
  PrintScenario(out, "local_runtime", local, "\n  },");
  PrintScenario(out, "distributed_2workers", dist.stats, ",");
  std::fprintf(out,
               "    \"frames_sent\": %.0f,\n"
               "    \"bytes_sent\": %.0f\n  }\n}\n",
               dist.frames_sent, dist.bytes_sent);
  std::fclose(out);
  std::printf("wrote BENCH_distributed.json\n");
  return 0;
}

}  // namespace
}  // namespace insight

int main(int argc, char** argv) {
  insight::dist::WorkerSpec spec;
  if (insight::dist::ParseWorkerSpec(argc, argv, &spec)) {
    std::string out_dir;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--bench-out=", 12) == 0) {
        out_dir = argv[i] + 12;
      }
    }
    if (out_dir.empty()) return 2;
    return insight::dist::RunWorker(
        spec,
        insight::BuildTopology(out_dir + "/stats.txt", insight::kDistTuples),
        insight::BuildDistOptions(out_dir));
  }
  return insight::BenchMain();
}
