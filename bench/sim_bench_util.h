#ifndef INSIGHT_BENCH_SIM_BENCH_UTIL_H_
#define INSIGHT_BENCH_SIM_BENCH_UTIL_H_

#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/allocation.h"
#include "sim/cluster_sim.h"

namespace insight {
namespace bench {

/// Engine layout on the simulated cluster for an allocation: groupings own
/// contiguous engine-index ranges; engines spread round-robin over nodes
/// (Section 3.2: each node gets the same number of engines).
struct EngineLayout {
  std::vector<sim::ClusterSimulation::EngineSpec> engines;
  std::vector<int> base;   // first engine index per grouping
  std::vector<int> count;  // engines per grouping
};

inline EngineLayout LayoutEngines(const std::vector<int>& engines_per_grouping,
                                  const std::vector<double>& service_micros,
                                  int num_nodes) {
  EngineLayout layout;
  int next = 0;
  for (size_t g = 0; g < engines_per_grouping.size(); ++g) {
    layout.base.push_back(next);
    layout.count.push_back(engines_per_grouping[g]);
    for (int e = 0; e < engines_per_grouping[g]; ++e) {
      sim::ClusterSimulation::EngineSpec spec;
      spec.node = next % num_nodes;
      spec.service_micros = service_micros[g];
      layout.engines.push_back(spec);
      ++next;
    }
  }
  return layout;
}

/// Router sending each tuple to one engine per grouping, engine chosen by a
/// region hash (Algorithm 1's balanced partition makes this uniform).
inline sim::ClusterSimulation::Router PartitionedRouter(EngineLayout layout) {
  return [layout](uint64_t index, std::vector<int>* targets) {
    uint64_t h = index * 2654435761ULL;
    for (size_t g = 0; g < layout.base.size(); ++g) {
      if (layout.count[g] <= 0) continue;
      targets->push_back(layout.base[g] +
                         static_cast<int>((h >> (8 * (g % 4))) %
                                          static_cast<uint64_t>(layout.count[g])));
    }
  };
}

/// Caches per-rule-set engine service times. Cheap rule sets are measured on
/// the real cep::Engine; expensive ones (huge windows or very many rules,
/// where warming the group windows alone would take minutes) are estimated
/// with the latency model — which is exactly what the paper built the model
/// for ("estimates the latency of each engine", Section 4.1.4).
class ServiceCache {
 public:
  ServiceCache() = default;
  /// model_only forces the latency-model estimate for every rule set —
  /// required when a bench compares schemes whose rule sets would otherwise
  /// mix measured and modeled service times.
  explicit ServiceCache(bool model_only) : model_only_(model_only) {}
  /// Model-only with an explicit model — e.g. one recalibrated from live
  /// window reports (LatencyModel::FitFromWindowReports), so a sweep can be
  /// re-run against measured rather than default coefficients.
  explicit ServiceCache(model::LatencyModel model)
      : model_only_(true), model_(std::move(model)) {}

  const model::LatencyModel& model() const { return model_; }

  double Measure(const std::vector<core::RuleTemplate>& rules) {
    std::string key;
    for (const auto& rule : rules) {
      key += rule.name + "|" + std::to_string(rule.window_length) + "|" +
             rule.location_field + ";";
    }
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    size_t max_window = 0;
    for (const auto& rule : rules) {
      max_window = std::max(max_window, rule.window_length);
    }
    double micros;
    if (!model_only_ && max_window <= 100 && rules.size() <= 12) {
      micros = MeasureEngineServiceMicros(rules, /*num_locations=*/32,
                                          /*num_events=*/2500);
    } else {
      std::vector<model::RuleCharacteristics> characteristics;
      for (const auto& rule : rules) {
        characteristics.push_back(rule.Characteristics(32 * 24 * 2));
      }
      micros = model_.EngineLatency(characteristics);
    }
    cache_[key] = micros;
    return micros;
  }

 private:
  bool model_only_ = false;
  std::map<std::string, double> cache_;
  model::LatencyModel model_ = model::LatencyModel::Default();
};

/// The 10-rule workload of Sections 5.3/5.5: five attribute rules over the
/// bus stops and five over the quadtree leaves, all at `window`.
inline std::vector<core::RuleTemplate> TenRuleWorkload(size_t window) {
  return core::Table6Rules(window);
}

/// Runs a DES sweep and returns (avg latency msec, effective throughput per
/// 40 s) where effective throughput counts fully-processed *tuples* (copies
/// divided by fan-out), matching the paper's input-data-processed metric.
struct SweepPoint {
  double latency_msec = 0.0;    // sojourn: queueing + processing
  double processing_msec = 0.0; // processing only (paper's Figure 14 view)
  double throughput = 0.0;
};

inline SweepPoint RunPoint(const sim::ClusterSimulation::Config& config,
                           const EngineLayout& layout, double rate,
                           const sim::ClusterSimulation::Router& router,
                           double fanout) {
  sim::ClusterSimulation simulation(config, layout.engines);
  auto result = simulation.Run(rate, router);
  INSIGHT_CHECK(result.ok()) << result.status().ToString();
  SweepPoint point;
  point.latency_msec = result->avg_latency_micros / 1000.0;
  point.processing_msec = result->avg_processing_micros / 1000.0;
  point.throughput = result->throughput_per_40s / (fanout > 0 ? fanout : 1.0);
  return point;
}

/// Like RunPoint, but a tuple counts as processed only when *every* grouping
/// has processed its copy, so the slowest grouping is the bottleneck (this
/// is the paper's input-data-processed view of a multi-grouping deployment).
inline SweepPoint RunPointBottleneck(const sim::ClusterSimulation::Config& config,
                                     const EngineLayout& layout, double rate,
                                     const sim::ClusterSimulation::Router& router) {
  sim::ClusterSimulation simulation(config, layout.engines);
  auto result = simulation.Run(rate, router);
  INSIGHT_CHECK(result.ok()) << result.status().ToString();
  SweepPoint point;
  point.latency_msec = result->avg_latency_micros / 1000.0;
  point.processing_msec = result->avg_processing_micros / 1000.0;
  double min_processed = -1.0;
  for (size_t g = 0; g < layout.base.size(); ++g) {
    if (layout.count[g] <= 0) {
      min_processed = 0.0;
      break;
    }
    double processed = 0.0;
    for (int e = layout.base[g]; e < layout.base[g] + layout.count[g]; ++e) {
      processed += static_cast<double>(
          result->engines[static_cast<size_t>(e)].processed);
    }
    if (min_processed < 0 || processed < min_processed) {
      min_processed = processed;
    }
  }
  point.throughput = min_processed * 40e6 /
                     static_cast<double>(config.duration_micros);
  return point;
}

inline sim::ClusterSimulation::Config ClusterOf(int nodes,
                                                MicrosT duration_micros =
                                                    5'000'000) {
  sim::ClusterSimulation::Config config;
  config.node_cores = std::vector<int>(static_cast<size_t>(nodes), 1);
  config.network_latency_micros = 400.0;
  config.serialization_micros = 2.0;
  // Storm 0.8 inter-worker tuple transport (Kryo serialization + ZeroMQ +
  // deserialization) costs on the order of 0.1-0.2 ms per copy; this is the
  // overhead that makes re-transmission schemes lose.
  config.deserialization_micros = 150.0;
  config.duration_micros = duration_micros;
  return config;
}

}  // namespace bench
}  // namespace insight

#endif  // INSIGHT_BENCH_SIM_BENCH_UTIL_H_
