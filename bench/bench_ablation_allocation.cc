// Ablation: how close is Algorithm 2's greedy allocation to the true
// optimum? On small instances (<= 4 groupings, <= 14 engines) the optimal
// allocation is found by exhaustive enumeration; the quality metric is the
// bottleneck score (max weighted per-engine busy time across groupings),
// which the greedy minimizes implicitly by always feeding the worst
// grouping.

#include <cstdio>

#include <functional>

#include "common/rng.h"
#include "core/allocation.h"
#include "model/latency_model.h"

namespace insight {
namespace bench {
namespace {

double Bottleneck(const core::RulesAllocator& allocator,
                  const std::vector<core::RuleGrouping>& groupings,
                  const std::vector<int>& engines_per_grouping) {
  double worst = 0.0;
  for (size_t g = 0; g < groupings.size(); ++g) {
    worst = std::max(worst,
                     allocator.GroupingScore(groupings[g],
                                             engines_per_grouping[g]));
  }
  return worst;
}

/// Enumerates all allocations of `engines` over the groupings (>= 1 each)
/// and returns the minimal bottleneck.
double OptimalBottleneck(const core::RulesAllocator& allocator,
                         const std::vector<core::RuleGrouping>& groupings,
                         int engines) {
  std::vector<int> current(groupings.size(), 0);
  double best = -1.0;
  std::function<void(size_t, int)> recurse = [&](size_t g, int remaining) {
    if (g + 1 == groupings.size()) {
      current[g] = remaining;
      if (remaining >= 1) {
        double b = Bottleneck(allocator, groupings, current);
        if (best < 0 || b < best) best = b;
      }
      return;
    }
    for (int k = 1; k <= remaining - static_cast<int>(groupings.size() - g - 1);
         ++k) {
      current[g] = k;
      recurse(g + 1, remaining - k);
    }
  };
  recurse(0, engines);
  return best;
}

std::vector<core::RuleGrouping> RandomInstance(Rng* rng, int num_groupings) {
  std::vector<core::RuleGrouping> groupings(
      static_cast<size_t>(num_groupings));
  for (int g = 0; g < num_groupings; ++g) {
    groupings[static_cast<size_t>(g)].name = "g" + std::to_string(g);
    int rules = static_cast<int>(rng->UniformInt(1, 8));
    for (int r = 0; r < rules; ++r) {
      size_t window = static_cast<size_t>(rng->UniformInt(1, 400));
      groupings[static_cast<size_t>(g)].rules.push_back(core::MakeRule(
          "g" + std::to_string(g) + "r" + std::to_string(r), "delay",
          "area_leaf", window));
    }
    groupings[static_cast<size_t>(g)].input_rate = rng->Uniform(500.0, 8000.0);
    groupings[static_cast<size_t>(g)].thresholds_per_rule = 500;
  }
  return groupings;
}

}  // namespace
}  // namespace bench
}  // namespace insight

int main() {
  using namespace insight::bench;
  using insight::core::RulesAllocator;
  std::printf(
      "Ablation: Algorithm 2 greedy vs exhaustive-optimal allocation\n"
      "(bottleneck = max weighted per-engine busy time; 40 random "
      "instances)\n\n");

  insight::model::LatencyModel model = insight::model::LatencyModel::Default();
  RulesAllocator allocator(&model);
  insight::Rng rng(2718);

  double worst_gap = 0.0;
  double gap_sum = 0.0;
  int instances = 0;
  int optimal_hits = 0;
  for (int trial = 0; trial < 40; ++trial) {
    int num_groupings = static_cast<int>(rng.UniformInt(2, 4));
    int engines = static_cast<int>(rng.UniformInt(num_groupings, 14));
    auto groupings = RandomInstance(&rng, num_groupings);
    auto greedy = allocator.Allocate(groupings, engines);
    if (!greedy.ok()) continue;
    double greedy_bottleneck =
        Bottleneck(allocator, groupings, greedy->engines_per_grouping);
    double optimal = OptimalBottleneck(allocator, groupings, engines);
    double gap = optimal > 0 ? greedy_bottleneck / optimal - 1.0 : 0.0;
    worst_gap = std::max(worst_gap, gap);
    gap_sum += gap;
    ++instances;
    if (gap < 1e-9) ++optimal_hits;
  }
  std::printf("instances evaluated : %d\n", instances);
  std::printf("greedy == optimal   : %d (%.0f%%)\n", optimal_hits,
              100.0 * optimal_hits / instances);
  std::printf("mean bottleneck gap : %.2f%%\n", 100.0 * gap_sum / instances);
  std::printf("worst bottleneck gap: %.2f%%\n", 100.0 * worst_gap);
  std::printf(
      "\nobservation: granting each extra engine to the grouping whose "
      "*current*\nscore is the bottleneck (rather than ranking groupings by "
      "their post-grant\nscore, which over-feeds dominant groupings and "
      "starves steep bottlenecks)\nmakes the greedy match the exhaustive "
      "optimum on every generated instance;\nthe gate below holds it there.\n");
  if (optimal_hits != instances || worst_gap > 1e-9) {
    std::printf("GATE FAILURE: greedy fell short of the optimum\n");
    return 1;
  }
  return 0;
}
