// Ablation: what does Algorithm 1's *rate-based* partitioning buy over the
// naive alternative of giving every engine the same *number* of regions?
// Region input rates in a city are heavily skewed (centre vs suburbs), so
// count-balanced partitions put several hot regions on one engine.
//
// Reported per engine count: max/avg engine load ratio for both schemes and
// the resulting DES throughput/latency under the same offered rate.

#include <cstdio>

#include "core/partitioning.h"
#include "sim_bench_util.h"

namespace insight {
namespace bench {
namespace {

constexpr int kRegions = 200;
constexpr double kRate = 6000.0;
constexpr int kNodes = 7;
constexpr double kServiceMicros = 600.0;

/// Zipf region rates: the city centre dominates.
std::vector<core::RegionRate> SkewedRates(uint64_t seed) {
  Rng rng(seed);
  std::vector<core::RegionRate> rates;
  double total = 0;
  for (int64_t region = 0; region < kRegions; ++region) {
    double rate =
        100.0 / static_cast<double>(region + 1) + rng.Uniform(0.0, 0.5);
    rates.push_back({region, rate});
    total += rate;
  }
  // Normalize to the offered rate.
  for (auto& r : rates) r.rate *= kRate / total;
  return rates;
}

/// Equal region *counts* per engine, regions dealt in arbitrary (shuffled)
/// order — what a rate-oblivious splitter would do. (Dealing them in
/// rate-sorted order would accidentally balance; real deployments do not
/// know the rates, which is the point of this ablation.)
std::map<int64_t, int> CountBalanced(const std::vector<core::RegionRate>& rates,
                                     int engines, uint64_t seed) {
  std::vector<int64_t> order;
  for (const auto& r : rates) order.push_back(r.region);
  Rng rng(seed);
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextUint(i)]);
  }
  std::map<int64_t, int> assignment;
  int i = 0;
  for (int64_t region : order) assignment[region] = i++ % engines;
  return assignment;
}

struct SchemeResult {
  double imbalance = 0.0;  // max engine rate / mean engine rate
  SweepPoint point;
};

SchemeResult RunScheme(const std::vector<core::RegionRate>& rates,
                       const std::map<int64_t, int>& assignment, int engines) {
  SchemeResult result;
  auto engine_rates = core::EngineRates(assignment, rates);
  engine_rates.resize(static_cast<size_t>(engines), 0.0);
  double total = 0, max_rate = 0;
  for (double r : engine_rates) {
    total += r;
    max_rate = std::max(max_rate, r);
  }
  result.imbalance = max_rate / (total / engines);

  // DES: arrivals routed per the region assignment; regions sampled
  // proportionally to their rate via an alias-free cumulative pick.
  std::vector<double> cumulative;
  double acc = 0;
  for (const auto& r : rates) {
    acc += r.rate;
    cumulative.push_back(acc);
  }
  EngineLayout layout = LayoutEngines({engines}, {kServiceMicros}, kNodes);
  auto router = [&rates, &cumulative, &assignment, acc](
                    uint64_t index, std::vector<int>* targets) {
    // Deterministic low-discrepancy sample over the rate distribution.
    double u = static_cast<double>((index * 2654435761ULL) % 1000003ULL) /
               1000003.0 * acc;
    size_t lo = 0, hi = cumulative.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cumulative[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    targets->push_back(assignment.at(rates[lo].region));
  };
  sim::ClusterSimulation simulation(ClusterOf(kNodes), layout.engines);
  auto run = simulation.Run(kRate, router);
  INSIGHT_CHECK(run.ok()) << run.status().ToString();
  result.point.latency_msec = run->avg_latency_micros / 1000.0;
  result.point.throughput = run->throughput_per_40s;
  return result;
}

}  // namespace
}  // namespace bench
}  // namespace insight

int main() {
  using namespace insight::bench;
  std::printf(
      "Ablation: Algorithm 1 (rate-balanced) vs count-balanced partitioning\n"
      "(%d regions, zipf-skewed rates, %.0f tuples/s, service %.0f us)\n\n",
      kRegions, kRate, kServiceMicros);

  auto rates = SkewedRates(5);
  std::vector<int> engine_counts = {2, 4, 6, 8, 12};
  std::printf("%8s | %26s | %26s\n", "", "Algorithm 1 (rate)", "count-balanced");
  std::printf("%8s | %8s %8s %8s | %8s %8s %8s\n", "engines", "imbal",
              "thr/40s", "lat ms", "imbal", "thr/40s", "lat ms");
  for (int engines : engine_counts) {
    auto alg1_assignment = insight::core::PartitionRegions(rates, engines);
    if (!alg1_assignment.ok()) continue;
    auto alg1 = RunScheme(rates, *alg1_assignment, engines);
    auto naive = RunScheme(rates, CountBalanced(rates, engines, 7), engines);
    std::printf("%8d | %8.3f %8.0f %8.1f | %8.3f %8.0f %8.1f\n", engines,
                alg1.imbalance, alg1.point.throughput, alg1.point.latency_msec,
                naive.imbalance, naive.point.throughput,
                naive.point.latency_msec);
  }
  std::printf(
      "\nexpected: Algorithm 1 keeps imbalance near 1.0; count-balancing "
      "leaves a hot\nengine that throttles throughput and inflates latency "
      "as engines grow.\n");
  return 0;
}
