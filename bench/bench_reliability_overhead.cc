// Cost of at-least-once delivery: the same source -> relay -> sink pipeline
// run with acking off (seed behaviour, fire-and-forget) and on (Storm-style
// XOR acker tracking every tuple tree). Storm's own acker adds one extra
// message per emission; here the acker is an in-process shard map, so the
// expected overhead is the per-edge bookkeeping (random edge ids + two XOR
// batches per tuple), not network hops.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "dsps/local_runtime.h"
#include "dsps/topology.h"

namespace insight {
namespace bench {
namespace {

using dsps::Bolt;
using dsps::Collector;
using dsps::Fields;
using dsps::LocalRuntime;
using dsps::Spout;
using dsps::TaskContext;
using dsps::TopologyBuilder;
using dsps::Tuple;
using dsps::Value;

constexpr int kTuples = 200000;
constexpr int kRelays = 4;

/// Emits `n` integer tuples; uses EmitRooted so the runtime tracks the tuple
/// tree whenever acking is enabled (and falls back to plain Emit otherwise).
class NumberSpout : public Spout {
 public:
  explicit NumberSpout(int n) : n_(n) {}
  void Open(const TaskContext& context) override {
    next_ = context.task_index;
    stride_ = context.num_tasks;
  }
  bool NextTuple(Collector* collector) override {
    if (next_ >= n_) return false;
    collector->EmitRooted(static_cast<uint64_t>(next_),
                          {Value(int64_t{next_})});
    next_ += stride_;
    return next_ < n_;
  }

 private:
  int n_;
  int next_ = 0;
  int stride_ = 1;
};

class RelayBolt : public Bolt {
 public:
  void Execute(const Tuple& input, Collector* collector) override {
    collector->Emit({input.Get(0)});
  }
};

class NullSink : public Bolt {
 public:
  void Execute(const Tuple&, Collector*) override {}
};

struct RunResult {
  double tuples_per_sec = 0;
  uint64_t acked = 0;
  size_t pending = 0;
};

RunResult Run(bool acking) {
  TopologyBuilder builder;
  builder.SetSpout("source",
                   [] { return std::make_unique<NumberSpout>(kTuples); },
                   Fields({"v"}));
  builder
      .SetBolt("relay", [] { return std::make_unique<RelayBolt>(); },
               Fields({"v"}), kRelays, kRelays)
      .ShuffleGrouping("source");
  builder.SetBolt("sink", [] { return std::make_unique<NullSink>(); },
                  Fields({}))
      .ShuffleGrouping("relay");
  auto topology = builder.Build();
  INSIGHT_CHECK(topology.ok()) << topology.status().ToString();

  LocalRuntime::Options options;
  options.enable_acking = acking;
  LocalRuntime runtime(std::move(*topology), options);
  auto start = std::chrono::steady_clock::now();
  INSIGHT_CHECK(runtime.Start().ok());
  runtime.AwaitCompletion();
  auto end = std::chrono::steady_clock::now();
  double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();

  RunResult result;
  result.tuples_per_sec = static_cast<double>(kTuples) / seconds;
  result.acked = runtime.metrics()->Totals("source").acked;
  result.pending = runtime.pending_trees();
  return result;
}

}  // namespace
}  // namespace bench
}  // namespace insight

int main() {
  using namespace insight::bench;
  std::printf(
      "Reliability overhead: %d tuples through source -> %d relays -> sink,\n"
      "acking off (fire-and-forget) vs on (XOR acker tracks every tree).\n\n",
      kTuples, kRelays);

  std::printf("%10s %16s %12s %10s\n", "acking", "tuples/sec", "acked",
              "pending");
  RunResult off;
  RunResult on;
  // Alternate a few rounds so neither mode benefits from warm-up alone.
  for (int round = 0; round < 3; ++round) {
    off = Run(/*acking=*/false);
    on = Run(/*acking=*/true);
  }
  std::printf("%10s %16.0f %12llu %10zu\n", "off", off.tuples_per_sec,
              static_cast<unsigned long long>(off.acked), off.pending);
  std::printf("%10s %16.0f %12llu %10zu\n", "on", on.tuples_per_sec,
              static_cast<unsigned long long>(on.acked), on.pending);
  std::printf("\nacked overhead: %.1f%% throughput vs unacked "
              "(every tree resolved: pending must be 0).\n",
              100.0 * (1.0 - on.tuples_per_sec / off.tuples_per_sec));
  return 0;
}
