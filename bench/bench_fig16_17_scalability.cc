// Reproduces Figures 16 and 17 / Section 5.6: scalability with the number of
// VMs. The all-the-rules workload of Section 5.5 runs on clusters of 3, 5
// and 7 single-core nodes while the number of Esper engines grows from 1 to
// 15. The paper's findings to reproduce:
//   * more VMs -> steady throughput increase;
//   * exceeding the available cores (e.g. > 4 engines on 3 VMs) blows up the
//     observed latency;
//   * the best latency occurs while engines <= cores.

#include <cstdio>

#include "sim_bench_util.h"

namespace insight {
namespace bench {
namespace {

constexpr double kRate = 3500.0;

SweepPoint RunScalability(int vms, int engines, double service_micros) {
  // Engines spread round-robin across the VMs; the full workload is
  // region-partitioned over all engines (one grouping).
  EngineLayout layout = LayoutEngines({engines}, {service_micros}, vms);
  return RunPoint(ClusterOf(vms), layout, kRate, PartitionedRouter(layout),
                  1.0);
}

}  // namespace
}  // namespace bench
}  // namespace insight

int main() {
  using namespace insight::bench;
  std::printf(
      "Figures 16-17 / Section 5.6 reproduction: scalability with VMs\n"
      "(all-the-rules workload; rate %.0f tuples/s; engines spread "
      "round-robin)\n\n",
      kRate);

  // Measure the real engine's per-tuple cost for the combined workload.
  ServiceCache cache;
  std::vector<insight::core::RuleTemplate> all_rules;
  for (size_t window : {1u, 10u, 100u}) {
    for (insight::core::RuleTemplate rule : TenRuleWorkload(window)) {
      rule.name += "_w" + std::to_string(window);
      all_rules.push_back(rule);
    }
  }
  double service = cache.Measure(all_rules);
  std::printf("measured all-rules engine service time: %.2f us/tuple\n\n",
              service);

  std::vector<int> engine_counts = {1, 2, 3, 4, 5, 6, 8, 10, 12, 15};
  std::printf("--- Figure 16: observed latency (msec) ---\n");
  PrintHeader("VMs \\ engines", engine_counts);
  std::map<int, std::vector<double>> latencies, throughputs;
  for (int vms : {3, 5, 7}) {
    for (int engines : engine_counts) {
      SweepPoint point = RunScalability(vms, engines, service);
      latencies[vms].push_back(point.latency_msec);
      throughputs[vms].push_back(point.throughput);
    }
    PrintRow("VMs " + std::to_string(vms), latencies[vms], "%10.2f");
  }
  std::printf("\n--- Figure 17: achieved throughput (tuples / 40 s) ---\n");
  PrintHeader("VMs \\ engines", engine_counts);
  for (int vms : {3, 5, 7}) {
    PrintRow("VMs " + std::to_string(vms), throughputs[vms], "%10.0f");
  }
  std::printf(
      "\npaper shape: throughput grows with engines until the VMs' cores\n"
      "saturate; with 3 VMs, adding engines beyond the cores causes a large\n"
      "latency increase while 7 VMs keep scaling.\n");
  return 0;
}
