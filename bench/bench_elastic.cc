// Elastic scheduler bench: hot-engine p99 before/after a live CEP task
// migration. A skewed spout (one hot region carrying ~55% of the traffic)
// feeds a LiveRouter splitter that initially routes every region to engine
// task 0; task 1 is an idle standby. The engine models heterogeneous host
// load — the paper's motivation for migration — by burning a long service
// time on task 0 (a co-loaded host) and a short one elsewhere (the spare
// standby host). The ElasticController watches the per-task metric stream,
// trips its p99 trigger after the configured hot streak, and live-migrates
// task 0's regions and state onto the standby mid-stream.
//
// The engine keeps a per-region tuple count as migrated state and emits a
// "detection" every kDetectEvery-th tuple of a region, so detections are a
// deterministic function of the delivered stream: any state loss, fork, or
// duplication across the migration shows up as a detection mismatch.
//
// Gates (nonzero exit on violation):
//
//  1. Migrated: the controller performed >= 1 live migration, no failures,
//     and the engine executed every message exactly once.
//  2. p99 improves: hot-region p99 measured on the migration target stays
//     under 80% of both the pre-migration p99 on the source task and the
//     no-controller baseline run's hot-region p99.
//  3. Detection identity: the elastic run's detection multiset equals the
//     fault-free non-elastic baseline's.
//  4. Disabled identity: the baseline run (controller absent, migration
//     disabled — the seed configuration) moves no migration counter, never
//     touches the router, and leaves the standby idle.
//
// Usage: bench_elastic [--quick] [out.json]  (default BENCH_elastic.json)
// --quick shortens the stream for CI smoke.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/mutex.h"
#include "core/partitioning.h"
#include "dsps/local_runtime.h"
#include "dsps/topology.h"
#include "elastic/controller.h"
#include "elastic/policy.h"
#include "traffic/bolts.h"

namespace insight {
namespace bench {
namespace {

using dsps::Bolt;
using dsps::Collector;
using dsps::Fields;
using dsps::LocalRuntime;
using dsps::Snapshottable;
using dsps::Spout;
using dsps::TaskContext;
using dsps::TopologyBuilder;
using dsps::Tuple;
using dsps::Value;

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr int64_t kHotRegion = 1;
constexpr int64_t kDetectEvery = 25;
constexpr int64_t kSlowServiceMicros = 2'500;  // task 0: co-loaded host
constexpr int64_t kFastServiceMicros = 400;    // standby: spare host
constexpr double kRatePerSec = 300.0;

// Region of each seq, repeating: 11/20 hot, the rest spread over 2..4. A
// fixed pattern makes the input — and therefore the detection multiset —
// identical across the elastic and baseline runs.
constexpr int64_t kRegionPattern[20] = {1, 2, 1, 3, 1, 1, 4, 1, 2, 1,
                                        1, 3, 1, 2, 1, 1, 4, 1, 2, 1};

/// Emits (region, seq, stamp) for seq 1..total, paced at kRatePerSec with a
/// bounded catch-up burst (same discipline as bench_saturation's PacedSpout).
class SkewedSpout : public Spout {
 public:
  explicit SkewedSpout(int64_t total) : total_(total) {}

  bool NextTuple(Collector* collector) override {
    if (emitted_ >= total_) return false;
    if (start_micros_ == 0) start_micros_ = NowMicros();
    int64_t due = static_cast<int64_t>(
        (static_cast<double>(NowMicros() - start_micros_) / 1e6) *
        kRatePerSec);
    if (emitted_ >= due) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      return true;
    }
    int64_t burst = std::min({due - emitted_, total_ - emitted_, int64_t{64}});
    for (int64_t i = 0; i < burst; ++i) {
      int64_t seq = ++emitted_;
      collector->EmitRooted(
          static_cast<uint64_t>(seq),
          {Value(kRegionPattern[seq % 20]), Value(seq), Value(NowMicros())});
    }
    return true;
  }

 private:
  int64_t total_;
  int64_t emitted_ = 0;
  int64_t start_micros_ = 0;
};

/// The "CEP engine": per-region tuple counts (the migrated state), a
/// per-task service time modelling host load, and a detection emitted every
/// kDetectEvery-th tuple of a region. Forwards
/// (region, seq, task, stamp, detect).
class RegionCountEngine : public Bolt, public Snapshottable {
 public:
  void Prepare(const TaskContext& context) override {
    task_index_ = context.task_index;
    counts_.clear();
  }

  void Execute(const Tuple& input, Collector* collector) override {
    std::this_thread::sleep_for(std::chrono::microseconds(
        task_index_ == 0 ? kSlowServiceMicros : kFastServiceMicros));
    int64_t region = input.Get(0).AsInt();
    int64_t count = ++counts_[region];
    collector->Emit({input.Get(0), input.Get(1),
                     Value(static_cast<int64_t>(task_index_)), input.Get(2),
                     Value(count % kDetectEvery == 0 ? count : int64_t{0})});
  }

  Status SnapshotState(std::string* out) const override {
    std::ostringstream stream;
    for (const auto& [region, count] : counts_) {
      stream << region << ' ' << count << '\n';
    }
    out->assign(stream.str());
    return Status::OK();
  }
  Status RestoreState(const std::string& bytes) override {
    counts_.clear();
    std::istringstream stream(bytes);
    int64_t region = 0;
    int64_t count = 0;
    while (stream >> region >> count) counts_[region] = count;
    return Status::OK();
  }

 private:
  int task_index_ = 0;
  std::map<int64_t, int64_t> counts_;
};

/// Records per-tuple (region, task, end-to-end latency) and the detection
/// multiset.
class LatencySink : public Bolt {
 public:
  struct Row {
    int64_t region = 0;
    int64_t task = 0;
    int64_t latency_micros = 0;
  };
  struct Stats {
    Mutex mutex;
    std::vector<Row> rows GUARDED_BY(mutex);
    std::vector<std::pair<int64_t, int64_t>> detections GUARDED_BY(mutex);
  };
  explicit LatencySink(std::shared_ptr<Stats> stats)
      : stats_(std::move(stats)) {}

  void Execute(const Tuple& input, Collector*) override {
    Row row;
    row.region = input.Get(0).AsInt();
    row.task = input.Get(2).AsInt();
    row.latency_micros = NowMicros() - input.Get(3).AsInt();
    int64_t detect = input.Get(4).AsInt();
    MutexLock lock(stats_->mutex);
    stats_->rows.push_back(row);
    if (detect > 0) stats_->detections.push_back({row.region, detect});
  }

 private:
  std::shared_ptr<Stats> stats_;
};

std::unique_ptr<core::LiveRouter> MakeAllToTaskZeroRouter() {
  core::SpatialRouter::GroupingRoute route;
  route.location_field = "region";
  for (int64_t region = 1; region <= 4; ++region) {
    route.region_to_engine[region] = 0;
  }
  route.fallback_engines = {0};
  return std::make_unique<core::LiveRouter>(core::SpatialRouter({route}));
}

int64_t Percentile(std::vector<int64_t> values, double pct) {
  if (values.empty()) return 0;
  size_t index = static_cast<size_t>(pct * static_cast<double>(values.size()));
  if (index >= values.size()) index = values.size() - 1;
  std::nth_element(values.begin(),
                   values.begin() + static_cast<ptrdiff_t>(index),
                   values.end());
  return values[index];
}

struct RunResult {
  std::shared_ptr<LatencySink::Stats> stats;
  uint64_t engine_executed = 0;
  uint64_t standby_executed = 0;
  uint64_t task_migrations = 0;
  uint64_t migration_failures = 0;
  uint64_t router_version_delta = 0;
  elastic::ElasticController::Stats controller;
};

RunResult RunOnce(bool with_controller, int64_t total_messages) {
  RunResult result;
  result.stats = std::make_shared<LatencySink::Stats>();
  auto router = MakeAllToTaskZeroRouter();
  uint64_t version_before = router->version();

  TopologyBuilder builder;
  builder.SetSpout("source",
                   [total_messages] {
                     return std::make_unique<SkewedSpout>(total_messages);
                   },
                   Fields({"region", "seq", "stamp"}));
  core::LiveRouter* r = router.get();
  builder
      .SetBolt("split",
               [r] {
                 return std::make_unique<traffic::SplitterBolt>(
                     r->AsFunction());
               },
               Fields({"region", "seq", "stamp"}))
      .GlobalGrouping("source");
  builder
      .SetBolt("engine",
               [] { return std::make_unique<RegionCountEngine>(); },
               Fields({"region", "seq", "task", "stamp", "detect"}), 2)
      .DirectGrouping("split");
  auto sink_stats = result.stats;
  builder
      .SetBolt("sink",
               [sink_stats] { return std::make_unique<LatencySink>(sink_stats); },
               Fields({}))
      .GlobalGrouping("engine");
  auto topology = builder.Build();
  INSIGHT_CHECK(topology.ok()) << topology.status().ToString();

  LocalRuntime::Options options;
  options.enable_migration = with_controller;  // seed config when false
  LocalRuntime runtime(std::move(*topology), options);
  INSIGHT_CHECK(runtime.Start().ok());

  if (with_controller) {
    elastic::ElasticController::Options controller_options;
    controller_options.component = "engine";
    controller_options.policy.p99_target_micros = 1'000;
    controller_options.policy.capacity_high = 0;
    controller_options.policy.occupancy_high = 0;
    controller_options.policy.min_hot_windows = 2;
    // One migration per run: the standby will carry the full stream
    // afterwards and must not be "rescued" back.
    controller_options.policy.cooldown_micros = 600'000'000;
    controller_options.engine_rules = {{{/*window_length=*/3.0,
                                         /*num_thresholds=*/1.0}},
                                       {{3.0, 1.0}}};
    elastic::ElasticController controller(&runtime, r, controller_options);

    // Manual ticks: a baseline window, then decision windows until the
    // migration fires (bounded by the stream length).
    INSIGHT_CHECK(controller.Tick().ok());
    for (int i = 0; i < 400 && controller.stats().migrations == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      INSIGHT_CHECK(controller.Tick().ok());
    }
    runtime.AwaitCompletion();
    result.controller = controller.stats();
  } else {
    runtime.AwaitCompletion();
  }

  result.engine_executed = runtime.metrics()->Totals("engine").executed;
  result.standby_executed =
      runtime.metrics()->TotalsForTask("engine", 1).executed;
  result.task_migrations = runtime.metrics()->Totals("engine").task_migrations;
  result.migration_failures =
      runtime.metrics()->Totals("engine").migration_failures;
  result.router_version_delta = router->version() - version_before;
  runtime.Stop();
  return result;
}

/// Hot-region latencies executed on `task`.
std::vector<int64_t> HotLatenciesOnTask(LatencySink::Stats* stats,
                                        int64_t task) {
  std::vector<int64_t> latencies;
  MutexLock lock(stats->mutex);
  for (const LatencySink::Row& row : stats->rows) {
    if (row.region == kHotRegion && row.task == task) {
      latencies.push_back(row.latency_micros);
    }
  }
  return latencies;
}

std::vector<std::pair<int64_t, int64_t>> SortedDetections(
    LatencySink::Stats* stats) {
  MutexLock lock(stats->mutex);
  auto detections = stats->detections;
  std::sort(detections.begin(), detections.end());
  return detections;
}

int Main(int argc, char** argv) {
  bool quick = false;
  const char* out_path = "BENCH_elastic.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      out_path = argv[i];
    }
  }

  const int64_t total_messages = quick ? 700 : 2400;

  std::fprintf(stderr, "[elastic] run 1/2: controller on, %lld messages\n",
               static_cast<long long>(total_messages));
  RunResult elastic_run = RunOnce(/*with_controller=*/true, total_messages);
  std::fprintf(stderr, "[elastic] run 2/2: baseline (seed config)\n");
  RunResult baseline = RunOnce(/*with_controller=*/false, total_messages);

  int64_t to_task = elastic_run.controller.last_to_task;
  std::vector<int64_t> pre = HotLatenciesOnTask(elastic_run.stats.get(), 0);
  std::vector<int64_t> post =
      to_task >= 0 ? HotLatenciesOnTask(elastic_run.stats.get(), to_task)
                   : std::vector<int64_t>{};
  std::vector<int64_t> base = HotLatenciesOnTask(baseline.stats.get(), 0);
  int64_t pre_p99 = Percentile(pre, 0.99);
  int64_t post_p99 = Percentile(post, 0.99);
  int64_t base_p99 = Percentile(base, 0.99);

  auto elastic_detections = SortedDetections(elastic_run.stats.get());
  auto baseline_detections = SortedDetections(baseline.stats.get());

  const size_t min_post_samples = quick ? 20 : 100;
  bool ok = true;

  bool migrated = elastic_run.controller.migrations >= 1 &&
                  elastic_run.controller.migration_failures == 0 &&
                  elastic_run.task_migrations >= 1 &&
                  elastic_run.engine_executed ==
                      static_cast<uint64_t>(total_messages);
  std::printf("gate 1 migrated:             %s (migrations=%llu failures=%llu "
              "executed=%llu/%lld from=%d to=%d)\n",
              migrated ? "PASS" : "FAIL",
              static_cast<unsigned long long>(
                  elastic_run.controller.migrations),
              static_cast<unsigned long long>(
                  elastic_run.controller.migration_failures),
              static_cast<unsigned long long>(elastic_run.engine_executed),
              static_cast<long long>(total_messages),
              elastic_run.controller.last_from_task,
              elastic_run.controller.last_to_task);
  ok = ok && migrated;

  bool p99_improves = post.size() >= min_post_samples && post_p99 > 0 &&
                      post_p99 * 10 <= pre_p99 * 8 &&
                      post_p99 * 10 <= base_p99 * 8;
  std::printf("gate 2 p99 improves:         %s (pre=%lld us [%zu], post=%lld "
              "us [%zu], baseline=%lld us [%zu])\n",
              p99_improves ? "PASS" : "FAIL",
              static_cast<long long>(pre_p99), pre.size(),
              static_cast<long long>(post_p99), post.size(),
              static_cast<long long>(base_p99), base.size());
  ok = ok && p99_improves;

  bool detections_identical = elastic_detections == baseline_detections &&
                              !elastic_detections.empty();
  std::printf("gate 3 detections identical: %s (%zu vs %zu)\n",
              detections_identical ? "PASS" : "FAIL",
              elastic_detections.size(), baseline_detections.size());
  ok = ok && detections_identical;

  bool disabled_identity = baseline.task_migrations == 0 &&
                           baseline.migration_failures == 0 &&
                           baseline.router_version_delta == 0 &&
                           baseline.standby_executed == 0 &&
                           baseline.engine_executed ==
                               static_cast<uint64_t>(total_messages);
  std::printf("gate 4 disabled == seed:     %s (migrations=%llu router_delta="
              "%llu standby_executed=%llu)\n",
              disabled_identity ? "PASS" : "FAIL",
              static_cast<unsigned long long>(baseline.task_migrations),
              static_cast<unsigned long long>(baseline.router_version_delta),
              static_cast<unsigned long long>(baseline.standby_executed));
  ok = ok && disabled_identity;

  std::FILE* out = std::fopen(out_path, "w");
  INSIGHT_CHECK(out != nullptr) << "cannot open " << out_path;
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"elastic\",\n");
  std::fprintf(out, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(out, "  \"messages\": %lld,\n",
               static_cast<long long>(total_messages));
  std::fprintf(out, "  \"rate_per_sec\": %.0f,\n", kRatePerSec);
  std::fprintf(out, "  \"service_micros\": {\"source_host\": %lld, "
               "\"standby_host\": %lld},\n",
               static_cast<long long>(kSlowServiceMicros),
               static_cast<long long>(kFastServiceMicros));
  std::fprintf(out, "  \"elastic\": {\n");
  std::fprintf(out, "    \"migrations\": %llu,\n",
               static_cast<unsigned long long>(
                   elastic_run.controller.migrations));
  std::fprintf(out, "    \"migration_failures\": %llu,\n",
               static_cast<unsigned long long>(
                   elastic_run.controller.migration_failures));
  std::fprintf(out, "    \"ticks\": %llu,\n",
               static_cast<unsigned long long>(elastic_run.controller.ticks));
  std::fprintf(out, "    \"from_task\": %d,\n",
               elastic_run.controller.last_from_task);
  std::fprintf(out, "    \"to_task\": %d,\n",
               elastic_run.controller.last_to_task);
  std::fprintf(out, "    \"hot_p99_pre_migration_micros\": %lld,\n",
               static_cast<long long>(pre_p99));
  std::fprintf(out, "    \"hot_p99_post_migration_micros\": %lld,\n",
               static_cast<long long>(post_p99));
  std::fprintf(out, "    \"pre_samples\": %zu,\n", pre.size());
  std::fprintf(out, "    \"post_samples\": %zu,\n", post.size());
  std::fprintf(out, "    \"detections\": %zu\n", elastic_detections.size());
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"baseline\": {\n");
  std::fprintf(out, "    \"hot_p99_micros\": %lld,\n",
               static_cast<long long>(base_p99));
  std::fprintf(out, "    \"task_migrations\": %llu,\n",
               static_cast<unsigned long long>(baseline.task_migrations));
  std::fprintf(out, "    \"detections\": %zu\n", baseline_detections.size());
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"gates\": {\n");
  std::fprintf(out, "    \"migrated\": %s,\n", migrated ? "true" : "false");
  std::fprintf(out, "    \"p99_improves\": %s,\n",
               p99_improves ? "true" : "false");
  std::fprintf(out, "    \"detections_identical\": %s,\n",
               detections_identical ? "true" : "false");
  std::fprintf(out, "    \"disabled_identity\": %s,\n",
               disabled_identity ? "true" : "false");
  std::fprintf(out, "    \"all\": %s\n", ok ? "true" : "false");
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);

  std::printf("%s -> %s\n", ok ? "ALL GATES PASS" : "GATE FAILURE", out_path);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace insight

int main(int argc, char** argv) { return insight::bench::Main(argc, argv); }
