// Cost of stateful recovery, in two tables:
//
//  1. Checkpoint overhead vs interval: the same acked source -> count -> sink
//     pipeline with checkpointing off (baseline) and on at decreasing
//     intervals. With checkpoint-aligned deferred acking, shorter intervals
//     mean more snapshots AND faster ack turnaround, so the interesting
//     number is throughput, not just snapshot count.
//
//  2. Restore latency vs state size: serialize a bolt holding N keys, write
//     it through the MiniDfs-backed store, and time the load + decode +
//     apply path a relaunched executor pays before resuming.
//
// Usage: bench_recovery [out.json]  (default BENCH_recovery.json)

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/logging.h"
#include "dfs/mini_dfs.h"
#include "dsps/local_runtime.h"
#include "dsps/topology.h"
#include "reliability/state_store.h"

namespace insight {
namespace bench {
namespace {

using dsps::Bolt;
using dsps::Collector;
using dsps::Fields;
using dsps::LocalRuntime;
using dsps::Snapshottable;
using dsps::Spout;
using dsps::TaskContext;
using dsps::TopologyBuilder;
using dsps::Tuple;
using dsps::Value;

constexpr int kTuples = 50000;
constexpr int kKeys = 512;

class NumberSpout : public Spout {
 public:
  explicit NumberSpout(int n) : n_(n) {}
  bool NextTuple(Collector* collector) override {
    if (next_ >= n_) return false;
    collector->EmitRooted(static_cast<uint64_t>(next_ + 1),
                          {Value(int64_t{next_ % kKeys})});
    ++next_;
    return next_ < n_;
  }

 private:
  int n_;
  int next_ = 0;
};

/// Keyed running counts — the minimal stateful bolt. Snapshot format: u32
/// count then (i64 key, i64 count) pairs.
class CountBolt : public Bolt, public Snapshottable {
 public:
  void Execute(const Tuple& input, Collector* collector) override {
    int64_t key = input.Get(0).AsInt();
    int64_t count = ++counts_[key];
    collector->Emit({Value(key), Value(count)});
  }

  Status SnapshotState(std::string* out) const override {
    ByteWriter writer(out);
    writer.PutU32(static_cast<uint32_t>(counts_.size()));
    for (const auto& [key, count] : counts_) {
      writer.PutI64(key);
      writer.PutI64(count);
    }
    return Status::OK();
  }
  Status RestoreState(const std::string& bytes) override {
    counts_.clear();
    ByteReader reader(bytes);
    uint32_t n = 0;
    if (!reader.GetU32(&n)) return Status::ParseError("count bolt: truncated");
    for (uint32_t i = 0; i < n; ++i) {
      int64_t key = 0;
      int64_t count = 0;
      if (!reader.GetI64(&key) || !reader.GetI64(&count)) {
        counts_.clear();
        return Status::ParseError("count bolt: truncated entry");
      }
      counts_[key] = count;
    }
    return Status::OK();
  }

  /// Seeds `n` keys so restore benchmarks have a state of known size.
  void Seed(int n) {
    for (int i = 0; i < n; ++i) counts_[i] = i;
  }

 private:
  std::map<int64_t, int64_t> counts_;
};

class NullSink : public Bolt {
 public:
  void Execute(const Tuple&, Collector*) override {}
};

struct OverheadRow {
  MicrosT interval_micros = 0;  // 0 = checkpointing off
  double tuples_per_sec = 0;
  uint64_t checkpoints = 0;
  uint64_t bytes_persisted = 0;
};

OverheadRow RunOverhead(MicrosT interval_micros) {
  TopologyBuilder builder;
  builder.SetSpout("source",
                   [] { return std::make_unique<NumberSpout>(kTuples); },
                   Fields({"k"}));
  builder
      .SetBolt("count", [] { return std::make_unique<CountBolt>(); },
               Fields({"k", "n"}))
      .FieldsGrouping("source", {"k"});
  builder.SetBolt("sink", [] { return std::make_unique<NullSink>(); },
                  Fields({}))
      .ShuffleGrouping("count");
  auto topology = builder.Build();
  INSIGHT_CHECK(topology.ok()) << topology.status().ToString();

  dfs::MiniDfs dfs;
  reliability::DfsStateStore store(&dfs, "/checkpoints");
  LocalRuntime::Options options;
  options.enable_acking = true;
  if (interval_micros > 0) {
    options.enable_checkpointing = true;
    options.checkpoint_interval_micros = interval_micros;
    options.state_store = &store;
    options.enable_replay_dedup = true;
  }
  LocalRuntime runtime(std::move(*topology), options);
  auto start = std::chrono::steady_clock::now();
  INSIGHT_CHECK(runtime.Start().ok());
  runtime.AwaitCompletion();
  auto end = std::chrono::steady_clock::now();
  double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();

  OverheadRow row;
  row.interval_micros = interval_micros;
  row.tuples_per_sec = static_cast<double>(kTuples) / seconds;
  row.checkpoints = runtime.metrics()->Totals("count").checkpoints;
  const auto* coordinator = runtime.checkpoint_coordinator();
  row.bytes_persisted = coordinator != nullptr ? coordinator->bytes_persisted() : 0;
  INSIGHT_CHECK(runtime.pending_trees() == 0) << "trees leaked";
  return row;
}

struct RestoreRow {
  int keys = 0;
  size_t snapshot_bytes = 0;
  double snapshot_micros = 0;  // serialize + durable store write
  double restore_micros = 0;   // store read + decode + apply
};

RestoreRow RunRestore(int keys) {
  dfs::MiniDfs dfs;
  reliability::DfsStateStore store(&dfs, "/checkpoints");

  CountBolt original;
  original.Seed(keys);

  auto t0 = std::chrono::steady_clock::now();
  std::string bytes;
  INSIGHT_CHECK(original.SnapshotState(&bytes).ok());
  INSIGHT_CHECK(store.Put("count/0", 1, bytes).ok());
  auto t1 = std::chrono::steady_clock::now();

  CountBolt restored;
  auto latest = store.GetLatest("count/0");
  INSIGHT_CHECK(latest.ok());
  INSIGHT_CHECK(restored.RestoreState(latest->bytes).ok());
  auto t2 = std::chrono::steady_clock::now();

  RestoreRow row;
  row.keys = keys;
  row.snapshot_bytes = bytes.size();
  row.snapshot_micros =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          t1 - t0)
          .count();
  row.restore_micros =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          t2 - t1)
          .count();
  return row;
}

int Main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_recovery.json";

  std::printf(
      "Checkpoint overhead: %d acked tuples through source -> count -> sink\n"
      "(count holds %d keys; checkpoints to a MiniDfs-backed store).\n\n",
      kTuples, kKeys);
  std::printf("%14s %14s %12s %14s\n", "interval", "tuples/sec",
              "checkpoints", "bytes");
  const MicrosT intervals[] = {0, 100'000, 10'000, 1'000};
  std::vector<OverheadRow> overhead;
  for (MicrosT interval : intervals) {
    OverheadRow row = RunOverhead(interval);
    overhead.push_back(row);
    char label[32];
    if (interval == 0) {
      std::snprintf(label, sizeof(label), "off");
    } else {
      std::snprintf(label, sizeof(label), "%lld us",
                    static_cast<long long>(interval));
    }
    std::printf("%14s %14.0f %12llu %14llu\n", label, row.tuples_per_sec,
                static_cast<unsigned long long>(row.checkpoints),
                static_cast<unsigned long long>(row.bytes_persisted));
  }

  std::printf("\nRestore latency (snapshot -> DFS -> decode + apply):\n\n");
  std::printf("%10s %14s %16s %16s\n", "keys", "bytes", "snapshot (us)",
              "restore (us)");
  std::vector<RestoreRow> restores;
  for (int keys : {1'000, 10'000, 100'000}) {
    RestoreRow row = RunRestore(keys);
    restores.push_back(row);
    std::printf("%10d %14zu %16.1f %16.1f\n", row.keys, row.snapshot_bytes,
                row.snapshot_micros, row.restore_micros);
  }

  std::FILE* f = std::fopen(out_path, "w");
  INSIGHT_CHECK(f != nullptr) << "cannot write " << out_path;
  std::fprintf(f, "{\n  \"checkpoint_overhead\": [\n");
  for (size_t i = 0; i < overhead.size(); ++i) {
    const OverheadRow& row = overhead[i];
    std::fprintf(f,
                 "    {\"interval_micros\": %lld, \"tuples_per_sec\": %.1f, "
                 "\"checkpoints\": %llu, \"bytes_persisted\": %llu}%s\n",
                 static_cast<long long>(row.interval_micros),
                 row.tuples_per_sec,
                 static_cast<unsigned long long>(row.checkpoints),
                 static_cast<unsigned long long>(row.bytes_persisted),
                 i + 1 < overhead.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"restore_latency\": [\n");
  for (size_t i = 0; i < restores.size(); ++i) {
    const RestoreRow& row = restores[i];
    std::fprintf(f,
                 "    {\"keys\": %d, \"snapshot_bytes\": %zu, "
                 "\"snapshot_micros\": %.1f, \"restore_micros\": %.1f}%s\n",
                 row.keys, row.snapshot_bytes, row.snapshot_micros,
                 row.restore_micros, i + 1 < restores.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace insight

int main(int argc, char** argv) { return insight::bench::Main(argc, argv); }
