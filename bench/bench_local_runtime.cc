// Real-thread sanity companion to the DES benches: throughput of the actual
// multithreaded LocalRuntime (not simulated) as Esper-bolt executors grow.
// Validates on this machine what Figures 15/17 show in simulation: adding
// engines raises throughput until physical cores run out.

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "dsps/local_runtime.h"
#include "traffic/bolts.h"
#include "traffic/generator.h"

namespace insight {
namespace bench {
namespace {

constexpr size_t kTuples = 60000;

double RunWithEngines(int engines,
                      std::shared_ptr<std::vector<traffic::BusTrace>> traces) {
  auto config = std::make_shared<traffic::EsperBoltConfig>();
  auto rules = core::Table6Rules(100);
  std::vector<std::pair<std::string, std::string>> compiled;
  for (const core::RuleTemplate& rule : rules) {
    auto epl = rule.ToEpl(/*static_threshold=*/120.0);
    INSIGHT_CHECK(epl.ok());
    compiled.emplace_back(rule.name, *epl);
  }
  config->rules_per_task.assign(static_cast<size_t>(engines), compiled);

  dsps::TopologyBuilder builder;
  builder.SetSpout("reader",
                   [traces] {
                     return std::make_unique<traffic::BusReaderSpout>(
                         traces, /*enriched=*/true);
                   },
                   traffic::EnrichedFields({}), 1);
  builder
      .SetBolt("esper",
               [config] { return std::make_unique<traffic::EsperBolt>(config); },
               traffic::DetectionFields(), engines, engines)
      .FieldsGrouping("reader", {"area_leaf"});
  auto topology = builder.Build();
  INSIGHT_CHECK(topology.ok()) << topology.status().ToString();

  dsps::LocalRuntime runtime(std::move(*topology), {});
  auto start = std::chrono::steady_clock::now();
  INSIGHT_CHECK(runtime.Start().ok());
  runtime.AwaitCompletion();
  auto end = std::chrono::steady_clock::now();
  double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  auto totals = runtime.metrics()->Totals("esper");
  return static_cast<double>(totals.executed) / seconds;
}

}  // namespace
}  // namespace bench
}  // namespace insight

int main() {
  using namespace insight::bench;
  std::printf(
      "Local-runtime reality check: real threads, real engines, %zu tuples\n"
      "(Table 6 rules at window 100, static thresholds)\n\n",
      kTuples);

  // Enriched traces so the bus event type's 15 fields are all present.
  insight::traffic::TraceGenerator::Options options;
  options.num_buses = 300;
  options.num_lines = 67;
  options.start_hour = 8;
  options.end_hour = 10;
  insight::traffic::TraceGenerator generator(options);
  auto raw = generator.GenerateAll(kTuples);
  for (auto& t : raw) {
    // Pseudo-enrichment: deterministic regions so the rules have locations.
    t.area_leaf = t.line_id % 40;
    t.bus_stop = t.line_id % 40;
    t.hour = 8;
  }
  auto traces = std::make_shared<std::vector<insight::traffic::BusTrace>>(
      std::move(raw));

  std::printf("%10s %16s\n", "engines", "tuples/sec");
  for (int engines : {1, 2, 4, 8}) {
    double throughput = RunWithEngines(engines, traces);
    std::printf("%10d %16.0f\n", engines, throughput);
  }
  std::printf("\nexpected: throughput rises with executors until the host's "
              "cores saturate.\n");
  return 0;
}
