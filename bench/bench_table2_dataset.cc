// Reproduces Table 2 / Section 3.1: properties of the (synthetic) dataset.
// The real DCC feed is proprietary; the generator must match the published
// shape: 911 buses, 67 lines, 3 tuples per minute per bus, service 6 am to
// 3 am, ~160 MB of CSV per day.

#include <cstdio>

#include <map>
#include <set>
#include <sstream>

#include "common/csv.h"
#include "traffic/generator.h"

int main() {
  using insight::traffic::BusTrace;
  using insight::traffic::TraceGenerator;

  TraceGenerator::Options options;  // paper defaults
  TraceGenerator generator(options);

  // Sample the first simulated hour fully, then extrapolate bytes/day from
  // the measured bytes/tuple.
  std::set<int> vehicles, lines;
  std::ostringstream csv;
  insight::CsvWriter writer(&csv);
  BusTrace trace;
  size_t traces = 0;
  insight::MicrosT first_ts = -1, last_ts = 0;
  std::map<int, std::pair<insight::MicrosT, size_t>> per_vehicle;  // first, count
  const insight::MicrosT one_hour =
      static_cast<insight::MicrosT>(options.start_hour + 1) * 3600 * 1000000;
  while (generator.Next(&trace)) {
    if (first_ts < 0) first_ts = trace.timestamp;
    if (trace.timestamp > one_hour) break;
    last_ts = trace.timestamp;
    vehicles.insert(trace.vehicle_id);
    lines.insert(trace.line_id);
    // The paper's 160 MB/day is the raw feed (Table 1's columns); enriched
    // columns are added downstream by the topology.
    auto row = trace.ToCsvRow();
    row.resize(9);
    writer.Write(row);
    auto& entry = per_vehicle[trace.vehicle_id];
    if (entry.second == 0) entry.first = trace.timestamp;
    ++entry.second;
    ++traces;
  }

  double hours_sampled =
      static_cast<double>(last_ts - first_ts) / 3600.0 / 1e6;
  double bytes_per_tuple = static_cast<double>(csv.str().size()) /
                           static_cast<double>(traces);
  double service_hours = static_cast<double>(options.end_hour - options.start_hour);
  double tuples_per_day =
      static_cast<double>(traces) / hours_sampled * service_hours;
  double mb_per_day = tuples_per_day * bytes_per_tuple / 1024.0 / 1024.0;
  double tuples_per_min_per_bus =
      static_cast<double>(traces) / hours_sampled / 60.0 /
      static_cast<double>(vehicles.size());

  std::printf("Table 2 reproduction (synthetic Dublin feed)\n\n");
  std::printf("%-28s %12s %12s\n", "property", "paper", "measured");
  std::printf("%-28s %12s %12zu\n", "number of buses", "911", vehicles.size());
  std::printf("%-28s %12s %12zu\n", "number of lines", "67", lines.size());
  std::printf("%-28s %12s %12.2f\n", "data frequency (tuple/min/bus)", "3",
              tuples_per_min_per_bus);
  std::printf("%-28s %12s %12.0f\n", "size of data (MB/day)", "160", mb_per_day);
  std::printf("%-28s %12s %7dh-%dh\n", "time interval", "6am-3am",
              options.start_hour, options.end_hour % 24);
  return 0;
}
