// Reproduces Figure 10 (a, b) / Section 5.2: observed per-tuple latency of
// the threshold retrieval techniques on one Esper engine:
//   * Many Rules      — one concrete rule per (location, hour, day) threshold
//   * Join With SQL   — a storage query per incoming tuple
//   * Optimal         — static literal threshold (no retrieval)
//   * New Stream      — thresholds preloaded into an Esper stream (adopted)
//
// The paper's y-axis is milliseconds per tuple over a 300-second replay;
// here the series is bucketed by tuple index. Storage round trips are
// charged from TableStore's modeled per-query cost (an in-process map lookup
// would otherwise hide the client-server latency a real MySQL pays; see
// EXPERIMENTS.md).

#include <cstdio>

#include "bench_util.h"
#include "core/retrieval.h"
#include "storage/table_store.h"

namespace insight {
namespace bench {
namespace {

constexpr size_t kLocations = 24;
constexpr size_t kHours = 24;
constexpr size_t kEvents = 12000;
constexpr size_t kBuckets = 12;

void FillStore(storage::TableStore* store) {
  INSIGHT_CHECK(
      store->CreateTable("statistics_delay", storage::StatisticsColumns()).ok());
  Rng rng(31);
  for (size_t loc = 0; loc < kLocations; ++loc) {
    for (size_t hour = 0; hour < kHours; ++hour) {
      for (const char* day : {"weekday", "weekend"}) {
        INSIGHT_CHECK(store
                          ->Insert("statistics_delay",
                                   {storage::Value(static_cast<int64_t>(loc)),
                                    storage::Value(static_cast<int64_t>(hour)),
                                    storage::Value(day),
                                    storage::Value(rng.Uniform(60.0, 140.0)),
                                    storage::Value(rng.Uniform(5.0, 25.0)),
                                    storage::Value(int64_t{50})})
                          .ok());
      }
    }
  }
}

/// Runs one strategy; returns per-bucket average latency in msec (engine
/// processing + charged storage cost).
std::vector<double> RunStrategy(core::ThresholdRetrieval strategy,
                                const storage::TableStore& store) {
  std::vector<core::RuleTemplate> rules = {
      core::MakeRule("delay_rule", "delay", "area_leaf", 100)};
  core::RetrievalOptions options;
  options.s = 1.0;
  options.static_threshold = 120.0;
  auto setup = core::BuildRetrieval(strategy, rules, &store, options);
  INSIGHT_CHECK(setup.ok()) << setup.status().ToString();

  cep::Engine engine;
  INSIGHT_CHECK(
      engine.RegisterEventType("bus", traffic::BusEventFields({})).ok());
  for (const char* attr : {"delay", "actual_delay", "speed", "congestion"}) {
    for (const char* suffix : {"", "_stop"}) {
      INSIGHT_CHECK(engine
                        .RegisterEventType(
                            traffic::ThresholdEventTypeName(
                                std::string(attr) + suffix),
                            traffic::ThresholdEventFields())
                        .ok());
    }
  }
  for (const auto& [name, epl] : setup->rules) {
    auto stmt = engine.AddStatement(epl, name);
    INSIGHT_CHECK(stmt.ok()) << stmt.status().ToString();
  }
  if (setup->preload) setup->preload(&engine, 0);

  // Tuples carry the fields the join strategy reads.
  auto tuple_fields = std::make_shared<dsps::Fields>(
      dsps::Fields({"area_leaf", "hour", "date_type"}));

  Rng rng(57);
  std::vector<double> bucket_sums(kBuckets, 0.0);
  std::vector<size_t> bucket_counts(kBuckets, 0);
  SystemClock clock;
  for (uint64_t i = 0; i < kEvents; ++i) {
    cep::EventPtr event = SyntheticBusEvent(&engine, &rng, kLocations, i);
    dsps::Tuple tuple(tuple_fields,
                      {*event->Get("area_leaf"), *event->Get("hour"),
                       *event->Get("date_type")});
    int64_t queries_before =
        static_cast<int64_t>(store.query_count());
    MicrosT start = clock.NowMicros();
    if (setup->before_send) setup->before_send(&engine, 0, tuple);
    engine.SendEvent(event);
    MicrosT elapsed = clock.NowMicros() - start;
    int64_t queries =
        static_cast<int64_t>(store.query_count()) - queries_before;
    double total_micros = static_cast<double>(elapsed) +
                          static_cast<double>(queries) *
                              static_cast<double>(store.per_query_cost_micros());
    size_t bucket = i * kBuckets / kEvents;
    bucket_sums[bucket] += total_micros / 1000.0;  // msec
    ++bucket_counts[bucket];
  }
  std::vector<double> averages(kBuckets);
  for (size_t b = 0; b < kBuckets; ++b) {
    averages[b] = bucket_counts[b] ? bucket_sums[b] / bucket_counts[b] : 0.0;
  }
  return averages;
}

}  // namespace
}  // namespace bench
}  // namespace insight

int main() {
  using insight::core::ThresholdRetrieval;
  std::printf(
      "Figure 10 / Section 5.2 reproduction: threshold retrieval latency\n"
      "(msec per tuple, averaged per replay bucket; %zu tuples, %zu "
      "locations)\n\n",
      insight::bench::kEvents, insight::bench::kLocations);

  insight::storage::TableStore store;
  insight::bench::FillStore(&store);
  struct Series {
    const char* label;
    ThresholdRetrieval strategy;
  };
  const Series series[] = {
      {"Many Rules", ThresholdRetrieval::kMultipleRules},
      {"Join With SQL", ThresholdRetrieval::kJoinWithDatabase},
      {"Optimal (static)", ThresholdRetrieval::kStatic},
      {"New Stream", ThresholdRetrieval::kThresholdStream},
  };
  std::vector<int> buckets;
  for (size_t b = 0; b < insight::bench::kBuckets; ++b) {
    buckets.push_back(static_cast<int>(b));
  }
  insight::bench::PrintHeader("strategy \\ bucket", buckets);
  std::vector<std::pair<std::string, double>> means;
  for (const Series& s : series) {
    auto row = insight::bench::RunStrategy(s.strategy, store);
    insight::bench::PrintRow(s.label, row, "%10.3f");
    double mean = 0;
    for (double v : row) mean += v;
    means.emplace_back(s.label, mean / static_cast<double>(row.size()));
  }
  std::printf("\nmean latency (msec):\n");
  for (const auto& [label, mean] : means) {
    std::printf("  %-20s %8.3f\n", label.c_str(), mean);
  }
  std::printf(
      "\npaper shape: JoinWithSQL >> ManyRules > NewStream ~= Optimal\n");
  return 0;
}
