// Hot-path microbenchmark with an instrumented allocator: proves the
// steady-state CEP ingest path performs zero heap allocations per event for
// fixed-width schemas (pooled events + recycled value buffers + incremental
// aggregation), and measures the batched DSPS transport. Emits
// BENCH_hotpath.json (events/sec, ns/event, allocs/event per scenario).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "cep/engine.h"
#include "dsps/local_runtime.h"
#include "dsps/topology.h"
#include "traffic/bolts.h"

// ---------------------------------------------------------------------------
// Instrumented global allocator
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1) !=
      0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace insight {
namespace {

using cep::Value;

uint64_t TakeAllocs() { return g_allocs.exchange(0, std::memory_order_relaxed); }

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// Scenario 1: CEP ingest (canonical detection rules, no-match steady state)
// ---------------------------------------------------------------------------

/// Fills a recycled buffer positionally in BusEventFields({}) order. Every
/// value is fixed-width ("weekday" sits in SSO storage), so refilling warm
/// capacity never touches the heap.
void FillBusValues(std::vector<Value>& out, Rng* rng, size_t num_locations,
                   uint64_t index) {
  int64_t location = static_cast<int64_t>(index % num_locations);
  out.clear();
  out.emplace_back(static_cast<int64_t>(index * 1000));            // timestamp
  out.emplace_back(static_cast<int64_t>(index % 67));              // line
  out.emplace_back((index & 1) == 0);                              // direction
  out.emplace_back(-6.26 + rng->Gaussian(0.0, 0.01));              // lon
  out.emplace_back(53.35 + rng->Gaussian(0.0, 0.01));              // lat
  out.emplace_back(rng->Gaussian(90.0, 40.0));                     // delay
  out.emplace_back(rng->Bernoulli(0.2));                           // congestion
  out.emplace_back(int64_t{-1});                                   // reported_stop
  out.emplace_back(static_cast<int64_t>(index % 911));             // vehicle
  out.emplace_back(rng->Gaussian(22.0, 6.0));                      // speed
  out.emplace_back(rng->Gaussian(0.0, 5.0));                       // actual_delay
  out.emplace_back(static_cast<int64_t>((index / 500) % 24));      // hour
  out.emplace_back("weekday");                                     // date_type
  out.emplace_back(location);                                      // area_leaf
  out.emplace_back(location);                                      // bus_stop
}

struct ScenarioResult {
  uint64_t events = 0;
  double events_per_sec = 0.0;
  double ns_per_event = 0.0;
  double allocs_per_event = 0.0;
};

ScenarioResult RunCepIngest() {
  constexpr size_t kLocations = 32;
  constexpr size_t kWindow = 100;
  constexpr uint64_t kEvents = 200000;

  cep::Engine engine;
  INSIGHT_CHECK(
      engine.RegisterEventType("bus", traffic::BusEventFields({})).ok());
  // Canonical detection-rule shape (Table 6 / Section 4.1): lastevent
  // trigger joined against a per-location length window, GROUP BY the
  // window's group field, HAVING against a static threshold that almost
  // never passes — the steady state is the no-match path.
  const char* kRules[] = {
      "@Trigger(bus)\n"
      "SELECT bd.area_leaf AS location, avg(bd2.speed) AS value,\n"
      "       2.0 AS threshold, 'speed' AS attribute, bd.timestamp AS timestamp\n"
      "FROM bus.std:lastevent() as bd,\n"
      "     bus.std:groupwin(area_leaf).win:length(100) as bd2\n"
      "WHERE bd.area_leaf = bd2.area_leaf\n"
      "GROUP BY bd2.area_leaf\n"
      "HAVING avg(bd2.speed) < 2.0",
      "@Trigger(bus)\n"
      "SELECT bd.area_leaf AS location, avg(bd2.delay) AS value,\n"
      "       1e9 AS threshold, 'delay' AS attribute, bd.timestamp AS timestamp\n"
      "FROM bus.std:lastevent() as bd,\n"
      "     bus.std:groupwin(area_leaf).win:length(100) as bd2\n"
      "WHERE bd.area_leaf = bd2.area_leaf\n"
      "GROUP BY bd2.area_leaf\n"
      "HAVING avg(bd2.delay) > 1e9",
  };
  int rule_id = 0;
  for (const char* epl : kRules) {
    auto stmt = engine.AddStatement(epl, "rule-" + std::to_string(rule_id++));
    INSIGHT_CHECK(stmt.ok()) << stmt.status().ToString();
    INSIGHT_CHECK((*stmt)->incremental());
  }

  cep::EventPool& pool = engine.event_pool();
  auto bus_type = engine.GetEventType("bus");
  INSIGHT_CHECK(bus_type.ok());
  Rng rng(41);

  // Warm-up: fill every per-location window (evictions begin), warm the
  // event pool, the group tables, and the scratch buffers.
  for (uint64_t i = 0; i < kLocations * (kWindow + 2); ++i) {
    std::vector<Value> buffer = pool.TakeBuffer();
    FillBusValues(buffer, &rng, kLocations, i);
    engine.SendEvent(
        pool.Create(*bus_type, std::move(buffer), static_cast<MicrosT>(i)));
  }

  TakeAllocs();
  double start = NowSeconds();
  for (uint64_t i = 0; i < kEvents; ++i) {
    std::vector<Value> buffer = pool.TakeBuffer();
    FillBusValues(buffer, &rng, kLocations, i);
    engine.SendEvent(
        pool.Create(*bus_type, std::move(buffer), static_cast<MicrosT>(i)));
  }
  double elapsed = NowSeconds() - start;
  uint64_t allocs = TakeAllocs();

  ScenarioResult result;
  result.events = kEvents;
  result.events_per_sec = static_cast<double>(kEvents) / elapsed;
  result.ns_per_event = elapsed * 1e9 / static_cast<double>(kEvents);
  result.allocs_per_event =
      static_cast<double>(allocs) / static_cast<double>(kEvents);
  return result;
}

// ---------------------------------------------------------------------------
// Scenario 2: DSPS transport (batched queues, shared payloads)
// ---------------------------------------------------------------------------

class FirehoseSpout : public dsps::Spout {
 public:
  explicit FirehoseSpout(int64_t n) : n_(n) {}
  bool NextTuple(dsps::Collector* collector) override {
    if (next_ >= n_) return false;
    collector->Emit({Value(next_), Value(next_ * 3)});
    ++next_;
    return next_ < n_;
  }

 private:
  int64_t n_;
  int64_t next_ = 0;
};

class PassBolt : public dsps::Bolt {
 public:
  void Execute(const dsps::Tuple& input, dsps::Collector* collector) override {
    collector->EmitMove({input.Get(0), input.Get(1)});
  }
};

class NullSink : public dsps::Bolt {
 public:
  void Execute(const dsps::Tuple& input, dsps::Collector*) override {
    checksum_ += input.Get(0).AsInt();
  }

 private:
  int64_t checksum_ = 0;
};

ScenarioResult RunTransport(bool enable_tracing, double sample_rate) {
  static constexpr int64_t kTuples = 300000;
  dsps::TopologyBuilder builder;
  builder.SetSpout("source",
                   [] { return std::make_unique<FirehoseSpout>(kTuples); },
                   dsps::Fields({"a", "b"}));
  builder.SetBolt("relay", [] { return std::make_unique<PassBolt>(); },
                  dsps::Fields({"a", "b"}), 2)
      .ShuffleGrouping("source");
  builder.SetBolt("sink", [] { return std::make_unique<NullSink>(); },
                  dsps::Fields({}), 2)
      .FieldsGrouping("relay", {"a"});
  auto topology = builder.Build();
  INSIGHT_CHECK(topology.ok());
  dsps::LocalRuntime::Options options;
  options.enable_tracing = enable_tracing;
  options.trace_sample_rate = sample_rate;
  dsps::LocalRuntime runtime(std::move(*topology), options);

  TakeAllocs();
  double start = NowSeconds();
  INSIGHT_CHECK(runtime.Start().ok());
  runtime.AwaitCompletion();
  double elapsed = NowSeconds() - start;
  uint64_t allocs = TakeAllocs();

  ScenarioResult result;
  result.events = static_cast<uint64_t>(kTuples);
  result.events_per_sec = static_cast<double>(kTuples) / elapsed;
  result.ns_per_event = elapsed * 1e9 / static_cast<double>(kTuples);
  result.allocs_per_event =
      static_cast<double>(allocs) / static_cast<double>(kTuples);
  return result;
}

/// Median-of-N ns/event, so one scheduler hiccup on a loaded CI box cannot
/// fail (or mask) the tracing-overhead gate.
ScenarioResult RunTransportMedian(bool enable_tracing, double sample_rate,
                                  int runs = 3) {
  std::vector<ScenarioResult> results;
  for (int i = 0; i < runs; ++i) {
    results.push_back(RunTransport(enable_tracing, sample_rate));
  }
  std::sort(results.begin(), results.end(),
            [](const ScenarioResult& a, const ScenarioResult& b) {
              return a.ns_per_event < b.ns_per_event;
            });
  return results[results.size() / 2];
}

void PrintScenario(std::FILE* f, const char* name, const ScenarioResult& r,
                   bool last) {
  std::fprintf(f,
               "  \"%s\": {\n"
               "    \"events\": %llu,\n"
               "    \"events_per_sec\": %.1f,\n"
               "    \"ns_per_event\": %.1f,\n"
               "    \"allocs_per_event\": %.4f\n"
               "  }%s\n",
               name, static_cast<unsigned long long>(r.events),
               r.events_per_sec, r.ns_per_event, r.allocs_per_event,
               last ? "" : ",");
}

int Main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_hotpath.json";

  ScenarioResult cep = RunCepIngest();
  std::printf("cep_ingest:       %9.0f events/s  %7.1f ns/event  %.4f allocs/event\n",
              cep.events_per_sec, cep.ns_per_event, cep.allocs_per_event);
  ScenarioResult transport =
      RunTransportMedian(/*enable_tracing=*/false, /*sample_rate=*/0.0);
  std::printf("transport:        %9.0f tuples/s  %7.1f ns/tuple  %.4f allocs/tuple\n",
              transport.events_per_sec, transport.ns_per_event,
              transport.allocs_per_event);
  // Tracing overhead ladder: compiled in but sampling nothing (the gated
  // configuration), then 1% and 100% sampling for the EXPERIMENTS.md table.
  ScenarioResult traced0 =
      RunTransportMedian(/*enable_tracing=*/true, /*sample_rate=*/0.0);
  std::printf("transport_traced0:%9.0f tuples/s  %7.1f ns/tuple  %.4f allocs/tuple\n",
              traced0.events_per_sec, traced0.ns_per_event,
              traced0.allocs_per_event);
  ScenarioResult traced1 =
      RunTransport(/*enable_tracing=*/true, /*sample_rate=*/0.01);
  std::printf("transport_traced1:%9.0f tuples/s  %7.1f ns/tuple  %.4f allocs/tuple\n",
              traced1.events_per_sec, traced1.ns_per_event,
              traced1.allocs_per_event);
  ScenarioResult traced100 =
      RunTransport(/*enable_tracing=*/true, /*sample_rate=*/1.0);
  std::printf("transport_traced100:%7.0f tuples/s  %7.1f ns/tuple  %.4f allocs/tuple\n",
              traced100.events_per_sec, traced100.ns_per_event,
              traced100.allocs_per_event);

  std::FILE* f = std::fopen(out_path, "w");
  INSIGHT_CHECK(f != nullptr) << "cannot write " << out_path;
  std::fprintf(f, "{\n");
  PrintScenario(f, "cep_ingest", cep, /*last=*/false);
  PrintScenario(f, "transport", transport, /*last=*/false);
  PrintScenario(f, "transport_traced0", traced0, /*last=*/false);
  PrintScenario(f, "transport_traced1", traced1, /*last=*/false);
  PrintScenario(f, "transport_traced100", traced100, /*last=*/true);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  int failures = 0;
  if (cep.allocs_per_event >= 0.001) {
    std::printf("WARNING: CEP steady-state ingest is not allocation-free\n");
    ++failures;
  }
  // The zero-sampling trace plumbing must stay within 5% of the untraced
  // transport (median of 3 each): tracing compiled in may not tax topologies
  // that never sample.
  if (traced0.ns_per_event > 1.05 * transport.ns_per_event) {
    std::printf(
        "WARNING: tracing at 0%% sampling regressed transport by %.1f%% "
        "(limit 5%%)\n",
        100.0 * (traced0.ns_per_event / transport.ns_per_event - 1.0));
    ++failures;
  }
  return failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace insight

int main(int argc, char** argv) { return insight::Main(argc, argv); }
