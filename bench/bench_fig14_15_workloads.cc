// Reproduces Figures 14 and 15 / Section 5.5: latency and throughput for
// different workloads assigned to the available Esper engines, using the
// proposed allocation algorithm. Workloads (each ten rules: five attribute
// rules over the bus stops, five over the quadtree leaves):
//
//   * last event                (window 1)
//   * last 10 values            (window 10)
//   * last 100 values           (window 100)
//   * last event + last 10
//   * last event + last 100
//   * last 10 + last 100
//   * all the rules             (1 + 10 + 100 together)

#include <cstdio>

#include "sim_bench_util.h"

namespace insight {
namespace bench {
namespace {

constexpr double kRate = 3000.0;
constexpr int kNodes = 7;

struct Workload {
  std::string label;
  std::vector<size_t> windows;
};

SweepPoint RunWorkload(const Workload& workload, int engines,
                       ServiceCache* cache) {
  // Combine the rules of every window size, split into the two groupings.
  std::vector<core::RuleTemplate> areas, stops;
  for (size_t window : workload.windows) {
    for (core::RuleTemplate rule : TenRuleWorkload(window)) {
      rule.name += "_w" + std::to_string(window);
      (rule.location_field == "bus_stop" ? stops : areas).push_back(rule);
    }
  }
  core::RuleGrouping area_grouping;
  area_grouping.name = "areas";
  area_grouping.rules = areas;
  area_grouping.input_rate = kRate;
  area_grouping.thresholds_per_rule = 32 * 24 * 2;
  core::RuleGrouping stop_grouping = area_grouping;
  stop_grouping.name = "stops";
  stop_grouping.rules = stops;

  model::LatencyModel model = model::LatencyModel::Default();
  core::RulesAllocator allocator(&model);
  auto allocation =
      allocator.Allocate({area_grouping, stop_grouping}, engines);
  INSIGHT_CHECK(allocation.ok()) << allocation.status().ToString();

  std::vector<double> services = {cache->Measure(areas), cache->Measure(stops)};
  EngineLayout layout =
      LayoutEngines(allocation->engines_per_grouping, services, kNodes);
  return RunPoint(ClusterOf(kNodes), layout, kRate, PartitionedRouter(layout),
                  2.0);
}

}  // namespace
}  // namespace bench
}  // namespace insight

int main() {
  using namespace insight::bench;
  std::printf(
      "Figures 14-15 / Section 5.5 reproduction: different workloads\n"
      "(proposed allocation; rate %.0f/s, %d nodes)\n\n",
      kRate, kNodes);

  const std::vector<Workload> workloads = {
      {"last event", {1}},
      {"last 10 values", {10}},
      {"last 100 values", {100}},
      {"last event and last 10", {1, 10}},
      {"last event and last 100", {1, 100}},
      {"last 10 and 100 values", {10, 100}},
      {"all the rules", {1, 10, 100}},
  };
  std::vector<int> engine_counts = {2, 4, 6, 8, 10, 12, 15};

  ServiceCache cache;
  std::vector<std::vector<double>> latency(workloads.size()),
      throughput(workloads.size());
  for (int engines : engine_counts) {
    for (size_t w = 0; w < workloads.size(); ++w) {
      SweepPoint point = RunWorkload(workloads[w], engines, &cache);
      latency[w].push_back(point.processing_msec);
      throughput[w].push_back(point.throughput);
    }
  }

  std::printf(
      "--- Figure 14: observed per-tuple processing latency (msec) ---\n");
  PrintHeader("workload \\ engines", engine_counts);
  for (size_t w = 0; w < workloads.size(); ++w) {
    PrintRow(workloads[w].label, latency[w], "%10.3f");
  }
  std::printf("\n--- Figure 15: achieved throughput (tuples / 40 s) ---\n");
  PrintHeader("workload \\ engines", engine_counts);
  for (size_t w = 0; w < workloads.size(); ++w) {
    PrintRow(workloads[w].label, throughput[w], "%10.0f");
  }
  std::printf(
      "\npaper shape: throughput increases steadily with engines for every\n"
      "workload, including all workloads at once; heavier windows are "
      "slower.\n");
  return 0;
}
