#ifndef INSIGHT_BENCH_BENCH_UTIL_H_
#define INSIGHT_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cep/engine.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/rule_template.h"
#include "traffic/bolts.h"

namespace insight {
namespace bench {

/// A CEP engine loaded with the given rule templates and `num_locations x
/// hours x daytypes` synthetic thresholds per referenced attribute stream.
struct LoadedEngine {
  std::unique_ptr<cep::Engine> engine;
  size_t thresholds_per_attribute = 0;
};

inline LoadedEngine MakeLoadedEngine(const std::vector<core::RuleTemplate>& rules,
                                     size_t num_locations, size_t num_hours = 24,
                                     uint64_t seed = 17) {
  LoadedEngine out;
  out.engine = std::make_unique<cep::Engine>();
  cep::Engine& engine = *out.engine;
  INSIGHT_CHECK(
      engine.RegisterEventType("bus", traffic::BusEventFields({})).ok());
  for (const char* attr : {"delay", "actual_delay", "speed", "congestion"}) {
    for (const char* suffix : {"", "_stop"}) {
      INSIGHT_CHECK(engine
                        .RegisterEventType(
                            traffic::ThresholdEventTypeName(
                                std::string(attr) + suffix),
                            traffic::ThresholdEventFields())
                        .ok());
    }
  }
  std::set<std::string> attribute_keys;
  for (const core::RuleTemplate& rule : rules) {
    auto epl = rule.ToEpl();
    INSIGHT_CHECK(epl.ok()) << epl.status().ToString();
    auto stmt = engine.AddStatement(*epl, rule.name);
    INSIGHT_CHECK(stmt.ok()) << stmt.status().ToString() << "\n" << *epl;
    for (const core::RuleAttribute& attr : rule.attributes) {
      attribute_keys.insert(rule.AttributeKey(attr.name));
    }
  }
  // Thresholds: synthetic mean levels; tight enough that some rules fire.
  Rng rng(seed);
  for (const std::string& key : attribute_keys) {
    auto type = engine.GetEventType(traffic::ThresholdEventTypeName(key));
    INSIGHT_CHECK(type.ok());
    for (size_t loc = 0; loc < num_locations; ++loc) {
      for (size_t hour = 0; hour < num_hours; ++hour) {
        for (const char* day : {"weekday", "weekend"}) {
          engine.SendEvent(cep::EventBuilder(*type)
                               .Set("location", static_cast<int64_t>(loc))
                               .Set("hour", static_cast<int64_t>(hour))
                               .Set("day", day)
                               .Set("value", rng.Uniform(50.0, 150.0))
                               .Build());
          ++out.thresholds_per_attribute;
        }
      }
    }
  }
  out.thresholds_per_attribute /= attribute_keys.empty() ? 1 : attribute_keys.size();
  engine.ResetStats();
  return out;
}

/// A synthetic enriched bus event cycling over `num_locations` locations.
inline cep::EventPtr SyntheticBusEvent(cep::Engine* engine, Rng* rng,
                                       size_t num_locations, uint64_t index) {
  auto type = engine->GetEventType("bus");
  INSIGHT_CHECK(type.ok());
  int64_t location = static_cast<int64_t>(index % num_locations);
  cep::EventBuilder builder(*type);
  builder.Set("timestamp", static_cast<int64_t>(index * 1000))
      .Set("line", static_cast<int64_t>(index % 67))
      .Set("direction", (index & 1) == 0)
      .Set("lon", -6.26 + rng->Gaussian(0.0, 0.01))
      .Set("lat", 53.35 + rng->Gaussian(0.0, 0.01))
      .Set("delay", rng->Gaussian(90.0, 40.0))
      .Set("congestion", rng->Bernoulli(0.2))
      .Set("reported_stop", int64_t{-1})
      .Set("vehicle", static_cast<int64_t>(index % 911))
      .Set("speed", rng->Gaussian(22.0, 6.0))
      .Set("actual_delay", rng->Gaussian(0.0, 5.0))
      .Set("hour", static_cast<int64_t>((index / 500) % 24))
      .Set("date_type", "weekday")
      .Set("area_leaf", location)
      .Set("bus_stop", location);
  return builder.Build();
}

/// Measures the real engine's average per-tuple processing cost for a rule
/// set (microseconds). This is the calibration feeding the latency model and
/// the DES service times — measured, not assumed.
inline double MeasureEngineServiceMicros(
    const std::vector<core::RuleTemplate>& rules, size_t num_locations = 32,
    size_t num_events = 4000, uint64_t seed = 23) {
  LoadedEngine loaded = MakeLoadedEngine(rules, num_locations, 24, seed);
  Rng rng(seed + 1);
  // Warm-up until every per-location group window is full, otherwise the
  // measured cost under-states the steady-state aggregation work (the cost
  // is linear in the *filled* window size, not the declared one).
  size_t max_window = 1;
  for (const core::RuleTemplate& rule : rules) {
    max_window = std::max(max_window, rule.window_length);
  }
  size_t warmup = std::min<size_t>(num_locations * (max_window + 1), 80000);
  for (uint64_t i = 0; i < warmup; ++i) {
    loaded.engine->SendEvent(
        SyntheticBusEvent(loaded.engine.get(), &rng, num_locations, i));
  }
  loaded.engine->ResetStats();
  for (uint64_t i = 0; i < num_events; ++i) {
    loaded.engine->SendEvent(
        SyntheticBusEvent(loaded.engine.get(), &rng, num_locations, i));
  }
  return loaded.engine->GetStats().latency_micros.mean();
}

/// Prints one row of a series table: label then values.
inline void PrintRow(const std::string& label, const std::vector<double>& values,
                     const char* format = "%10.2f") {
  std::printf("%-28s", label.c_str());
  for (double v : values) std::printf(format, v);
  std::printf("\n");
}

inline void PrintHeader(const std::string& label,
                        const std::vector<int>& columns) {
  std::printf("%-28s", label.c_str());
  for (int c : columns) std::printf("%10d", c);
  std::printf("\n");
}

}  // namespace bench
}  // namespace insight

#endif  // INSIGHT_BENCH_BENCH_UTIL_H_
