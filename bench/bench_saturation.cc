// Saturation chaos bench: overload protection under sustained over-offered
// input. A slow sink (fixed sleep per tuple, so the service time is real
// wall time but the core stays free for the producers — the bench must
// measure queueing, not CPU time-slicing, even on a single-core host) is
// fed by two paced spouts — 95% bulk traffic at kLow and 5% critical
// traffic at kHigh — with the offered rate swept across multiples of the
// sink's calibrated capacity.
//
// With credit-based flow control + priority-aware shedding + adaptive batch
// sizing enabled, three properties are gated (nonzero exit on violation):
//
//  1. Bounded critical latency: high-priority p99 at 10x offered load stays
//     within 2x of the 1x p99 (shedding pins queue occupancy at the
//     watermark, so queueing delay is load-independent). The 1x baseline is
//     floored at 200 us to absorb scheduler/timer granularity.
//  2. Zero unaccounted tuples at every load: emitted == executed + shed,
//     and kHigh is never shed.
//  3. Disabled identity: with every overload feature off, a sub-capacity
//     run delivers everything and moves no shed/squelch/stall counter —
//     the seed's behavior exactly.
//
// Usage: bench_saturation [--quick] [out.json]  (default BENCH_saturation.json)
// --quick runs only the 1x and 10x points with shorter phases (CI smoke).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/mutex.h"
#include "dsps/local_runtime.h"
#include "dsps/overload.h"
#include "dsps/topology.h"

namespace insight {
namespace bench {
namespace {

using dsps::Bolt;
using dsps::Collector;
using dsps::Fields;
using dsps::LocalRuntime;
using dsps::Spout;
using dsps::TopologyBuilder;
using dsps::Tuple;
using dsps::TuplePriority;
using dsps::Value;

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Emits at `rate_per_sec` for `duration_micros`, catching up in bursts when
/// behind schedule. Critical spouts stamp the emit time into the tuple so
/// the sink can measure end-to-end latency; bulk spouts stamp -1.
class PacedSpout : public Spout {
 public:
  PacedSpout(double rate_per_sec, int64_t duration_micros, bool stamp_time)
      : rate_per_sec_(rate_per_sec),
        duration_micros_(duration_micros),
        stamp_time_(stamp_time) {}

  bool NextTuple(Collector* collector) override {
    if (start_micros_ == 0) start_micros_ = NowMicros();
    int64_t now = NowMicros();
    if (now - start_micros_ >= duration_micros_) return false;
    int64_t due = static_cast<int64_t>(
        (static_cast<double>(now - start_micros_) / 1e6) * rate_per_sec_);
    if (emitted_ >= due) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      return true;
    }
    // Catch up in a bounded burst so one NextTuple call never monopolizes
    // the executor after a long stall. The cap also smooths the offered
    // rate: an unbounded catch-up burst on top of the shed-watermark
    // standing queue would spike occupancy straight to capacity.
    int64_t burst = std::min<int64_t>(due - emitted_, 64);
    for (int64_t i = 0; i < burst; ++i) {
      collector->Emit({Value(stamp_time_ ? NowMicros() : int64_t{-1})});
      ++emitted_;
    }
    return true;
  }

 private:
  double rate_per_sec_;
  int64_t duration_micros_;
  bool stamp_time_;
  int64_t start_micros_ = 0;
  int64_t emitted_ = 0;
};

/// Burns `service_micros` of wall time per tuple and records the latency of
/// every time-stamped (critical) tuple.
class SlowSink : public Bolt {
 public:
  struct Stats {
    Mutex mutex;
    std::vector<int64_t> critical_latency_micros;
    int64_t executed = 0;
  };
  SlowSink(std::shared_ptr<Stats> stats, int64_t service_micros)
      : stats_(std::move(stats)), service_micros_(service_micros) {}

  void Execute(const Tuple& input, Collector*) override {
    int64_t stamp = input.Get(0).AsInt();
    int64_t arrival = NowMicros();
    // Sleep, don't spin: on a single-core host a busy-spinning sink would
    // starve the spout threads and the measured tail would be scheduler
    // quanta rather than queueing delay.
    std::this_thread::sleep_for(std::chrono::microseconds(service_micros_));
    MutexLock lock(stats_->mutex);
    ++stats_->executed;
    if (stamp >= 0) {
      stats_->critical_latency_micros.push_back(arrival - stamp);
    }
  }

 private:
  std::shared_ptr<Stats> stats_;
  int64_t service_micros_;
};

constexpr int64_t kServiceMicros = 300;

int64_t Percentile(std::vector<int64_t>* values, double p) {
  if (values->empty()) return 0;
  size_t index = static_cast<size_t>(p * static_cast<double>(values->size()));
  if (index >= values->size()) index = values->size() - 1;
  std::nth_element(values->begin(),
                   values->begin() + static_cast<ptrdiff_t>(index),
                   values->end());
  return (*values)[static_cast<ptrdiff_t>(index)];
}

/// Unpaced all-out run: how many tuples/sec one sink task sustains.
double CalibrateCapacity(int64_t duration_micros) {
  auto stats = std::make_shared<SlowSink::Stats>();
  TopologyBuilder builder;
  builder.SetSpout("source", [duration_micros] {
    return std::make_unique<PacedSpout>(1e9, duration_micros, false);
  }, Fields({"t"}));
  builder.SetBolt("sink", [stats] {
    return std::make_unique<SlowSink>(stats, kServiceMicros);
  }, Fields({})).ShuffleGrouping("source");
  auto topology = builder.Build();
  INSIGHT_CHECK(topology.ok()) << topology.status().ToString();

  LocalRuntime::Options options;
  options.queue_capacity = 64;
  options.emit_batch = 4;
  options.max_batch = 4;
  LocalRuntime runtime(std::move(*topology), options);
  INSIGHT_CHECK(runtime.Start().ok());
  int64_t start = NowMicros();
  runtime.AwaitCompletion();
  int64_t elapsed = NowMicros() - start;
  runtime.Stop();
  return static_cast<double>(stats->executed) * 1e6 /
         static_cast<double>(elapsed);
}

struct LoadRow {
  double load_factor = 0;
  uint64_t emitted = 0;
  uint64_t executed = 0;
  uint64_t shed_low = 0;
  uint64_t shed_normal = 0;
  uint64_t shed_high = 0;
  uint64_t critical_emitted = 0;
  uint64_t critical_delivered = 0;
  int64_t critical_p50_micros = 0;
  int64_t critical_p99_micros = 0;
  uint64_t credits_stalled_ns = 0;
  bool accounted = false;
};

LoadRow RunLoad(double capacity_per_sec, double load_factor,
                int64_t duration_micros, bool overload_enabled) {
  auto stats = std::make_shared<SlowSink::Stats>();
  double offered = capacity_per_sec * load_factor;
  double bulk_rate = offered * 0.95;
  double critical_rate = offered * 0.05;
  TopologyBuilder builder;
  builder.SetSpout("bulk", [bulk_rate, duration_micros] {
    return std::make_unique<PacedSpout>(bulk_rate, duration_micros, false);
  }, Fields({"t"}));
  builder.SetSpout("critical", [critical_rate, duration_micros] {
    return std::make_unique<PacedSpout>(critical_rate, duration_micros, true);
  }, Fields({"t"}));
  builder.SetBolt("sink", [stats] {
    return std::make_unique<SlowSink>(stats, kServiceMicros);
  }, Fields({}))
      .ShuffleGrouping("bulk")
      .ShuffleGrouping("critical");
  builder.SetPriority("bulk", TuplePriority::kLow);
  builder.SetPriority("critical", TuplePriority::kHigh);
  auto topology = builder.Build();
  INSIGHT_CHECK(topology.ok()) << topology.status().ToString();

  LocalRuntime::Options options;
  options.queue_capacity = 64;
  options.emit_batch = 4;
  options.max_batch = 4;
  if (overload_enabled) {
    options.overload.enable_credit_flow = true;
    // Small deferral budget: staged-but-unadmitted tuples add latency
    // (backlog / offered rate), so the producer should stall early rather
    // than accumulate a deep outbox.
    options.overload.max_deferred_tuples = 64;
    options.overload.enable_load_shedding = true;
    // Shedding pins queue occupancy near the low watermark whatever the
    // offered load, which is what keeps critical p99 load-independent:
    // the upper half of the queue is headroom only kNormal/kHigh may use.
    options.overload.shed_low_watermark = 0.5;
    options.overload.shed_high_watermark = 0.9;
    options.overload.enable_adaptive_batch = true;
    options.overload.adaptive_batch_max = 32;
  }
  LocalRuntime runtime(std::move(*topology), options);
  INSIGHT_CHECK(runtime.Start().ok());
  runtime.AwaitCompletion();

  LoadRow row;
  row.load_factor = load_factor;
  auto bulk = runtime.metrics()->Totals("bulk");
  auto critical = runtime.metrics()->Totals("critical");
  auto sink = runtime.metrics()->Totals("sink");
  row.emitted = bulk.emitted + critical.emitted;
  row.executed = sink.executed;
  row.shed_low = sink.shed_low;
  row.shed_normal = sink.shed_normal;
  row.shed_high = sink.shed_high;
  row.critical_emitted = critical.emitted;
  row.credits_stalled_ns = runtime.metrics()->credits_stalled_ns();
  {
    MutexLock lock(stats->mutex);
    row.critical_delivered = stats->critical_latency_micros.size();
    row.critical_p50_micros =
        Percentile(&stats->critical_latency_micros, 0.50);
    row.critical_p99_micros =
        Percentile(&stats->critical_latency_micros, 0.99);
  }
  // After AwaitCompletion + natural spout exhaustion nothing is in flight:
  // every emitted tuple was either executed or shed.
  row.accounted =
      row.emitted == row.executed + row.shed_low + row.shed_normal +
                         row.shed_high;
  runtime.Stop();
  return row;
}

int Main(int argc, char** argv) {
  bool quick = false;
  const char* out_path = "BENCH_saturation.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      out_path = argv[i];
    }
  }
  const int64_t calibrate_micros = quick ? 500'000 : 800'000;
  const int64_t phase_micros = quick ? 1'500'000 : 3'000'000;
  std::vector<double> loads =
      quick ? std::vector<double>{1, 10} : std::vector<double>{1, 2, 5, 10};

  double capacity = CalibrateCapacity(calibrate_micros);
  std::printf("calibrated sink capacity: %.0f tuples/sec "
              "(%lld us service)\n\n",
              capacity, static_cast<long long>(kServiceMicros));

  std::printf("%6s %10s %10s %10s %10s %10s %12s %12s %10s\n", "load",
              "emitted", "executed", "shed_low", "shed_norm", "shed_high",
              "crit p50us", "crit p99us", "stall_ms");
  std::vector<LoadRow> rows;
  bool ok = true;
  for (double load : loads) {
    LoadRow row = RunLoad(capacity, load, phase_micros, true);
    rows.push_back(row);
    std::printf("%5.0fx %10llu %10llu %10llu %10llu %10llu %12lld %12lld "
                "%10.1f\n",
                row.load_factor,
                static_cast<unsigned long long>(row.emitted),
                static_cast<unsigned long long>(row.executed),
                static_cast<unsigned long long>(row.shed_low),
                static_cast<unsigned long long>(row.shed_normal),
                static_cast<unsigned long long>(row.shed_high),
                static_cast<long long>(row.critical_p50_micros),
                static_cast<long long>(row.critical_p99_micros),
                static_cast<double>(row.credits_stalled_ns) / 1e6);
    if (!row.accounted) {
      std::printf("GATE FAIL: %llu tuples unaccounted at %.0fx\n",
                  static_cast<unsigned long long>(
                      row.emitted - row.executed - row.shed_low -
                      row.shed_normal - row.shed_high),
                  row.load_factor);
      ok = false;
    }
    if (row.shed_high != 0) {
      std::printf("GATE FAIL: %llu kHigh tuples shed at %.0fx\n",
                  static_cast<unsigned long long>(row.shed_high),
                  row.load_factor);
      ok = false;
    }
    if (row.critical_delivered != row.critical_emitted) {
      std::printf("GATE FAIL: critical delivered %llu != emitted %llu at "
                  "%.0fx\n",
                  static_cast<unsigned long long>(row.critical_delivered),
                  static_cast<unsigned long long>(row.critical_emitted),
                  row.load_factor);
      ok = false;
    }
  }

  // Gate 1: p99 at the highest load vs the 1x baseline (floored).
  int64_t p99_base = std::max<int64_t>(rows.front().critical_p99_micros, 200);
  int64_t p99_top = rows.back().critical_p99_micros;
  std::printf("\ncritical p99: 1x=%lld us, %0.fx=%lld us (gate: <= 2x "
              "baseline, baseline floored at 200 us)\n",
              static_cast<long long>(rows.front().critical_p99_micros),
              rows.back().load_factor, static_cast<long long>(p99_top));
  if (p99_top > 2 * p99_base) {
    std::printf("GATE FAIL: high-priority p99 at %.0fx (%lld us) exceeds 2x "
                "the 1x baseline (%lld us)\n",
                rows.back().load_factor, static_cast<long long>(p99_top),
                static_cast<long long>(p99_base));
    ok = false;
  }

  // Gate 3: all features off at sub-capacity load == seed behavior.
  LoadRow disabled = RunLoad(capacity, 0.5, phase_micros / 2, false);
  std::printf("\ndisabled 0.5x: emitted=%llu executed=%llu shed=%llu "
              "stall_ns=%llu\n",
              static_cast<unsigned long long>(disabled.emitted),
              static_cast<unsigned long long>(disabled.executed),
              static_cast<unsigned long long>(
                  disabled.shed_low + disabled.shed_normal +
                  disabled.shed_high),
              static_cast<unsigned long long>(disabled.credits_stalled_ns));
  if (disabled.emitted != disabled.executed ||
      disabled.shed_low + disabled.shed_normal + disabled.shed_high != 0 ||
      disabled.credits_stalled_ns != 0) {
    std::printf("GATE FAIL: disabled overload protection is not "
                "seed-identical\n");
    ok = false;
  }

  std::FILE* f = std::fopen(out_path, "w");
  INSIGHT_CHECK(f != nullptr) << "cannot write " << out_path;
  std::fprintf(f, "{\n  \"capacity_tuples_per_sec\": %.1f,\n", capacity);
  std::fprintf(f, "  \"service_micros\": %lld,\n",
               static_cast<long long>(kServiceMicros));
  std::fprintf(f, "  \"loads\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const LoadRow& row = rows[i];
    std::fprintf(
        f,
        "    {\"load_factor\": %.0f, \"emitted\": %llu, \"executed\": %llu, "
        "\"shed_low\": %llu, \"shed_normal\": %llu, \"shed_high\": %llu, "
        "\"critical_p50_micros\": %lld, \"critical_p99_micros\": %lld, "
        "\"credits_stalled_ns\": %llu, \"accounted\": %s}%s\n",
        row.load_factor, static_cast<unsigned long long>(row.emitted),
        static_cast<unsigned long long>(row.executed),
        static_cast<unsigned long long>(row.shed_low),
        static_cast<unsigned long long>(row.shed_normal),
        static_cast<unsigned long long>(row.shed_high),
        static_cast<long long>(row.critical_p50_micros),
        static_cast<long long>(row.critical_p99_micros),
        static_cast<unsigned long long>(row.credits_stalled_ns),
        row.accounted ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"p99_gate\": {\"baseline_micros\": %lld, "
               "\"top_micros\": %lld, \"pass\": %s},\n",
               static_cast<long long>(p99_base),
               static_cast<long long>(p99_top),
               p99_top <= 2 * p99_base ? "true" : "false");
  std::fprintf(f, "  \"disabled_identity\": %s\n}\n",
               disabled.emitted == disabled.executed ? "true" : "false");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path);
  if (!ok) {
    std::printf("\nSATURATION GATES FAILED\n");
    return 1;
  }
  std::printf("\nall saturation gates passed\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace insight

int main(int argc, char** argv) { return insight::bench::Main(argc, argv); }
