// Ablation: quadtree split capacity vs the granularity of the spatial
// partitioning (Section 4.1.1 leaves the capacity as a free parameter).
// Smaller capacities mean more, finer regions: Algorithm 1 balances better
// (more divisible load) but rules monitor more locations and the threshold
// tables grow. This bench quantifies both sides plus raw Locate()
// performance.

#include <chrono>
#include <cstdio>

#include "common/rng.h"
#include "core/partitioning.h"
#include "geo/quadtree.h"
#include "traffic/generator.h"

namespace insight {
namespace bench {
namespace {

struct CapacityResult {
  size_t leaves = 0;
  int max_layer = 0;
  double imbalance = 0.0;         // Algorithm 1 over 6 engines
  double locate_ns = 0.0;         // per LocateLeaf call
  size_t occupied_regions = 0;    // regions that actually saw traffic
};

CapacityResult Evaluate(size_t capacity,
                        const std::vector<traffic::BusTrace>& traces) {
  geo::RegionQuadtree::Options options;
  options.capacity = capacity;
  auto tree = geo::BuildDublinQuadtree(33, 800, options);
  CapacityResult result;
  result.leaves = tree.Leaves().size();
  result.max_layer = tree.max_layer();

  // Region rates from real traffic.
  std::map<int64_t, double> counts;
  auto start = std::chrono::steady_clock::now();
  for (const auto& trace : traces) {
    geo::RegionId leaf = tree.LocateLeaf(trace.position);
    if (leaf >= 0) counts[leaf] += 1.0;
  }
  auto end = std::chrono::steady_clock::now();
  result.locate_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count() /
      static_cast<double>(traces.size());
  result.occupied_regions = counts.size();

  std::vector<core::RegionRate> rates;
  for (const auto& [region, rate] : counts) rates.push_back({region, rate});
  auto assignment = core::PartitionRegions(rates, 6);
  if (assignment.ok()) {
    auto engine_rates = core::EngineRates(*assignment, rates);
    double total = 0, max_rate = 0;
    for (double r : engine_rates) {
      total += r;
      max_rate = std::max(max_rate, r);
    }
    result.imbalance = max_rate / (total / 6.0);
  }
  return result;
}

}  // namespace
}  // namespace bench
}  // namespace insight

int main() {
  using namespace insight::bench;
  std::printf(
      "Ablation: quadtree split capacity vs partition granularity\n"
      "(800 road seeds; rates from 40k synthetic traces; Algorithm 1 over 6 "
      "engines)\n\n");

  insight::traffic::TraceGenerator::Options options;
  options.num_buses = 200;
  options.num_lines = 25;
  options.start_hour = 8;
  options.end_hour = 11;
  options.seed = 44;
  insight::traffic::TraceGenerator generator(options);
  auto traces = generator.GenerateAll(40000);

  std::printf("%10s %8s %10s %10s %12s %12s\n", "capacity", "leaves",
              "max_layer", "occupied", "imbalance", "locate_ns");
  for (size_t capacity : {2u, 4u, 8u, 16u, 32u, 64u}) {
    auto result = Evaluate(capacity, traces);
    std::printf("%10zu %8zu %10d %10zu %12.3f %12.0f\n", capacity,
                result.leaves, result.max_layer, result.occupied_regions,
                result.imbalance, result.locate_ns);
  }
  std::printf(
      "\nexpected: finer trees (small capacity) give near-perfect balance at "
      "the cost of\nmore regions (bigger threshold tables, deeper lookups); "
      "coarse trees leave one\nhot region per engine and the imbalance "
      "grows.\n");
  return 0;
}
