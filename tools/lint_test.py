#!/usr/bin/env python3
"""Unit tests for tools/lint.py (wired into ctest as `lint_selftest`).

Covers the comment/string stripper's edge cases — the part of the linter
where a parsing bug silently turns into missed findings — and the rule
logic (raw-mutex, raw-thread, nolint-reason) over in-memory fixtures
written to a temporary tree.

Run from the repository root:  python3 tools/lint_test.py
"""

import os
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import lint  # noqa: E402


class StripCommentsTest(unittest.TestCase):
    def test_line_comment_removed(self):
        self.assertEqual(lint.strip_comments("int x; // std::mutex\n"),
                         "int x; \n")

    def test_block_comment_removed_inline(self):
        self.assertEqual(lint.strip_comments("a /* std::mutex */ b"),
                         "a  b")

    def test_block_comment_preserves_line_count(self):
        text = "a\n/* one\ntwo\nthree */\nb\n"
        stripped = lint.strip_comments(text)
        self.assertEqual(stripped.count("\n"), text.count("\n"))
        self.assertNotIn("two", stripped)

    def test_nested_block_comment_opener_is_inert(self):
        # C block comments do not nest: the inner `/*` is plain comment
        # text and the first `*/` closes the comment.
        text = "a /* outer /* inner */ b"
        self.assertEqual(lint.strip_comments(text), "a  b")

    def test_string_literal_containing_line_comment(self):
        # `//` inside a string is data, not a comment: code after the
        # string must survive.
        text = 'url = "http://x"; std::mutex m;\n'
        stripped = lint.strip_comments(text)
        self.assertIn("std::mutex", stripped)

    def test_string_literal_containing_block_opener(self):
        text = 'glob = "/*"; std::mutex m;\n'
        self.assertIn("std::mutex", lint.strip_comments(text))

    def test_escaped_quote_does_not_close_string(self):
        text = 's = "a\\"b // not a comment"; int y;\n'
        self.assertIn("int y;", lint.strip_comments(text))

    def test_char_literal_with_quote(self):
        text = "c = '\\\"'; // tail\nnext\n"
        stripped = lint.strip_comments(text)
        self.assertNotIn("tail", stripped)
        self.assertIn("next", stripped)

    def test_comment_marker_inside_comment(self):
        self.assertEqual(lint.strip_comments("x; // a // b\n"), "x; \n")


class LintRulesTest(unittest.TestCase):
    """Runs lint_file over fixtures written to a temp tree laid out like
    the repository (the exemption rules key off directory prefixes)."""

    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self._old_cwd = os.getcwd()
        os.chdir(self._tmp.name)

    def tearDown(self):
        os.chdir(self._old_cwd)
        self._tmp.cleanup()

    def _lint(self, relpath, text):
        path = Path(relpath)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        return lint.lint_file(path)

    def _rules(self, findings):
        return [rule for _, _, rule, _ in findings]

    def test_raw_mutex_flagged_outside_common(self):
        findings = self._lint("src/dsps/foo.cc", "std::mutex m;\n")
        self.assertEqual(self._rules(findings), ["raw-mutex"])

    def test_raw_mutex_allowed_in_common(self):
        findings = self._lint("src/common/foo.h", "std::mutex m;\n")
        self.assertEqual(findings, [])

    def test_raw_mutex_in_comment_ignored(self):
        findings = self._lint("src/dsps/foo.cc", "// std::mutex docs\n")
        self.assertEqual(findings, [])

    def test_raw_thread_flagged_outside_sanctioned_dirs(self):
        findings = self._lint("tests/foo_test.cc", "std::thread t(f);\n")
        self.assertEqual(self._rules(findings), ["raw-thread"])

    def test_pthread_create_flagged(self):
        findings = self._lint("src/net/foo.cc",
                              "pthread_create(&t, 0, f, 0);\n")
        self.assertEqual(self._rules(findings), ["raw-thread"])

    def test_raw_thread_allowed_in_common_and_dist(self):
        for rel in ("src/common/thread.h", "src/dist/worker.cc"):
            self.assertEqual(self._lint(rel, "std::thread t(f);\n"), [])

    def test_thread_id_not_flagged(self):
        # std::thread::id is a value type, not a spawn site.
        findings = self._lint("tests/foo_test.cc",
                              "std::thread::id id = t.get_id();\n")
        self.assertEqual(findings, [])

    def test_this_thread_not_flagged(self):
        findings = self._lint(
            "tests/foo_test.cc",
            "std::this_thread::sleep_for(std::chrono::seconds(1));\n")
        self.assertEqual(findings, [])

    def test_raw_thread_nolint_with_reason_accepted(self):
        findings = self._lint(
            "tests/foo_test.cc",
            "std::thread t(f);  // NOLINT(raw-thread): exercising the "
            "wrapper itself\n")
        self.assertEqual(findings, [])

    def test_raw_thread_nolintnextline_accepted(self):
        findings = self._lint(
            "tests/foo_test.cc",
            "// NOLINTNEXTLINE(raw-thread): spawn API under test\n"
            "std::thread t(f);\n")
        self.assertEqual(findings, [])

    def test_nolint_without_reason_flagged(self):
        findings = self._lint("src/dsps/foo.cc", "int x;  // NOLINT\n")
        self.assertEqual(self._rules(findings), ["nolint-reason"])

    def test_nolint_category_without_reason_flagged(self):
        findings = self._lint("src/dsps/foo.cc",
                              "int x;  // NOLINT(raw-mutex):\n")
        self.assertEqual(self._rules(findings), ["nolint-reason"])

    def test_nolint_with_category_and_reason_clean(self):
        findings = self._lint(
            "src/dsps/foo.cc",
            "int x;  // NOLINT(some-check): required by the framework\n")
        self.assertEqual(findings, [])

    def test_bare_nolint_does_not_suppress_raw_mutex(self):
        # A reasonless NOLINT earns its own finding AND leaves the
        # primitive finding in place.
        findings = self._lint("src/dsps/foo.cc",
                              "std::mutex m;  // NOLINT\n")
        self.assertEqual(sorted(self._rules(findings)),
                         ["nolint-reason", "raw-mutex"])


if __name__ == "__main__":
    unittest.main()
