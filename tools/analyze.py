#!/usr/bin/env python3
"""Semantic invariant analyzer: annotation-driven call-graph checks.

Verifies the whole-call-graph properties declared with the macros in
src/common/static_analysis.h (see that header and DESIGN.md "Static
analysis" for the vocabulary):

  no-alloc       TMS_NO_ALLOC functions — and every intra-project function
                 reachable from them — must not allocate: no new/malloc, no
                 growing-container call, no string construction.
  non-blocking   TMS_NON_BLOCKING functions must not reach a sleep, a
                 CondVar wait, a thread join, blocking file I/O,
                 poll/select, or the acquisition of an unranked mutex.
  lock-rank      Mutexes declare TMS_LOCK_RANK(n); every acquisition path
                 must take ranks in strictly increasing order, and every
                 Mutex declared in the concurrency-bearing directories
                 (src/{dsps,reliability,cep,dist,observability,net}) must
                 be ranked.
  exempt-reason  Every TMS_ANALYZE_EXEMPT must carry a non-empty reason.

Deliberate violations are suppressed with an audit trail, either on the
offending line or (for long reasons) on the line above:

    ptr = new Block;  // TMS_ANALYZE_EXEMPT(warm-up only: freelist reuse)

Findings print as `file:line: rule: message` (or GitHub annotations with
--github) and the exit status is nonzero if any rule fires — the analyze
CI job gates on this, and `--self-test` proves each rule still fires on
the known-bad fixtures under tools/testdata/.

Frontends: the analyzer is frontend-pluggable. The default text frontend
is a dependency-free heuristic C++ parser that runs anywhere python3
runs; when the libclang python bindings are importable (CI installs
python3-clang) `--frontend=clang` parses the real AST using the compile
commands from the build directory. Both feed the same rule engine.

Run from the repository root:  python3 tools/analyze.py
"""

import argparse
import glob
import json
import os
import re
import sys
from pathlib import Path

# --- Policy tables -------------------------------------------------------

# Directories scanned in a default repo run.
SCAN_DIRS = ("src",)

# Every Mutex declared under these prefixes must carry TMS_LOCK_RANK.
RANK_REQUIRED_PREFIXES = (
    "src/dsps", "src/reliability", "src/cep", "src/dist",
    "src/observability", "src/net", "tools/testdata",
)

# Callees that allocate. `new` expressions are detected as tokens; these
# are matched against the unqualified callee name.
ALLOC_CALLEES = {
    "malloc", "calloc", "realloc", "strdup", "aligned_alloc",
    "make_shared", "make_unique", "allocate_shared", "make_pair_heap",
    "push_back", "emplace_back", "emplace", "emplace_front", "insert",
    "resize", "reserve", "assign", "append", "to_string", "substr",
    "try_emplace", "operator new",
}
# Types whose construction allocates (matched on `Type name(...)` /
# `Type name{...}` declarations and explicit temporaries).
ALLOC_TYPES = {
    "string", "vector", "deque", "map", "unordered_map", "set",
    "unordered_set", "ostringstream", "stringstream", "list",
}

# Callees that block.
BLOCKING_CALLEES = {
    "sleep_for", "sleep_until", "sleep", "usleep", "nanosleep",
    "Wait", "WaitFor", "join", "poll", "ppoll", "select", "epoll_wait",
    "system", "fsync", "fdatasync", "flock", "waitpid", "getline",
    "fopen", "fread", "fwrite", "fclose",
}
# Types whose construction performs blocking file I/O.
BLOCKING_TYPES = {"ifstream", "ofstream", "fstream"}

CPP_KEYWORDS = {
    "if", "for", "while", "switch", "return", "catch", "do", "else",
    "sizeof", "alignof", "decltype", "static_cast", "dynamic_cast",
    "const_cast", "reinterpret_cast", "new", "delete", "throw", "case",
    "default", "break", "continue", "goto", "using", "typedef", "typename",
    "template", "static_assert", "noexcept", "alignas", "co_await",
    "co_return", "co_yield", "and", "or", "not", "assert",
}

# Annotation-like macros that trail a declarator; never a function name,
# and (for the TMS_* ones) meaningful to this analyzer.
DECL_MACROS = {
    "REQUIRES", "ACQUIRE", "RELEASE", "TRY_ACQUIRE", "EXCLUDES",
    "GUARDED_BY", "PT_GUARDED_BY", "ACQUIRED_AFTER", "ACQUIRED_BEFORE",
    "ASSERT_CAPABILITY", "RETURN_CAPABILITY", "NO_THREAD_SAFETY_ANALYSIS",
    "CAPABILITY", "SCOPED_CAPABILITY", "TMS_NO_ALLOC", "TMS_NON_BLOCKING",
    "TMS_ANALYZE_EXEMPT", "TMS_LOCK_RANK", "override", "final", "const",
    "noexcept", "mutable", "constexpr", "inline", "explicit", "static",
    "virtual", "friend", "__attribute__",
}

# Namespace-ish qualifiers ignored when hunting the "real" type name in a
# declaration (`std::unique_ptr<TaskQueue> input` -> TaskQueue).
TYPE_WRAPPERS = {
    "std", "unique_ptr", "shared_ptr", "vector", "deque", "map",
    "unordered_map", "optional", "const", "mutable", "insight", "dsps",
    "cep", "net", "dist", "reliability", "observability", "detail",
}


# --- Shared model --------------------------------------------------------

class Event:
    """One interesting site inside a function body, in source order."""

    __slots__ = ("kind", "what", "line", "depth", "extra")

    def __init__(self, kind, what, line, depth, extra=None):
        self.kind = kind    # acq | rel | call | alloc | block
        self.what = what    # callee name / mutex expression / op
        self.line = line
        self.depth = depth
        self.extra = extra  # receiver for calls, var name for acq/rel

    def __repr__(self):
        return f"Event({self.kind},{self.what},l{self.line})"


class FuncInfo:
    def __init__(self, qual, file, line):
        self.qual = qual          # tuple of scope components
        self.file = file
        self.line = line
        self.annotations = set()  # {"no_alloc", "non_blocking", "exempt"}
        self.events = []          # [Event]
        self.local_types = {}     # var name -> type name

    @property
    def name(self):
        return self.qual[-1]

    @property
    def display(self):
        return "::".join(self.qual)


class MutexDecl:
    def __init__(self, scope, name, rank, file, line):
        self.scope = scope  # tuple of enclosing scope components
        self.name = name
        self.rank = rank    # int or None
        self.file = file
        self.line = line


class Program:
    """Cross-TU model shared by every frontend."""

    def __init__(self):
        self.functions = []       # [FuncInfo] definitions
        self.decl_annotations = {}  # (class-or-(), name) -> set of annos
        self.mutexes = []         # [MutexDecl]
        self.member_types = {}    # (scope tuple) -> {member: type name}
        self.exempt_lines = {}    # file -> set of line numbers
        self.exempt_bare = []     # [(file, line)] markers missing a reason

    # -- indexes built after parsing --

    def finalize(self):
        self.by_name = {}
        self.by_suffix2 = {}
        for f in self.functions:
            self.by_name.setdefault(f.name, []).append(f)
            if len(f.qual) >= 2:
                self.by_suffix2.setdefault(f.qual[-2:], []).append(f)
        # Annotations recorded on declarations (headers) attach to the
        # matching definition, wherever it lives.
        for (scope_name, name), annos in self.decl_annotations.items():
            target = None
            if scope_name:
                cands = self.by_suffix2.get((scope_name, name), [])
                if len(cands) == 1:
                    target = cands[0]
            if target is None:
                cands = self.by_name.get(name, [])
                if len(cands) == 1:
                    target = cands[0]
            if target is not None:
                target.annotations |= annos
        self.mutex_by_scope = {}
        self.mutex_by_name = {}
        for m in self.mutexes:
            key = (m.scope[-1] if m.scope else "", m.name)
            self.mutex_by_scope[key] = m
            self.mutex_by_name.setdefault(m.name, []).append(m)

    def resolve_call(self, func, event):
        """Best-effort: map a call site to an intra-project definition."""
        callee = event.what
        if "::" in callee:
            parts = tuple(callee.split("::"))
            if parts[0] == "std":
                return None
            cands = self.by_suffix2.get(parts[-2:], [])
            if len(cands) == 1:
                return cands[0]
            cands = self.by_name.get(parts[-1], [])
            return cands[0] if len(cands) == 1 else None
        receiver = event.extra
        if receiver:
            rtype = self._type_of(func, receiver)
            if rtype:
                cands = self.by_suffix2.get((rtype, callee), [])
                if len(cands) == 1:
                    return cands[0]
        # A plain call: prefer a method of the enclosing class.
        if len(func.qual) >= 2:
            cands = self.by_suffix2.get((func.qual[-2], callee), [])
            if len(cands) == 1:
                return cands[0]
        cands = self.by_name.get(callee, [])
        return cands[0] if len(cands) == 1 else None

    def _type_of(self, func, var):
        if var in func.local_types:
            return func.local_types[var]
        for i in range(len(func.qual) - 1, 0, -1):
            members = self.member_types.get(tuple(func.qual[:i]))
            if members and var in members:
                return members[var]
        # Unique member name anywhere in the project.
        owners = [
            t[var] for t in self.member_types.values() if var in t
        ]
        if len(set(owners)) == 1 and owners:
            return owners[0]
        return None

    def resolve_mutex(self, func, expr):
        """Maps a mutex expression ('mu_', 'queue->mutex') to its rank.

        Returns (display name, rank, known): rank None with known=True
        means "definitely unranked"; known=False means the mutex could not
        be resolved and ordering checks are skipped for it.
        """
        parts = [p for p in re.split(r"->|\.|::", expr) if p]
        if not parts:
            return (expr, None, False)
        member = parts[-1]
        if len(parts) >= 2:
            rtype = self._type_of(func, parts[-2])
            if rtype:
                m = self.mutex_by_scope.get((rtype, member))
                if m is not None:
                    return (f"{rtype}::{member}", m.rank, True)
        else:
            for i in range(len(func.qual) - 1, 0, -1):
                m = self.mutex_by_scope.get((func.qual[i - 1], member))
                if m is not None:
                    return (f"{func.qual[i - 1]}::{member}", m.rank, True)
        cands = self.mutex_by_name.get(member, [])
        if not cands:
            return (member, None, False)
        ranks = {m.rank for m in cands}
        if len(ranks) == 1:
            return (member, ranks.pop(), True)
        return (member, None, False)


# --- Text frontend -------------------------------------------------------

TOKEN_RE = re.compile(
    r"[A-Za-z_][A-Za-z0-9_]*|::|->|\d[\dxXa-fA-F.'uUlLfF]*|[{}();:,<>=&*.~!+\-/%\[\]|^?]"
)

EXEMPT_MARKER_RE = re.compile(r"TMS_ANALYZE_EXEMPT\(([^)]*)\)", re.S)


def strip_comments(text):
    """Blanks // and block comments and string literals, preserving line
    structure (same contract as tools/lint.py strip_comments)."""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        if state == "code":
            if c == "/" and i + 1 < n and text[i + 1] == "/":
                state = "line"
                i += 2
                continue
            if c == "/" and i + 1 < n and text[i + 1] == "*":
                state = "block"
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
        elif state == "block":
            if c == "*" and i + 1 < n and text[i + 1] == "/":
                state = "code"
                i += 1
            elif c == "\n":
                out.append(c)
        else:  # str | chr
            quote = '"' if state == "str" else "'"
            if c == "\\":
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif c == "\n":
                state = "code"
                out.append(c)
        i += 1
    return "".join(out)


def tokenize(code):
    """[(token, line)] with preprocessor lines skipped."""
    tokens = []
    for lineno, line in enumerate(code.splitlines(), start=1):
        if line.lstrip().startswith("#"):
            continue
        for match in TOKEN_RE.finditer(line):
            tokens.append((match.group(0), lineno))
    return tokens


class TextFrontend:
    """Heuristic single-pass C++ parser. It does not type-check; it
    recognizes the shapes this codebase actually uses (see DESIGN.md) and
    resolves names through scope context plus declared member/local types.
    Anything it cannot resolve degrades to "skip", never to a false
    finding on unrelated code."""

    def __init__(self):
        self.program = Program()

    def parse_files(self, paths):
        for path in paths:
            try:
                text = Path(path).read_text(encoding="utf-8",
                                            errors="replace")
            except OSError as err:
                print(f"analyze.py: cannot read {path}: {err}",
                      file=sys.stderr)
                continue
            self._scan_exempt_markers(path, text)
            self._parse(path, tokenize(strip_comments(text)))
        self.program.finalize()
        return self.program

    def _scan_exempt_markers(self, path, text):
        """Records TMS_ANALYZE_EXEMPT markers. A marker exempts every line
        it spans (comment reasons may wrap across lines); a marker whose
        comment carries no code also exempts the line that follows it."""
        lines = set()
        bare = []
        for match in EXEMPT_MARKER_RE.finditer(text):
            start_line = text.count("\n", 0, match.start()) + 1
            end_line = text.count("\n", 0, match.end()) + 1
            reason = re.sub(r"^\s*(?://|\*)+", "", match.group(1),
                            flags=re.M)
            reason = reason.replace('"', " ").strip()
            if not reason:
                bare.append((path, start_line))
                continue
            lines.update(range(start_line, end_line + 1))
            bol = text.rfind("\n", 0, match.start()) + 1
            head = text[bol:match.start()]
            tail = text[match.end():].split("\n", 1)[0]
            if "//" in head and not head.split("//")[0].strip() \
                    and not tail.strip():
                # Marker comment with no code on its own lines: it
                # documents — and exempts — the line right below it.
                lines.add(end_line + 1)
        if lines:
            self.program.exempt_lines.setdefault(path, set()).update(lines)
        self.program.exempt_bare.extend(bare)

    # -- parsing machinery --

    def _parse(self, path, tokens):
        scopes = []  # ("ns"|"class"|"func"|"block"|"skip", name|FuncInfo)
        pending = []  # [(tok, line)] since last ; { }
        i, n = 0, len(tokens)
        func = None          # innermost FuncInfo, if any
        func_depth = 0       # brace depth inside that function
        raii_locks = []      # [(depth, expr)] active MutexLock scopes

        def class_scope():
            return tuple(
                name for kind, name in scopes if kind in ("ns", "class"))

        def enter_body(kind, name):
            scopes.append((kind, name))

        while i < n:
            tok, line = tokens[i]

            if func is not None:
                # ---- inside a function body ----
                if tok == "{":
                    func_depth += 1
                elif tok == "}":
                    func_depth -= 1
                    while raii_locks and raii_locks[-1][0] > func_depth:
                        _, expr = raii_locks.pop()
                        func.events.append(
                            Event("rel", expr, line, func_depth))
                    if func_depth == 0:
                        scopes.pop()
                        func = self._enclosing_func(scopes)
                        if func is None:
                            pending = []
                else:
                    i = self._body_token(path, tokens, i, func, func_depth,
                                         raii_locks)
                i += 1
                continue

            # ---- at namespace/class scope ----
            if tok == ";":
                self._flush_decl(path, pending, class_scope())
                pending = []
            elif tok == "{":
                kind = self._classify_block(pending)
                if kind == "ns":
                    name = pending[-1][0] if pending and \
                        pending[-1][0] != "namespace" else ""
                    enter_body("ns", name)
                elif kind == "class":
                    enter_body("class", self._class_name(pending))
                elif kind == "func":
                    info = self._begin_function(path, pending,
                                                class_scope())
                    enter_body("func", info)
                    func = info
                    func_depth = 1
                    raii_locks = []
                elif kind == "init":
                    # Brace initializer in a declaration (e.g. a member
                    # `Mutex mu_{TMS_LOCK_RANK(5)};`): swallow to the
                    # matching `}`, keeping the tokens — _flush_decl reads
                    # TMS_LOCK_RANK out of them at the terminating `;`.
                    pending.append((tok, line))
                    depth = 1
                    while i + 1 < n and depth > 0:
                        i += 1
                        pending.append(tokens[i])
                        if tokens[i][0] == "{":
                            depth += 1
                        elif tokens[i][0] == "}":
                            depth -= 1
                else:
                    enter_body("block", "")
                if kind not in ("init",):
                    pending = []
            elif tok == "}":
                if scopes:
                    scopes.pop()
                pending = []
            elif tok == ":" and len(pending) == 1 and \
                    pending[0][0] in ("public", "private", "protected"):
                pending = []  # access specifier
            else:
                pending.append((tok, line))
            i += 1

    @staticmethod
    def _enclosing_func(scopes):
        for kind, name in reversed(scopes):
            if kind == "func":
                return name
        return None

    @staticmethod
    def _strip_template(toks):
        """Drops a leading `template <...>` prelude."""
        if not toks or toks[0] != "template":
            return toks
        depth = 0
        for i, t in enumerate(toks):
            if t == "<":
                depth += 1
            elif t == ">":
                depth -= 1
                if depth == 0:
                    return toks[i + 1:]
        return toks

    @staticmethod
    def _classify_block(pending):
        toks = TextFrontend._strip_template([t for t, _ in pending])
        if not toks:
            return "block"
        if "namespace" in toks:
            return "ns"
        if toks[0] in ("enum",):
            return "block"
        # `= {` / `{...}` member initializers and array initializers.
        if "=" in toks and toks[-1] == "=":
            return "init"
        # A class head, possibly with attribute macros: `class
        # CAPABILITY("mutex") Mutex`, `class SCOPED_CAPABILITY MutexLock`.
        if toks[0] in ("class", "struct", "union"):
            return "class"
        if ("class" in toks or "struct" in toks) and "(" not in toks:
            return "class"
        # A function definition has a parameter list at depth 0 before the
        # opening brace.
        depth = 0
        saw_params = False
        for t in toks:
            if t == "(":
                depth += 1
                saw_params = True
            elif t == ")":
                depth -= 1
        if saw_params and depth == 0 and toks[0] not in CPP_KEYWORDS \
                and toks[0] not in ("class", "struct", "union", "enum"):
            return "func"
        # Member brace-initializer without `=` (Mutex mu_{...};).
        if saw_params or toks[-1] not in ("{",):
            return "init"
        return "block"

    @staticmethod
    def _class_name(pending):
        toks = TextFrontend._strip_template([t for t, _ in pending])
        name = ""
        for marker in ("class", "struct", "union"):
            if marker in toks:
                idx = toks.index(marker)
                for t in toks[idx + 1:]:
                    if t == ":":
                        break  # base clause: the name came before it
                    if re.match(r"[A-Za-z_]", t) and t not in (
                            "final", "public", "private", "protected",
                            "virtual") and t not in DECL_MACROS:
                        name = t  # attribute macros precede the real name
                return name
        return name

    def _begin_function(self, path, pending, scope):
        """Identify the function name + parameters + annotations from the
        declarator tokens preceding `{`."""
        toks = pending
        name = None
        name_idx = None
        depth = 0
        j = 0
        while j < len(toks):
            t, _ = toks[j]
            if t == "(":
                depth += 1
                if depth == 1 and name is None and j > 0:
                    cand, cline = toks[j - 1]
                    if (re.match(r"[A-Za-z_~]", cand)
                            and cand not in CPP_KEYWORDS
                            and cand not in DECL_MACROS):
                        # Qualified name: walk back over `A::B::`.
                        parts = [cand]
                        k = j - 2
                        while k >= 1 and toks[k][0] == "::":
                            parts.append(toks[k - 1][0])
                            k -= 2
                        parts.reverse()
                        name = tuple(parts)
                        name_idx = j
            elif t == ")":
                depth -= 1
            j += 1
        line = toks[0][1] if toks else 0
        if name is None:
            info = FuncInfo(scope + ("<anon>",), path, line)
            return info
        qual = scope + name if len(name) > 1 or not scope else scope + name
        info = FuncInfo(qual, path, toks[name_idx - 1][1])
        # Annotations anywhere in the declarator.
        tokset = {t for t, _ in toks}
        if "TMS_NO_ALLOC" in tokset:
            info.annotations.add("no_alloc")
        if "TMS_NON_BLOCKING" in tokset:
            info.annotations.add("non_blocking")
        if "TMS_ANALYZE_EXEMPT" in tokset:
            info.annotations.add("exempt")
        # Parameter types: `Type[&*] name` pairs inside the param list.
        self._parse_param_types(toks, name_idx, info)
        self.program.functions.append(info)
        return info

    @staticmethod
    def _parse_param_types(toks, open_idx, info):
        depth = 0
        j = open_idx
        param = []
        while j < len(toks):
            t, _ = toks[j]
            if t == "(":
                depth += 1
                if depth == 1:
                    j += 1
                    continue
            elif t == ")":
                depth -= 1
                if depth == 0:
                    TextFrontend._record_param(param, info)
                    break
            if depth >= 1:
                if t == "," and depth == 1:
                    TextFrontend._record_param(param, info)
                    param = []
                else:
                    param.append(t)
            j += 1

    @staticmethod
    def _record_param(param, info):
        idents = [t for t in param if re.match(r"[A-Za-z_]", t)
                  and t not in ("const", "struct")]
        if len(idents) >= 2:
            type_cands = [t for t in idents[:-1]
                          if t not in TYPE_WRAPPERS]
            if type_cands:
                info.local_types[idents[-1]] = type_cands[-1]

    def _flush_decl(self, path, pending, scope):
        """A `;`-terminated declaration at namespace/class scope: mutex
        members, typed members, and annotated function declarations."""
        toks = [t for t, _ in pending]
        if not toks:
            return
        # Mutex member: [mutable] [insight::]Mutex name [{TMS_LOCK_RANK(n)}]
        if "Mutex" in toks and "(" not in toks[:toks.index("Mutex")]:
            idx = toks.index("Mutex")
            rest = toks[idx + 1:]
            if rest and re.match(r"[A-Za-z_]", rest[0]):
                name = rest[0]
                rank = None
                joined = "".join(rest)
                m = re.search(r"TMS_LOCK_RANK\((\d+)\)", joined)
                if m:
                    rank = int(m.group(1))
                line = pending[idx][1]
                self.program.mutexes.append(
                    MutexDecl(scope, name, rank, path, line))
                return
        # Function declaration with annotations (definition elsewhere).
        if "(" in toks and (")" in toks):
            annos = set()
            if "TMS_NO_ALLOC" in toks:
                annos.add("no_alloc")
            if "TMS_NON_BLOCKING" in toks:
                annos.add("non_blocking")
            if "TMS_ANALYZE_EXEMPT" in toks:
                annos.add("exempt")
            if annos:
                open_idx = toks.index("(")
                if open_idx > 0:
                    name = toks[open_idx - 1]
                    if re.match(r"[A-Za-z_]", name):
                        key = (scope[-1] if scope else "", name)
                        self.program.decl_annotations.setdefault(
                            key, set()).update(annos)
            return
        # Typed member: remember `member -> Type` for receiver resolution.
        idents = [t for t in toks if re.match(r"[A-Za-z_]", t)]
        if len(idents) >= 2 and idents[-1] not in CPP_KEYWORDS:
            type_cands = [t for t in idents[:-1] if t not in TYPE_WRAPPERS
                          and t not in CPP_KEYWORDS
                          and t not in DECL_MACROS
                          and not t.isupper()]
            if type_cands and re.match(r"[A-Z]", type_cands[-1]):
                self.program.member_types.setdefault(
                    tuple(scope), {})[idents[-1]] = type_cands[-1]

    def _body_token(self, path, tokens, i, func, depth, raii_locks):
        """Handles one token inside a function body; returns the index of
        the last token consumed."""
        tok, line = tokens[i]

        if tok == "new":
            # `operator new` handled via the call path; a bare new-expression
            # is an allocation.
            func.events.append(Event("alloc", "new", line, depth))
            return i

        if not re.match(r"[A-Za-z_]", tok) or tok in CPP_KEYWORDS:
            return i

        nxt = tokens[i + 1][0] if i + 1 < len(tokens) else ""

        # `MutexLock lock(expr)` / `MutexLock lock(expr);` RAII acquisition.
        if tok == "MutexLock" and i + 2 < len(tokens) and \
                tokens[i + 2][0] == "(":
            expr, end = self._paren_expr(tokens, i + 2)
            raii_locks.append((depth, expr))
            func.events.append(Event("acq", expr, line, depth))
            return end

        if nxt == "(":
            receiver = self._receiver(tokens, i)
            qual = self._qualified(tokens, i)
            # Manual Lock/Unlock/TryLock on a mutex expression.
            if tok in ("Lock", "TryLock") and receiver:
                func.events.append(Event("acq", receiver, line, depth))
                return i + 1
            if tok == "Unlock" and receiver:
                func.events.append(Event("rel", receiver, line, depth))
                return i + 1
            prev = tokens[i - 1][0] if i > 0 else ""
            if re.match(r"[A-Za-z_]", prev) and prev not in CPP_KEYWORDS \
                    and receiver is None:
                # `Type name(args)`: a declaration — the interesting callee
                # is the type's constructor.
                if prev in ALLOC_TYPES:
                    func.events.append(
                        Event("alloc", f"{prev} construction", line, depth))
                elif prev in BLOCKING_TYPES:
                    func.events.append(
                        Event("block", f"{prev} construction", line, depth))
                elif re.match(r"[A-Z]", prev):
                    func.local_types[tok] = prev
                return i + 1
            base = tok
            if base in ALLOC_CALLEES:
                func.events.append(Event("alloc", f"{base}()", line, depth))
            elif base in BLOCKING_CALLEES:
                func.events.append(Event("block", f"{base}()", line, depth))
            else:
                func.events.append(
                    Event("call", qual or base, line, depth,
                          extra=receiver))
            return i + 1

        # Local declarations `Type[&*] name = ...` for receiver typing.
        if re.match(r"[A-Z]", tok) and i + 2 < len(tokens):
            j = i + 1
            while j < len(tokens) and tokens[j][0] in ("&", "*"):
                j += 1
            if j < len(tokens) and re.match(r"[a-z_]", tokens[j][0]) and \
                    j + 1 < len(tokens) and tokens[j + 1][0] in ("=", "{"):
                func.local_types[tokens[j][0]] = tok
        return i

    @staticmethod
    def _paren_expr(tokens, open_idx):
        depth = 0
        parts = []
        j = open_idx
        while j < len(tokens):
            t = tokens[j][0]
            if t == "(":
                depth += 1
                if depth == 1:
                    j += 1
                    continue
            elif t == ")":
                depth -= 1
                if depth == 0:
                    break
            parts.append(t)
            j += 1
        return "".join(parts), j

    @staticmethod
    def _receiver(tokens, i):
        if i >= 2 and tokens[i - 1][0] in (".", "->"):
            if re.match(r"[A-Za-z_]", tokens[i - 2][0]):
                return tokens[i - 2][0]
            if tokens[i - 2][0] in ("]", ")"):
                # shards_[i].mutex style: walk back past the index.
                return TextFrontend._walk_back_index(tokens, i - 2)
        return None

    @staticmethod
    def _walk_back_index(tokens, close_idx):
        match = {"]": "[", ")": "("}
        open_tok = match[tokens[close_idx][0]]
        depth = 0
        j = close_idx
        while j >= 0:
            t = tokens[j][0]
            if t == tokens[close_idx][0]:
                depth += 1
            elif t == open_tok:
                depth -= 1
                if depth == 0:
                    if j >= 1 and re.match(r"[A-Za-z_]", tokens[j - 1][0]):
                        return tokens[j - 1][0]
                    return None
            j -= 1
        return None

    @staticmethod
    def _qualified(tokens, i):
        parts = [tokens[i][0]]
        k = i - 1
        while k >= 1 and tokens[k][0] == "::":
            if re.match(r"[A-Za-z_]", tokens[k - 1][0]):
                parts.append(tokens[k - 1][0])
                k -= 2
            else:
                break
        if len(parts) > 1:
            parts.reverse()
            return "::".join(parts)
        return None


# --- Clang frontend (optional) -------------------------------------------

class ClangFrontend:
    """AST-accurate frontend over the libclang python bindings, driven by
    compile_commands.json. Optional: used when python3-clang is installed
    (the analyze CI job installs it); the text frontend remains the
    reference implementation and the gating one."""

    def __init__(self, compdb_dir):
        import clang.cindex as cindex  # raises ImportError when absent
        self.cindex = cindex
        self.compdb_dir = compdb_dir
        self.program = Program()
        self._seen = set()

    def parse_files(self, paths):
        cindex = self.cindex
        index = cindex.Index.create()
        commands = self._load_commands(paths)
        for path, args in commands:
            try:
                tu = index.parse(path, args=args)
            except cindex.TranslationUnitLoadError as err:
                print(f"analyze.py: clang failed on {path}: {err}",
                      file=sys.stderr)
                continue
            for cur in tu.cursor.walk_preorder():
                self._visit(cur)
        for path in paths:
            try:
                text = Path(path).read_text(encoding="utf-8",
                                            errors="replace")
            except OSError:
                continue
            TextFrontend._scan_exempt_markers(self, path, text)
        self.program.finalize()
        return self.program

    def _load_commands(self, paths):
        compdb = Path(self.compdb_dir) / "compile_commands.json"
        wanted = {str(Path(p).resolve()) for p in paths}
        out = []
        if compdb.exists():
            for entry in json.loads(compdb.read_text()):
                src = str((Path(entry["directory"]) /
                           entry["file"]).resolve())
                if src in wanted:
                    args = [a for a in entry["command"].split()[1:]
                            if a != entry["file"] and a != "-c"
                            and not a.endswith(".o")]
                    args = [a for a in args if a != "-o"]
                    out.append((src, args))
        covered = {p for p, _ in out}
        for p in sorted(wanted - covered):
            if p.endswith((".cc", ".cpp")):
                out.append((p, ["-std=c++20", "-Isrc", "-xc++"]))
        return out

    def _visit(self, cur):
        cindex = self.cindex
        K = cindex.CursorKind
        if cur.kind in (K.FUNCTION_DECL, K.CXX_METHOD, K.CONSTRUCTOR,
                        K.DESTRUCTOR) and cur.is_definition():
            loc = cur.location
            if loc.file is None:
                return
            key = (str(loc.file), loc.line, cur.spelling)
            if key in self._seen:
                return
            self._seen.add(key)
            qual = self._qual(cur)
            info = FuncInfo(qual, os.path.relpath(str(loc.file)), loc.line)
            for child in cur.get_children():
                if child.kind == K.ANNOTATE_ATTR:
                    s = child.spelling or ""
                    if s == "tms_no_alloc":
                        info.annotations.add("no_alloc")
                    elif s == "tms_non_blocking":
                        info.annotations.add("non_blocking")
                    elif s.startswith("tms_exempt"):
                        info.annotations.add("exempt")
            self._walk_body(cur, info)
            self.program.functions.append(info)
        elif cur.kind == K.FIELD_DECL or (cur.kind == K.VAR_DECL and
                                          cur.semantic_parent and
                                          cur.semantic_parent.kind in (
                                              K.NAMESPACE,
                                              K.TRANSLATION_UNIT)):
            tname = cur.type.spelling
            if tname.endswith("insight::Mutex") or tname == "Mutex" or \
                    tname.endswith("::Mutex"):
                rank = None
                toks = " ".join(t.spelling for t in cur.get_tokens())
                m = re.search(r"TMS_LOCK_RANK\s*\(\s*(\d+)\s*\)", toks)
                if m:
                    rank = int(m.group(1))
                loc = cur.location
                self.program.mutexes.append(MutexDecl(
                    self._qual(cur)[:-1], cur.spelling, rank,
                    os.path.relpath(str(loc.file)), loc.line))

    def _qual(self, cur):
        parts = [cur.spelling or "<anon>"]
        p = cur.semantic_parent
        K = self.cindex.CursorKind
        while p is not None and p.kind != K.TRANSLATION_UNIT:
            if p.spelling:
                parts.append(p.spelling)
            p = p.semantic_parent
        parts.reverse()
        return tuple(parts)

    def _walk_body(self, cur, info):
        K = self.cindex.CursorKind
        for node in cur.walk_preorder():
            loc = node.location
            line = loc.line if loc else 0
            if node.kind == K.CXX_NEW_EXPR:
                info.events.append(Event("alloc", "new", line, 1))
            elif node.kind == K.CALL_EXPR:
                name = node.spelling or ""
                ref = node.referenced
                qual = "::".join(self._qual(ref)) if ref else name
                base = name or (qual.split("::")[-1] if qual else "")
                if base in ALLOC_CALLEES:
                    info.events.append(
                        Event("alloc", f"{base}()", line, 1))
                elif base in BLOCKING_CALLEES:
                    info.events.append(
                        Event("block", f"{base}()", line, 1))
                elif base == "MutexLock":
                    toks = [t.spelling for t in node.get_tokens()]
                    expr = "".join(toks[toks.index("(") + 1:-1]) \
                        if "(" in toks else ""
                    info.events.append(Event("acq", expr, line, 1))
                elif base:
                    info.events.append(Event("call", qual or base, line, 1))


# --- Rule engine ---------------------------------------------------------

class Finding:
    def __init__(self, file, line, rule, message):
        self.file = file
        self.line = line
        self.rule = rule
        self.message = message

    def key(self):
        return (self.file, self.line, self.rule)

    def __str__(self):
        return f"{self.file}:{self.line}: {self.rule}: {self.message}"


class Analyzer:
    def __init__(self, program):
        self.program = program
        self.findings = []
        self._trans_acq = {}

    def run(self):
        self._check_exempt_reasons()
        self._check_reachability("no_alloc", "no-alloc", ("alloc",))
        self._check_reachability("non_blocking", "non-blocking",
                                 ("block",))
        self._check_unranked_decls()
        self._check_lock_order()
        deduped = {}
        for f in self.findings:
            deduped.setdefault(f.key(), f)
        exempt = self.program.exempt_lines
        out = [f for f in deduped.values()
               if f.line not in exempt.get(f.file, ())]
        out.sort(key=lambda f: (f.file, f.line, f.rule))
        return out

    # -- exempt-reason --

    def _check_exempt_reasons(self):
        for file, line in self.program.exempt_bare:
            self.findings.append(Finding(
                file, line, "exempt-reason",
                "TMS_ANALYZE_EXEMPT must carry a non-empty reason: "
                "TMS_ANALYZE_EXEMPT(why this is safe)"))

    # -- reachability rules (no-alloc / non-blocking) --

    def _check_reachability(self, anno, rule, kinds):
        for root in self.program.functions:
            if anno in root.annotations:
                self._walk(root, root, rule, kinds, anno, set(), [])

    def _walk(self, root, func, rule, kinds, anno, visited, path):
        if func.display in visited:
            return
        visited.add(func.display)
        for ev in func.events:
            if ev.kind in kinds:
                via = " via " + " -> ".join(path) if path else ""
                self.findings.append(Finding(
                    func.file, ev.line, rule,
                    f"{ev.what} reachable from {rule.replace('-', '_')}"
                    f"-annotated '{root.display}'{via}"))
            elif ev.kind == "acq" and rule == "non-blocking":
                name, rank, known = self.program.resolve_mutex(
                    func, ev.what)
                if known and rank is None:
                    via = " via " + " -> ".join(path) if path else ""
                    self.findings.append(Finding(
                        func.file, ev.line, rule,
                        f"acquisition of unranked mutex '{name}' "
                        f"reachable from '{root.display}'{via} "
                        "(rank it with TMS_LOCK_RANK to promise a "
                        "bounded leaf critical section)"))
            elif ev.kind == "call":
                callee = self.program.resolve_call(func, ev)
                if callee is None or "exempt" in callee.annotations:
                    continue
                if self._line_exempt(func.file, ev.line):
                    continue
                self._walk(root, callee, rule, kinds, anno, visited,
                           path + [callee.display])

    def _line_exempt(self, file, line):
        return line in self.program.exempt_lines.get(file, ())

    # -- lock-rank --

    def _check_unranked_decls(self):
        for m in self.program.mutexes:
            norm = str(m.file).replace(os.sep, "/")
            if any(norm.startswith(p) or ("/" + p + "/") in norm or
                   norm.startswith(p + "/")
                   for p in RANK_REQUIRED_PREFIXES) and m.rank is None:
                where = "::".join(m.scope + (m.name,))
                self.findings.append(Finding(
                    m.file, m.line, "lock-rank",
                    f"Mutex '{where}' has no TMS_LOCK_RANK; every mutex "
                    "in the concurrency-bearing directories must declare "
                    "its position in the lock order"))

    def trans_acquires(self, func, stack=None):
        """All ranks (with provenance) acquired by func or its resolved
        callees, ignoring interleaved releases (conservative)."""
        if func.display in self._trans_acq:
            return self._trans_acq[func.display]
        if stack is None:
            stack = set()
        if func.display in stack:
            return {}
        stack.add(func.display)
        acc = {}
        for ev in func.events:
            if ev.kind == "acq":
                name, rank, known = self.program.resolve_mutex(
                    func, ev.what)
                if known and rank is not None:
                    acc.setdefault(rank, (name, func.display))
            elif ev.kind == "call":
                callee = self.program.resolve_call(func, ev)
                if callee is not None and \
                        "exempt" not in callee.annotations:
                    for rank, prov in self.trans_acquires(
                            callee, stack).items():
                        acc.setdefault(rank, prov)
        stack.discard(func.display)
        self._trans_acq[func.display] = acc
        return acc

    def _check_lock_order(self):
        for func in self.program.functions:
            if "exempt" in func.annotations:
                continue
            held = []  # [(rank, name, expr)] acquisition order
            for ev in func.events:
                if ev.kind == "acq":
                    name, rank, known = self.program.resolve_mutex(
                        func, ev.what)
                    if not known or rank is None:
                        held.append((None, name, ev.what))
                        continue
                    ranked = [h for h in held if h[0] is not None]
                    if ranked and ranked[-1][0] >= rank:
                        self.findings.append(Finding(
                            func.file, ev.line, "lock-rank",
                            f"'{func.display}' acquires '{name}' "
                            f"(rank {rank}) while holding "
                            f"'{ranked[-1][1]}' (rank {ranked[-1][0]}); "
                            "ranks must be acquired in strictly "
                            "increasing order"))
                    held.append((rank, name, ev.what))
                elif ev.kind == "rel":
                    for idx in range(len(held) - 1, -1, -1):
                        if held[idx][2] == ev.what:
                            held.pop(idx)
                            break
                elif ev.kind == "call":
                    ranked = [h for h in held if h[0] is not None]
                    if not ranked:
                        continue
                    top = ranked[-1]
                    callee = self.program.resolve_call(func, ev)
                    if callee is None or \
                            "exempt" in callee.annotations:
                        continue
                    for rank, (name, owner) in sorted(
                            self.trans_acquires(callee).items()):
                        if rank <= top[0]:
                            self.findings.append(Finding(
                                func.file, ev.line, "lock-rank",
                                f"'{func.display}' calls "
                                f"'{callee.display}' while holding "
                                f"'{top[1]}' (rank {top[0]}); the callee "
                                f"reaches acquisition of '{name}' "
                                f"(rank {rank}, in {owner}), inverting "
                                "the lock order"))


# --- Driver --------------------------------------------------------------

def collect_repo_files():
    files = []
    for top in SCAN_DIRS:
        for ext in ("h", "hpp", "cc", "cpp"):
            files.extend(glob.glob(f"{top}/**/*.{ext}", recursive=True))
    return sorted(files)


def make_frontend(kind, compdb):
    if kind in ("auto", "clang"):
        try:
            frontend = ClangFrontend(compdb)
            if kind == "clang" or \
                    (Path(compdb) / "compile_commands.json").exists():
                return frontend, "clang"
        except ImportError:
            if kind == "clang":
                print("analyze.py: --frontend=clang requires the libclang "
                      "python bindings (apt install python3-clang); "
                      "falling back to the text frontend", file=sys.stderr)
    return TextFrontend(), "text"


def run_analysis(paths, frontend):
    program = frontend.parse_files(paths)
    return Analyzer(program).run()


def self_test(github):
    """Each fixture under tools/testdata/ declares its expected findings
    with `// EXPECT: rule` comments; the analyzer must produce exactly
    those findings (line-accurate), using the text frontend so the self
    test is deterministic on machines without libclang."""
    fixtures = sorted(glob.glob("tools/testdata/*.cc"))
    if not fixtures:
        print("analyze.py: no fixtures under tools/testdata/",
              file=sys.stderr)
        return 1
    failures = 0
    for fixture in fixtures:
        text = Path(fixture).read_text(encoding="utf-8")
        expected = set()
        for lineno, line in enumerate(text.splitlines(), start=1):
            m = re.search(r"//\s*EXPECT:\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)",
                          line)
            if m:
                for rule in re.split(r"\s*,\s*", m.group(1)):
                    expected.add((lineno, rule))
        findings = run_analysis([fixture], TextFrontend())
        actual = {(f.line, f.rule) for f in findings}
        missing = expected - actual
        surplus = actual - expected
        if missing or surplus:
            failures += 1
            print(f"SELF-TEST FAIL {fixture}")
            for line, rule in sorted(missing):
                print(f"  expected {rule} at line {line}, not reported")
            for line, rule in sorted(surplus):
                msg = next(f.message for f in findings
                           if (f.line, f.rule) == (line, rule))
                print(f"  unexpected {rule} at line {line}: {msg}")
        else:
            print(f"self-test ok {fixture} "
                  f"({len(expected)} expected finding(s))")
    if failures:
        print(f"analyze.py: {failures} fixture(s) failed", file=sys.stderr)
        if github:
            print("::error::analyzer self-test failed")
        return 1
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*",
                        help="files to analyze (default: src/)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify each rule fires on the known-bad "
                             "fixtures under tools/testdata/")
    parser.add_argument("--github", action="store_true",
                        help="emit findings as GitHub workflow annotations")
    parser.add_argument("--frontend", choices=("auto", "text", "clang"),
                        default="text",
                        help="parser frontend (default: text; clang needs "
                             "python3-clang + compile_commands.json)")
    parser.add_argument("--compdb", default="build",
                        help="directory holding compile_commands.json "
                             "(clang frontend)")
    args = parser.parse_args()

    if not Path("tools/analyze.py").exists():
        print("analyze.py: run from the repository root", file=sys.stderr)
        return 2

    if args.self_test:
        return self_test(args.github)

    frontend, kind = make_frontend(args.frontend, args.compdb)
    paths = args.paths or collect_repo_files()
    findings = run_analysis(paths, frontend)
    for f in findings:
        print(f)
        if args.github:
            print(f"::error file={f.file},line={f.line}::"
                  f"{f.rule}: {f.message}")
    if findings:
        print(f"analyze.py [{kind} frontend]: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
