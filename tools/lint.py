#!/usr/bin/env python3
"""Repo lint: concurrency-primitive discipline and NOLINT hygiene.

Rules
-----
1. raw-mutex: no raw standard-library synchronization primitives
   (std::mutex, std::condition_variable, std::lock_guard, ...) outside
   src/common/. Everything else must use insight::Mutex / MutexLock /
   CondVar from common/mutex.h so Clang's -Wthread-safety analysis sees
   every lock site. (src/common/mutex.h is the one sanctioned wrapper.)

2. raw-thread: no raw std::thread construction or pthread_create outside
   src/common/ (home of insight::Thread, the sanctioned spawn wrapper)
   and src/dist/ (the supervisor manages worker *processes* and owns its
   low-level plumbing). Every other thread is born through
   insight::Thread (common/thread.h), so "which threads exist" stays
   auditable from two directories. Uses of std::thread's non-spawning
   pieces (std::thread::id, this_thread::sleep_for) are fine.

3. nolint-reason: every NOLINT marker must name a category AND carry a
   reason: `// NOLINT(category): why this is exempt`. A bare NOLINT
   silences a checker with no audit trail.

Exit status is nonzero if any rule fires; findings print as
`file:line: rule: message` so editors and CI annotate them.

Run from the repository root:  python3 tools/lint.py
"""

import re
import sys
from pathlib import Path

SCAN_DIRS = ("src", "tests", "bench", "examples", "tools")
EXTENSIONS = {".h", ".hpp", ".cc", ".cpp"}

# Directory whose files may use raw primitives (the annotated wrappers
# themselves live here).
RAW_MUTEX_EXEMPT_PREFIX = Path("src") / "common"

# Directories whose files may spawn raw threads: the Thread wrapper's own
# home, and the process-supervision layer.
RAW_THREAD_EXEMPT_PREFIXES = (
    Path("src") / "common",
    Path("src") / "dist",
)

RAW_PRIMITIVE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable|"
    r"condition_variable_any|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b"
)

# std::thread used as a type (construction/declaration) — but not its
# non-spawning nested pieces (std::thread::id) or std::this_thread.
RAW_THREAD = re.compile(r"\bstd::thread\b(?!::)|\bpthread_create\b")

NOLINT_ANY = re.compile(r"\bNOLINT(?:NEXTLINE)?\b")
NOLINT_OK = re.compile(r"\bNOLINT(?:NEXTLINE)?\([^)\n]+\):\s*\S")


def strip_comments(text: str) -> str:
    """Blanks out // and /* */ comments and string literals, preserving
    line structure so reported line numbers stay correct."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        if state == "code":
            if c == "/" and i + 1 < n and text[i + 1] == "/":
                state = "line"
                i += 2
                continue
            if c == "/" and i + 1 < n and text[i + 1] == "*":
                state = "block"
                i += 2
                continue
            if c == '"':
                state = "str"
            elif c == "'":
                state = "chr"
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
        elif state == "block":
            if c == "*" and i + 1 < n and text[i + 1] == "/":
                state = "code"
                i += 1
            elif c == "\n":
                out.append(c)
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                i += 2
                continue
            if c == quote:
                state = "code"
            if c == "\n":  # unterminated; bail to code
                state = "code"
                out.append(c)
        i += 1
    return "".join(out)


def lint_file(path: Path) -> list:
    findings = []
    text = path.read_text(encoding="utf-8", errors="replace")
    code = strip_comments(text)

    self_exempt = path == Path("tools/lint.py") or path == Path(
        "tools/lint_test.py"
    )
    mutex_exempt = RAW_MUTEX_EXEMPT_PREFIX in path.parents or self_exempt
    thread_exempt = self_exempt or any(
        prefix in path.parents for prefix in RAW_THREAD_EXEMPT_PREFIXES
    )
    code_lines = code.splitlines()
    text_lines = text.splitlines()

    def nolinted(lineno: int, category: str) -> bool:
        """True when this line (or a NOLINTNEXTLINE above it) carries a
        reasoned NOLINT for `category`."""
        own = text_lines[lineno - 1] if lineno - 1 < len(text_lines) else ""
        above = text_lines[lineno - 2] if lineno >= 2 else ""
        marker = re.compile(
            r"\bNOLINT\(" + re.escape(category) + r"\):\s*\S")
        nextline = re.compile(
            r"\bNOLINTNEXTLINE\(" + re.escape(category) + r"\):\s*\S")
        return bool(marker.search(own) or nextline.search(above))

    if not mutex_exempt:
        for lineno, line in enumerate(code_lines, start=1):
            match = RAW_PRIMITIVE.search(line)
            if match and not nolinted(lineno, "raw-mutex"):
                findings.append(
                    (path, lineno, "raw-mutex",
                     f"{match.group(0)} is banned outside src/common/; "
                     "use insight::Mutex / MutexLock / CondVar "
                     "(common/mutex.h)")
                )

    if not thread_exempt:
        for lineno, line in enumerate(code_lines, start=1):
            match = RAW_THREAD.search(line)
            if match and not nolinted(lineno, "raw-thread"):
                findings.append(
                    (path, lineno, "raw-thread",
                     f"{match.group(0)} is banned outside src/common/ and "
                     "src/dist/; spawn through insight::Thread "
                     "(common/thread.h) so every thread has one auditable "
                     "doorway")
                )

    # NOLINT markers live in comments, so scan the original text.
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in NOLINT_ANY.finditer(line):
            if not NOLINT_OK.search(line[match.start():]):
                findings.append(
                    (path, lineno, "nolint-reason",
                     "NOLINT must name a category and a reason: "
                     "`// NOLINT(category): why`")
                )
    return findings


def main() -> int:
    root = Path.cwd()
    if not (root / "tools" / "lint.py").exists():
        print("lint.py: run from the repository root", file=sys.stderr)
        return 2

    findings = []
    for top in SCAN_DIRS:
        for path in sorted(Path(top).rglob("*")):
            if path.suffix in EXTENSIONS and path.is_file():
                findings.extend(lint_file(path))

    for path, lineno, rule, message in findings:
        print(f"{path}:{lineno}: {rule}: {message}")
    if findings:
        print(f"lint.py: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
