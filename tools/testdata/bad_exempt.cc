// Known-bad fixture for tools/analyze.py --self-test: the exempt-reason
// rule. A bare TMS_ANALYZE_EXEMPT leaves no audit trail and is itself a
// finding (mirrors the reasoned-marker hygiene rule in tools/lint.py).
#include "common/static_analysis.h"

#include <vector>

namespace fixture {

void Sloppy(std::vector<int>& v) TMS_NO_ALLOC {
  v.push_back(1);  // TMS_ANALYZE_EXEMPT()  // EXPECT: exempt-reason, no-alloc
}

void Justified(std::vector<int>& v) TMS_NO_ALLOC {
  v.push_back(2);  // TMS_ANALYZE_EXEMPT(fixture: documented growth)
}

}  // namespace fixture
