// Known-bad fixture for tools/analyze.py --self-test: the non-blocking
// rule. See bad_no_alloc.cc for the EXPECT convention.
#include "common/mutex.h"

#include <chrono>
#include <thread>

namespace fixture {

insight::Mutex g_ranked{TMS_LOCK_RANK(110)};
insight::Mutex g_unranked;  // EXPECT: lock-rank

void SleepyHelper() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // EXPECT: non-blocking
}

void OnFrame() TMS_NON_BLOCKING {
  SleepyHelper();
  insight::MutexLock lock(g_unranked);  // EXPECT: non-blocking
}

void OnTick() TMS_NON_BLOCKING {
  // A ranked mutex guards a bounded leaf critical section: allowed.
  insight::MutexLock lock(g_ranked);
}

}  // namespace fixture
