// Known-bad fixture for tools/analyze.py --self-test: the no-alloc rule.
// Each `// EXPECT: <rule>` comment marks a line where exactly that finding
// must be reported; any other finding in this file fails the self-test.
// The fixture is illustrative source, not part of the build.
#include "common/static_analysis.h"

#include <string>
#include <vector>

namespace fixture {

int* LeakyHelper() {
  return new int[16];  // EXPECT: no-alloc
}

void PushHelper(std::vector<int>& v) {
  v.push_back(1);  // EXPECT: no-alloc
}

// Not reachable from any annotated root: allocating here is fine.
void ColdPath(std::vector<int>& v) { v.push_back(2); }

void HotLoop(std::vector<int>& v) TMS_NO_ALLOC {
  PushHelper(v);
  (void)LeakyHelper();
  std::string label("boom");  // EXPECT: no-alloc
  (void)label;
}

void Warmup(std::vector<int>& v) TMS_NO_ALLOC {
  // TMS_ANALYZE_EXEMPT(one-time warm-up: capacity is retained and reused)
  v.reserve(64);
}

void Recorder(std::vector<int>& v) TMS_ANALYZE_EXEMPT("fixture: whole body") {
  v.resize(128);
}

}  // namespace fixture
