// Known-bad fixture for tools/analyze.py --self-test: the lock-rank rule.
// See bad_no_alloc.cc for the EXPECT convention.
#include "common/mutex.h"

namespace fixture {

struct Pair {
  insight::Mutex low{TMS_LOCK_RANK(10)};
  insight::Mutex high{TMS_LOCK_RANK(20)};
  insight::Mutex naked;  // EXPECT: lock-rank
};

void Inverted(Pair& p) {
  insight::MutexLock outer(p.high);
  insight::MutexLock inner(p.low);  // EXPECT: lock-rank
}

void TakesLow(Pair& p) {
  insight::MutexLock lock(p.low);
}

void CrossFunction(Pair& p) {
  insight::MutexLock outer(p.high);
  TakesLow(p);  // EXPECT: lock-rank
}

void SameRankTwice(Pair& a, Pair& b) {
  insight::MutexLock first(a.low);
  insight::MutexLock second(b.low);  // EXPECT: lock-rank
}

void Ordered(Pair& p) {
  // Strictly increasing ranks: allowed.
  insight::MutexLock outer(p.low);
  insight::MutexLock inner(p.high);
}

void ReleasedBeforeDescent(Pair& p) {
  {
    insight::MutexLock outer(p.high);
  }
  // The high lock is released before the low one is taken: allowed.
  insight::MutexLock later(p.low);
}

}  // namespace fixture
