#include "elastic/policy.h"

#include <algorithm>

namespace insight {
namespace elastic {

bool IsHot(const EngineSample& sample, const Policy& policy) {
  return HotScore(sample, policy) > 1.0;
}

double HotScore(const EngineSample& sample, const Policy& policy) {
  double score = 0.0;
  if (policy.p99_target_micros > 0.0) {
    score = std::max(score, sample.p99_micros / policy.p99_target_micros);
  }
  if (policy.capacity_high > 0.0) {
    score = std::max(score, sample.capacity / policy.capacity_high);
  }
  if (policy.occupancy_high > 0.0) {
    score = std::max(score, sample.occupancy / policy.occupancy_high);
  }
  if (policy.shed_rate_threshold > 0.0) {
    score = std::max(score, sample.shed_rate / policy.shed_rate_threshold);
  }
  return score;
}

Decision DecideMigration(const std::vector<EngineSample>& samples,
                         const Policy& policy) {
  Decision decision;
  const EngineSample* source = nullptr;
  double source_score = 0.0;
  bool any_hot = false;
  for (const EngineSample& s : samples) {
    if (!s.routed || !IsHot(s, policy)) continue;
    any_hot = true;
    if (s.hot_windows < policy.min_hot_windows) continue;
    double score = HotScore(s, policy);
    if (source == nullptr || score > source_score) {
      source = &s;
      source_score = score;
    }
  }
  if (source == nullptr) {
    decision.reason = any_hot ? "hot streak below min_hot_windows"
                              : "no routed engine is hot";
    return decision;
  }
  // Target: a standby that is itself cool. Rank by the model's predicted
  // co-located latency (Function 3) when available, occupancy as the
  // tie-break — the controller prefers the spare the model expects to run
  // this load fastest, not just any empty slot.
  const EngineSample* target = nullptr;
  for (const EngineSample& s : samples) {
    if (s.routed || IsHot(s, policy)) continue;
    if (target == nullptr ||
        s.predicted_latency_micros < target->predicted_latency_micros ||
        (s.predicted_latency_micros == target->predicted_latency_micros &&
         s.occupancy < target->occupancy)) {
      target = &s;
    }
  }
  if (target == nullptr) {
    decision.reason = "no idle standby target";
    return decision;
  }
  decision.migrate = true;
  decision.from_task = source->task;
  decision.to_task = target->task;
  decision.reason = "engine " + std::to_string(source->task) +
                    " hot for " + std::to_string(source->hot_windows) +
                    " windows";
  return decision;
}

}  // namespace elastic
}  // namespace insight
