#include "elastic/controller.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "observability/histogram.h"

namespace insight {
namespace elastic {

namespace {

/// Per-window delta of two cumulative task totals.
dsps::MetricsRegistry::TaskTotals Delta(
    const dsps::MetricsRegistry::TaskTotals& now,
    const dsps::MetricsRegistry::TaskTotals& prev) {
  dsps::MetricsRegistry::TaskTotals d;
  d.executed = now.executed - prev.executed;
  d.emitted = now.emitted - prev.emitted;
  d.latency_sum_micros = now.latency_sum_micros - prev.latency_sum_micros;
  d.shed = now.shed - prev.shed;
  for (size_t i = 0; i < d.latency_histogram.counts.size(); ++i) {
    d.latency_histogram.counts[i] =
        now.latency_histogram.counts[i] - prev.latency_histogram.counts[i];
  }
  return d;
}

}  // namespace

ElasticController::ElasticController(dsps::LocalRuntime* runtime,
                                     core::LiveRouter* router, Options options)
    : runtime_(runtime), router_(router), options_(std::move(options)) {}

ElasticController::~ElasticController() { Stop(); }

std::vector<EngineSample> ElasticController::Sample(MicrosT now) {
  dsps::MetricsRegistry* metrics = runtime_->metrics();
  const int num_tasks = metrics->TaskCount(options_.component);
  std::vector<EngineSample> samples;
  if (num_tasks <= 0) return samples;
  if (prev_totals_.size() != static_cast<size_t>(num_tasks)) {
    prev_totals_.assign(static_cast<size_t>(num_tasks), {});
    hot_windows_.assign(static_cast<size_t>(num_tasks), 0);
  }
  // Which engines does the current table route to? Everything else is a
  // standby and a migration-target candidate.
  std::set<int> routed;
  std::shared_ptr<const core::SpatialRouter> table = router_->Snapshot();
  for (const core::SpatialRouter::GroupingRoute& route : table->routes()) {
    for (const auto& [region, engine] : route.region_to_engine) {
      routed.insert(engine);
    }
    for (int engine : route.fallback_engines) routed.insert(engine);
  }
  const MicrosT window =
      last_tick_micros_ > 0 ? std::max<MicrosT>(now - last_tick_micros_, 1)
                            : 0;
  // Model scoring: predicted co-located latency per engine (Function 3),
  // with every active engine treated as co-located — the conservative
  // single-node view this runtime actually executes.
  std::vector<double> own_latency;
  const bool have_rules =
      options_.engine_rules.size() == static_cast<size_t>(num_tasks);
  if (have_rules) {
    own_latency.reserve(static_cast<size_t>(num_tasks));
    for (const auto& rules : options_.engine_rules) {
      own_latency.push_back(rules.empty() ? 0.0 : model_.EngineLatency(rules));
    }
  }
  samples.reserve(static_cast<size_t>(num_tasks));
  for (int task = 0; task < num_tasks; ++task) {
    dsps::MetricsRegistry::TaskTotals totals =
        metrics->TotalsForTask(options_.component, task);
    dsps::MetricsRegistry::TaskTotals delta =
        Delta(totals, prev_totals_[static_cast<size_t>(task)]);
    prev_totals_[static_cast<size_t>(task)] = totals;
    EngineSample s;
    s.task = task;
    s.routed = routed.count(task) > 0;
    s.executed = delta.executed;
    s.p99_micros = delta.latency_histogram.Percentile(99.0);
    s.capacity = window > 0 ? static_cast<double>(delta.latency_sum_micros) /
                                  static_cast<double>(window)
                            : 0.0;
    s.occupancy = runtime_->QueueOccupancy(options_.component, task);
    const uint64_t offered = delta.executed + delta.shed;
    s.shed_rate = offered > 0 ? static_cast<double>(delta.shed) /
                                    static_cast<double>(offered)
                              : 0.0;
    if (have_rules) {
      std::vector<double> others;
      for (int other : routed) {
        if (other != task &&
            static_cast<size_t>(other) < own_latency.size()) {
          others.push_back(own_latency[static_cast<size_t>(other)]);
        }
      }
      s.predicted_latency_micros = model_.ColocatedLatency(
          own_latency[static_cast<size_t>(task)], others);
    }
    // Refit feed: attribute this window's measured mean to the rule
    // configuration the engine runs (first placed rule's shape — the
    // paper's generic template has one (l, t) per rule).
    if (options_.policy.enable_model_refit && have_rules &&
        !options_.engine_rules[static_cast<size_t>(task)].empty() &&
        delta.executed > 0 && last_tick_micros_ > 0) {
      const model::RuleCharacteristics& rule =
          options_.engine_rules[static_cast<size_t>(task)][0];
      model::WindowMeasurement m;
      m.window_length = rule.window_length;
      m.num_thresholds = rule.num_thresholds;
      m.avg_latency_micros = static_cast<double>(delta.latency_sum_micros) /
                             static_cast<double>(delta.executed);
      m.executed = delta.executed;
      refit_.Observe(m);
    }
    samples.push_back(s);
  }
  // Hot-streak bookkeeping happens once per window, after all signals are
  // in, so DecideMigration sees consistent streak counts.
  for (EngineSample& s : samples) {
    int& streak = hot_windows_[static_cast<size_t>(s.task)];
    streak = IsHot(s, options_.policy) ? streak + 1 : 0;
    s.hot_windows = streak;
  }
  return samples;
}

bool ElasticController::TryRebalance(const std::vector<EngineSample>& samples) {
  if (!options_.policy.allow_region_rebalance ||
      options_.region_rates == nullptr) {
    return false;
  }
  std::shared_ptr<const core::SpatialRouter> table = router_->Snapshot();
  if (options_.routed_grouping >= table->routes().size()) return false;
  std::map<int64_t, int> assignment =
      table->routes()[options_.routed_grouping].region_to_engine;
  if (assignment.empty()) return false;
  Result<std::vector<core::RegionMove>> moves = core::PlanRebalance(
      &assignment, options_.region_rates->Estimates(),
      static_cast<int>(samples.size()),
      options_.policy.rebalance_target_imbalance,
      options_.policy.rebalance_max_moves);
  if (!moves.ok() || moves->empty()) return false;
  router_->ApplyMoves(options_.routed_grouping, *moves);
  rebalances_.fetch_add(1);
  INSIGHT_LOG(Info) << "elastic: rebalanced " << moves->size()
                    << " regions of " << options_.component;
  return true;
}

Status ElasticController::Tick() {
  const MicrosT now = options_.clock->NowMicros();
  std::vector<EngineSample> samples = Sample(now);
  const bool first_window = last_tick_micros_ == 0;
  last_tick_micros_ = now;
  ticks_.fetch_add(1);
  if (samples.empty()) {
    last_samples_.clear();
    return Status::OK();
  }
  if (options_.policy.enable_model_refit && refit_.MaybeRefit(&model_)) {
    refits_.fetch_add(1);
  }
  last_samples_ = samples;
  // The first window has no meaningful deltas, and inside a cooldown the
  // signals still carry the previous action's transient.
  if (first_window || now < cooldown_until_) return Status::OK();
  Decision decision = DecideMigration(samples, options_.policy);
  if (!decision.migrate) {
    // A sustained hot engine with nowhere to move wholesale: spread its
    // regions instead (the paper's re-partitioning lever).
    bool streak = false;
    for (const EngineSample& s : samples) {
      if (s.routed && s.hot_windows >= options_.policy.min_hot_windows) {
        streak = true;
        break;
      }
    }
    if (streak && TryRebalance(samples)) {
      cooldown_until_ = now + options_.policy.cooldown_micros;
      for (int& w : hot_windows_) w = 0;
    }
    return Status::OK();
  }
  if (options_.policy.max_migrations >= 0 &&
      migrations_.load() >=
          static_cast<uint64_t>(options_.policy.max_migrations)) {
    return Status::OK();
  }
  // Act: flip the routing table so every region (and fallback slot) of the
  // hot engine points at the standby, and move the state line behind it.
  core::LiveRouter* router = router_;
  const int from = decision.from_task;
  const int to = decision.to_task;
  std::shared_ptr<const core::SpatialRouter> before = router->Snapshot();
  dsps::LocalRuntime::MigrationRequest request;
  request.component = options_.component;
  request.from_task = from;
  request.to_task = to;
  request.flip = [router, from, to]() {
    router->MoveEngine(from, to);
    return Status::OK();
  };
  request.unflip = [router, before]() { router->Restore(before); };
  Status s = runtime_->MigrateTask(request);
  cooldown_until_ = now + options_.policy.cooldown_micros;
  for (int& w : hot_windows_) w = 0;
  if (!s.ok()) {
    migration_failures_.fetch_add(1);
    INSIGHT_LOG(Warning) << "elastic: migration " << options_.component << "/"
                         << from << " -> " << to << " failed: " << s.message();
    return s;
  }
  migrations_.fetch_add(1);
  last_from_task_.store(from);
  last_to_task_.store(to);
  INSIGHT_LOG(Info) << "elastic: migrated " << options_.component << "/"
                    << from << " -> " << to << " (" << decision.reason << ")";
  return Status::OK();
}

void ElasticController::RunLoop() {
  MicrosT accumulated = 0;
  const MicrosT slice = std::min<MicrosT>(options_.tick_interval_micros,
                                          50'000);
  while (!stop_.load()) {
    std::this_thread::sleep_for(std::chrono::microseconds(slice));
    accumulated += slice;
    if (accumulated < options_.tick_interval_micros) continue;
    accumulated = 0;
    if (stop_.load()) break;
    Tick().ok();  // failures are logged and counted; the loop keeps going
  }
}

Status ElasticController::Start() {
  if (running_.exchange(true)) {
    return Status::FailedPrecondition("controller already running");
  }
  stop_.store(false);
  loop_ = Thread([this] { RunLoop(); });
  return Status::OK();
}

void ElasticController::Stop() {
  if (!running_.load()) return;
  stop_.store(true);
  if (loop_.joinable()) loop_.join();
  running_.store(false);
}

ElasticController::Stats ElasticController::stats() const {
  Stats stats;
  stats.ticks = ticks_.load();
  stats.refits = refits_.load();
  stats.migrations = migrations_.load();
  stats.migration_failures = migration_failures_.load();
  stats.rebalances = rebalances_.load();
  stats.last_from_task = last_from_task_.load();
  stats.last_to_task = last_to_task_.load();
  return stats;
}

}  // namespace elastic
}  // namespace insight
