#ifndef INSIGHT_ELASTIC_CONTROLLER_H_
#define INSIGHT_ELASTIC_CONTROLLER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/thread.h"
#include "core/partitioning.h"
#include "dsps/local_runtime.h"
#include "dsps/metrics.h"
#include "elastic/policy.h"
#include "model/latency_model.h"

namespace insight {
namespace elastic {

/// The online elastic scheduler (ROADMAP item 2): consumes the runtime's
/// per-task metric stream plus the overload signals, refits the latency
/// model live (model::RollingRefit over monitor windows), detects hot and
/// cold engines against the Policy, and reacts by re-partitioning regions
/// across the active engines (core::PlanRebalance through the LiveRouter)
/// or live-migrating a hot engine's whole CEP task onto a standby via
/// LocalRuntime::MigrateTask — snapshot → reroute → restore, without
/// violating effectively-once.
///
/// Deterministic core: one Tick() is one full control pass and the unit-test
/// surface. Start() merely drives Tick on a background thread. Tick is not
/// reentrant; the background loop serializes it, and callers who Tick
/// manually must not run Start concurrently.
class ElasticController {
 public:
  struct Options {
    Policy policy;
    /// The engine bolt component this controller manages. Its task index
    /// space is the engine index space of `router`.
    std::string component;
    /// LiveRouter grouping whose region map PlanRebalance rewrites.
    size_t routed_grouping = 0;
    /// Background tick period (Start()).
    MicrosT tick_interval_micros = 500'000;
    const Clock* clock = SystemClock::Get();
    /// Rules placed per engine task, for the model's target scoring
    /// (Function 3 ranks candidate standbys) and for the refit loop's
    /// window → rule-configuration mapping. Empty = rank targets by
    /// occupancy only and skip refit.
    std::vector<std::vector<model::RuleCharacteristics>> engine_rules;
    /// Live region-rate estimates feeding PlanRebalance; optional, not
    /// owned. Null disables rebalance regardless of Policy.
    const core::RegionRateTracker* region_rates = nullptr;
  };

  /// Neither pointer is owned; both must outlive the controller.
  ElasticController(dsps::LocalRuntime* runtime, core::LiveRouter* router,
                    Options options);
  ~ElasticController();

  ElasticController(const ElasticController&) = delete;
  ElasticController& operator=(const ElasticController&) = delete;

  /// One control pass: sample per-task deltas, refit, decide, act.
  Status Tick();

  /// Spawns the background loop. FailedPrecondition if already running.
  Status Start();
  /// Stops and joins the background loop; idempotent.
  void Stop();

  struct Stats {
    uint64_t ticks = 0;
    uint64_t refits = 0;
    uint64_t migrations = 0;
    uint64_t migration_failures = 0;
    uint64_t rebalances = 0;
    int last_from_task = -1;
    int last_to_task = -1;
  };
  Stats stats() const;

  /// The controller's working copy of the latency model (live-refit).
  const model::LatencyModel& model() const { return model_; }
  void set_model(model::LatencyModel model) { model_ = std::move(model); }

  /// The samples the last Tick decided on (test/diagnostic hook; Tick-local,
  /// read it only between ticks).
  const std::vector<EngineSample>& last_samples() const {
    return last_samples_;
  }

 private:
  void RunLoop();
  /// Builds this window's samples from metric deltas + queue occupancy.
  std::vector<EngineSample> Sample(MicrosT now);
  /// Hot engine, no standby: spread its regions over the active engines.
  bool TryRebalance(const std::vector<EngineSample>& samples);

  dsps::LocalRuntime* runtime_;
  core::LiveRouter* router_;
  Options options_;
  model::LatencyModel model_ = model::LatencyModel::Default();
  model::RollingRefit refit_;

  // Tick-local state (single control thread).
  std::vector<dsps::MetricsRegistry::TaskTotals> prev_totals_;
  std::vector<int> hot_windows_;
  std::vector<EngineSample> last_samples_;
  MicrosT last_tick_micros_ = 0;
  MicrosT cooldown_until_ = 0;

  // Cross-thread counters (stats() may be read while the loop runs).
  std::atomic<uint64_t> ticks_{0};
  std::atomic<uint64_t> refits_{0};
  std::atomic<uint64_t> migrations_{0};
  std::atomic<uint64_t> migration_failures_{0};
  std::atomic<uint64_t> rebalances_{0};
  std::atomic<int> last_from_task_{-1};
  std::atomic<int> last_to_task_{-1};

  Thread loop_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
};

}  // namespace elastic
}  // namespace insight

#endif  // INSIGHT_ELASTIC_CONTROLLER_H_
