#ifndef INSIGHT_ELASTIC_POLICY_H_
#define INSIGHT_ELASTIC_POLICY_H_

#include <string>
#include <vector>

#include "common/clock.h"

namespace insight {
namespace elastic {

/// Thresholds governing when the elastic controller acts (Section 4.2's
/// "dynamic" half: the system reacts to observed load instead of a static
/// plan). A trigger with value 0 is disabled; an engine is "hot" when any
/// enabled trigger is crossed, and action requires the streak to hold for
/// `min_hot_windows` consecutive decision windows — one noisy window never
/// moves state.
struct Policy {
  /// Per-task execute-latency p99 ceiling (microseconds). 0 = off.
  double p99_target_micros = 0.0;
  /// Storm capacity saturation watermark (fraction of the window spent
  /// executing; ~1.0 = saturated). 0 = off.
  double capacity_high = 0.9;
  /// Input-queue occupancy watermark, fraction of queue_capacity. 0 = off.
  double occupancy_high = 0.75;
  /// Shed fraction (shed / offered) above which the engine is hot. 0 = off.
  double shed_rate_threshold = 0.0;
  /// Consecutive hot decision windows before the controller acts.
  int min_hot_windows = 2;
  /// No further action this long after a migration or rebalance: the moved
  /// load needs a few windows to show up in the signals, and reacting to
  /// the transient would oscillate.
  MicrosT cooldown_micros = 5'000'000;
  /// Lifetime migration budget; < 0 = unlimited.
  int max_migrations = 8;
  /// Feed monitor windows into model::RollingRefit and recalibrate
  /// Function 1 live.
  bool enable_model_refit = true;
  /// When an engine is hot but no standby target exists, re-partition its
  /// regions across the active engines instead (core::PlanRebalance).
  bool allow_region_rebalance = true;
  double rebalance_target_imbalance = 1.25;
  size_t rebalance_max_moves = 8;
};

/// One engine task's signals over a decision window, as the pure decision
/// functions below see them. The controller builds these from metric deltas;
/// unit tests build them synthetically.
struct EngineSample {
  int task = 0;
  /// The current routing sends this task traffic (migration source pool).
  bool routed = true;
  uint64_t executed = 0;
  double p99_micros = 0.0;
  double capacity = 0.0;
  double occupancy = 0.0;
  double shed_rate = 0.0;
  /// Model-predicted co-located latency of this engine (Function 3); used
  /// to rank candidate targets — lower predicted latency wins. 0 = unknown
  /// (occupancy ranks instead).
  double predicted_latency_micros = 0.0;
  /// Consecutive decision windows this task has been hot, tracked by the
  /// caller across windows (IsHot judges a single window).
  int hot_windows = 0;
};

/// Why DecideMigration picked (or declined) its action.
struct Decision {
  bool migrate = false;
  int from_task = -1;
  int to_task = -1;
  std::string reason;
};

/// Whether one window's signals cross any enabled Policy trigger.
bool IsHot(const EngineSample& sample, const Policy& policy);

/// Severity of a hot sample: the worst ratio of signal to its enabled
/// threshold (1.0 = exactly at a watermark). 0 when nothing is enabled.
double HotScore(const EngineSample& sample, const Policy& policy);

/// Pure decision function (the unit-test surface): picks the hottest routed
/// engine with a streak of at least `min_hot_windows` as the source and the
/// best idle standby (never hot this window, lowest predicted latency, then
/// lowest occupancy) as the target. No eligible pair = no migration, with
/// the reason spelled out.
Decision DecideMigration(const std::vector<EngineSample>& samples,
                         const Policy& policy);

}  // namespace elastic
}  // namespace insight

#endif  // INSIGHT_ELASTIC_POLICY_H_
