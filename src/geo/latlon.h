#ifndef INSIGHT_GEO_LATLON_H_
#define INSIGHT_GEO_LATLON_H_

#include <cmath>

namespace insight {
namespace geo {

/// WGS84 coordinate in degrees. Dublin city spans roughly
/// lat [53.28, 53.42], lon [-6.45, -6.05].
struct LatLon {
  double lat = 0.0;
  double lon = 0.0;

  bool operator==(const LatLon& o) const { return lat == o.lat && lon == o.lon; }
};

inline double DegToRad(double deg) { return deg * 3.14159265358979323846 / 180.0; }
inline double RadToDeg(double rad) { return rad * 180.0 / 3.14159265358979323846; }

/// Great-circle distance in meters (haversine, mean Earth radius).
double HaversineMeters(const LatLon& a, const LatLon& b);

/// Initial bearing from `a` to `b` in degrees, [0, 360).
double BearingDegrees(const LatLon& a, const LatLon& b);

/// Smallest absolute difference between two bearings in degrees, [0, 180].
double AngleDifference(double deg_a, double deg_b);

/// Local flat-earth projection around an origin; adequate at city scale
/// (errors < 0.1% over ~20 km). Used by the DENCLUE clustering, which works
/// in meters.
struct LocalProjection {
  explicit LocalProjection(const LatLon& origin);

  /// Meters east (x) / north (y) of the origin.
  void ToXY(const LatLon& p, double* x, double* y) const;
  LatLon FromXY(double x, double y) const;

  LatLon origin;
  double meters_per_deg_lat;
  double meters_per_deg_lon;
};

/// Axis-aligned geographic rectangle. Contains() uses the half-open
/// convention [min, max) so adjacent quadtree cells never both claim a point;
/// the quadtree root is expanded slightly so the true max edge stays inside.
struct BoundingBox {
  double min_lat = 0.0;
  double min_lon = 0.0;
  double max_lat = 0.0;
  double max_lon = 0.0;

  bool Contains(const LatLon& p) const {
    return p.lat >= min_lat && p.lat < max_lat && p.lon >= min_lon &&
           p.lon < max_lon;
  }

  bool Intersects(const BoundingBox& o) const {
    return min_lat < o.max_lat && o.min_lat < max_lat && min_lon < o.max_lon &&
           o.min_lon < max_lon;
  }

  LatLon Center() const {
    return {(min_lat + max_lat) / 2.0, (min_lon + max_lon) / 2.0};
  }
};

}  // namespace geo
}  // namespace insight

#endif  // INSIGHT_GEO_LATLON_H_
