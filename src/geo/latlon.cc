#include "geo/latlon.h"

namespace insight {
namespace geo {

namespace {
constexpr double kEarthRadiusMeters = 6371000.0;
}

double HaversineMeters(const LatLon& a, const LatLon& b) {
  double lat1 = DegToRad(a.lat);
  double lat2 = DegToRad(b.lat);
  double dlat = DegToRad(b.lat - a.lat);
  double dlon = DegToRad(b.lon - a.lon);
  double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
             std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                 std::sin(dlon / 2);
  return 2.0 * kEarthRadiusMeters * std::asin(std::sqrt(h));
}

double BearingDegrees(const LatLon& a, const LatLon& b) {
  double lat1 = DegToRad(a.lat);
  double lat2 = DegToRad(b.lat);
  double dlon = DegToRad(b.lon - a.lon);
  double y = std::sin(dlon) * std::cos(lat2);
  double x = std::cos(lat1) * std::sin(lat2) -
             std::sin(lat1) * std::cos(lat2) * std::cos(dlon);
  double deg = RadToDeg(std::atan2(y, x));
  if (deg < 0) deg += 360.0;
  return deg;
}

double AngleDifference(double deg_a, double deg_b) {
  double d = std::fabs(deg_a - deg_b);
  while (d >= 360.0) d -= 360.0;
  return d > 180.0 ? 360.0 - d : d;
}

LocalProjection::LocalProjection(const LatLon& o) : origin(o) {
  meters_per_deg_lat = 111132.954 - 559.822 * std::cos(2 * DegToRad(o.lat)) +
                       1.175 * std::cos(4 * DegToRad(o.lat));
  meters_per_deg_lon = 111132.954 * std::cos(DegToRad(o.lat));
}

void LocalProjection::ToXY(const LatLon& p, double* x, double* y) const {
  *x = (p.lon - origin.lon) * meters_per_deg_lon;
  *y = (p.lat - origin.lat) * meters_per_deg_lat;
}

LatLon LocalProjection::FromXY(double x, double y) const {
  return {origin.lat + y / meters_per_deg_lat, origin.lon + x / meters_per_deg_lon};
}

}  // namespace geo
}  // namespace insight
