#ifndef INSIGHT_GEO_BUS_STOPS_H_
#define INSIGHT_GEO_BUS_STOPS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "geo/denclue.h"
#include "geo/latlon.h"

namespace insight {
namespace geo {

/// One noisy "bus reached a stop" report, the input of the bus-stop
/// canonicalisation tool of Section 4.1.2.
struct StopReport {
  LatLon position;
  int line_id = 0;
  bool direction = false;
  /// Bearing (degrees) the bus had when entering the stop area.
  double entry_angle_deg = 0.0;
};

/// A canonical bus stop (a DENCLUE subcluster). Clusters found by DENCLUE are
/// split further by the average entry angle per (line, direction) so that the
/// two directions of a road get distinct stops.
struct BusStop {
  int64_t id = 0;
  LatLon center;
  /// Representative entry angle of the subcluster.
  double angle_deg = 0.0;
  /// (line, direction) pairs observed at this subcluster.
  std::vector<std::pair<int, bool>> lines;
  /// Parent DENCLUE cluster.
  int cluster_id = 0;
  size_t report_count = 0;
};

/// Builds canonical stops from noisy reports and answers nearest-stop queries
/// for new (position, line, direction) tuples.
class BusStopIndex {
 public:
  struct Options {
    Denclue::Options denclue;
    /// Subclusters within one cluster merge when their mean entry angles are
    /// closer than this (degrees).
    double angle_split_deg = 60.0;
    /// Reports farther than this from every stop get kInvalidStop (meters).
    double max_assign_distance = 250.0;
  };

  BusStopIndex() = default;
  explicit BusStopIndex(const Options& options) : options_(options) {}

  /// Runs DENCLUE + angle splitting over the reports. Replaces any previous
  /// content. Returns the number of canonical stops.
  size_t Build(const std::vector<StopReport>& reports);

  /// Closest canonical stop for a new observation; prefers subclusters that
  /// have seen the same (line, direction), falling back to the nearest by
  /// angle. Returns -1 when nothing is within max_assign_distance.
  int64_t Locate(const LatLon& position, int line_id, bool direction) const;

  const std::vector<BusStop>& stops() const { return stops_; }
  Result<BusStop> GetStop(int64_t id) const;

 private:
  Options options_;
  std::vector<BusStop> stops_;
  // Projection origin captured at Build() so Locate() maps queries the same way.
  bool has_projection_ = false;
  LatLon projection_origin_;
};

}  // namespace geo
}  // namespace insight

#endif  // INSIGHT_GEO_BUS_STOPS_H_
