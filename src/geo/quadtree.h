#ifndef INSIGHT_GEO_QUADTREE_H_
#define INSIGHT_GEO_QUADTREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "geo/latlon.h"

namespace insight {
namespace geo {

/// Identifier of a quadtree region. Stable across queries; assigned in
/// insertion-independent breadth-first order after Build().
using RegionId = int64_t;
constexpr RegionId kInvalidRegion = -1;

/// Region quadtree (Section 4.1.1). Built by inserting "important
/// coordinates" of the city (e.g. main road segments) and splitting any cell
/// holding more than `capacity` points into four equal sub-regions. Because
/// seeds are not uniformly distributed, the resulting tree is unbalanced —
/// exactly the behaviour Figure 6 shows.
///
/// Layers: the root is layer 0, its children layer 1, etc. Rules monitor a
/// layer of the tree; a point's region at layer L is the node at depth L on
/// its root-to-leaf path, or the leaf itself when the path is shorter.
class RegionQuadtree {
 public:
  struct Options {
    /// Maximum seed points a cell may hold before splitting.
    size_t capacity = 8;
    /// Hard depth limit; cells at this depth never split.
    int max_depth = 10;
  };

  struct RegionInfo {
    RegionId id = kInvalidRegion;
    BoundingBox box;
    int layer = 0;
    bool is_leaf = false;
    size_t seed_count = 0;
  };

  RegionQuadtree(const BoundingBox& bounds, const Options& options);

  /// Inserts a seed point. Fails with InvalidArgument for points outside the
  /// root bounds and FailedPrecondition after Build().
  Status Insert(const LatLon& p);

  /// Freezes the tree and assigns region ids. Idempotent.
  void Build();

  /// Region containing p at the given layer (clamped to the leaf when the
  /// local subtree is shallower). Returns kInvalidRegion for out-of-bounds
  /// points. Requires Build().
  RegionId Locate(const LatLon& p, int layer) const;

  /// Deepest region containing p.
  RegionId LocateLeaf(const LatLon& p) const;

  /// All regions at exactly the given layer (leaves shallower than the layer
  /// are *not* included; use RegionsCoveringLayer for full coverage).
  std::vector<RegionInfo> RegionsAtLayer(int layer) const;

  /// The set of regions a layer-L rule actually monitors: nodes at depth L
  /// plus leaves shallower than L. Together they tile the whole map.
  std::vector<RegionInfo> RegionsCoveringLayer(int layer) const;

  /// All leaf regions.
  std::vector<RegionInfo> Leaves() const;

  /// Regions at a layer whose boxes intersect the query box.
  std::vector<RegionInfo> Query(const BoundingBox& box, int layer) const;

  /// Info for an id assigned by Build().
  Result<RegionInfo> GetRegion(RegionId id) const;

  /// Deepest layer present in the tree.
  int max_layer() const { return max_layer_; }
  size_t num_regions() const { return regions_.size(); }
  size_t num_seeds() const { return num_seeds_; }
  bool built() const { return built_; }
  const BoundingBox& bounds() const { return root_->box; }

 private:
  struct Node {
    BoundingBox box;
    int depth = 0;
    RegionId id = kInvalidRegion;
    std::vector<LatLon> seeds;
    size_t subtree_seed_count = 0;
    std::unique_ptr<Node> children[4];

    bool is_leaf() const { return children[0] == nullptr; }
  };

  void SplitIfNeeded(Node* node);
  const Node* Descend(const LatLon& p, int max_layer) const;
  RegionInfo MakeInfo(const Node* node) const;

  Options options_;
  std::unique_ptr<Node> root_;
  std::vector<const Node*> regions_;  // indexed by RegionId after Build()
  size_t num_seeds_ = 0;
  int max_layer_ = 0;
  bool built_ = false;
};

/// Builds the Dublin quadtree used throughout the examples and benches:
/// seeds are synthetic "main road" coordinates concentrated in the city
/// centre so the tree is unbalanced like the paper's Figure 6.
RegionQuadtree BuildDublinQuadtree(uint64_t seed, size_t num_road_points = 600,
                                   RegionQuadtree::Options options = {});

/// The bounding box we use for Dublin city.
BoundingBox DublinBounds();

}  // namespace geo
}  // namespace insight

#endif  // INSIGHT_GEO_QUADTREE_H_
