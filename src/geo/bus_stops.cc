#include "geo/bus_stops.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace insight {
namespace geo {

size_t BusStopIndex::Build(const std::vector<StopReport>& reports) {
  stops_.clear();
  has_projection_ = false;
  if (reports.empty()) return 0;

  // Project around the reports' centroid.
  double clat = 0.0, clon = 0.0;
  for (const auto& r : reports) {
    clat += r.position.lat;
    clon += r.position.lon;
  }
  projection_origin_ = {clat / static_cast<double>(reports.size()),
                        clon / static_cast<double>(reports.size())};
  has_projection_ = true;
  LocalProjection proj(projection_origin_);

  std::vector<Denclue::Point> points(reports.size());
  for (size_t i = 0; i < reports.size(); ++i) {
    proj.ToXY(reports[i].position, &points[i].x, &points[i].y);
  }

  Denclue denclue(options_.denclue);
  Denclue::ClusterResult clusters = denclue.Cluster(points);

  // Per cluster: average entry angle per (line, direction), then group those
  // (line, direction) keys into angle subclusters.
  struct LineDirStats {
    double sum_sin = 0.0, sum_cos = 0.0;
    double sum_x = 0.0, sum_y = 0.0;
    size_t count = 0;
    double MeanAngle() const { return NormalizeDeg(std::atan2(sum_sin, sum_cos)); }
    static double NormalizeDeg(double rad) {
      double deg = RadToDeg(rad);
      if (deg < 0) deg += 360.0;
      return deg;
    }
  };
  std::map<std::pair<int, std::pair<int, bool>>, LineDirStats> stats;
  for (size_t i = 0; i < reports.size(); ++i) {
    int cluster = clusters.labels[i];
    if (cluster < 0) continue;
    auto key = std::make_pair(cluster,
                              std::make_pair(reports[i].line_id, reports[i].direction));
    LineDirStats& s = stats[key];
    double rad = DegToRad(reports[i].entry_angle_deg);
    s.sum_sin += std::sin(rad);
    s.sum_cos += std::cos(rad);
    s.sum_x += points[i].x;
    s.sum_y += points[i].y;
    ++s.count;
  }

  // Greedy angle grouping inside each cluster: each (line, dir) joins the
  // first subcluster whose representative angle is within angle_split_deg,
  // otherwise starts a new subcluster.
  struct SubCluster {
    double angle_deg = 0.0;
    double sum_x = 0.0, sum_y = 0.0;
    size_t count = 0;
    std::vector<std::pair<int, bool>> lines;
  };
  std::map<int, std::vector<SubCluster>> per_cluster;
  for (const auto& [key, s] : stats) {
    int cluster = key.first;
    double angle = s.MeanAngle();
    auto& subs = per_cluster[cluster];
    SubCluster* target = nullptr;
    for (auto& sub : subs) {
      if (AngleDifference(sub.angle_deg, angle) <= options_.angle_split_deg) {
        target = &sub;
        break;
      }
    }
    if (target == nullptr) {
      subs.emplace_back();
      target = &subs.back();
      target->angle_deg = angle;
    }
    target->sum_x += s.sum_x;
    target->sum_y += s.sum_y;
    target->count += s.count;
    target->lines.push_back(key.second);
  }

  int64_t next_id = 0;
  for (auto& [cluster, subs] : per_cluster) {
    for (auto& sub : subs) {
      BusStop stop;
      stop.id = next_id++;
      stop.cluster_id = cluster;
      stop.angle_deg = sub.angle_deg;
      stop.lines = std::move(sub.lines);
      std::sort(stop.lines.begin(), stop.lines.end());
      stop.report_count = sub.count;
      stop.center = proj.FromXY(sub.sum_x / static_cast<double>(sub.count),
                                sub.sum_y / static_cast<double>(sub.count));
      stops_.push_back(std::move(stop));
    }
  }
  return stops_.size();
}

int64_t BusStopIndex::Locate(const LatLon& position, int line_id,
                             bool direction) const {
  if (stops_.empty() || !has_projection_) return -1;
  const std::pair<int, bool> key{line_id, direction};
  double best_known = std::numeric_limits<double>::infinity();
  int64_t best_known_id = -1;
  double best_any = std::numeric_limits<double>::infinity();
  int64_t best_any_id = -1;
  for (const BusStop& stop : stops_) {
    double d = HaversineMeters(position, stop.center);
    if (d < best_any) {
      best_any = d;
      best_any_id = stop.id;
    }
    if (std::binary_search(stop.lines.begin(), stop.lines.end(), key) &&
        d < best_known) {
      best_known = d;
      best_known_id = stop.id;
    }
  }
  if (best_known_id >= 0 && best_known <= options_.max_assign_distance) {
    return best_known_id;
  }
  if (best_any <= options_.max_assign_distance) return best_any_id;
  return -1;
}

Result<BusStop> BusStopIndex::GetStop(int64_t id) const {
  for (const BusStop& s : stops_) {
    if (s.id == id) return s;
  }
  return Status::NotFound("no bus stop with id " + std::to_string(id));
}

}  // namespace geo
}  // namespace insight
