#include "geo/quadtree.h"

#include <deque>

#include "common/rng.h"

namespace insight {
namespace geo {

RegionQuadtree::RegionQuadtree(const BoundingBox& bounds, const Options& options)
    : options_(options) {
  root_ = std::make_unique<Node>();
  // Expand the max edge slightly so points on the nominal boundary fall
  // inside the half-open Contains().
  BoundingBox b = bounds;
  double eps_lat = (b.max_lat - b.min_lat) * 1e-9;
  double eps_lon = (b.max_lon - b.min_lon) * 1e-9;
  b.max_lat += eps_lat;
  b.max_lon += eps_lon;
  root_->box = b;
}

Status RegionQuadtree::Insert(const LatLon& p) {
  if (built_) {
    return Status::FailedPrecondition("quadtree is frozen; Insert after Build()");
  }
  if (!root_->box.Contains(p)) {
    return Status::InvalidArgument("point outside quadtree bounds");
  }
  Node* node = root_.get();
  while (!node->is_leaf()) {
    ++node->subtree_seed_count;
    for (auto& child : node->children) {
      if (child->box.Contains(p)) {
        node = child.get();
        break;
      }
    }
  }
  node->seeds.push_back(p);
  ++node->subtree_seed_count;
  ++num_seeds_;
  SplitIfNeeded(node);
  return Status::OK();
}

void RegionQuadtree::SplitIfNeeded(Node* node) {
  if (node->seeds.size() <= options_.capacity) return;
  if (node->depth >= options_.max_depth) return;
  double mid_lat = (node->box.min_lat + node->box.max_lat) / 2.0;
  double mid_lon = (node->box.min_lon + node->box.max_lon) / 2.0;
  const BoundingBox quads[4] = {
      {node->box.min_lat, node->box.min_lon, mid_lat, mid_lon},  // SW
      {node->box.min_lat, mid_lon, mid_lat, node->box.max_lon},  // SE
      {mid_lat, node->box.min_lon, node->box.max_lat, mid_lon},  // NW
      {mid_lat, mid_lon, node->box.max_lat, node->box.max_lon},  // NE
  };
  for (int i = 0; i < 4; ++i) {
    node->children[i] = std::make_unique<Node>();
    node->children[i]->box = quads[i];
    node->children[i]->depth = node->depth + 1;
  }
  for (const LatLon& s : node->seeds) {
    for (auto& child : node->children) {
      if (child->box.Contains(s)) {
        child->seeds.push_back(s);
        ++child->subtree_seed_count;
        break;
      }
    }
  }
  node->seeds.clear();
  for (auto& child : node->children) SplitIfNeeded(child.get());
}

void RegionQuadtree::Build() {
  if (built_) return;
  built_ = true;
  regions_.clear();
  std::deque<Node*> queue{root_.get()};
  while (!queue.empty()) {
    Node* n = queue.front();
    queue.pop_front();
    n->id = static_cast<RegionId>(regions_.size());
    regions_.push_back(n);
    if (n->depth > max_layer_) max_layer_ = n->depth;
    if (!n->is_leaf()) {
      for (auto& c : n->children) queue.push_back(c.get());
    }
  }
}

const RegionQuadtree::Node* RegionQuadtree::Descend(const LatLon& p,
                                                    int max_layer) const {
  if (!root_->box.Contains(p)) return nullptr;
  const Node* node = root_.get();
  while (node->depth < max_layer && !node->is_leaf()) {
    const Node* next = nullptr;
    for (const auto& child : node->children) {
      if (child->box.Contains(p)) {
        next = child.get();
        break;
      }
    }
    if (next == nullptr) break;  // numeric edge case; stay at current node
    node = next;
  }
  return node;
}

RegionId RegionQuadtree::Locate(const LatLon& p, int layer) const {
  if (!built_) return kInvalidRegion;
  const Node* n = Descend(p, layer);
  return n == nullptr ? kInvalidRegion : n->id;
}

RegionId RegionQuadtree::LocateLeaf(const LatLon& p) const {
  return Locate(p, options_.max_depth + 1);
}

RegionQuadtree::RegionInfo RegionQuadtree::MakeInfo(const Node* node) const {
  RegionInfo info;
  info.id = node->id;
  info.box = node->box;
  info.layer = node->depth;
  info.is_leaf = node->is_leaf();
  info.seed_count = node->subtree_seed_count;
  return info;
}

std::vector<RegionQuadtree::RegionInfo> RegionQuadtree::RegionsAtLayer(
    int layer) const {
  std::vector<RegionInfo> out;
  for (const Node* n : regions_) {
    if (n->depth == layer) out.push_back(MakeInfo(n));
  }
  return out;
}

std::vector<RegionQuadtree::RegionInfo> RegionQuadtree::RegionsCoveringLayer(
    int layer) const {
  std::vector<RegionInfo> out;
  for (const Node* n : regions_) {
    if (n->depth == layer || (n->is_leaf() && n->depth < layer)) {
      out.push_back(MakeInfo(n));
    }
  }
  return out;
}

std::vector<RegionQuadtree::RegionInfo> RegionQuadtree::Leaves() const {
  std::vector<RegionInfo> out;
  for (const Node* n : regions_) {
    if (n->is_leaf()) out.push_back(MakeInfo(n));
  }
  return out;
}

std::vector<RegionQuadtree::RegionInfo> RegionQuadtree::Query(
    const BoundingBox& box, int layer) const {
  std::vector<RegionInfo> out;
  for (const RegionInfo& info : RegionsCoveringLayer(layer)) {
    if (info.box.Intersects(box)) out.push_back(info);
  }
  return out;
}

Result<RegionQuadtree::RegionInfo> RegionQuadtree::GetRegion(RegionId id) const {
  if (!built_) return Status::FailedPrecondition("quadtree not built");
  if (id < 0 || static_cast<size_t>(id) >= regions_.size()) {
    return Status::NotFound("no region with id " + std::to_string(id));
  }
  return MakeInfo(regions_[static_cast<size_t>(id)]);
}

BoundingBox DublinBounds() { return {53.28, -6.45, 53.42, -6.05}; }

RegionQuadtree BuildDublinQuadtree(uint64_t seed, size_t num_road_points,
                                   RegionQuadtree::Options options) {
  BoundingBox bounds = DublinBounds();
  RegionQuadtree tree(bounds, options);
  Rng rng(seed);
  LatLon centre{53.3498, -6.2603};  // city centre (O'Connell Bridge)
  // 70% of the "main road" seeds cluster around the centre; the remainder are
  // spread uniformly, mimicking the uneven seed distribution of Figure 6.
  size_t accepted = 0;
  while (accepted < num_road_points) {
    LatLon p;
    if (rng.Bernoulli(0.7)) {
      p.lat = rng.Gaussian(centre.lat, 0.012);
      p.lon = rng.Gaussian(centre.lon, 0.025);
    } else {
      p.lat = rng.Uniform(bounds.min_lat, bounds.max_lat);
      p.lon = rng.Uniform(bounds.min_lon, bounds.max_lon);
    }
    if (tree.Insert(p).ok()) ++accepted;  // redraw out-of-bounds samples
  }
  tree.Build();
  return tree;
}

}  // namespace geo
}  // namespace insight
