#include "geo/denclue.h"

#include <cmath>

namespace insight {
namespace geo {

double Denclue::DensityAt(const std::vector<Point>& points, double x,
                          double y) const {
  double sigma2 = options_.sigma * options_.sigma;
  double density = 0.0;
  for (const Point& p : points) {
    double dx = p.x - x;
    double dy = p.y - y;
    density += std::exp(-(dx * dx + dy * dy) / (2.0 * sigma2));
  }
  return density;
}

Denclue::Point Denclue::ClimbToAttractor(const std::vector<Point>& points,
                                         Point start) const {
  // Mean-shift style ascent: move to the kernel-weighted mean of the data,
  // which follows the density gradient for Gaussian kernels.
  Point cur = start;
  double sigma2 = options_.sigma * options_.sigma;
  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    double wx = 0.0, wy = 0.0, wsum = 0.0;
    for (const Point& p : points) {
      double dx = p.x - cur.x;
      double dy = p.y - cur.y;
      double w = std::exp(-(dx * dx + dy * dy) / (2.0 * sigma2));
      wx += w * p.x;
      wy += w * p.y;
      wsum += w;
    }
    if (wsum <= 1e-12) break;
    Point next{wx / wsum, wy / wsum};
    double moved = std::hypot(next.x - cur.x, next.y - cur.y);
    cur = next;
    if (moved < options_.convergence_epsilon) break;
  }
  return cur;
}

Denclue::ClusterResult Denclue::Cluster(const std::vector<Point>& points) const {
  ClusterResult result;
  result.labels.assign(points.size(), -1);
  if (points.empty()) return result;

  std::vector<Point> attractors(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    attractors[i] = ClimbToAttractor(points, points[i]);
  }

  // Group attractors by proximity (single-linkage over the merge distance,
  // implemented greedily against the representative center).
  for (size_t i = 0; i < points.size(); ++i) {
    if (options_.min_density > 0.0 &&
        DensityAt(points, attractors[i].x, attractors[i].y) < options_.min_density) {
      result.labels[i] = -1;
      continue;
    }
    int assigned = -1;
    for (size_t c = 0; c < result.centers.size(); ++c) {
      double d = std::hypot(attractors[i].x - result.centers[c].x,
                            attractors[i].y - result.centers[c].y);
      if (d <= options_.attractor_merge_distance) {
        assigned = static_cast<int>(c);
        break;
      }
    }
    if (assigned < 0) {
      assigned = static_cast<int>(result.centers.size());
      result.centers.push_back(attractors[i]);
    }
    result.labels[i] = assigned;
  }
  result.num_clusters = result.centers.size();
  return result;
}

}  // namespace geo
}  // namespace insight
