#ifndef INSIGHT_GEO_DENCLUE_H_
#define INSIGHT_GEO_DENCLUE_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace insight {
namespace geo {

/// DENCLUE density-based clustering (Hinneburg & Keim, KDD'98) specialised to
/// 2-D points in meters, as used in Section 4.1.2 to derive canonical bus
/// stops from noisy GPS stop reports: a Gaussian kernel (sigma = 20 m by
/// default) is placed on every point, each point hill-climbs the summed
/// density field to its *density attractor*, and points whose attractors are
/// within `attractor_merge_distance` form one cluster.
class Denclue {
 public:
  struct Options {
    /// Gaussian kernel bandwidth in meters (paper: 20 m).
    double sigma = 20.0;
    /// Attractors closer than this merge into one cluster.
    double attractor_merge_distance = 15.0;
    /// Hill-climbing step control.
    double step = 5.0;
    size_t max_iterations = 100;
    double convergence_epsilon = 0.05;
    /// Points whose attractor density is below `min_density` are labelled
    /// noise (cluster id -1). Density is in kernel units (each point
    /// contributes at most 1).
    double min_density = 0.0;
  };

  struct Point {
    double x = 0.0;
    double y = 0.0;
  };

  struct ClusterResult {
    /// Cluster id per input point; -1 means noise.
    std::vector<int> labels;
    /// Attractor position per cluster (density maximum).
    std::vector<Point> centers;
    size_t num_clusters = 0;
  };

  explicit Denclue(const Options& options) : options_(options) {}

  /// Clusters the points. Empty input yields an empty result.
  ClusterResult Cluster(const std::vector<Point>& points) const;

  /// Kernel density estimate at (x, y) given the data set. Exposed for tests
  /// and for density-threshold tuning.
  double DensityAt(const std::vector<Point>& points, double x, double y) const;

 private:
  Point ClimbToAttractor(const std::vector<Point>& points, Point start) const;

  Options options_;
};

}  // namespace geo
}  // namespace insight

#endif  // INSIGHT_GEO_DENCLUE_H_
