#ifndef INSIGHT_DSPS_PAYLOAD_POOL_H_
#define INSIGHT_DSPS_PAYLOAD_POOL_H_

#include <cstddef>
#include <new>
#include <vector>

#include "common/static_analysis.h"

namespace insight {
namespace dsps {
namespace detail {

/// Thread-local cache of the fixed-size blocks allocate_shared produces for
/// tuple payloads (control block fused with the vector header). Blocks are
/// returned to the cache of whichever thread drops the last reference, and
/// each thread allocates from its own cache — no locks, no cross-thread
/// traffic. In a pipeline this closes the loop on every interior executor:
/// the thread that frees its input's payload immediately reuses the block
/// for its own emission, eliminating one allocation per forwarded tuple.
/// (Source threads still hit the allocator — their blocks die downstream —
/// and terminal threads cap out and release overflow normally.)
class TlsBlockCache {
 public:
  ~TlsBlockCache() {
    for (void* block : blocks_) ::operator delete(block);
  }

  void* Take(size_t size) TMS_NO_ALLOC {
    if (size == block_size_ && !blocks_.empty()) {
      void* block = blocks_.back();
      blocks_.pop_back();
      return block;
    }
    return nullptr;
  }

  /// True if the block was cached; false means the caller must free it.
  bool Put(void* block, size_t size) TMS_NO_ALLOC {
    if (block_size_ == 0) block_size_ = size;
    if (size != block_size_ || blocks_.size() >= kMaxBlocks) return false;
    // TMS_ANALYZE_EXEMPT(bounded warm-up: the freelist vector grows to at
    // most kMaxBlocks pointers once, then every Put reuses that capacity)
    blocks_.push_back(block);
    return true;
  }

 private:
  /// Bounded waste per thread: kMaxBlocks × ~(control block + vector header).
  static constexpr size_t kMaxBlocks = 256;

  size_t block_size_ = 0;  // fixed on first Put; foreign sizes bypass
  std::vector<void*> blocks_;
};

inline TlsBlockCache& PayloadBlockCache() {
  static thread_local TlsBlockCache cache;
  return cache;
}

/// Stateless allocator handed to allocate_shared for tuple payloads; all
/// state lives in the per-thread cache above.
template <typename T>
struct PayloadAllocator {
  using value_type = T;

  PayloadAllocator() = default;
  template <typename U>
  PayloadAllocator(const PayloadAllocator<U>&) {}  // NOLINT(runtime/explicit): rebind conversion required by allocator_traits

  T* allocate(size_t n) {
    if (n == 1) {
      if (void* block = PayloadBlockCache().Take(sizeof(T))) {
        return static_cast<T*>(block);
      }
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, size_t n) {
    if (n == 1 && PayloadBlockCache().Put(p, sizeof(T))) return;
    ::operator delete(p);
  }

  template <typename U>
  bool operator==(const PayloadAllocator<U>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const PayloadAllocator<U>&) const {
    return false;
  }
};

}  // namespace detail
}  // namespace dsps
}  // namespace insight

#endif  // INSIGHT_DSPS_PAYLOAD_POOL_H_
