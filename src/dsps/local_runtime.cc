#include "dsps/local_runtime.h"

#include <chrono>
#include <functional>

#include "cep/view.h"
#include "common/bytes.h"
#include "common/check.h"
#include "common/logging.h"

namespace insight {
namespace dsps {

namespace {

uint64_t HashValues(const std::vector<Value>& values,
                    const std::vector<int>& indexes) {
  // Hash the Value directly (no ToString round-trip). cep::ValueHash gives
  // Equals-consistent hashing, so 5 and 5.0 route to the same task.
  cep::ValueHash value_hash;
  uint64_t h = 1469598103934665603ULL;
  for (int idx : indexes) {
    h ^= static_cast<uint64_t>(value_hash(values[static_cast<size_t>(idx)]));
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t Splitmix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Identity salt of one spout task: message ids are only unique per spout
/// task (each spout numbers its own stream), so every message-id-derived key
/// must fold the emitting task in or two spouts reusing one id space would
/// collide in the acker and the replay buffer.
uint64_t SpoutScope(int spout_component, int spout_task) {
  uint64_t packed =
      (static_cast<uint64_t>(static_cast<uint32_t>(spout_component)) << 32) |
      static_cast<uint64_t>(static_cast<uint32_t>(spout_task));
  return Splitmix(packed + 0x8f1bbcdcbfa53e0bULL);
}

/// Acker key of (spout task, message, attempt). Mixing the attempt in means
/// tuples of a timed-out attempt still draining through the topology ack a
/// key that no longer exists, instead of corrupting the replay's fresh
/// tree; mixing the spout scope in keeps same-numbered messages of
/// different spouts on distinct trees.
uint64_t RootKey(int spout_component, int spout_task, uint64_t message_id,
                 int attempt) {
  uint64_t z = Splitmix((message_id ^ SpoutScope(spout_component, spout_task)) +
                        0x9e3779b97f4a7c15ULL *
                            static_cast<uint64_t>(attempt + 1));
  return z == 0 ? 1 : z;
}

/// Task checkpoint container ("TCK1"): {magic, version, has_ledger u8,
/// [ledger], bolt blob (length-prefixed)}. The container wraps the bolt's
/// own versioned snapshot, so the dedup ledger and the state it protects
/// are always persisted and restored as one atomic unit.
constexpr uint32_t kTaskSnapshotMagic = 0x314b4354;  // "TCK1"
constexpr uint32_t kTaskSnapshotVersion = 1;

}  // namespace

/// Routes emissions of one task. Bound to the task for its whole lifetime;
/// the current input's spout_time is set before each Execute call so output
/// tuples inherit their origin time, and — under acking — the input's root
/// key so emitted tuples are anchored to the same tree.
class LocalRuntime::TaskCollector : public Collector {
 public:
  TaskCollector(LocalRuntime* runtime, int component_index, int task_index,
                bool is_spout)
      : runtime_(runtime),
        component_index_(component_index),
        task_index_(task_index),
        is_spout_(is_spout),
        declared_priority_(
            runtime->topology_.components()[static_cast<size_t>(
                                                component_index)]
                .priority),
        current_priority_(declared_priority_) {
    outbox_.per_task.resize(static_cast<size_t>(runtime->total_tasks_));
    const overload::Options& opts = runtime->options_.overload;
    if (opts.enable_squelch) {
      squelch_ = std::make_unique<overload::SourceSquelch>(
          opts, runtime->options_.clock);
    }
    // kHigh components keep the base flush threshold: growing their blocks
    // would trade away exactly the latency the tier exists to protect.
    if (opts.enable_adaptive_batch &&
        declared_priority_ != TuplePriority::kHigh) {
      adaptive_ = std::make_unique<overload::AdaptiveBatch>(
          runtime->options_.emit_batch, opts.adaptive_batch_max);
      outbox_.adaptive = adaptive_.get();
    }
  }

  void Emit(std::vector<Value> values) override {
    Tuple tuple(runtime_->fields_[static_cast<size_t>(component_index_)],
                std::move(values), current_spout_time_);
    tuple.set_priority(current_priority_);
    uint64_t* batch = nullptr;
    uint64_t* dedup_seq = nullptr;
    if (current_root_key_ != 0) {
      tuple.set_root_key(current_root_key_);
      batch = &ack_batch_;
      if (current_dedup_id_ != 0) dedup_seq = &dedup_seq_;
    }
    MaybeTraceSpoutEmit(&tuple);
    runtime_->Route(component_index_, task_index_, tuple, /*direct_task=*/-1,
                    &emitted_, batch, current_dedup_id_, dedup_seq, &outbox_,
                    squelch_.get());
  }

  void EmitDirect(int target_task, std::vector<Value> values) override {
    Tuple tuple(runtime_->fields_[static_cast<size_t>(component_index_)],
                std::move(values), current_spout_time_);
    tuple.set_priority(current_priority_);
    uint64_t* batch = nullptr;
    uint64_t* dedup_seq = nullptr;
    if (current_root_key_ != 0) {
      tuple.set_root_key(current_root_key_);
      batch = &ack_batch_;
      if (current_dedup_id_ != 0) dedup_seq = &dedup_seq_;
    }
    MaybeTraceSpoutEmit(&tuple);
    runtime_->Route(component_index_, task_index_, tuple, target_task,
                    &emitted_, batch, current_dedup_id_, dedup_seq, &outbox_,
                    squelch_.get());
  }

  void EmitRooted(uint64_t message_id, std::vector<Value> values) override {
    if (is_spout_ && runtime_->options_.enable_acking) {
      runtime_->EmitTracked(component_index_, task_index_, message_id,
                            /*attempt=*/0, std::move(values),
                            current_spout_time_, current_priority_, &emitted_,
                            &outbox_, squelch_.get());
      return;
    }
    Emit(std::move(values));
  }

  void EmitPrioritized(TuplePriority priority,
                       std::vector<Value> values) override {
    TuplePriority saved = current_priority_;
    current_priority_ = priority;
    Emit(std::move(values));
    current_priority_ = saved;
  }

  void EmitRootedPrioritized(TuplePriority priority, uint64_t message_id,
                             std::vector<Value> values) override {
    TuplePriority saved = current_priority_;
    current_priority_ = priority;
    EmitRooted(message_id, std::move(values));
    current_priority_ = saved;
  }

  Outbox* outbox() { return &outbox_; }
  overload::SourceSquelch* squelch() { return squelch_.get(); }

  /// Bolt-side: bind the collector to the input about to be executed.
  void BeginExecute(const Tuple& input) {
    current_spout_time_ = input.spout_time();
    current_root_key_ = input.root_key();
    current_dedup_id_ = input.dedup_id();
    current_trace_id_ = input.trace_id();
    // Emissions inherit the input's shedding tier (a detection derived from
    // a high-priority tuple stays high-priority downstream).
    current_priority_ = input.priority();
    ack_batch_ = 0;
    // Per-execution emission sequence: replayed executions reproduce the
    // same dedup-id chain because the sequence restarts at every input.
    dedup_seq_ = 0;
  }

  void set_current_spout_time(MicrosT t) { current_spout_time_ = t; }
  uint64_t TakeAckBatch() {
    uint64_t b = ack_batch_;
    ack_batch_ = 0;
    return b;
  }
  uint64_t TakeEmitted() {
    uint64_t e = emitted_;
    emitted_ = 0;
    return e;
  }
  int task_index() const { return task_index_; }

 private:
  /// Spout-side trace anchoring for the untracked emit path: each plain
  /// spout Emit is a fresh root emission, so it gets its own sampling
  /// decision. Without acking no final ack exists to close a root span, so
  /// the trace only groups the hop spans (open_root=false). Bolt emissions
  /// inherit the input's trace id from BeginExecute instead. The acked
  /// spout path (EmitRooted -> EmitTracked) never reaches this: there the
  /// runtime samples with an open root that the final ack closes.
  void MaybeTraceSpoutEmit(Tuple* tuple) {
    if (is_spout_ && runtime_->tracer_ != nullptr) {
      current_trace_id_ = runtime_->tracer_->MaybeStartTrace(
          runtime_->options_.clock->NowMicros(), /*open_root=*/false);
    }
    tuple->set_trace_id(current_trace_id_);
  }

  LocalRuntime* runtime_;
  int component_index_;
  int task_index_;
  bool is_spout_;
  /// The component's declared shedding tier: the default for spout
  /// emissions; bolts override per input in BeginExecute.
  TuplePriority declared_priority_;
  TuplePriority current_priority_;
  /// Overload hooks, null unless the matching feature is enabled.
  std::unique_ptr<overload::SourceSquelch> squelch_;
  std::unique_ptr<overload::AdaptiveBatch> adaptive_;
  MicrosT current_spout_time_ = 0;
  uint64_t current_root_key_ = 0;
  uint64_t current_dedup_id_ = 0;
  uint64_t current_trace_id_ = 0;
  uint64_t dedup_seq_ = 0;
  uint64_t ack_batch_ = 0;
  uint64_t emitted_ = 0;
  Outbox outbox_;
};

LocalRuntime::LocalRuntime(Topology topology, Options options)
    : topology_(std::move(topology)), options_(options) {
  if (options_.enable_acking) {
    acker_ = std::make_unique<reliability::Acker>();
    reliability::ReplayPolicy policy;
    policy.max_replays = options_.max_replays;
    policy.backoff_base_micros = options_.replay_backoff_micros;
    policy.backoff_factor = options_.replay_backoff_factor;
    policy.backoff_jitter = options_.replay_backoff_jitter;
    policy.jitter_seed = options_.replay_jitter_seed;
    replay_ = std::make_unique<reliability::ReplayBuffer>(policy);
  }
  if (options_.enable_tracing) {
    observability::Tracer::Options topts;
    topts.sample_rate = options_.trace_sample_rate;
    topts.max_spans = options_.trace_max_spans;
    tracer_ = std::make_unique<observability::Tracer>(topts);
    std::vector<std::string> names;
    for (const ComponentDef& def : topology_.components()) {
      names.push_back(def.name);
    }
    tracer_->SetComponentNames(std::move(names));
  }

  const auto& components = topology_.components();
  fields_.resize(components.size());
  tasks_.resize(components.size());
  routes_.resize(components.size());
  shuffle_counters_ = std::vector<std::atomic<uint64_t>>(components.size());

  for (size_t c = 0; c < components.size(); ++c) {
    const ComponentDef& def = components[c];
    fields_[c] = std::make_shared<const Fields>(def.output_fields);
    metrics_.DeclareComponent(def.name, def.num_tasks);
    for (int t = 0; t < def.num_tasks; ++t) {
      TaskRuntime task;
      task.component_index = static_cast<int>(c);
      task.task_index = t;
      if (def.is_spout) {
        task.spout = def.spout_factory();
        if (options_.enable_acking) {
          task.events = std::make_unique<SpoutEventQueue>();
        }
      } else {
        task.bolt = def.bolt_factory();
        task.input = std::make_unique<TaskQueue>();
      }
      tasks_[c].push_back(std::move(task));
    }
  }

  // Flat global task ids for the outbox staging buffers.
  task_base_.resize(components.size(), 0);
  total_tasks_ = 0;
  for (size_t c = 0; c < components.size(); ++c) {
    task_base_[c] = total_tasks_;
    total_tasks_ += components[c].num_tasks;
  }
  queue_of_.assign(static_cast<size_t>(total_tasks_), nullptr);
  for (size_t c = 0; c < components.size(); ++c) {
    for (size_t t = 0; t < tasks_[c].size(); ++t) {
      queue_of_[static_cast<size_t>(task_base_[c]) + t] =
          tasks_[c][t].input.get();
    }
  }

  // Elastic scheduling: per-task inflow counters, migration phase gates and
  // straggler redirects. Allocated only when migration is enabled — the
  // drain and stage hot paths otherwise test a single bool.
  if (options_.enable_migration) {
    elastic_enabled_ = true;
    task_inbound_ =
        std::vector<std::atomic<int64_t>>(static_cast<size_t>(total_tasks_));
    migration_phase_ =
        std::vector<std::atomic<uint8_t>>(static_cast<size_t>(total_tasks_));
    forward_of_ =
        std::vector<std::atomic<int32_t>>(static_cast<size_t>(total_tasks_));
    for (auto& fwd : forward_of_) fwd.store(-1, std::memory_order_relaxed);
  }

  // Overload protection: per-queue admission gates plus cached metrics
  // handles for shed attribution. All of it exists only when at least one
  // feature is on — otherwise the emit path never touches any of this.
  if (options_.overload.any_enabled()) {
    credit_flow_ = options_.overload.enable_credit_flow;
    shedding_ = options_.overload.enable_load_shedding;
    gates_.resize(static_cast<size_t>(total_tasks_));
    overload_refs_.resize(static_cast<size_t>(total_tasks_));
    for (size_t c = 0; c < components.size(); ++c) {
      for (size_t t = 0; t < tasks_[c].size(); ++t) {
        size_t gid = static_cast<size_t>(task_base_[c]) + t;
        if (queue_of_[gid] == nullptr) continue;  // spout task
        gates_[gid] =
            std::make_unique<overload::QueueGate>(options_.queue_capacity);
        overload_refs_[gid] =
            metrics_.RefFor(components[c].name, static_cast<int>(t));
      }
    }
  }

  // Routing table: for each source component, its subscriber edges.
  for (size_t c = 0; c < components.size(); ++c) {
    for (const Subscription& sub : components[c].subscriptions) {
      const ComponentDef* source = topology_.Find(sub.source);
      INSIGHT_CHECK(source != nullptr);
      size_t source_index = 0;
      for (size_t s = 0; s < components.size(); ++s) {
        if (components[s].name == sub.source) source_index = s;
      }
      RouteTarget target;
      target.component_index = static_cast<int>(c);
      target.grouping = sub.grouping;
      for (const std::string& f : sub.fields) {
        target.field_indexes.push_back(source->output_fields.IndexOf(f));
      }
      routes_[source_index].push_back(std::move(target));
    }
  }

  // Checkpointing: every task whose bolt implements Snapshottable gets a
  // coordinator slot (and, under dedup, a ledger). Decided from the initial
  // bolt instance; factories return the same concrete type on relaunch.
  if (options_.enable_checkpointing) {
    INSIGHT_CHECK(options_.state_store != nullptr)
        << "enable_checkpointing requires a state_store";
    reliability::CheckpointCoordinator::Options copts;
    copts.interval_micros = options_.checkpoint_interval_micros;
    copts.store = options_.state_store;
    copts.clock = options_.clock;
    coordinator_ = std::make_unique<reliability::CheckpointCoordinator>(copts);
    bool any_checkpointed = false;
    for (size_t c = 0; c < components.size(); ++c) {
      for (auto& task : tasks_[c]) {
        if (task.bolt == nullptr ||
            dynamic_cast<Snapshottable*>(task.bolt.get()) == nullptr) {
          continue;
        }
        task.ckpt_slot = coordinator_->RegisterTask(
            components[c].name + "/" + std::to_string(task.task_index));
        if (options_.enable_replay_dedup) {
          task.ledger = std::make_unique<reliability::DedupLedger>(
              options_.dedup_ledger_capacity);
        }
        any_checkpointed = true;
      }
    }
    dedup_enabled_ = options_.enable_replay_dedup && options_.enable_acking &&
                     any_checkpointed;
  }
}

LocalRuntime::~LocalRuntime() { Stop(); }

Status LocalRuntime::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("runtime already started");
  }
  int spout_tasks = 0;
  for (const ComponentDef& def : topology_.components()) {
    if (def.is_spout) spout_tasks += def.num_tasks;
  }
  live_spout_tasks_.store(spout_tasks);
  metrics_.MarkWindowStart(options_.clock->NowMicros());
  if (coordinator_ != nullptr) coordinator_->Start();

  const auto& components = topology_.components();
  for (size_t c = 0; c < components.size(); ++c) {
    for (int e = 0; e < components[c].num_executors; ++e) {
      auto slot = std::make_unique<ExecutorSlot>();
      slot->component_index = static_cast<int>(c);
      slot->executor_index = e;
      executors_.push_back(std::move(slot));
    }
  }
  for (auto& slot : executors_) {
    ExecutorSlot* raw = slot.get();
    slot->thread = Thread([this, raw] { ExecutorLoop(raw); });
  }
  if (options_.monitor_interval_micros > 0) {
    monitor_thread_ = Thread([this] { MonitorLoop(); });
  }
  if (options_.enable_acking || options_.fault_injector != nullptr) {
    supervisor_thread_ = Thread([this] { SupervisorLoop(); });
  }
  return Status::OK();
}

void LocalRuntime::NotifyPossiblyDone() {
  if (live_spout_tasks_.load() == 0 && in_flight_.load() == 0 &&
      pending_roots_.load() == 0) {
    MutexLock lock(done_mutex_);
    done_cv_.NotifyAll();
  }
}

void LocalRuntime::AwaitCompletion() {
  {
    MutexLock lock(done_mutex_);
    while (!(stopping_.load() ||
             (live_spout_tasks_.load() == 0 && in_flight_.load() == 0 &&
              pending_roots_.load() == 0))) {
      done_cv_.Wait(done_mutex_);
    }
  }
  // A naturally drained topology is quiescent: with no live spout task, no
  // pending tree, and no in-flight tuple there is no source of new work, so
  // the counts must still be exactly zero here.
  if (!stopping_.load()) {
    TMS_DCHECK_EQ(in_flight_.load(), int64_t{0})
        << "tuples in flight after quiescent drain";
    TMS_DCHECK_EQ(pending_roots_.load(), size_t{0})
        << "pending trees after quiescent drain";
  }
  Stop();
}

void LocalRuntime::Stop() {
  if (!started_.load()) return;
  bool was_stopping = stopping_.exchange(true);
  // Wake everyone: emitters blocked on full queues, executors on empty ones.
  // The notify must happen while holding the queue mutex: a waiter that
  // checked `stopping_` just before we set it is still between its predicate
  // and the wait — notifying without the lock would be lost and the waiter
  // would block forever (backpressure deadlock on Stop).
  for (auto& component_tasks : tasks_) {
    for (auto& task : component_tasks) {
      if (task.input != nullptr) {
        MutexLock lock(task.input->mutex);
        task.input->not_empty.NotifyAll();
        task.input->not_full.NotifyAll();
      }
    }
  }
  {
    MutexLock lock(done_mutex_);
    done_cv_.NotifyAll();
  }
  if (was_stopping) return;
  // Supervisor first, so it cannot relaunch executor threads underneath the
  // joins below.
  if (supervisor_thread_.joinable()) supervisor_thread_.join();
  for (auto& slot : executors_) {
    if (slot->thread.joinable()) slot->thread.join();
  }
  if (monitor_thread_.joinable()) monitor_thread_.join();
  // Drain-then-join: submitted checkpoints still persist (and flush their
  // deferred acks) before the persister exits.
  if (coordinator_ != nullptr) coordinator_->Stop();
  // Tuples abandoned in input queues are dropped on stop; balance the
  // in-flight count so it provably returns to zero — no leaked in-flight
  // work no matter how Stop interleaved with crashes and relaunches.
  int64_t abandoned = 0;
  for (size_t c = 0; c < tasks_.size(); ++c) {
    for (auto& task : tasks_[c]) {
      if (task.input == nullptr) continue;
      int64_t dropped = 0;
      {
        MutexLock lock(task.input->mutex);
        dropped = static_cast<int64_t>(task.input->queue.size());
        task.input->queue.clear();
      }
      if (dropped > 0) {
        TrackInbound(static_cast<size_t>(task_base_[c] + task.task_index),
                     -dropped);
        abandoned += dropped;
      }
    }
  }
  if (abandoned > 0) in_flight_.fetch_sub(abandoned);
  TMS_DCHECK_EQ(in_flight_.load(), int64_t{0})
      << "in-flight tuples leaked across Stop";
  finished_.store(true);
}

uint64_t LocalRuntime::NextEdgeId() {
  uint64_t z = Splitmix(
      edge_seq_.fetch_add(0x9e3779b97f4a7c15ULL, std::memory_order_relaxed));
  return z == 0 ? 1 : z;
}

void LocalRuntime::Stage(int target_component, int task_index, Tuple tuple,
                         Outbox* outbox) {
  size_t gid =
      static_cast<size_t>(task_base_[static_cast<size_t>(target_component)] +
                          task_index);
  TMS_DCHECK_LT(gid, outbox->per_task.size()) << "staged past the task table";
  TMS_DCHECK(queue_of_[gid] != nullptr)
      << "tuple staged to spout task " << gid << " (spouts have no input)";
  // Tracked tuples must carry their tree edge before they are staged: the
  // edge id was XORed into the emitter's ack batch at Deliver time, and an
  // edge-less copy could never be acked back out of the accumulator.
  TMS_DCHECK(tuple.root_key() == 0 || tuple.edge_id() != 0)
      << "tracked tuple staged without an edge id";
  // Queue-wait spans start here: the staging timestamp covers outbox
  // residency plus the target queue wait, i.e. everything between the
  // emitter's hand and the consumer's Execute. One branch for untraced
  // tuples; the clock is read only for sampled ones.
  if (tuple.trace_id() != 0) {
    tuple.set_trace_enqueue_micros(options_.clock->NowMicros());
  }
  std::vector<Tuple>& block = outbox->per_task[gid];
  // TMS_ANALYZE_EXEMPT(amortized: dirty list and staging blocks are cleared
  // by FlushOutbox with capacity retained, so steady-state staging reuses it)
  if (block.empty()) outbox->dirty.push_back(static_cast<uint32_t>(gid));
  block.push_back(std::move(tuple));  // TMS_ANALYZE_EXEMPT(capacity retained)
  // Counted in flight from the moment it is staged, so the completion
  // predicate can never observe a quiet topology while tuples sit in an
  // outbox.
  in_flight_.fetch_add(1);
  TrackInbound(gid, 1);
  ++outbox->staged;
  size_t threshold = outbox->adaptive != nullptr ? outbox->adaptive->threshold()
                                                 : options_.emit_batch;
  if (outbox->staged >= threshold) {
    FlushOutbox(outbox);
    // Credit mode: a producer that outran its consumers far enough parks in
    // bounded slices until a flush makes progress, so the outbox (and the
    // in-flight count) stays bounded without blocking-on-full semantics.
    if (credit_flow_ &&
        outbox->staged >= options_.overload.max_deferred_tuples) {
      StallForCredits(outbox);
    }
  }
}

void LocalRuntime::FlushOutbox(Outbox* outbox) {
  if (outbox->staged == 0) return;
  bool dropped = false;
  size_t handed_off = 0;  // enqueued + dropped, to balance against staged
  size_t kept = 0;        // left staged awaiting credits (credit mode only)
  size_t write = 0;       // compaction cursor over the dirty list
  double worst_occupancy = 0.0;
  for (size_t read = 0; read < outbox->dirty.size(); ++read) {
    uint32_t gid = outbox->dirty[read];
    std::vector<Tuple>& block = outbox->per_task[gid];
    // Dirty entries are recorded exactly at a block's empty->nonempty
    // transition and cleared together with the blocks, so each entry is
    // unique and its block nonempty; an empty block here means the dirty
    // list and the staging buffers disagree. (A deferred block stays dirty
    // and nonempty, preserving the invariant across flushes.)
    TMS_DCHECK(!block.empty()) << "duplicate dirty entry for task " << gid;
    if (block.empty()) continue;
    TaskQueue* queue = queue_of_[gid];
    overload::QueueGate* gate = gates_.empty() ? nullptr : gates_[gid].get();
    if (gate != nullptr && options_.overload.enable_load_shedding &&
        !stopping_.load()) {
      // Staging-time shed decisions go stale while a block waits for
      // credits; re-check against current occupancy before admitting it.
      size_t shed = ShedStaleTuples(&block, gate, gid);
      if (shed > 0) {
        handed_off += shed;
        dropped = true;  // in-flight count moved: re-check completion
        if (block.empty()) continue;
      }
    }
    const size_t n = block.size();
    if (stopping_.load()) {  // drop on shutdown
      int64_t prev = in_flight_.fetch_sub(static_cast<int64_t>(n));
      TMS_DCHECK_GE(prev, static_cast<int64_t>(n))
          << "in-flight count went negative dropping a block";
      TrackInbound(gid, -static_cast<int64_t>(n));
      handed_off += n;
      block.clear();
      dropped = true;
      continue;
    }
    if (credit_flow_) {
      // Credit admission replaces the blocking wait: no credits means the
      // block simply stays staged — this producer keeps serving its other
      // targets and retries at its next flush point. A deferred block keeps
      // accumulating emissions, so it can outgrow the whole queue capacity;
      // admission must therefore accept a prefix, or a block larger than the
      // remaining credits could never be admitted and the producer would
      // deadlock. `want` strictly decreases per retry, so this terminates.
      size_t take = 0;
      size_t want = n;
      while (want > 0) {
        if (gate->TryAcquire(want)) {
          take = want;
          break;
        }
        int64_t free = gate->capacity() - gate->admitted();
        size_t next =
            free > 0 ? std::min(static_cast<size_t>(free), n) : size_t{0};
        if (next >= want) next = want - 1;  // racing admits: force progress
        want = next;
      }
      if (take == 0) {
        outbox->dirty[write++] = gid;
        kept += n;
        worst_occupancy = 1.0;
        continue;
      }
      MutexLock lock(queue->mutex);
      if (stopping_.load()) {  // raced with Stop: drop, credits back
        gate->Release(take);
        int64_t prev = in_flight_.fetch_sub(static_cast<int64_t>(n));
        TMS_DCHECK_GE(prev, static_cast<int64_t>(n))
            << "in-flight count went negative dropping a block";
        TrackInbound(gid, -static_cast<int64_t>(n));
        handed_off += n;
        block.clear();
        dropped = true;
        continue;
      }
      handed_off += take;
      if (options_.overload.enable_load_shedding) {
        for (size_t k = 0; k < take; ++k) {
          if (block[k].priority() == TuplePriority::kHigh) {
            ++queue->high_count;
          }
        }
      }
      for (size_t k = 0; k < take; ++k) {
        // TMS_ANALYZE_EXEMPT(deque chunk churn: libstdc++ recycles chunks
        // as the consumer pops, and the queue is bounded by queue_capacity)
        queue->queue.push_back(std::move(block[k]));
      }
      if (take == n) {
        block.clear();
      } else {
        // Partial admission: the unadmitted suffix stays staged (and dirty)
        // in FIFO position for the next flush.
        block.erase(block.begin(),
                    block.begin() + static_cast<ptrdiff_t>(take));
        outbox->dirty[write++] = gid;
        kept += n - take;
        worst_occupancy = 1.0;
      }
      size_t sz = queue->queue.size();
      // Exact admission: credit mode can never overshoot capacity.
      TMS_CHECK_LE(sz, options_.queue_capacity)
          << "credit-admitted queue overshot its capacity";
      if (sz > queue->peak_size.load(std::memory_order_relaxed)) {
        queue->peak_size.store(sz, std::memory_order_relaxed);
      }
      queue->not_empty.NotifyOne();
      if (gate->Occupancy() > worst_occupancy) {
        worst_occupancy = gate->Occupancy();
      }
      continue;
    }
    handed_off += n;
    MutexLock lock(queue->mutex);
    while (!stopping_.load() &&
           queue->queue.size() >= options_.queue_capacity) {
      queue->not_full.Wait(queue->mutex);
    }
    if (stopping_.load()) {  // drop on shutdown
      int64_t prev = in_flight_.fetch_sub(static_cast<int64_t>(n));
      TMS_DCHECK_GE(prev, static_cast<int64_t>(n))
          << "in-flight count went negative dropping a block";
      TrackInbound(gid, -static_cast<int64_t>(n));
      block.clear();
      dropped = true;
      continue;
    }
    if (options_.overload.enable_load_shedding) {
      for (const Tuple& t : block) {
        if (t.priority() == TuplePriority::kHigh) ++queue->high_count;
      }
    }
    // TMS_ANALYZE_EXEMPT(deque chunk churn: libstdc++ recycles chunks as the
    // consumer pops, and the queue is bounded by Options::queue_capacity)
    for (Tuple& t : block) queue->queue.push_back(std::move(t));
    block.clear();  // keeps capacity for the next batch
    size_t sz = queue->queue.size();
    // Backpressure overshoot bound: this producer observed size < capacity
    // under the lock before appending its whole block, so occupancy exceeds
    // capacity by strictly fewer than the block's n tuples — at most one
    // block per producer, never more.
    TMS_CHECK_LT(sz, options_.queue_capacity + n)
        << "queue overshot capacity by a full flush block";
    if (sz > queue->peak_size.load(std::memory_order_relaxed)) {
      queue->peak_size.store(sz, std::memory_order_relaxed);
    }
    queue->not_empty.NotifyOne();
    if (gate != nullptr) {
      gate->ForceAcquire(n);
      if (gate->Occupancy() > worst_occupancy) {
        worst_occupancy = gate->Occupancy();
      }
    }
  }
  // FIFO hand-off is per-block: everything staged leaves the outbox in this
  // flush — enqueued in staging order or dropped on shutdown — except blocks
  // deferred for credits, which stay staged (and dirty) for a later flush.
  TMS_DCHECK_EQ(handed_off + kept, outbox->staged)
      << "outbox flushed a different tuple count than was staged";
  outbox->dirty.resize(write);  // TMS_ANALYZE_EXEMPT(shrink only)
  outbox->staged = kept;
  if (outbox->adaptive != nullptr) outbox->adaptive->Update(worst_occupancy);
  if (dropped) NotifyPossiblyDone();
}

size_t LocalRuntime::ShedStaleTuples(std::vector<Tuple>* block,
                                     overload::QueueGate* gate, uint32_t gid) {
  // Project occupancy across the block: each kept tuple raises it, so a
  // large block admitted just below a watermark cannot blow occupancy far
  // past it — the portion that would cross the watermark sheds instead.
  // `projected` is racy across producers, which only softens the watermark
  // by the concurrency degree; the hard capacity bound stays with the gate.
  const double capacity = static_cast<double>(gate->capacity());
  int64_t projected = gate->admitted();
  size_t write = 0;
  size_t shed = 0;
  for (size_t read = 0; read < block->size(); ++read) {
    Tuple& tuple = (*block)[read];
    const TuplePriority priority = tuple.priority();
    const double occupancy = static_cast<double>(projected) / capacity;
    const bool drop =
        (priority == TuplePriority::kLow &&
         occupancy >= options_.overload.shed_low_watermark) ||
        (priority == TuplePriority::kNormal &&
         occupancy >= options_.overload.shed_high_watermark);
    if (!drop) {
      ++projected;
      if (write != read) (*block)[write] = std::move(tuple);
      ++write;
      continue;
    }
    // Already counted as emitted when it was staged; only the shed counter
    // moves here. Tracked trees fail fast, exactly like a staging-time shed.
    overload_refs_[gid].RecordShed(priority);
    if (acker_ != nullptr && tuple.root_key() != 0) {
      if (auto info = acker_->Discard(tuple.root_key())) {
        FailDiscardedTree(*info);
      }
    }
    ++shed;
  }
  block->resize(write);  // TMS_ANALYZE_EXEMPT(shrink only)
  if (shed > 0) {
    int64_t prev = in_flight_.fetch_sub(static_cast<int64_t>(shed));
    TMS_DCHECK_GE(prev, static_cast<int64_t>(shed))
        << "in-flight count went negative shedding a stale block";
    TrackInbound(gid, -static_cast<int64_t>(shed));
  }
  return shed;
}

void LocalRuntime::DrainOutbox(Outbox* outbox) {
  FlushOutbox(outbox);
  // Credit mode may defer blocks; this outbox is about to go out of scope
  // (executor exit or crash hand-off), so park-and-retry until every staged
  // tuple is enqueued — or Stop makes FlushOutbox drop the remainder.
  while (outbox->staged > 0 && !stopping_.load()) {
    uint32_t gid = outbox->dirty.front();
    TaskQueue* queue = queue_of_[gid];
    {
      MutexLock lock(queue->mutex);
      if (!stopping_.load() &&
          queue->queue.size() >= options_.queue_capacity) {
        queue->not_full.WaitFor(queue->mutex, std::chrono::milliseconds(1));
      }
    }
    FlushOutbox(outbox);
  }
  if (outbox->staged > 0) FlushOutbox(outbox);  // stopping: drops remainder
  TMS_DCHECK_EQ(outbox->staged, size_t{0})
      << "outbox still staged after a drain";
}

void LocalRuntime::StallForCredits(Outbox* outbox) {
  MicrosT start = options_.clock->NowMicros();
  while (!stopping_.load() &&
         outbox->staged >= options_.overload.max_deferred_tuples) {
    uint32_t gid = outbox->dirty.front();
    TaskQueue* queue = queue_of_[gid];
    {
      MutexLock lock(queue->mutex);
      // Bounded park: woken early by the consumer's drain (not_full), and
      // re-checked at most 1 ms later regardless.
      if (!stopping_.load() &&
          gates_[gid]->admitted() >= gates_[gid]->capacity()) {
        queue->not_full.WaitFor(queue->mutex, std::chrono::milliseconds(1));
      }
    }
    FlushOutbox(outbox);
  }
  MicrosT end = options_.clock->NowMicros();
  if (end > start) {
    metrics_.RecordCreditStall(static_cast<uint64_t>(end - start) * 1000);
  }
}

void LocalRuntime::Deliver(int source_component, int target_component,
                           int task_index, const Tuple& tuple,
                           TuplePriority priority, uint64_t* emitted,
                           uint64_t* ack_batch, uint64_t dedup_base,
                           uint64_t* dedup_seq, Outbox* outbox) {
  reliability::FaultInjector::RouteDecision decision;
  if (options_.fault_injector != nullptr) {
    decision = options_.fault_injector->OnRoute(
        topology_.components()[static_cast<size_t>(source_component)].name,
        topology_.components()[static_cast<size_t>(target_component)].name);
  }
  if (decision.delay_micros > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(decision.delay_micros));
  }
  // The dedup id is drawn once per Deliver call, not per copy: an
  // injector-duplicated copy is the same logical tuple, so both copies must
  // share an id for the ledger to suppress the second execution. A dropped
  // delivery still advances the sequence — the replayed attempt re-derives
  // the same chain positions only if every Deliver consumes one slot. (Shed
  // decisions come after the draw for the same reason: an attempt that sheds
  // differently must not shift the surviving tuples' chain positions.)
  uint64_t dedup_id = 0;
  if (dedup_seq != nullptr) {
    uint64_t d = Splitmix(dedup_base ^ (0x9e3779b97f4a7c15ULL * ++*dedup_seq));
    dedup_id = d == 0 ? 1 : d;
  }
  int copies = decision.duplicate ? 2 : 1;
  if (shedding_) {
    size_t gid = static_cast<size_t>(
        task_base_[static_cast<size_t>(target_component)] + task_index);
    double occupancy = gates_[gid]->Occupancy();
    bool shed =
        (priority == TuplePriority::kLow &&
         occupancy >= options_.overload.shed_low_watermark) ||
        (priority == TuplePriority::kNormal &&
         occupancy >= options_.overload.shed_high_watermark);
    if (shed) {
      // The delivery is dropped at the emitter, before staging: still
      // counted as emitted (so emitted == delivered + shed + in-flight
      // balances) and per-priority in tuples_shed, attributed to the task
      // whose queue is saturated. kHigh never reaches here.
      for (int i = 0; i < copies; ++i) {
        ++*emitted;
        overload_refs_[gid].RecordShed(priority);
      }
      if (ack_batch != nullptr && tuple.root_key() != 0 &&
          acker_ != nullptr) {
        // Fail fast: shedding any tuple of a tracked tree fails the whole
        // message now — Spout::Fail fires immediately and the replay
        // payload is discarded — instead of leaving an unbalanced edge to
        // time out. Copies already in flight ack an unknown key, which the
        // acker ignores.
        if (auto info = acker_->Discard(tuple.root_key())) {
          FailDiscardedTree(*info);
        }
      }
      return;
    }
  }
  for (int i = 0; i < copies; ++i) {
    Tuple copy = tuple;  // payload is refcount-shared, not deep-copied
    if (dedup_id != 0) copy.set_dedup_id(dedup_id);
    if (ack_batch != nullptr) {
      // Each delivered instance is one tree edge: a fresh random id, XORed
      // into the emitter's batch at stage time. A dropped tuple's edge is
      // still counted — it will never be acked, so the tree times out and
      // replays, exactly like a network loss under Storm.
      uint64_t edge = NextEdgeId();
      copy.set_edge_id(edge);
      *ack_batch ^= edge;
    }
    ++*emitted;
    if (decision.drop) continue;
    Stage(target_component, task_index, std::move(copy), outbox);
  }
}

void LocalRuntime::Route(int source_component, int source_task,
                         const Tuple& tuple, int direct_task,
                         uint64_t* emitted, uint64_t* ack_batch,
                         uint64_t dedup_base, uint64_t* dedup_seq,
                         Outbox* outbox, overload::SourceSquelch* squelch) {
  const TuplePriority priority = tuple.priority();
  for (const RouteTarget& target :
       routes_[static_cast<size_t>(source_component)]) {
    int num_tasks = static_cast<int>(
        tasks_[static_cast<size_t>(target.component_index)].size());
    if (direct_task >= 0) {
      if (target.grouping != Grouping::kDirect) continue;
      INSIGHT_CHECK(direct_task < num_tasks)
          << "EmitDirect task " << direct_task << " out of range";
      Deliver(source_component, target.component_index, direct_task, tuple,
              priority, emitted, ack_batch, dedup_base, dedup_seq, outbox);
      continue;
    }
    switch (target.grouping) {
      case Grouping::kShuffle: {
        uint64_t n = shuffle_counters_[static_cast<size_t>(source_component)]
                         .fetch_add(1, std::memory_order_relaxed);
        Deliver(source_component, target.component_index,
                static_cast<int>(n % num_tasks), tuple, priority, emitted,
                ack_batch, dedup_base, dedup_seq, outbox);
        break;
      }
      case Grouping::kFields: {
        uint64_t h = HashValues(tuple.values(), target.field_indexes);
        // Hot-key squelch observes the keyed edges: a source whose recent
        // routing keys are mostly repeats is squelched, and its deliveries
        // are shed as kLow no matter their declared tier. The tuple itself
        // is unchanged — the demotion applies to shed decisions only.
        TuplePriority effective = priority;
        if (squelch != nullptr) {
          uint64_t transitions = squelch->squelch_events();
          if (squelch->Observe(h)) effective = TuplePriority::kLow;
          if (squelch->squelch_events() != transitions) {
            // Cold path (state transition): name-map lookup is fine here.
            metrics_.RecordSquelch(
                topology_.components()[static_cast<size_t>(source_component)]
                    .name,
                source_task);
          }
        }
        Deliver(source_component, target.component_index,
                static_cast<int>(h % static_cast<uint64_t>(num_tasks)), tuple,
                effective, emitted, ack_batch, dedup_base, dedup_seq, outbox);
        break;
      }
      case Grouping::kAll:
        for (int t = 0; t < num_tasks; ++t) {
          Deliver(source_component, target.component_index, t, tuple,
                  priority, emitted, ack_batch, dedup_base, dedup_seq,
                  outbox);
        }
        break;
      case Grouping::kGlobal:
        Deliver(source_component, target.component_index, 0, tuple, priority,
                emitted, ack_batch, dedup_base, dedup_seq, outbox);
        break;
      case Grouping::kDirect:
        // Plain Emit does not feed direct subscriptions.
        break;
    }
  }
}

void LocalRuntime::EmitTracked(int component_index, int task_index,
                               uint64_t message_id, int attempt,
                               std::vector<Value> values, MicrosT spout_time,
                               TuplePriority priority, uint64_t* emitted,
                               Outbox* outbox,
                               overload::SourceSquelch* squelch) {
  if (attempt == 0) {
    // Keep a copy for replays, scoped to this spout task.
    replay_->Store(message_id, component_index, task_index, values);
    pending_roots_.fetch_add(1);
  }
  reliability::TreeInfo info;
  info.root_key = RootKey(component_index, task_index, message_id, attempt);
  info.message_id = message_id;
  info.spout_component = component_index;
  info.spout_task = task_index;
  info.attempt = attempt;
  info.created_micros = options_.clock->NowMicros();
  if (tracer_ != nullptr) {
    // Every attempt makes its own sampling decision and — if sampled —
    // opens a root span that the final ack (OnTreeCompleted) closes. The
    // previous attempt's trace was abandoned when its tree expired.
    info.trace_id = tracer_->MaybeStartTrace(info.created_micros);
  }
  // The guard keeps the accumulator nonzero until every root tuple is
  // enqueued; without it the first copy's subtree could complete (hit zero)
  // before the remaining copies are registered.
  uint64_t guard = NextEdgeId();
  acker_->Register(info, guard);
  Tuple tuple(fields_[static_cast<size_t>(component_index)], std::move(values),
              spout_time);
  tuple.set_root_key(info.root_key);
  tuple.set_trace_id(info.trace_id);
  tuple.set_priority(priority);
  uint64_t batch = 0;
  // Replay-stable dedup root: derived from the spout task and message id
  // (not the attempt), so a replayed attempt re-derives the exact same
  // per-emission dedup ids and checkpointed tasks can recognize
  // already-applied tuples, while same-numbered messages of different
  // spouts get disjoint id chains.
  uint64_t root_dedup = 0;
  uint64_t dedup_seq = 0;
  uint64_t* seq_ptr = nullptr;
  if (dedup_enabled_) {
    uint64_t d = Splitmix(message_id ^
                          SpoutScope(component_index, task_index));
    root_dedup = d == 0 ? 1 : d;
    seq_ptr = &dedup_seq;
  }
  Route(component_index, task_index, tuple, /*direct_task=*/-1, emitted,
        &batch, root_dedup, seq_ptr, outbox, squelch);
  if (auto done = acker_->Xor(info.root_key, guard ^ batch)) {
    OnTreeCompleted(*done);
  }
}

void LocalRuntime::OnTreeCompleted(const reliability::TreeInfo& info) {
  replay_->Ack(info.message_id, info.spout_component, info.spout_task);
  const ComponentDef& def =
      topology_.components()[static_cast<size_t>(info.spout_component)];
  metrics_.RecordAck(def.name, info.spout_task);
  if (tracer_ != nullptr && info.trace_id != 0) {
    tracer_->CompleteTrace(info.trace_id, options_.clock->NowMicros());
  }
  TaskRuntime& task = tasks_[static_cast<size_t>(info.spout_component)]
                            [static_cast<size_t>(info.spout_task)];
  if (task.events != nullptr) {
    MutexLock lock(task.events->mutex);
    task.events->events.emplace_back(true, info.message_id);
  }
  size_t prev = pending_roots_.fetch_sub(1);
  TMS_DCHECK_GE(prev, size_t{1}) << "pending tree count underflow on ack";
  NotifyPossiblyDone();
}

void LocalRuntime::DrainSpoutEvents(TaskRuntime* task) {
  if (task->events == nullptr) return;
  std::deque<std::pair<bool, uint64_t>> events;
  {
    MutexLock lock(task->events->mutex);
    events.swap(task->events->events);
  }
  for (const auto& [is_ack, message_id] : events) {
    if (is_ack) {
      task->spout->Ack(message_id);
    } else {
      task->spout->Fail(message_id);
    }
  }
}

void LocalRuntime::SpoutLoop(
    ExecutorSlot* slot, const ComponentDef& def,
    std::vector<TaskRuntime*>& my_tasks,
    std::vector<std::unique_ptr<TaskCollector>>& collectors) {
  const bool acking = options_.enable_acking;
  const int component_index = slot->component_index;
  reliability::FaultInjector* injector = options_.fault_injector;
  std::vector<MetricsRegistry::TaskRef> refs;
  refs.reserve(my_tasks.size());
  for (TaskRuntime* task : my_tasks) {
    refs.push_back(metrics_.RefFor(def.name, task->task_index));
  }
  while (!stopping_.load()) {
    bool all_exhausted = true;
    bool progressed = false;
    uint64_t pass_emitted = 0;
    for (size_t i = 0; i < my_tasks.size(); ++i) {
      TaskRuntime* task = my_tasks[i];
      if (acking) {
        DrainSpoutEvents(task);
        auto due = replay_->TakeDue(component_index, task->task_index,
                                    options_.clock->NowMicros());
        for (auto& d : due) {
          metrics_.RecordReplay(def.name, task->task_index);
          uint64_t emitted = 0;
          // Replays re-stamp the component's declared tier: the replay
          // buffer stores values only, so a per-emission priority override
          // (distributed ingress) does not survive a replay.
          EmitTracked(component_index, task->task_index, d.message_id,
                      d.attempt, std::move(d.values),
                      options_.clock->NowMicros(), def.priority, &emitted,
                      collectors[i]->outbox(), collectors[i]->squelch());
          if (emitted > 0) {
            refs[i].RecordEmit(emitted);
            pass_emitted += emitted;
          }
          progressed = true;
        }
      }
      if (task->spout_done) continue;
      all_exhausted = false;
      if (stopping_.load()) break;
      if (injector != nullptr &&
          injector->ShouldCrash(def.name, task->task_index)) {
        // The spout executor dies between NextTuple calls — a consistent
        // boundary (everything already emitted is registered with the
        // acker). The supervisor relaunches this executor with the SAME
        // spout instances: a real spout's read cursor is its committed
        // offset, and re-Opening would rewind it. Drain, not flush: the
        // relaunched executor gets fresh outboxes, so credit-deferred
        // tuples must be handed off (or dropped by Stop) before this one
        // goes out of scope.
        for (auto& collector : collectors) DrainOutbox(collector->outbox());
        slot->crashed.store(true);
        return;
      }
      collectors[i]->set_current_spout_time(options_.clock->NowMicros());
      bool more = task->spout->NextTuple(collectors[i].get());
      progressed = true;
      uint64_t emitted = collectors[i]->TakeEmitted();
      if (emitted > 0) {
        refs[i].RecordEmit(emitted);
        pass_emitted += emitted;
      }
      if (!more) {
        task->spout_done = true;
        // Hand off everything this task staged before it is counted out;
        // outboxes auto-flush only at the emit_batch threshold.
        FlushOutbox(collectors[i]->outbox());
        live_spout_tasks_.fetch_sub(1);
        NotifyPossiblyDone();
      }
    }
    if (all_exhausted) {
      for (auto& collector : collectors) FlushOutbox(collector->outbox());
      // Exhausted spouts stay alive under acking to deliver Ack/Fail
      // callbacks and re-emit timed-out trees until every tree resolves.
      if (!acking || pending_roots_.load() == 0) break;
      if (!progressed) {
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    } else if (pass_emitted == 0) {
      // Idle pass: deliver staged tuples now instead of letting them wait
      // below the auto-flush threshold behind a quiet spout.
      for (auto& collector : collectors) FlushOutbox(collector->outbox());
    }
  }
  for (auto& collector : collectors) DrainOutbox(collector->outbox());
  for (TaskRuntime* task : my_tasks) {
    if (acking) DrainSpoutEvents(task);  // last callbacks before Close
    task->spout->Close();
  }
}

void LocalRuntime::ExecutorLoop(ExecutorSlot* slot) {
  const int component_index = slot->component_index;
  const int executor_index = slot->executor_index;
  const ComponentDef& def =
      topology_.components()[static_cast<size_t>(component_index)];
  // Tasks owned by this executor: task_index % executors == executor_index.
  std::vector<TaskRuntime*> my_tasks;
  std::vector<std::unique_ptr<TaskCollector>> collectors;
  for (auto& task : tasks_[static_cast<size_t>(component_index)]) {
    if (task.task_index % def.num_executors == executor_index) {
      my_tasks.push_back(&task);
      collectors.push_back(std::make_unique<TaskCollector>(
          this, component_index, task.task_index, def.is_spout));
    }
  }

  TaskContext context;
  context.component = def.name;
  context.num_tasks = def.num_tasks;
  for (TaskRuntime* task : my_tasks) {
    if (!task->needs_init) continue;
    context.task_index = task->task_index;
    if (task->spout != nullptr) {
      // Spouts are never re-Opened after a crash: the supervisor keeps the
      // original instance (its emission cursor is the "committed offset"),
      // so Open must run exactly once.
      task->spout->Open(context);
    } else {
      task->bolt->Prepare(context);
      task->snapshottable = dynamic_cast<Snapshottable*>(task->bolt.get());
      if (coordinator_ != nullptr && task->ckpt_slot >= 0) {
        RestoreTask(task, def);
      }
    }
    task->needs_init = false;
  }

  if (def.is_spout) {
    SpoutLoop(slot, def, my_tasks, collectors);
    return;
  }

  reliability::FaultInjector* injector = options_.fault_injector;
  std::vector<MetricsRegistry::TaskRef> refs;
  refs.reserve(my_tasks.size());
  for (TaskRuntime* task : my_tasks) {
    refs.push_back(metrics_.RefFor(def.name, task->task_index));
  }
  // The tasks' admission gates (credit replenishment on drain); null when
  // overload protection is off.
  std::vector<overload::QueueGate*> task_gates(my_tasks.size(), nullptr);
  if (!gates_.empty()) {
    for (size_t i = 0; i < my_tasks.size(); ++i) {
      task_gates[i] =
          gates_[static_cast<size_t>(task_base_[static_cast<size_t>(
                                         component_index)] +
                                     my_tasks[i]->task_index)]
              .get();
    }
  }
  std::vector<size_t> task_gids(my_tasks.size(), 0);
  for (size_t i = 0; i < my_tasks.size(); ++i) {
    task_gids[i] =
        static_cast<size_t>(task_base_[static_cast<size_t>(component_index)] +
                            my_tasks[i]->task_index);
  }
  // Bolt executor: drain the owned tasks' queues round-robin, moving up to
  // max_batch tuples out of a queue per lock acquisition (pseudo-parallel
  // execution of co-scheduled tasks, one not_full wake per drained block).
  std::vector<Tuple> batch;
  batch.reserve(options_.max_batch);
  while (true) {
    bool any = false;
    for (size_t i = 0; i < my_tasks.size(); ++i) {
      TaskRuntime* task = my_tasks[i];
      if (elastic_enabled_) {
        // Migration gates: a task in any non-idle phase is frozen (arrivals
        // keep queueing); a retired source with a redirect sweeps stragglers
        // to the state-owning target instead of executing them clean.
        uint8_t phase =
            migration_phase_[task_gids[i]].load(std::memory_order_acquire);
        if (phase != kMigrationIdle) {
          if (HandleMigrationPhase(phase, task_gids[i], task, def)) any = true;
          continue;
        }
        int32_t fwd = forward_of_[task_gids[i]].load(std::memory_order_acquire);
        if (fwd >= 0) {
          if (ForwardQueuedTuples(task_gids[i], static_cast<size_t>(fwd))) {
            any = true;
          }
          continue;
        }
      }
      batch.clear();
      {
        MutexLock lock(task->input->mutex);
        std::deque<Tuple>& q = task->input->queue;
        size_t n = std::min(options_.max_batch, q.size());
        if (options_.overload.enable_load_shedding &&
            task->input->high_count > 0 && n < q.size()) {
          // Priority drain: when the queue holds more than one batch, the
          // critical tier jumps the line — up to `n` kHigh tuples are
          // extracted first (their relative order preserved), then the
          // remainder fills FIFO. This keeps kHigh latency proportional to
          // the kHigh backlog instead of the shed-watermark standing queue.
          const size_t want_high = std::min(n, task->input->high_count);
          size_t taken_high = 0;
          size_t write = 0;
          for (size_t read = 0; read < q.size(); ++read) {
            if (taken_high < want_high &&
                q[read].priority() == TuplePriority::kHigh) {
              batch.push_back(std::move(q[read]));
              ++taken_high;
              continue;
            }
            if (write != read) q[write] = std::move(q[read]);
            ++write;
          }
          q.resize(write);  // TMS_ANALYZE_EXEMPT(shrink only)
          task->input->high_count -= taken_high;
          n -= taken_high;
        }
        for (size_t k = 0; k < n; ++k) {
          if (options_.overload.enable_load_shedding &&
              task->input->high_count > 0 &&
              q.front().priority() == TuplePriority::kHigh) {
            --task->input->high_count;
          }
          batch.push_back(std::move(q.front()));
          q.pop_front();
        }
        if (!batch.empty()) task->input->not_full.NotifyAll();
      }
      // Credits are replenished the moment tuples leave the queue — the
      // producer-visible admission count tracks queue occupancy, not
      // execution progress.
      if (task_gates[i] != nullptr && !batch.empty()) {
        task_gates[i]->Release(batch.size());
      }
      if (batch.empty()) continue;
      any = true;
      if (injector == nullptr && task->ledger == nullptr &&
          acker_ == nullptr && tracer_ == nullptr &&
          task->bolt->SupportsExecuteBatch()) {
        // Batch fast path: hand the whole drained block to the bolt in one
        // call so a batch-aware bolt (e.g. EsperBolt's columnar CEP path)
        // can amortize per-tuple dispatch. Only taken when every per-tuple
        // bookkeeping feature is off — acking, dedup, tracing and fault
        // injection all need tuple-grained hooks, so those configurations
        // keep the loop below.
        const size_t n = batch.size();
        collectors[i]->BeginExecute(batch[0]);
        MicrosT start = options_.clock->NowMicros();
        task->bolt->ExecuteBatch(batch.data(), n, collectors[i].get());
        MicrosT end = options_.clock->NowMicros();
        refs[i].RecordBatch(n, end - start);
        uint64_t emitted = collectors[i]->TakeEmitted();
        if (emitted > 0) refs[i].RecordEmit(emitted);
        int64_t prev = in_flight_.fetch_sub(static_cast<int64_t>(n));
        TMS_DCHECK_GE(prev, static_cast<int64_t>(n))
            << "in-flight count went negative after batch execute";
        TrackInbound(task_gids[i], -static_cast<int64_t>(n));
        NotifyPossiblyDone();
        FlushOutbox(collectors[i]->outbox());
        if (coordinator_ != nullptr && task->ckpt_slot >= 0) {
          MaybeCheckpoint(task, def, /*force=*/false);
        }
        continue;
      }
      for (size_t j = 0; j < batch.size(); ++j) {
        Tuple& tuple = batch[j];
        if (injector != nullptr &&
            injector->ShouldCrash(def.name, task->task_index)) {
          // The executor dies mid-execute: exactly the in-hand tuple is
          // lost (its tree will time out and replay under acking) and the
          // thread exits without Cleanup, like a killed Storm worker. The
          // supervisor will restart this executor with fresh bolt
          // instances. Emissions of the executions that completed before
          // the crash are delivered, and the un-executed remainder of the
          // drained batch goes back to the front of the queue — batching
          // must not widen the failure beyond what per-tuple hand-off lost.
          // Drain, not flush: the relaunched executor builds fresh outboxes,
          // so any credit-deferred tuples must be handed off before this
          // one goes out of scope.
          DrainOutbox(collectors[i]->outbox());
          if (j + 1 < batch.size()) {
            {
              MutexLock requeue(task->input->mutex);
              for (size_t k = batch.size(); k-- > j + 1;) {
                task->input->queue.push_front(std::move(batch[k]));
              }
              task->input->not_empty.NotifyOne();
            }
            // The drain above already released credits for the whole batch;
            // the requeued remainder re-occupies the queue, so re-charge the
            // gate or producers would over-admit by the requeued count.
            if (task_gates[i] != nullptr) {
              task_gates[i]->ForceAcquire(batch.size() - j - 1);
            }
          }
          int64_t prev = in_flight_.fetch_sub(1);
          TMS_DCHECK_GE(prev, int64_t{1})
              << "in-flight count went negative on crash";
          TrackInbound(task_gids[i], -1);
          NotifyPossiblyDone();
          slot->crashed.store(true);
          return;
        }
        if (task->ledger != nullptr && tuple.dedup_id() != 0 &&
            task->ledger->Contains(tuple.dedup_id())) {
          // Replayed duplicate of a tuple whose effect is already inside
          // this task's checkpointed state: suppress the re-execution but
          // still settle its tree edge, otherwise the replayed attempt
          // could never complete. The ack is deferred with the rest of the
          // task's pending edges so it only reaches the acker once the
          // state that absorbed the original execution is durable.
          metrics_.RecordDedup(def.name, task->task_index);
          if (acker_ != nullptr && tuple.root_key() != 0) {
            task->pending_acks[tuple.root_key()] ^= tuple.edge_id();
          }
          int64_t prev = in_flight_.fetch_sub(1);
          TMS_DCHECK_GE(prev, int64_t{1})
              << "in-flight count went negative after dedup";
          TrackInbound(task_gids[i], -1);
          NotifyPossiblyDone();
          continue;
        }
        collectors[i]->BeginExecute(tuple);
        MicrosT start = options_.clock->NowMicros();
        task->bolt->Execute(tuple, collectors[i].get());
        MicrosT end = options_.clock->NowMicros();
        refs[i].Record(end - start);
        if (tracer_ != nullptr && tuple.trace_id() != 0) {
          tracer_->RecordSpan(tuple.trace_id(),
                              observability::SpanKind::kQueueWait,
                              component_index, task->task_index,
                              tuple.trace_enqueue_micros(), start);
          tracer_->RecordSpan(tuple.trace_id(),
                              observability::SpanKind::kExecute,
                              component_index, task->task_index, start, end);
        }
        uint64_t emitted = collectors[i]->TakeEmitted();
        if (emitted > 0) refs[i].RecordEmit(emitted);
        if (acker_ != nullptr && tuple.root_key() != 0) {
          // One batched acker update per execution: the consumed input edge
          // plus every edge emitted while executing it.
          uint64_t acks = tuple.edge_id() ^ collectors[i]->TakeAckBatch();
          if (task->ckpt_slot >= 0) {
            // Checkpoint-aligned acking: a checkpointed task's acks flush
            // only after the state that absorbed the tuple persists. If the
            // task crashes first, the unflushed edges keep the tree alive,
            // it times out, and replay re-executes against the rolled-back
            // state — effectively-once end to end.
            task->pending_acks[tuple.root_key()] ^= acks;
          } else if (auto done = acker_->Xor(tuple.root_key(), acks)) {
            OnTreeCompleted(*done);
          }
        }
        if (task->ledger != nullptr && tuple.dedup_id() != 0) {
          task->ledger->Insert(tuple.dedup_id());
        }
        int64_t prev = in_flight_.fetch_sub(1);
        TMS_DCHECK_GE(prev, int64_t{1})
            << "in-flight count went negative after execute";
        TrackInbound(task_gids[i], -1);
        NotifyPossiblyDone();
      }
      FlushOutbox(collectors[i]->outbox());
      if (coordinator_ != nullptr && task->ckpt_slot >= 0) {
        MaybeCheckpoint(task, def, /*force=*/false);
      }
    }
    if (!any) {
      for (auto& collector : collectors) FlushOutbox(collector->outbox());
      if (coordinator_ != nullptr) {
        // Idle with deferred acks: force a checkpoint so the acks flush and
        // the topology can drain — otherwise AwaitCompletion would livelock
        // waiting on trees whose last edges sit in pending_acks until the
        // next interval tick.
        for (size_t i = 0; i < my_tasks.size(); ++i) {
          TaskRuntime* task = my_tasks[i];
          if (elastic_enabled_ &&
              migration_phase_[task_gids[i]].load(
                  std::memory_order_acquire) != kMigrationIdle) {
            // Frozen mid-migration: the barrier may be swapping ckpt_slot,
            // and the final migration snapshot flushes the deferred acks
            // itself. Same gate as the drain path above.
            continue;
          }
          if (task->ckpt_slot >= 0 && !task->pending_acks.empty()) {
            MaybeCheckpoint(task, def, /*force=*/true);
          }
        }
      }
      if (stopping_.load()) break;
      // Park briefly on the first owned queue.
      TaskRuntime* task = my_tasks.empty() ? nullptr : my_tasks[0];
      if (task == nullptr) break;
      MutexLock lock(task->input->mutex);
      if (!stopping_.load() && task->input->queue.empty()) {
        // Bounded park; the outer loop re-polls every owned queue on wake,
        // so a spurious or early wake only costs one extra pass.
        task->input->not_empty.WaitFor(task->input->mutex,
                                       std::chrono::milliseconds(1));
      }
    }
  }
  // Drain (not just flush): stopping_ is set here, so FlushOutbox drops any
  // credit-deferred remainder and the in-flight count balances before Stop's
  // final accounting check.
  for (auto& collector : collectors) DrainOutbox(collector->outbox());
  for (TaskRuntime* task : my_tasks) task->bolt->Cleanup();
}

void LocalRuntime::SupervisorLoop() {
  while (!stopping_.load()) {
    std::this_thread::sleep_for(std::chrono::microseconds(std::min<MicrosT>(
        options_.supervisor_interval_micros, 50'000)));

    // Restart executors killed by injected crashes (Storm's supervisor
    // relaunching a dead worker). The crashed thread has already returned,
    // so its tasks' bolts are untouched by anyone else; replace them with
    // fresh instances — the relaunched executor restores checkpointed tasks
    // from their latest durable snapshot, everything else starts clean.
    for (auto& slot : executors_) {
      if (slot->dead.load() || !slot->crashed.load() || stopping_.load()) {
        continue;
      }
      if (options_.enable_crash_loop_breaker &&
          !ContainCrashLoop(slot.get(), options_.clock->NowMicros())) {
        continue;  // backing off, or the breaker just tripped
      }
      if (slot->thread.joinable()) slot->thread.join();
      const ComponentDef& def =
          topology_.components()[static_cast<size_t>(slot->component_index)];
      for (auto& task : tasks_[static_cast<size_t>(slot->component_index)]) {
        if (task.bolt != nullptr &&
            task.task_index % def.num_executors == slot->executor_index) {
          task.bolt = def.bolt_factory();
          task.snapshottable = nullptr;
          task.needs_init = true;  // Prepare + restore on relaunch
        }
        // Spout tasks keep their instances and are not re-initialized; see
        // the crash point in SpoutLoop.
      }
      slot->crashed.store(false);
      executor_restarts_.fetch_add(1);
      ExecutorSlot* raw = slot.get();
      slot->thread = Thread([this, raw] { ExecutorLoop(raw); });
    }
    if (options_.enable_crash_loop_breaker) DrainDeadTaskQueues();

    // Fail tuple trees that outlived the ack timeout: schedule a replay, or
    // — once the replay budget is spent — permanently fail the message.
    if (acker_ != nullptr) {
      MicrosT now = options_.clock->NowMicros();
      for (const reliability::TreeInfo& info :
           acker_->ExpireOlderThan(now - options_.ack_timeout_micros)) {
        const ComponentDef& def =
            topology_.components()[static_cast<size_t>(info.spout_component)];
        metrics_.RecordFail(def.name, info.spout_task);
        // Whether the tree replays or permanently fails, this attempt's
        // trace is over; a replayed attempt starts a fresh one.
        if (tracer_ != nullptr && info.trace_id != 0) {
          tracer_->AbandonTrace(info.trace_id);
        }
        if (!replay_->Fail(info.message_id, info.spout_component,
                           info.spout_task, now)) {
          TaskRuntime& task =
              tasks_[static_cast<size_t>(info.spout_component)]
                    [static_cast<size_t>(info.spout_task)];
          if (task.events != nullptr) {
            MutexLock lock(task.events->mutex);
            task.events->events.emplace_back(false, info.message_id);
          }
          size_t prev = pending_roots_.fetch_sub(1);
          TMS_DCHECK_GE(prev, size_t{1})
              << "pending tree count underflow on permanent fail";
          NotifyPossiblyDone();
        }
      }
    }
  }
}

Status LocalRuntime::SerializeTask(TaskRuntime* task, std::string* out) {
  // Copy-on-snapshot: serialize on the executor thread at a batch boundary
  // (the task's state is quiescent between executions); callers hand the
  // bytes to the background persister or the migration control block.
  std::string bolt_state;
  if (task->snapshottable != nullptr) {
    Status s = task->snapshottable->SnapshotState(&bolt_state);
    if (!s.ok()) return s;
  }
  out->clear();
  ByteWriter writer(out);
  writer.PutU32(kTaskSnapshotMagic);
  writer.PutU32(kTaskSnapshotVersion);
  writer.PutU8(task->ledger != nullptr ? 1 : 0);
  if (task->ledger != nullptr) task->ledger->Serialize(&writer);
  writer.PutString(bolt_state);
  return Status::OK();
}

void LocalRuntime::SubmitTaskSnapshot(TaskRuntime* task,
                                      const ComponentDef& def,
                                      std::string bytes) {
  // Move the accumulated deferred acks into the completion closure: exactly
  // one owner at any time. On durable persist they flush to the acker; on a
  // failed persist they are dropped, the covered trees time out, and replay
  // re-executes them against whatever state actually is durable.
  auto acks = std::make_shared<std::unordered_map<uint64_t, uint64_t>>(
      std::move(task->pending_acks));
  task->pending_acks.clear();
  std::string component = def.name;
  int task_index = task->task_index;
  coordinator_->Submit(
      task->ckpt_slot, std::move(bytes),
      [this, acks, component, task_index](uint64_t epoch,
                                          const Status& status) {
        if (!status.ok()) {
          INSIGHT_LOG(Warning)
              << "checkpoint epoch " << epoch << " of " << component << "/"
              << task_index << " failed (" << status.message()
              << "); dropping " << acks->size()
              << " deferred ack deltas so the trees replay";
          return;
        }
        metrics_.RecordCheckpoint(component, task_index);
        if (acker_ == nullptr) return;
        for (const auto& [root, delta] : *acks) {
          if (auto done = acker_->Xor(root, delta)) OnTreeCompleted(*done);
        }
      });
}

void LocalRuntime::MaybeCheckpoint(TaskRuntime* task, const ComponentDef& def,
                                   bool force) {
  MicrosT now = options_.clock->NowMicros();
  if (force ? !coordinator_->CanSubmit(task->ckpt_slot)
            : !coordinator_->Due(task->ckpt_slot, now)) {
    return;
  }
  std::string bytes;
  Status s = SerializeTask(task, &bytes);
  if (!s.ok()) {
    // Keep the deferred acks: the covered executions are not durable, so
    // their trees must stay open until a later snapshot succeeds.
    INSIGHT_LOG(Warning) << "snapshot of " << def.name << "/"
                         << task->task_index << " failed: " << s.message();
    return;
  }
  SubmitTaskSnapshot(task, def, std::move(bytes));
}

Status LocalRuntime::ApplyTaskSnapshot(TaskRuntime* task,
                                       const std::string& bytes) {
  // Nothing from the previous incarnation survives into the restore: the
  // suppression set and deferred acks roll back exactly as far as the state.
  // On any error the ledger is left cleared and the bolt is in its clean
  // freshly-prepared state (RestoreState's contract), so the caller can
  // safely fall back to clean or keep the source authoritative.
  task->pending_acks.clear();
  if (task->ledger != nullptr) task->ledger->Clear();
  auto corrupt = [&](const char* why) {
    if (task->ledger != nullptr) task->ledger->Clear();
    return Status::ParseError(why);
  };
  ByteReader reader(bytes);
  uint32_t magic = 0;
  uint32_t version = 0;
  uint8_t has_ledger = 0;
  if (!reader.GetU32(&magic) || magic != kTaskSnapshotMagic) {
    return corrupt("bad snapshot magic");
  }
  if (!reader.GetU32(&version) || version != kTaskSnapshotVersion) {
    return corrupt("unsupported snapshot version");
  }
  if (!reader.GetU8(&has_ledger)) {
    return corrupt("truncated snapshot header");
  }
  if (has_ledger != 0) {
    if (task->ledger == nullptr) {
      return corrupt("snapshot carries a dedup ledger but dedup is disabled");
    }
    if (!task->ledger->Deserialize(&reader)) {
      return corrupt("corrupt dedup ledger");
    }
  }
  std::string bolt_state;
  if (!reader.GetString(&bolt_state)) {
    return corrupt("truncated bolt state");
  }
  if (task->snapshottable != nullptr) {
    Status s = task->snapshottable->RestoreState(bolt_state);
    if (!s.ok()) {
      if (task->ledger != nullptr) task->ledger->Clear();
      return s;
    }
  }
  return Status::OK();
}

void LocalRuntime::RestoreTask(TaskRuntime* task, const ComponentDef& def) {
  task->pending_acks.clear();
  if (task->ledger != nullptr) task->ledger->Clear();
  auto fail = [&](const std::string& why) {
    if (task->ledger != nullptr) task->ledger->Clear();
    metrics_.RecordRestoreFailure(def.name, task->task_index);
    INSIGHT_LOG(Warning) << "restore of " << def.name << "/"
                         << task->task_index << " failed (" << why
                         << "); restarting from clean state";
  };
  Result<reliability::StateStore::Snapshot> loaded =
      coordinator_->BarrierAndLoad(task->ckpt_slot);
  if (!loaded.ok()) {
    // No durable snapshot yet is the normal first launch, not a failure.
    if (loaded.status().code() != StatusCode::kNotFound) {
      fail(loaded.status().message());
    }
    return;
  }
  Status applied = ApplyTaskSnapshot(task, loaded->bytes);
  if (!applied.ok()) {
    fail(applied.message());
    return;
  }
  metrics_.RecordRestore(def.name, task->task_index);
}

void LocalRuntime::FailDiscardedTree(const reliability::TreeInfo& info) {
  if (replay_ != nullptr) {
    replay_->Discard(info.message_id, info.spout_component, info.spout_task);
  }
  const ComponentDef& def =
      topology_.components()[static_cast<size_t>(info.spout_component)];
  metrics_.RecordFail(def.name, info.spout_task);
  if (tracer_ != nullptr && info.trace_id != 0) {
    tracer_->AbandonTrace(info.trace_id);
  }
  TaskRuntime& task = tasks_[static_cast<size_t>(info.spout_component)]
                            [static_cast<size_t>(info.spout_task)];
  if (task.events != nullptr) {
    MutexLock lock(task.events->mutex);
    // TMS_ANALYZE_EXEMPT(event deque is bounded by pending root trees and
    // libstdc++ recycles its chunks as the spout drains notifications)
    task.events->events.emplace_back(false, info.message_id);
  }
  size_t prev = pending_roots_.fetch_sub(1);
  TMS_DCHECK_GE(prev, size_t{1})
      << "pending tree count underflow on discarded tree";
  NotifyPossiblyDone();
}

bool LocalRuntime::ContainCrashLoop(ExecutorSlot* slot, MicrosT now) {
  // next_restart_micros == 0 means this crash has not been recorded yet;
  // record it, prune the window, and either trip the breaker or start the
  // backoff clock. All of this state is supervisor-thread-only.
  if (slot->next_restart_micros == 0) {
    slot->restart_times.push_back(now);
    while (!slot->restart_times.empty() &&
           slot->restart_times.front() <
               now - options_.breaker_window_micros) {
      slot->restart_times.pop_front();
    }
    int crashes = static_cast<int>(slot->restart_times.size());
    if (crashes > options_.breaker_max_restarts) {
      TripBreaker(slot);
      return false;
    }
    double backoff =
        static_cast<double>(options_.restart_backoff_base_micros);
    for (int i = 1; i < crashes; ++i) {
      backoff *= options_.restart_backoff_factor;
      if (backoff >=
          static_cast<double>(options_.restart_backoff_max_micros)) {
        break;
      }
    }
    MicrosT delay = std::min<MicrosT>(static_cast<MicrosT>(backoff),
                                      options_.restart_backoff_max_micros);
    slot->next_restart_micros = now + delay;
  }
  if (now < slot->next_restart_micros) return false;  // still backing off
  slot->next_restart_micros = 0;
  return true;
}

void LocalRuntime::TripBreaker(ExecutorSlot* slot) {
  // The executor crashed `breaker_max_restarts + 1` times inside the
  // window: stop relaunching it. The crashed thread has already returned
  // (or is returning), so joining here is cheap and makes the slot's tasks
  // exclusively supervisor-owned from now on.
  slot->dead.store(true);
  if (slot->thread.joinable()) slot->thread.join();
  dead_executors_.fetch_add(1);
  const ComponentDef& def =
      topology_.components()[static_cast<size_t>(slot->component_index)];
  INSIGHT_LOG(Warning) << "circuit breaker tripped: executor "
                       << slot->executor_index << " of " << def.name
                       << " permanently failed after "
                       << slot->restart_times.size()
                       << " crashes; topology is degraded";
  for (auto& task : tasks_[static_cast<size_t>(slot->component_index)]) {
    if (task.task_index % def.num_executors != slot->executor_index) continue;
    metrics_.RecordBreakerTrip(def.name, task.task_index);
    if (task.spout == nullptr) continue;
    // A dead spout task's pending trees can never be re-emitted: fail them
    // now so the topology can drain. Deviation from Storm's contract: the
    // spout executor is permanently gone, so Ack/Fail callbacks for this
    // task are delivered on the supervisor thread from here on.
    if (!task.spout_done) {
      task.spout_done = true;
      live_spout_tasks_.fetch_sub(1);
    }
    if (acker_ == nullptr) continue;
    for (const reliability::TreeInfo& info :
         acker_->DiscardSpout(slot->component_index, task.task_index)) {
      replay_->Discard(info.message_id, info.spout_component,
                       info.spout_task);
      metrics_.RecordFail(def.name, task.task_index);
      if (tracer_ != nullptr && info.trace_id != 0) {
        tracer_->AbandonTrace(info.trace_id);
      }
      task.spout->Fail(info.message_id);
      size_t prev = pending_roots_.fetch_sub(1);
      TMS_DCHECK_GE(prev, size_t{1})
          << "pending tree count underflow on spout trip";
    }
    for (uint64_t message_id :
         replay_->DiscardAllFor(slot->component_index, task.task_index)) {
      metrics_.RecordFail(def.name, task.task_index);
      task.spout->Fail(message_id);
      size_t prev = pending_roots_.fetch_sub(1);
      TMS_DCHECK_GE(prev, size_t{1})
          << "pending tree count underflow on replay discard";
    }
    DrainSpoutEvents(&task);
  }
  NotifyPossiblyDone();
}

void LocalRuntime::DrainDeadTaskQueues() {
  for (auto& slot : executors_) {
    if (!slot->dead.load()) continue;
    const ComponentDef& def =
        topology_.components()[static_cast<size_t>(slot->component_index)];
    if (def.is_spout) continue;
    for (auto& task : tasks_[static_cast<size_t>(slot->component_index)]) {
      if (task.task_index % def.num_executors != slot->executor_index) {
        continue;
      }
      std::deque<Tuple> drained;
      {
        MutexLock lock(task.input->mutex);
        drained.swap(task.input->queue);
        if (!drained.empty()) task.input->not_full.NotifyAll();
      }
      if (drained.empty()) continue;
      if (!gates_.empty()) {
        gates_[static_cast<size_t>(task_base_[static_cast<size_t>(
                                       slot->component_index)] +
                                   task.task_index)]
            ->Release(drained.size());
      }
      int64_t prev =
          in_flight_.fetch_sub(static_cast<int64_t>(drained.size()));
      TMS_DCHECK_GE(prev, static_cast<int64_t>(drained.size()))
          << "in-flight count went negative draining a dead task";
      TrackInbound(
          static_cast<size_t>(
              task_base_[static_cast<size_t>(slot->component_index)] +
              task.task_index),
          -static_cast<int64_t>(drained.size()));
      if (acker_ != nullptr) {
        for (const Tuple& t : drained) {
          if (t.root_key() == 0) continue;
          // Discarding the tree (rather than letting it time out) frees the
          // replay payload immediately; tuples of the same tree still live
          // elsewhere will ack an unknown key, which the acker ignores.
          if (auto info = acker_->Discard(t.root_key())) {
            FailDiscardedTree(*info);
          }
        }
      }
      NotifyPossiblyDone();
    }
  }
}

Status LocalRuntime::MigrateTask(const MigrationRequest& request) {
  if (!elastic_enabled_) {
    return Status::FailedPrecondition(
        "MigrateTask requires Options::enable_migration");
  }
  if (!started_.load() || stopping_.load()) {
    return Status::FailedPrecondition("runtime is not running");
  }
  int component_index = -1;
  for (size_t c = 0; c < topology_.components().size(); ++c) {
    if (topology_.components()[c].name == request.component) {
      component_index = static_cast<int>(c);
      break;
    }
  }
  if (component_index < 0) {
    return Status::NotFound("unknown component " + request.component);
  }
  const ComponentDef& def =
      topology_.components()[static_cast<size_t>(component_index)];
  if (def.is_spout) {
    return Status::InvalidArgument("cannot migrate a spout task");
  }
  if (request.from_task == request.to_task) {
    return Status::InvalidArgument("from_task and to_task are the same");
  }
  if (request.from_task < 0 || request.from_task >= def.num_tasks ||
      request.to_task < 0 || request.to_task >= def.num_tasks) {
    return Status::InvalidArgument("task index out of range for " +
                                   request.component);
  }
  const size_t from_gid = static_cast<size_t>(
      task_base_[static_cast<size_t>(component_index)] + request.from_task);
  const size_t to_gid = static_cast<size_t>(
      task_base_[static_cast<size_t>(component_index)] + request.to_task);

  MutexLock migration_serial(migrate_mutex_);
  if (stopping_.load()) {
    return Status::FailedPrecondition("runtime is stopping");
  }
  {
    MutexLock lock(migration_.mutex);
    migration_.source_gid = from_gid;
    migration_.target_gid = to_gid;
    migration_.snapshot_ready = false;
    migration_.snapshot_status = Status::OK();
    migration_.bytes.clear();
    migration_.restore_done = false;
    migration_.restore_status = Status::OK();
    migration_.retire_done = false;
  }
  const MicrosT deadline =
      options_.clock->NowMicros() + options_.migration_timeout_micros;

  // 1. Hold the target: its executor stops draining the queue, so the state
  // restored in step 4 cannot race tuples that arrive right after the flip.
  forward_of_[to_gid].store(-1, std::memory_order_release);
  migration_phase_[to_gid].store(kMigrationHold, std::memory_order_release);

  // 2. Flip routing: every tuple routed from here on targets `to_task`.
  if (request.flip) {
    Status s = request.flip();
    if (!s.ok()) {
      return AbortMigration(request, from_gid, to_gid, /*flipped=*/false, s);
    }
  }

  // 3. Quiesce the source: wait until no tuple is staged, queued, or in
  // hand for it, stable across the settle window (an emitter that picked
  // its route from the pre-flip table has then provably staged its tuple,
  // which the source drained — the counter cannot tick up again).
  MicrosT zero_since = 0;
  while (true) {
    if (stopping_.load()) {
      return AbortMigration(
          request, from_gid, to_gid, /*flipped=*/true,
          Status::FailedPrecondition("runtime stopped during migration"));
    }
    MicrosT now = options_.clock->NowMicros();
    if (now > deadline) {
      return AbortMigration(
          request, from_gid, to_gid, /*flipped=*/true,
          Status::ResourceExhausted("migration quiesce timed out"));
    }
    if (task_inbound_[from_gid].load(std::memory_order_acquire) == 0) {
      if (zero_since == 0) {
        zero_since = now;
      } else if (now - zero_since >= options_.migration_settle_micros) {
        break;
      }
    } else {
      zero_since = 0;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  // 4. Final snapshot at the source's next batch boundary (on its executor
  // thread, where the bolt is quiescent between executions).
  migration_phase_[from_gid].store(kMigrationSnapshot,
                                   std::memory_order_release);
  bool snapshot_ready = false;
  Status snapshot_status;
  {
    MutexLock lock(migration_.mutex);
    while (!migration_.snapshot_ready && !stopping_.load() &&
           options_.clock->NowMicros() <= deadline) {
      migration_.cv.WaitFor(migration_.mutex, std::chrono::milliseconds(1));
    }
    snapshot_ready = migration_.snapshot_ready;
    snapshot_status = migration_.snapshot_status;
  }
  if (!snapshot_ready) {
    return AbortMigration(
        request, from_gid, to_gid, /*flipped=*/true,
        Status::ResourceExhausted("source snapshot timed out"));
  }
  if (!snapshot_status.ok()) {
    return AbortMigration(request, from_gid, to_gid, /*flipped=*/true,
                          snapshot_status);
  }

  // 5. Restore the container into the held target.
  migration_phase_[to_gid].store(kMigrationRestore, std::memory_order_release);
  bool restore_done = false;
  Status restore_status;
  {
    MutexLock lock(migration_.mutex);
    while (!migration_.restore_done && !stopping_.load() &&
           options_.clock->NowMicros() <= deadline) {
      migration_.cv.WaitFor(migration_.mutex, std::chrono::milliseconds(1));
    }
    restore_done = migration_.restore_done;
    restore_status = migration_.restore_status;
  }
  if (!restore_done || !restore_status.ok()) {
    // The failed (or unresponsive) target never takes over: routing rolls
    // back and the source — whose state was only read, never cleared —
    // stays authoritative. A corrupt migration container must not degrade
    // the state line to a clean restart.
    return AbortMigration(request, from_gid, to_gid, /*flipped=*/true,
                          restore_done ? restore_status
                                       : Status::ResourceExhausted(
                                             "target restore timed out"));
  }

  // 6. The state line moved: the target takes over the source's checkpoint
  // slot, so its interval checkpoints continue the durable history step 4
  // just extended; the source inherits the target's. Both tasks are frozen
  // in Hold, and the phase release-stores below publish the swap to their
  // executors. On a full process restart the rebuilt topology loads
  // "component/from_task" back into the source under the seed routing —
  // the migration simply unwinds, losing nothing.
  {
    TaskRuntime& source = tasks_[static_cast<size_t>(component_index)]
                                [static_cast<size_t>(request.from_task)];
    TaskRuntime& target = tasks_[static_cast<size_t>(component_index)]
                                [static_cast<size_t>(request.to_task)];
    std::swap(source.ckpt_slot, target.ckpt_slot);
  }

  // 7. Retire the source (fresh bolt, empty ledger) and redirect stragglers:
  // a tuple that slipped past the settle window or still sits queued at the
  // source is swept to the state-owning target, never executed clean.
  forward_of_[from_gid].store(static_cast<int32_t>(to_gid),
                              std::memory_order_release);
  migration_phase_[from_gid].store(kMigrationRetire,
                                   std::memory_order_release);
  {
    MutexLock lock(migration_.mutex);
    while (!migration_.retire_done && !stopping_.load() &&
           options_.clock->NowMicros() <= deadline) {
      migration_.cv.WaitFor(migration_.mutex, std::chrono::milliseconds(1));
    }
    // A slow retire is not a failure: the phase store is visible, the source
    // executes it at its next pass, and until then the task is simply
    // frozen. State and routing are final either way.
  }

  // 8. Release the target into service.
  migration_phase_[to_gid].store(kMigrationIdle, std::memory_order_release);
  if (queue_of_[to_gid] != nullptr) queue_of_[to_gid]->not_empty.NotifyAll();
  {
    MutexLock lock(migration_.mutex);
    migration_.source_gid = kNoMigrationGid;
    migration_.target_gid = kNoMigrationGid;
  }
  metrics_.RecordMigration(request.component, request.from_task);
  return Status::OK();
}

Status LocalRuntime::AbortMigration(const MigrationRequest& request,
                                    size_t from_gid, size_t to_gid,
                                    bool flipped, const Status& cause) {
  if (flipped && request.unflip) request.unflip();
  {
    MutexLock lock(migration_.mutex);
    // Disarm late phase handlers: a deposit guarded on these gids now
    // no-ops instead of polluting the next migration's control block.
    migration_.source_gid = kNoMigrationGid;
    migration_.target_gid = kNoMigrationGid;
  }
  // Tuples that reached the target between flip and unflip are swept back
  // to the still-authoritative source once the target's executor looks at
  // its queue. The target is a standby, so the redirect staying armed is
  // harmless (and the next migration attempt to it clears it).
  forward_of_[to_gid].store(static_cast<int32_t>(from_gid),
                            std::memory_order_release);
  migration_phase_[from_gid].store(kMigrationIdle, std::memory_order_release);
  migration_phase_[to_gid].store(kMigrationIdle, std::memory_order_release);
  if (queue_of_[from_gid] != nullptr) {
    queue_of_[from_gid]->not_empty.NotifyAll();
  }
  if (queue_of_[to_gid] != nullptr) queue_of_[to_gid]->not_empty.NotifyAll();
  metrics_.RecordMigrationFailure(request.component, request.from_task);
  INSIGHT_LOG(Warning) << "migration of " << request.component << "/"
                       << request.from_task << " -> " << request.to_task
                       << " aborted (" << cause.message()
                       << "); source stays authoritative";
  return cause;
}

bool LocalRuntime::HandleMigrationPhase(uint8_t phase, size_t gid,
                                        TaskRuntime* task,
                                        const ComponentDef& def) {
  switch (phase) {
    case kMigrationHold:
      // Frozen: arrivals keep queueing until MigrateTask releases the task.
      return false;
    case kMigrationSnapshot: {
      // Batch boundary on the source's own executor thread: serialize the
      // full state line and — when the task is checkpointed — submit it on
      // the task's checkpoint line, so the deferred acks it covers flush
      // when the persist completes, exactly like an interval checkpoint.
      std::string bytes;
      Status s = SerializeTask(task, &bytes);
      if (s.ok() && coordinator_ != nullptr && task->ckpt_slot >= 0) {
        // Wait out any in-flight interval persist: the migration snapshot
        // must be the slot's newest submission.
        while (!coordinator_->CanSubmit(task->ckpt_slot) &&
               !stopping_.load()) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        if (!stopping_.load()) SubmitTaskSnapshot(task, def, bytes);
      }
      {
        MutexLock lock(migration_.mutex);
        if (migration_.source_gid == gid && !migration_.snapshot_ready) {
          migration_.snapshot_ready = true;
          migration_.snapshot_status = s;
          migration_.bytes = std::move(bytes);
          migration_.cv.NotifyAll();
        }
      }
      // Self-transition to Hold — unless an abort already reset the phase
      // to Idle, in which case the task resumes as if nothing happened (the
      // extra snapshot submitted above is just a valid checkpoint).
      uint8_t expected = kMigrationSnapshot;
      migration_phase_[gid].compare_exchange_strong(
          expected, kMigrationHold, std::memory_order_acq_rel);
      return true;
    }
    case kMigrationRestore: {
      std::string bytes;
      {
        MutexLock lock(migration_.mutex);
        bytes = migration_.bytes;
      }
      Status s = ApplyTaskSnapshot(task, bytes);
      {
        MutexLock lock(migration_.mutex);
        if (migration_.target_gid == gid && !migration_.restore_done) {
          migration_.restore_done = true;
          migration_.restore_status = s;
          migration_.cv.NotifyAll();
        }
      }
      uint8_t expected = kMigrationRestore;
      migration_phase_[gid].compare_exchange_strong(
          expected, kMigrationHold, std::memory_order_acq_rel);
      return true;
    }
    case kMigrationRetire: {
      // The state now lives at the target: swap in a fresh bolt (the
      // Snapshottable contract has no "reset", and the old instance still
      // holds the migrated state) and clear the suppression ledger — the
      // target's copy travelled inside the container.
      task->bolt->Cleanup();
      task->bolt = def.bolt_factory();
      TaskContext context;
      context.component = def.name;
      context.num_tasks = def.num_tasks;
      context.task_index = task->task_index;
      task->bolt->Prepare(context);
      task->snapshottable = dynamic_cast<Snapshottable*>(task->bolt.get());
      task->pending_acks.clear();
      if (task->ledger != nullptr) task->ledger->Clear();
      {
        MutexLock lock(migration_.mutex);
        if (migration_.source_gid == gid && !migration_.retire_done) {
          migration_.retire_done = true;
          migration_.cv.NotifyAll();
        }
      }
      uint8_t expected = kMigrationRetire;
      migration_phase_[gid].compare_exchange_strong(
          expected, kMigrationIdle, std::memory_order_acq_rel);
      return true;
    }
    default:
      return false;
  }
}

bool LocalRuntime::ForwardQueuedTuples(size_t from_gid, size_t to_gid) {
  // Sweeps the retired source's queue into the state-owning target in
  // bounded chunks, with the producers' own admission discipline (credit
  // reservation, or the observe-room-then-append-whole overshoot bound).
  // Never blocks: this runs on the retired task's executor thread, which
  // may own the target task too — a full target means "stop here, the
  // executor drains it this same pass and re-enters on the next one".
  TaskQueue* from = queue_of_[from_gid];
  TaskQueue* to = queue_of_[to_gid];
  if (from == nullptr || to == nullptr) return false;
  overload::QueueGate* from_gate =
      gates_.empty() ? nullptr : gates_[from_gid].get();
  overload::QueueGate* to_gate =
      gates_.empty() ? nullptr : gates_[to_gid].get();
  const bool shedding = options_.overload.enable_load_shedding;
  bool any = false;
  std::vector<Tuple> chunk;
  while (!stopping_.load()) {
    // Reserve room at the target before popping anything, so a chunk never
    // needs to wait (credit mode: exact credits; otherwise: observed free
    // space, overshootable by at most this chunk — the flush-block bound).
    size_t room = 0;
    if (credit_flow_) {
      size_t want = options_.max_batch;
      while (want > 0 && !to_gate->TryAcquire(want)) {
        int64_t free = to_gate->capacity() - to_gate->admitted();
        size_t next =
            free > 0 ? std::min(static_cast<size_t>(free), options_.max_batch)
                     : size_t{0};
        if (next >= want) next = want - 1;  // racing admits: force progress
        want = next;
      }
      room = want;
    } else {
      MutexLock lock(to->mutex);
      room = to->queue.size() < options_.queue_capacity
                 ? std::min(options_.max_batch,
                            options_.queue_capacity - to->queue.size())
                 : 0;
    }
    if (room == 0) return any;
    chunk.clear();
    {
      MutexLock lock(from->mutex);
      size_t take = std::min(room, from->queue.size());
      for (size_t k = 0; k < take; ++k) {
        Tuple& t = from->queue.front();
        if (shedding && from->high_count > 0 &&
            t.priority() == TuplePriority::kHigh) {
          --from->high_count;
        }
        chunk.push_back(std::move(t));
        from->queue.pop_front();
      }
      if (take > 0) from->not_full.NotifyAll();
    }
    if (credit_flow_ && room > chunk.size()) {
      to_gate->Release(room - chunk.size());
    }
    if (chunk.empty()) return any;
    if (from_gate != nullptr) from_gate->Release(chunk.size());
    TrackInbound(from_gid, -static_cast<int64_t>(chunk.size()));
    {
      MutexLock lock(to->mutex);
      if (shedding) {
        for (const Tuple& t : chunk) {
          if (t.priority() == TuplePriority::kHigh) ++to->high_count;
        }
      }
      for (Tuple& t : chunk) {
        // TMS_ANALYZE_EXEMPT(deque chunk churn, bounded by queue_capacity)
        to->queue.push_back(std::move(t));
      }
      size_t sz = to->queue.size();
      if (credit_flow_) {
        TMS_CHECK_LE(sz, options_.queue_capacity)
            << "credit-admitted queue overshot its capacity on forward";
      }
      if (sz > to->peak_size.load(std::memory_order_relaxed)) {
        to->peak_size.store(sz, std::memory_order_relaxed);
      }
      to->not_empty.NotifyOne();
    }
    if (!credit_flow_ && to_gate != nullptr) {
      to_gate->ForceAcquire(chunk.size());
    }
    TrackInbound(to_gid, static_cast<int64_t>(chunk.size()));
    any = true;
  }
  return any;
}

double LocalRuntime::QueueOccupancy(const std::string& component, int task) {
  int component_index = -1;
  for (size_t c = 0; c < topology_.components().size(); ++c) {
    if (topology_.components()[c].name == component) {
      component_index = static_cast<int>(c);
      break;
    }
  }
  if (component_index < 0) return 0.0;
  auto& component_tasks = tasks_[static_cast<size_t>(component_index)];
  if (task < 0 || static_cast<size_t>(task) >= component_tasks.size()) {
    return 0.0;
  }
  TaskQueue* queue = component_tasks[static_cast<size_t>(task)].input.get();
  if (queue == nullptr || options_.queue_capacity == 0) return 0.0;
  size_t sz = 0;
  {
    MutexLock lock(queue->mutex);
    sz = queue->queue.size();
  }
  return static_cast<double>(sz) / static_cast<double>(options_.queue_capacity);
}

void LocalRuntime::MonitorLoop() {
  MicrosT interval = options_.monitor_interval_micros;
  MicrosT accumulated = 0;
  while (!stopping_.load()) {
    std::this_thread::sleep_for(std::chrono::microseconds(
        std::min<MicrosT>(interval, 50'000)));
    accumulated += std::min<MicrosT>(interval, 50'000);
    if (accumulated >= interval) {
      accumulated = 0;
      metrics_.TakeWindowSnapshot(options_.clock->NowMicros());
    }
  }
}

size_t LocalRuntime::max_queue_occupancy() const {
  size_t peak = 0;
  for (const auto& component_tasks : tasks_) {
    for (const auto& task : component_tasks) {
      if (task.input == nullptr) continue;
      peak = std::max(peak,
                      task.input->peak_size.load(std::memory_order_relaxed));
    }
  }
  return peak;
}

int LocalRuntime::WorkerOfExecutor(const std::string& component,
                                   int executor_index) const {
  // Round-robin assignment of executors to workers, in component declaration
  // order (Storm's even scheduler).
  int global_executor = 0;
  for (const ComponentDef& def : topology_.components()) {
    if (def.name == component) {
      global_executor += executor_index;
      break;
    }
    global_executor += def.num_executors;
  }
  return global_executor % std::max(1, options_.num_workers);
}

}  // namespace dsps
}  // namespace insight
