#include "dsps/local_runtime.h"

#include <chrono>
#include <functional>

#include "common/logging.h"

namespace insight {
namespace dsps {

namespace {

uint64_t HashValues(const std::vector<Value>& values,
                    const std::vector<int>& indexes) {
  uint64_t h = 1469598103934665603ULL;
  for (int idx : indexes) {
    std::string s = values[static_cast<size_t>(idx)].ToString();
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    h ^= 0x1f;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

/// Routes emissions of one task. Bound to the task for its whole lifetime;
/// the current input's spout_time is set before each Execute call so output
/// tuples inherit their origin time.
class LocalRuntime::TaskCollector : public Collector {
 public:
  TaskCollector(LocalRuntime* runtime, int component_index, int task_index)
      : runtime_(runtime),
        component_index_(component_index),
        task_index_(task_index) {}

  void Emit(std::vector<Value> values) override {
    Tuple tuple(runtime_->fields_[static_cast<size_t>(component_index_)],
                std::move(values), current_spout_time_);
    runtime_->Route(component_index_, tuple, /*direct_task=*/-1, &emitted_);
  }

  void EmitDirect(int target_task, std::vector<Value> values) override {
    Tuple tuple(runtime_->fields_[static_cast<size_t>(component_index_)],
                std::move(values), current_spout_time_);
    runtime_->Route(component_index_, tuple, target_task, &emitted_);
  }

  void set_current_spout_time(MicrosT t) { current_spout_time_ = t; }
  uint64_t TakeEmitted() {
    uint64_t e = emitted_;
    emitted_ = 0;
    return e;
  }
  int task_index() const { return task_index_; }

 private:
  LocalRuntime* runtime_;
  int component_index_;
  int task_index_;
  MicrosT current_spout_time_ = 0;
  uint64_t emitted_ = 0;
};

LocalRuntime::LocalRuntime(Topology topology, Options options)
    : topology_(std::move(topology)), options_(options) {
  const auto& components = topology_.components();
  fields_.resize(components.size());
  tasks_.resize(components.size());
  routes_.resize(components.size());
  shuffle_counters_ = std::vector<std::atomic<uint64_t>>(components.size());

  for (size_t c = 0; c < components.size(); ++c) {
    const ComponentDef& def = components[c];
    fields_[c] = std::make_shared<const Fields>(def.output_fields);
    metrics_.DeclareComponent(def.name, def.num_tasks);
    for (int t = 0; t < def.num_tasks; ++t) {
      TaskRuntime task;
      task.component_index = static_cast<int>(c);
      task.task_index = t;
      if (def.is_spout) {
        task.spout = def.spout_factory();
      } else {
        task.bolt = def.bolt_factory();
        task.input = std::make_unique<TaskQueue>();
      }
      tasks_[c].push_back(std::move(task));
    }
  }

  // Routing table: for each source component, its subscriber edges.
  for (size_t c = 0; c < components.size(); ++c) {
    for (const Subscription& sub : components[c].subscriptions) {
      const ComponentDef* source = topology_.Find(sub.source);
      INSIGHT_CHECK(source != nullptr);
      size_t source_index = 0;
      for (size_t s = 0; s < components.size(); ++s) {
        if (components[s].name == sub.source) source_index = s;
      }
      RouteTarget target;
      target.component_index = static_cast<int>(c);
      target.grouping = sub.grouping;
      for (const std::string& f : sub.fields) {
        target.field_indexes.push_back(source->output_fields.IndexOf(f));
      }
      routes_[source_index].push_back(std::move(target));
    }
  }
}

LocalRuntime::~LocalRuntime() { Stop(); }

Status LocalRuntime::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("runtime already started");
  }
  int spout_tasks = 0;
  for (const ComponentDef& def : topology_.components()) {
    if (def.is_spout) spout_tasks += def.num_tasks;
  }
  live_spout_tasks_.store(spout_tasks);

  const auto& components = topology_.components();
  for (size_t c = 0; c < components.size(); ++c) {
    for (int e = 0; e < components[c].num_executors; ++e) {
      threads_.emplace_back(
          [this, c, e] { ExecutorLoop(static_cast<int>(c), e); });
    }
  }
  if (options_.monitor_interval_micros > 0) {
    monitor_thread_ = std::thread([this] { MonitorLoop(); });
  }
  return Status::OK();
}

void LocalRuntime::NotifyPossiblyDone() {
  if (live_spout_tasks_.load() == 0 && in_flight_.load() == 0) {
    std::lock_guard<std::mutex> lock(done_mutex_);
    done_cv_.notify_all();
  }
}

void LocalRuntime::AwaitCompletion() {
  {
    std::unique_lock<std::mutex> lock(done_mutex_);
    done_cv_.wait(lock, [this] {
      return stopping_.load() ||
             (live_spout_tasks_.load() == 0 && in_flight_.load() == 0);
    });
  }
  Stop();
}

void LocalRuntime::Stop() {
  if (!started_.load()) return;
  bool was_stopping = stopping_.exchange(true);
  // Wake everyone: emitters blocked on full queues, executors on empty ones.
  for (auto& component_tasks : tasks_) {
    for (auto& task : component_tasks) {
      if (task.input != nullptr) {
        task.input->not_empty.notify_all();
        task.input->not_full.notify_all();
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(done_mutex_);
    done_cv_.notify_all();
  }
  if (was_stopping) return;
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  if (monitor_thread_.joinable()) monitor_thread_.join();
  finished_.store(true);
}

void LocalRuntime::Push(int component_index, int task_index,
                        const Tuple& tuple) {
  TaskQueue* queue =
      tasks_[static_cast<size_t>(component_index)][static_cast<size_t>(task_index)]
          .input.get();
  std::unique_lock<std::mutex> lock(queue->mutex);
  queue->not_full.wait(lock, [&] {
    return stopping_.load() || queue->queue.size() < options_.queue_capacity;
  });
  if (stopping_.load()) return;  // drop on shutdown
  queue->queue.push_back(tuple);
  in_flight_.fetch_add(1);
  queue->not_empty.notify_one();
}

void LocalRuntime::Route(int source_component, const Tuple& tuple,
                         int direct_task, uint64_t* emitted) {
  for (const RouteTarget& target :
       routes_[static_cast<size_t>(source_component)]) {
    int num_tasks = static_cast<int>(
        tasks_[static_cast<size_t>(target.component_index)].size());
    if (direct_task >= 0) {
      if (target.grouping != Grouping::kDirect) continue;
      INSIGHT_CHECK(direct_task < num_tasks)
          << "EmitDirect task " << direct_task << " out of range";
      Push(target.component_index, direct_task, tuple);
      ++*emitted;
      continue;
    }
    switch (target.grouping) {
      case Grouping::kShuffle: {
        uint64_t n = shuffle_counters_[static_cast<size_t>(source_component)]
                         .fetch_add(1, std::memory_order_relaxed);
        Push(target.component_index, static_cast<int>(n % num_tasks), tuple);
        ++*emitted;
        break;
      }
      case Grouping::kFields: {
        uint64_t h = HashValues(tuple.values(), target.field_indexes);
        Push(target.component_index,
             static_cast<int>(h % static_cast<uint64_t>(num_tasks)), tuple);
        ++*emitted;
        break;
      }
      case Grouping::kAll:
        for (int t = 0; t < num_tasks; ++t) {
          Push(target.component_index, t, tuple);
          ++*emitted;
        }
        break;
      case Grouping::kGlobal:
        Push(target.component_index, 0, tuple);
        ++*emitted;
        break;
      case Grouping::kDirect:
        // Plain Emit does not feed direct subscriptions.
        break;
    }
  }
}

void LocalRuntime::ExecutorLoop(int component_index, int executor_index) {
  const ComponentDef& def =
      topology_.components()[static_cast<size_t>(component_index)];
  // Tasks owned by this executor: task_index % executors == executor_index.
  std::vector<TaskRuntime*> my_tasks;
  std::vector<std::unique_ptr<TaskCollector>> collectors;
  for (auto& task : tasks_[static_cast<size_t>(component_index)]) {
    if (task.task_index % def.num_executors == executor_index) {
      my_tasks.push_back(&task);
      collectors.push_back(std::make_unique<TaskCollector>(
          this, component_index, task.task_index));
    }
  }

  TaskContext context;
  context.component = def.name;
  context.num_tasks = def.num_tasks;
  for (TaskRuntime* task : my_tasks) {
    context.task_index = task->task_index;
    if (task->spout != nullptr) {
      task->spout->Open(context);
    } else {
      task->bolt->Prepare(context);
    }
  }

  if (def.is_spout) {
    size_t live = my_tasks.size();
    while (live > 0 && !stopping_.load()) {
      for (size_t i = 0; i < my_tasks.size(); ++i) {
        TaskRuntime* task = my_tasks[i];
        if (task->spout_done) continue;
        if (stopping_.load()) break;
        collectors[i]->set_current_spout_time(options_.clock->NowMicros());
        bool more = task->spout->NextTuple(collectors[i].get());
        uint64_t emitted = collectors[i]->TakeEmitted();
        if (emitted > 0) {
          metrics_.RecordEmit(def.name, task->task_index, emitted);
        }
        if (!more) {
          task->spout_done = true;
          --live;
          live_spout_tasks_.fetch_sub(1);
          NotifyPossiblyDone();
        }
      }
    }
    for (TaskRuntime* task : my_tasks) task->spout->Close();
    return;
  }

  // Bolt executor: drain the owned tasks' queues round-robin, taking up to a
  // small batch from each before moving on (pseudo-parallel execution of
  // co-scheduled tasks).
  constexpr size_t kBatch = 16;
  while (true) {
    bool any = false;
    for (size_t i = 0; i < my_tasks.size(); ++i) {
      TaskRuntime* task = my_tasks[i];
      for (size_t b = 0; b < kBatch; ++b) {
        Tuple tuple;
        {
          std::unique_lock<std::mutex> lock(task->input->mutex);
          if (task->input->queue.empty()) break;
          tuple = std::move(task->input->queue.front());
          task->input->queue.pop_front();
          task->input->not_full.notify_one();
        }
        any = true;
        collectors[i]->set_current_spout_time(tuple.spout_time());
        MicrosT start = options_.clock->NowMicros();
        task->bolt->Execute(tuple, collectors[i].get());
        MicrosT elapsed = options_.clock->NowMicros() - start;
        metrics_.Record(def.name, task->task_index, elapsed);
        uint64_t emitted = collectors[i]->TakeEmitted();
        if (emitted > 0) metrics_.RecordEmit(def.name, task->task_index, emitted);
        in_flight_.fetch_sub(1);
        NotifyPossiblyDone();
      }
    }
    if (!any) {
      if (stopping_.load()) break;
      // Park briefly on the first owned queue.
      TaskRuntime* task = my_tasks.empty() ? nullptr : my_tasks[0];
      if (task == nullptr) break;
      std::unique_lock<std::mutex> lock(task->input->mutex);
      task->input->not_empty.wait_for(
          lock, std::chrono::milliseconds(1), [&] {
            return stopping_.load() || !task->input->queue.empty();
          });
    }
  }
  for (TaskRuntime* task : my_tasks) task->bolt->Cleanup();
}

void LocalRuntime::MonitorLoop() {
  MicrosT interval = options_.monitor_interval_micros;
  MicrosT accumulated = 0;
  while (!stopping_.load()) {
    std::this_thread::sleep_for(std::chrono::microseconds(
        std::min<MicrosT>(interval, 50'000)));
    accumulated += std::min<MicrosT>(interval, 50'000);
    if (accumulated >= interval) {
      accumulated = 0;
      metrics_.TakeWindowSnapshot(options_.clock->NowMicros());
    }
  }
}

int LocalRuntime::WorkerOfExecutor(const std::string& component,
                                   int executor_index) const {
  // Round-robin assignment of executors to workers, in component declaration
  // order (Storm's even scheduler).
  int global_executor = 0;
  for (const ComponentDef& def : topology_.components()) {
    if (def.name == component) {
      global_executor += executor_index;
      break;
    }
    global_executor += def.num_executors;
  }
  return global_executor % std::max(1, options_.num_workers);
}

}  // namespace dsps
}  // namespace insight
