#include "dsps/xml_topology.h"

#include "common/strings.h"

namespace insight {
namespace dsps {

Status ComponentRegistry::RegisterSpout(const std::string& type,
                                        SpoutMaker maker) {
  if (spouts_.count(type) > 0) {
    return Status::AlreadyExists("spout type '" + type + "' already registered");
  }
  spouts_[type] = std::move(maker);
  return Status::OK();
}

Status ComponentRegistry::RegisterBolt(const std::string& type, BoltMaker maker) {
  if (bolts_.count(type) > 0) {
    return Status::AlreadyExists("bolt type '" + type + "' already registered");
  }
  bolts_[type] = std::move(maker);
  return Status::OK();
}

Result<SpoutFactory> ComponentRegistry::MakeSpout(const std::string& type,
                                                  const XmlNode& node) const {
  auto it = spouts_.find(type);
  if (it == spouts_.end()) {
    return Status::NotFound("unknown spout type '" + type + "'");
  }
  return it->second(node);
}

Result<BoltFactory> ComponentRegistry::MakeBolt(const std::string& type,
                                                const XmlNode& node) const {
  auto it = bolts_.find(type);
  if (it == bolts_.end()) {
    return Status::NotFound("unknown bolt type '" + type + "'");
  }
  return it->second(node);
}

Result<std::string> XmlParam(const XmlNode& component, const std::string& key) {
  for (const XmlNode* param : component.Children("param")) {
    if (param->Attr("key") == key) return param->Attr("value");
  }
  return Status::NotFound("component '" + component.Attr("name") +
                          "' has no param '" + key + "'");
}

std::string XmlParamOr(const XmlNode& component, const std::string& key,
                       const std::string& fallback) {
  auto r = XmlParam(component, key);
  return r.ok() ? *r : fallback;
}

namespace {

Result<int> AttrInt(const XmlNode& node, const std::string& key, int fallback) {
  if (!node.HasAttr(key)) return fallback;
  INSIGHT_ASSIGN_OR_RETURN(long long v, ParseInt(node.Attr(key)));
  return static_cast<int>(v);
}

Result<Fields> AttrFields(const XmlNode& node) {
  std::vector<std::string> names;
  if (node.HasAttr("fields")) {
    for (const std::string& f : Split(node.Attr("fields"), ',')) {
      std::string trimmed(Trim(f));
      if (!trimmed.empty()) names.push_back(trimmed);
    }
  }
  return Fields(std::move(names));
}

Result<Grouping> ParseGrouping(const std::string& name) {
  std::string lower = ToLower(name);
  if (lower == "shuffle") return Grouping::kShuffle;
  if (lower == "fields") return Grouping::kFields;
  if (lower == "all") return Grouping::kAll;
  if (lower == "global") return Grouping::kGlobal;
  if (lower == "direct") return Grouping::kDirect;
  return Status::ParseError("unknown grouping '" + name + "'");
}

}  // namespace

Result<XmlTopology> LoadTopologyFromXml(const std::string& xml,
                                        const ComponentRegistry& registry) {
  INSIGHT_ASSIGN_OR_RETURN(auto root, ParseXml(xml));
  if (root->name != "topology") {
    return Status::ParseError("root element must be <topology>, got <" +
                              root->name + ">");
  }

  TopologyBuilder builder;
  for (const auto& child : root->children) {
    if (child->name == "spout") {
      std::string name = child->Attr("name");
      std::string type = child->Attr("type");
      if (name.empty() || type.empty()) {
        return Status::ParseError("<spout> requires name and type attributes");
      }
      INSIGHT_ASSIGN_OR_RETURN(int executors, AttrInt(*child, "executors", 1));
      INSIGHT_ASSIGN_OR_RETURN(int tasks, AttrInt(*child, "tasks", executors));
      INSIGHT_ASSIGN_OR_RETURN(Fields fields, AttrFields(*child));
      INSIGHT_ASSIGN_OR_RETURN(SpoutFactory factory,
                               registry.MakeSpout(type, *child));
      builder.SetSpout(name, std::move(factory), std::move(fields), executors,
                       tasks);
    } else if (child->name == "bolt") {
      std::string name = child->Attr("name");
      std::string type = child->Attr("type");
      if (name.empty() || type.empty()) {
        return Status::ParseError("<bolt> requires name and type attributes");
      }
      INSIGHT_ASSIGN_OR_RETURN(int executors, AttrInt(*child, "executors", 1));
      INSIGHT_ASSIGN_OR_RETURN(int tasks, AttrInt(*child, "tasks", executors));
      INSIGHT_ASSIGN_OR_RETURN(Fields fields, AttrFields(*child));
      INSIGHT_ASSIGN_OR_RETURN(BoltFactory factory,
                               registry.MakeBolt(type, *child));
      auto declarer = builder.SetBolt(name, std::move(factory),
                                      std::move(fields), executors, tasks);
      for (const XmlNode* sub : child->Children("subscribe")) {
        std::string source = sub->Attr("source");
        if (source.empty()) {
          return Status::ParseError("<subscribe> requires a source attribute");
        }
        INSIGHT_ASSIGN_OR_RETURN(Grouping grouping,
                                 ParseGrouping(sub->Attr("grouping", "shuffle")));
        switch (grouping) {
          case Grouping::kShuffle:
            declarer.ShuffleGrouping(source);
            break;
          case Grouping::kAll:
            declarer.AllGrouping(source);
            break;
          case Grouping::kGlobal:
            declarer.GlobalGrouping(source);
            break;
          case Grouping::kDirect:
            declarer.DirectGrouping(source);
            break;
          case Grouping::kFields: {
            std::vector<std::string> field_names;
            for (const std::string& f : Split(sub->Attr("fields"), ',')) {
              std::string trimmed(Trim(f));
              if (!trimmed.empty()) field_names.push_back(trimmed);
            }
            declarer.FieldsGrouping(source, std::move(field_names));
            break;
          }
        }
      }
    } else if (child->name == "rules") {
      // handled below
    } else {
      return Status::ParseError("unexpected element <" + child->name +
                                "> under <topology>");
    }
  }

  XmlTopology out;
  INSIGHT_ASSIGN_OR_RETURN(out.topology, builder.Build());
  if (const XmlNode* rules = root->FirstChild("rules")) {
    for (const XmlNode* rule : rules->Children("rule")) {
      out.rules.emplace_back(rule->Attr("name"), rule->text);
    }
  }
  return out;
}

}  // namespace dsps
}  // namespace insight
