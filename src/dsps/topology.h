#ifndef INSIGHT_DSPS_TOPOLOGY_H_
#define INSIGHT_DSPS_TOPOLOGY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "dsps/tuple.h"

namespace insight {
namespace dsps {

/// How a bolt subscribes to an upstream component's stream (Storm
/// groupings).
enum class Grouping {
  kShuffle,  // round-robin across the subscriber's tasks
  kFields,   // hash of selected fields -> task
  kAll,      // replicate to every task
  kGlobal,   // always task 0
  kDirect,   // emitter chooses the target task via EmitDirect
};

const char* GroupingToString(Grouping grouping);

/// Execution context handed to component instances.
struct TaskContext {
  std::string component;
  int task_index = 0;
  int num_tasks = 1;
};

/// Sink for tuples produced by a component instance. EmitDirect targets one
/// subscriber task (requires the subscription to use Grouping::kDirect).
class Collector {
 public:
  virtual ~Collector() = default;
  virtual void Emit(std::vector<Value> values) = 0;
  virtual void EmitDirect(int task_index, std::vector<Value> values) = 0;

  /// Emit that documents single-consumer intent: the runtime may hand the
  /// value buffer straight to the one downstream task without sharing.
  /// Payloads are refcount-shared either way, so the default forwards.
  virtual void EmitMove(std::vector<Value> values) { Emit(std::move(values)); }

  /// Spout-only: emit a root tuple tracked by the reliability subsystem
  /// under `message_id` (Storm's emit-with-message-id). When the topology
  /// runs with acking enabled, the runtime tracks the tuple tree and calls
  /// Spout::Ack(message_id) once every descendant is processed, or replays
  /// the tuple and eventually Spout::Fail(message_id) on timeout. Message
  /// ids must be unique among in-flight tuples. Without acking (or from a
  /// bolt) this behaves exactly like Emit.
  virtual void EmitRooted(uint64_t message_id, std::vector<Value> values) {
    (void)message_id;
    Emit(std::move(values));
  }

  /// Emit with an explicit shedding tier, overriding the emitter's default
  /// (the component's declared priority for spouts, the input's priority for
  /// bolts). Used by the distributed ingress to preserve the sender-side
  /// priority across a worker hop; most components never call this. The
  /// default ignores the override.
  virtual void EmitPrioritized(TuplePriority priority,
                               std::vector<Value> values) {
    (void)priority;
    Emit(std::move(values));
  }

  /// EmitRooted with an explicit shedding tier (see EmitPrioritized); the
  /// distributed ingress uses this so tuple trees re-rooted after a network
  /// hop keep the sender-side priority. The default ignores the override.
  virtual void EmitRootedPrioritized(TuplePriority priority,
                                     uint64_t message_id,
                                     std::vector<Value> values) {
    (void)priority;
    EmitRooted(message_id, std::move(values));
  }
};

/// An input source: spouts feed the topology with data (Section 2.1.1).
/// One instance exists per task. NextTuple pushes zero or more tuples and
/// returns false when the source is exhausted (the runtime then marks this
/// spout task finished).
class Spout {
 public:
  virtual ~Spout() = default;
  virtual void Open(const TaskContext& /*context*/) {}
  virtual bool NextTuple(Collector* collector) = 0;
  /// At-least-once callbacks (acking topologies only; see EmitRooted).
  /// Delivered on the spout's executor thread, like NextTuple. Ack fires
  /// when the message's tuple tree fully processed; Fail fires when the
  /// tree timed out and exhausted its replay budget.
  virtual void Ack(uint64_t /*message_id*/) {}
  virtual void Fail(uint64_t /*message_id*/) {}
  virtual void Close() {}
};

/// Processing logic node. One instance per task.
class Bolt {
 public:
  virtual ~Bolt() = default;
  virtual void Prepare(const TaskContext& /*context*/) {}
  virtual void Execute(const Tuple& input, Collector* collector) = 0;

  /// Batch execution opt-in. When a bolt returns true here, an executor that
  /// drains several queued tuples in one pass may hand them over in a single
  /// ExecuteBatch call instead of tuple-at-a-time Execute. The runtime only
  /// does this when per-tuple bookkeeping (acking, dedup ledger, tracing,
  /// fault injection) is off for the task, so a batch-capable bolt must
  /// still implement Execute for those configurations. ExecuteBatch must be
  /// observably equivalent to calling Execute on each tuple in order.
  virtual bool SupportsExecuteBatch() const { return false; }
  virtual void ExecuteBatch(const Tuple* inputs, size_t count,
                            Collector* collector) {
    for (size_t i = 0; i < count; ++i) Execute(inputs[i], collector);
  }

  virtual void Cleanup() {}
};

/// Opt-in mixin for bolts with recoverable state. When the runtime runs with
/// `Options::enable_checkpointing`, every task whose bolt implements this
/// interface is checkpointed: the executor periodically serializes the bolt
/// at a batch boundary and hands the bytes to the CheckpointCoordinator's
/// background persister; a relaunched executor feeds the latest durable
/// snapshot back through RestoreState (after Prepare) before resuming the
/// task's queue.
///
/// Contract: RestoreState must either fully apply the snapshot or leave the
/// bolt in a clean freshly-prepared state and return an error — a partial
/// restore would silently corrupt recovered results. cep::Engine::Restore
/// follows the same rule, so engine-backed bolts can simply forward.
class Snapshottable {
 public:
  virtual ~Snapshottable() = default;
  virtual Status SnapshotState(std::string* out) const = 0;
  virtual Status RestoreState(const std::string& bytes) = 0;
};

using SpoutFactory = std::function<std::unique_ptr<Spout>()>;
using BoltFactory = std::function<std::unique_ptr<Bolt>()>;

/// One subscription edge of the topology graph.
struct Subscription {
  std::string source;
  Grouping grouping = Grouping::kShuffle;
  /// Field names hashed for kFields.
  std::vector<std::string> fields;
};

/// A component definition: the user decides the number of executors
/// (threads) and tasks (component instances); tasks in excess of executors
/// run pseudo-parallel on shared executors (Figure 1).
struct ComponentDef {
  std::string name;
  bool is_spout = false;
  SpoutFactory spout_factory;
  BoltFactory bolt_factory;
  int num_executors = 1;
  int num_tasks = 1;
  Fields output_fields;
  std::vector<Subscription> subscriptions;  // bolts only
  /// Shedding tier stamped on this component's emissions (spouts seed the
  /// tier; bolt emissions inherit their input's tier, so the declared value
  /// only matters for spouts). See dsps/overload.h.
  TuplePriority priority = TuplePriority::kNormal;
};

/// A validated processing graph.
class Topology {
 public:
  const std::vector<ComponentDef>& components() const { return components_; }
  const ComponentDef* Find(const std::string& name) const;
  /// Components subscribed to `source`.
  std::vector<const ComponentDef*> Subscribers(const std::string& source) const;
  int total_tasks() const;
  int total_executors() const;

 private:
  friend class TopologyBuilder;
  std::vector<ComponentDef> components_;
};

/// Fluent builder mirroring Storm's TopologyBuilder.
class TopologyBuilder {
 public:
  /// Declarer returned by SetBolt for wiring subscriptions.
  class BoltDeclarer {
   public:
    BoltDeclarer& ShuffleGrouping(const std::string& source);
    BoltDeclarer& FieldsGrouping(const std::string& source,
                                 std::vector<std::string> fields);
    BoltDeclarer& AllGrouping(const std::string& source);
    BoltDeclarer& GlobalGrouping(const std::string& source);
    BoltDeclarer& DirectGrouping(const std::string& source);

   private:
    friend class TopologyBuilder;
    BoltDeclarer(TopologyBuilder* builder, size_t index)
        : builder_(builder), index_(index) {}
    TopologyBuilder* builder_;
    size_t index_;
  };

  /// Adds a spout. `num_tasks` defaults to `num_executors`.
  TopologyBuilder& SetSpout(const std::string& name, SpoutFactory factory,
                            Fields output_fields, int num_executors = 1,
                            int num_tasks = -1);

  BoltDeclarer SetBolt(const std::string& name, BoltFactory factory,
                       Fields output_fields, int num_executors = 1,
                       int num_tasks = -1);

  /// Sets the shedding tier of an already-declared component (see
  /// ComponentDef::priority). Checks that the component exists at Build.
  TopologyBuilder& SetPriority(const std::string& name,
                               TuplePriority priority);

  /// Validates and produces the topology: unique names, known subscription
  /// sources, fields-grouping fields present in the source's declaration,
  /// every bolt subscribed to something, no cycles (emission is downstream
  /// only), executors <= tasks.
  Result<Topology> Build() const;

 private:
  std::vector<ComponentDef> components_;
  std::vector<std::string> missing_priority_targets_;
};

}  // namespace dsps
}  // namespace insight

#endif  // INSIGHT_DSPS_TOPOLOGY_H_
