#include "dsps/topology.h"

#include <set>

namespace insight {
namespace dsps {

const char* GroupingToString(Grouping grouping) {
  switch (grouping) {
    case Grouping::kShuffle:
      return "shuffle";
    case Grouping::kFields:
      return "fields";
    case Grouping::kAll:
      return "all";
    case Grouping::kGlobal:
      return "global";
    case Grouping::kDirect:
      return "direct";
  }
  return "?";
}

const ComponentDef* Topology::Find(const std::string& name) const {
  for (const ComponentDef& c : components_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::vector<const ComponentDef*> Topology::Subscribers(
    const std::string& source) const {
  std::vector<const ComponentDef*> out;
  for (const ComponentDef& c : components_) {
    for (const Subscription& sub : c.subscriptions) {
      if (sub.source == source) {
        out.push_back(&c);
        break;
      }
    }
  }
  return out;
}

int Topology::total_tasks() const {
  int total = 0;
  for (const ComponentDef& c : components_) total += c.num_tasks;
  return total;
}

int Topology::total_executors() const {
  int total = 0;
  for (const ComponentDef& c : components_) total += c.num_executors;
  return total;
}

TopologyBuilder& TopologyBuilder::SetSpout(const std::string& name,
                                           SpoutFactory factory,
                                           Fields output_fields,
                                           int num_executors, int num_tasks) {
  ComponentDef def;
  def.name = name;
  def.is_spout = true;
  def.spout_factory = std::move(factory);
  def.num_executors = num_executors;
  def.num_tasks = num_tasks < 0 ? num_executors : num_tasks;
  def.output_fields = std::move(output_fields);
  components_.push_back(std::move(def));
  return *this;
}

TopologyBuilder::BoltDeclarer TopologyBuilder::SetBolt(const std::string& name,
                                                       BoltFactory factory,
                                                       Fields output_fields,
                                                       int num_executors,
                                                       int num_tasks) {
  ComponentDef def;
  def.name = name;
  def.is_spout = false;
  def.bolt_factory = std::move(factory);
  def.num_executors = num_executors;
  def.num_tasks = num_tasks < 0 ? num_executors : num_tasks;
  def.output_fields = std::move(output_fields);
  components_.push_back(std::move(def));
  return BoltDeclarer(this, components_.size() - 1);
}

TopologyBuilder& TopologyBuilder::SetPriority(const std::string& name,
                                              TuplePriority priority) {
  for (ComponentDef& def : components_) {
    if (def.name == name) {
      def.priority = priority;
      return *this;
    }
  }
  // Remember the dangling reference so Build() can report it (the fluent
  // setter itself has no error channel).
  missing_priority_targets_.push_back(name);
  return *this;
}

TopologyBuilder::BoltDeclarer& TopologyBuilder::BoltDeclarer::ShuffleGrouping(
    const std::string& source) {
  builder_->components_[index_].subscriptions.push_back(
      {source, Grouping::kShuffle, {}});
  return *this;
}

TopologyBuilder::BoltDeclarer& TopologyBuilder::BoltDeclarer::FieldsGrouping(
    const std::string& source, std::vector<std::string> fields) {
  builder_->components_[index_].subscriptions.push_back(
      {source, Grouping::kFields, std::move(fields)});
  return *this;
}

TopologyBuilder::BoltDeclarer& TopologyBuilder::BoltDeclarer::AllGrouping(
    const std::string& source) {
  builder_->components_[index_].subscriptions.push_back(
      {source, Grouping::kAll, {}});
  return *this;
}

TopologyBuilder::BoltDeclarer& TopologyBuilder::BoltDeclarer::GlobalGrouping(
    const std::string& source) {
  builder_->components_[index_].subscriptions.push_back(
      {source, Grouping::kGlobal, {}});
  return *this;
}

TopologyBuilder::BoltDeclarer& TopologyBuilder::BoltDeclarer::DirectGrouping(
    const std::string& source) {
  builder_->components_[index_].subscriptions.push_back(
      {source, Grouping::kDirect, {}});
  return *this;
}

Result<Topology> TopologyBuilder::Build() const {
  if (!missing_priority_targets_.empty()) {
    return Status::NotFound("SetPriority on undeclared component '" +
                            missing_priority_targets_.front() + "'");
  }
  std::set<std::string> names;
  for (const ComponentDef& c : components_) {
    if (c.name.empty()) {
      return Status::InvalidArgument("component requires a name");
    }
    if (!names.insert(c.name).second) {
      return Status::AlreadyExists("duplicate component '" + c.name + "'");
    }
    if (c.num_tasks <= 0 || c.num_executors <= 0) {
      return Status::InvalidArgument("component '" + c.name +
                                     "' requires positive tasks and executors");
    }
    if (c.num_executors > c.num_tasks) {
      return Status::InvalidArgument(
          "component '" + c.name +
          "': executors may not exceed tasks (one executor runs one or more "
          "tasks)");
    }
    if (c.is_spout && !c.subscriptions.empty()) {
      return Status::InvalidArgument("spout '" + c.name +
                                     "' may not subscribe to streams");
    }
    if (c.is_spout && !c.spout_factory) {
      return Status::InvalidArgument("spout '" + c.name + "' missing factory");
    }
    if (!c.is_spout && !c.bolt_factory) {
      return Status::InvalidArgument("bolt '" + c.name + "' missing factory");
    }
  }

  // Validate subscriptions and detect cycles with a DFS over edges
  // source -> subscriber.
  std::map<std::string, const ComponentDef*> by_name;
  for (const ComponentDef& c : components_) by_name[c.name] = &c;
  for (const ComponentDef& c : components_) {
    if (c.is_spout) continue;
    if (c.subscriptions.empty()) {
      return Status::InvalidArgument("bolt '" + c.name +
                                     "' subscribes to no stream");
    }
    for (const Subscription& sub : c.subscriptions) {
      auto it = by_name.find(sub.source);
      if (it == by_name.end()) {
        return Status::NotFound("bolt '" + c.name +
                                "' subscribes to unknown component '" +
                                sub.source + "'");
      }
      if (sub.grouping == Grouping::kFields) {
        if (sub.fields.empty()) {
          return Status::InvalidArgument("fields grouping on '" + c.name +
                                         "' requires field names");
        }
        for (const std::string& f : sub.fields) {
          if (it->second->output_fields.IndexOf(f) < 0) {
            return Status::NotFound("fields grouping field '" + f +
                                    "' not declared by '" + sub.source + "'");
          }
        }
      }
    }
  }

  // Cycle detection (colors: 0 unvisited, 1 in progress, 2 done).
  std::map<std::string, int> color;
  std::function<bool(const std::string&)> has_cycle =
      [&](const std::string& node) -> bool {
    color[node] = 1;
    for (const ComponentDef& c : components_) {
      for (const Subscription& sub : c.subscriptions) {
        if (sub.source != node) continue;
        if (color[c.name] == 1) return true;
        if (color[c.name] == 0 && has_cycle(c.name)) return true;
      }
    }
    color[node] = 2;
    return false;
  };
  for (const ComponentDef& c : components_) {
    if (color[c.name] == 0 && has_cycle(c.name)) {
      return Status::InvalidArgument("topology graph contains a cycle");
    }
  }

  Topology topology;
  topology.components_ = components_;
  return topology;
}

}  // namespace dsps
}  // namespace insight
