#ifndef INSIGHT_DSPS_LOCAL_RUNTIME_H_
#define INSIGHT_DSPS_LOCAL_RUNTIME_H_

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "dsps/metrics.h"
#include "dsps/topology.h"
#include "reliability/acker.h"
#include "reliability/fault_injector.h"
#include "reliability/replay.h"

namespace insight {
namespace dsps {

/// Multithreaded in-process execution of a topology, mirroring Storm's local
/// cluster: every executor is a thread, tasks in excess of their component's
/// executors share an executor pseudo-parallel (Figure 1), and executors are
/// assigned round-robin to worker processes (the paper configures one worker
/// per cluster node, following [35]).
///
/// Termination: a run completes when every spout task has reported
/// exhaustion (NextTuple returned false), no tuple remains in flight, and —
/// with acking enabled — every tracked tuple tree has been acked, replayed
/// to success, or permanently failed.
///
/// Reliability (opt-in, `Options::enable_acking`): spout emissions via
/// Collector::EmitRooted are tracked by a Storm-style XOR acker
/// (src/reliability). Trees not fully processed within `ack_timeout_micros`
/// are re-emitted from the runtime's replay buffer with exponential backoff
/// up to `max_replays` times, then permanently failed (Spout::Fail). A
/// supervisor thread additionally restarts executor threads killed by the
/// optional FaultInjector, mirroring Storm's supervisor daemon.
class LocalRuntime {
 public:
  struct Options {
    /// Worker processes to spread executors over (informational grouping
    /// surfaced via WorkerOfExecutor; all threads share this process).
    int num_workers = 1;
    /// Per-task input queue capacity; emitters block when full
    /// (backpressure). A flushed block is appended whole once the queue
    /// dips below capacity, so occupancy can overshoot by up to one block
    /// (at most `emit_batch` tuples).
    size_t queue_capacity = 8192;
    /// Consumer side: max tuples a bolt executor drains from one task queue
    /// per lock acquisition.
    size_t max_batch = 64;
    /// Producer side: emissions are staged in a per-collector outbox and
    /// flushed as per-target blocks (one lock + one CV wake per block) once
    /// this many tuples are staged, or at the emitter's natural flush
    /// points (end of an Execute batch, spout idle/exhaustion).
    size_t emit_batch = 32;
    /// When > 0, a monitor thread takes a metrics window snapshot at this
    /// period (the paper uses 40 s).
    MicrosT monitor_interval_micros = 0;
    const Clock* clock = SystemClock::Get();

    /// At-least-once delivery for EmitRooted tuples. Off by default: the
    /// unacked path is byte-for-byte the seed behaviour and the figure
    /// benchmarks run unchanged.
    bool enable_acking = false;
    /// A tree not fully acked this long after (re-)emission is failed.
    MicrosT ack_timeout_micros = 30'000'000;
    /// Replay budget and backoff (see reliability::ReplayPolicy).
    int max_replays = 3;
    MicrosT replay_backoff_micros = 10'000;
    double replay_backoff_factor = 2.0;
    /// Supervisor sweep period (tree expiry + crashed-executor restarts).
    MicrosT supervisor_interval_micros = 2'000;
    /// Optional fault injection; not owned, must outlive the runtime. The
    /// supervisor restarts crashed executors whether or not acking is on.
    reliability::FaultInjector* fault_injector = nullptr;
  };

  LocalRuntime(Topology topology, Options options);
  ~LocalRuntime();

  LocalRuntime(const LocalRuntime&) = delete;
  LocalRuntime& operator=(const LocalRuntime&) = delete;

  /// Spawns executor threads. FailedPrecondition if already started.
  Status Start();

  /// Blocks until the topology drains (see class comment), then stops all
  /// threads. Also usable after Stop().
  void AwaitCompletion();

  /// Requests asynchronous stop (tuples may be dropped) and joins threads.
  void Stop();

  bool finished() const { return finished_.load(); }

  MetricsRegistry* metrics() { return &metrics_; }
  const Topology& topology() const { return topology_; }

  /// Tracked tuple trees not yet resolved (acking only).
  size_t pending_trees() const { return pending_roots_.load(); }
  /// Executor threads restarted by the supervisor after injected crashes.
  uint64_t executor_restarts() const { return executor_restarts_.load(); }

  /// Worker process index of an executor (component, executor_index).
  int WorkerOfExecutor(const std::string& component, int executor_index) const;

 private:
  /// Lock hierarchy: a TaskQueue::mutex is a leaf — nothing else is
  /// acquired while one is held (see DESIGN.md "Concurrency discipline").
  struct TaskQueue {
    Mutex mutex;
    CondVar not_empty;
    CondVar not_full;
    std::deque<Tuple> queue GUARDED_BY(mutex);
  };

  /// Per-collector staging buffer for batched hand-off: tuples accumulate
  /// here (already counted in `in_flight_`, edge ids already assigned) and
  /// are pushed to their target queues as blocks by FlushOutbox.
  struct Outbox {
    std::vector<std::vector<Tuple>> per_task;  // indexed by global task id
    std::vector<uint32_t> dirty;               // global task ids with tuples
    size_t staged = 0;
  };

  /// Ack/Fail notifications queued for delivery on the spout's executor
  /// thread (Storm delivers both callbacks on the spout executor).
  struct SpoutEventQueue {
    Mutex mutex;
    // (is_ack, message_id)
    std::deque<std::pair<bool, uint64_t>> events GUARDED_BY(mutex);
  };

  struct TaskRuntime {
    int component_index = 0;
    int task_index = 0;  // within component
    std::unique_ptr<Spout> spout;
    std::unique_ptr<Bolt> bolt;
    std::unique_ptr<TaskQueue> input;        // bolts only
    std::unique_ptr<SpoutEventQueue> events; // spouts only, acking only
    bool spout_done = false;
  };

  struct RouteTarget {
    int component_index = 0;
    Grouping grouping = Grouping::kShuffle;
    std::vector<int> field_indexes;  // source-field indexes for kFields
  };

  /// One executor thread plus its liveness state, so the supervisor can
  /// detect an injected crash and relaunch the executor.
  struct ExecutorSlot {
    int component_index = 0;
    int executor_index = 0;
    std::thread thread;
    std::atomic<bool> crashed{false};
  };

  class TaskCollector;

  void ExecutorLoop(ExecutorSlot* slot);
  void SpoutLoop(ExecutorSlot* slot, const ComponentDef& def,
                 std::vector<TaskRuntime*>& my_tasks,
                 std::vector<std::unique_ptr<TaskCollector>>& collectors);
  void MonitorLoop();
  void SupervisorLoop();
  /// Delivers queued Ack/Fail callbacks to one spout task.
  void DrainSpoutEvents(TaskRuntime* task);
  /// Registers and routes one tracked root tuple (first emission and
  /// replays). Adds to `emitted` per delivered copy.
  void EmitTracked(int component_index, int task_index, uint64_t message_id,
                   int attempt, std::vector<Value> values, MicrosT spout_time,
                   uint64_t* emitted, Outbox* outbox);
  /// A tracked tuple tree fully processed: ack bookkeeping + spout
  /// notification.
  void OnTreeCompleted(const reliability::TreeInfo& info);
  /// Routes a tuple to subscriber tasks, staging each delivered copy into
  /// `outbox`. When `ack_batch` is non-null the tuple belongs to a tracked
  /// tree: each copy gets a fresh edge id which is XORed into *ack_batch at
  /// stage time (per-tuple edge semantics are independent of flush timing).
  void Route(int source_component, const Tuple& tuple, int direct_task,
             uint64_t* emitted, uint64_t* ack_batch, Outbox* outbox);
  /// Stages one tuple; counted in `in_flight_` immediately. Auto-flushes the
  /// outbox past Options::emit_batch.
  void Stage(int target_component, int task_index, Tuple tuple,
             Outbox* outbox);
  /// Pushes every staged block to its target queue: one lock wait
  /// (backpressure-aware), one bulk append, and one not_empty wake per
  /// target task. During shutdown staged tuples are dropped.
  void FlushOutbox(Outbox* outbox);
  /// Fault-aware single delivery used by Route.
  void Deliver(int source_component, int target_component, int task_index,
               const Tuple& tuple, uint64_t* emitted, uint64_t* ack_batch,
               Outbox* outbox);
  void NotifyPossiblyDone();
  /// Fresh nonzero pseudo-random edge id for the acker.
  uint64_t NextEdgeId();

  Topology topology_;
  Options options_;
  MetricsRegistry metrics_;

  // Reliability state (constructed only when acking is enabled).
  std::unique_ptr<reliability::Acker> acker_;
  std::unique_ptr<reliability::ReplayBuffer> replay_;

  // Flattened state, indexed by component index.
  std::vector<std::shared_ptr<const Fields>> fields_;
  std::vector<std::vector<TaskRuntime>> tasks_;
  std::vector<std::vector<RouteTarget>> routes_;
  std::vector<std::atomic<uint64_t>> shuffle_counters_;
  /// Global task id = task_base_[component] + task_index.
  std::vector<int> task_base_;
  /// Global task id -> input queue (nullptr for spout tasks).
  std::vector<TaskQueue*> queue_of_;
  int total_tasks_ = 0;

  std::vector<std::unique_ptr<ExecutorSlot>> executors_;
  std::thread monitor_thread_;
  std::thread supervisor_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> finished_{false};
  std::atomic<int64_t> in_flight_{0};
  std::atomic<int> live_spout_tasks_{0};
  std::atomic<size_t> pending_roots_{0};
  std::atomic<uint64_t> executor_restarts_{0};
  std::atomic<uint64_t> edge_seq_{0x243f6a8885a308d3ULL};
  /// Pure wait-signal pair for the completion predicate (which reads only
  /// atomics): the mutex guards no data, it closes the lost-wakeup window
  /// between a waiter's predicate check and its block. Leaf lock, like the
  /// TaskQueue mutexes.
  Mutex done_mutex_;
  CondVar done_cv_;
};

}  // namespace dsps
}  // namespace insight

#endif  // INSIGHT_DSPS_LOCAL_RUNTIME_H_
