#ifndef INSIGHT_DSPS_LOCAL_RUNTIME_H_
#define INSIGHT_DSPS_LOCAL_RUNTIME_H_

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread.h"
#include "common/thread_annotations.h"
#include "dsps/metrics.h"
#include "dsps/overload.h"
#include "dsps/topology.h"
#include "observability/trace.h"
#include "reliability/acker.h"
#include "reliability/checkpoint.h"
#include "reliability/fault_injector.h"
#include "reliability/replay.h"
#include "reliability/state_store.h"

namespace insight {
namespace dsps {

/// Multithreaded in-process execution of a topology, mirroring Storm's local
/// cluster: every executor is a thread, tasks in excess of their component's
/// executors share an executor pseudo-parallel (Figure 1), and executors are
/// assigned round-robin to worker processes (the paper configures one worker
/// per cluster node, following [35]).
///
/// Termination: a run completes when every spout task has reported
/// exhaustion (NextTuple returned false), no tuple remains in flight, and —
/// with acking enabled — every tracked tuple tree has been acked, replayed
/// to success, or permanently failed.
///
/// Reliability (opt-in, `Options::enable_acking`): spout emissions via
/// Collector::EmitRooted are tracked by a Storm-style XOR acker
/// (src/reliability). Trees not fully processed within `ack_timeout_micros`
/// are re-emitted from the runtime's replay buffer with exponential backoff
/// up to `max_replays` times, then permanently failed (Spout::Fail). A
/// supervisor thread additionally restarts executor threads killed by the
/// optional FaultInjector, mirroring Storm's supervisor daemon.
class LocalRuntime {
 public:
  struct Options {
    /// Worker processes to spread executors over (informational grouping
    /// surfaced via WorkerOfExecutor; all threads share this process).
    int num_workers = 1;
    /// Per-task input queue capacity; emitters block when full
    /// (backpressure). A producer appends its flushed block whole once the
    /// queue dips below capacity, so occupancy can overshoot capacity by at
    /// most one block (strictly fewer than the block's tuples, block size <=
    /// the flush threshold) — TMS_CHECK'd at every append. Credit mode
    /// (`overload.enable_credit_flow`) admits exactly and never overshoots.
    size_t queue_capacity = 8192;
    /// Consumer side: max tuples a bolt executor drains from one task queue
    /// per lock acquisition.
    size_t max_batch = 64;
    /// Producer side: emissions are staged in a per-collector outbox and
    /// flushed as per-target blocks (one lock + one CV wake per block) once
    /// this many tuples are staged, or at the emitter's natural flush
    /// points (end of an Execute batch, spout idle/exhaustion).
    size_t emit_batch = 32;
    /// When > 0, a monitor thread takes a metrics window snapshot at this
    /// period (the paper uses 40 s).
    MicrosT monitor_interval_micros = 0;
    const Clock* clock = SystemClock::Get();

    /// At-least-once delivery for EmitRooted tuples. Off by default: the
    /// unacked path is byte-for-byte the seed behaviour and the figure
    /// benchmarks run unchanged.
    bool enable_acking = false;
    /// A tree not fully acked this long after (re-)emission is failed.
    MicrosT ack_timeout_micros = 30'000'000;
    /// Replay budget and backoff (see reliability::ReplayPolicy).
    int max_replays = 3;
    MicrosT replay_backoff_micros = 10'000;
    double replay_backoff_factor = 2.0;
    /// Supervisor sweep period (tree expiry + crashed-executor restarts).
    MicrosT supervisor_interval_micros = 2'000;
    /// Optional fault injection; not owned, must outlive the runtime. The
    /// supervisor restarts crashed executors whether or not acking is on.
    reliability::FaultInjector* fault_injector = nullptr;
    /// Replay backoff jitter (reliability::ReplayPolicy::backoff_jitter):
    /// fraction in [0, 1) spreading simultaneous replays apart. 0 = off.
    double replay_backoff_jitter = 0.0;
    uint64_t replay_jitter_seed = 0x5eedULL;

    // --- Stateful recovery (all off by default = seed behaviour; see
    // DESIGN.md "State & recovery") ---

    /// Periodically checkpoint every task whose bolt implements
    /// Snapshottable through `state_store`, and restore the latest durable
    /// snapshot when an executor is (re)launched. With acking on,
    /// checkpointed tasks defer their acker updates until the covering
    /// snapshot is durable, so a crash rolls processing back to the last
    /// checkpoint and replays re-execute exactly the rolled-back suffix.
    bool enable_checkpointing = false;
    MicrosT checkpoint_interval_micros = 100'000;
    /// Checkpoint destination; required when checkpointing. Not owned, must
    /// outlive the runtime.
    reliability::StateStore* state_store = nullptr;
    /// Suppress re-execution of replayed duplicates at checkpointed tasks
    /// via a bounded per-task ledger of tuple dedup ids (checkpointed
    /// atomically with the state). Requires acking + checkpointing; yields
    /// effectively-once state for deterministic (non-shuffle) routings.
    bool enable_replay_dedup = false;
    size_t dedup_ledger_capacity = 4096;
    /// Crash-loop containment: exponential restart backoff per executor,
    /// and a circuit breaker that permanently fails an executor restarted
    /// more than `breaker_max_restarts` times within `breaker_window_micros`
    /// (pending trees are failed, queued tuples drained, and the topology
    /// surfaces `degraded()`).
    bool enable_crash_loop_breaker = false;
    MicrosT restart_backoff_base_micros = 1'000;
    double restart_backoff_factor = 2.0;
    MicrosT restart_backoff_max_micros = 1'000'000;
    int breaker_max_restarts = 5;
    MicrosT breaker_window_micros = 10'000'000;

    // --- Tuple tracing (see DESIGN.md "Observability") ---

    /// Constructs the tracer and activates the per-tuple trace plumbing.
    /// Off by default = seed behaviour. With tracing enabled but
    /// `trace_sample_rate` 0, every instrumentation point stays compiled in
    /// and costs one branch per tuple — the configuration the bench-smoke
    /// throughput gate bounds at <=5% overhead.
    bool enable_tracing = false;
    /// Fraction of root emissions sampled, in [0, 1] (deterministic 1-in-N).
    double trace_sample_rate = 0.0;
    /// Retained span ring capacity (observability::Tracer::Options).
    size_t trace_max_spans = 65536;

    // --- Overload protection (all off by default = seed behaviour; see
    // DESIGN.md "Overload protection") ---

    /// Credit-based flow control, priority-aware load shedding, hot-key
    /// squelch, and adaptive batch sizing (dsps/overload.h). With every
    /// feature off none of the per-queue gates are even constructed.
    overload::Options overload;

    // --- Elastic scheduling (off by default = seed behaviour; see
    // DESIGN.md "Elastic scheduling") ---

    /// Enables the live task-migration machinery (MigrateTask): per-task
    /// inflow counters and migration phase gates on the executor drain path.
    /// Off = none of it is allocated and the drain path tests one bool.
    bool enable_migration = false;
    /// A migration that cannot complete within this budget is aborted and
    /// rolled back (routing restored, source stays authoritative).
    MicrosT migration_timeout_micros = 10'000'000;
    /// The post-flip quiesce step requires the source task's inflow counter
    /// to read zero twice, this far apart, before snapshotting — closing the
    /// sub-microsecond window of an emitter that picked its route from the
    /// old table but had not yet staged the tuple.
    MicrosT migration_settle_micros = 2'000;
  };

  LocalRuntime(Topology topology, Options options);
  ~LocalRuntime();

  LocalRuntime(const LocalRuntime&) = delete;
  LocalRuntime& operator=(const LocalRuntime&) = delete;

  /// Spawns executor threads. FailedPrecondition if already started.
  Status Start();

  /// Blocks until the topology drains (see class comment), then stops all
  /// threads. Also usable after Stop().
  void AwaitCompletion();

  /// Requests asynchronous stop (tuples may be dropped) and joins threads.
  void Stop();

  bool finished() const { return finished_.load(); }

  MetricsRegistry* metrics() { return &metrics_; }
  /// The span tracer; null unless Options::enable_tracing.
  observability::Tracer* tracer() { return tracer_.get(); }
  const observability::Tracer* tracer() const { return tracer_.get(); }
  const Topology& topology() const { return topology_; }

  /// Tracked tuple trees not yet resolved (acking only).
  size_t pending_trees() const { return pending_roots_.load(); }
  /// Tuples staged or queued but not yet consumed; the distributed worker
  /// reports this in its heartbeat so the supervisor can detect cluster
  /// quiescence.
  int64_t in_flight() const { return in_flight_.load(); }
  /// Executor threads restarted by the supervisor after injected crashes.
  uint64_t executor_restarts() const { return executor_restarts_.load(); }

  /// True once the crash-loop breaker permanently failed at least one
  /// executor: the topology keeps running but its results are incomplete.
  bool degraded() const { return dead_executors_.load() > 0; }
  int dead_executors() const { return dead_executors_.load(); }
  /// The checkpoint coordinator (null unless checkpointing is enabled);
  /// exposed for persist counters in tests and benchmarks.
  const reliability::CheckpointCoordinator* checkpoint_coordinator() const {
    return coordinator_.get();
  }

  /// Worker process index of an executor (component, executor_index).
  int WorkerOfExecutor(const std::string& component, int executor_index) const;

  /// Highest input-queue occupancy any task queue ever reached (tuples).
  /// Regression hook for the backpressure overshoot bound: always <=
  /// queue_capacity + flush block - 1, and <= queue_capacity in credit mode.
  size_t max_queue_occupancy() const;

  // --- Elastic scheduling (see DESIGN.md "Elastic scheduling") ---

  /// One live task migration: moves the full state line (TCK1 container —
  /// dedup ledger + bolt snapshot) of `component`'s task `from_task` into
  /// `to_task`, atomically repointing new traffic via the caller's routing
  /// flip. Both tasks must belong to the same bolt component (identical rule
  /// sets, so the snapshot restores cleanly); `to_task` must be a standby —
  /// a task the current routing sends no traffic to.
  struct MigrationRequest {
    std::string component;
    int from_task = 0;
    int to_task = 0;
    /// Atomically repoints new tuples from `from_task` to `to_task` (e.g.
    /// core::LiveRouter::MoveEngine). Called exactly once, after the target
    /// task is held; a non-OK return aborts the migration before any state
    /// moves. Optional for kDirect-free test rigs.
    std::function<Status()> flip;
    /// Restores the exact pre-flip routing; called when any later step
    /// fails, so the source task stays authoritative.
    std::function<void()> unflip;
  };

  /// Executes the migration barrier synchronously: hold target → flip
  /// routing → quiesce the source's inflow → final snapshot at a batch
  /// boundary (submitted on the source's checkpoint line so deferred acks
  /// flush on persist) → restore into the target → swap checkpoint slots →
  /// retire the source with a fresh bolt. On any failure the flip is rolled
  /// back, post-flip arrivals are rerouted back to the source, and the
  /// source keeps processing with its state untouched (a failed restore on
  /// the target never degrades the state line to clean). Serialized: one
  /// migration at a time. Requires Options::enable_migration and a started,
  /// non-stopping runtime.
  Status MigrateTask(const MigrationRequest& request);

  /// Current occupancy of a bolt task's input queue in [0, 1] (fraction of
  /// queue_capacity; briefly takes the queue mutex). 0 for spouts/unknown.
  /// The elastic controller reads this as its queue-watermark signal.
  double QueueOccupancy(const std::string& component, int task);

 private:
  /// Lock hierarchy: a TaskQueue::mutex is a leaf — nothing else is
  /// acquired while one is held (see DESIGN.md "Concurrency discipline").
  struct TaskQueue {
    Mutex mutex{TMS_LOCK_RANK(90)};
    CondVar not_empty;
    CondVar not_full;
    std::deque<Tuple> queue GUARDED_BY(mutex);
    /// kHigh tuples currently queued. Maintained only while load shedding
    /// is enabled; lets the drain path skip the priority scan entirely when
    /// no critical tuples are waiting.
    size_t high_count GUARDED_BY(mutex) = 0;
    /// High-water mark of `queue.size()`. Written under `mutex` (appends
    /// serialize, drains never grow the queue); atomic so tests read it
    /// without the lock.
    std::atomic<size_t> peak_size{0};
  };

  /// Per-collector staging buffer for batched hand-off: tuples accumulate
  /// here (already counted in `in_flight_`, edge ids already assigned) and
  /// are pushed to their target queues as blocks by FlushOutbox.
  struct Outbox {
    std::vector<std::vector<Tuple>> per_task;  // indexed by global task id
    std::vector<uint32_t> dirty;               // global task ids with tuples
    size_t staged = 0;
    /// Outbox flush threshold controller; null unless adaptive batch sizing
    /// is on (owned by the TaskCollector). Stage consults its threshold
    /// instead of Options::emit_batch, FlushOutbox feeds it back the worst
    /// target occupancy.
    overload::AdaptiveBatch* adaptive = nullptr;
  };

  /// Ack/Fail notifications queued for delivery on the spout's executor
  /// thread (Storm delivers both callbacks on the spout executor).
  struct SpoutEventQueue {
    Mutex mutex{TMS_LOCK_RANK(90)};
    // (is_ack, message_id)
    std::deque<std::pair<bool, uint64_t>> events GUARDED_BY(mutex);
  };

  struct TaskRuntime {
    int component_index = 0;
    int task_index = 0;  // within component
    std::unique_ptr<Spout> spout;
    std::unique_ptr<Bolt> bolt;
    std::unique_ptr<TaskQueue> input;        // bolts only
    std::unique_ptr<SpoutEventQueue> events; // spouts only, acking only
    bool spout_done = false;

    // --- Stateful recovery (executor-thread-owned; the supervisor touches
    // these only after joining the crashed thread) ---
    /// Open/Prepare (+ restore) still owed; set by the supervisor when it
    /// swaps in a fresh bolt so the relaunched executor re-initializes.
    bool needs_init = true;
    /// The bolt's Snapshottable view; refreshed at init. Null = stateless.
    Snapshottable* snapshottable = nullptr;
    /// CheckpointCoordinator slot; -1 = task is not checkpointed.
    int ckpt_slot = -1;
    std::unique_ptr<reliability::DedupLedger> ledger;
    /// Checkpoint-deferred acker deltas (root key -> XOR of edges consumed
    /// and emitted since the last submitted checkpoint). Moved into the
    /// persist completion closure at submit time, so exactly one thread
    /// owns any given delta set.
    std::unordered_map<uint64_t, uint64_t> pending_acks;
  };

  struct RouteTarget {
    int component_index = 0;
    Grouping grouping = Grouping::kShuffle;
    std::vector<int> field_indexes;  // source-field indexes for kFields
  };

  /// One executor thread plus its liveness state, so the supervisor can
  /// detect an injected crash and relaunch the executor.
  struct ExecutorSlot {
    int component_index = 0;
    int executor_index = 0;
    Thread thread;
    std::atomic<bool> crashed{false};
    /// Crash-loop containment (supervisor-thread-only once started).
    std::deque<MicrosT> restart_times;  // within the breaker window
    MicrosT next_restart_micros = 0;    // exponential backoff gate
    /// Breaker tripped: permanently failed, never relaunched. Queues of its
    /// tasks are drained by the supervisor sweep and by Stop().
    std::atomic<bool> dead{false};
  };

  class TaskCollector;

  void ExecutorLoop(ExecutorSlot* slot);
  void SpoutLoop(ExecutorSlot* slot, const ComponentDef& def,
                 std::vector<TaskRuntime*>& my_tasks,
                 std::vector<std::unique_ptr<TaskCollector>>& collectors);
  void MonitorLoop();
  void SupervisorLoop();
  /// Delivers queued Ack/Fail callbacks to one spout task.
  void DrainSpoutEvents(TaskRuntime* task);
  /// Registers and routes one tracked root tuple (first emission and
  /// replays). Adds to `emitted` per delivered copy.
  void EmitTracked(int component_index, int task_index, uint64_t message_id,
                   int attempt, std::vector<Value> values, MicrosT spout_time,
                   TuplePriority priority, uint64_t* emitted, Outbox* outbox,
                   overload::SourceSquelch* squelch);
  /// A tracked tuple tree fully processed: ack bookkeeping + spout
  /// notification.
  void OnTreeCompleted(const reliability::TreeInfo& info);
  /// Routes a tuple to subscriber tasks, staging each delivered copy into
  /// `outbox`. When `ack_batch` is non-null the tuple belongs to a tracked
  /// tree: each copy gets a fresh edge id which is XORed into *ack_batch at
  /// stage time (per-tuple edge semantics are independent of flush timing).
  /// When `dedup_seq` is non-null, each copy additionally gets a dedup id
  /// chained from `dedup_base` and the running per-execution sequence —
  /// replay-stable as long as the emitter and the routing are deterministic.
  /// `squelch` (nullable) observes fields-grouping key hashes and, while the
  /// emitting task is squelched, demotes the delivery's effective shedding
  /// tier to kLow; `source_task` attributes squelch transitions.
  void Route(int source_component, int source_task, const Tuple& tuple,
             int direct_task, uint64_t* emitted, uint64_t* ack_batch,
             uint64_t dedup_base, uint64_t* dedup_seq, Outbox* outbox,
             overload::SourceSquelch* squelch);
  /// Stages one tuple; counted in `in_flight_` immediately. Auto-flushes the
  /// outbox past Options::emit_batch (or the adaptive threshold).
  void Stage(int target_component, int task_index, Tuple tuple,
             Outbox* outbox) TMS_NO_ALLOC;
  /// Pushes every staged block to its target queue: one lock wait
  /// (backpressure-aware), one bulk append, and one not_empty wake per
  /// target task. During shutdown staged tuples are dropped. In credit mode
  /// a block whose target grants no credits stays staged (still counted
  /// in flight) for a later flush instead of blocking the producer.
  void FlushOutbox(Outbox* outbox) TMS_NO_ALLOC;
  /// Flushes until nothing stays staged: required before an outbox goes out
  /// of scope (executor exit, crash hand-off) since deferred tuples are
  /// counted in flight. Parks in bounded 1 ms slices between retries; under
  /// `stopping_` the staged remainder is dropped by FlushOutbox.
  void DrainOutbox(Outbox* outbox);
  /// Re-evaluates the shedding watermarks against the target queue's CURRENT
  /// occupancy for every tuple of a staged block, dropping the ones whose
  /// tier sheds (counted, fail-fast for tracked trees, released from
  /// `in_flight_`). Staging-time decisions go stale under credit deferral —
  /// admitting a backlog staged while the queue was briefly below the
  /// watermark would blow occupancy right past it. Returns the shed count.
  size_t ShedStaleTuples(std::vector<Tuple>* block, overload::QueueGate* gate,
                         uint32_t gid);
  /// Credit mode: bounded parks while `outbox` holds at least
  /// `overload.max_deferred_tuples` deferred tuples; accounted in
  /// `credits_stalled_ns`.
  void StallForCredits(Outbox* outbox);
  /// Fault-aware single delivery used by Route. `priority` is the effective
  /// shedding tier (the tuple's own tier, or kLow for squelched sources);
  /// above the occupancy watermarks of the target's queue the delivery is
  /// shed instead of staged — counted per priority, and fail-fast for
  /// tracked trees (the acker discards the tree and Spout::Fail fires).
  void Deliver(int source_component, int target_component, int task_index,
               const Tuple& tuple, TuplePriority priority, uint64_t* emitted,
               uint64_t* ack_batch, uint64_t dedup_base, uint64_t* dedup_seq,
               Outbox* outbox);
  void NotifyPossiblyDone();
  /// Fresh nonzero pseudo-random edge id for the acker.
  uint64_t NextEdgeId() TMS_NO_ALLOC;

  // --- Stateful recovery helpers (see DESIGN.md "State & recovery") ---

  /// Serializes `task` (ledger + bolt state) and submits it to the
  /// coordinator, moving the accumulated deferred acks into the persist
  /// completion closure. `force` skips the interval gate (idle flush).
  void MaybeCheckpoint(TaskRuntime* task, const ComponentDef& def, bool force);
  /// Loads and applies the latest durable snapshot for `task` (barriering on
  /// any in-flight persist first). Corrupt or unloadable snapshots degrade
  /// to a logged warning + clean state, never a crash.
  void RestoreTask(TaskRuntime* task, const ComponentDef& def);
  /// Permanently fails one discarded tree: drops the replay payload, queues
  /// the spout Fail callback, and releases the pending-root count.
  void FailDiscardedTree(const reliability::TreeInfo& info);
  /// Supervisor sweep: trip bookkeeping for a crashed executor. Returns
  /// true when the slot may be relaunched now (backoff elapsed, breaker not
  /// tripped).
  bool ContainCrashLoop(ExecutorSlot* slot, MicrosT now);
  /// Permanently fails one executor slot: joins the thread, marks the
  /// topology degraded, and fails a dead spout task's pending trees.
  void TripBreaker(ExecutorSlot* slot);
  /// Drains the input queues of breaker-tripped bolt tasks, failing tracked
  /// tuples' trees; keeps emitters from blocking on dead tasks forever.
  void DrainDeadTaskQueues();

  // --- Elastic scheduling helpers (see DESIGN.md "Elastic scheduling") ---

  /// Migration phases a task can be placed in by MigrateTask. Executor
  /// threads read the phase with acquire at every drain pass; any non-idle
  /// phase freezes the task's queue (arrivals keep queueing).
  enum MigrationPhase : uint8_t {
    kMigrationIdle = 0,
    /// Frozen, no work owed (target awaiting state; source post-snapshot).
    kMigrationHold = 1,
    /// Source: serialize the TCK1 container at this batch boundary and
    /// deposit it in the control block, then self-transition to Hold.
    kMigrationSnapshot = 2,
    /// Target: apply the deposited container, report status, go to Hold.
    kMigrationRestore = 3,
    /// Source: swap in a fresh bolt (state now lives at the target), clear
    /// the ledger, then self-release to Idle.
    kMigrationRetire = 4,
  };

  /// Sentinel for MigrationControl::source_gid / target_gid: no migration
  /// is armed for that role.
  static constexpr size_t kNoMigrationGid = static_cast<size_t>(-1);

  /// Rendezvous between MigrateTask (controller thread) and the executors
  /// carrying out the Snapshot/Restore/Retire phases. One migration at a
  /// time, serialized by migrate_mutex_. The gids identify the armed
  /// migration: a phase handler that outlived an abort (it loaded its phase
  /// just before the rollback reset it) finds its gid disarmed and skips the
  /// deposit, so a stale snapshot can never pollute the next migration.
  struct MigrationControl {
    Mutex mutex{TMS_LOCK_RANK(88)};
    CondVar cv;
    size_t source_gid GUARDED_BY(mutex) = kNoMigrationGid;
    size_t target_gid GUARDED_BY(mutex) = kNoMigrationGid;
    bool snapshot_ready GUARDED_BY(mutex) = false;
    Status snapshot_status GUARDED_BY(mutex);
    std::string bytes GUARDED_BY(mutex);
    bool restore_done GUARDED_BY(mutex) = false;
    Status restore_status GUARDED_BY(mutex);
    bool retire_done GUARDED_BY(mutex) = false;
  };

  /// Executes the pending migration phase for one task on its executor
  /// thread. Returns true when phase work was performed (keeps the executor
  /// from parking mid-protocol).
  bool HandleMigrationPhase(uint8_t phase, size_t gid, TaskRuntime* task,
                            const ComponentDef& def);
  /// Moves every tuple queued at `from_gid` to `to_gid`'s queue (credit-
  /// correct), preserving in-flight accounting. Steady-state redirect for
  /// post-retire stragglers and the abort path's sweep-back. Returns true
  /// when tuples moved.
  bool ForwardQueuedTuples(size_t from_gid, size_t to_gid);
  /// Builds the TCK1 container (ledger + bolt snapshot) for `task`.
  Status SerializeTask(TaskRuntime* task, std::string* out);
  /// Parses and applies a TCK1 container to `task`: ledger contents replace
  /// the task's ledger, bolt state is restored. On error the bolt is clean
  /// (Snapshottable contract) and the ledger empty.
  Status ApplyTaskSnapshot(TaskRuntime* task, const std::string& bytes);
  /// Submits `bytes` on `task`'s checkpoint line, moving the deferred acks
  /// into the persist closure (exactly like MaybeCheckpoint's tail).
  /// Caller must have seen CanSubmit(task->ckpt_slot).
  void SubmitTaskSnapshot(TaskRuntime* task, const ComponentDef& def,
                          std::string bytes);
  /// Rolls a failed migration back: unflip routing, reroute post-flip
  /// arrivals from the target back to the source, release both tasks.
  Status AbortMigration(const MigrationRequest& request, size_t from_gid,
                        size_t to_gid, bool flipped, const Status& cause);
  /// Mirrors an in_flight_ mutation at task granularity (elastic mode only;
  /// one atomic add, free otherwise). Every site that moves in_flight_ calls
  /// this with the same magnitude, so task_inbound_[gid] == 0 iff no tuple
  /// is staged, queued, or in hand for the task.
  void TrackInbound(size_t gid, int64_t delta) TMS_NO_ALLOC {
    if (!elastic_enabled_) return;
    task_inbound_[gid].fetch_add(delta, std::memory_order_acq_rel);
  }

  Topology topology_;
  Options options_;
  MetricsRegistry metrics_;

  // Reliability state (constructed only when acking is enabled).
  std::unique_ptr<reliability::Acker> acker_;
  std::unique_ptr<reliability::ReplayBuffer> replay_;
  // Observability state (constructed only when tracing is enabled).
  std::unique_ptr<observability::Tracer> tracer_;
  // Recovery state (constructed only when checkpointing is enabled).
  std::unique_ptr<reliability::CheckpointCoordinator> coordinator_;
  /// Dedup ids are assigned to tracked tuples (acking + dedup + at least
  /// one checkpointed task); cached so the emit path tests one bool.
  bool dedup_enabled_ = false;

  // Flattened state, indexed by component index.
  std::vector<std::shared_ptr<const Fields>> fields_;
  std::vector<std::vector<TaskRuntime>> tasks_;
  std::vector<std::vector<RouteTarget>> routes_;
  std::vector<std::atomic<uint64_t>> shuffle_counters_;
  /// Global task id = task_base_[component] + task_index.
  std::vector<int> task_base_;
  /// Global task id -> input queue (nullptr for spout tasks).
  std::vector<TaskQueue*> queue_of_;
  int total_tasks_ = 0;

  // Overload protection (constructed only when any overload feature is on;
  // see DESIGN.md "Overload protection").
  /// Global task id -> admission gate (nullptr for spout tasks). Empty when
  /// overload protection is off — the hot path tests one vector emptiness.
  std::vector<std::unique_ptr<overload::QueueGate>> gates_;
  /// Global task id -> metrics handle of the queue's task, for shed
  /// attribution off the name map.
  std::vector<MetricsRegistry::TaskRef> overload_refs_;
  bool credit_flow_ = false;
  bool shedding_ = false;

  // Elastic scheduling (allocated only when Options::enable_migration).
  bool elastic_enabled_ = false;
  /// Global task id -> tuples staged, queued, or in hand for the task (the
  /// per-task mirror of in_flight_; every in_flight_ mutation moves exactly
  /// one of these). The quiesce step waits for the source's to reach zero.
  std::vector<std::atomic<int64_t>> task_inbound_;
  /// Global task id -> MigrationPhase (written release by MigrateTask and
  /// the phase handlers, read acquire on the drain path).
  std::vector<std::atomic<uint8_t>> migration_phase_;
  /// Global task id -> redirect target (-1 = none). After a migration, a
  /// straggler that still lands on the retired source is swept to the
  /// state-owning target instead of executing against the fresh bolt.
  std::vector<std::atomic<int32_t>> forward_of_;
  /// Serializes MigrateTask calls. Held across the whole barrier, which
  /// waits on rank-88 migration_.cv and takes rank-90 queue mutexes, hence
  /// ranked below them (and below the rank-20 coordinator, unused here but
  /// reachable from executors the barrier waits on).
  Mutex migrate_mutex_{TMS_LOCK_RANK(12)};
  MigrationControl migration_;

  std::vector<std::unique_ptr<ExecutorSlot>> executors_;
  Thread monitor_thread_;
  Thread supervisor_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> finished_{false};
  std::atomic<int64_t> in_flight_{0};
  std::atomic<int> live_spout_tasks_{0};
  std::atomic<size_t> pending_roots_{0};
  std::atomic<uint64_t> executor_restarts_{0};
  std::atomic<int> dead_executors_{0};
  std::atomic<uint64_t> edge_seq_{0x243f6a8885a308d3ULL};
  /// Pure wait-signal pair for the completion predicate (which reads only
  /// atomics): the mutex guards no data, it closes the lost-wakeup window
  /// between a waiter's predicate check and its block. Leaf lock, like the
  /// TaskQueue mutexes.
  Mutex done_mutex_{TMS_LOCK_RANK(95)};
  CondVar done_cv_;
};

}  // namespace dsps
}  // namespace insight

#endif  // INSIGHT_DSPS_LOCAL_RUNTIME_H_
