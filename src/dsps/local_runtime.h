#ifndef INSIGHT_DSPS_LOCAL_RUNTIME_H_
#define INSIGHT_DSPS_LOCAL_RUNTIME_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "dsps/metrics.h"
#include "dsps/topology.h"

namespace insight {
namespace dsps {

/// Multithreaded in-process execution of a topology, mirroring Storm's local
/// cluster: every executor is a thread, tasks in excess of their component's
/// executors share an executor pseudo-parallel (Figure 1), and executors are
/// assigned round-robin to worker processes (the paper configures one worker
/// per cluster node, following [35]).
///
/// Termination: a run completes when every spout task has reported
/// exhaustion (NextTuple returned false) and no tuple remains in flight.
class LocalRuntime {
 public:
  struct Options {
    /// Worker processes to spread executors over (informational grouping
    /// surfaced via WorkerOfExecutor; all threads share this process).
    int num_workers = 1;
    /// Per-task input queue capacity; emitters block when full
    /// (backpressure).
    size_t queue_capacity = 8192;
    /// When > 0, a monitor thread takes a metrics window snapshot at this
    /// period (the paper uses 40 s).
    MicrosT monitor_interval_micros = 0;
    const Clock* clock = SystemClock::Get();
  };

  LocalRuntime(Topology topology, Options options);
  ~LocalRuntime();

  LocalRuntime(const LocalRuntime&) = delete;
  LocalRuntime& operator=(const LocalRuntime&) = delete;

  /// Spawns executor threads. FailedPrecondition if already started.
  Status Start();

  /// Blocks until the topology drains (see class comment), then stops all
  /// threads. Also usable after Stop().
  void AwaitCompletion();

  /// Requests asynchronous stop (tuples may be dropped) and joins threads.
  void Stop();

  bool finished() const { return finished_.load(); }

  MetricsRegistry* metrics() { return &metrics_; }
  const Topology& topology() const { return topology_; }

  /// Worker process index of an executor (component, executor_index).
  int WorkerOfExecutor(const std::string& component, int executor_index) const;

 private:
  struct TaskQueue {
    std::mutex mutex;
    std::condition_variable not_empty;
    std::condition_variable not_full;
    std::deque<Tuple> queue;
  };

  struct TaskRuntime {
    int component_index = 0;
    int task_index = 0;  // within component
    std::unique_ptr<Spout> spout;
    std::unique_ptr<Bolt> bolt;
    std::unique_ptr<TaskQueue> input;  // bolts only
    bool spout_done = false;
  };

  struct RouteTarget {
    int component_index = 0;
    Grouping grouping = Grouping::kShuffle;
    std::vector<int> field_indexes;  // source-field indexes for kFields
  };

  class TaskCollector;

  void ExecutorLoop(int component_index, int executor_index);
  void MonitorLoop();
  void Route(int source_component, const Tuple& tuple, int direct_task,
             uint64_t* emitted);
  void Push(int component_index, int task_index, const Tuple& tuple);
  void NotifyPossiblyDone();

  Topology topology_;
  Options options_;
  MetricsRegistry metrics_;

  // Flattened state, indexed by component index.
  std::vector<std::shared_ptr<const Fields>> fields_;
  std::vector<std::vector<TaskRuntime>> tasks_;
  std::vector<std::vector<RouteTarget>> routes_;
  std::vector<std::atomic<uint64_t>> shuffle_counters_;

  std::vector<std::thread> threads_;
  std::thread monitor_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> finished_{false};
  std::atomic<int64_t> in_flight_{0};
  std::atomic<int> live_spout_tasks_{0};
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
};

}  // namespace dsps
}  // namespace insight

#endif  // INSIGHT_DSPS_LOCAL_RUNTIME_H_
