#ifndef INSIGHT_DSPS_METRICS_H_
#define INSIGHT_DSPS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "dsps/overload.h"
#include "observability/export.h"
#include "observability/histogram.h"

namespace insight {
namespace dsps {

/// Per-component/task execution metrics, plus the periodic per-window
/// reports the paper's enhanced Storm produces ("we enhanced Storm with an
/// extra monitor thread per worker processor, that periodically (every 40
/// seconds in our case) reports these metrics for each bolt's task to the
/// Nimbus node", Section 5).
class MetricsRegistry {
 public:
  struct ComponentTotals {
    uint64_t executed = 0;
    uint64_t emitted = 0;
    double avg_latency_micros = 0.0;
    uint64_t latency_sum_micros = 0;
    // Reliability counters (spout components; zero without acking).
    uint64_t acked = 0;
    uint64_t failed = 0;    // tree timeouts
    uint64_t replayed = 0;  // re-emissions of timed-out roots
    // Recovery counters (zero unless checkpointing is on).
    uint64_t checkpoints = 0;         // snapshots durably persisted
    uint64_t checkpoint_restores = 0; // restores applied after a relaunch
    uint64_t checkpoint_restore_failures = 0;  // corrupt/unloadable snapshots
    uint64_t deduped = 0;             // replayed duplicates suppressed
    uint64_t breaker_trips = 0;       // executors permanently failed
    // Overload counters (zero unless overload protection is on). Sheds are
    // attributed to the component whose queue was saturated, per priority;
    // squelches to the emitting component.
    uint64_t shed_low = 0;
    uint64_t shed_normal = 0;
    uint64_t shed_high = 0;
    uint64_t squelched = 0;  // sources entering the squelched state
    // Elastic-scheduling counters (zero unless migration is enabled).
    uint64_t task_migrations = 0;     // completed live migrations (source task)
    uint64_t migration_failures = 0;  // aborted/rolled-back migrations
    /// Lifetime execute-latency distribution, merged across tasks.
    observability::HistogramSnapshot latency_histogram;
  };

  struct WindowReport {
    /// Start of the window this report covers (previously this field held
    /// the window END, which made report timestamps unusable for aligning
    /// windows against event logs).
    MicrosT window_start = 0;
    MicrosT window_length_micros = 0;
    std::string component;
    uint64_t executed = 0;      // throughput: tuples processed in the window
    /// Mean execute latency over the window, weighted by per-task executed
    /// counts (latency-sum delta / executed delta — never an unweighted
    /// average of per-task averages). 0 for an empty window, never NaN.
    double avg_latency_micros = 0.0;
    /// Execute-latency percentiles over the window, from the merged
    /// per-task histogram deltas. 0 for an empty window.
    double p50_micros = 0.0;
    double p95_micros = 0.0;
    double p99_micros = 0.0;
    /// Storm's capacity metric: fraction of the window the component's
    /// tasks spent executing (executed × avg latency / window length).
    /// ~1.0 means the component is saturated and needs more executors.
    /// 0 for an empty window, never NaN.
    double capacity = 0.0;
    uint64_t acked = 0;
    uint64_t failed = 0;
    uint64_t replayed = 0;
    uint64_t checkpoints = 0;
    uint64_t checkpoint_restores = 0;
    uint64_t checkpoint_restore_failures = 0;
    uint64_t deduped = 0;
    uint64_t breaker_trips = 0;
    uint64_t shed = 0;       // tuples shed (all priorities)
    uint64_t squelched = 0;  // squelch activations
    uint64_t task_migrations = 0;     // live migrations completed this window
    uint64_t migration_failures = 0;  // migrations aborted this window
  };

  /// Declares a component with `num_tasks` tasks. Must be called before any
  /// Record (the runtime does this at start-up; no locking on the hot path).
  void DeclareComponent(const std::string& component, int num_tasks);

  /// Records one execution for (component, task).
  void Record(const std::string& component, int task, MicrosT latency_micros);
  void RecordEmit(const std::string& component, int task, uint64_t count = 1);
  /// Reliability events, attributed to the originating spout task.
  void RecordAck(const std::string& component, int task, uint64_t count = 1);
  void RecordFail(const std::string& component, int task, uint64_t count = 1);
  void RecordReplay(const std::string& component, int task, uint64_t count = 1);
  /// Recovery events, attributed to the checkpointed (or tripped) task.
  void RecordCheckpoint(const std::string& component, int task);
  void RecordRestore(const std::string& component, int task);
  void RecordRestoreFailure(const std::string& component, int task);
  void RecordDedup(const std::string& component, int task);
  void RecordBreakerTrip(const std::string& component, int task);
  /// Overload events (see dsps/overload.h): a shed tuple, attributed to the
  /// component whose queue triggered the drop, and a source entering the
  /// squelched state, attributed to the emitting task.
  void RecordShed(const std::string& component, int task,
                  TuplePriority priority);
  void RecordSquelch(const std::string& component, int task);
  /// Elastic-scheduling events, attributed to the migration's source task.
  void RecordMigration(const std::string& component, int task);
  void RecordMigrationFailure(const std::string& component, int task);

  ComponentTotals Totals(const std::string& component) const;
  std::vector<std::string> Components() const;

  /// Per-task lifetime totals — the elastic controller polls these to build
  /// per-engine window deltas (component-level reports hide which task of a
  /// component is hot).
  struct TaskTotals {
    uint64_t executed = 0;
    uint64_t emitted = 0;
    uint64_t latency_sum_micros = 0;
    uint64_t shed = 0;  // all priorities
    observability::HistogramSnapshot latency_histogram;
  };
  TaskTotals TotalsForTask(const std::string& component, int task) const;
  /// Number of tasks declared for `component` (0 if unknown).
  int TaskCount(const std::string& component) const;

  /// Process-wide transport counters (src/net data plane). Unlabelled —
  /// frames are a property of the worker's connections, not of any one
  /// component — and zero in purely local runs.
  struct TransportTotals {
    uint64_t frames_sent = 0;
    uint64_t bytes_sent = 0;
    uint64_t frames_received = 0;
    uint64_t bytes_received = 0;
    uint64_t reconnects = 0;       // data-plane connection (re)establishments
    uint64_t requeued_tuples = 0;  // in-flight tuples queued for resend
  };
  void RecordFramesSent(uint64_t frames, uint64_t bytes) {
    net_frames_sent_.fetch_add(frames, std::memory_order_relaxed);
    net_bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void RecordFramesReceived(uint64_t frames, uint64_t bytes) {
    net_frames_received_.fetch_add(frames, std::memory_order_relaxed);
    net_bytes_received_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void RecordReconnect() {
    net_reconnects_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordRequeuedTuples(uint64_t count) {
    net_requeued_tuples_.fetch_add(count, std::memory_order_relaxed);
  }
  /// Wall time producers spent stalled waiting for flow-control credits
  /// (credit mode only); process-wide like the transport counters.
  void RecordCreditStall(uint64_t nanos) {
    credits_stalled_ns_.fetch_add(nanos, std::memory_order_relaxed);
  }
  uint64_t credits_stalled_ns() const {
    return credits_stalled_ns_.load(std::memory_order_relaxed);
  }

  TransportTotals transport_totals() const {
    TransportTotals totals;
    totals.frames_sent = net_frames_sent_.load(std::memory_order_relaxed);
    totals.bytes_sent = net_bytes_sent_.load(std::memory_order_relaxed);
    totals.frames_received =
        net_frames_received_.load(std::memory_order_relaxed);
    totals.bytes_received =
        net_bytes_received_.load(std::memory_order_relaxed);
    totals.reconnects = net_reconnects_.load(std::memory_order_relaxed);
    totals.requeued_tuples =
        net_requeued_tuples_.load(std::memory_order_relaxed);
    return totals;
  }

 private:
  struct TaskStats {
    std::atomic<uint64_t> executed{0};
    std::atomic<uint64_t> emitted{0};
    std::atomic<uint64_t> latency_sum{0};
    std::atomic<uint64_t> acked{0};
    std::atomic<uint64_t> failed{0};
    std::atomic<uint64_t> replayed{0};
    std::atomic<uint64_t> checkpoints{0};
    std::atomic<uint64_t> restores{0};
    std::atomic<uint64_t> restore_failures{0};
    std::atomic<uint64_t> deduped{0};
    std::atomic<uint64_t> breaker_trips{0};
    std::atomic<uint64_t> shed_low{0};
    std::atomic<uint64_t> shed_normal{0};
    std::atomic<uint64_t> shed_high{0};
    std::atomic<uint64_t> squelched{0};
    std::atomic<uint64_t> migrations{0};
    std::atomic<uint64_t> migration_failures{0};
    observability::LatencyHistogram latency_histogram;
  };

 public:
  /// Hot-path recording handle: resolves (component, task) once so per-tuple
  /// recording touches only the cached counters, never the name map. The
  /// registry must outlive the handle, and DeclareComponent must not be
  /// called again for the component after handing out refs.
  class TaskRef {
   public:
    TaskRef() = default;
    void Record(MicrosT latency_micros) {
      stats_->executed.fetch_add(1, std::memory_order_relaxed);
      stats_->latency_sum.fetch_add(static_cast<uint64_t>(latency_micros),
                                    std::memory_order_relaxed);
      stats_->latency_histogram.Record(latency_micros);
    }
    /// Records `count` executions completed by one ExecuteBatch call:
    /// throughput counts every tuple; the batch's wall time is attributed
    /// evenly across them so windowed latency averages stay comparable with
    /// the tuple-at-a-time path.
    void RecordBatch(uint64_t count, MicrosT total_latency_micros) {
      if (count == 0) return;
      stats_->executed.fetch_add(count, std::memory_order_relaxed);
      stats_->latency_sum.fetch_add(static_cast<uint64_t>(total_latency_micros),
                                    std::memory_order_relaxed);
      stats_->latency_histogram.RecordN(
          total_latency_micros / static_cast<MicrosT>(count), count);
    }
    void RecordEmit(uint64_t count) {
      stats_->emitted.fetch_add(count, std::memory_order_relaxed);
    }
    /// One tuple shed at this task's input queue (overload protection).
    void RecordShed(TuplePriority priority) {
      switch (priority) {
        case TuplePriority::kLow:
          stats_->shed_low.fetch_add(1, std::memory_order_relaxed);
          break;
        case TuplePriority::kNormal:
          stats_->shed_normal.fetch_add(1, std::memory_order_relaxed);
          break;
        case TuplePriority::kHigh:
          stats_->shed_high.fetch_add(1, std::memory_order_relaxed);
          break;
      }
    }
    /// This task's collector entered the squelched state.
    void RecordSquelch() {
      stats_->squelched.fetch_add(1, std::memory_order_relaxed);
    }

   private:
    friend class MetricsRegistry;
    explicit TaskRef(TaskStats* stats) : stats_(stats) {}
    TaskStats* stats_ = nullptr;
  };
  TaskRef RefFor(const std::string& component, int task) {
    return TaskRef(&StatsFor(component, task));
  }

  /// Anchors the first window so its capacity denominator is meaningful;
  /// the runtime calls this at Start(). Without it the first window reports
  /// capacity 0.
  void MarkWindowStart(MicrosT now);

  /// Aggregates deltas since the previous TakeWindowSnapshot into per-
  /// component window reports (the Nimbus-side aggregation).
  std::vector<WindowReport> TakeWindowSnapshot(MicrosT now);
  /// All window reports taken so far.
  std::vector<WindowReport> window_reports() const;

  /// Lifetime totals of every counter family plus the per-component
  /// execute-latency histogram, as a neutral snapshot for the text
  /// exporter (observability::ExportPrometheusText).
  observability::MetricsSnapshot PrometheusSnapshot() const;

 private:
  struct ComponentStats {
    std::vector<std::unique_ptr<TaskStats>> tasks;
    // The last_* window baselines are guarded by window_mutex_ (only
    // TakeWindowSnapshot touches them; the annotation cannot be expressed
    // on a sibling struct's members).
    uint64_t last_executed = 0;
    uint64_t last_latency_sum = 0;
    uint64_t last_acked = 0;
    uint64_t last_failed = 0;
    uint64_t last_replayed = 0;
    uint64_t last_checkpoints = 0;
    uint64_t last_restores = 0;
    uint64_t last_restore_failures = 0;
    uint64_t last_deduped = 0;
    uint64_t last_breaker_trips = 0;
    uint64_t last_shed = 0;
    uint64_t last_squelched = 0;
    uint64_t last_migrations = 0;
    uint64_t last_migration_failures = 0;
    observability::HistogramSnapshot last_histogram;
  };

  TaskStats& StatsFor(const std::string& component, int task);

  /// Structurally mutated only by DeclareComponent before the topology
  /// starts; concurrent phases read the map and bump the atomic counters.
  std::map<std::string, ComponentStats> components_;
  std::atomic<uint64_t> net_frames_sent_{0};
  std::atomic<uint64_t> net_bytes_sent_{0};
  std::atomic<uint64_t> net_frames_received_{0};
  std::atomic<uint64_t> net_bytes_received_{0};
  std::atomic<uint64_t> net_reconnects_{0};
  std::atomic<uint64_t> net_requeued_tuples_{0};
  std::atomic<uint64_t> credits_stalled_ns_{0};
  mutable Mutex window_mutex_{TMS_LOCK_RANK(70)};
  std::vector<WindowReport> reports_ GUARDED_BY(window_mutex_);
  MicrosT last_snapshot_micros_ GUARDED_BY(window_mutex_) = 0;
  bool window_anchored_ GUARDED_BY(window_mutex_) = false;
};

}  // namespace dsps
}  // namespace insight

#endif  // INSIGHT_DSPS_METRICS_H_
