#include "dsps/overload.h"

namespace insight {
namespace dsps {

const char* TuplePriorityName(TuplePriority priority) {
  switch (priority) {
    case TuplePriority::kLow:
      return "low";
    case TuplePriority::kNormal:
      return "normal";
    case TuplePriority::kHigh:
      return "high";
  }
  return "?";
}

namespace overload {

namespace {
size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

SourceSquelch::SourceSquelch(const Options& options, const Clock* clock)
    : recent_(RoundUpPow2(options.squelch_history < 2 ? 2
                                                      : options.squelch_history),
              0),
      duplicate_rate_(options.squelch_duplicate_rate),
      min_samples_(options.squelch_min_samples < 1 ? 1
                                                   : options.squelch_min_samples),
      duration_micros_(options.squelch_duration_micros),
      clock_(clock) {
  mask_ = recent_.size() - 1;
}

bool SourceSquelch::Observe(uint64_t key_hash) {
  // 0 is the empty-slot sentinel; fold real zero hashes onto a fixed bucket.
  if (key_hash == 0) key_hash = 0x9e3779b97f4a7c15ULL;
  uint64_t& slot = recent_[key_hash & mask_];
  if (slot == key_hash) {
    ++window_dups_;
  } else {
    slot = key_hash;
  }
  if (++window_samples_ >= min_samples_) {
    // Window boundary: the only place the clock is read. Evaluate the rate,
    // flip the squelch state, and start a fresh window.
    MicrosT now = clock_->NowMicros();
    double rate = static_cast<double>(window_dups_) /
                  static_cast<double>(window_samples_);
    if (rate >= duplicate_rate_) {
      if (!squelched_) ++squelch_events_;
      squelched_ = true;
      squelched_until_ = now + duration_micros_;
    } else if (squelched_ && now >= squelched_until_) {
      squelched_ = false;
    }
    window_samples_ = 0;
    window_dups_ = 0;
  }
  return squelched_;
}

}  // namespace overload
}  // namespace dsps
}  // namespace insight
