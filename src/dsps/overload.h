#ifndef INSIGHT_DSPS_OVERLOAD_H_
#define INSIGHT_DSPS_OVERLOAD_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "common/static_analysis.h"

namespace insight {
namespace dsps {

/// Shedding tier of a tuple. Spout declarations tag their emissions
/// (incident tuples outlive routine position reports); bolts inherit the
/// priority of the input they are executing. Ordered: higher value = shed
/// later. kHigh is never shed.
enum class TuplePriority : uint8_t {
  kLow = 0,
  kNormal = 1,
  kHigh = 2,
};

const char* TuplePriorityName(TuplePriority priority);

namespace overload {

/// Overload-protection knobs (LocalRuntime::Options::overload). Everything
/// off by default: with all four features disabled the runtime behaves
/// byte-for-byte like the seed (the PR 4 convention), and none of the
/// per-tuple hooks below are even constructed.
struct Options {
  /// Credit-based flow control: emitters acquire per-queue admission credits
  /// (replenished by the consumer's drain) instead of blocking on a full
  /// queue. A block that gets no credits stays staged in the outbox and is
  /// retried at the next flush, so a slow bolt throttles only its upstreams
  /// — other targets of the same collector keep flowing. Occupancy can never
  /// overshoot `queue_capacity`: admission is exact.
  bool enable_credit_flow = false;
  /// Credit mode: once this many tuples are parked in one outbox awaiting
  /// credits, the producer stalls (bounded 1 ms parks, accounted in
  /// `credits_stalled_ns`) until a flush makes progress.
  size_t max_deferred_tuples = 4096;

  /// Priority-aware load shedding: above `shed_low_watermark` queue
  /// occupancy the runtime drops kLow tuples bound for that queue; above
  /// `shed_high_watermark` it also drops kNormal. kHigh is never shed.
  /// Watermarks are enforced twice — at staging (cheap, skips the outbox)
  /// and again at admission, because a block deferred for credits can carry
  /// decisions made when the queue was briefly below the watermark.
  /// Shed tuples are counted (`tuples_shed{priority}`) and — when tracked by
  /// the acker — fail fast: the tree is discarded and Spout::Fail fires
  /// immediately instead of waiting out the ack timeout.
  bool enable_load_shedding = false;
  double shed_low_watermark = 0.75;
  double shed_high_watermark = 0.90;

  /// Hot-key squelch (modeled on rippled's overlay/Squelch.h): each emitting
  /// task tracks the recent key-hash duplicate rate of its fields-grouped
  /// emissions. A source whose recent tuples are mostly redundant is
  /// squelched for `squelch_duration_micros`: its emissions are treated as
  /// kLow for shedding decisions, so redundant hot keys are dropped first
  /// under pressure while distinct-keyed sources keep their tier.
  bool enable_squelch = false;
  /// Recent-hash table size per emitting task (rounded up to a power of 2).
  size_t squelch_history = 64;
  /// Duplicate-rate threshold and the sample window it is evaluated over.
  double squelch_duplicate_rate = 0.75;
  uint64_t squelch_min_samples = 64;
  MicrosT squelch_duration_micros = 100'000;

  /// Adaptive batch sizing: grow a collector's outbox flush threshold
  /// (x2 per step up to `adaptive_batch_max`) while its targets run hot
  /// (> 1/2 occupancy), shrink it back when they drain (< 1/4), trading
  /// latency for throughput exactly while the pressure lasts. Collectors of
  /// kHigh-declared components are exempt: the latency tier keeps the base
  /// threshold.
  bool enable_adaptive_batch = false;
  size_t adaptive_batch_max = 1024;

  bool any_enabled() const {
    return enable_credit_flow || enable_load_shedding || enable_squelch ||
           enable_adaptive_batch;
  }
};

/// Per-queue admission state shared by producers (credit acquisition, shed
/// decisions) and the consumer (credit release). One counter serves every
/// feature: credits = capacity - admitted, occupancy = admitted / capacity.
///
/// Lock-free: producers TryAcquire with a fetch_add and roll back on
/// overshoot; the consumer releases from its drain path. With credit flow
/// disabled the runtime still ForceAcquires after its blocking append so
/// shedding and adaptive batching see live occupancy.
class QueueGate {
 public:
  explicit QueueGate(size_t capacity)
      : capacity_(static_cast<int64_t>(capacity)) {}

  /// Admits `n` tuples if that keeps the total within capacity.
  bool TryAcquire(size_t n) TMS_NO_ALLOC TMS_NON_BLOCKING {
    int64_t want = static_cast<int64_t>(n);
    int64_t prev = admitted_.fetch_add(want, std::memory_order_acquire);
    if (prev + want > capacity_) {
      admitted_.fetch_sub(want, std::memory_order_release);
      return false;
    }
    return true;
  }
  /// Unconditional admission (blocking-backpressure mode: the producer
  /// already waited for space under the queue mutex).
  void ForceAcquire(size_t n) TMS_NO_ALLOC TMS_NON_BLOCKING {
    admitted_.fetch_add(static_cast<int64_t>(n), std::memory_order_acq_rel);
  }
  /// Consumer drained `n` tuples (or shutdown dropped them).
  void Release(size_t n) TMS_NO_ALLOC TMS_NON_BLOCKING {
    admitted_.fetch_sub(static_cast<int64_t>(n), std::memory_order_release);
  }

  int64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  int64_t capacity() const { return capacity_; }
  /// Fraction of capacity currently admitted, in [0, 1+epsilon).
  double Occupancy() const TMS_NO_ALLOC TMS_NON_BLOCKING {
    int64_t a = admitted_.load(std::memory_order_relaxed);
    if (a <= 0) return 0.0;
    return static_cast<double>(a) / static_cast<double>(capacity_);
  }

 private:
  const int64_t capacity_;
  std::atomic<int64_t> admitted_{0};
};

/// Per-source (per emitting task) duplicate-rate tracker for keyed edges.
/// Thread-confined to the emitting executor — no locks, no atomics.
///
/// Every fields-grouped emission reports its routing key hash. A
/// direct-mapped table of the most recent hashes detects repeats in O(1);
/// every `min_samples` observations the duplicate rate is evaluated (the
/// clock is read only at these window boundaries) and a source above
/// `duplicate_rate` is squelched for `duration_micros`: Observe returns
/// true and the runtime demotes the emission to kLow for shedding.
class SourceSquelch {
 public:
  SourceSquelch(const Options& options, const Clock* clock);

  /// Reports one keyed emission; returns true while the source is squelched.
  bool Observe(uint64_t key_hash) TMS_NO_ALLOC TMS_NON_BLOCKING;

  bool squelched() const { return squelched_; }
  /// Times this source entered the squelched state.
  uint64_t squelch_events() const { return squelch_events_; }

 private:
  std::vector<uint64_t> recent_;  // direct-mapped recent-hash table
  uint64_t mask_ = 0;
  double duplicate_rate_;
  uint64_t min_samples_;
  MicrosT duration_micros_;
  const Clock* clock_;
  uint64_t window_samples_ = 0;
  uint64_t window_dups_ = 0;
  bool squelched_ = false;
  MicrosT squelched_until_ = 0;
  uint64_t squelch_events_ = 0;
};

/// Per-collector outbox flush threshold controller. Thread-confined to the
/// emitting executor. Fed the worst target occupancy seen by each flush.
class AdaptiveBatch {
 public:
  AdaptiveBatch(size_t base, size_t max)
      : base_(base), max_(max < base ? base : max), threshold_(base) {}

  size_t threshold() const { return threshold_; }

  /// One flush completed with `worst_occupancy` across its targets.
  void Update(double worst_occupancy) TMS_NO_ALLOC TMS_NON_BLOCKING {
    if (worst_occupancy > 0.5) {
      if (threshold_ < max_) threshold_ = std::min(max_, threshold_ * 2);
    } else if (worst_occupancy < 0.25) {
      if (threshold_ > base_) threshold_ = std::max(base_, threshold_ / 2);
    }
  }

 private:
  size_t base_;
  size_t max_;
  size_t threshold_;
};

}  // namespace overload
}  // namespace dsps
}  // namespace insight

#endif  // INSIGHT_DSPS_OVERLOAD_H_
