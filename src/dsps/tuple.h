#ifndef INSIGHT_DSPS_TUPLE_H_
#define INSIGHT_DSPS_TUPLE_H_

#include <memory>
#include <string>
#include <vector>

#include "cep/event.h"
#include "common/clock.h"
#include "common/status.h"
#include "dsps/overload.h"
#include "dsps/payload_pool.h"

namespace insight {
namespace dsps {

using cep::Value;

/// Declared output fields of a component, Storm-style. Name lookups go
/// through a precomputed hash index (first declaration wins for duplicate
/// names, matching the old linear scan).
class Fields {
 public:
  Fields() = default;
  Fields(std::initializer_list<std::string> names) : names_(names) {
    BuildIndex();
  }
  explicit Fields(std::vector<std::string> names) : names_(std::move(names)) {
    BuildIndex();
  }

  int IndexOf(const std::string& name) const {
    return index_.Find(name, [this](size_t i) -> const std::string& {
      return names_[i];
    });
  }
  const std::vector<std::string>& names() const { return names_; }
  size_t size() const { return names_.size(); }

 private:
  void BuildIndex() {
    index_.Build(names_.size(), /*keep_first=*/true,
                 [this](size_t i) -> const std::string& { return names_[i]; });
  }

  std::vector<std::string> names_;
  cep::detail::NameIndex index_;
};

/// A data tuple flowing through the topology. Values are positionally
/// aligned with the emitting component's declared Fields. `spout_time`
/// carries the originating spout emission time so bolts can report
/// end-to-end latency.
///
/// The value payload is a shared immutable buffer: copying a Tuple (as
/// shuffle/fields/all fan-out does, once per downstream task) bumps a
/// refcount instead of deep-copying N values. Per-delivery metadata
/// (spout_time, root_key, edge_id) stays by-value in the Tuple itself.
class Tuple {
 public:
  using Payload = std::shared_ptr<const std::vector<Value>>;

  Tuple() = default;
  Tuple(std::shared_ptr<const Fields> fields, std::vector<Value> values,
        MicrosT spout_time = 0)
      : fields_(std::move(fields)),
        // allocate_shared with the thread-local block cache: an interior
        // executor reuses the block it just freed for its input's payload,
        // so forwarding hops allocate nothing for the shared buffer.
        values_(std::allocate_shared<std::vector<Value>>(
            detail::PayloadAllocator<std::vector<Value>>(),
            std::move(values))),
        spout_time_(spout_time) {}
  /// Shares an existing payload (fan-out copies).
  Tuple(std::shared_ptr<const Fields> fields, Payload payload,
        MicrosT spout_time = 0)
      : fields_(std::move(fields)),
        values_(std::move(payload)),
        spout_time_(spout_time) {}

  const Fields& fields() const { return *fields_; }
  const std::shared_ptr<const Fields>& fields_ptr() const { return fields_; }
  const std::vector<Value>& values() const {
    static const std::vector<Value> kEmpty;
    return values_ != nullptr ? *values_ : kEmpty;
  }
  /// The shared value buffer; tuples delivered to sibling tasks from one
  /// Emit share the identical buffer.
  const Payload& payload() const { return values_; }
  size_t size() const { return values_ != nullptr ? values_->size() : 0; }

  const Value& Get(size_t index) const { return (*values_)[index]; }
  Result<Value> GetByField(const std::string& name) const {
    int idx = fields_->IndexOf(name);
    if (idx < 0) return Status::NotFound("tuple has no field '" + name + "'");
    return (*values_)[static_cast<size_t>(idx)];
  }

  MicrosT spout_time() const { return spout_time_; }
  void set_spout_time(MicrosT t) { spout_time_ = t; }

  /// Reliability anchoring (src/reliability): `root_key` identifies the
  /// tuple tree this tuple belongs to (0 = untracked, the default for
  /// topologies without acking); `edge_id` is this tuple instance's random
  /// id, XOR-combined by the Acker. Both are runtime-managed — components
  /// never set them.
  uint64_t root_key() const { return root_key_; }
  uint64_t edge_id() const { return edge_id_; }
  void set_root_key(uint64_t key) { root_key_ = key; }
  void set_edge_id(uint64_t id) { edge_id_ = id; }

  /// Replay-stable identity (0 = none): a hash chained from the spout
  /// message id through each emission hop, independent of the replay
  /// attempt. Checkpointed tasks record executed ids in a DedupLedger and
  /// suppress re-execution of replayed duplicates (see DESIGN.md "State &
  /// recovery"). Runtime-managed, like root_key/edge_id.
  uint64_t dedup_id() const { return dedup_id_; }
  void set_dedup_id(uint64_t id) { dedup_id_ = id; }

  /// Shedding tier (see dsps/overload.h). Assigned from the emitting
  /// component's declared priority at the spout and inherited through bolt
  /// executions; the load shedder drops lowest-priority-first above its
  /// occupancy watermarks. Runtime-managed, like root_key/edge_id.
  TuplePriority priority() const { return priority_; }
  void set_priority(TuplePriority p) { priority_ = p; }

  /// Trace span anchoring (src/observability): nonzero iff the originating
  /// root emission was sampled. `trace_enqueue_micros` stamps when this
  /// instance was staged for delivery, so the consumer can record the
  /// queue-wait span. Runtime-managed, like root_key/edge_id.
  uint64_t trace_id() const { return trace_id_; }
  void set_trace_id(uint64_t id) { trace_id_ = id; }
  MicrosT trace_enqueue_micros() const { return trace_enqueue_micros_; }
  void set_trace_enqueue_micros(MicrosT t) { trace_enqueue_micros_ = t; }

  std::string ToString() const {
    std::string out = "(";
    const std::vector<Value>& vals = values();
    for (size_t i = 0; i < vals.size(); ++i) {
      if (i > 0) out += ", ";
      out += fields_->names()[i] + "=" + vals[i].ToString();
    }
    out += ")";
    return out;
  }

 private:
  std::shared_ptr<const Fields> fields_;
  Payload values_;
  MicrosT spout_time_ = 0;
  uint64_t root_key_ = 0;
  uint64_t edge_id_ = 0;
  uint64_t dedup_id_ = 0;
  TuplePriority priority_ = TuplePriority::kNormal;
  uint64_t trace_id_ = 0;
  MicrosT trace_enqueue_micros_ = 0;
};

}  // namespace dsps
}  // namespace insight

#endif  // INSIGHT_DSPS_TUPLE_H_
